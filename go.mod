module github.com/neurosym/nsbench

go 1.22
