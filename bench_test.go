// Benchmark harness: one Benchmark family per table/figure of the paper.
// Run everything with
//
//	go test -bench=. -benchmem
//
// The benchmarks measure end-to-end inference of each workload (Fig. 2a),
// the scalability sweeps (Fig. 2c and the extended sweeps), the symbolic
// kernel primitives behind Fig. 3/Tab. IV, and the analysis machinery
// itself. Custom metrics (symbolic share, sparsity, projected latencies)
// are reported through b.ReportMetric so the paper's series appear directly
// in the benchmark output.
package nsbench_test

import (
	"testing"
	"time"

	"github.com/neurosym/nsbench/internal/backend"
	"github.com/neurosym/nsbench/internal/cachesim"
	"github.com/neurosym/nsbench/internal/core"
	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/quant"
	"github.com/neurosym/nsbench/internal/raven"
	"github.com/neurosym/nsbench/internal/schedule"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
	"github.com/neurosym/nsbench/internal/workloads/abduction"
	"github.com/neurosym/nsbench/internal/workloads/nlm"
	"github.com/neurosym/nsbench/internal/workloads/nvsa"
	"github.com/neurosym/nsbench/internal/workloads/vsait"
)

// benchWorkload runs one end-to-end inference per iteration and reports the
// symbolic time share as a custom metric.
func benchWorkload(b *testing.B, name string) {
	b.Helper()
	var share float64
	for i := 0; i < b.N; i++ {
		w, err := core.BuildWorkload(name)
		if err != nil {
			b.Fatal(err)
		}
		e := ops.New()
		if err := w.Run(e); err != nil {
			b.Fatal(err)
		}
		share = e.Trace().PhaseShare(trace.Symbolic)
	}
	b.ReportMetric(100*share, "symbolic%")
}

// ---- Fig. 2a: end-to-end latency of the seven workloads -------------------

func BenchmarkFig2aLNN(b *testing.B)   { benchWorkload(b, "LNN") }
func BenchmarkFig2aLTN(b *testing.B)   { benchWorkload(b, "LTN") }
func BenchmarkFig2aNVSA(b *testing.B)  { benchWorkload(b, "NVSA") }
func BenchmarkFig2aNLM(b *testing.B)   { benchWorkload(b, "NLM") }
func BenchmarkFig2aVSAIT(b *testing.B) { benchWorkload(b, "VSAIT") }
func BenchmarkFig2aZeroC(b *testing.B) { benchWorkload(b, "ZeroC") }
func BenchmarkFig2aPrAE(b *testing.B)  { benchWorkload(b, "PrAE") }

// ---- Fig. 2b: cross-device projections ------------------------------------

func BenchmarkFig2bProjection(b *testing.B) {
	w, err := core.BuildWorkload("NVSA")
	if err != nil {
		b.Fatal(err)
	}
	e := ops.New()
	if err := w.Run(e); err != nil {
		b.Fatal(err)
	}
	tr := e.Trace()
	b.ResetTimer()
	var tx2, rtx float64
	for i := 0; i < b.N; i++ {
		tx2 = hwsim.JetsonTX2.ProjectTrace(tr).Total.Seconds()
		rtx = hwsim.RTX2080Ti.ProjectTrace(tr).Total.Seconds()
	}
	b.ReportMetric(tx2/rtx, "TX2/RTX")
}

// ---- Fig. 2c: RPM task-size scalability ------------------------------------

func benchNVSASize(b *testing.B, m int) {
	var share float64
	for i := 0; i < b.N; i++ {
		w := nvsa.New(nvsa.Config{M: m, Seed: int64(i + 1)})
		e := ops.New()
		if err := w.Run(e); err != nil {
			b.Fatal(err)
		}
		share = e.Trace().PhaseShare(trace.Symbolic)
	}
	b.ReportMetric(100*share, "symbolic%")
}

func BenchmarkFig2cNVSA2x2(b *testing.B) { benchNVSASize(b, 2) }
func BenchmarkFig2cNVSA3x3(b *testing.B) { benchNVSASize(b, 3) }

// ---- Fig. 3a/3b/3c + Fig. 4: the analysis pipeline -------------------------

func BenchmarkFig3Characterize(b *testing.B) {
	w, err := core.BuildWorkload("LNN")
	if err != nil {
		b.Fatal(err)
	}
	e := ops.New()
	if err := w.Run(e); err != nil {
		b.Fatal(err)
	}
	tr := e.Trace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := core.Analyze("LNN", "x", tr, core.Options{})
		if r.Total == 0 {
			b.Fatal("empty analysis")
		}
	}
}

func BenchmarkFig3cRooflinePlacement(b *testing.B) {
	w, err := core.BuildWorkload("LTN")
	if err != nil {
		b.Fatal(err)
	}
	r, err := core.Characterize(w, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var bound float64
	for _, p := range r.Roofline {
		if p.Name == "LTN/symbolic/eltwise" {
			bound = p.AI
		}
	}
	b.ReportMetric(bound, "symbolicAI")
	for i := 0; i < b.N; i++ {
		_ = hwsim.RTX2080Ti.ProjectTrace(r.Trace)
	}
}

func BenchmarkFig4CriticalPath(b *testing.B) {
	w, err := core.BuildWorkload("PrAE")
	if err != nil {
		b.Fatal(err)
	}
	e := ops.New()
	if err := w.Run(e); err != nil {
		b.Fatal(err)
	}
	tr := e.Trace()
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		g := trace.BuildGraph(tr)
		path, _ := g.CriticalPath()
		frac = g.PathPhaseShare(path)[trace.Symbolic]
	}
	b.ReportMetric(100*frac, "critPathSym%")
}

// ---- Fig. 5: sparsity measurement ------------------------------------------

func BenchmarkFig5Sparsity(b *testing.B) {
	var sparsity float64
	for i := 0; i < b.N; i++ {
		rows, err := core.Fig5(core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Stage == "pmf_to_vsa" && r.Attribute == "color" {
				sparsity = r.Sparsity
			}
		}
	}
	b.ReportMetric(100*sparsity, "sparsity%")
}

// ---- Tab. IV: kernel-level hardware counters --------------------------------

func BenchmarkTab4KernelStats(b *testing.B) {
	w, err := core.BuildWorkload("NVSA")
	if err != nil {
		b.Fatal(err)
	}
	e := ops.New()
	if err := w.Run(e); err != nil {
		b.Fatal(err)
	}
	tr := e.Trace()
	b.ResetTimer()
	var alu float64
	for i := 0; i < b.N; i++ {
		rows := hwsim.RTX2080Ti.KernelTable(tr, core.Tab4Kernels())
		alu = rows[0].ALUUtilPct
	}
	b.ReportMetric(alu, "gemmALU%")
}

// ---- Scalability sweeps (Takeaway 2) ----------------------------------------

func benchNVSADim(b *testing.B, dim int) {
	for i := 0; i < b.N; i++ {
		w := nvsa.New(nvsa.Config{Dim: dim})
		e := ops.New()
		if err := w.Run(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalabilityNVSADim1024(b *testing.B) { benchNVSADim(b, 1024) }
func BenchmarkScalabilityNVSADim2048(b *testing.B) { benchNVSADim(b, 2048) }
func BenchmarkScalabilityNVSADim4096(b *testing.B) { benchNVSADim(b, 4096) }

func benchNLMObjects(b *testing.B, n int) {
	for i := 0; i < b.N; i++ {
		w := nlm.New(nlm.Config{Objects: n})
		e := ops.New()
		if err := w.Run(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalabilityNLM16(b *testing.B) { benchNLMObjects(b, 16) }
func BenchmarkScalabilityNLM32(b *testing.B) { benchNLMObjects(b, 32) }
func BenchmarkScalabilityNLM64(b *testing.B) { benchNLMObjects(b, 64) }

// ---- Ablations: the design choices DESIGN.md calls out ----------------------

// BenchmarkAblationCircularConvFFT quantifies the FFT-vs-direct circular
// convolution choice (the NVSA binding primitive).
func BenchmarkAblationCircularConvFFT(b *testing.B) {
	g := tensor.NewRNG(1)
	x, y := g.HRRVector(4096), g.HRRVector(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.CircularConv(x, y) // power-of-two length: FFT path
	}
}

func BenchmarkAblationCircularConvDirect(b *testing.B) {
	g := tensor.NewRNG(1)
	x, y := g.HRRVector(4095), g.HRRVector(4095) // odd length: direct path
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.CircularConv(x, y)
	}
}

// BenchmarkAblationVSAITDim quantifies how hyperspace dimensionality drives
// the symbolic share (the VSAIT calibration knob).
func BenchmarkAblationVSAITDim2048(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := vsait.New(vsait.Config{Dim: 2048})
		if err := w.Run(ops.New()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSparsityMeasurement quantifies the profiler's sparsity
// measurement overhead (off by default outside the symbolic stages).
func BenchmarkAblationSparsityMeasurement(b *testing.B) {
	g := tensor.NewRNG(2)
	x := g.Normal(0, 1, 1<<16)
	e := ops.New()
	e.MeasureSparsity(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.ReLU(x)
	}
}

// ---- Extra Table-I paradigms -------------------------------------------------

func BenchmarkExtraAlphaGo(b *testing.B)      { benchWorkload(b, "AlphaGo") }
func BenchmarkExtraGNNAttention(b *testing.B) { benchWorkload(b, "GNN+attention") }
func BenchmarkExtraNSVQA(b *testing.B)        { benchWorkload(b, "NSVQA") }

// ---- Recommendation ablations (Sec. V recommendations) -----------------------

// BenchmarkRecScheduling measures the Rec-5 list scheduler over an NVSA
// trace and reports the 8-unit speedup.
func BenchmarkRecScheduling(b *testing.B) {
	w, err := core.BuildWorkload("NVSA")
	if err != nil {
		b.Fatal(err)
	}
	e := ops.New()
	if err := w.Run(e); err != nil {
		b.Fatal(err)
	}
	tr := e.Trace()
	cost := func(ev *trace.Event) time.Duration { return hwsim.RTX2080Ti.EventTime(ev) }
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = schedule.List(tr, 8, schedule.WithCost(cost)).Speedup
	}
	b.ReportMetric(speedup, "speedup8")
}

// BenchmarkRecQuantMatVec compares the INT8 codebook cleanup against FP32.
func BenchmarkRecQuantMatVec(b *testing.B) {
	g := tensor.NewRNG(6)
	a := g.Normal(0, 1, 512, 512)
	x := g.Normal(0, 1, 512)
	qa, qx := quant.Quantize(a), quant.Quantize(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = quant.MatVecQ(qa, qx)
	}
}

func BenchmarkRecFloatMatVec(b *testing.B) {
	g := tensor.NewRNG(6)
	a := g.Normal(0, 1, 512, 512)
	x := g.Normal(0, 1, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.MatVec(a, x)
	}
}

// BenchmarkRecSparseJoint compares sparsity-aware against dense joint
// expansion at PMF-like 90% sparsity (Rec 7).
func BenchmarkRecSparseJoint(b *testing.B) {
	p1 := tensor.OneHot(3, 64)
	p2 := tensor.OneHot(17, 64)
	s1, s2 := quant.ToSparse(p1, 0), quant.ToSparse(p2, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = quant.JointSparse(s1, s2)
	}
}

func BenchmarkRecDenseJoint(b *testing.B) {
	e := ops.New()
	p1 := tensor.OneHot(3, 64)
	p2 := tensor.OneHot(17, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = abduction.Joint(e, p1, p2)
	}
}

// ---- Substrate microbenchmarks ----------------------------------------------

func BenchmarkSubstrateMatMul256(b *testing.B) {
	g := tensor.NewRNG(3)
	x := g.Normal(0, 1, 256, 256)
	y := g.Normal(0, 1, 256, 256)
	b.SetBytes(int64(tensor.BytesMatMul(256, 256, 256)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.MatMul(x, y)
	}
}

func BenchmarkSubstrateConv2D(b *testing.B) {
	g := tensor.NewRNG(4)
	in := g.Normal(0, 1, 1, 8, 32, 32)
	w := g.Normal(0, 1, 16, 8, 3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.Conv2D(in, w, nil, 1, 1)
	}
}

func BenchmarkSubstrateCacheSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := cachesim.NewHierarchy(
			cachesim.NewCache("L1", 64*1024, 4, 128),
			cachesim.NewCache("L2", 5632*1024, 16, 128),
		)
		cachesim.GEMMStream(h, 128, 128, 128, 4, 1<<18)
	}
}

func BenchmarkSubstrateRavenGenerate(b *testing.B) {
	g := tensor.NewRNG(5)
	for i := 0; i < b.N; i++ {
		t := raven.Generate(raven.Config{M: 3}, g)
		if t.Validate() != nil {
			b.Fatal("invalid task")
		}
	}
}

// ---- Execution backends: serial vs parallel kernel dispatch ----------------
//
// The parallel families time the same kernel on a worker pool and report a
// "speedup" metric against a serial baseline measured in the same process.
// On a single-CPU host GOMAXPROCS=1 serializes the pool and the speedup
// hovers around 1.0; the families exist so multi-core runs surface the
// scaling directly in benchmark output.

// serialBaselineNs times fn on the serial backend and returns ns per call.
func serialBaselineNs(fn func()) float64 {
	const iters = 3
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / iters
}

func benchBackendGEMM(b *testing.B, workers int) {
	g := tensor.NewRNG(11)
	x := g.Normal(0, 1, 512, 512)
	y := g.Normal(0, 1, 512, 512)
	b.SetBytes(int64(tensor.BytesMatMul(512, 512, 512)))
	if workers == 1 {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = tensor.MatMulOn(tensor.Serial, x, y)
		}
		return
	}
	serialNs := serialBaselineNs(func() { _ = tensor.MatMulOn(tensor.Serial, x, y) })
	be := backend.NewParallel(workers)
	defer be.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.MatMulOn(be, x, y)
	}
	b.StopTimer()
	parNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(serialNs/parNs, "speedup")
}

func BenchmarkBackendSerialGEMM512(b *testing.B)     { benchBackendGEMM(b, 1) }
func BenchmarkBackendParallelGEMM512x2(b *testing.B) { benchBackendGEMM(b, 2) }
func BenchmarkBackendParallelGEMM512x4(b *testing.B) { benchBackendGEMM(b, 4) }

func benchBackendConv2D(b *testing.B, workers int) {
	g := tensor.NewRNG(12)
	in := g.Normal(0, 1, 4, 16, 32, 32)
	w := g.Normal(0, 1, 32, 16, 3, 3)
	if workers == 1 {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = tensor.Conv2DOn(tensor.Serial, in, w, nil, 1, 1)
		}
		return
	}
	serialNs := serialBaselineNs(func() { _ = tensor.Conv2DOn(tensor.Serial, in, w, nil, 1, 1) })
	be := backend.NewParallel(workers)
	defer be.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.Conv2DOn(be, in, w, nil, 1, 1)
	}
	b.StopTimer()
	parNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(serialNs/parNs, "speedup")
}

func BenchmarkBackendSerialConv2D(b *testing.B)     { benchBackendConv2D(b, 1) }
func BenchmarkBackendParallelConv2Dx4(b *testing.B) { benchBackendConv2D(b, 4) }

// benchBackendNVSA runs the full NVSA pipeline on the configured backend and
// reports the symbolic-phase share, exercising circular convolution and the
// factorization loop through the pool.
func benchBackendNVSA(b *testing.B, cfg ops.Config) {
	w := nvsa.New(nvsa.Config{Engine: cfg})
	defer w.Close()
	newEngine, release := cfg.Factory()
	defer release() // tears down the factory's shared pool
	var sym time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := newEngine()
		if err := w.Run(e); err != nil {
			b.Fatal(err)
		}
		sym = e.Trace().PhaseDuration(trace.Symbolic)
	}
	b.StopTimer()
	b.ReportMetric(float64(sym.Microseconds()), "symbolic_us")
}

func BenchmarkBackendSerialNVSA(b *testing.B) { benchBackendNVSA(b, ops.Config{}) }
func BenchmarkBackendParallelNVSAx4(b *testing.B) {
	benchBackendNVSA(b, ops.Config{Backend: ops.BackendParallel, Workers: 4})
}
