// Quickstart: solve one Raven's Progressive Matrices task with the
// neuro-vector-symbolic architecture and print where the time went.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/raven"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
	"github.com/neurosym/nsbench/internal/workloads/nvsa"
)

func main() {
	// Generate one 3×3 RPM task.
	g := tensor.NewRNG(42)
	task := raven.Generate(raven.Config{M: 3}, g)
	fmt.Println("task rules:")
	for _, r := range task.Rules {
		fmt.Println("  -", r)
	}

	// Solve it with NVSA on an instrumented engine.
	w := nvsa.New(nvsa.Config{Seed: 42})
	e := ops.New()
	choice, err := w.Solve(e, task)
	if err != nil {
		log.Fatal(err)
	}
	verdict := "WRONG"
	if choice == task.AnswerIdx {
		verdict = "correct"
	}
	fmt.Printf("\nNVSA picked candidate %d (answer %d) — %s\n", choice, task.AnswerIdx, verdict)

	// Where did the time go? The symbolic backend dominates (Fig. 2a).
	tr := e.Trace()
	fmt.Printf("\nend-to-end: %v over %d operator invocations\n", tr.Duration(), tr.Len())
	for _, p := range trace.Phases() {
		fmt.Printf("  %-9s %12v (%.1f%%)\n", p, tr.PhaseDuration(p), 100*tr.PhaseShare(p))
	}
	fmt.Printf("\nsymbolic executes %.1f%% of time with %.1f%% of FLOPs — the paper's headline inefficiency\n",
		100*tr.PhaseShare(trace.Symbolic), 100*tr.FLOPShare(trace.Symbolic))
}
