// Raven reasoning: compare the two neuro-symbolic RPM solvers (NVSA and
// PrAE) against the pure-neural baseline on freshly generated tasks,
// reporting accuracy and per-task latency — the motivation experiment
// behind the paper's introduction (NVSA 98.8% vs neural-only 53.4%).
//
//	go run ./examples/raven-reasoning
package main

import (
	"fmt"
	"time"

	"github.com/neurosym/nsbench/internal/workloads/neural"
	"github.com/neurosym/nsbench/internal/workloads/nvsa"
	"github.com/neurosym/nsbench/internal/workloads/prae"
)

const tasks = 30

func main() {
	fmt.Printf("solving %d generated RAVEN tasks per model (3×3, low perception noise)\n\n", tasks)
	fmt.Printf("%-16s %10s %14s\n", "model", "accuracy", "per-task")

	type solver struct {
		name string
		run  func() float64
	}
	solvers := []solver{
		{"NVSA", func() float64 {
			// A modest dimensionality keeps the demo quick; reasoning
			// accuracy is independent of it.
			w := nvsa.New(nvsa.Config{Dim: 512, ImgSize: 16, Noise: 0.005, Seed: 7})
			return w.SolveAccuracy(tasks)
		}},
		{"PrAE", func() float64 {
			w := prae.New(prae.Config{ImgSize: 16, Noise: 0.005, Seed: 7})
			return w.SolveAccuracy(tasks)
		}},
		{"NeuralBaseline", func() float64 {
			w := neural.New(neural.Config{ImgSize: 16, Seed: 7})
			return w.SolveAccuracy(tasks)
		}},
		{"Neural(trained)", func() float64 {
			// Fit the scoring MLP with autograd on held-out tasks: even
			// with supervision, a pattern matcher without rule abduction
			// stays far below the neuro-symbolic solvers.
			w := neural.New(neural.Config{ImgSize: 16, Seed: 7})
			w.TrainScorer(24, 10, 0.05)
			return w.SolveAccuracy(tasks)
		}},
	}
	for _, s := range solvers {
		start := time.Now()
		acc := s.run()
		per := time.Since(start) / tasks
		fmt.Printf("%-16s %9.1f%% %14v\n", s.name, 100*acc, per)
	}
	fmt.Println("\nthe symbolic rule abduction is what closes the accuracy gap —")
	fmt.Println("and what the characterization shows to be the latency bottleneck.")
}
