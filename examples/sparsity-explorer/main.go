// Sparsity explorer: sweep the NVSA perception noise and watch the
// effective sparsity of the symbolic probability stages respond — the
// interactive companion to the paper's Fig. 5 (sparsity > 95% with
// per-attribute variation).
//
//	go run ./examples/sparsity-explorer
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/workloads/nvsa"
)

func main() {
	attrs := []string{"number", "type", "size", "color"}
	fmt.Printf("%-8s", "noise")
	for _, a := range attrs {
		fmt.Printf(" %10s", a)
	}
	fmt.Println("   (pmf_to_vsa stage sparsity)")

	for _, noise := range []float64{0.005, 0.05, 0.2, 0.4} {
		// The zero threshold stays fixed while the perception noise floor
		// rises past it, eroding the measured effective sparsity.
		w := nvsa.New(nvsa.Config{Dim: 512, ImgSize: 16, Noise: noise, SparsityEps: 0.01})
		e := ops.New()
		if err := w.Run(e); err != nil {
			log.Fatal(err)
		}
		bySuffix := map[string]float64{}
		for _, s := range e.Trace().ByStage() {
			if stage, attr, ok := strings.Cut(s.Stage, ":"); ok && stage == "pmf_to_vsa" {
				bySuffix[attr] = s.Sparsity
			}
		}
		fmt.Printf("%-8.3f", noise)
		for _, a := range attrs {
			fmt.Printf(" %9.1f%%", 100*bySuffix[a])
		}
		fmt.Println()
	}

	fmt.Println("\nhigher perception noise spreads probability mass, eroding the")
	fmt.Println("unstructured sparsity that sparsity-aware symbolic hardware would")
	fmt.Println("exploit (paper Fig. 5 / Recommendation 7).")
}
