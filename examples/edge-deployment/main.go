// Edge deployment: project one NVSA and one NLM inference trace onto the
// study's edge platforms (Jetson TX2, Xavier NX) and the discrete RTX 2080
// Ti, then ask the paper's question: is real-time cognition feasible?
//
//	go run ./examples/edge-deployment
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/trace"
	"github.com/neurosym/nsbench/internal/workloads/nlm"
	"github.com/neurosym/nsbench/internal/workloads/nvsa"
)

// realTimeBudget is a 10 Hz decision loop, a modest robotics target.
const realTimeBudget = 100 * time.Millisecond

func main() {
	run := func(name string, runner interface {
		Run(*ops.Engine) error
	}) {
		e := ops.New()
		if err := runner.Run(e); err != nil {
			log.Fatal(err)
		}
		tr := e.Trace()
		fmt.Printf("%s — one inference, %d operators, host time %v\n", name, tr.Len(), tr.Duration())
		fmt.Printf("  %-16s %14s %11s %11s %10s\n", "device", "latency", "symbolic%", "energy(J)", "10Hz-ok?")
		for _, d := range hwsim.EdgeDevices() {
			p := d.ProjectTrace(tr)
			ok := "no"
			if p.Total <= realTimeBudget {
				ok = "yes"
			}
			fmt.Printf("  %-16s %14v %10.1f%% %11.2f %10s\n",
				d.Name, p.Total, 100*p.PhaseShare(trace.Symbolic), p.EnergyJ, ok)
		}
		fmt.Println()
	}

	run("NVSA (abstract reasoning)", nvsa.New(nvsa.Config{}))
	run("NLM (relational reasoning)", nlm.New(nlm.Config{Objects: 48}))

	fmt.Println("takeaway: even when the neural frontend fits the budget, the")
	fmt.Println("memory-bound symbolic backend keeps end-to-end latency far from")
	fmt.Println("real-time on embedded platforms (paper Fig. 2b / Takeaway 1).")
}
