// Package slo is the service-level-objective plane for the nsbench
// serving tier: declarative availability/latency objectives, multi-window
// burn-rate tracking in the SRE-workbook style, and an exportable report
// that both /v1/slo (JSON) and /metrics (ns_slo_* gauges) render.
//
// The model: an Objective names a target success ratio (e.g. 0.999) over
// a Source of cumulative (good, total) event counts. The error budget is
// 1-target; the burn rate over a window is the window's observed error
// rate divided by the budget, so burn 1.0 means "consuming budget exactly
// as fast as the objective allows" and burn 14.4 means the classic
// page-now threshold (a 30-day budget gone in ~2 days). A Set samples
// every objective's counters on a fixed interval into a ring, so windowed
// rates are computed from real deltas, not lifetime averages; an alert
// fires only when every configured window is over its threshold at once —
// the multi-window AND that keeps short blips and long hangovers from
// paging on their own.
//
// Sources adapt the metrics the stack already collects: FromCounters for
// availability objectives (good = non-5xx responses) and FromHistogram
// for latency objectives (good = observations at or below a threshold,
// read from the existing latency histograms at bucket resolution).
package slo

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/neurosym/nsbench/internal/metrics"
)

// Source yields cumulative event counts for one objective. Counts must be
// monotonic: good <= total, both non-decreasing. Implementations are read
// on the sampling goroutine and on demand by Report, so they must be safe
// for concurrent use (all metrics-backed sources are).
type Source interface {
	Counts() (good, total uint64)
}

type funcSource struct{ fn func() (uint64, uint64) }

func (s funcSource) Counts() (uint64, uint64) { return s.fn() }

// FromCounters adapts two cumulative counter reads (good events, total
// events) into a Source — the availability-objective shape.
func FromCounters(good, total func() uint64) Source {
	return funcSource{func() (uint64, uint64) { return good(), total() }}
}

// FromHistogram adapts a latency histogram into a Source: total is the
// observation count, good the observations at or below threshold
// (seconds), read at the histogram's bucket resolution — the threshold
// effectively rounds down to the nearest bucket boundary, which
// undercounts good events and therefore never hides an SLO violation.
func FromHistogram(h *metrics.Histogram, threshold float64) Source {
	return funcSource{func() (uint64, uint64) {
		// Total is read before good: a concurrent fast observation that
		// lands between the two reads inflates good relative to total,
		// so read the bounding count first and clamp below.
		total := h.Count()
		good := h.CountAtOrBelow(threshold)
		if good > total {
			good = total
		}
		return good, total
	}}
}

// Window is one burn-rate evaluation window.
type Window struct {
	// Name labels the window in reports and metrics ("fast", "slow").
	Name string `json:"name"`
	// Duration is the lookback the burn rate is computed over.
	Duration time.Duration `json:"duration_ns"`
	// MaxBurn is the alert threshold for this window's burn rate.
	MaxBurn float64 `json:"max_burn"`
}

// Objective is one declarative SLO.
type Objective struct {
	// Name identifies the objective in reports and metric labels.
	Name string
	// Description is free-form operator documentation.
	Description string
	// Target is the success-ratio goal in (0, 1), e.g. 0.999. The error
	// budget is 1 - Target.
	Target float64
	// Source supplies the cumulative (good, total) counts.
	Source Source
}

// Config parameterizes a Set. The zero value selects scaled-down
// SRE-workbook defaults sized for a demo service rather than a 30-day
// production budget: 1s sampling, a 1h budget period, and a 1m/5m
// fast/slow window pair at the workbook's 14.4/6 thresholds.
type Config struct {
	// SampleInterval is the counter-sampling period; 0 selects 1s.
	SampleInterval time.Duration
	// Period is the error-budget accounting horizon; 0 selects 1h.
	// Budget consumption is computed over at most this much history.
	Period time.Duration
	// Windows are the burn-rate windows; nil selects the default
	// fast(1m, 14.4) / slow(5m, 6) pair. An alert fires only when every
	// window exceeds its threshold simultaneously.
	Windows []Window
}

func (c *Config) defaults() {
	if c.SampleInterval <= 0 {
		c.SampleInterval = time.Second
	}
	if c.Period <= 0 {
		c.Period = time.Hour
	}
	if len(c.Windows) == 0 {
		c.Windows = []Window{
			{Name: "fast", Duration: time.Minute, MaxBurn: 14.4},
			{Name: "slow", Duration: 5 * time.Minute, MaxBurn: 6},
		}
	}
}

// sample is one point of an objective's counter history.
type sample struct {
	at          time.Time
	good, total uint64
}

// tracker is one objective plus its sampled history.
type tracker struct {
	obj  Objective
	base sample // counts at Start: reports are deltas from here
	ring []sample
	head int // next write position
	n    int // live entries
}

func (tr *tracker) push(s sample) {
	if tr.n < len(tr.ring) {
		tr.ring[(tr.head+tr.n)%len(tr.ring)] = s
		tr.n++
		return
	}
	tr.ring[tr.head] = s
	tr.head = (tr.head + 1) % len(tr.ring)
}

// at returns the newest sample no newer than t, falling back to the
// oldest held sample (or the start baseline) when history is shorter
// than the asked-for lookback.
func (tr *tracker) at(t time.Time) sample {
	best := tr.base
	for i := 0; i < tr.n; i++ {
		s := tr.ring[(tr.head+i)%len(tr.ring)]
		if s.at.After(t) {
			break
		}
		best = s
	}
	return best
}

// Set owns a group of objectives sampled on one schedule. Construct with
// NewSet, Add objectives, then Start; Close stops the sampler.
type Set struct {
	cfg Config

	mu       sync.Mutex
	trackers []*tracker
	started  bool

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewSet returns an empty objective set.
func NewSet(cfg Config) *Set {
	cfg.defaults()
	return &Set{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
}

// Add registers an objective. Objectives must be added before Start.
func (s *Set) Add(obj Objective) error {
	if obj.Name == "" {
		return errors.New("slo: objective needs a name")
	}
	if obj.Target <= 0 || obj.Target >= 1 {
		return fmt.Errorf("slo: objective %q: target %v outside (0, 1)", obj.Name, obj.Target)
	}
	if obj.Source == nil {
		return fmt.Errorf("slo: objective %q: nil source", obj.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("slo: objective %q added after Start", obj.Name)
	}
	for _, tr := range s.trackers {
		if tr.obj.Name == obj.Name {
			return fmt.Errorf("slo: duplicate objective %q", obj.Name)
		}
	}
	// The ring must cover the budget period and the longest window.
	span := s.cfg.Period
	for _, w := range s.cfg.Windows {
		if w.Duration > span {
			span = w.Duration
		}
	}
	capacity := int(span/s.cfg.SampleInterval) + 2
	s.trackers = append(s.trackers, &tracker{obj: obj, ring: make([]sample, capacity)})
	return nil
}

// Start baselines every objective at the current counter values and
// launches the sampling loop. Idempotent-hostile by design: call once.
func (s *Set) Start() {
	s.mu.Lock()
	s.started = true
	now := time.Now()
	for _, tr := range s.trackers {
		good, total := tr.obj.Source.Counts()
		tr.base = sample{at: now, good: good, total: total}
	}
	s.mu.Unlock()
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.cfg.SampleInterval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.sampleAll()
			}
		}
	}()
}

// Close stops the sampling loop and waits for it to exit. Idempotent.
func (s *Set) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

func (s *Set) sampleAll() {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, tr := range s.trackers {
		good, total := tr.obj.Source.Counts()
		tr.push(sample{at: now, good: good, total: total})
	}
}

// WindowReport is one window's burn state inside an ObjectiveReport.
type WindowReport struct {
	Name      string  `json:"name"`
	Seconds   float64 `json:"seconds"`
	ErrorRate float64 `json:"error_rate"`
	BurnRate  float64 `json:"burn_rate"`
	MaxBurn   float64 `json:"max_burn"`
	Firing    bool    `json:"firing"`
}

// ObjectiveReport is one objective's full SLO state.
type ObjectiveReport struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Target      float64 `json:"target"`
	// Good and Total are cumulative events since Start.
	Good  uint64 `json:"good"`
	Total uint64 `json:"total"`
	// ErrorRate is the lifetime (since Start) error ratio.
	ErrorRate float64 `json:"error_rate"`
	// BudgetConsumed is the fraction of the period's error budget used
	// (>= 1 means the budget is spent); BudgetRemaining is its
	// complement floored at 0.
	BudgetConsumed  float64        `json:"budget_consumed"`
	BudgetRemaining float64        `json:"budget_remaining"`
	Windows         []WindowReport `json:"windows"`
	// Alerting is true when every window is over its burn threshold —
	// the multi-window AND condition.
	Alerting bool `json:"alerting"`
}

// Report is the /v1/slo payload.
type Report struct {
	PeriodSeconds         float64           `json:"period_seconds"`
	SampleIntervalSeconds float64           `json:"sample_interval_seconds"`
	Objectives            []ObjectiveReport `json:"objectives"`
}

// rate returns the error ratio of the delta between two samples; zero
// when the interval saw no events.
func rate(from, to sample) float64 {
	dTotal := int64(to.total) - int64(from.total)
	dGood := int64(to.good) - int64(from.good)
	if dTotal <= 0 {
		return 0
	}
	bad := dTotal - dGood
	if bad < 0 {
		bad = 0
	}
	return float64(bad) / float64(dTotal)
}

// Report computes the current SLO state for every objective. The head
// sample is taken live from each source, so an error burst is visible in
// the report immediately — the sampler only fills in history.
func (s *Set) Report() Report {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Report{
		PeriodSeconds:         s.cfg.Period.Seconds(),
		SampleIntervalSeconds: s.cfg.SampleInterval.Seconds(),
		Objectives:            []ObjectiveReport{},
	}
	for _, tr := range s.trackers {
		good, total := tr.obj.Source.Counts()
		head := sample{at: now, good: good, total: total}
		budget := 1 - tr.obj.Target
		or := ObjectiveReport{
			Name:        tr.obj.Name,
			Description: tr.obj.Description,
			Target:      tr.obj.Target,
			Good:        head.good - tr.base.good,
			Total:       head.total - tr.base.total,
			ErrorRate:   rate(tr.base, head),
		}
		or.BudgetConsumed = rate(tr.at(now.Add(-s.cfg.Period)), head) / budget
		or.BudgetRemaining = 1 - or.BudgetConsumed
		if or.BudgetRemaining < 0 {
			or.BudgetRemaining = 0
		}
		firingAll := len(s.cfg.Windows) > 0
		for _, w := range s.cfg.Windows {
			er := rate(tr.at(now.Add(-w.Duration)), head)
			wr := WindowReport{
				Name:      w.Name,
				Seconds:   w.Duration.Seconds(),
				ErrorRate: er,
				BurnRate:  er / budget,
				MaxBurn:   w.MaxBurn,
			}
			wr.Firing = wr.BurnRate >= w.MaxBurn
			if !wr.Firing {
				firingAll = false
			}
			or.Windows = append(or.Windows, wr)
		}
		or.Alerting = firingAll
		out.Objectives = append(out.Objectives, or)
	}
	return out
}

// sloCollector refreshes the ns_slo_* gauges from a Set at exposition.
type sloCollector struct {
	set *Set

	target    *metrics.GaugeVec // ns_slo_target{slo}
	errRate   *metrics.GaugeVec // ns_slo_error_rate{slo,window}
	burnRate  *metrics.GaugeVec // ns_slo_burn_rate{slo,window}
	consumed  *metrics.GaugeVec // ns_slo_budget_consumed{slo}
	remaining *metrics.GaugeVec // ns_slo_budget_remaining{slo}
	firing    *metrics.GaugeVec // ns_slo_alert_firing{slo}
	events    *metrics.GaugeVec // ns_slo_events{slo,result}
}

// Register publishes the set's state as ns_slo_* metrics in reg,
// refreshed on every exposition via a collector.
func (s *Set) Register(reg *metrics.Registry) {
	c := &sloCollector{
		set: s,
		target: reg.GaugeVec("ns_slo_target",
			"Success-ratio target of the objective.", "slo"),
		errRate: reg.GaugeVec("ns_slo_error_rate",
			"Windowed error ratio per objective and burn window.", "slo", "window"),
		burnRate: reg.GaugeVec("ns_slo_burn_rate",
			"Error-budget burn rate per objective and window (1.0 = burning exactly the budget).", "slo", "window"),
		consumed: reg.GaugeVec("ns_slo_budget_consumed",
			"Fraction of the period's error budget consumed.", "slo"),
		remaining: reg.GaugeVec("ns_slo_budget_remaining",
			"Fraction of the period's error budget remaining (floored at 0).", "slo"),
		firing: reg.GaugeVec("ns_slo_alert_firing",
			"1 when every burn window exceeds its threshold (multi-window alert).", "slo"),
		events: reg.GaugeVec("ns_slo_events",
			"Cumulative events seen by the objective since tracking started.", "slo", "result"),
	}
	reg.RegisterCollector(c)
}

func (c *sloCollector) Collect() {
	rep := c.set.Report()
	for _, o := range rep.Objectives {
		c.target.With(o.Name).Set(o.Target)
		c.consumed.With(o.Name).Set(o.BudgetConsumed)
		c.remaining.With(o.Name).Set(o.BudgetRemaining)
		firing := 0.0
		if o.Alerting {
			firing = 1
		}
		c.firing.With(o.Name).Set(firing)
		c.events.With(o.Name, "good").Set(float64(o.Good))
		c.events.With(o.Name, "total").Set(float64(o.Total))
		for _, w := range o.Windows {
			c.errRate.With(o.Name, w.Name).Set(w.ErrorRate)
			c.burnRate.With(o.Name, w.Name).Set(w.BurnRate)
		}
	}
}
