package slo

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/neurosym/nsbench/internal/metrics"
)

// counterSource is a hand-driven Source for deterministic tests.
type counterSource struct{ good, total atomic.Uint64 }

func (c *counterSource) Counts() (uint64, uint64) { return c.good.Load(), c.total.Load() }

// observe feeds n events, bad of them failures.
func (c *counterSource) observe(n, bad uint64) {
	c.total.Add(n)
	c.good.Add(n - bad)
}

// newStartedSet builds a Set with one objective over src and starts it
// with a long sample interval, so tests control every count transition.
func newStartedSet(t *testing.T, target float64, src Source, windows []Window) *Set {
	t.Helper()
	s := NewSet(Config{SampleInterval: time.Hour, Period: time.Hour, Windows: windows})
	if err := s.Add(Objective{Name: "obj", Target: target, Source: src}); err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Close)
	return s
}

func TestAddValidation(t *testing.T) {
	src := &counterSource{}
	cases := []struct {
		name string
		obj  Objective
	}{
		{"empty name", Objective{Target: 0.9, Source: src}},
		{"target zero", Objective{Name: "a", Target: 0, Source: src}},
		{"target one", Objective{Name: "a", Target: 1, Source: src}},
		{"nil source", Objective{Name: "a", Target: 0.9}},
	}
	for _, tc := range cases {
		s := NewSet(Config{})
		if err := s.Add(tc.obj); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	s := NewSet(Config{})
	if err := s.Add(Objective{Name: "a", Target: 0.9, Source: src}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Objective{Name: "a", Target: 0.9, Source: src}); err == nil {
		t.Error("duplicate objective accepted")
	}
	s.Start()
	defer s.Close()
	if err := s.Add(Objective{Name: "b", Target: 0.9, Source: src}); err == nil {
		t.Error("post-Start Add accepted")
	}
}

func TestReportBurnRateMath(t *testing.T) {
	src := &counterSource{}
	// Baseline traffic before Start must not count against the budget.
	src.observe(100, 50)
	s := newStartedSet(t, 0.99, src, nil) // budget 0.01, default windows

	rep := s.Report()
	o := rep.Objectives[0]
	if o.Total != 0 || o.ErrorRate != 0 || o.BudgetConsumed != 0 {
		t.Fatalf("pre-traffic report not clean: %+v", o)
	}

	// 100 events, 2 failures: error rate 0.02 against a 0.01 budget means
	// burn rate 2.0 and a fully consumed (clamped) budget.
	src.observe(100, 2)
	o = s.Report().Objectives[0]
	if o.Good != 98 || o.Total != 100 {
		t.Fatalf("good/total = %d/%d, want 98/100", o.Good, o.Total)
	}
	if got, want := o.ErrorRate, 0.02; !approx(got, want) {
		t.Fatalf("error rate = %v, want %v", got, want)
	}
	if got, want := o.BudgetConsumed, 2.0; !approx(got, want) {
		t.Fatalf("budget consumed = %v, want %v", got, want)
	}
	if o.BudgetRemaining != 0 {
		t.Fatalf("budget remaining = %v, want 0 (floored)", o.BudgetRemaining)
	}
	if len(o.Windows) != 2 {
		t.Fatalf("windows = %d, want the default fast/slow pair", len(o.Windows))
	}
	for _, w := range o.Windows {
		// No sampler history yet: every window falls back to the Start
		// baseline and sees the full 0.02 error rate → burn 2.0.
		if !approx(w.BurnRate, 2.0) {
			t.Fatalf("window %s burn = %v, want 2.0", w.Name, w.BurnRate)
		}
	}
}

// approx absorbs the float division noise in burn-rate ratios.
func approx(got, want float64) bool {
	d := got - want
	return d < 1e-9 && d > -1e-9
}

func TestMultiWindowAlertIsAnAnd(t *testing.T) {
	src := &counterSource{}
	// Burn rate will be 5.0 (error rate 0.05 / budget 0.01): over the
	// fast threshold but under the slow one → no alert.
	s := newStartedSet(t, 0.99, src, []Window{
		{Name: "fast", Duration: time.Minute, MaxBurn: 2},
		{Name: "slow", Duration: 5 * time.Minute, MaxBurn: 100},
	})
	src.observe(100, 5)
	o := s.Report().Objectives[0]
	if !o.Windows[0].Firing || o.Windows[1].Firing {
		t.Fatalf("window firing = %v/%v, want true/false", o.Windows[0].Firing, o.Windows[1].Firing)
	}
	if o.Alerting {
		t.Fatal("alert fired with only one window over threshold")
	}

	// Both windows over threshold → alert.
	s2 := newStartedSet(t, 0.99, &counterSource{}, []Window{
		{Name: "fast", Duration: time.Minute, MaxBurn: 2},
		{Name: "slow", Duration: 5 * time.Minute, MaxBurn: 2},
	})
	src2 := s2.trackers[0].obj.Source.(*counterSource)
	src2.observe(100, 5)
	if o := s2.Report().Objectives[0]; !o.Alerting {
		t.Fatalf("alert not firing with every window over threshold: %+v", o)
	}
}

func TestWindowedRatesUseSampledHistory(t *testing.T) {
	// Drive the tracker directly: a burst of errors followed by clean
	// traffic must age out of a short window while the lifetime error
	// rate keeps counting it.
	src := &counterSource{}
	s := NewSet(Config{SampleInterval: time.Second, Period: time.Hour, Windows: []Window{
		{Name: "fast", Duration: 10 * time.Second, MaxBurn: 14.4},
	}})
	if err := s.Add(Objective{Name: "obj", Target: 0.99, Source: src}); err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()

	tr := s.trackers[0]
	now := time.Now()
	// t-60s: burst of 50 failures in 100 events already absorbed.
	src.observe(100, 50)
	s.mu.Lock()
	tr.push(sample{at: now.Add(-60 * time.Second), good: src.good.Load(), total: src.total.Load()})
	s.mu.Unlock()
	// t-5s (inside the 10s window): clean counts after the burst.
	src.observe(100, 0)
	s.mu.Lock()
	tr.push(sample{at: now.Add(-5 * time.Second), good: src.good.Load(), total: src.total.Load()})
	s.mu.Unlock()
	// More clean traffic since.
	src.observe(50, 0)

	o := s.Report().Objectives[0]
	if o.Windows[0].ErrorRate != 0 {
		t.Fatalf("windowed error rate = %v, want 0 (burst is older than the window)", o.Windows[0].ErrorRate)
	}
	if o.ErrorRate <= 0.1 {
		t.Fatalf("lifetime error rate = %v, want > 0.1 (burst still counted)", o.ErrorRate)
	}
	if o.BudgetConsumed <= 1 {
		t.Fatalf("budget consumed = %v, want > 1 (burst inside the period)", o.BudgetConsumed)
	}
}

func TestFromHistogram(t *testing.T) {
	reg := metrics.NewRegistry()
	h := reg.Histogram("lat", "test", []float64{0.1, 1})
	h.Observe(0.05) // good at threshold 0.1
	h.Observe(0.5)  // over
	h.Observe(5)    // overflow bucket
	good, total := FromHistogram(h, 0.1).Counts()
	if good != 1 || total != 3 {
		t.Fatalf("good/total = %d/%d, want 1/3", good, total)
	}
	// A threshold between bucket bounds rounds down (conservative).
	good, _ = FromHistogram(h, 0.9).Counts()
	if good != 1 {
		t.Fatalf("good at 0.9 = %d, want 1 (bucket resolution rounds down)", good)
	}
	good, _ = FromHistogram(h, 1).Counts()
	if good != 2 {
		t.Fatalf("good at 1.0 = %d, want 2", good)
	}
}

func TestTrackerRingEviction(t *testing.T) {
	tr := &tracker{ring: make([]sample, 3)}
	base := time.Now()
	for i := 0; i < 5; i++ {
		tr.push(sample{at: base.Add(time.Duration(i) * time.Second), total: uint64(i)})
	}
	// Samples 2, 3, 4 survive; at() finds the newest one <= the cutoff.
	got := tr.at(base.Add(3500 * time.Millisecond))
	if got.total != 3 {
		t.Fatalf("at(+3.5s).total = %d, want 3", got.total)
	}
	// Cutoffs before all held samples fall back to the baseline.
	if got := tr.at(base.Add(time.Second)); got.total != 0 {
		t.Fatalf("pre-history cutoff total = %d, want baseline 0", got.total)
	}
}

func TestRegisterExportsMetrics(t *testing.T) {
	src := &counterSource{}
	s := newStartedSet(t, 0.99, src, nil)
	reg := metrics.NewRegistry()
	s.Register(reg)
	src.observe(10, 1)
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`ns_slo_target{slo="obj"} 0.99`,
		`ns_slo_burn_rate{slo="obj",window="fast"}`,
		`ns_slo_budget_consumed{slo="obj"}`,
		`ns_slo_alert_firing{slo="obj"}`,
		`ns_slo_events{slo="obj",result="total"} 10`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestReportJSONShape(t *testing.T) {
	s := newStartedSet(t, 0.999, &counterSource{}, nil)
	b, err := json.Marshal(s.Report())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"period_seconds"`, `"objectives"`, `"budget_consumed"`, `"windows"`, `"burn_rate"`, `"alerting"`} {
		if !bytes.Contains(b, []byte(key)) {
			t.Errorf("report JSON missing %s: %s", key, b)
		}
	}
}
