package vsa

import (
	"fmt"
	"testing"

	"github.com/neurosym/nsbench/internal/ops"
)

func TestMAPBindSelfInverse(t *testing.T) {
	s := NewSpace(MAP, 1024, 1)
	e := ops.New()
	a, b := s.Random(), s.Random()
	bound := s.Bind(e, a, b)
	rec := s.Unbind(e, a, bound)
	if sim := s.Similarity(e, rec, b); sim < 0.999 {
		t.Fatalf("MAP unbind similarity = %v, want ~1", sim)
	}
}

func TestMAPBoundDissimilarToOperands(t *testing.T) {
	s := NewSpace(MAP, 2048, 2)
	e := ops.New()
	a, b := s.Random(), s.Random()
	bound := s.Bind(e, a, b)
	if sim := s.Similarity(e, bound, a); sim > 0.15 || sim < -0.15 {
		t.Fatalf("bound vector too similar to operand: %v", sim)
	}
}

func TestHRRBindApproxInverse(t *testing.T) {
	s := NewSpace(HRR, 1024, 3)
	e := ops.New()
	a, b := s.Random(), s.Random()
	bound := s.Bind(e, a, b)
	rec := s.Unbind(e, a, bound)
	if sim := s.Similarity(e, rec, b); sim < 0.5 {
		t.Fatalf("HRR unbind similarity = %v, want > 0.5", sim)
	}
}

func TestBundlePreservesSimilarity(t *testing.T) {
	for _, model := range []Model{MAP, HRR} {
		s := NewSpace(model, 2048, 4)
		e := ops.New()
		a, b, c := s.Random(), s.Random(), s.Random()
		bun := s.Bundle(e, a, b)
		if sa := s.Similarity(e, bun, a); sa < 0.3 {
			t.Fatalf("%v bundle lost member similarity: %v", model, sa)
		}
		if sc := s.Similarity(e, bun, c); sc > 0.2 || sc < -0.2 {
			t.Fatalf("%v bundle similar to non-member: %v", model, sc)
		}
	}
}

func TestPermuteChangesAndInverts(t *testing.T) {
	s := NewSpace(MAP, 512, 5)
	e := ops.New()
	a := s.Random()
	p := s.Permute(e, a, 7)
	if sim := s.Similarity(e, p, a); sim > 0.3 {
		t.Fatalf("permuted vector too similar: %v", sim)
	}
	back := s.Permute(e, p, -7)
	if sim := s.Similarity(e, back, a); sim < 0.999 {
		t.Fatalf("permutation not inverted: %v", sim)
	}
}

func TestCodebookCleanup(t *testing.T) {
	s := NewSpace(MAP, 1024, 6)
	e := ops.New()
	names := []string{"circle", "square", "triangle", "star"}
	cb := NewCodebook(s, names)
	for _, n := range names {
		got, score := cb.Cleanup(e, cb.Vector(n))
		if got != n {
			t.Fatalf("cleanup(%s) = %s", n, got)
		}
		if score < 0.999 {
			t.Fatalf("cleanup score = %v", score)
		}
	}
}

func TestCodebookCleanupNoisy(t *testing.T) {
	s := NewSpace(MAP, 2048, 7)
	e := ops.New()
	cb := NewCodebook(s, []string{"a", "b", "c"})
	// Bundle the target with an unrelated vector: cleanup should still win.
	noisy := s.Bundle(e, cb.Vector("b"), s.Random())
	got, _ := cb.Cleanup(e, noisy)
	if got != "b" {
		t.Fatalf("noisy cleanup = %s, want b", got)
	}
}

func TestCodebookDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate symbol")
		}
	}()
	NewCodebook(NewSpace(MAP, 64, 8), []string{"x", "x"})
}

func TestCodebookScoresShapeAndBytes(t *testing.T) {
	s := NewSpace(HRR, 256, 9)
	e := ops.New()
	cb := NewCodebook(s, []string{"p", "q", "r", "t", "u"})
	scores := cb.Scores(e, s.Random())
	if scores.Size() != 5 {
		t.Fatalf("scores size = %d", scores.Size())
	}
	if cb.Bytes() != int64(5*256*4) {
		t.Fatalf("codebook bytes = %d", cb.Bytes())
	}
	if cb.Len() != 5 {
		t.Fatalf("codebook len = %d", cb.Len())
	}
}

func TestLSHEncoderLocality(t *testing.T) {
	s := NewSpace(MAP, 2048, 10)
	enc := NewLSHEncoder(s, 32, 11)
	e := ops.New()
	g := NewSpace(MAP, 32, 12) // reuse RNG plumbing for feature draws
	f1 := g.rng.Normal(0, 1, 32)
	// A small perturbation of f1 must hash nearby; an unrelated vector far.
	f2 := f1.Clone()
	for i := 0; i < 3; i++ {
		f2.Data()[i] += 0.01
	}
	f3 := g.rng.Normal(0, 1, 32)
	h1 := enc.Encode(e, f1)
	h2 := enc.Encode(e, f2)
	h3 := enc.Encode(e, f3)
	near := s.Similarity(e, h1, h2)
	far := s.Similarity(e, h1, h3)
	if near < 0.9 {
		t.Fatalf("LSH near similarity = %v", near)
	}
	if far > near-0.3 {
		t.Fatalf("LSH failed to separate: near=%v far=%v", near, far)
	}
	if enc.Bytes() != int64(2048*32*4) {
		t.Fatalf("encoder bytes = %d", enc.Bytes())
	}
}

func TestModelStrings(t *testing.T) {
	if MAP.String() != "MAP" || HRR.String() != "HRR" {
		t.Fatal("model strings wrong")
	}
	if fmt.Sprint(Model(9)) != "Model(9)" {
		t.Fatal("unknown model string wrong")
	}
}

func TestHRRBundleOfBindingsDecodable(t *testing.T) {
	// The NVSA pattern: bundle several role-filler bindings, then probe.
	s := NewSpace(HRR, 2048, 13)
	e := ops.New()
	roleA, roleB := s.Random(), s.Random()
	fillerX, fillerY := s.Random(), s.Random()
	record := s.Bundle(e, s.Bind(e, roleA, fillerX), s.Bind(e, roleB, fillerY))
	gotX := s.Unbind(e, roleA, record)
	if sim := s.Similarity(e, gotX, fillerX); sim < 0.3 {
		t.Fatalf("role-filler retrieval = %v", sim)
	}
	// Cross-probe must not retrieve the other filler strongly.
	if leak := s.Similarity(e, gotX, fillerY); leak > 0.25 {
		t.Fatalf("cross-role leak = %v", leak)
	}
}
