// Package vsa implements vector-symbolic architectures (hyperdimensional
// computing): high-dimensional distributed representations with binding,
// bundling, permutation and similarity operators, plus item memories
// (codebooks) with cleanup.
//
// Two models are provided, matching the workloads that use them:
//
//   - MAP (Multiply-Add-Permute) over bipolar {-1,+1} vectors, where binding
//     is the Hadamard product (self-inverse) — used by VSAIT's hyperspace
//     encoding.
//   - HRR (Holographic Reduced Representations) over real vectors, where
//     binding is circular convolution and unbinding circular correlation —
//     the algebra behind NVSA's codebook reasoning.
//
// All operations run through the instrumented ops engine so they appear in
// the workload traces as the vector/element-wise symbolic kernels the paper
// characterizes.
package vsa

import (
	"fmt"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/tensor"
)

// Model selects the hypervector algebra.
type Model int

// Supported algebras.
const (
	MAP Model = iota // bipolar, Hadamard binding
	HRR              // real, circular-convolution binding
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case MAP:
		return "MAP"
	case HRR:
		return "HRR"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Space is a hypervector space of fixed dimensionality and algebra.
type Space struct {
	Dim   int
	Model Model
	rng   *tensor.RNG
}

// NewSpace returns a space with its own deterministic generator.
func NewSpace(model Model, dim int, seed int64) *Space {
	if dim <= 0 {
		panic("vsa: dimension must be positive")
	}
	return &Space{Dim: dim, Model: model, rng: tensor.NewRNG(seed)}
}

// Random draws a fresh random hypervector of the space's distribution.
func (s *Space) Random() *tensor.Tensor {
	switch s.Model {
	case MAP:
		return s.rng.Bipolar(s.Dim)
	case HRR:
		return s.rng.HRRVector(s.Dim)
	default:
		panic("vsa: unknown model")
	}
}

// Bind combines two hypervectors into one dissimilar to both.
func (s *Space) Bind(e *ops.Engine, a, b *tensor.Tensor) *tensor.Tensor {
	switch s.Model {
	case MAP:
		return e.Mul(a, b)
	case HRR:
		return e.CircularConv(a, b)
	default:
		panic("vsa: unknown model")
	}
}

// Unbind inverts a binding: Unbind(a, Bind(a,b)) ≈ b.
func (s *Space) Unbind(e *ops.Engine, a, bound *tensor.Tensor) *tensor.Tensor {
	switch s.Model {
	case MAP:
		return e.Mul(a, bound) // bipolar binding is self-inverse
	case HRR:
		return e.CircularCorr(a, bound)
	default:
		panic("vsa: unknown model")
	}
}

// Bundle superimposes hypervectors. For MAP the result is re-bipolarized by
// sign; for HRR it is L2-normalized.
func (s *Space) Bundle(e *ops.Engine, vs ...*tensor.Tensor) *tensor.Tensor {
	if len(vs) == 0 {
		panic("vsa: Bundle of no vectors")
	}
	acc := vs[0]
	for _, v := range vs[1:] {
		acc = e.Add(acc, v)
	}
	switch s.Model {
	case MAP:
		return e.Sign(acc)
	case HRR:
		return e.Normalize(acc)
	default:
		panic("vsa: unknown model")
	}
}

// Permute applies the space's permutation operator (circular shift by k),
// used to encode order and roles.
func (s *Space) Permute(e *ops.Engine, v *tensor.Tensor, k int) *tensor.Tensor {
	return e.Roll(v, k)
}

// Similarity returns the scalar similarity of two hypervectors: normalized
// Hamming agreement mapped to [-1,1] for MAP (equivalently cosine), cosine
// for HRR.
func (s *Space) Similarity(e *ops.Engine, a, b *tensor.Tensor) float32 {
	return e.CosineSimilarity(a, b).Item()
}

// Codebook is an item memory mapping symbols to hypervectors, with
// similarity-based cleanup. NVSA's "codebook" frontend is an instance.
type Codebook struct {
	space   *Space
	Names   []string
	Vectors *tensor.Tensor // n × dim matrix of item vectors
	index   map[string]int
}

// NewCodebook allocates random item vectors for the given symbols.
func NewCodebook(space *Space, names []string) *Codebook {
	cb := &Codebook{
		space:   space,
		Names:   append([]string(nil), names...),
		Vectors: tensor.New(len(names), space.Dim),
		index:   make(map[string]int, len(names)),
	}
	for i, n := range names {
		if _, dup := cb.index[n]; dup {
			panic(fmt.Sprintf("vsa: duplicate codebook symbol %q", n))
		}
		cb.index[n] = i
		v := space.Random()
		copy(cb.Vectors.Data()[i*space.Dim:(i+1)*space.Dim], v.Data())
	}
	return cb
}

// Len returns the number of stored items.
func (c *Codebook) Len() int { return len(c.Names) }

// Bytes returns the codebook storage footprint.
func (c *Codebook) Bytes() int64 { return c.Vectors.Bytes() }

// Vector returns the hypervector for a symbol.
func (c *Codebook) Vector(name string) *tensor.Tensor {
	i, ok := c.index[name]
	if !ok {
		panic(fmt.Sprintf("vsa: unknown codebook symbol %q", name))
	}
	return tensor.FromSlice(c.Vectors.Data()[i*c.space.Dim:(i+1)*c.space.Dim], c.space.Dim)
}

// Scores returns the similarity of a query against every stored item as a
// length-n tensor, computed as a single instrumented matrix-vector product.
func (c *Codebook) Scores(e *ops.Engine, query *tensor.Tensor) *tensor.Tensor {
	raw := e.MatVec(c.Vectors, query)
	// Normalize by norms to make scores cosine similarities.
	norms := tensor.New(c.Len())
	for i := 0; i < c.Len(); i++ {
		row := tensor.FromSlice(c.Vectors.Data()[i*c.space.Dim:(i+1)*c.space.Dim], c.space.Dim)
		norms.Data()[i] = row.Norm() * query.Norm()
	}
	for i, v := range norms.Data() {
		if v == 0 {
			norms.Data()[i] = 1
		}
	}
	return e.Div(raw, norms)
}

// Cleanup returns the stored symbol most similar to the query and its score.
func (c *Codebook) Cleanup(e *ops.Engine, query *tensor.Tensor) (string, float32) {
	scores := c.Scores(e, query)
	best := tensor.ArgMax(scores)
	return c.Names[best], scores.At(best)
}

// LSHEncoder hashes arbitrary feature vectors into the hyperspace by random
// projection followed by sign — the locality-sensitive hashing VSAIT uses to
// encode image features as bipolar hypervectors.
type LSHEncoder struct {
	Proj *tensor.Tensor // dim × in random projection
	dim  int
}

// NewLSHEncoder returns an encoder from in-dimensional features to the
// space's dimensionality.
func NewLSHEncoder(space *Space, in int, seed int64) *LSHEncoder {
	g := tensor.NewRNG(seed)
	return &LSHEncoder{Proj: g.Normal(0, 1, space.Dim, in), dim: space.Dim}
}

// Bytes returns the projection storage footprint.
func (l *LSHEncoder) Bytes() int64 { return l.Proj.Bytes() }

// Encode hashes a feature vector into a bipolar hypervector.
func (l *LSHEncoder) Encode(e *ops.Engine, features *tensor.Tensor) *tensor.Tensor {
	proj := e.MatVec(l.Proj, features)
	return e.Sign(proj)
}
