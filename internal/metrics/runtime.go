package metrics

import (
	"runtime"
	"sync"
)

// GoCollector samples the Go runtime into a registry: goroutine count,
// heap gauges, GC cycle counter, and a histogram of individual GC pause
// times. Samples are taken at exposition time only (Collect is invoked by
// the registry before every scrape/snapshot), so an idle process pays
// nothing between scrapes.
type GoCollector struct {
	goroutines  *Gauge
	heapAlloc   *Gauge
	heapSys     *Gauge
	heapObjects *Gauge
	nextGC      *Gauge
	gcCycles    *Counter
	gcPause     *Histogram

	mu        sync.Mutex // serializes Collect's delta tracking
	lastNumGC uint32
}

// NewGoCollector registers the runtime metrics in r and returns the
// collector (already registered; the return value is only for tests).
func NewGoCollector(r *Registry) *GoCollector {
	c := &GoCollector{
		goroutines:  r.Gauge("go_goroutines", "Number of live goroutines."),
		heapAlloc:   r.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects."),
		heapSys:     r.Gauge("go_heap_sys_bytes", "Bytes of heap memory obtained from the OS."),
		heapObjects: r.Gauge("go_heap_objects", "Number of allocated heap objects."),
		nextGC:      r.Gauge("go_next_gc_bytes", "Heap size target of the next GC cycle."),
		gcCycles:    r.Counter("go_gc_cycles_total", "Completed GC cycles."),
		// GC pauses sit in the 10µs–10ms band on healthy processes; an
		// exponential ladder from 1µs to ~1s covers pathology too.
		gcPause: r.Histogram("go_gc_pause_seconds", "Stop-the-world GC pause durations.", ExponentialBuckets(1e-6, 4, 10)),
	}
	r.RegisterCollector(c)
	return c
}

// Collect samples the runtime. New GC pauses since the previous Collect
// are fed into the pause histogram from MemStats' 256-entry circular
// buffer; if more than 256 cycles elapsed between scrapes the overflow is
// counted in cycles but its pauses are lost (the buffer has wrapped).
func (c *GoCollector) Collect() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.goroutines.Set(float64(runtime.NumGoroutine()))
	c.heapAlloc.Set(float64(ms.HeapAlloc))
	c.heapSys.Set(float64(ms.HeapSys))
	c.heapObjects.Set(float64(ms.HeapObjects))
	c.nextGC.Set(float64(ms.NextGC))

	c.mu.Lock()
	defer c.mu.Unlock()
	delta := ms.NumGC - c.lastNumGC
	if delta > 0 {
		c.gcCycles.Add(uint64(delta))
		feed := delta
		if feed > uint32(len(ms.PauseNs)) {
			feed = uint32(len(ms.PauseNs))
		}
		for i := uint32(0); i < feed; i++ {
			pause := ms.PauseNs[(ms.NumGC-1-i)%uint32(len(ms.PauseNs))]
			c.gcPause.ObserveSeconds(int64(pause))
		}
		c.lastNumGC = ms.NumGC
	}
}
