package metrics

import (
	"encoding/json"
	"io"
)

// Snapshot is the JSON exposition form of a registry: every family with
// its resolved children, in the same deterministic order as WriteProm.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one metric family.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Kind    string           `json:"kind"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one child. Counters and gauges fill Value; histograms
// fill Count/Sum/Buckets (bucket counts are cumulative, Prometheus-style;
// bounds are formatted as strings so +Inf survives JSON).
type MetricSnapshot struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot  `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot captures the registry. Collectors run first. Like WriteProm,
// values are read lock-free, so a snapshot under load is approximate
// across metrics but internally consistent per histogram.
func (r *Registry) Snapshot() Snapshot {
	r.runCollectors()
	r.mu.RLock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.RUnlock()

	out := Snapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		f.mu.RLock()
		children := make([]*child, len(f.order))
		copy(children, f.order)
		f.mu.RUnlock()
		if len(children) == 0 {
			continue
		}
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind.String()}
		for _, c := range children {
			m := MetricSnapshot{}
			if len(f.labels) > 0 {
				m.Labels = make(map[string]string, len(f.labels))
				for i, l := range f.labels {
					m.Labels[l] = c.values[i]
				}
			}
			switch f.kind {
			case KindCounter:
				v := float64(c.ctr.Value())
				m.Value = &v
			case KindGauge:
				v := c.gauge.Value()
				m.Value = &v
			case KindHistogram:
				h := c.hist
				counts := h.counts()
				var cum uint64
				m.Buckets = make([]BucketSnapshot, 0, len(counts))
				for i, bound := range h.bounds {
					cum += counts[i]
					m.Buckets = append(m.Buckets, BucketSnapshot{LE: formatFloat(bound), Count: cum})
				}
				cum += counts[len(counts)-1]
				m.Buckets = append(m.Buckets, BucketSnapshot{LE: "+Inf", Count: cum})
				count := cum
				sum := h.Sum()
				m.Count = &count
				m.Sum = &sum
			}
			fs.Metrics = append(fs.Metrics, m)
		}
		out.Families = append(out.Families, fs)
	}
	return out
}

// WriteJSON writes the Snapshot form.
func (r *Registry) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(r.Snapshot())
}
