package metrics

import (
	"io"
	"testing"
)

// The acceptance bar for the hot path: counter increments and histogram
// observations must cost nanoseconds uncontended (< 50 ns/op), so
// instrumenting serving and kernel-dispatch paths is effectively free.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_depth", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-3)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(1e-3)
		}
	})
}

// BenchmarkVecWith measures the labeled lookup path — the cost a caller
// pays when it does NOT cache the child handle.
func BenchmarkVecWith(b *testing.B) {
	v := NewRegistry().CounterVec("bench_total", "", "endpoint", "code")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("/v1/characterize", "200").Inc()
	}
}

func BenchmarkWriteProm(b *testing.B) {
	r := NewRegistry()
	NewGoCollector(r)
	hv := r.HistogramVec("bench_seconds", "", nil, "endpoint")
	hv.With("/a").Observe(1e-3)
	hv.With("/b").Observe(1e-2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WriteProm(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
