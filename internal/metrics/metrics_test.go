package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Re-registration under the same name returns the same counter.
	if again := r.Counter("test_total", "help"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestCounterVecInternsChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs_total", "help", "endpoint", "code")
	a := v.With("/x", "200")
	b := v.With("/x", "200")
	if a != b {
		t.Fatal("same label values must intern to the same child")
	}
	v.With("/x", "500").Inc()
	a.Add(2)
	if a.Value() != 2 || v.With("/x", "500").Value() != 1 {
		t.Fatal("children must count independently")
	}
}

func TestRegistryPanicsOnRedefinition(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	for name, fn := range map[string]func(){
		"kind mismatch":  func() { r.Gauge("dup", "") },
		"label mismatch": func() { r.CounterVec("dup", "", "l") },
		"bad name":       func() { r.Counter("0bad", "") },
		"bad label":      func() { r.CounterVec("ok_total", "", "le") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "")
	g.Set(4)
	g.Add(-1.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestFuncBackedMetrics(t *testing.T) {
	r := NewRegistry()
	n := 7
	r.GaugeFunc("queue_depth", "", func() float64 { return float64(n) })
	r.CounterFunc("dispatched_total", "", func() uint64 { return uint64(n) * 2 })
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"queue_depth 7\n", "dispatched_total 14\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-5.565) > 1e-9 {
		t.Fatalf("sum = %v, want 5.565", got)
	}
	// Bucket semantics: v <= bound, so 0.01 lands in the first bucket.
	want := []uint64{2, 1, 1, 1}
	got := h.counts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "", []float64{1, 2, 4, 8})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
	// 100 observations uniform in (1, 2]: the 0.5-quantile interpolates
	// to ~1.5 inside the second bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 0.01 {
		t.Fatalf("p50 = %v, want ~1.5", got)
	}
	if got := h.Quantile(1); got > 2 {
		t.Fatalf("p100 = %v, want <= 2 (upper bound of the occupied bucket)", got)
	}
	// Overflow observations clamp to the highest finite bound.
	h.Observe(100)
	if got := h.Quantile(1); got != 8 {
		t.Fatalf("overflow quantile = %v, want 8", got)
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	if n := len(LatencyBuckets()); n != 16 {
		t.Fatalf("LatencyBuckets len = %d, want 16", n)
	}
}

// TestConcurrentUse exercises updates, child creation, and exposition in
// parallel; run under -race this is the registry's thread-safety proof.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h_seconds", "", nil)
	v := r.CounterVec("v_total", "", "worker")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := v.With(string(rune('a' + w)))
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-4)
				child.Inc()
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		var b strings.Builder
		if err := r.WriteProm(&b); err != nil {
			t.Fatal(err)
		}
		_ = r.Snapshot()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: counter=%d hist=%d, want 8000", c.Value(), h.Count())
	}
}

func TestGoCollector(t *testing.T) {
	r := NewRegistry()
	NewGoCollector(r)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"go_goroutines ", "go_heap_alloc_bytes ", "go_gc_cycles_total ", "go_gc_pause_seconds_bucket"} {
		if !strings.Contains(out, want) {
			t.Fatalf("runtime exposition missing %q:\n%s", want, out)
		}
	}
	var snap Snapshot = r.Snapshot()
	found := false
	for _, f := range snap.Families {
		if f.Name == "go_goroutines" {
			found = true
			if f.Metrics[0].Value == nil || *f.Metrics[0].Value < 1 {
				t.Fatalf("go_goroutines = %v, want >= 1", f.Metrics[0].Value)
			}
		}
	}
	if !found {
		t.Fatal("snapshot missing go_goroutines")
	}
}
