// Package metrics is a dependency-free, lock-cheap metrics registry for
// the nsbench serving and characterization stack.
//
// The paper behind this repo is a measurement study; metrics is what turns
// its one-off profiles into continuously observable signals. The package
// provides the three conventional metric types — monotonic Counter,
// settable Gauge, and fixed-bucket exponential Histogram — grouped into
// named families with optional labels, plus two exposition forms: the
// Prometheus text format (WriteProm) and a JSON snapshot (WriteJSON).
//
// Design points:
//
//   - Hot-path updates are single atomic operations (Counter.Inc,
//     Gauge.Set) or an atomic add plus a branch-free binary search
//     (Histogram.Observe); no locks, no allocation. The registry locks
//     only on metric *creation* and exposition, never on update.
//   - Handles are cheap to cache: Vec.With interns children, so callers
//     resolve labels once at startup and update lock-free afterwards.
//   - Exposition is deterministic: families appear in registration order
//     and children in creation order, so scrapes and golden tests are
//     stable.
//   - Sampled sources (the Go runtime, worker pools) publish through the
//     Collector interface or func-backed metrics, evaluated at exposition
//     time only.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the three metric types of a family.
type Kind uint8

// The metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE name for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Collector refreshes sampled metrics immediately before the registry is
// exposed. Register implementations with Registry.RegisterCollector; the
// registry calls Collect once per WriteProm/WriteJSON/Snapshot, outside
// any registry lock, so a Collect may create or update metrics freely.
type Collector interface {
	Collect()
}

// Registry owns a set of metric families. The zero value is not usable;
// construct with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	families   []*family
	byName     map[string]*family
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// RegisterCollector adds c to the set of collectors run before every
// exposition.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// runCollectors snapshots the collector list and runs it without holding
// the registry lock, so collectors may register metrics.
func (r *Registry) runCollectors() {
	r.mu.RLock()
	cs := make([]Collector, len(r.collectors))
	copy(cs, r.collectors)
	r.mu.RUnlock()
	for _, c := range cs {
		c.Collect()
	}
}

// family groups all children (label combinations) of one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histogram bucket upper bounds (exclusive of +Inf)

	mu       sync.RWMutex
	children map[string]*child
	order    []*child
}

// child is one (label values → metric) binding inside a family.
type child struct {
	values []string
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family registers or retrieves the named family, panicking on a
// redefinition with a different shape — metric names are API, and a
// silent mismatch would corrupt dashboards.
func (r *Registry) family(name, help string, kind Kind, labels []string, bounds []float64) *family {
	mustValidName(name)
	for _, l := range labels {
		mustValidLabel(l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("metrics: %s redefined as %s%v (was %s%v)", name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		bounds:   bounds,
		children: make(map[string]*child),
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// get interns the child for the given label values.
func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = &child{values: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		c.ctr = &Counter{}
	case KindGauge:
		c.gauge = &Gauge{}
	case KindHistogram:
		c.hist = newHistogram(f.bounds)
	}
	f.children[key] = c
	f.order = append(f.order, c)
	return c
}

// Counter registers (or retrieves) an unlabeled monotonic counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, KindCounter, nil, nil).get(nil).ctr
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — for monotonic sources that already keep their own
// atomics (e.g. a worker pool's dispatch counts).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.family(name, help, KindCounter, nil, nil).get(nil).ctr.fn = fn
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("metrics: CounterVec needs at least one label (use Counter)")
	}
	return &CounterVec{f: r.family(name, help, KindCounter, labels, nil)}
}

// Gauge registers (or retrieves) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, KindGauge, nil, nil).get(nil).gauge
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time — for point-in-time sources like queue depths.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.family(name, help, KindGauge, nil, nil).get(nil).gauge.fn = fn
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("metrics: GaugeVec needs at least one label (use Gauge)")
	}
	return &GaugeVec{f: r.family(name, help, KindGauge, labels, nil)}
}

// Histogram registers (or retrieves) an unlabeled histogram with the
// given ascending bucket upper bounds (a final +Inf bucket is implicit).
// Nil bounds select LatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.family(name, help, KindHistogram, nil, normalizeBounds(bounds)).get(nil).hist
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("metrics: HistogramVec needs at least one label (use Histogram)")
	}
	return &HistogramVec{f: r.family(name, help, KindHistogram, labels, normalizeBounds(bounds))}
}

// CounterVec resolves label values to Counter children.
type CounterVec struct{ f *family }

// With interns and returns the counter for the given label values. Cache
// the result on hot paths: With takes the family lock, Inc does not.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).ctr }

// GaugeVec resolves label values to Gauge children.
type GaugeVec struct{ f *family }

// With interns and returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).gauge }

// HistogramVec resolves label values to Histogram children.
type HistogramVec struct{ f *family }

// With interns and returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).hist }

// Counter is a monotonically increasing counter. Updates are single
// atomic adds; Value of a func-backed counter defers to its source.
type Counter struct {
	v  atomic.Uint64
	fn func() uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c.fn != nil {
		return c.fn()
	}
	return c.v.Load()
}

// Gauge is a float64 value that may go up and down, stored as atomic
// bits. Set is a single atomic store; Add is a CAS loop.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed exponential buckets. Observe
// is one branch-free binary search plus two atomic updates; quantiles are
// estimated at read time by linear interpolation inside the target
// bucket (the standard fixed-bucket estimator: exact bucket membership,
// interpolated position — accurate to the bucket resolution).
type Histogram struct {
	bounds  []float64       // ascending upper bounds; observations <= bounds[i] land in bucket i
	buckets []atomic.Uint64 // len(bounds)+1; the last is the +Inf overflow bucket
	sumBits atomic.Uint64   // float64 bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First index with bounds[i] >= v; len(bounds) selects the overflow
	// bucket. Hand-rolled to keep the hot path free of closure calls.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v > h.bounds[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSeconds records a duration in seconds given nanoseconds — the
// common caller shape is Observe(time.Since(start)).
func (h *Histogram) ObserveSeconds(nanos int64) { h.Observe(float64(nanos) / 1e9) }

// Count returns the total number of observations, computed as the sum of
// the bucket counts so it is always consistent with the buckets a
// concurrent reader sees.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// CountAtOrBelow returns how many observations landed in buckets whose
// upper bound is <= bound — the cumulative count the bucket resolution
// can answer exactly. A bound between two bucket boundaries rounds down
// to the lower boundary (the conservative side for "requests faster than
// X" SLO accounting: never counts a slow request as fast). This is the
// histogram-side feed for latency objectives (internal/slo).
func (h *Histogram) CountAtOrBelow(bound float64) uint64 {
	var n uint64
	for i, b := range h.bounds {
		if b > bound {
			break
		}
		n += h.buckets[i].Load()
	}
	return n
}

// counts loads every bucket once.
func (h *Histogram) counts() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution. Inside the target bucket the observations are assumed
// uniformly distributed (linear interpolation from the bucket's lower to
// upper bound); observations in the overflow bucket are clamped to the
// highest finite bound. Returns NaN when nothing has been observed.
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.counts()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(h.bounds) {
			// Overflow bucket: no finite upper bound to interpolate to.
			return h.bounds[len(h.bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		}
		return lower + (h.bounds[i]-lower)*((rank-prev)/float64(c))
	}
	return h.bounds[len(h.bounds)-1]
}

// ExponentialBuckets returns count upper bounds starting at start and
// growing by factor: start, start*factor, ... Start must be positive and
// factor > 1.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("metrics: ExponentialBuckets wants start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default request-latency bucketing: 100µs to
// ~3.3s doubling, in seconds. It spans cache hits (µs) through full
// characterization runs (hundreds of ms) with two-decade headroom.
func LatencyBuckets() []float64 { return ExponentialBuckets(100e-6, 2, 16) }

// OpBuckets is the default per-operator bucketing: 1µs to ~4s growing
// 4×, in seconds — operator times span six orders of magnitude, so the
// coarser factor keeps the bucket count small.
func OpBuckets() []float64 { return ExponentialBuckets(1e-6, 4, 12) }

func normalizeBounds(bounds []float64) []float64 {
	if bounds == nil {
		return LatencyBuckets()
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: histogram bounds must be ascending")
	}
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bound")
	}
	return append([]float64(nil), bounds...)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func mustValidName(name string) {
	if !validName(name, true) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
}

func mustValidLabel(label string) {
	if !validName(label, false) || label == "le" {
		panic(fmt.Sprintf("metrics: invalid label name %q", label))
	}
}

// validName checks the Prometheus name grammar: [a-zA-Z_:][a-zA-Z0-9_:]*
// for metrics (allowColon), [a-zA-Z_][a-zA-Z0-9_]* for labels.
func validName(s string, allowColon bool) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c == ':' && allowColon:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}
