package metrics

import (
	"runtime"
	"runtime/debug"
)

// RegisterBuildInfo publishes the ns_build_info gauge: constant value 1
// with the build identity as labels (Go runtime version, module version,
// and VCS revision when the binary was built from a checkout). Every
// nsbench-family binary registers it so a scrape can always answer "what
// exactly is running here?" — the conventional *_build_info idiom.
//
// Values that debug.ReadBuildInfo cannot supply (e.g. `go run`, test
// binaries) degrade to "unknown" rather than being omitted, so the label
// set is stable across build modes.
func RegisterBuildInfo(reg *Registry) {
	goVersion := runtime.Version()
	version, revision := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				revision = s.Value
			}
		}
	}
	reg.GaugeVec("ns_build_info",
		"Build identity of this binary (constant 1; identity in the labels).",
		"go_version", "version", "revision").
		With(goVersion, version, revision).Set(1)
}
