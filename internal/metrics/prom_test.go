package metrics

import (
	"bytes"
	"encoding/json"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestWritePromGolden pins the exact exposition of a small registry:
// ordering, HELP/TYPE lines, label quoting, and the histogram expansion.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "things counted").Add(3)
	g := r.GaugeVec("b_depth", "a queue", "q")
	g.With("main").Set(2)
	h := r.Histogram("c_seconds", "latency", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(9)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP a_total things counted",
		"# TYPE a_total counter",
		"a_total 3",
		"# HELP b_depth a queue",
		"# TYPE b_depth gauge",
		`b_depth{q="main"} 2`,
		"# HELP c_seconds latency",
		"# TYPE c_seconds histogram",
		`c_seconds_bucket{le="0.5"} 1`,
		`c_seconds_bucket{le="1"} 2`,
		`c_seconds_bucket{le="+Inf"} 3`,
		"c_seconds_sum 10",
		"c_seconds_count 3",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePromEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "line1\nline2 \\ backslash", "path").With(`a"b\c` + "\n").Inc()
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP esc_total line1\nline2 \\ backslash`) {
		t.Fatalf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{path="a\"b\\c\n"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
}

// promLine matches the exposition grammar loosely enough to lint every
// non-comment line a scraper would parse.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (\+Inf|-Inf|NaN|[-+0-9.eE]+)$`)

func lintProm(t *testing.T, out string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("invalid exposition line %q", line)
		}
	}
}

func TestWritePromLintsUnderLoad(t *testing.T) {
	r := NewRegistry()
	NewGoCollector(r)
	hv := r.HistogramVec("op_seconds", "per-op", OpBuckets(), "category", "phase")
	hv.With("MatMul", "neural").Observe(3e-5)
	hv.With("other", "symbolic").Observe(2)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	lintProm(t, buf.String())
}

// TestHistogramCumulativeInvariant checks le="+Inf" == _count on the same
// scrape, the invariant Prometheus clients validate.
func TestHistogramCumulativeInvariant(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("inv_seconds", "", []float64{1e-3, 1e-2})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 1e-4)
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	var inf, count string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, `inv_seconds_bucket{le="+Inf"} `) {
			inf = strings.TrimPrefix(line, `inv_seconds_bucket{le="+Inf"} `)
		}
		if strings.HasPrefix(line, "inv_seconds_count ") {
			count = strings.TrimPrefix(line, "inv_seconds_count ")
		}
	}
	if inf == "" || inf != count {
		t.Fatalf("le=+Inf (%s) != _count (%s)", inf, count)
	}
	if n, _ := strconv.Atoi(count); n != 100 {
		t.Fatalf("count = %s, want 100", count)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("j_total", "help").Add(5)
	h := r.Histogram("j_seconds", "", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(snap.Families) != 2 {
		t.Fatalf("families = %d, want 2", len(snap.Families))
	}
	hist := snap.Families[1]
	if hist.Kind != "histogram" || *hist.Metrics[0].Count != 2 {
		t.Fatalf("histogram snapshot wrong: %+v", hist)
	}
	last := hist.Metrics[0].Buckets[len(hist.Metrics[0].Buckets)-1]
	if last.LE != "+Inf" || last.Count != 2 {
		t.Fatalf("+Inf bucket = %+v, want count 2", last)
	}
}
