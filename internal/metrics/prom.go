package metrics

import (
	"bufio"
	"io"
	"math"
	"strconv"
)

// PromContentType is the Content-Type of the text exposition format
// written by WriteProm.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm writes every family in the Prometheus text exposition format
// (version 0.0.4): a # HELP and # TYPE line per family, one sample line
// per child, and the cumulative _bucket/_sum/_count expansion for
// histograms. Collectors run first, so sampled metrics are fresh. Output
// order is deterministic (registration then creation order).
//
// Samples are read lock-free while writers keep updating, so one scrape
// is not a consistent cut across metrics; within a histogram, _count is
// derived from the same bucket reads it is exposed with, preserving the
// le="+Inf" == _count invariant scrapers check.
func (r *Registry) WriteProm(w io.Writer) error {
	r.runCollectors()
	r.mu.RLock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.RUnlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.writeProm(bw)
	}
	return bw.Flush()
}

func (f *family) writeProm(w *bufio.Writer) {
	f.mu.RLock()
	children := make([]*child, len(f.order))
	copy(children, f.order)
	f.mu.RUnlock()
	if len(children) == 0 {
		return
	}

	if f.help != "" {
		w.WriteString("# HELP ")
		w.WriteString(f.name)
		w.WriteByte(' ')
		writeEscaped(w, f.help, false)
		w.WriteByte('\n')
	}
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.kind.String())
	w.WriteByte('\n')

	for _, c := range children {
		switch f.kind {
		case KindCounter:
			writeSample(w, f.name, "", f.labels, c.values, "", formatUint(c.ctr.Value()))
		case KindGauge:
			writeSample(w, f.name, "", f.labels, c.values, "", formatFloat(c.gauge.Value()))
		case KindHistogram:
			h := c.hist
			counts := h.counts()
			var cum uint64
			for i, bound := range h.bounds {
				cum += counts[i]
				writeSample(w, f.name, "_bucket", f.labels, c.values, formatFloat(bound), formatUint(cum))
			}
			cum += counts[len(counts)-1]
			writeSample(w, f.name, "_bucket", f.labels, c.values, "+Inf", formatUint(cum))
			writeSample(w, f.name, "_sum", f.labels, c.values, "", formatFloat(h.Sum()))
			writeSample(w, f.name, "_count", f.labels, c.values, "", formatUint(cum))
		}
	}
}

// writeSample emits one `name{labels} value` line. le, when non-empty, is
// appended as the trailing bucket label.
func writeSample(w *bufio.Writer, name, suffix string, labels, values []string, le, value string) {
	w.WriteString(name)
	w.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l)
			w.WriteString(`="`)
			writeEscaped(w, values[i], true)
			w.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(`le="`)
			w.WriteString(le)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// writeEscaped applies the exposition-format escapes: backslash and
// newline everywhere, plus double quotes inside label values.
func writeEscaped(w *bufio.Writer, s string, quoted bool) {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			w.WriteString(`\\`)
		case '\n':
			w.WriteString(`\n`)
		case '"':
			if quoted {
				w.WriteString(`\"`)
			} else {
				w.WriteByte(c)
			}
		default:
			w.WriteByte(c)
		}
	}
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
