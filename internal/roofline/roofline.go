// Package roofline implements the roofline performance model used in the
// paper's Fig. 3c analysis: attainable performance as a function of
// arithmetic intensity under peak-compute and peak-bandwidth ceilings.
package roofline

import (
	"fmt"
	"time"
)

// Model is a single-device roofline: a flat compute ceiling and a bandwidth
// slope meeting at the ridge point.
type Model struct {
	Name       string
	PeakGFLOPs float64 // peak FP32 throughput, GFLOP/s
	MemBWGBs   float64 // peak DRAM bandwidth, GB/s
}

// Ridge returns the arithmetic intensity (FLOPs/byte) at which the model
// transitions from memory-bound to compute-bound.
func (m Model) Ridge() float64 {
	if m.MemBWGBs == 0 {
		return 0
	}
	return m.PeakGFLOPs / m.MemBWGBs
}

// Attainable returns the roofline ceiling (GFLOP/s) at intensity ai.
func (m Model) Attainable(ai float64) float64 {
	bw := ai * m.MemBWGBs
	if bw < m.PeakGFLOPs {
		return bw
	}
	return m.PeakGFLOPs
}

// Bound classifies an intensity relative to the ridge point.
type Bound int

// Bound values.
const (
	MemoryBound Bound = iota
	ComputeBound
)

// String returns the bound label.
func (b Bound) String() string {
	if b == MemoryBound {
		return "memory-bound"
	}
	return "compute-bound"
}

// Classify returns the bound class of intensity ai.
func (m Model) Classify(ai float64) Bound {
	if ai < m.Ridge() {
		return MemoryBound
	}
	return ComputeBound
}

// Point is one workload component placed on the roofline.
type Point struct {
	Name       string
	AI         float64 // arithmetic intensity, FLOPs/byte
	PerfGFLOPs float64 // achieved performance
	Bound      Bound
	CeilingPct float64 // achieved / attainable, in percent
}

// Place builds a Point from a component's totals. flops and bytes are the
// component's analytic totals; seconds its (measured or projected) runtime.
func (m Model) Place(name string, flops, bytes int64, seconds float64) Point {
	p := Point{Name: name}
	if bytes > 0 {
		p.AI = float64(flops) / float64(bytes)
	}
	if seconds > 0 {
		p.PerfGFLOPs = float64(flops) / seconds / 1e9
	}
	p.Bound = m.Classify(p.AI)
	if att := m.Attainable(p.AI); att > 0 {
		p.CeilingPct = 100 * p.PerfGFLOPs / att
	}
	return p
}

// PlaceMeasured is Place with a measured wall-clock duration instead of
// raw seconds — the form the kernel benchmarks use to put achieved
// FLOP/s per operator against a device ceiling.
func (m Model) PlaceMeasured(name string, flops, bytes int64, d time.Duration) Point {
	return m.Place(name, flops, bytes, d.Seconds())
}

// String renders the point.
func (p Point) String() string {
	return fmt.Sprintf("%s: AI=%.3f flops/byte, %.2f GFLOP/s (%s, %.1f%% of ceiling)",
		p.Name, p.AI, p.PerfGFLOPs, p.Bound, p.CeilingPct)
}
