package roofline

import (
	"strings"
	"testing"
)

var rtx = Model{Name: "RTX 2080 Ti", PeakGFLOPs: 13450, MemBWGBs: 616}

func TestRidge(t *testing.T) {
	r := rtx.Ridge()
	if r < 21.8 || r > 21.9 {
		t.Fatalf("Ridge = %v", r)
	}
	if (Model{}).Ridge() != 0 {
		t.Fatal("zero model ridge must be 0")
	}
}

func TestAttainable(t *testing.T) {
	// Below the ridge: bandwidth slope.
	if got := rtx.Attainable(1); got != 616 {
		t.Fatalf("Attainable(1) = %v", got)
	}
	// Above the ridge: flat compute ceiling.
	if got := rtx.Attainable(100); got != 13450 {
		t.Fatalf("Attainable(100) = %v", got)
	}
}

func TestClassify(t *testing.T) {
	if rtx.Classify(0.25) != MemoryBound {
		t.Fatal("low AI must be memory-bound")
	}
	if rtx.Classify(50) != ComputeBound {
		t.Fatal("high AI must be compute-bound")
	}
	if MemoryBound.String() != "memory-bound" || ComputeBound.String() != "compute-bound" {
		t.Fatal("bound strings wrong")
	}
}

func TestPlace(t *testing.T) {
	// A GEMM-like component: 1e12 FLOPs over 1e10 bytes in 0.2 s.
	p := rtx.Place("neural", 1e12, 1e10, 0.2)
	if p.AI != 100 || p.Bound != ComputeBound {
		t.Fatalf("Place = %+v", p)
	}
	if p.PerfGFLOPs != 5000 {
		t.Fatalf("PerfGFLOPs = %v", p.PerfGFLOPs)
	}
	if p.CeilingPct < 37 || p.CeilingPct > 38 {
		t.Fatalf("CeilingPct = %v", p.CeilingPct)
	}
	// A symbolic component: low intensity.
	s := rtx.Place("symbolic", 1e9, 1e10, 0.05)
	if s.Bound != MemoryBound {
		t.Fatalf("symbolic bound = %v", s.Bound)
	}
	if !strings.Contains(s.String(), "memory-bound") {
		t.Fatalf("String = %s", s.String())
	}
}

func TestPlaceDegenerate(t *testing.T) {
	p := rtx.Place("x", 0, 0, 0)
	if p.AI != 0 || p.PerfGFLOPs != 0 {
		t.Fatalf("degenerate Place = %+v", p)
	}
}
