package nsvqa

import (
	"testing"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/trace"
)

func TestRunAnswersAllQuestions(t *testing.T) {
	// Run fails if any program answer disagrees with ground truth, so a
	// clean run IS the accuracy check (execution is exact by construction).
	w := New(Config{Questions: 16, Seed: 3})
	if err := w.Run(ops.New()); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteFilterCount(t *testing.T) {
	w := New(Config{Seed: 4})
	s := Scene{Objects: []Object{
		{Color: "red", Shape: "cube", Size: "small"},
		{Color: "red", Shape: "sphere", Size: "large"},
		{Color: "blue", Shape: "cube", Size: "small"},
	}}
	e := ops.New()
	p := Program{Steps: []Step{{Op: "filter_color", Arg: "red"}, {Op: "count"}}}
	if got := w.Execute(e, s, p); got != "2" {
		t.Fatalf("count = %s, want 2", got)
	}
	p2 := Program{Steps: []Step{{Op: "filter_size", Arg: "large"}, {Op: "filter_shape", Arg: "sphere"}, {Op: "exist"}}}
	if got := w.Execute(e, s, p2); got != "yes" {
		t.Fatalf("exist = %s, want yes", got)
	}
	p3 := Program{Steps: []Step{{Op: "filter_color", Arg: "yellow"}, {Op: "exist"}}}
	if got := w.Execute(e, s, p3); got != "no" {
		t.Fatalf("exist = %s, want no", got)
	}
}

func TestExecuteEqualInteger(t *testing.T) {
	w := New(Config{Seed: 5})
	s := Scene{Objects: []Object{
		{Color: "red"}, {Color: "blue"},
	}}
	sub := Program{Steps: []Step{{Op: "filter_color", Arg: "blue"}, {Op: "count"}}}
	p := Program{Steps: []Step{
		{Op: "filter_color", Arg: "red"}, {Op: "count"},
		{Op: "equal_integer", Arg2: &sub},
	}}
	if got := w.Execute(ops.New(), s, p); got != "yes" {
		t.Fatalf("equal_integer = %s, want yes", got)
	}
}

func TestPipelineShape(t *testing.T) {
	w := New(Config{Questions: 6})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	tr := e.Trace()
	if tr.PhaseDuration(trace.Neural) == 0 || tr.PhaseDuration(trace.Symbolic) == 0 {
		t.Fatal("both phases must record time")
	}
	// The symbolic executor is non-vector: pure "Others" operators.
	sh := tr.CategoryShare(trace.Symbolic)
	if sh[trace.Other] < 0.9 {
		t.Fatalf("symbolic Others share = %v, want ~1 (non-vector format)", sh[trace.Other])
	}
	// The executor depends on the perception output.
	g := trace.BuildGraph(tr)
	if n2s, _ := g.CrossPhaseEdges(); n2s == 0 {
		t.Fatal("executor must consume perception output")
	}
}

func TestGenSceneRendersInk(t *testing.T) {
	w := New(Config{Seed: 6})
	s := w.GenScene()
	if len(s.Objects) != 6 {
		t.Fatalf("objects = %d", len(s.Objects))
	}
	if s.Image.Sum() <= 0 {
		t.Fatal("scene rendered blank")
	}
}

func TestProgramString(t *testing.T) {
	p := Program{Steps: []Step{{Op: "filter_color", Arg: "red"}, {Op: "count"}}}
	if p.String() != "filter_color(red) → count" {
		t.Fatalf("String = %s", p.String())
	}
}

func TestNameCategory(t *testing.T) {
	w := New(Config{})
	if w.Name() != "NSVQA" || w.Category() != "Neuro|Symbolic" {
		t.Fatal("identity wrong")
	}
}
