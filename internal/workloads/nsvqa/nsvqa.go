// Package nsvqa implements the neuro-symbolic visual question answering
// workload of Table I (Yi et al., NeurIPS 2018; Neuro|Symbolic paradigm,
// non-vector symbolic format): a neural perception stage parses the scene
// into a structured object table, and a symbolic program executor runs a
// functional question program — filter / query / count / compare with
// pre-defined typed operators like equal_color and equal_integer — over
// that table.
//
// Scenes and question programs are generated together with ground truth,
// so execution accuracy is exact by construction; the characterization
// interest is the pipeline shape: a conv-heavy neural stage feeding a
// control-flow-heavy, non-vector symbolic stage.
package nsvqa

import (
	"fmt"

	"github.com/neurosym/nsbench/internal/nn"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

// Object attribute vocabularies.
var (
	Colors = []string{"red", "green", "blue", "yellow"}
	Shapes = []string{"cube", "sphere", "cylinder"}
	Sizes  = []string{"small", "large"}
)

// Object is one entry of the structured scene table.
type Object struct {
	Color, Shape, Size string
	X, Y               int
}

// Scene is the object table with its rendered image.
type Scene struct {
	Objects []Object
	Image   *tensor.Tensor // 1×3×H×W
}

// Config parameterizes the workload.
type Config struct {
	ImgSize   int   // rendered scene resolution; default 48
	Objects   int   // objects per scene; default 6
	Questions int   // programs executed per Run; default 8
	Seed      int64 // default 1
}

func (c *Config) defaults() {
	if c.ImgSize == 0 {
		c.ImgSize = 48
	}
	if c.Objects == 0 {
		c.Objects = 6
	}
	if c.Questions == 0 {
		c.Questions = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Workload is the NSVQA instance.
type Workload struct {
	cfg Config
	g   *tensor.RNG
	cnn *nn.CNN
}

// New constructs the workload.
func New(cfg Config) *Workload {
	cfg.defaults()
	g := tensor.NewRNG(cfg.Seed)
	return &Workload{
		cfg: cfg,
		g:   g,
		cnn: nn.NewCNN(g, "nsvqa.parser", nn.CNNConfig{InChannels: 3, InSize: cfg.ImgSize, Channels: []int{8, 16}, Residual: true, OutDim: 64}),
	}
}

// Name implements the workload identity.
func (w *Workload) Name() string { return "NSVQA" }

// Category returns the taxonomy category of Table I.
func (w *Workload) Category() string { return "Neuro|Symbolic" }

// Register records the model's persistent parameters.
func (w *Workload) Register(e *ops.Engine) { w.cnn.Register(e) }

// GenScene renders a random scene.
func (w *Workload) GenScene() Scene {
	s := Scene{Image: tensor.New(1, 3, w.cfg.ImgSize, w.cfg.ImgSize)}
	size := w.cfg.ImgSize
	for i := 0; i < w.cfg.Objects; i++ {
		o := Object{
			Color: Colors[w.g.Intn(len(Colors))],
			Shape: Shapes[w.g.Intn(len(Shapes))],
			Size:  Sizes[w.g.Intn(len(Sizes))],
			X:     w.g.Intn(size - 8),
			Y:     w.g.Intn(size - 8),
		}
		s.Objects = append(s.Objects, o)
		// Rasterize: an 8×8 patch whose channel intensities encode color.
		r := float32(1+indexOf(Colors, o.Color)) / float32(len(Colors))
		extent := 4
		if o.Size == "large" {
			extent = 8
		}
		for dy := 0; dy < extent; dy++ {
			for dx := 0; dx < extent; dx++ {
				px := (o.Y+dy)*size + o.X + dx
				s.Image.Data()[px] = r
				s.Image.Data()[size*size+px] = 1 - r
				s.Image.Data()[2*size*size+px] = float32(indexOf(Shapes, o.Shape)+1) / float32(len(Shapes))
			}
		}
	}
	return s
}

func indexOf(xs []string, v string) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// Program is a sequence of typed operators executed over the scene table.
type Program struct {
	Steps []Step
}

// Step is one operator application.
type Step struct {
	Op   string // "filter_color", "filter_shape", "filter_size", "count", "exist", "query_color", "equal_integer"
	Arg  string // attribute value for filters; second operand tag otherwise
	Arg2 *Program
}

// String renders the program.
func (p Program) String() string {
	out := ""
	for i, s := range p.Steps {
		if i > 0 {
			out += " → "
		}
		out += s.Op
		if s.Arg != "" {
			out += "(" + s.Arg + ")"
		}
	}
	return out
}

// GenQuestion samples a program with its ground-truth answer.
func (w *Workload) GenQuestion(s Scene) (Program, string) {
	switch w.g.Intn(3) {
	case 0: // how many <color> objects?
		c := Colors[w.g.Intn(len(Colors))]
		p := Program{Steps: []Step{{Op: "filter_color", Arg: c}, {Op: "count"}}}
		n := 0
		for _, o := range s.Objects {
			if o.Color == c {
				n++
			}
		}
		return p, fmt.Sprint(n)
	case 1: // is there a <size> <shape>?
		sz := Sizes[w.g.Intn(len(Sizes))]
		sh := Shapes[w.g.Intn(len(Shapes))]
		p := Program{Steps: []Step{{Op: "filter_size", Arg: sz}, {Op: "filter_shape", Arg: sh}, {Op: "exist"}}}
		ans := "no"
		for _, o := range s.Objects {
			if o.Size == sz && o.Shape == sh {
				ans = "yes"
			}
		}
		return p, ans
	default: // equal_integer(count(color a), count(color b))
		a := Colors[w.g.Intn(len(Colors))]
		b := Colors[w.g.Intn(len(Colors))]
		sub := Program{Steps: []Step{{Op: "filter_color", Arg: b}, {Op: "count"}}}
		p := Program{Steps: []Step{
			{Op: "filter_color", Arg: a}, {Op: "count"},
			{Op: "equal_integer", Arg2: &sub},
		}}
		na, nb := 0, 0
		for _, o := range s.Objects {
			if o.Color == a {
				na++
			}
			if o.Color == b {
				nb++
			}
		}
		if na == nb {
			return p, "yes"
		}
		return p, "no"
	}
}

// Run parses one scene and answers cfg.Questions generated questions.
func (w *Workload) Run(e *ops.Engine) error {
	w.Register(e)
	scene := w.GenScene()

	// ---- Neural: scene parsing ---------------------------------------------
	e.SetPhase(trace.Neural)
	img := e.HostToDevice(scene.Image)
	feats := w.cnn.Forward(e, img)
	host := e.DeviceToHost(e.Softmax(feats))

	// ---- Symbolic: structured scene + program execution ---------------------
	e.SetPhase(trace.Symbolic)
	// De-rendering: the structured object table, tied to the neural output
	// in the dataflow graph (the perception→executor pipeline edge).
	e.InStage("derender", func() {
		e.Logic("SceneParse", int64(len(scene.Objects)*8), int64(len(scene.Objects))*64, []*tensor.Tensor{host}, func() []*tensor.Tensor { return nil })
	})
	for q := 0; q < w.cfg.Questions; q++ {
		prog, want := w.GenQuestion(scene)
		got := w.Execute(e, scene, prog)
		if got != want {
			return fmt.Errorf("nsvqa: program %s answered %q, want %q", prog, got, want)
		}
	}
	return nil
}

// Execute runs a program over the scene table and returns the answer.
// Every operator application is recorded as a non-vector symbolic event.
func (w *Workload) Execute(e *ops.Engine, s Scene, p Program) string {
	objs := s.Objects
	count := -1
	answer := ""
	e.InStage("program_exec", func() {
		for _, st := range p.Steps {
			st := st
			// Sub-programs execute first so their events are not nested
			// inside (and double-counted by) this operator's timing.
			other := ""
			if st.Arg2 != nil {
				other = w.Execute(e, s, *st.Arg2)
			}
			e.Logic(st.Op, int64(len(objs)+1), int64(len(objs))*32, nil, func() []*tensor.Tensor {
				switch st.Op {
				case "filter_color", "filter_shape", "filter_size":
					var kept []Object
					for _, o := range objs {
						v := o.Color
						if st.Op == "filter_shape" {
							v = o.Shape
						} else if st.Op == "filter_size" {
							v = o.Size
						}
						if v == st.Arg {
							kept = append(kept, o)
						}
					}
					objs = kept
				case "count":
					count = len(objs)
					answer = fmt.Sprint(count)
				case "exist":
					if len(objs) > 0 {
						answer = "yes"
					} else {
						answer = "no"
					}
				case "equal_integer":
					if answer == other {
						answer = "yes"
					} else {
						answer = "no"
					}
				default:
					panic(fmt.Sprintf("nsvqa: unknown operator %q", st.Op))
				}
				return nil
			})
		}
	})
	return answer
}
