package lnn

import (
	"strings"
	"testing"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/trace"
)

func TestInferenceDerivesQueries(t *testing.T) {
	w := New(Config{Entities: 24, Seed: 3})
	e := ops.New()
	res, err := w.Infer(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no query results")
	}
	// Every professor is an employee via the two-hop taxonomy chain
	// professor → faculty → employee; that requires iterative inference.
	for q, ok := range res {
		if strings.HasPrefix(q, "employee(") && !ok {
			t.Fatalf("query %s should be derived true", q)
		}
	}
}

func TestMentorDerivation(t *testing.T) {
	w := New(Config{Entities: 30, Seed: 5})
	e := ops.New()
	res, err := w.Infer(e)
	if err != nil {
		t.Fatal(err)
	}
	// mentor(x) holds when x advises some student; verify against the KB.
	anyMentor := false
	for q, ok := range res {
		if strings.HasPrefix(q, "mentor(") {
			name := strings.TrimSuffix(strings.TrimPrefix(q, "mentor("), ")")
			advisesSomeone := false
			for _, c := range w.kb.Constants {
				if w.kb.Facts.Truth("advises", []string{name, c}) > 0 &&
					w.kb.Facts.Truth("student", []string{c}) > 0 {
					advisesSomeone = true
				}
			}
			if ok != advisesSomeone {
				t.Fatalf("mentor(%s) = %v, ground truth %v", name, ok, advisesSomeone)
			}
			if ok {
				anyMentor = true
			}
		}
	}
	if !anyMentor {
		t.Fatal("expected at least one derived mentor")
	}
}

func TestBothPhasesRecorded(t *testing.T) {
	w := New(Config{Entities: 24})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	tr := e.Trace()
	if tr.PhaseDuration(trace.Neural) == 0 || tr.PhaseDuration(trace.Symbolic) == 0 {
		t.Fatal("both phases must record time")
	}
	// The LNN neural profile is eltwise + data movement heavy (Fig. 3a).
	br := tr.CategoryBreakdown(trace.Neural)
	if br[trace.VectorEltwise] == 0 {
		t.Fatal("neural phase must contain element-wise bound arithmetic")
	}
	if br[trace.DataMovement] == 0 {
		t.Fatal("neural phase must contain bidirectional writeback movement")
	}
	// The symbolic phase is gather/transform heavy.
	bs := tr.CategoryBreakdown(trace.Symbolic)
	if bs[trace.DataTransform] == 0 {
		t.Fatal("symbolic phase must contain grounding gathers")
	}
}

func TestStages(t *testing.T) {
	w := New(Config{Entities: 24})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	stages := map[string]bool{}
	for _, s := range e.Trace().ByStage() {
		stages[s.Stage] = true
	}
	for _, want := range []string{"grounding", "rule_scheduling", "convergence", "query"} {
		if !stages[want] {
			t.Fatalf("stage %q missing; have %v", want, stages)
		}
	}
}

func TestSymbolicToNeuralDependency(t *testing.T) {
	// LNN compiles symbolic knowledge into the neural computation: the
	// graph must contain symbolic→neural edges (Fig. 4, left pattern).
	w := New(Config{Entities: 24})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	g := trace.BuildGraph(e.Trace())
	if _, s2n := g.CrossPhaseEdges(); s2n == 0 {
		t.Fatal("expected symbolic→neural dependencies")
	}
}

func TestConvergenceStable(t *testing.T) {
	// Running inference twice on fresh engines must give identical answers.
	w1 := New(Config{Entities: 24, Seed: 9})
	w2 := New(Config{Entities: 24, Seed: 9})
	r1, _ := w1.Infer(ops.New())
	r2, _ := w2.Infer(ops.New())
	if len(r1) != len(r2) {
		t.Fatal("result sizes differ")
	}
	for k, v := range r1 {
		if r2[k] != v {
			t.Fatalf("non-deterministic inference for %s", k)
		}
	}
}

func TestNameCategory(t *testing.T) {
	w := New(Config{Entities: 12})
	if w.Name() != "LNN" || w.Category() != "Neuro:Symbolic→Neuro" {
		t.Fatal("identity wrong")
	}
	if len(w.Queries()) == 0 {
		t.Fatal("no queries exposed")
	}
}
