// Package lnn implements the Logical Neural Network workload (Riegel et
// al.; workload W1): a one-to-one mapping between logical formulas and
// neurons carrying truth bounds, evaluated with omnidirectional
// (upward/downward) Łukasiewicz inference to a fixpoint over a grounded
// knowledge base.
//
// Phase split, following the paper's characterization: the symbolic
// component is the theorem-prover machinery — grounding construction with
// sparse and irregular gathers, rule scheduling, convergence checking —
// while the neural component is the tensorized per-neuron bound arithmetic
// plus the bidirectional writeback traffic (the data-movement-heavy
// "neural" profile of Figs. 3a/4).
package lnn

import (
	"fmt"

	"github.com/neurosym/nsbench/internal/datasets"
	"github.com/neurosym/nsbench/internal/logic"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

// Config parameterizes the workload.
type Config struct {
	Entities int     // knowledge-base size; default 45
	MaxIters int     // inference iteration cap; default 8
	Alpha    float64 // truth threshold for query answers; default 0.95
	Seed     int64   // default 1
}

func (c *Config) defaults() {
	if c.Entities == 0 {
		c.Entities = 45
	}
	if c.MaxIters == 0 {
		c.MaxIters = 8
	}
	if c.Alpha == 0 {
		c.Alpha = 0.95
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// hornRule is a compiled ∀-quantified fuzzy Horn rule: body atoms conjoined
// imply the head atom.
type hornRule struct {
	vars []string
	body []*logic.Atom
	head *logic.Atom
	src  logic.Formula
}

// predicate stores the truth lower bounds of a grounded predicate as a
// tensor over the domain (n for unary, n² flattened for binary). Upper
// bounds are tracked for queried predicates via a parallel tensor.
type predicate struct {
	name  string
	arity int
	l, u  *tensor.Tensor
}

// LNN is the workload instance.
type LNN struct {
	cfg   Config
	g     *tensor.RNG
	kb    *datasets.KnowledgeBase
	rules []hornRule
	n     int
	index map[string]int // constant → domain index
	preds map[string]*predicate
	// predOrder keeps predicate keys in first-seen order so grounding emits
	// events deterministically (map iteration order is randomized).
	predOrder []string
}

// New constructs the workload: it generates the knowledge base and
// compiles its rules into Horn form.
func New(cfg Config) *LNN {
	cfg.defaults()
	g := tensor.NewRNG(cfg.Seed)
	w := &LNN{cfg: cfg, g: g, kb: datasets.GenKnowledgeBase(cfg.Entities, g)}
	w.n = len(w.kb.Constants)
	w.index = make(map[string]int, w.n)
	for i, c := range w.kb.Constants {
		w.index[c] = i
	}
	for _, r := range w.kb.Rules {
		hr, err := compileHorn(r)
		if err != nil {
			panic(fmt.Sprintf("lnn: %v", err))
		}
		w.rules = append(w.rules, hr)
	}
	return w
}

// compileHorn strips universal quantifiers and splits an implication with a
// conjunctive (or atomic) body into Horn form.
func compileHorn(f logic.Formula) (hornRule, error) {
	var hr hornRule
	for {
		q, ok := f.(*logic.QuantF)
		if !ok {
			break
		}
		if !q.Universal {
			return hr, fmt.Errorf("rule %s is not universally quantified", f)
		}
		hr.vars = append(hr.vars, q.Var)
		f = q.Body
	}
	imp, ok := f.(*logic.ImpliesF)
	if !ok {
		return hr, fmt.Errorf("rule body %s is not an implication", f)
	}
	switch b := imp.A.(type) {
	case *logic.Atom:
		hr.body = []*logic.Atom{b}
	case *logic.AndF:
		for _, g := range b.Fs {
			a, ok := g.(*logic.Atom)
			if !ok {
				return hr, fmt.Errorf("non-atomic conjunct in %s", f)
			}
			hr.body = append(hr.body, a)
		}
	default:
		return hr, fmt.Errorf("unsupported antecedent in %s", f)
	}
	h, ok := imp.B.(*logic.Atom)
	if !ok {
		return hr, fmt.Errorf("non-atomic head in %s", f)
	}
	hr.head = h
	hr.src = f
	return hr, nil
}

// Name implements the workload identity.
func (w *LNN) Name() string { return "LNN" }

// Category returns the taxonomy category of Table III.
func (w *LNN) Category() string { return "Neuro:Symbolic→Neuro" }

// Run grounds the knowledge base and performs omnidirectional inference to
// a fixpoint, then answers the KB's queries.
func (w *LNN) Run(e *ops.Engine) error {
	_, err := w.Infer(e)
	return err
}

// Infer runs inference and returns the query results (true under Alpha).
func (w *LNN) Infer(e *ops.Engine) (map[string]bool, error) {
	// ---- Symbolic: grounding construction --------------------------------
	e.SetPhase(trace.Symbolic)
	w.preds = make(map[string]*predicate)
	w.predOrder = w.predOrder[:0]
	e.InStage("grounding", func() {
		w.ground(e)
	})
	e.RegisterParamBytes("knowledge_base", "knowledge", w.kb.Facts.Bytes())

	// ---- Omnidirectional inference loop -----------------------------------
	for iter := 0; iter < w.cfg.MaxIters; iter++ {
		var changed float32
		for ri := range w.rules {
			rule := &w.rules[ri]
			if len(rule.vars) >= 3 {
				// Three-variable join rules take the specialized path.
				changed += w.fireJoinRule(e, rule)
				continue
			}
			// Symbolic: expansion of operand columns for this rule's
			// grounding table (irregular gathers), plus scheduling.
			var expanded []*tensor.Tensor
			e.SetPhase(trace.Symbolic)
			e.InStage("rule_scheduling", func() {
				expanded = w.expandBody(e, rule)
			})
			// Neural: tensorized Łukasiewicz neuron evaluation + update.
			e.SetPhase(trace.Neural)
			delta, diff := w.fireRule(e, rule, expanded)
			changed += delta
			// Symbolic: agenda bookkeeping — identify which groundings
			// changed so the prover can schedule dependent rules (the
			// sparse, irregular selection the paper highlights).
			if diff != nil {
				e.SetPhase(trace.Symbolic)
				e.InStage("agenda", func() {
					mask := e.Greater(diff, tensor.Zeros(diff.Shape()...))
					_ = e.MaskedSelect(diff, mask)
				})
			}
		}
		// Symbolic: convergence check over all predicate tensors.
		e.SetPhase(trace.Symbolic)
		converged := false
		e.InStage("convergence", func() {
			e.Logic("ConvergenceCheck", int64(w.n), int64(w.n)*4, nil, func() []*tensor.Tensor {
				converged = changed == 0
				return nil
			})
		})
		if converged {
			break
		}
	}

	// ---- Symbolic: answer queries ----------------------------------------
	e.SetPhase(trace.Symbolic)
	out := make(map[string]bool, len(w.kb.Queries))
	e.InStage("query", func() {
		for _, q := range w.kb.Queries {
			atom := q.(*logic.Atom)
			p := w.pred(atom.Pred, len(atom.Args))
			idx := w.groundIndex(atom)
			gathered := e.Gather(p.l.Reshape(p.l.Size(), 1), []int{idx})
			out[atom.String()] = float64(gathered.At(0, 0)) >= w.cfg.Alpha
		}
	})
	return out, nil
}

// ground initializes predicate bound tensors from the fact base.
func (w *LNN) ground(e *ops.Engine) {
	// Collect predicates from rules and facts.
	addPred := func(name string, arity int) {
		key := fmt.Sprintf("%s/%d", name, arity)
		if _, ok := w.preds[key]; ok {
			return
		}
		size := w.n
		if arity == 2 {
			size = w.n * w.n
		}
		w.preds[key] = &predicate{name: name, arity: arity, l: tensor.New(size), u: tensor.Ones(size)}
		w.predOrder = append(w.predOrder, key)
	}
	for _, r := range w.rules {
		for _, a := range r.body {
			addPred(a.Pred, len(a.Args))
		}
		addPred(r.head.Pred, len(r.head.Args))
	}
	// Load facts: the irregular scatter of the knowledge base into tensors,
	// timed as symbolic grounding work (hash lookups over the fact store
	// are exactly the sparse, irregular accesses the paper attributes to
	// LNN's symbolic component).
	for _, key := range w.predOrder {
		p := w.preds[key]
		e.Logic("GroundPredicate:"+p.name, int64(p.l.Size()), int64(p.l.Size())*8, nil, func() []*tensor.Tensor {
			for i := 0; i < w.n; i++ {
				if p.arity == 1 {
					if d := w.kb.Facts.Truth(p.name, []string{w.kb.Constants[i]}); d > 0 {
						p.l.Data()[i] = float32(d)
					}
					continue
				}
				for j := 0; j < w.n; j++ {
					if d := w.kb.Facts.Truth(p.name, []string{w.kb.Constants[i], w.kb.Constants[j]}); d > 0 {
						p.l.Data()[i*w.n+j] = float32(d)
					}
				}
			}
			return []*tensor.Tensor{p.l}
		})
	}
}

func (w *LNN) pred(name string, arity int) *predicate {
	return w.preds[fmt.Sprintf("%s/%d", name, arity)]
}

// groundIndex returns the flattened index of a ground atom.
func (w *LNN) groundIndex(a *logic.Atom) int {
	if len(a.Args) == 1 {
		return w.index[a.Args[0].Name]
	}
	return w.index[a.Args[0].Name]*w.n + w.index[a.Args[1].Name]
}

// expandBody gathers each body atom's truth column into the rule's
// grounding space (the cross-product of the rule's one or two variables),
// producing aligned vectors for the neural conjunction.
func (w *LNN) expandBody(e *ops.Engine, r *hornRule) []*tensor.Tensor {
	n := w.n
	gsize := n
	if len(r.vars) == 2 {
		gsize = n * n
	}
	varPos := map[string]int{}
	for i, v := range r.vars {
		varPos[v] = i
	}
	out := make([]*tensor.Tensor, 0, len(r.body))
	for _, atom := range r.body {
		p := w.pred(atom.Pred, len(atom.Args))
		// Grounding-table construction: decode every grounding into the
		// atom's storage index — symbolic bookkeeping, timed as such.
		var idx []int
		e.Logic("GroundingIndex:"+atom.Pred, int64(gsize), int64(gsize)*8, nil, func() []*tensor.Tensor {
			idx = make([]int, gsize)
			for gi := 0; gi < gsize; gi++ {
				// gi = a0·n + a1 for two-variable rules, gi = a0 otherwise.
				assign := [2]int{gi, 0}
				if len(r.vars) == 2 {
					assign[0], assign[1] = gi/n, gi%n
				}
				src := 0
				for ai, t := range atom.Args {
					v := assign[varPos[t.Name]]
					if ai == 0 {
						src = v
					} else {
						src = src*n + v
					}
				}
				idx[gi] = src
			}
			return nil
		})
		out = append(out, e.Gather(p.l.Reshape(p.l.Size(), 1), idx).Reshape(gsize))
	}
	return out
}

// fireJoinRule handles the three-variable join pattern
// ∀x∀c∀y (R(x,c) ∧ S(y,c)) → T(x,y): for every binding of the join
// variable c it gathers the R and S columns (symbolic, irregular), expands
// them over (x,y), conjoins them with the Łukasiewicz t-norm and folds the
// evidence into the head (neural). Returns the total bound change.
func (w *LNN) fireJoinRule(e *ops.Engine, r *hornRule) float32 {
	n := w.n
	if len(r.body) != 2 || len(r.body[0].Args) != 2 || len(r.body[1].Args) != 2 {
		return 0
	}
	joinVar := r.body[0].Args[1].Name
	pR := w.pred(r.body[0].Pred, 2)
	pS := w.pred(r.body[1].Pred, 2)
	head := w.pred(r.head.Pred, len(r.head.Args))
	if r.body[1].Args[1].Name != joinVar || head.arity != 2 {
		return 0
	}
	var total float32
	// Expansion index maps, reused for every join binding.
	rowIdx := make([]int, n*n) // (x,y) → x
	colIdx := make([]int, n*n) // (x,y) → y
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			rowIdx[x*n+y] = x
			colIdx[x*n+y] = y
		}
	}
	for c := 0; c < n; c++ {
		var colR, colS *tensor.Tensor
		e.SetPhase(trace.Symbolic)
		e.InStage("rule_scheduling", func() {
			// Column gathers R(·,c) and S(·,c): strided, irregular reads.
			idx := make([]int, n)
			for x := 0; x < n; x++ {
				idx[x] = x*n + c
			}
			colR = e.Gather(pR.l.Reshape(n*n, 1), idx).Reshape(n)
			colS = e.Gather(pS.l.Reshape(n*n, 1), idx).Reshape(n)
		})
		e.SetPhase(trace.Neural)
		// Skip empty columns cheaply (the sparsity the paper observes in
		// LNN's irregular inference); the check itself is a reduce.
		if colR.Sum() == 0 || colS.Sum() == 0 {
			continue
		}
		exR := e.Gather(colR.Reshape(n, 1), rowIdx).Reshape(n * n)
		exS := e.Gather(colS.Reshape(n, 1), colIdx).Reshape(n * n)
		conj := e.Clamp(e.AddScalar(e.Add(exR, exS), -1), 0, 1)
		updated := e.Maximum(head.l, conj)
		total += e.Sub(updated, head.l).Sum()
		head.l = e.Copy(updated)
	}
	return total
}

// fireRule performs the neural upward pass (Łukasiewicz conjunction of the
// expanded body columns), the downward modus-ponens update of the head, and
// the bidirectional writeback. It returns the total bound change and the
// per-grounding change tensor (for agenda scheduling).
func (w *LNN) fireRule(e *ops.Engine, r *hornRule, body []*tensor.Tensor) (float32, *tensor.Tensor) {
	if len(body) == 0 {
		return 0, nil
	}
	// Upward: conj = max(0, Σ a_i - (k-1)) — the weighted Łukasiewicz
	// AND-neuron with unit weights.
	conj := body[0]
	for _, b := range body[1:] {
		conj = e.Clamp(e.AddScalar(e.Add(conj, b), -1), 0, 1)
	}
	// Project the grounding space onto the head's index space.
	head := w.pred(r.head.Pred, len(r.head.Args))
	var evidence *tensor.Tensor
	switch {
	case head.arity == 2 && conj.Size() == w.n*w.n:
		evidence = conj
	case head.arity == 1 && conj.Size() == w.n*w.n:
		// Reduce over the second grounding variable: any witness suffices.
		evidence = e.MaxAxis(conj.Reshape(w.n, w.n), 1)
	case head.arity == 1 && conj.Size() == w.n:
		evidence = conj
	default:
		// Broadcast scalar-ish evidence across the head (degenerate rules).
		evidence = e.MaxAxis(conj.Reshape(1, conj.Size()), 1)
		evidence = e.Gather(evidence.Reshape(1, 1), make([]int, head.l.Size())).Reshape(head.l.Size())
	}
	// Downward modus ponens: L_head = max(L_head, evidence).
	updated := e.Maximum(head.l, evidence)
	// Change magnitude (drives convergence).
	diff := e.Sub(updated, head.l)
	delta := diff.Sum()
	// Bidirectional writeback: the new bounds flow back into the fact
	// store (the data-movement-heavy path of the LNN neural profile).
	head.l = e.Copy(updated)
	// Downward upper-bound tightening on body atoms when the head is
	// refuted nowhere (kept as a bounded eltwise pass for omnidirectionality).
	_ = e.Minimum(head.u, e.AddScalar(updated, 1))
	return delta, diff
}

// Queries returns the KB's query formulas (for reporting).
func (w *LNN) Queries() []logic.Formula { return w.kb.Queries }
