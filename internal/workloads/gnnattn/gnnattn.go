// Package gnnattn implements the GNN+attention workload of Table I
// (Neuro_Symbolic paradigm): a graph attention network over a knowledge
// graph whose edge structure encodes the symbolic relations. The symbolic
// component is the sparse relational machinery — SDDMM attention scoring
// over the knowledge edges, edge-softmax, and SpMM aggregation — exactly
// the two kernels the paper names for this algorithm family; the neural
// component is the dense feature transforms.
//
// The task is node classification on a synthetic community graph (a
// knowledge-graph-completion stand-in): with homophilous edges, even a
// single untrained attention layer separates communities measurably better
// than chance, which the tests verify.
package gnnattn

import (
	"math"

	"github.com/neurosym/nsbench/internal/nn"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/sparse"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

// Config parameterizes the workload.
type Config struct {
	Nodes       int     // graph size; default 256
	Communities int     // ground-truth classes; default 4
	Degree      int     // mean degree; default 8
	Homophily   float64 // probability an edge stays intra-community; default 0.9
	Dim         int     // feature width; default 32
	Layers      int     // attention layers; default 2
	Seed        int64   // default 1
}

func (c *Config) defaults() {
	if c.Nodes == 0 {
		c.Nodes = 256
	}
	if c.Communities == 0 {
		c.Communities = 4
	}
	if c.Degree == 0 {
		c.Degree = 8
	}
	if c.Homophily == 0 {
		c.Homophily = 0.9
	}
	if c.Dim == 0 {
		c.Dim = 32
	}
	if c.Layers == 0 {
		c.Layers = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Workload is the GAT instance.
type Workload struct {
	cfg    Config
	g      *tensor.RNG
	adj    *sparse.CSR
	feats  *tensor.Tensor
	labels []int
	wq, wk []*nn.Linear // per-layer query/key transforms
	wv     []*nn.Linear // per-layer value transforms
}

// New constructs the workload: a community graph with noisy per-community
// feature signatures and the (untrained, seeded) attention parameters.
func New(cfg Config) *Workload {
	cfg.defaults()
	g := tensor.NewRNG(cfg.Seed)
	w := &Workload{cfg: cfg, g: g}

	n := cfg.Nodes
	w.labels = make([]int, n)
	for i := range w.labels {
		w.labels[i] = i * cfg.Communities / n
	}
	// Edges: mostly intra-community (the symbolic relations).
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		for d := 0; d < cfg.Degree; d++ {
			var j int
			if g.Float64() < cfg.Homophily {
				c := w.labels[i]
				lo, hi := c*n/cfg.Communities, (c+1)*n/cfg.Communities
				j = lo + g.Intn(hi-lo)
			} else {
				j = g.Intn(n)
			}
			coo.Append(i, j, 1)
		}
		coo.Append(i, i, 1) // self loop
	}
	w.adj = coo.ToCSR()

	// Features: community centroid + noise.
	centroids := g.Normal(0, 2, cfg.Communities, cfg.Dim)
	w.feats = tensor.New(n, cfg.Dim)
	for i := 0; i < n; i++ {
		for d := 0; d < cfg.Dim; d++ {
			w.feats.Data()[i*cfg.Dim+d] = centroids.At(w.labels[i], d) + 0.5*float32(g.Rand().NormFloat64())
		}
	}
	for l := 0; l < cfg.Layers; l++ {
		w.wq = append(w.wq, nn.NewLinear(g, "gat.q", cfg.Dim, cfg.Dim, false))
		w.wk = append(w.wk, nn.NewLinear(g, "gat.k", cfg.Dim, cfg.Dim, false))
		w.wv = append(w.wv, nn.NewLinear(g, "gat.v", cfg.Dim, cfg.Dim, false))
	}
	return w
}

// Name implements the workload identity.
func (w *Workload) Name() string { return "GNN+attention" }

// Category returns the taxonomy category of Table I.
func (w *Workload) Category() string { return "Neuro_Symbolic" }

// Register records the model's persistent parameters.
func (w *Workload) Register(e *ops.Engine) {
	for l := range w.wq {
		w.wq[l].Register(e)
		w.wk[l].Register(e)
		w.wv[l].Register(e)
	}
	e.InPhase(trace.Symbolic, func() {
		e.RegisterParamBytes("gat.edges", "knowledge", int64(w.adj.NNZ())*8)
	})
}

// Run performs one forward pass over the graph.
func (w *Workload) Run(e *ops.Engine) error {
	_, err := w.Forward(e)
	return err
}

// RunBatch performs one forward pass for n batch replicas: the dense
// transforms and the sparse relational kernels all carry a leading batch
// dimension (n stacked row blocks over the shared knowledge graph).
func (w *Workload) RunBatch(e *ops.Engine, n int) error {
	_, err := w.ForwardBatch(e, n)
	return err
}

// Forward computes Layers rounds of graph attention and returns the final
// node embeddings.
func (w *Workload) Forward(e *ops.Engine) (*tensor.Tensor, error) {
	return w.ForwardBatch(e, 1)
}

// ForwardBatch runs the graph attention over batch stacked copies of the
// node features — (batch·Nodes, Dim) throughout — against the one shared
// adjacency structure, which is the serving case: one knowledge graph,
// many concurrent queries.
func (w *Workload) ForwardBatch(e *ops.Engine, batch int) (*tensor.Tensor, error) {
	w.Register(e)
	e.SetPhase(trace.Neural)
	feats := w.feats
	if batch > 1 {
		feats = tensor.New(batch*w.cfg.Nodes, w.cfg.Dim)
		for i := 0; i < batch; i++ {
			copy(feats.Data()[i*w.feats.Size():(i+1)*w.feats.Size()], w.feats.Data())
		}
	}
	h := e.HostToDevice(feats)
	for l := 0; l < w.cfg.Layers; l++ {
		// ---- Neural: dense transforms -----------------------------------
		e.SetPhase(trace.Neural)
		q := w.wq[l].ForwardBatch(e, h, batch)
		k := w.wk[l].ForwardBatch(e, h, batch)
		v := w.wv[l].ForwardBatch(e, h, batch)

		// ---- Symbolic: relational attention over the knowledge edges ----
		e.SetPhase(trace.Symbolic)
		var agg *tensor.Tensor
		e.InStage("relational_attention", func() {
			// SDDMM: attention logits only where edges exist.
			logits := e.SDDMMBatch(w.adj, q, k, batch)
			// Edge softmax per row (the sparse normalization).
			att := w.edgeSoftmax(e, logits, 1/float32(math.Sqrt(float64(w.cfg.Dim))))
			// SpMM: attention-weighted neighbourhood aggregation.
			agg = e.SpMMBatch(att, v)
		})
		e.SetPhase(trace.Neural)
		h = e.Tanh(agg)
	}
	return e.DeviceToHost(h), nil
}

// edgeSoftmax normalizes each row of every CSR attention matrix in the
// batch (returned as new CSRs), recorded as one symbolic logic/eltwise
// pass whose cost covers all batch items.
func (w *Workload) edgeSoftmax(e *ops.Engine, ms []*sparse.CSR, scale float32) []*sparse.CSR {
	var total int64
	outs := make([]*sparse.CSR, len(ms))
	for i, m := range ms {
		total += int64(len(m.Val))
		outs[i] = &sparse.CSR{
			Rows:   m.Rows,
			Cols:   m.Cols,
			RowPtr: append([]int(nil), m.RowPtr...),
			Col:    append([]int(nil), m.Col...),
			Val:    make([]float32, len(m.Val)),
		}
	}
	e.Logic("EdgeSoftmax", total*8, total*8, nil, func() []*tensor.Tensor {
		for i, m := range ms {
			out := outs[i]
			for r := 0; r < m.Rows; r++ {
				lo, hi := m.RowPtr[r], m.RowPtr[r+1]
				if lo == hi {
					continue
				}
				maxv := m.Val[lo] * scale
				for p := lo + 1; p < hi; p++ {
					if v := m.Val[p] * scale; v > maxv {
						maxv = v
					}
				}
				var sum float64
				for p := lo; p < hi; p++ {
					ev := math.Exp(float64(m.Val[p]*scale - maxv))
					out.Val[p] = float32(ev)
					sum += ev
				}
				for p := lo; p < hi; p++ {
					out.Val[p] /= float32(sum)
				}
			}
		}
		return nil
	})
	return outs
}

// ClassifyAccuracy assigns each node the majority community among its
// nearest embedding centroid and returns agreement with ground truth —
// with homophilous attention this lands well above chance even untrained.
func (w *Workload) ClassifyAccuracy(e *ops.Engine) (float64, error) {
	h, err := w.Forward(e)
	if err != nil {
		return 0, err
	}
	n, d := h.Dim(0), h.Dim(1)
	k := w.cfg.Communities
	// Centroids from ground-truth labels (a transductive readout).
	centroids := tensor.New(k, d)
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		c := w.labels[i]
		counts[c]++
		for j := 0; j < d; j++ {
			centroids.Data()[c*d+j] += h.At(i, j)
		}
	}
	for c := 0; c < k; c++ {
		for j := 0; j < d; j++ {
			centroids.Data()[c*d+j] /= float32(counts[c])
		}
	}
	correct := 0
	for i := 0; i < n; i++ {
		row := tensor.FromSlice(h.Data()[i*d:(i+1)*d], d)
		best, bi := float32(math.Inf(-1)), 0
		for c := 0; c < k; c++ {
			cen := tensor.FromSlice(centroids.Data()[c*d:(c+1)*d], d)
			if s := tensor.CosineSimilarity(row, cen); s > best {
				best, bi = s, c
			}
		}
		if bi == w.labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n), nil
}
