package gnnattn

import (
	"testing"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/sparse"
	"github.com/neurosym/nsbench/internal/trace"
)

func TestForwardShape(t *testing.T) {
	w := New(Config{Nodes: 64, Dim: 16, Layers: 1})
	e := ops.New()
	h, err := w.Forward(e)
	if err != nil {
		t.Fatal(err)
	}
	if h.Dim(0) != 64 || h.Dim(1) != 16 {
		t.Fatalf("embedding shape = %v", h.Shape())
	}
	if !h.AllFinite() {
		t.Fatal("embeddings contain NaN/Inf")
	}
}

func TestSparseKernelsRecorded(t *testing.T) {
	w := New(Config{Nodes: 64, Dim: 16})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, ev := range e.Trace().Events {
		names[ev.Name]++
	}
	// The Table-I operations for this algorithm: SpMM and SDDMM.
	if names["SDDMM"] != 2 || names["SpMM"] != 2 {
		t.Fatalf("sparse kernels missing: %v", names)
	}
	// They must be in the symbolic phase with the attention stage label.
	for _, ev := range e.Trace().Events {
		if ev.Name == "SpMM" && (ev.Phase != trace.Symbolic || ev.Stage != "relational_attention") {
			t.Fatalf("SpMM event misattributed: %+v", ev)
		}
	}
}

func TestEdgeSoftmaxRowsSumToOne(t *testing.T) {
	w := New(Config{Nodes: 48, Dim: 8, Layers: 1})
	e := ops.New()
	q := w.wq[0].Forward(e, w.feats)
	k := w.wk[0].Forward(e, w.feats)
	logits := w.adj.SDDMM(q, k)
	att := w.edgeSoftmax(e, []*sparse.CSR{logits}, 0.25)[0]
	for r := 0; r < att.Rows; r++ {
		lo, hi := att.RowPtr[r], att.RowPtr[r+1]
		if lo == hi {
			continue
		}
		var sum float32
		for p := lo; p < hi; p++ {
			if att.Val[p] < 0 {
				t.Fatalf("negative attention weight %v", att.Val[p])
			}
			sum += att.Val[p]
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("row %d attention sums to %v", r, sum)
		}
	}
}

func TestCommunitySeparation(t *testing.T) {
	w := New(Config{Nodes: 200, Communities: 4, Homophily: 0.95, Seed: 2})
	e := ops.New()
	acc, err := w.ClassifyAccuracy(e)
	if err != nil {
		t.Fatal(err)
	}
	// Chance is 0.25; homophilous attention over community features must
	// separate far better even untrained.
	if acc < 0.6 {
		t.Fatalf("community accuracy = %v, want > 0.6", acc)
	}
}

func TestKnowledgeRegistered(t *testing.T) {
	w := New(Config{Nodes: 64})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	if e.Trace().ParamBytesByKind()["knowledge"] == 0 {
		t.Fatal("edge knowledge not registered")
	}
}

func TestNameCategory(t *testing.T) {
	w := New(Config{Nodes: 32})
	if w.Name() != "GNN+attention" || w.Category() != "Neuro_Symbolic" {
		t.Fatal("identity wrong")
	}
}
