package alphago

import (
	"testing"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/trace"
)

func TestBoardWinner(t *testing.T) {
	b := newBoard(7)
	for i := 0; i < 4; i++ {
		b.cells[2*7+i] = 1 // horizontal row
	}
	if b.winner(4) != 1 {
		t.Fatal("horizontal win not detected")
	}
	b2 := newBoard(7)
	for i := 0; i < 4; i++ {
		b2.cells[i*7+3] = -1 // vertical
	}
	if b2.winner(4) != -1 {
		t.Fatal("vertical win not detected")
	}
	b3 := newBoard(7)
	for i := 0; i < 4; i++ {
		b3.cells[i*7+i] = 1 // diagonal
	}
	if b3.winner(4) != 1 {
		t.Fatal("diagonal win not detected")
	}
	if newBoard(7).winner(4) != 0 {
		t.Fatal("empty board has no winner")
	}
}

func TestSearchReturnsLegalMove(t *testing.T) {
	w := New(Config{Board: 5, Connect: 3, Simulations: 24})
	e := ops.New()
	b := newBoard(5)
	mv, err := w.Search(e, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mv < 0 || mv >= 25 || b.cells[mv] != 0 {
		t.Fatalf("illegal move %d", mv)
	}
}

func TestSearchFindsImmediateWin(t *testing.T) {
	// Player 1 has three in a row with an open end: the search must win.
	w := New(Config{Board: 5, Connect: 4, Simulations: 200, Seed: 3})
	b := newBoard(5)
	b.cells[2*5+0], b.cells[2*5+1], b.cells[2*5+2] = 1, 1, 1
	// Block one end so only cell (2,3) wins.
	e := ops.New()
	mv, err := w.Search(e, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	win := mv == 2*5+3
	if !win {
		t.Fatalf("search missed the winning move, played %d", mv)
	}
}

func TestRunRecordsBothPhases(t *testing.T) {
	w := New(Config{Board: 5, Connect: 4, Simulations: 16, Moves: 2})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	tr := e.Trace()
	if tr.PhaseDuration(trace.Neural) == 0 || tr.PhaseDuration(trace.Symbolic) == 0 {
		t.Fatal("both phases must record time")
	}
	stages := map[string]bool{}
	for _, s := range tr.ByStage() {
		stages[s.Stage] = true
	}
	for _, want := range []string{"mcts_select", "mcts_expand", "mcts_backup"} {
		if !stages[want] {
			t.Fatalf("stage %q missing; have %v", want, stages)
		}
	}
	// Symbolic[Neuro]: "Others" (tree ops) must dominate the symbolic mix.
	sh := tr.CategoryShare(trace.Symbolic)
	if sh[trace.Other] < 0.5 {
		t.Fatalf("symbolic Others share = %v, want dominant", sh[trace.Other])
	}
}

func TestPlayGreedyGameTerminates(t *testing.T) {
	w := New(Config{Board: 5, Connect: 4, Simulations: 12, Seed: 7})
	winner, err := w.PlayGreedyGame()
	if err != nil {
		t.Fatal(err)
	}
	if winner != 1 && winner != -1 && winner != 0 {
		t.Fatalf("winner = %d", winner)
	}
}

func TestNameCategory(t *testing.T) {
	w := New(Config{Board: 5})
	if w.Name() != "AlphaGo" || w.Category() != "Symbolic[Neuro]" {
		t.Fatal("identity wrong")
	}
}
