// Package alphago implements a Symbolic[Neuro] workload in the style of
// AlphaGo/AlphaZero (Table I, first paradigm): a Monte-Carlo tree search
// drives the computation as the end-to-end symbolic solver, calling a
// convolutional value/policy network as an internal subroutine at the
// leaves. The game is k-in-a-row on a small board — large enough for a
// non-trivial search tree, small enough for laptop-scale characterization.
//
// Phase split: tree operations (UCT selection, expansion, backpropagation,
// move bookkeeping) are symbolic; leaf evaluation (the CNN forward pass)
// is neural. This inverts the Neuro|Symbolic pipelines: here the symbolic
// component owns the control flow and the neural component is the
// subroutine.
package alphago

import (
	"fmt"
	"math"

	"github.com/neurosym/nsbench/internal/nn"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

// Config parameterizes the workload.
type Config struct {
	Board       int   // board side; default 7
	Connect     int   // stones in a row to win; default 4
	Simulations int   // MCTS simulations per move; default 64
	Moves       int   // moves to play per Run; default 4
	Seed        int64 // default 1

	// Engine selects the execution backend for engines the workload
	// builds itself (self-play loops).
	Engine ops.Config
}

func (c *Config) defaults() {
	if c.Board == 0 {
		c.Board = 7
	}
	if c.Connect == 0 {
		c.Connect = 4
	}
	if c.Simulations == 0 {
		c.Simulations = 64
	}
	if c.Moves == 0 {
		c.Moves = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// board holds stones: 0 empty, +1 / -1 players.
type board struct {
	n     int
	cells []int8
}

func newBoard(n int) *board { return &board{n: n, cells: make([]int8, n*n)} }

func (b *board) clone() *board {
	c := newBoard(b.n)
	copy(c.cells, b.cells)
	return c
}

// winner returns the winning player (±1), or 0.
func (b *board) winner(connect int) int8 {
	dirs := [4][2]int{{1, 0}, {0, 1}, {1, 1}, {1, -1}}
	for y := 0; y < b.n; y++ {
		for x := 0; x < b.n; x++ {
			p := b.cells[y*b.n+x]
			if p == 0 {
				continue
			}
			for _, d := range dirs {
				run := 1
				for k := 1; k < connect; k++ {
					nx, ny := x+d[0]*k, y+d[1]*k
					if nx < 0 || ny < 0 || nx >= b.n || ny >= b.n || b.cells[ny*b.n+nx] != p {
						break
					}
					run++
				}
				if run >= connect {
					return p
				}
			}
		}
	}
	return 0
}

func (b *board) full() bool {
	for _, c := range b.cells {
		if c == 0 {
			return false
		}
	}
	return true
}

// node is one MCTS tree node.
type node struct {
	move     int // move that led here (-1 at root)
	player   int8
	parent   *node
	children []*node
	visits   int
	value    float64 // accumulated value from the current player's view
	prior    float32
	expanded bool
}

// Workload is the MCTS + network instance.
type Workload struct {
	cfg       Config
	newEngine func() *ops.Engine
	release   func() // tears down the shared engine backend
	g         *tensor.RNG
	net       *nn.CNN    // shared trunk
	pol       *nn.Linear // policy head over trunk features
	val       *nn.Linear // value head
	b         *board
}

// New constructs the workload.
func New(cfg Config) *Workload {
	cfg.defaults()
	g := tensor.NewRNG(cfg.Seed)
	newEngine, release := cfg.Engine.Factory()
	w := &Workload{cfg: cfg, newEngine: newEngine, release: release, g: g, b: newBoard(cfg.Board)}
	w.net = nn.NewCNN(g, "alphago.trunk", nn.CNNConfig{InChannels: 2, InSize: cfg.Board, Channels: []int{16}, Residual: true, OutDim: 64})
	w.pol = nn.NewLinear(g, "alphago.policy", 64, cfg.Board*cfg.Board, true)
	w.val = nn.NewLinear(g, "alphago.value", 64, 1, true)
	return w
}

// Name implements the workload identity.
func (w *Workload) Name() string { return "AlphaGo" }

// Close releases the workload's shared engine backend (worker pool).
func (w *Workload) Close() { w.release() }

// Category returns the taxonomy category of Table I.
func (w *Workload) Category() string { return "Symbolic[Neuro]" }

// Register records the model's persistent parameters.
func (w *Workload) Register(e *ops.Engine) {
	w.net.Register(e)
	w.pol.Register(e)
	w.val.Register(e)
}

// Run plays cfg.Moves self-play moves, each decided by an MCTS with
// cfg.Simulations simulations.
func (w *Workload) Run(e *ops.Engine) error { return w.RunBatch(e, 1) }

// RunBatch plays the self-play game once for n batch replicas: leaf
// evaluations run the network over a batch of n replicated board images,
// while the tree operations — identical across replicas — execute once
// under replica amplification. The search control flow (and therefore the
// game) is exactly that of a solo run.
func (w *Workload) RunBatch(e *ops.Engine, n int) error {
	w.Register(e)
	w.b = newBoard(w.cfg.Board)
	player := int8(1)
	for mv := 0; mv < w.cfg.Moves; mv++ {
		move, err := w.searchBatch(e, w.b, player, n)
		if err != nil {
			return err
		}
		if move < 0 {
			return nil // game over
		}
		w.b.cells[move] = player
		player = -player
		if w.b.winner(w.cfg.Connect) != 0 {
			return nil
		}
	}
	return nil
}

// Search runs MCTS from the position and returns the chosen move.
func (w *Workload) Search(e *ops.Engine, root *board, player int8) (int, error) {
	return w.searchBatch(e, root, player, 1)
}

// searchBatch is Search with a batch dimension on the neural leaf
// evaluations and replica amplification on the symbolic tree operations.
func (w *Workload) searchBatch(e *ops.Engine, root *board, player int8, batch int) (int, error) {
	if root.full() {
		return -1, nil
	}
	rootNode := &node{move: -1, player: -player}
	for sim := 0; sim < w.cfg.Simulations; sim++ {
		b := root.clone()
		n := rootNode
		// ---- Symbolic: UCT selection down the tree ----------------------
		e.SetPhase(trace.Symbolic)
		e.InReplicas(batch, func() {
			e.InStage("mcts_select", func() {
				e.Logic("UCTSelect", int64(len(n.children)+1), 64, nil, func() []*tensor.Tensor {
					for n.expanded && len(n.children) > 0 {
						n = bestChild(n)
						b.cells[n.move] = n.player
					}
					return nil
				})
			})
		})
		win := b.winner(w.cfg.Connect)
		var value float64
		if win != 0 {
			value = float64(win) * float64(n.player)
		} else if !b.full() {
			// ---- Neural: value/policy evaluation of the leaf -------------
			var priors *tensor.Tensor
			e.SetPhase(trace.Neural)
			feats := w.evaluateBatch(e, b, -n.player, batch)
			priors = e.Softmax(w.pol.ForwardBatch(e, feats, batch))
			v := e.Tanh(w.val.ForwardBatch(e, feats, batch))
			value = -float64(v.At(0, 0)) // value from n.player's view (item 0)

			// ---- Symbolic: expansion with the network priors -------------
			e.SetPhase(trace.Symbolic)
			e.InReplicas(batch, func() {
				e.InStage("mcts_expand", func() {
					e.Logic("Expand", int64(b.n*b.n), int64(b.n*b.n)*8, []*tensor.Tensor{priors}, func() []*tensor.Tensor {
						for i, c := range b.cells {
							if c == 0 {
								n.children = append(n.children, &node{
									move: i, player: -n.player, parent: n,
									prior: priors.At(0, i),
								})
							}
						}
						n.expanded = true
						return nil
					})
				})
			})
		}
		// ---- Symbolic: backpropagation up the tree ----------------------
		e.SetPhase(trace.Symbolic)
		e.InReplicas(batch, func() {
			e.InStage("mcts_backup", func() {
				e.Logic("Backup", 16, 64, nil, func() []*tensor.Tensor {
					sign := 1.0
					for cur := n; cur != nil; cur = cur.parent {
						cur.visits++
						cur.value += value * sign
						sign = -sign
					}
					return nil
				})
			})
		})
	}
	// Final move choice: most-visited child.
	best, bestVisits := -1, -1
	for _, c := range rootNode.children {
		if c.visits > bestVisits {
			best, bestVisits = c.move, c.visits
		}
	}
	if best == -1 {
		// Root never expanded (immediate terminal); pick any empty cell.
		for i, c := range root.cells {
			if c == 0 {
				return i, nil
			}
		}
		return -1, nil
	}
	return best, nil
}

// evaluateBatch encodes the board as a two-plane image, replicated batch
// times along the leading axis, and runs the trunk over the whole batch.
func (w *Workload) evaluateBatch(e *ops.Engine, b *board, toMove int8, batch int) *tensor.Tensor {
	img := tensor.New(batch, 2, b.n, b.n)
	plane := b.n * b.n
	for i, c := range b.cells {
		switch {
		case c == toMove:
			img.Data()[i] = 1
		case c == -toMove:
			img.Data()[plane+i] = 1
		}
	}
	for k := 1; k < batch; k++ {
		copy(img.Data()[k*2*plane:(k+1)*2*plane], img.Data()[:2*plane])
	}
	x := e.HostToDevice(img)
	return w.net.ForwardBatch(e, x, batch)
}

// bestChild applies the PUCT criterion.
func bestChild(n *node) *node {
	var best *node
	bestScore := math.Inf(-1)
	for _, c := range n.children {
		q := 0.0
		if c.visits > 0 {
			q = c.value / float64(c.visits)
		}
		u := 1.4 * float64(c.prior) * math.Sqrt(float64(n.visits)+1) / float64(1+c.visits)
		if s := q + u; s > bestScore {
			bestScore, best = s, c
		}
	}
	return best
}

// PlayGreedyGame plays a full self-play game and returns the winner (±1, 0
// for a draw) — a functional sanity check that search prefers wins.
func (w *Workload) PlayGreedyGame() (int8, error) {
	b := newBoard(w.cfg.Board)
	player := int8(1)
	for !b.full() {
		e := w.newEngine()
		mv, err := w.Search(e, b, player)
		if err != nil {
			return 0, err
		}
		if mv < 0 {
			break
		}
		if b.cells[mv] != 0 {
			return 0, fmt.Errorf("alphago: illegal move %d", mv)
		}
		b.cells[mv] = player
		if win := b.winner(w.cfg.Connect); win != 0 {
			return win, nil
		}
		player = -player
	}
	return 0, nil
}
