package vsait

import (
	"testing"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/trace"
)

func TestTranslateRuns(t *testing.T) {
	w := New(Config{ImgSize: 16, Dim: 512})
	e := ops.New()
	loss, err := w.Translate(e)
	if err != nil {
		t.Fatal(err)
	}
	if loss != loss { // NaN check
		t.Fatal("loss is NaN")
	}
}

func TestSymbolicDominates(t *testing.T) {
	// Paper: VSAIT is 83.7% symbolic under the default configuration.
	w := New(Config{})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	if share := e.Trace().PhaseShare(trace.Symbolic); share < 0.5 {
		t.Fatalf("symbolic share = %v, want > 0.5", share)
	}
}

func TestBindingSelfInverseInsideRun(t *testing.T) {
	// MAP binding is exactly self-inverse, so the recovery residual inside
	// the hyperspace stage must be zero: the loss equals the similarity
	// terms only, and must be finite and bounded.
	w := New(Config{ImgSize: 16, Dim: 256})
	e := ops.New()
	loss, err := w.Translate(e)
	if err != nil {
		t.Fatal(err)
	}
	if loss < -3 || loss > 3 {
		t.Fatalf("loss = %v out of expected range", loss)
	}
}

func TestHyperspaceStageEltwiseHeavy(t *testing.T) {
	w := New(Config{ImgSize: 16, Dim: 512})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	tr := e.Trace()
	sh := tr.CategoryShare(trace.Symbolic)
	if sh[trace.VectorEltwise]+sh[trace.MatMul] < 0.4 {
		t.Fatalf("symbolic should be vector-op dominated: %v", sh)
	}
	found := false
	for _, s := range tr.ByStage() {
		if s.Stage == "hyperspace" {
			found = true
		}
	}
	if !found {
		t.Fatal("hyperspace stage missing")
	}
}

func TestNeuralConvHeavy(t *testing.T) {
	w := New(Config{ImgSize: 16, Dim: 256})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	sh := e.Trace().CategoryShare(trace.Neural)
	if sh[trace.Convolution] < 0.3 {
		t.Fatalf("neural conv share = %v, want dominant (Fig. 3a)", sh[trace.Convolution])
	}
}

func TestParamsRegistered(t *testing.T) {
	w := New(Config{ImgSize: 16, Dim: 256})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	kinds := e.Trace().ParamBytesByKind()
	if kinds["weight"] == 0 || kinds["codebook"] == 0 {
		t.Fatalf("params missing: %v", kinds)
	}
}

func TestNameCategory(t *testing.T) {
	w := New(Config{ImgSize: 16, Dim: 128})
	if w.Name() != "VSAIT" || w.Category() != "Neuro|Symbolic" {
		t.Fatal("identity wrong")
	}
}
