// Package vsait implements the VSA-based image-to-image translation
// workload (Theiss et al., ECCV 2022; workload W5): a convolutional
// generator translates a source-domain image, and a vector-symbolic
// consistency mechanism — locality-sensitive hashing into a bipolar
// hyperspace, binding/unbinding of source and target content — guards
// against semantic flipping.
//
// The symbolic phase is dominated by per-patch hypervector algebra
// (element-wise binding, bundling, similarity), matching the paper's
// characterization of VSAIT as heavily vector-op bound (83.7% symbolic).
package vsait

import (
	"github.com/neurosym/nsbench/internal/datasets"
	"github.com/neurosym/nsbench/internal/nn"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
	"github.com/neurosym/nsbench/internal/vsa"
)

// Config parameterizes the workload.
type Config struct {
	ImgSize int   // image resolution; default 32
	Dim     int   // hypervector dimensionality; default 8192
	Seed    int64 // default 1
}

func (c *Config) defaults() {
	if c.ImgSize == 0 {
		c.ImgSize = 32
	}
	if c.Dim == 0 {
		c.Dim = 8192
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// VSAIT is the workload instance.
type VSAIT struct {
	cfg       Config
	g         *tensor.RNG
	generator []*nn.ConvBlock // translation network (shape preserving)
	outConv   *nn.Conv2d
	extractor []*nn.ConvBlock // feature extractor
	space     *vsa.Space
	lsh       *vsa.LSHEncoder
	mapper    *tensor.Tensor // domain-mapping hypervector
	featC     int
}

// New constructs the workload.
func New(cfg Config) *VSAIT {
	cfg.defaults()
	g := tensor.NewRNG(cfg.Seed)
	w := &VSAIT{cfg: cfg, g: g, featC: 16}
	w.generator = []*nn.ConvBlock{
		nn.NewConvBlock(g, "vsait.gen0", 3, 16, 3, 1, 1, false),
		nn.NewConvBlock(g, "vsait.gen1", 16, 16, 3, 1, 1, false),
	}
	w.outConv = nn.NewConv2d(g, "vsait.genout", 16, 3, 3, 1, 1)
	w.extractor = []*nn.ConvBlock{
		nn.NewConvBlock(g, "vsait.feat0", 3, 8, 3, 1, 1, true),
		nn.NewConvBlock(g, "vsait.feat1", 8, w.featC, 3, 1, 1, true),
	}
	w.space = vsa.NewSpace(vsa.MAP, cfg.Dim, cfg.Seed+1)
	w.lsh = vsa.NewLSHEncoder(w.space, w.featC, cfg.Seed+2)
	w.mapper = w.space.Random()
	return w
}

// Name implements the workload identity.
func (w *VSAIT) Name() string { return "VSAIT" }

// Category returns the taxonomy category of Table III.
func (w *VSAIT) Category() string { return "Neuro|Symbolic" }

// Register records the model's persistent parameters.
func (w *VSAIT) Register(e *ops.Engine) {
	for _, b := range w.generator {
		b.Register(e)
	}
	w.outConv.Register(e)
	for _, b := range w.extractor {
		b.Register(e)
	}
	e.InPhase(trace.Symbolic, func() {
		e.RegisterParamBytes("vsait.lsh", "codebook", w.lsh.Bytes())
		e.RegisterParam("vsait.mapper", "codebook", w.mapper)
	})
}

// Run translates one generated source image and computes the hyperspace
// consistency loss against the target domain.
func (w *VSAIT) Run(e *ops.Engine) error {
	_, err := w.Translate(e)
	return err
}

// Translate performs one translation step and returns the hyperspace
// consistency loss.
func (w *VSAIT) Translate(e *ops.Engine) (float32, error) {
	w.Register(e)
	pair := datasets.GenImagePair(w.cfg.ImgSize, 5, w.g)

	// ---- Neural: generator + feature extraction ---------------------------
	e.SetPhase(trace.Neural)
	src := e.HostToDevice(pair.Source)
	tgt := e.HostToDevice(pair.Target)
	x := src
	for _, b := range w.generator {
		x = b.Forward(e, x)
	}
	translated := e.Sigmoid(w.outConv.Forward(e, x))

	featSrc := w.features(e, src)
	featTrans := w.features(e, translated)
	featTgt := w.features(e, tgt)
	featSrc = e.DeviceToHost(featSrc)
	featTrans = e.DeviceToHost(featTrans)
	featTgt = e.DeviceToHost(featTgt)

	// ---- Symbolic: hyperspace consistency ---------------------------------
	e.SetPhase(trace.Symbolic)
	var loss float32
	e.InStage("hyperspace", func() {
		hvSrc := w.encodePatches(e, featSrc)
		hvTrans := w.encodePatches(e, featTrans)
		hvTgt := w.encodePatches(e, featTgt)

		// Broadcast the domain mapper over patches.
		np := hvSrc.Dim(0)
		rows := make([]*tensor.Tensor, np)
		for i := range rows {
			rows[i] = w.mapper
		}
		mapperMat := e.Stack(rows...)

		// Unbind source appearance, bind target appearance (MAP binding is
		// the element-wise product, self-inverse).
		content := e.Mul(hvSrc, mapperMat)
		rebound := e.Mul(content, mapperMat) // must recover hvSrc exactly
		recovery := e.Sub(rebound, hvSrc)

		// Patch-wise similarity of the translated image to the target
		// domain bundle, and to its own source content (anti-flipping).
		tgtBundle := w.bundleRows(e, hvTgt)
		bundleRows := make([]*tensor.Tensor, np)
		for i := range bundleRows {
			bundleRows[i] = tgtBundle
		}
		bundleMat := e.Stack(bundleRows...)
		simTgt := e.MeanAxis(e.Mul(hvTrans, bundleMat), 1)   // np
		simContent := e.MeanAxis(e.Mul(hvTrans, content), 1) // np
		flipPenalty := e.MeanAxis(e.Abs(recovery).Reshape(1, recovery.Size()), 1)

		// Patch-to-patch hyperspace matching: every translated patch is
		// compared against every target-domain patch (the discriminator's
		// similarity field) and against every source patch (semantic
		// consistency field) — the bulk of VSAIT's vector-symbolic work.
		simField := e.MatMul(hvTrans, e.Transpose(hvTgt))
		srcField := e.MatMul(hvTrans, e.Transpose(hvSrc))
		nearest := e.MaxAxis(e.MulScalar(simField, 1/float32(w.cfg.Dim)), 1)
		selfSim := e.MaxAxis(e.MulScalar(srcField, 1/float32(w.cfg.Dim)), 1)
		match := e.MeanAxis(e.Sub(nearest, selfSim).Reshape(1, np), 1)

		l := e.Sub(e.AddScalar(e.Neg(simTgt), 1), simContent)
		total := e.MeanAxis(l.Reshape(1, np), 1)
		loss = total.Item() + flipPenalty.Item() - match.Item()
	})
	return loss, nil
}

// features runs the extractor and flattens the spatial grid to patch
// feature vectors (patches × channels).
func (w *VSAIT) features(e *ops.Engine, img *tensor.Tensor) *tensor.Tensor {
	x := img
	for _, b := range w.extractor {
		x = b.Forward(e, x)
	}
	// x: 1 × C × h × w → (h·w) × C
	c, h, wd := x.Dim(1), x.Dim(2), x.Dim(3)
	perm := e.Permute(x.Reshape(c, h*wd), 1, 0)
	return perm.Reshape(h*wd, c)
}

// encodePatches hashes every patch feature vector into the hyperspace with
// a single batched projection plus sign (the batched LSH of the paper).
func (w *VSAIT) encodePatches(e *ops.Engine, feats *tensor.Tensor) *tensor.Tensor {
	proj := e.MatMul(feats, e.Transpose(w.lsh.Proj))
	return e.Sign(proj)
}

// bundleRows bundles all patch hypervectors into one domain descriptor.
func (w *VSAIT) bundleRows(e *ops.Engine, hv *tensor.Tensor) *tensor.Tensor {
	np, dim := hv.Dim(0), hv.Dim(1)
	sum := e.SumAxis(hv.Reshape(np, dim), 0)
	return e.Sign(sum)
}
