package zeroc

import (
	"testing"

	"github.com/neurosym/nsbench/internal/datasets"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/trace"
)

func TestZeroShotRecognition(t *testing.T) {
	w := New(Config{ImgSize: 32, Ensemble: 1, Seed: 3})
	if acc := w.Accuracy(20); acc < 0.9 {
		t.Fatalf("zero-shot accuracy = %v, want >= 0.9", acc)
	}
}

func TestClassifyEachConcept(t *testing.T) {
	w := New(Config{ImgSize: 32, Ensemble: 1, Seed: 5})
	for _, name := range datasets.ConceptNames() {
		inst := datasets.GenConceptGrid(32, name, w.g)
		e := ops.New()
		got, err := w.Classify(e, inst)
		if err != nil {
			t.Fatal(err)
		}
		if got != name {
			t.Fatalf("Classify(%s) = %s", name, got)
		}
	}
}

func TestNeuralDominates(t *testing.T) {
	// Paper: ZeroC is the most neural-heavy workload (73.2% neural), due
	// to the energy-based model ensemble.
	w := New(Config{})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	if share := e.Trace().PhaseShare(trace.Neural); share < 0.5 {
		t.Fatalf("neural share = %v, want > 0.5", share)
	}
}

func TestStages(t *testing.T) {
	w := New(Config{ImgSize: 32, Ensemble: 1})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	stages := map[string]bool{}
	for _, s := range e.Trace().ByStage() {
		stages[s.Stage] = true
	}
	if !stages["primitive_parsing"] || !stages["graph_matching"] {
		t.Fatalf("stages missing: %v", stages)
	}
}

func TestEnsembleScalesNeuralWork(t *testing.T) {
	run := func(k int) int64 {
		w := New(Config{ImgSize: 16, Ensemble: k})
		e := ops.New()
		if err := w.Run(e); err != nil {
			t.Fatal(err)
		}
		return e.Trace().StatsByPhase()[trace.Neural].FLOPs
	}
	if run(4) <= run(1) {
		t.Fatal("larger ensemble must execute more neural FLOPs")
	}
}

func TestNameCategory(t *testing.T) {
	w := New(Config{ImgSize: 16, Ensemble: 1})
	if w.Name() != "ZeroC" || w.Category() != "Neuro[Symbolic]" {
		t.Fatal("identity wrong")
	}
}
