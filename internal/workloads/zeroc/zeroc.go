// Package zeroc implements the Zero-shot Concept Recognition and
// Acquisition workload (Wu et al., NeurIPS 2022; workload W6): an ensemble
// of energy-based neural models over the input image, combined with a
// symbolic concept-graph backend that recognizes hierarchical concepts as
// compositions of primitive strokes and relations at inference time,
// without concept-specific training.
//
// The symbolic recognizer is real: it parses line primitives from the
// image, extracts their relations (orientation, junctions), and matches the
// resulting graph against concept templates — which is what lets the
// workload classify unseen hierarchical concepts zero-shot.
package zeroc

import (
	"fmt"

	"github.com/neurosym/nsbench/internal/datasets"
	"github.com/neurosym/nsbench/internal/nn"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

// Config parameterizes the workload.
type Config struct {
	ImgSize  int   // grid resolution; default 32
	Ensemble int   // energy-model ensemble size; default 4
	Seed     int64 // default 1

	// Engine selects the execution backend for engines the workload
	// builds itself (classification loops).
	Engine ops.Config
}

func (c *Config) defaults() {
	if c.ImgSize == 0 {
		c.ImgSize = 32
	}
	if c.Ensemble == 0 {
		c.Ensemble = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ZeroC is the workload instance.
type ZeroC struct {
	cfg       Config
	newEngine func() *ops.Engine
	release   func() // tears down the shared engine backend
	g         *tensor.RNG
	ebms      []*nn.CNN        // energy-based model ensemble (one per constituent model)
	templates []*tensor.Tensor // canonical concept masks for grounding search
}

// New constructs the workload.
func New(cfg Config) *ZeroC {
	cfg.defaults()
	g := tensor.NewRNG(cfg.Seed)
	newEngine, release := cfg.Engine.Factory()
	w := &ZeroC{cfg: cfg, newEngine: newEngine, release: release, g: g}
	for i := 0; i < cfg.Ensemble; i++ {
		w.ebms = append(w.ebms, nn.NewCNN(g, fmt.Sprintf("zeroc.ebm%d", i),
			nn.CNNConfig{InChannels: 1, InSize: cfg.ImgSize, Channels: []int{8, 16}, Residual: true, OutDim: 1}))
	}
	tg := tensor.NewRNG(cfg.Seed + 1)
	for _, name := range datasets.ConceptNames() {
		c := datasets.GenConceptGrid(cfg.ImgSize, name, tg)
		w.templates = append(w.templates, c.Image.Reshape(cfg.ImgSize*cfg.ImgSize))
	}
	return w
}

// Name implements the workload identity.
func (w *ZeroC) Name() string { return "ZeroC" }

// Close releases the workload's shared engine backend (worker pool).
func (w *ZeroC) Close() { w.release() }

// Category returns the taxonomy category of Table III.
func (w *ZeroC) Category() string { return "Neuro[Symbolic]" }

// Register records the model's persistent parameters.
func (w *ZeroC) Register(e *ops.Engine) {
	for _, m := range w.ebms {
		m.Register(e)
	}
}

// Run classifies one generated concept grid.
func (w *ZeroC) Run(e *ops.Engine) error {
	names := datasets.ConceptNames()
	inst := datasets.GenConceptGrid(w.cfg.ImgSize, names[w.g.Intn(len(names))], w.g)
	_, err := w.Classify(e, inst)
	return err
}

// Classify recognizes the concept in the grid and returns its name.
func (w *ZeroC) Classify(e *ops.Engine, inst datasets.ConceptGrid) (string, error) {
	w.Register(e)

	// ---- Neural: energy-based ensemble over the image ---------------------
	e.SetPhase(trace.Neural)
	img := e.HostToDevice(inst.Image)
	energies := make([]*tensor.Tensor, 0, len(w.ebms))
	for _, m := range w.ebms {
		energies = append(energies, m.Forward(e, img))
	}
	stackE := e.Concat(1, energies...)
	_ = e.Softmax(stackE)
	_ = e.DeviceToHost(stackE)

	// ---- Symbolic: concept-graph grounding and matching -------------------
	e.SetPhase(trace.Symbolic)
	var lines []line
	e.InStage("primitive_parsing", func() {
		lines = w.parseLines(e, inst.Image)
	})
	// Grounding search: slide each concept template over candidate
	// placements and score the overlap — the combinatorial part of ZeroC's
	// inference-time concept grounding.
	e.InStage("grounding_search", func() {
		w.groundTemplates(e, inst.Image)
	})
	var label string
	e.InStage("graph_matching", func() {
		label = w.matchConcept(e, lines)
	})
	return label, nil
}

// groundTemplates evaluates every concept template at a grid of candidate
// placements by circularly shifting the image and scoring the overlap with
// the template mask.
func (w *ZeroC) groundTemplates(e *ops.Engine, img *tensor.Tensor) {
	size := w.cfg.ImgSize
	flat := img.Reshape(size * size)
	for _, tm := range w.templates {
		for dy := 0; dy < size/2; dy += size / 16 {
			for dx := 0; dx < size/2; dx += size / 16 {
				shifted := e.Roll(flat, dy*size+dx)
				overlap := e.Mul(shifted, tm)
				_ = e.SumAxis(overlap.Reshape(1, size*size), 1)
			}
		}
	}
}

// line is a detected stroke primitive.
type line struct {
	horizontal bool
	pos        int // row for horizontal, column for vertical
	lo, hi     int // span along the line's direction
}

// parseLines detects maximal horizontal and vertical strokes via row and
// column ink projections (tensor reductions) followed by run extraction
// (symbolic scan).
func (w *ZeroC) parseLines(e *ops.Engine, img *tensor.Tensor) []line {
	size := w.cfg.ImgSize
	flat := img.Reshape(size, size)
	rowSum := e.SumAxis(flat, 1)
	colSum := e.SumAxis(flat, 0)
	var out []line
	minRun := size / 4
	e.Logic("RunExtraction", int64(size*size), int64(size*size)*4, []*tensor.Tensor{rowSum, colSum}, func() []*tensor.Tensor {
		// Horizontal strokes: rows with long contiguous ink runs.
		for y := 0; y < size; y++ {
			if rowSum.At(y) < float32(minRun) {
				continue
			}
			lo, hi, run, bestLo, bestHi := -1, -1, 0, 0, -1
			for x := 0; x < size; x++ {
				if flat.At(y, x) > 0 {
					if lo == -1 {
						lo = x
					}
					hi = x
					run = hi - lo + 1
					if run > bestHi-bestLo+1 {
						bestLo, bestHi = lo, hi
					}
				} else {
					lo = -1
				}
			}
			if bestHi-bestLo+1 >= minRun {
				out = append(out, line{horizontal: true, pos: y, lo: bestLo, hi: bestHi})
			}
		}
		// Vertical strokes.
		for x := 0; x < size; x++ {
			if colSum.At(x) < float32(minRun) {
				continue
			}
			lo, hi, bestLo, bestHi := -1, -1, 0, -1
			for y := 0; y < size; y++ {
				if flat.At(y, x) > 0 {
					if lo == -1 {
						lo = y
					}
					hi = y
					if hi-lo+1 > bestHi-bestLo+1 {
						bestLo, bestHi = lo, hi
					}
				} else {
					lo = -1
				}
			}
			if bestHi-bestLo+1 >= minRun {
				out = append(out, line{horizontal: false, pos: x, lo: bestLo, hi: bestHi})
			}
		}
		return nil
	})
	return out
}

// matchConcept grounds the concept templates against the detected strokes:
// each template constrains the number of horizontal/vertical strokes and
// their junction structure.
func (w *ZeroC) matchConcept(e *ops.Engine, lines []line) string {
	var h, v []line
	for _, l := range lines {
		if l.horizontal {
			h = append(h, l)
		} else {
			v = append(v, l)
		}
	}
	label := "unknown"
	e.Logic("TemplateMatch", int64(len(lines)*len(lines)), int64(len(lines))*16, nil, func() []*tensor.Tensor {
		switch {
		case len(h) >= 2 && len(v) >= 2:
			label = "rect"
		case len(h) >= 3 && len(v) == 1:
			label = "Eshape"
		case len(h) == 2 && len(v) == 1:
			label = "Fshape"
		case len(h) == 1 && len(v) == 1:
			// T vs cross: where does the vertical stroke cross the
			// horizontal one? A cross intersects in the interior of both.
			hl, vl := h[0], v[0]
			crossesInteriorV := hl.pos > vl.lo+2 && hl.pos < vl.hi-2
			if crossesInteriorV {
				label = "cross"
			} else {
				label = "Tshape"
			}
		}
		return nil
	})
	return label
}

// Accuracy classifies n generated grids and returns the fraction correct —
// the zero-shot recognition capability of the symbolic backend.
func (w *ZeroC) Accuracy(n int) float64 {
	names := datasets.ConceptNames()
	correct := 0
	for i := 0; i < n; i++ {
		inst := datasets.GenConceptGrid(w.cfg.ImgSize, names[i%len(names)], w.g)
		e := w.newEngine()
		if got, err := w.Classify(e, inst); err == nil && got == inst.Concept {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
