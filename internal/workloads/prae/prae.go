// Package prae implements the Probabilistic Abduction and Execution
// learner (Zhang et al., CVPR 2021; workload W7): neural visual perception
// producing per-attribute probability distributions, a scene-inference
// engine aggregating them into a probabilistic scene representation, and a
// symbolic backend that abduces hidden rules and executes them to predict
// the answer panel.
//
// Unlike NVSA, PrAE works on the original probability representation: its
// backend performs the exhaustive joint-probability computations that NVSA
// replaces with vector-symbolic algebra, which is why PrAE's symbolic phase
// is the most memory-hungry of the characterized workloads (Fig. 3b).
package prae

import (
	"github.com/neurosym/nsbench/internal/nn"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/raven"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
	"github.com/neurosym/nsbench/internal/workloads/abduction"
)

// Config parameterizes the workload.
type Config struct {
	M       int     // RPM grid dimension; default 3
	ImgSize int     // rendered panel resolution; default 32
	Noise   float64 // perception label noise; default 0.01
	Seed    int64   // default 1

	// Engine selects the execution backend for engines the workload
	// builds itself (accuracy loops).
	Engine ops.Config
}

func (c *Config) defaults() {
	if c.M == 0 {
		c.M = 3
	}
	if c.ImgSize == 0 {
		c.ImgSize = 32
	}
	if c.Noise == 0 {
		c.Noise = 0.01
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// PrAE is the workload instance.
type PrAE struct {
	cfg       Config
	newEngine func() *ops.Engine
	release   func() // tears down the shared engine backend
	g         *tensor.RNG
	cnn       *nn.CNN
	attrs     []raven.Attribute
}

// New constructs the workload.
func New(cfg Config) *PrAE {
	cfg.defaults()
	g := tensor.NewRNG(cfg.Seed)
	newEngine, release := cfg.Engine.Factory()
	return &PrAE{
		cfg:       cfg,
		newEngine: newEngine,
		release:   release,
		g:         g,
		cnn:       nn.NewCNN(g, "prae.perception", nn.CNNConfig{InChannels: 1, InSize: cfg.ImgSize, Channels: []int{8, 16}, OutDim: 64}),
		attrs:     []raven.Attribute{raven.Number, raven.Type, raven.Size, raven.Color},
	}
}

// Name implements the workload identity.
func (w *PrAE) Name() string { return "PrAE" }

// Close releases the workload's shared engine backend (worker pool).
func (w *PrAE) Close() { w.release() }

// Category returns the taxonomy category of Table III.
func (w *PrAE) Category() string { return "Neuro|Symbolic" }

// Register records the model's persistent parameters.
func (w *PrAE) Register(e *ops.Engine) { w.cnn.Register(e) }

// Run generates one RPM task and solves it end-to-end.
func (w *PrAE) Run(e *ops.Engine) error {
	task := raven.Generate(raven.Config{M: w.cfg.M}, w.g)
	_, err := w.Solve(e, task)
	return err
}

// Solve runs the pipeline and returns the chosen candidate index.
func (w *PrAE) Solve(e *ops.Engine, task raven.Task) (int, error) {
	w.Register(e)
	panels := append(append([]raven.Panel{}, task.Context...), task.Choices...)

	// ---- Neural perception ------------------------------------------------
	e.SetPhase(trace.Neural)
	imgs := make([]*tensor.Tensor, len(panels))
	for i, p := range panels {
		imgs[i] = p.Render(w.cfg.ImgSize).Reshape(1, w.cfg.ImgSize, w.cfg.ImgSize)
	}
	batch := e.Stack(imgs...)
	batch = e.HostToDevice(batch)
	feats := w.cnn.Forward(e, batch)
	soft := e.Softmax(feats)
	hostF := e.DeviceToHost(soft)

	// ---- Symbolic abduction and execution ---------------------------------
	e.SetPhase(trace.Symbolic)
	// Perception readout (see DESIGN.md substitutions): an explicit traced
	// event producing the attribute PMFs from the neural output, so the
	// symbolic backend's dependence on the frontend appears in the graph.
	pmfs := make([]map[raven.Attribute]*tensor.Tensor, len(panels))
	e.Logic("PerceptionReadout", int64(len(panels)*30), int64(len(panels)*30*4), []*tensor.Tensor{hostF}, func() []*tensor.Tensor {
		var outs []*tensor.Tensor
		for i, p := range panels {
			pmfs[i] = raven.PerceivePMF(p, w.cfg.Noise, w.g)
			for _, a := range w.attrs {
				outs = append(outs, pmfs[i][a])
			}
		}
		return outs
	})
	e.MeasureSparsity(true)
	e.SetSparsityEps(float32(w.cfg.Noise)) // count the noise floor as zero
	defer e.MeasureSparsity(false)

	m := task.M
	ctx := len(task.Context)
	chosen := -1

	// Scene inference: build the exhaustive joint scene distribution for
	// every context panel, over position-pattern × type × size × color.
	// These large low-density intermediates are what make PrAE's symbolic
	// phase the most memory-hungry of the suite (Fig. 3b) and what NVSA's
	// algebraic substitution avoids.
	e.InStage("scene_inference", func() {
		// Context panels and answer candidates alike get a scene
		// representation — candidate selection compares in scene space.
		for pi := range panels {
			pos := raven.PerceivePositionPMF(panels[pi], w.cfg.Noise)
			joint := abduction.Joint(e, pos, pmfs[pi][raven.Type])
			joint = abduction.Joint(e, joint, pmfs[pi][raven.Size])
			joint = abduction.Joint(e, joint, pmfs[pi][raven.Color])
			_ = e.NormalizeL1(joint)
		}
	})

	predicted := make(map[raven.Attribute]*tensor.Tensor, len(w.attrs))
	for _, a := range w.attrs {
		rows := make([][]*tensor.Tensor, m)
		for r := 0; r < m; r++ {
			for c := 0; c < m; c++ {
				if pi := r*m + c; pi < ctx {
					rows[r] = append(rows[r], pmfs[pi][a])
				}
			}
		}
		var best abduction.CandidateRule
		e.InStage("abduce:"+a.String(), func() {
			scores := abduction.Abduce(e, a, m, rows)
			e.Logic("RuleAbduce:"+a.String(), int64(len(scores)), int64(len(scores))*4, nil, func() []*tensor.Tensor {
				best, _ = abduction.BestRule(a, m, scores)
				return nil
			})
		})
		e.InStage("execute:"+a.String(), func() {
			predicted[a] = abduction.ExecuteWithContext(e, best, rows)
		})
	}

	// Candidate selection against the predicted probabilistic scene: the
	// predicted marginals are synthesized into a full joint scene and each
	// candidate's joint scene is compared against it (probabilistic
	// planning in scene space), alongside the exact marginal dot products.
	scores := tensor.New(len(task.Choices))
	e.InStage("select", func() {
		lastPos := raven.PerceivePositionPMF(panels[ctx-1], w.cfg.Noise)
		predScene := abduction.Joint(e, lastPos, predicted[raven.Type])
		predScene = abduction.Joint(e, predScene, predicted[raven.Size])
		predScene = abduction.Joint(e, predScene, predicted[raven.Color])
		for ci := range task.Choices {
			cp := pmfs[ctx+ci]
			choicePos := raven.PerceivePositionPMF(panels[ctx+ci], w.cfg.Noise)
			choiceScene := abduction.Joint(e, choicePos, cp[raven.Type])
			choiceScene = abduction.Joint(e, choiceScene, cp[raven.Size])
			choiceScene = abduction.Joint(e, choiceScene, cp[raven.Color])
			_ = e.Dot(predScene, choiceScene)
			total := tensor.Scalar(1)
			for _, a := range w.attrs {
				total = e.Mul(total, e.Dot(predicted[a], cp[a]))
			}
			scores.Data()[ci] = total.Item()
		}
		e.Logic("AnswerSelect", int64(len(task.Choices)), int64(len(task.Choices))*4, []*tensor.Tensor{scores}, func() []*tensor.Tensor {
			chosen = tensor.ArgMax(scores)
			return nil
		})
	})
	return chosen, nil
}

// SolveAccuracy runs n fresh tasks and returns the fraction answered correctly.
func (w *PrAE) SolveAccuracy(n int) float64 {
	correct := 0
	for i := 0; i < n; i++ {
		task := raven.Generate(raven.Config{M: w.cfg.M}, w.g)
		e := w.newEngine()
		if got, err := w.Solve(e, task); err == nil && got == task.AnswerIdx {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
