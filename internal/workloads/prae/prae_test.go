package prae

import (
	"testing"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/trace"
)

func TestSolveCorrectness(t *testing.T) {
	w := New(Config{ImgSize: 16, Noise: 0.005, Seed: 11})
	if acc := w.SolveAccuracy(20); acc < 0.9 {
		t.Fatalf("PrAE accuracy = %v, want >= 0.9", acc)
	}
}

func TestPhasesAndStages(t *testing.T) {
	w := New(Config{ImgSize: 16})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	tr := e.Trace()
	if tr.PhaseDuration(trace.Neural) == 0 || tr.PhaseDuration(trace.Symbolic) == 0 {
		t.Fatal("both phases must record time")
	}
	stages := map[string]bool{}
	for _, s := range tr.ByStage() {
		stages[s.Stage] = true
	}
	for _, want := range []string{"scene_inference", "abduce:number", "execute:color", "select"} {
		if !stages[want] {
			t.Fatalf("stage %q missing; have %v", want, stages)
		}
	}
}

func TestSceneInferenceSparsity(t *testing.T) {
	w := New(Config{ImgSize: 16, Noise: 0.01})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	for _, s := range e.Trace().ByStage() {
		if s.Stage == "scene_inference" {
			// The exhaustive joint scene tensors are extremely sparse
			// (paper: > 95%); with noise-floor thresholding ours must be too.
			if s.Sparsity < 0.9 {
				t.Fatalf("scene sparsity = %v, want > 0.9", s.Sparsity)
			}
			return
		}
	}
	t.Fatal("scene_inference stage missing")
}

func TestSymbolicMemoryDominates(t *testing.T) {
	// PrAE's symbolic phase must allocate more than its neural phase
	// (Fig. 3b observation), driven by the exhaustive joint tensors.
	w := New(Config{ImgSize: 16})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	stats := e.Trace().StatsByPhase()
	if stats[trace.Symbolic].Alloc < stats[trace.Neural].Alloc/4 {
		t.Fatalf("symbolic alloc %d too small vs neural %d",
			stats[trace.Symbolic].Alloc, stats[trace.Neural].Alloc)
	}
}

func TestNameCategory(t *testing.T) {
	w := New(Config{})
	if w.Name() != "PrAE" || w.Category() != "Neuro|Symbolic" {
		t.Fatal("identity wrong")
	}
}

func TestCrossPhaseDependency(t *testing.T) {
	w := New(Config{ImgSize: 16})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	g := trace.BuildGraph(e.Trace())
	if n2s, _ := g.CrossPhaseEdges(); n2s == 0 {
		t.Fatal("symbolic phase must consume neural outputs")
	}
}
