package ltn

import (
	"testing"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/trace"
)

func TestSatisfiabilityHighAfterTraining(t *testing.T) {
	w := New(Config{Samples: 128, Seed: 2})
	e := ops.New()
	sat, err := w.Satisfiability(e)
	if err != nil {
		t.Fatal(err)
	}
	if sat < 0.6 || sat > 1 {
		t.Fatalf("satisfiability = %v, want in (0.6, 1]", sat)
	}
}

func TestQueryAccuracy(t *testing.T) {
	w := New(Config{Samples: 200, Seed: 4})
	if acc := w.QueryAccuracy(); acc < 0.8 {
		t.Fatalf("query accuracy = %v, want >= 0.8 on separable blobs", acc)
	}
}

func TestPhaseSplitBalanced(t *testing.T) {
	// The paper reports LTN at roughly half neural, half symbolic.
	w := New(Config{})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	share := e.Trace().PhaseShare(trace.Symbolic)
	if share < 0.2 || share > 0.85 {
		t.Fatalf("symbolic share = %v, want balanced", share)
	}
}

func TestNeuralDominatedByMatMul(t *testing.T) {
	w := New(Config{})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	sh := e.Trace().CategoryShare(trace.Neural)
	if sh[trace.MatMul] < 0.3 {
		t.Fatalf("neural MatMul share = %v, want dominant (Fig. 3a)", sh[trace.MatMul])
	}
}

func TestStages(t *testing.T) {
	w := New(Config{})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	stages := map[string]bool{}
	for _, s := range e.Trace().ByStage() {
		stages[s.Stage] = true
	}
	for _, want := range []string{"axiom_membership", "axiom_exclusion", "axiom_existence", "satisfiability"} {
		if !stages[want] {
			t.Fatalf("stage %q missing; have %v", want, stages)
		}
	}
}

func TestUntrainedSatLower(t *testing.T) {
	trained := New(Config{Samples: 128, Seed: 6})
	untrained := New(Config{Samples: 128, Seed: 6, Epochs: 1})
	st, _ := trained.Satisfiability(ops.New())
	su, _ := untrained.Satisfiability(ops.New())
	if st < su-0.05 {
		t.Fatalf("training should not reduce satisfiability: trained=%v vs untrained=%v", st, su)
	}
}

func TestNameCategory(t *testing.T) {
	w := New(Config{Samples: 32, Epochs: 1})
	if w.Name() != "LTN" || w.Category() != "Neuro_Symbolic" {
		t.Fatal("identity wrong")
	}
}

func TestFitDifferentiableImprovesSatisfiability(t *testing.T) {
	// Start from a nearly untrained head (one SGD epoch) and train by
	// maximizing theory satisfiability with autograd.
	w := New(Config{Samples: 160, Epochs: 1, Seed: 8})
	before, after := w.FitDifferentiable(150, 2.0)
	if after <= before {
		t.Fatalf("satisfiability did not improve: %v -> %v", before, after)
	}
	if after < 0.7 {
		t.Fatalf("post-training satisfiability = %v, want >= 0.7", after)
	}
	// The fitted head must also answer queries well.
	if acc := w.QueryAccuracy(); acc < 0.8 {
		t.Fatalf("query accuracy after differentiable fit = %v", acc)
	}
	// And the profiled theory evaluation agrees with the training-side sat.
	sat, err := w.Satisfiability(ops.New())
	if err != nil {
		t.Fatal(err)
	}
	if sat < 0.6 {
		t.Fatalf("profiled satisfiability = %v", sat)
	}
}
