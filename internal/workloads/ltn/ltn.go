// Package ltn implements the Logic Tensor Network workload (Badreddine et
// al., AIJ 2022; workload W2): neural groundings of first-order predicates
// over tabular data, combined under fuzzy first-order logic with smooth
// quantifier aggregation.
//
// The neural phase computes predicate groundings with an MLP (a frozen
// random feature layer plus a trained logistic head, so queries are
// meaningful without an autograd stack); the symbolic phase evaluates the
// knowledge axioms — class membership, mutual exclusion, existence — with
// Łukasiewicz connectives and p-mean quantifiers over the grounded truth
// tensors, producing the theory's satisfiability degree.
package ltn

import (
	"math"

	"github.com/neurosym/nsbench/internal/datasets"
	"github.com/neurosym/nsbench/internal/logic"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

// Config parameterizes the workload.
type Config struct {
	Samples int   // dataset size; default 256
	Dim     int   // feature dimensionality; default 8
	Classes int   // class count; default 4
	Hidden  int   // random feature width; default 64
	Epochs  int   // logistic-head training epochs; default 30
	Seed    int64 // default 1
}

func (c *Config) defaults() {
	if c.Samples == 0 {
		c.Samples = 256
	}
	if c.Dim == 0 {
		c.Dim = 8
	}
	if c.Classes == 0 {
		c.Classes = 6
	}
	if c.Hidden == 0 {
		c.Hidden = 64
	}
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// LTN is the workload instance.
type LTN struct {
	cfg  Config
	g    *tensor.RNG
	data *datasets.Tabular
	w1   *tensor.Tensor // hidden × dim frozen random features
	head *tensor.Tensor // classes × (hidden+1) trained logistic weights (incl. bias)
}

// New constructs the workload, generating data and fitting the predicate
// heads with plain SGD (one-vs-all logistic regression on the frozen
// random features).
func New(cfg Config) *LTN {
	cfg.defaults()
	g := tensor.NewRNG(cfg.Seed)
	w := &LTN{
		cfg:  cfg,
		g:    g,
		data: datasets.GenTabular(cfg.Samples, cfg.Dim, cfg.Classes, g),
		w1:   g.Xavier(cfg.Dim, cfg.Hidden, cfg.Hidden, cfg.Dim),
	}
	w.head = g.Normal(0, 0.01, cfg.Classes, cfg.Hidden+1)
	w.train()
	return w
}

// hiddenFeatures computes the frozen random-feature layer without tracing.
func (w *LTN) hiddenFeatures() *tensor.Tensor {
	h := tensor.MatMul(w.data.X, tensor.Transpose(w.w1))
	return tensor.ReLU(h)
}

// train fits the logistic heads by SGD.
func (w *LTN) train() {
	h := w.hiddenFeatures()
	n, hd := h.Dim(0), h.Dim(1)
	lr := float32(0.1)
	for epoch := 0; epoch < w.cfg.Epochs; epoch++ {
		for i := 0; i < n; i++ {
			row := h.Data()[i*hd : (i+1)*hd]
			for c := 0; c < w.cfg.Classes; c++ {
				wrow := w.head.Data()[c*(hd+1) : (c+1)*(hd+1)]
				var z float32 = wrow[hd] // bias
				for j, v := range row {
					z += wrow[j] * v
				}
				p := float32(1 / (1 + math.Exp(-float64(z))))
				y := float32(0)
				if w.data.Y[i] == c {
					y = 1
				}
				gerr := (p - y) * lr
				for j, v := range row {
					wrow[j] -= gerr * v
				}
				wrow[hd] -= gerr
			}
		}
	}
}

// Name implements the workload identity.
func (w *LTN) Name() string { return "LTN" }

// Category returns the taxonomy category of Table III.
func (w *LTN) Category() string { return "Neuro_Symbolic" }

// Register records the model's persistent parameters.
func (w *LTN) Register(e *ops.Engine) {
	e.RegisterParam("ltn.features", "weight", w.w1)
	e.RegisterParam("ltn.head", "weight", w.head)
}

// Run grounds all predicates over the dataset and evaluates the theory.
func (w *LTN) Run(e *ops.Engine) error {
	_, err := w.Satisfiability(e)
	return err
}

// Satisfiability computes the aggregate truth degree of the LTN theory.
func (w *LTN) Satisfiability(e *ops.Engine) (float64, error) {
	w.Register(e)
	// ---- Neural groundings -------------------------------------------------
	e.SetPhase(trace.Neural)
	x := e.HostToDevice(w.data.X)
	hidden := e.ReLU(e.MatMul(x, e.Transpose(w.w1)))
	// Append the bias column.
	ones := tensor.Ones(hidden.Dim(0), 1)
	hb := e.Concat(1, hidden, ones)
	logits := e.MatMul(hb, e.Transpose(w.head))
	truths := e.Sigmoid(logits) // n × classes grounded predicate degrees
	truths = e.DeviceToHost(truths)

	// ---- Symbolic theory evaluation ----------------------------------------
	e.SetPhase(trace.Symbolic)
	n, k := truths.Dim(0), truths.Dim(1)
	var axioms []float64

	// Axiom set 1: ∀x∈class_c: P_c(x), aggregated with p-mean error.
	e.InStage("axiom_membership", func() {
		for c := 0; c < k; c++ {
			col := e.Slice(e.Transpose(truths), c, c+1).Reshape(n)
			mask := tensor.New(n)
			for i, y := range w.data.Y {
				if y == c {
					mask.Data()[i] = 1
				}
			}
			sel := e.MaskedSelect(col, mask)
			if sel.Size() == 0 {
				continue
			}
			// pmean_error: 1 - (mean (1-d)^p)^(1/p), tensorized.
			comp := e.AddScalar(e.Neg(sel), 1)
			sq := e.Mul(comp, comp)
			mean := e.MeanAxis(sq.Reshape(1, sq.Size()), 1)
			deg := 1 - math.Sqrt(float64(mean.Item()))
			axioms = append(axioms, clamp01(deg))
		}
	})

	// Axiom set 2: mutual exclusion ∀x: P_c(x) → ¬P_c'(x) for c < c',
	// with the Łukasiewicz implication a→b = min(1, 1-a+b), b = 1-P_c'.
	e.InStage("axiom_exclusion", func() {
		cols := make([]*tensor.Tensor, k)
		tt := e.Transpose(truths)
		for c := 0; c < k; c++ {
			cols[c] = e.Slice(tt, c, c+1).Reshape(n)
		}
		for c := 0; c < k; c++ {
			for c2 := c + 1; c2 < k; c2++ {
				notB := e.AddScalar(e.Neg(cols[c2]), 1)
				impl := e.Clamp(e.AddScalar(e.Add(e.Neg(cols[c]), notB), 1), 0, 1)
				comp := e.AddScalar(e.Neg(impl), 1)
				sq := e.Mul(comp, comp)
				mean := e.MeanAxis(sq.Reshape(1, n), 1)
				axioms = append(axioms, clamp01(1-math.Sqrt(float64(mean.Item()))))
			}
		}
	})

	// Axiom set 3: ∃x: P_c(x) per class, p-mean aggregation.
	e.InStage("axiom_existence", func() {
		tt := e.Transpose(truths)
		for c := 0; c < k; c++ {
			col := e.Slice(tt, c, c+1).Reshape(n)
			sq := e.Mul(col, col)
			mean := e.MeanAxis(sq.Reshape(1, n), 1)
			axioms = append(axioms, clamp01(math.Sqrt(float64(mean.Item()))))
		}
	})

	// Theory satisfiability: the aggregated degree over all axioms.
	var sat float64
	e.InStage("satisfiability", func() {
		e.Logic("TheoryAggregate", int64(len(axioms)), int64(len(axioms))*8, nil, func() []*tensor.Tensor {
			sat = (logic.PMeanError{P: 2}).Aggregate(axioms)
			return nil
		})
	})
	return sat, nil
}

// QueryAccuracy classifies every sample by its most-true predicate and
// returns agreement with the labels (an LTN "query answering" task).
func (w *LTN) QueryAccuracy() float64 {
	h := w.hiddenFeatures()
	n, hd := h.Dim(0), h.Dim(1)
	correct := 0
	for i := 0; i < n; i++ {
		row := h.Data()[i*hd : (i+1)*hd]
		best, bi := float32(math.Inf(-1)), 0
		for c := 0; c < w.cfg.Classes; c++ {
			wrow := w.head.Data()[c*(hd+1) : (c+1)*(hd+1)]
			z := wrow[hd]
			for j, v := range row {
				z += wrow[j] * v
			}
			if z > best {
				best, bi = z, c
			}
		}
		if bi == w.data.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
