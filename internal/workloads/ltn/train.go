package ltn

import (
	"math"

	"github.com/neurosym/nsbench/internal/autograd"
	"github.com/neurosym/nsbench/internal/tensor"
)

// FitDifferentiable trains the predicate heads by maximizing the theory's
// satisfiability with reverse-mode autodiff — the actual LTN training
// procedure: the fuzzy axioms become a differentiable loss, and gradients
// flow through the quantifier aggregations and connectives into the neural
// groundings.
//
// The loss is the p-mean-error (p=2) form of the axiom set: for every
// class c, ∀x∈c: P_c(x) (membership) and ∀x∉c: ¬P_c(x) (exclusion).
// Returns the theory satisfiability before and after training, measured as
// 1 - √loss.
func (w *LTN) FitDifferentiable(epochs int, lr float32) (satBefore, satAfter float64) {
	h := w.hiddenFeatures()
	n, hd := h.Dim(0), h.Dim(1)
	k := w.cfg.Classes

	// Bias-augmented constant features.
	hb := tensor.Concat(1, h, tensor.Ones(n, 1))
	x := autograd.Const(hb)

	// Trainable head (transposed to (hd+1) × k for a single MatMul).
	headT := tensor.New(hd+1, k)
	for c := 0; c < k; c++ {
		for j := 0; j <= hd; j++ {
			headT.Set(w.head.At(c, j), j, c)
		}
	}
	params := autograd.NewVar(headT, true)

	// Axiom masks: member[c] selects class-c rows of column c; the
	// complement drives the exclusion axioms. Flattened to n×k constants.
	member := tensor.New(n, k)
	exclude := tensor.New(n, k)
	memberCount, excludeCount := 0, 0
	for i := 0; i < n; i++ {
		for c := 0; c < k; c++ {
			if w.data.Y[i] == c {
				member.Set(1, i, c)
				memberCount++
			} else {
				exclude.Set(1, i, c)
				excludeCount++
			}
		}
	}

	loss := func() *autograd.Var {
		params.ZeroGrad()
		truths := autograd.Sigmoid(autograd.MatMul(x, params)) // n × k
		// Membership: (1 - P_c(x))² over class members.
		memErr := autograd.Square(autograd.Sub(autograd.Const(tensor.Ones(n, k)), truths))
		memTerm := autograd.MulScalar(autograd.Sum(autograd.Mul(memErr, autograd.Const(member))), 1/float32(memberCount))
		// Exclusion: P_c(x)² over non-members (¬P_c must hold).
		excErr := autograd.Square(truths)
		excTerm := autograd.MulScalar(autograd.Sum(autograd.Mul(excErr, autograd.Const(exclude))), 1/float32(excludeCount))
		return autograd.Add(memTerm, excTerm)
	}

	sat := func(l float32) float64 { return clamp01(1 - math.Sqrt(float64(l)/2)) }

	opt := &autograd.SGD{Params: []*autograd.Var{params}, LR: lr}
	first := loss()
	satBefore = sat(first.Value.Item())
	for e := 0; e < epochs; e++ {
		l := loss()
		l.Backward()
		opt.Step()
	}
	final := loss()
	satAfter = sat(final.Value.Item())

	// Write the fitted head back into the workload's inference parameters.
	for c := 0; c < k; c++ {
		for j := 0; j <= hd; j++ {
			w.head.Set(params.Value.At(j, c), c, j)
		}
	}
	return satBefore, satAfter
}
