package nlm

import (
	"testing"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/trace"
)

func TestForwardShapes(t *testing.T) {
	w := New(Config{Objects: 12, Depth: 2, Width: 4})
	e := ops.New()
	u, b, err := w.Forward(e)
	if err != nil {
		t.Fatal(err)
	}
	if u.Dim(0) != 12 || u.Dim(1) != 4 {
		t.Fatalf("unary shape = %v", u.Shape())
	}
	if b.Dim(0) != 144 || b.Dim(1) != 4 {
		t.Fatalf("binary shape = %v", b.Shape())
	}
}

func TestGrandparentExact(t *testing.T) {
	w := New(Config{Objects: 20, Seed: 7})
	e := ops.New()
	got := w.SolveGrandparent(e)
	want := w.Family().Grandparent()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("grandparent(%d,%d) = %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestGrandparentGeneralizesAcrossSizes(t *testing.T) {
	// The lifted rule works unchanged on larger universes — the NLM
	// generalization claim.
	for _, n := range []int{8, 32, 64} {
		w := New(Config{Objects: n, Seed: 11})
		got := w.SolveGrandparent(ops.New())
		want := w.Family().Grandparent()
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("n=%d: grandparent(%d,%d) mismatch", n, i, j)
				}
			}
		}
	}
}

func TestPhasesAndWiringStages(t *testing.T) {
	w := New(Config{})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	tr := e.Trace()
	if tr.PhaseDuration(trace.Neural) == 0 || tr.PhaseDuration(trace.Symbolic) == 0 {
		t.Fatal("both phases must record time")
	}
	stages := map[string]bool{}
	for _, s := range tr.ByStage() {
		stages[s.Stage] = true
	}
	if !stages["wiring_l0"] || !stages["wiring_l1"] {
		t.Fatalf("wiring stages missing: %v", stages)
	}
	// Symbolic wiring is transform/eltwise, no convolutions anywhere.
	if tr.CategoryBreakdown(trace.Symbolic)[trace.DataTransform] == 0 {
		t.Fatal("symbolic wiring must record data transforms")
	}
	if tr.CategoryBreakdown(trace.Neural)[trace.Convolution] != 0 {
		t.Fatal("NLM has no convolutions")
	}
}

func TestMLPsRecordMatMul(t *testing.T) {
	w := New(Config{Objects: 12, Depth: 2})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	if e.Trace().CategoryBreakdown(trace.Neural)[trace.MatMul] == 0 {
		t.Fatal("neural phase must contain the per-arity MLP GEMMs")
	}
}

func TestNameCategory(t *testing.T) {
	w := New(Config{Objects: 8})
	if w.Name() != "NLM" || w.Category() != "Neuro[Symbolic]" {
		t.Fatal("identity wrong")
	}
}

func TestDeterministicForward(t *testing.T) {
	run := func() float32 {
		w := New(Config{Objects: 10, Seed: 5})
		e := ops.New()
		u, _, _ := w.Forward(e)
		return u.Sum()
	}
	if run() != run() {
		t.Fatal("forward pass not deterministic")
	}
}
