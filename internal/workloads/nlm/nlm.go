// Package nlm implements the Neural Logic Machine workload (Dong et al.,
// ICLR 2019; workload W4): a multi-layer, multi-group architecture over
// predicate tensors of increasing arity, where per-arity MLPs approximate
// logical connectives and the expand/reduce/permute wiring realizes
// quantifiers.
//
// Phase split: the neural component is the per-arity MLP blocks (GEMM +
// activations over flattened predicate groups); the symbolic component is
// the sequential logic-deduction wiring — expansion, reduction, permutation
// and the fuzzy-logic min/max quantifier composition — that stitches the
// groups together between layers.
package nlm

import (
	"fmt"

	"github.com/neurosym/nsbench/internal/datasets"
	"github.com/neurosym/nsbench/internal/nn"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

// Config parameterizes the workload.
type Config struct {
	Objects int   // entities in the relational universe; default 24
	Depth   int   // NLM layers; default 3
	Width   int   // predicate group feature width; default 8
	Seed    int64 // default 1
}

func (c *Config) defaults() {
	if c.Objects == 0 {
		c.Objects = 24
	}
	if c.Depth == 0 {
		c.Depth = 3
	}
	if c.Width == 0 {
		c.Width = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// NLM is the workload instance.
type NLM struct {
	cfg    Config
	g      *tensor.RNG
	family *datasets.FamilyGraph
	// Per-layer MLPs for the unary and binary groups.
	unary  []*nn.Sequential
	binary []*nn.Sequential
}

// New constructs the workload over a generated family graph.
func New(cfg Config) *NLM {
	cfg.defaults()
	g := tensor.NewRNG(cfg.Seed)
	w := &NLM{cfg: cfg, g: g, family: datasets.GenFamilyGraph(cfg.Objects, g)}
	d := cfg.Width
	for l := 0; l < cfg.Depth; l++ {
		// Input widths: own group + reduced/expanded neighbours.
		w.unary = append(w.unary, nn.NewMLP(g, fmt.Sprintf("nlm.u%d", l), d+2*d, d))
		w.binary = append(w.binary, nn.NewMLP(g, fmt.Sprintf("nlm.b%d", l), d+d+2*d, d))
	}
	return w
}

// Name implements the workload identity.
func (w *NLM) Name() string { return "NLM" }

// Category returns the taxonomy category of Table III.
func (w *NLM) Category() string { return "Neuro[Symbolic]" }

// Register records the model's persistent parameters.
func (w *NLM) Register(e *ops.Engine) {
	for _, m := range w.unary {
		m.Register(e)
	}
	for _, m := range w.binary {
		m.Register(e)
	}
}

// inputs builds the initial predicate tensors from the family graph:
// unary (n × width) object properties and binary (n² × width) relations
// with the parent relation in channel 0 and its transpose in channel 1.
func (w *NLM) inputs() (unary, binary *tensor.Tensor) {
	n, d := w.cfg.Objects, w.cfg.Width
	unary = tensor.New(n, d)
	for i := 0; i < n; i++ {
		unary.Data()[i*d] = float32(i) / float32(n) // index encoding
		hasParent := float32(0)
		for p := 0; p < n; p++ {
			if w.family.Parent[p][i] {
				hasParent = 1
			}
		}
		if d > 1 {
			unary.Data()[i*d+1] = 1 - hasParent // root indicator
		}
	}
	binary = tensor.New(n*n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if w.family.Parent[i][j] {
				binary.Data()[(i*n+j)*d] = 1
			}
			if w.family.Parent[j][i] && d > 1 {
				binary.Data()[(i*n+j)*d+1] = 1
			}
			if i == j && d > 2 {
				binary.Data()[(i*n+j)*d+2] = 1
			}
		}
	}
	return unary, binary
}

// Run performs one forward deduction pass over the family universe.
func (w *NLM) Run(e *ops.Engine) error {
	_, _, err := w.Forward(e)
	return err
}

// Forward runs the multi-layer deduction and returns the final unary and
// binary predicate groups.
func (w *NLM) Forward(e *ops.Engine) (*tensor.Tensor, *tensor.Tensor, error) {
	w.Register(e)
	n, d := w.cfg.Objects, w.cfg.Width

	e.SetPhase(trace.Neural)
	unary, binary := w.inputs()
	unary = e.HostToDevice(unary)
	binary = e.HostToDevice(binary)

	for l := 0; l < w.cfg.Depth; l++ {
		// ---- Symbolic wiring: expand / reduce / permute -------------------
		var expandI, expandJ, reduceMax, reduceMin, permuted *tensor.Tensor
		e.SetPhase(trace.Symbolic)
		e.InStage(fmt.Sprintf("wiring_l%d", l), func() {
			// Expansion: unary → binary space, both roles.
			idxI := make([]int, n*n)
			idxJ := make([]int, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					idxI[i*n+j] = i
					idxJ[i*n+j] = j
				}
			}
			expandI = e.Gather(unary, idxI)
			expandJ = e.Gather(unary, idxJ)
			// Permutation: swap the two object roles of the binary group.
			b3 := e.Reshape(binary, n, n, d)
			permuted = e.Reshape(e.Permute(b3, 1, 0, 2), n*n, d)
			// Reduction: the ∃ and ∀ quantifier realizations.
			b3r := e.Reshape(binary, n, n, d)
			reduceMax = e.MaxAxis(b3r, 1)
			reduceMin = e.MinAxis(b3r, 1)
			// Fuzzy-logic composition of the quantifier views over the
			// binary group: the sequential logic-deduction chain of the
			// multi-group architecture (∃/∀ alternation, implication and
			// negation realized as element-wise lattice operations).
			conj := e.Minimum(binary, permuted)
			disj := e.Maximum(binary, permuted)
			impl := e.Clamp(e.AddScalar(e.Add(e.Neg(conj), disj), 1), 0, 1)
			neg := e.AddScalar(e.Neg(impl), 1)
			comp := e.Maximum(e.Minimum(neg, expandI), expandJ)
			// Second deduction hop: compose the derived predicate group
			// with the permuted view (the lifted transitive step).
			hop := e.Minimum(comp, permuted)
			hop = e.Clamp(e.AddScalar(e.Add(hop, binary), -1), 0, 1)
			_ = e.Maximum(hop, conj)
			_ = e.Maximum(reduceMax, reduceMin)
		})

		// ---- Neural MLP blocks --------------------------------------------
		e.SetPhase(trace.Neural)
		uin := e.Concat(1, unary, reduceMax, reduceMin)
		unary = e.Sigmoid(w.unary[l].Forward(e, uin))
		bin := e.Concat(1, binary, permuted, expandI, expandJ)
		binary = e.Sigmoid(w.binary[l].Forward(e, bin))
	}
	binary = e.DeviceToHost(binary)
	return unary, binary, nil
}

// SolveGrandparent derives the grandparent relation exactly with the
// tensorized logic path (a two-hop ∃-composition: GP(a,c) = ∃b P(a,b) ∧
// P(b,c)), demonstrating NLM's lifted-rule generalization independent of
// universe size. Returns the n×n boolean relation.
func (w *NLM) SolveGrandparent(e *ops.Engine) [][]bool {
	n := w.cfg.Objects
	p := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if w.family.Parent[i][j] {
				p.Set(1, i, j)
			}
		}
	}
	e.SetPhase(trace.Symbolic)
	var out [][]bool
	e.InStage("grandparent_deduction", func() {
		// ∃-composition via boolean matrix product and threshold.
		comp := e.MatMul(p, p)
		gp := e.Greater(comp, tensor.Zeros(n, n))
		out = make([][]bool, n)
		for i := 0; i < n; i++ {
			out[i] = make([]bool, n)
			for j := 0; j < n; j++ {
				out[i][j] = gp.At(i, j) > 0
			}
		}
	})
	return out
}

// Family exposes the underlying graph (for verification).
func (w *NLM) Family() *datasets.FamilyGraph { return w.family }
