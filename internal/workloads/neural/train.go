package neural

import (
	"github.com/neurosym/nsbench/internal/autograd"
	"github.com/neurosym/nsbench/internal/raven"
	"github.com/neurosym/nsbench/internal/tensor"
)

// TrainScorer fits the candidate-scoring MLP on generated tasks with
// binary cross-entropy over frozen CNN embeddings, using autograd. It
// mirrors the paper's neural-only comparison point: even with supervision,
// a pure pattern matcher without rule abduction improves only modestly and
// stays far below the neuro-symbolic solvers.
//
// Returns the first and last epoch's mean training loss.
func (w *Baseline) TrainScorer(tasks, epochs int, lr float32) (first, last float32) {
	// Pre-compute embeddings for a fixed training set (the CNN is frozen;
	// only the scorer trains).
	type sample struct {
		in    *tensor.Tensor // 1 × 2*Embed
		label float32
	}
	var samples []sample
	for ti := 0; ti < tasks; ti++ {
		task := raven.Generate(raven.Config{M: w.cfg.M}, w.g)
		e := w.newEngine()
		panels := append(append([]raven.Panel{}, task.Context...), task.Choices...)
		imgs := make([]*tensor.Tensor, len(panels))
		for i, p := range panels {
			imgs[i] = p.Render(w.cfg.ImgSize).Reshape(1, w.cfg.ImgSize, w.cfg.ImgSize)
		}
		emb := w.cnn.Forward(e, e.Stack(imgs...))
		ctx := len(task.Context)
		ctxEmb := tensor.MeanAxis(tensor.Slice(emb, 0, ctx), 0)
		for ci := range task.Choices {
			cand := tensor.Slice(emb, ctx+ci, ctx+ci+1).Reshape(w.cfg.Embed)
			in := tensor.Concat(0, ctxEmb, cand).Reshape(1, 2*w.cfg.Embed)
			label := float32(0)
			if ci == task.AnswerIdx {
				label = 1
			}
			samples = append(samples, sample{in: in, label: label})
		}
	}

	// Trainable copies of the scorer's two linear layers.
	w1, b1, w2, b2 := w.scorerParams()
	v1 := autograd.NewVar(tensor.Transpose(w1), true) // in × hidden
	vb1 := autograd.NewVar(b1.Clone(), true)
	v2 := autograd.NewVar(tensor.Transpose(w2), true) // hidden × 1
	vb2 := autograd.NewVar(b2.Clone(), true)
	opt := &autograd.SGD{Params: []*autograd.Var{v1, vb1, v2, vb2}, LR: lr}

	forward := func(in *tensor.Tensor) *autograd.Var {
		h := autograd.ReLU(autograd.AddRowBias(autograd.MatMul(autograd.Const(in), v1), vb1))
		return autograd.Sigmoid(autograd.AddRowBias(autograd.MatMul(h, v2), vb2))
	}
	for ep := 0; ep < epochs; ep++ {
		var total float32
		for _, s := range samples {
			p := forward(s.in)
			loss := autograd.BCE(p, tensor.FromSlice([]float32{s.label}, 1, 1))
			total += loss.Value.Item()
			loss.Backward()
			opt.Step()
		}
		mean := total / float32(len(samples))
		if ep == 0 {
			first = mean
		}
		last = mean
	}

	// Write the fitted parameters back for inference.
	w.setScorerParams(tensor.Transpose(v1.Value), vb1.Value, tensor.Transpose(v2.Value), vb2.Value)
	return first, last
}
