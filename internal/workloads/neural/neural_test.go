package neural

import (
	"testing"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/raven"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

func TestSolveInRange(t *testing.T) {
	w := New(Config{ImgSize: 16, Embed: 32})
	g := tensor.NewRNG(2)
	task := raven.Generate(raven.Config{}, g)
	e := ops.New()
	got, err := w.Solve(e, task)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 || got >= len(task.Choices) {
		t.Fatalf("choice index = %d", got)
	}
}

func TestAllNeuralTrace(t *testing.T) {
	w := New(Config{ImgSize: 16, Embed: 32})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	tr := e.Trace()
	if tr.PhaseDuration(trace.Symbolic) != 0 {
		t.Fatal("baseline must have no symbolic phase")
	}
	br := tr.CategoryBreakdown(trace.Neural)
	if br[trace.Convolution] == 0 || br[trace.MatMul] == 0 {
		t.Fatal("baseline must run conv and matmul")
	}
}

func TestUntrainedNearChance(t *testing.T) {
	// With random weights the baseline cannot exceed chance by much —
	// the accuracy gap the paper's intro quantifies (53.4% trained ResNet
	// vs 98.8% NVSA; untrained is at chance).
	w := New(Config{ImgSize: 16, Embed: 32, Seed: 9})
	acc := w.SolveAccuracy(24)
	if acc > 0.5 {
		t.Fatalf("untrained baseline accuracy = %v, suspiciously high", acc)
	}
}

func TestNameCategory(t *testing.T) {
	w := New(Config{ImgSize: 16})
	if w.Name() != "NeuralBaseline" || w.Category() != "Neural (baseline)" {
		t.Fatal("identity wrong")
	}
}

func TestTrainScorerReducesLoss(t *testing.T) {
	w := New(Config{ImgSize: 12, Embed: 24, Seed: 11})
	first, last := w.TrainScorer(12, 8, 0.05)
	if last >= first {
		t.Fatalf("scorer training did not reduce loss: %v -> %v", first, last)
	}
	// The trained baseline must remain far below the neuro-symbolic
	// solvers (the paper's motivating accuracy gap): sanity-bound it.
	if acc := w.SolveAccuracy(16); acc > 0.9 {
		t.Fatalf("trained pattern matcher at %v accuracy is implausible", acc)
	}
}
