// Package neural implements the pure-neural RPM baseline the paper (and
// the NVSA evaluation it cites) compares against: a CNN embeds the context
// panels and every candidate, and an MLP scores each candidate against the
// aggregated context embedding. Without symbolic rule abduction, the
// baseline cannot exploit the task's relational structure and stays near
// chance on held-out rule combinations — the accuracy gap that motivates
// neuro-symbolic designs.
package neural

import (
	"github.com/neurosym/nsbench/internal/nn"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/raven"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

// Config parameterizes the baseline.
type Config struct {
	M       int   // RPM grid dimension; default 3
	ImgSize int   // rendered panel resolution; default 32
	Embed   int   // embedding width; default 128
	Seed    int64 // default 1

	// Engine selects the execution backend for engines the workload
	// builds itself (training and accuracy loops).
	Engine ops.Config
}

func (c *Config) defaults() {
	if c.M == 0 {
		c.M = 3
	}
	if c.ImgSize == 0 {
		c.ImgSize = 32
	}
	if c.Embed == 0 {
		c.Embed = 128
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Baseline is the workload instance.
type Baseline struct {
	cfg       Config
	newEngine func() *ops.Engine
	release   func() // tears down the shared engine backend
	g         *tensor.RNG
	cnn       *nn.CNN
	scorer    *nn.Sequential
}

// New constructs the baseline.
func New(cfg Config) *Baseline {
	cfg.defaults()
	g := tensor.NewRNG(cfg.Seed)
	newEngine, release := cfg.Engine.Factory()
	return &Baseline{
		cfg:       cfg,
		newEngine: newEngine,
		release:   release,
		g:         g,
		cnn:       nn.NewCNN(g, "baseline.enc", nn.CNNConfig{InChannels: 1, InSize: cfg.ImgSize, Channels: []int{8, 16, 32}, Residual: true, OutDim: cfg.Embed}),
		scorer:    nn.NewMLP(g, "baseline.scorer", 2*cfg.Embed, cfg.Embed, 1),
	}
}

// Name implements the workload identity.
func (w *Baseline) Name() string { return "NeuralBaseline" }

// Close releases the workload's shared engine backend (worker pool).
func (w *Baseline) Close() { w.release() }

// Category identifies the baseline.
func (w *Baseline) Category() string { return "Neural (baseline)" }

// Register records the model's persistent parameters.
func (w *Baseline) Register(e *ops.Engine) {
	w.cnn.Register(e)
	w.scorer.Register(e)
}

// Run solves one generated task (all-neural; no symbolic phase).
func (w *Baseline) Run(e *ops.Engine) error { return w.RunBatch(e, 1) }

// RunBatch solves one generated task for n batch replicas in a single
// engine pass: the CNN embeds all n×panels images as one batch, and the
// scorer ranks all n candidate rows at once.
func (w *Baseline) RunBatch(e *ops.Engine, n int) error {
	task := raven.Generate(raven.Config{M: w.cfg.M}, w.g)
	_, err := w.SolveBatch(e, task, n)
	return err
}

// Solve embeds the panels and scores every candidate, returning the argmax.
func (w *Baseline) Solve(e *ops.Engine, task raven.Task) (int, error) {
	return w.SolveBatch(e, task, 1)
}

// SolveBatch solves the task with a leading batch dimension of n replicas
// threaded through every tensor: panel embeddings are (n·panels, Embed),
// context aggregation and candidate scoring are (n, ...) shaped, and the
// answer is read from item 0. Every event records exactly n× the solo
// cost, which is what lets CharacterizeBatch split the trace per item.
func (w *Baseline) SolveBatch(e *ops.Engine, task raven.Task, n int) (int, error) {
	w.Register(e)
	e.SetPhase(trace.Neural)
	panels := append(append([]raven.Panel{}, task.Context...), task.Choices...)
	rendered := make([]*tensor.Tensor, len(panels))
	for i, p := range panels {
		rendered[i] = p.Render(w.cfg.ImgSize).Reshape(1, w.cfg.ImgSize, w.cfg.ImgSize)
	}
	imgs := make([]*tensor.Tensor, 0, n*len(panels))
	for i := 0; i < n; i++ {
		imgs = append(imgs, rendered...)
	}
	batch := e.HostToDevice(e.Stack(imgs...))
	emb := w.cnn.ForwardBatch(e, batch, n) // (n·panels, Embed)
	// The reshape's fixed cost does not scale with tensor size, so it is
	// recorded once per item to keep the trace uniformly n×.
	emb3 := e.ReshapeBatch(emb, n, n, len(panels), w.cfg.Embed)

	ctx := len(task.Context)
	ctxEmb := e.MeanAxis(e.SliceAxis(emb3, 1, 0, ctx), 1) // (n, Embed)
	scores := tensor.New(len(task.Choices))
	for ci := range task.Choices {
		cand := e.SliceAxis(emb3, 1, ctx+ci, ctx+ci+1).Reshape(n, w.cfg.Embed)
		in := e.Concat(1, ctxEmb, cand) // (n, 2·Embed)
		s := w.scorer.ForwardBatch(e, in, n)
		scores.Data()[ci] = s.At(0, 0)
	}
	return tensor.ArgMax(scores), nil
}

// scorerParams exposes the scoring MLP's two linear layers.
func (w *Baseline) scorerParams() (w1, b1, w2, b2 *tensor.Tensor) {
	l1 := w.scorer.Layers[0].(*nn.Linear)
	l2 := w.scorer.Layers[2].(*nn.Linear)
	return l1.W, l1.B, l2.W, l2.B
}

// setScorerParams installs trained scorer parameters for inference.
func (w *Baseline) setScorerParams(w1, b1, w2, b2 *tensor.Tensor) {
	w.scorer.Layers[0].(*nn.Linear).SetWeights(w1, b1)
	w.scorer.Layers[2].(*nn.Linear).SetWeights(w2, b2)
}

// SolveAccuracy runs n fresh tasks and returns the fraction correct
// (expected near chance for untrained weights).
func (w *Baseline) SolveAccuracy(n int) float64 {
	correct := 0
	for i := 0; i < n; i++ {
		task := raven.Generate(raven.Config{M: w.cfg.M}, w.g)
		e := w.newEngine()
		if got, err := w.Solve(e, task); err == nil && got == task.AnswerIdx {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
