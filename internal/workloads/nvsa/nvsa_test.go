package nvsa

import (
	"strings"
	"testing"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/raven"
	"github.com/neurosym/nsbench/internal/trace"
)

func TestSolveCorrectness(t *testing.T) {
	w := New(Config{Dim: 256, ImgSize: 16, Noise: 0.005, Seed: 7})
	acc := w.SolveAccuracy(20)
	if acc < 0.9 {
		t.Fatalf("NVSA accuracy = %v, want >= 0.9 at low noise", acc)
	}
}

func TestRunProducesBothPhases(t *testing.T) {
	w := New(Config{}) // default configuration, the one the figures use
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	tr := e.Trace()
	if tr.PhaseDuration(trace.Neural) == 0 || tr.PhaseDuration(trace.Symbolic) == 0 {
		t.Fatal("both phases must record time")
	}
	// Symbolic must dominate (the paper's 92.1% observation).
	if share := tr.PhaseShare(trace.Symbolic); share < 0.5 {
		t.Fatalf("symbolic share = %v, want > 0.5", share)
	}
}

func TestStagesPresent(t *testing.T) {
	w := New(Config{Dim: 128, ImgSize: 16})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	stages := map[string]bool{}
	for _, s := range e.Trace().ByStage() {
		stages[s.Stage] = true
	}
	for _, want := range []string{"pmf_to_vsa:number", "prob:color", "execute:type", "vsa_to_pmf"} {
		if !stages[want] {
			t.Fatalf("stage %q missing; have %v", want, stages)
		}
	}
}

func TestSymbolicSparsityHigh(t *testing.T) {
	w := New(Config{Dim: 128, ImgSize: 16, Noise: 0.01})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	// The PMF-to-VSA joint expansions must exhibit the Fig. 5 sparsity.
	for _, s := range e.Trace().ByStage() {
		if strings.HasPrefix(s.Stage, "pmf_to_vsa:") && s.Stage != "pmf_to_vsa:number" {
			if s.Sparsity < 0.8 {
				t.Fatalf("stage %s sparsity = %v, want high", s.Stage, s.Sparsity)
			}
		}
	}
}

func TestCodebookRegistered(t *testing.T) {
	w := New(Config{Dim: 128, ImgSize: 16})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	kinds := e.Trace().ParamBytesByKind()
	if kinds["codebook"] == 0 || kinds["weight"] == 0 {
		t.Fatalf("params missing: %v", kinds)
	}
}

func TestDataMovementRecorded(t *testing.T) {
	w := New(Config{Dim: 128, ImgSize: 16})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	br := e.Trace().CategoryBreakdown(trace.Neural)
	if br[trace.DataMovement] == 0 {
		t.Fatal("host↔device transfers missing from the neural phase")
	}
	if br[trace.Convolution] == 0 || br[trace.MatMul] == 0 {
		t.Fatal("neural phase must contain conv and matmul")
	}
}

func TestNameAndCategory(t *testing.T) {
	w := New(Config{})
	if w.Name() != "NVSA" || w.Category() != "Neuro|Symbolic" {
		t.Fatal("identity wrong")
	}
}

func TestSolve2x2(t *testing.T) {
	w := New(Config{M: 2, Dim: 128, ImgSize: 16, Noise: 0.005, Seed: 3})
	e := ops.New()
	task := raven.Generate(raven.Config{M: 2, NumChoices: 4}, w.g)
	got, err := w.Solve(e, task)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 || got >= 4 {
		t.Fatalf("choice index out of range: %d", got)
	}
}

func TestCrossPhaseDependency(t *testing.T) {
	w := New(Config{Dim: 128, ImgSize: 16})
	e := ops.New()
	if err := w.Run(e); err != nil {
		t.Fatal(err)
	}
	g := trace.BuildGraph(e.Trace())
	n2s, _ := g.CrossPhaseEdges()
	if n2s == 0 {
		t.Fatal("symbolic phase must consume neural outputs (Fig. 4 pattern)")
	}
}
