// Package nvsa implements the Neuro-Vector-Symbolic Architecture workload:
// a convolutional perception frontend with a holographic codebook, and a
// vector-symbolic probabilistic-abduction backend solving Raven's
// Progressive Matrices (Hersche et al., Nature MI 2023; workload W3 of the
// characterization study).
//
// Structure per inference:
//
//	neural:   render → H2D → CNN features → codebook projection
//	symbolic: PMF→VSA transform → probability computation → rule detection
//	          → rule execution → VSA→PMF transform → answer selection
//
// The symbolic stages carry the stage labels the Fig. 5 sparsity analysis
// reads ("pmf_to_vsa:<attr>", "prob:<attr>", "vsa_to_pmf:<attr>").
package nvsa

import (
	"fmt"

	"github.com/neurosym/nsbench/internal/nn"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/raven"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
	"github.com/neurosym/nsbench/internal/vsa"
	"github.com/neurosym/nsbench/internal/workloads/abduction"
)

// Config parameterizes the workload.
type Config struct {
	M       int     // RPM grid dimension (2 or 3); default 3
	ImgSize int     // rendered panel resolution; default 32
	Dim     int     // hypervector dimensionality; default 4096
	Noise   float64 // perception label noise; default 0.01
	// SparsityEps is the magnitude below which an element counts as zero
	// in the Fig. 5 sparsity measurement; default 0.01 (the calibrated
	// perception noise floor).
	SparsityEps float64
	Seed        int64 // task + weight seed; default 1

	// Engine selects the execution backend for engines the workload
	// builds itself (accuracy loops).
	Engine ops.Config
}

func (c *Config) defaults() {
	if c.M == 0 {
		c.M = 3
	}
	if c.ImgSize == 0 {
		c.ImgSize = 32
	}
	if c.Dim == 0 {
		c.Dim = 4096
	}
	if c.Noise == 0 {
		c.Noise = 0.01
	}
	if c.SparsityEps == 0 {
		c.SparsityEps = 0.01
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// NVSA is the workload instance.
type NVSA struct {
	cfg       Config
	newEngine func() *ops.Engine
	release   func() // tears down the shared engine backend
	g         *tensor.RNG
	cnn       *nn.CNN
	space     *vsa.Space
	codebooks map[raven.Attribute]*vsa.Codebook
	// jointCB holds one quasi-orthogonal hypervector per attribute
	// combination (number × type × size × color). Its size is what makes
	// the NVSA codebook dominate the model's memory footprint (Fig. 3b),
	// and cleanup queries against it dominate the symbolic runtime.
	jointCB *tensor.Tensor
	attrs   []raven.Attribute
}

// New constructs the workload with deterministic weights and codebooks.
func New(cfg Config) *NVSA {
	cfg.defaults()
	g := tensor.NewRNG(cfg.Seed)
	newEngine, release := cfg.Engine.Factory()
	w := &NVSA{
		cfg:       cfg,
		newEngine: newEngine,
		release:   release,
		g:         g,
		cnn:       nn.NewCNN(g, "nvsa.frontend", nn.CNNConfig{InChannels: 1, InSize: cfg.ImgSize, Channels: []int{8, 16}, Residual: true, OutDim: cfg.Dim}),
		space:     vsa.NewSpace(vsa.HRR, cfg.Dim, cfg.Seed+1),
		attrs:     []raven.Attribute{raven.Number, raven.Type, raven.Size, raven.Color},
	}
	w.codebooks = make(map[raven.Attribute]*vsa.Codebook, len(w.attrs))
	combos := 1
	for _, a := range w.attrs {
		names := make([]string, raven.Levels(a))
		for i := range names {
			names[i] = fmt.Sprintf("%s_%d", a, i)
		}
		w.codebooks[a] = vsa.NewCodebook(w.space, names)
		combos *= raven.Levels(a)
	}
	w.jointCB = g.Normal(0, float32(1)/float32(cfg.Dim), combos, cfg.Dim)
	return w
}

// Name implements the workload identity.
func (w *NVSA) Name() string { return "NVSA" }

// Close releases the workload's shared engine backend (worker pool).
func (w *NVSA) Close() { w.release() }

// Category returns the taxonomy category of Table III.
func (w *NVSA) Category() string { return "Neuro|Symbolic" }

// Register records the model's persistent parameters.
func (w *NVSA) Register(e *ops.Engine) {
	w.cnn.Register(e)
	e.InPhase(trace.Symbolic, func() {
		for _, a := range w.attrs {
			e.RegisterParamBytes(fmt.Sprintf("codebook.%s", a), "codebook", w.codebooks[a].Bytes())
		}
		e.RegisterParam("codebook.joint", "codebook", w.jointCB)
	})
}

// Run generates one RPM task and solves it end-to-end.
func (w *NVSA) Run(e *ops.Engine) error { return w.RunBatch(e, 1) }

// RunBatch generates one RPM task and solves it for n batch replicas in a
// single engine pass.
func (w *NVSA) RunBatch(e *ops.Engine, n int) error {
	task := raven.Generate(raven.Config{M: w.cfg.M}, w.g)
	_, err := w.SolveBatch(e, task, n)
	return err
}

// Solve runs the full pipeline on a task and returns the chosen candidate
// index.
func (w *NVSA) Solve(e *ops.Engine, task raven.Task) (int, error) {
	return w.SolveBatch(e, task, 1)
}

// SolveBatch solves the task for n batch replicas in one pass. The neural
// frontend is materialized: the CNN and codebook projection run over all
// n×panels images as one batch, so their events record n× the solo cost
// by size. The symbolic backend operates on solo-shaped per-panel PMFs
// and hypervectors, so it runs once under replica amplification — the
// actual saving batching buys, since the paper's symbolic kernels are the
// ones too small to fill the hardware — with every recorded event scaled
// to n× for exact per-item trace splitting.
func (w *NVSA) SolveBatch(e *ops.Engine, task raven.Task, n int) (int, error) {
	w.Register(e)
	panels := append(append([]raven.Panel{}, task.Context...), task.Choices...)

	// ---- Neural frontend -------------------------------------------------
	e.SetPhase(trace.Neural)
	rendered := make([]*tensor.Tensor, len(panels))
	for i, p := range panels {
		rendered[i] = p.Render(w.cfg.ImgSize).Reshape(1, w.cfg.ImgSize, w.cfg.ImgSize)
	}
	imgs := make([]*tensor.Tensor, 0, n*len(panels))
	for i := 0; i < n; i++ {
		imgs = append(imgs, rendered...)
	}
	batch := e.Stack(imgs...)
	batch = e.HostToDevice(batch)
	features := w.cnn.ForwardBatch(e, batch, n) // (n·panels, Dim)
	// Transduce features into the vector-symbolic space by projecting onto
	// the concatenated codebooks (quasi-orthogonal readout). The codebook
	// transpose is shared across batch items (its size does not scale with
	// n), so it is amplified explicitly to keep the trace uniformly n×.
	allCodes := w.codebooks[raven.Number].Vectors
	for _, a := range w.attrs[1:] {
		allCodes = tensor.Concat(0, allCodes, w.codebooks[a].Vectors)
	}
	var codesT *tensor.Tensor
	e.InReplicas(n, func() { codesT = e.Transpose(allCodes) })
	queries := e.MatMulBatch(features, codesT, n)
	_ = e.Softmax(queries)

	// PMFs move to the symbolic engine (device→host on the measured system).
	hostQ := e.DeviceToHost(queries)

	// ---- Symbolic backend -------------------------------------------------
	// One solo-shaped pass stands for all n identical items.
	e.SetPhase(trace.Symbolic)
	e.SetReplicas(n)
	defer e.SetReplicas(1)
	// Perception readout: PMFs over attribute levels per panel, produced
	// from the neural output (see DESIGN.md — perception accuracy is
	// emulated; the compute above is real). Recording the readout as an
	// event ties the symbolic backend to the neural frontend in the
	// dataflow graph, the Fig. 4 critical-path structure.
	pmfs := make([]map[raven.Attribute]*tensor.Tensor, len(panels))
	e.Logic("PerceptionReadout", int64(len(panels)*30), int64(len(panels)*30*4), []*tensor.Tensor{hostQ}, func() []*tensor.Tensor {
		var outs []*tensor.Tensor
		for i, p := range panels {
			pmfs[i] = raven.PerceivePMF(p, w.cfg.Noise, w.g)
			for _, a := range w.attrs {
				outs = append(outs, pmfs[i][a])
			}
		}
		return outs
	})
	e.MeasureSparsity(true)
	e.SetSparsityEps(float32(w.cfg.SparsityEps)) // noise floor counts as zero
	defer e.MeasureSparsity(false)

	m := task.M
	ctx := len(task.Context)
	chosen := -1

	// Per-attribute abduction and execution. panelVec accumulates each
	// panel's full holographic scene vector (attribute vectors bound
	// together), later cleaned up against the joint codebook.
	panelVec := make([]*tensor.Tensor, len(panels))
	predicted := make(map[raven.Attribute]*tensor.Tensor, len(w.attrs))
	for _, a := range w.attrs {
		// Stage 1a: PMF → VSA probability expansion. The exhaustive joint
		// probability tensors are the high-sparsity data of Fig. 5; this
		// stage carries only those sparse expansions.
		rows := make([][]*tensor.Tensor, m)
		e.InStage("pmf_to_vsa:"+a.String(), func() {
			for r := 0; r < m; r++ {
				for c := 0; c < m; c++ {
					pi := r*m + c
					if pi >= ctx { // the missing panel
						continue
					}
					p := pmfs[pi][a]
					rows[r] = append(rows[r], p)
					if a == raven.Number {
						// Diagonal of the self-joint: the number marginal's
						// probability expansion.
						_ = e.Mul(p, p)
					} else {
						_ = abduction.Joint(e, pmfs[pi][raven.Number], p)
					}
				}
			}
		})

		// Stage 1b: holographic scene encoding — PMF-weighted codebook
		// superpositions, one dense hypervector per visible panel.
		scene := make([][]*tensor.Tensor, m)
		e.InStage("codebook_encode:"+a.String(), func() {
			cb := w.codebooks[a]
			for pi := range panels {
				p := pmfs[pi][a]
				mixed := e.MatMul(p.Reshape(1, p.Dim(0)), cb.Vectors)
				v := e.Normalize(mixed.Reshape(w.cfg.Dim))
				if pi < ctx {
					scene[pi/m] = append(scene[pi/m], v)
				}
				if panelVec[pi] == nil {
					panelVec[pi] = v
				} else {
					panelVec[pi] = e.CircularConv(panelVec[pi], v)
				}
			}
		})

		// Stage 2+3: probability computation and rule detection. The rule
		// probabilities are computed exactly in the PMF domain; alongside,
		// every candidate rule is tested algebraically in the holographic
		// space (position-permuted circular-convolution bindings compared
		// against the row context), NVSA's substitution of exhaustive
		// probability computation — the dominant symbolic cost.
		var best abduction.CandidateRule
		e.InStage("prob:"+a.String(), func() {
			scores := abduction.Abduce(e, a, m, rows)
			for range abduction.Candidates(a, m) {
				for r := 0; r < m-1; r++ {
					row := scene[r]
					q := row[0]
					for k, s := range row[1:] {
						q = e.CircularConv(q, e.Roll(s, k+1))
					}
					_ = e.Dot(q, row[len(row)-1])
					// Probability readout of the hypothesis: the bound row
					// context is cleaned up against the joint codebook —
					// NVSA's algebraic substitution for exhaustive
					// probability computation, and the component whose cost
					// grows with the rule hypothesis space (Fig. 2c).
					_ = e.MatVec(w.jointCB, q)
				}
			}
			e.Logic("RuleDetect:"+a.String(), int64(len(scores)), int64(len(scores))*4, nil, func() []*tensor.Tensor {
				best, _ = abduction.BestRule(a, m, scores)
				return nil
			})
		})

		// Stage 4: rule execution — the predicted panel in both domains.
		e.InStage("execute:"+a.String(), func() {
			predicted[a] = abduction.ExecuteWithContext(e, best, rows)
			// Holographic execution: bind the last row's scene vectors into
			// the predicted panel vector.
			last := scene[m-1]
			q := last[0]
			for k, s := range last[1:] {
				q = e.CircularConv(q, e.Roll(s, k+1))
			}
			_ = e.Normalize(q)
		})
	}

	// Stage 5: probabilistic scene inference — clean every panel's bound
	// scene vector up against the joint codebook of all attribute
	// combinations. These large matrix-vector cleanup queries are the
	// memory-bound streaming workload the roofline analysis attributes to
	// NVSA's symbolic phase.
	e.InStage("scene_inference", func() {
		for pi := range panels {
			probe := e.MatVec(w.jointCB, panelVec[pi])
			_ = e.Softmax(probe)
		}
	})

	// Stage 6: VSA → PMF and answer selection: compare the predicted panel
	// against every candidate in the vector-symbolic space.
	scores := tensor.New(len(task.Choices))
	e.InStage("vsa_to_pmf", func() {
		for ci := range task.Choices {
			choicePMFs := pmfs[ctx+ci]
			// Transform the candidate back through the joint codebook
			// (VSA → PMF): the cleanup readout of the candidate's scene.
			probe := e.MatVec(w.jointCB, panelVec[ctx+ci])
			_ = e.Softmax(probe)
			total := tensor.Scalar(1)
			for _, a := range w.attrs {
				dot := e.Dot(predicted[a], choicePMFs[a])
				total = e.Mul(total, dot)
			}
			scores.Data()[ci] = total.Item()
		}
		e.Logic("AnswerSelect", int64(len(task.Choices)), int64(len(task.Choices))*4, []*tensor.Tensor{scores}, func() []*tensor.Tensor {
			chosen = tensor.ArgMax(scores)
			return nil
		})
	})
	return chosen, nil
}

// SolveAccuracy runs n fresh tasks and returns the fraction answered
// correctly; each task uses its own engine so traces stay per-inference.
func (w *NVSA) SolveAccuracy(n int) float64 {
	correct := 0
	for i := 0; i < n; i++ {
		task := raven.Generate(raven.Config{M: w.cfg.M}, w.g)
		e := w.newEngine()
		got, err := w.Solve(e, task)
		if err == nil && got == task.AnswerIdx {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
