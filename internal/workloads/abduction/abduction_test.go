package abduction

import (
	"testing"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/raven"
	"github.com/neurosym/nsbench/internal/tensor"
)

// onehot builds a PMF with all mass at v over lv levels.
func onehot(v, lv int) *tensor.Tensor { return tensor.OneHot(v, lv) }

func TestShiftPMF(t *testing.T) {
	e := ops.New()
	p := tensor.FromSlice([]float32{0.1, 0.7, 0.2}, 3)
	s := ShiftPMF(e, p, 1) // out[v] = p[v+1]
	if s.At(0) != 0.7 || s.At(1) != 0.2 || s.At(2) != 0 {
		t.Fatalf("ShiftPMF(+1) = %v", s.Data())
	}
	s2 := ShiftPMF(e, p, -1)
	if s2.At(0) != 0 || s2.At(1) != 0.1 || s2.At(2) != 0.7 {
		t.Fatalf("ShiftPMF(-1) = %v", s2.Data())
	}
}

func TestJoint(t *testing.T) {
	e := ops.New()
	a := tensor.FromSlice([]float32{0.5, 0.5}, 2)
	b := tensor.FromSlice([]float32{1, 0, 0}, 3)
	j := Joint(e, a, b)
	if j.Size() != 6 || j.At(0) != 0.5 || j.At(3) != 0.5 || j.At(1) != 0 {
		t.Fatalf("Joint = %v", j.Data())
	}
	if s := j.Sum(); s < 0.999 || s > 1.001 {
		t.Fatalf("joint mass = %v", s)
	}
}

func TestRowProbConstant(t *testing.T) {
	e := ops.New()
	row := []*tensor.Tensor{onehot(2, 5), onehot(2, 5), onehot(2, 5)}
	p := RowProb(e, CandidateRule{Type: raven.Constant}, row)
	if p.Item() != 1 {
		t.Fatalf("constant prob = %v", p.Item())
	}
	bad := []*tensor.Tensor{onehot(2, 5), onehot(3, 5), onehot(2, 5)}
	if RowProb(e, CandidateRule{Type: raven.Constant}, bad).Item() != 0 {
		t.Fatal("non-constant row scored as constant")
	}
}

func TestRowProbProgression(t *testing.T) {
	e := ops.New()
	row := []*tensor.Tensor{onehot(1, 6), onehot(3, 6), onehot(5, 6)}
	p := RowProb(e, CandidateRule{Type: raven.Progression, Delta: 2}, row)
	if p.Item() != 1 {
		t.Fatalf("progression prob = %v", p.Item())
	}
	if RowProb(e, CandidateRule{Type: raven.Progression, Delta: 1}, row).Item() != 0 {
		t.Fatal("wrong delta scored nonzero")
	}
}

func TestRowProbArithmetic(t *testing.T) {
	e := ops.New()
	// Counts: 2 + 3 = 5 → bins 1, 2, 4 with lv = 9.
	row := []*tensor.Tensor{onehot(1, 9), onehot(2, 9), onehot(4, 9)}
	p := RowProb(e, CandidateRule{Type: raven.Arithmetic, Delta: 1}, row)
	if p.Item() != 1 {
		t.Fatalf("arithmetic(+) prob = %v", p.Item())
	}
	// Counts: 5 - 3 = 2 → bins 4, 2, 1.
	row2 := []*tensor.Tensor{onehot(4, 9), onehot(2, 9), onehot(1, 9)}
	if RowProb(e, CandidateRule{Type: raven.Arithmetic, Delta: -1}, row2).Item() != 1 {
		t.Fatal("arithmetic(-) prob wrong")
	}
}

func TestRowProbDistributeThree(t *testing.T) {
	e := ops.New()
	distinct := []*tensor.Tensor{onehot(0, 5), onehot(2, 5), onehot(4, 5)}
	p := RowProb(e, CandidateRule{Type: raven.DistributeThree}, distinct)
	if p.Item() < 0.999 {
		t.Fatalf("distinct-row D3 prob = %v", p.Item())
	}
	repeated := []*tensor.Tensor{onehot(1, 5), onehot(1, 5), onehot(4, 5)}
	if RowProb(e, CandidateRule{Type: raven.DistributeThree}, repeated).Item() > 1e-5 {
		t.Fatal("repeated-value row scored as distribute-three")
	}
}

func TestAbduceAndBestRule(t *testing.T) {
	e := ops.New()
	rows := [][]*tensor.Tensor{
		{onehot(1, 6), onehot(2, 6), onehot(3, 6)},
		{onehot(0, 6), onehot(1, 6), onehot(2, 6)},
		{onehot(2, 6), onehot(3, 6)}, // last row, incomplete
	}
	scores := Abduce(e, raven.Size, 3, rows)
	best, s := BestRule(raven.Size, 3, scores)
	if best.Type != raven.Progression || best.Delta != 1 {
		t.Fatalf("best rule = %v (score %v)", best, s)
	}
}

func TestExecuteConstantAndProgression(t *testing.T) {
	e := ops.New()
	last := []*tensor.Tensor{onehot(3, 6), onehot(3, 6)}
	pred := Execute(e, CandidateRule{Type: raven.Constant}, last)
	if tensor.ArgMax(pred) != 3 {
		t.Fatalf("constant execution mode = %d", tensor.ArgMax(pred))
	}
	lastP := []*tensor.Tensor{onehot(1, 6), onehot(2, 6)}
	predP := Execute(e, CandidateRule{Type: raven.Progression, Delta: 1}, lastP)
	if tensor.ArgMax(predP) != 3 {
		t.Fatalf("progression execution mode = %d", tensor.ArgMax(predP))
	}
}

func TestExecuteArithmetic(t *testing.T) {
	e := ops.New()
	// Counts 2 + 3 → 5: bins 1, 2 → 4.
	last := []*tensor.Tensor{onehot(1, 9), onehot(2, 9)}
	pred := Execute(e, CandidateRule{Type: raven.Arithmetic, Delta: 1}, last)
	if tensor.ArgMax(pred) != 4 {
		t.Fatalf("arithmetic execution mode = %d", tensor.ArgMax(pred))
	}
}

func TestExecuteWithContextDistributeThree(t *testing.T) {
	e := ops.New()
	rows := [][]*tensor.Tensor{
		{onehot(0, 5), onehot(2, 5), onehot(4, 5)},
		{onehot(2, 5), onehot(4, 5), onehot(0, 5)},
		{onehot(4, 5), onehot(0, 5)}, // missing value must be 2
	}
	pred := ExecuteWithContext(e, CandidateRule{Type: raven.DistributeThree}, rows)
	if tensor.ArgMax(pred) != 2 {
		t.Fatalf("D3 completion mode = %d (%v)", tensor.ArgMax(pred), pred.Data())
	}
}

func TestCandidatesSpace(t *testing.T) {
	cs := Candidates(raven.Number, 3)
	hasArith, hasD3 := false, false
	for _, c := range cs {
		if c.Type == raven.Arithmetic {
			hasArith = true
		}
		if c.Type == raven.DistributeThree {
			hasD3 = true
		}
	}
	if !hasArith || !hasD3 {
		t.Fatalf("number candidates incomplete: %v", cs)
	}
	cs2 := Candidates(raven.Color, 2)
	for _, c := range cs2 {
		if c.Type == raven.Arithmetic || c.Type == raven.DistributeThree {
			t.Fatalf("2x2 candidates must exclude %v", c)
		}
	}
	if (CandidateRule{Type: raven.Progression, Delta: 2}).String() != "progression(+2)" {
		t.Fatal("candidate string wrong")
	}
}

func TestAbduceNoisyStillCorrect(t *testing.T) {
	e := ops.New()
	g := tensor.NewRNG(9)
	noisy := func(v, lv int) *tensor.Tensor {
		p := tensor.New(lv)
		for i := 0; i < lv; i++ {
			p.Data()[i] = 0.02 / float32(lv)
		}
		p.Data()[v] += 0.98
		return p
	}
	_ = g
	rows := [][]*tensor.Tensor{
		{noisy(1, 6), noisy(2, 6), noisy(3, 6)},
		{noisy(2, 6), noisy(3, 6), noisy(4, 6)},
		{noisy(0, 6), noisy(1, 6)},
	}
	scores := Abduce(e, raven.Size, 3, rows)
	best, _ := BestRule(raven.Size, 3, scores)
	if best.Type != raven.Progression || best.Delta != 1 {
		t.Fatalf("noisy abduction picked %v", best)
	}
}

// TestPropAbduceRecoversGeneratedRules is the end-to-end soundness property
// of the abduction engine: for every rule the RAVEN generator can emit, the
// engine must identify that rule from the task's noiseless PMFs and its
// execution must predict exactly the generated answer's attribute value.
func TestPropAbduceRecoversGeneratedRules(t *testing.T) {
	g := tensor.NewRNG(99)
	e := ops.New()
	attrs := []raven.Attribute{raven.Number, raven.Type, raven.Size, raven.Color}
	for trial := 0; trial < 60; trial++ {
		task := raven.Generate(raven.Config{M: 3}, g)
		full := append(append([]raven.Panel{}, task.Context...), task.Answer())
		for ai, a := range attrs {
			rows := make([][]*tensor.Tensor, 3)
			for r := 0; r < 3; r++ {
				for c := 0; c < 3; c++ {
					if r == 2 && c == 2 {
						continue
					}
					pmf := raven.PerceivePMF(full[r*3+c], 0, nil)
					rows[r] = append(rows[r], pmf[a])
				}
			}
			scores := Abduce(e, a, 3, rows)
			best, _ := BestRule(a, 3, scores)
			pred := ExecuteWithContext(e, best, rows)
			want := task.Answer().AttrValue(a)
			if a == raven.Number {
				want--
			}
			if got := tensor.ArgMax(pred); got != want {
				t.Fatalf("trial %d attr %v (true rule %v, detected %v): predicted %d, want %d",
					trial, a, task.Rules[ai], best, got, want)
			}
		}
	}
}
