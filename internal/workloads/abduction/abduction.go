// Package abduction implements probabilistic rule abduction and execution
// over attribute probability mass functions — the symbolic reasoning core
// shared by the NVSA and PrAE workloads.
//
// Given per-panel PMFs over an attribute's discrete levels, the engine
// computes, for every candidate rule in the RAVEN grammar, the probability
// that the visible rows follow that rule (abduction); it then executes the
// best rule on the last row's visible panels to predict the missing
// panel's PMF (execution). All tensor work runs on the instrumented ops
// engine so it appears in the symbolic-phase trace.
package abduction

import (
	"fmt"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/raven"
	"github.com/neurosym/nsbench/internal/tensor"
)

// CandidateRule is one rule hypothesis over an attribute.
type CandidateRule struct {
	Type  raven.RuleType
	Delta int // progression step or arithmetic sign
}

// Candidates enumerates the hypothesis space for an attribute on an m×m task.
func Candidates(a raven.Attribute, m int) []CandidateRule {
	cs := []CandidateRule{{Type: raven.Constant}}
	for _, d := range []int{-2, -1, 1, 2} {
		cs = append(cs, CandidateRule{Type: raven.Progression, Delta: d})
	}
	if m == 3 {
		if a == raven.Number {
			cs = append(cs, CandidateRule{Type: raven.Arithmetic, Delta: 1},
				CandidateRule{Type: raven.Arithmetic, Delta: -1})
		}
		cs = append(cs, CandidateRule{Type: raven.DistributeThree})
	}
	return cs
}

// String renders the candidate.
func (c CandidateRule) String() string {
	if c.Type == raven.Progression || c.Type == raven.Arithmetic {
		return fmt.Sprintf("%s(%+d)", c.Type, c.Delta)
	}
	return c.Type.String()
}

// ShiftPMF returns the PMF shifted by k levels with zero fill (not
// circular): out[v] = p[v+k] when in range. The shift is recorded as a
// gather (irregular data transformation).
func ShiftPMF(e *ops.Engine, p *tensor.Tensor, k int) *tensor.Tensor {
	lv := p.Dim(0)
	// Append a zero slot to source rows so out-of-range indices read zero.
	padded := e.Concat(0, p, tensor.Zeros(1))
	idx := make([]int, lv)
	for v := 0; v < lv; v++ {
		src := v + k
		if src < 0 || src >= lv {
			src = lv // the zero slot
		}
		idx[v] = src
	}
	return e.Gather(padded.Reshape(lv+1, 1), idx).Reshape(lv)
}

// Joint returns the joint PMF of two independent attribute PMFs as a
// flattened len(a)*len(b) tensor, computed with explicit expansion and an
// element-wise product (the exhaustive probability representation whose
// extreme sparsity Fig. 5 characterizes).
func Joint(e *ops.Engine, a, b *tensor.Tensor) *tensor.Tensor {
	la, lb := a.Dim(0), b.Dim(0)
	// Expand a to [la*lb] by repeating each element lb times, and b by
	// tiling the whole vector la times.
	idxA := make([]int, la*lb)
	idxB := make([]int, la*lb)
	for i := 0; i < la; i++ {
		for j := 0; j < lb; j++ {
			idxA[i*lb+j] = i
			idxB[i*lb+j] = j
		}
	}
	ea := e.Gather(a.Reshape(la, 1), idxA).Reshape(la * lb)
	eb := e.Gather(b.Reshape(lb, 1), idxB).Reshape(la * lb)
	return e.Mul(ea, eb)
}

// RowProb computes P(rule | row PMFs) for one complete row of three panels
// (or two for m=2 progressions/constants).
func RowProb(e *ops.Engine, c CandidateRule, row []*tensor.Tensor) *tensor.Tensor {
	switch c.Type {
	case raven.Constant:
		acc := row[0]
		for _, p := range row[1:] {
			acc = e.Mul(acc, p)
		}
		return e.SumAxis(acc.Reshape(1, acc.Dim(0)), 1).Reshape()
	case raven.Progression:
		// P = Σ_v p1[v]·p2[v+Δ]·p3[v+2Δ]: align later panels by shifting
		// them back onto the first panel's value axis.
		acc := row[0]
		for i, p := range row[1:] {
			acc = e.Mul(acc, ShiftPMF(e, p, c.Delta*(i+1)))
		}
		return e.SumAxis(acc.Reshape(1, acc.Dim(0)), 1).Reshape()
	case raven.Arithmetic:
		if len(row) != 3 {
			return tensor.Scalar(0)
		}
		// P = Σ_{a,b} p1[a] p2[b] p3[a + s·b]; the joint over (a,b) is the
		// exhaustive probability tensor, then an irregular gather pulls the
		// matching p3 entries.
		lv := row[0].Dim(0)
		joint := Joint(e, row[0], row[1])
		padded := e.Concat(0, row[2], tensor.Zeros(1))
		idx := make([]int, lv*lv)
		for a := 0; a < lv; a++ {
			for b := 0; b < lv; b++ {
				// Number PMFs are 0-based bins of 1-based counts:
				// count = bin+1, so bin3 = bin1 + s·(bin2+1).
				target := a + c.Delta*(b+1)
				if target < 0 || target >= lv {
					target = lv
				}
				idx[a*lv+b] = target
			}
		}
		p3 := e.Gather(padded.Reshape(lv+1, 1), idx).Reshape(lv * lv)
		prod := e.Mul(joint, p3)
		return e.SumAxis(prod.Reshape(1, lv*lv), 1).Reshape()
	case raven.DistributeThree:
		if len(row) != 3 {
			return tensor.Scalar(0)
		}
		// P = Σ over distinct triples (a,b,c) of p1[a]p2[b]p3[c]: total
		// mass minus the off-diagonal exclusions, computed with joint
		// expansions (inclusion–exclusion over pairwise equality).
		all := prodMass(e, row[0], row[1], row[2])
		eq12 := pairEqualMass(e, row[0], row[1], row[2], 0, 1)
		eq13 := pairEqualMass(e, row[0], row[1], row[2], 0, 2)
		eq23 := pairEqualMass(e, row[0], row[1], row[2], 1, 2)
		allEq := tripleEqualMass(e, row[0], row[1], row[2])
		s := e.Sub(all, eq12)
		s = e.Sub(s, eq13)
		s = e.Sub(s, eq23)
		twice := e.AddScalar(e.MulScalar(allEq, 2), 0)
		return e.Add(s, twice)
	default:
		return tensor.Scalar(0)
	}
}

// prodMass returns Σ_a p1[a] · Σ_b p2[b] · Σ_c p3[c] as a scalar tensor.
func prodMass(e *ops.Engine, p1, p2, p3 *tensor.Tensor) *tensor.Tensor {
	s1 := e.SumAxis(p1.Reshape(1, p1.Dim(0)), 1).Reshape()
	s2 := e.SumAxis(p2.Reshape(1, p2.Dim(0)), 1).Reshape()
	s3 := e.SumAxis(p3.Reshape(1, p3.Dim(0)), 1).Reshape()
	return e.Mul(e.Mul(s1, s2), s3)
}

// pairEqualMass returns Σ_v pi[v]·pj[v] · (mass of the third PMF).
func pairEqualMass(e *ops.Engine, p1, p2, p3 *tensor.Tensor, i, j int) *tensor.Tensor {
	ps := []*tensor.Tensor{p1, p2, p3}
	var third *tensor.Tensor
	for k, p := range ps {
		if k != i && k != j {
			third = p
		}
	}
	eq := e.Mul(ps[i], ps[j])
	eqMass := e.SumAxis(eq.Reshape(1, eq.Dim(0)), 1).Reshape()
	thirdMass := e.SumAxis(third.Reshape(1, third.Dim(0)), 1).Reshape()
	return e.Mul(eqMass, thirdMass)
}

// tripleEqualMass returns Σ_v p1[v]p2[v]p3[v].
func tripleEqualMass(e *ops.Engine, p1, p2, p3 *tensor.Tensor) *tensor.Tensor {
	m := e.Mul(e.Mul(p1, p2), p3)
	return e.SumAxis(m.Reshape(1, m.Dim(0)), 1).Reshape()
}

// Abduce scores every candidate rule for an attribute over the task's
// complete rows and returns the scores aligned with Candidates(a, m).
// rows holds the context PMFs row-major: rows[r][c]; the last row has one
// missing panel and contributes partial evidence only through execution.
func Abduce(e *ops.Engine, a raven.Attribute, m int, rows [][]*tensor.Tensor) []float32 {
	cands := Candidates(a, m)
	scores := make([]float32, len(cands))
	for ci, c := range cands {
		prob := float32(1)
		for r := 0; r < m-1; r++ {
			p := RowProb(e, c, rows[r])
			prob *= p.Item()
		}
		if c.Type == raven.DistributeThree && m >= 2 {
			// Distribute-three additionally requires the same value triple
			// in every row — including the last row's visible panels, which
			// is what disambiguates it from progressions whose rows happen
			// to repeat the same values.
			prob *= tripleConsistency(e, rows)
		}
		scores[ci] = prob
	}
	return scores
}

// tripleConsistency returns the probability that every complete row's
// values fall inside the triple defined by the first row's modes.
func tripleConsistency(e *ops.Engine, completeRows [][]*tensor.Tensor) float32 {
	if len(completeRows) < 2 {
		return 1
	}
	lv := completeRows[0][0].Dim(0)
	mask := tensor.New(lv)
	for _, p := range completeRows[0] {
		mask.Data()[tensor.ArgMax(p)] = 1
	}
	prob := float32(1)
	for _, row := range completeRows[1:] {
		for _, p := range row {
			inTriple := e.Mul(p, mask)
			prob *= e.SumAxis(inTriple.Reshape(1, lv), 1).Reshape().Item()
		}
	}
	return prob
}

// BestRule returns the highest-scoring candidate and its score.
func BestRule(a raven.Attribute, m int, scores []float32) (CandidateRule, float32) {
	cands := Candidates(a, m)
	best, bi := scores[0], 0
	for i, s := range scores[1:] {
		if s > best {
			best, bi = s, i+1
		}
	}
	return cands[bi], best
}

// Execute predicts the missing panel's PMF for an attribute by applying the
// rule to the last row's visible PMFs.
func Execute(e *ops.Engine, c CandidateRule, lastRow []*tensor.Tensor) *tensor.Tensor {
	n := len(lastRow)
	switch c.Type {
	case raven.Constant:
		// Consensus of the visible panels.
		acc := lastRow[0]
		for _, p := range lastRow[1:] {
			acc = e.Mul(acc, p)
		}
		return e.NormalizeL1(acc)
	case raven.Progression:
		return ShiftPMF(e, lastRow[n-1], -c.Delta)
	case raven.Arithmetic:
		// p3[v] = Σ_{a+s(b+1)=v} p1[a] p2[b]: a distribution convolution
		// realized with the joint expansion and a scatter-style gather-sum.
		lv := lastRow[0].Dim(0)
		joint := Joint(e, lastRow[0], lastRow[1])
		out := tensor.New(lv)
		outs := e.Logic("ArithmeticExecute", int64(lv*lv), int64(lv*lv*4), []*tensor.Tensor{joint}, func() []*tensor.Tensor {
			for a := 0; a < lv; a++ {
				for b := 0; b < lv; b++ {
					v := a + c.Delta*(b+1)
					if v >= 0 && v < lv {
						out.Data()[v] += joint.At(a*lv + b)
					}
				}
			}
			return []*tensor.Tensor{out}
		})
		return e.NormalizeL1(outs[0])
	case raven.DistributeThree:
		// The missing value completes the permutation: suppress the values
		// already present in the row, keep the remaining candidate mass.
		mask := tensor.Ones(lastRow[0].Dim(0))
		for _, p := range lastRow {
			seen := tensor.OneHot(tensor.ArgMax(p), p.Dim(0))
			mask = e.Mul(mask, e.AddScalar(e.Neg(seen), 1))
		}
		// Candidate values are those seen anywhere in earlier rows; here we
		// approximate with the union of the row's complement weighted by
		// the visible panels' value set from the first complete row.
		return e.NormalizeL1(e.Mul(mask, sumPMFs(e, lastRow)))
	default:
		return e.NormalizeL1(lastRow[n-1])
	}
}

// sumPMFs returns the element-wise sum of the PMFs.
func sumPMFs(e *ops.Engine, ps []*tensor.Tensor) *tensor.Tensor {
	acc := ps[0]
	for _, p := range ps[1:] {
		acc = e.Add(acc, p)
	}
	return acc
}

// ExecuteWithContext predicts the missing PMF with full row context: for
// distribute-three the candidate triple is taken from the first complete
// row, which makes the completion exact.
func ExecuteWithContext(e *ops.Engine, c CandidateRule, rows [][]*tensor.Tensor) *tensor.Tensor {
	m := len(rows)
	lastRow := rows[m-1]
	if c.Type != raven.DistributeThree {
		return Execute(e, c, lastRow)
	}
	lv := lastRow[0].Dim(0)
	// Triple = modes of the first complete row.
	tripleMask := tensor.New(lv)
	for _, p := range rows[0] {
		tripleMask.Data()[tensor.ArgMax(p)] = 1
	}
	// Remove the values already visible in the last row.
	mask := tripleMask
	for _, p := range lastRow {
		seen := tensor.OneHot(tensor.ArgMax(p), lv)
		mask = e.Mul(mask, e.AddScalar(e.Neg(seen), 1))
	}
	if mask.Sum() == 0 {
		return e.NormalizeL1(tripleMask)
	}
	return e.NormalizeL1(mask)
}
