package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Term is a constant or variable appearing as a predicate argument.
type Term struct {
	Name string
	Var  bool // true for variables, false for constants
}

// V returns a variable term.
func V(name string) Term { return Term{Name: name, Var: true} }

// C returns a constant term.
func C(name string) Term { return Term{Name: name, Var: false} }

// Formula is a fuzzy first-order logic formula AST.
type Formula interface {
	// String renders the formula.
	String() string
	// freeVars accumulates free variable names.
	freeVars(set map[string]bool)
}

// Atom is an applied predicate, e.g. isMammal(x).
type Atom struct {
	Pred string
	Args []Term
}

// Pred constructs an atom.
func Pred(name string, args ...Term) *Atom { return &Atom{Pred: name, Args: args} }

// String implements Formula.
func (a *Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.Name
	}
	return fmt.Sprintf("%s(%s)", a.Pred, strings.Join(parts, ","))
}

func (a *Atom) freeVars(set map[string]bool) {
	for _, t := range a.Args {
		if t.Var {
			set[t.Name] = true
		}
	}
}

// NotF is fuzzy negation.
type NotF struct{ F Formula }

// Not constructs a negation.
func Not(f Formula) *NotF { return &NotF{F: f} }

// String implements Formula.
func (n *NotF) String() string { return "¬" + n.F.String() }

func (n *NotF) freeVars(set map[string]bool) { n.F.freeVars(set) }

// AndF is fuzzy conjunction over two or more conjuncts.
type AndF struct{ Fs []Formula }

// And constructs a conjunction.
func And(fs ...Formula) *AndF { return &AndF{Fs: fs} }

// String implements Formula.
func (a *AndF) String() string { return joinFormulas(a.Fs, " ∧ ") }

func (a *AndF) freeVars(set map[string]bool) {
	for _, f := range a.Fs {
		f.freeVars(set)
	}
}

// OrF is fuzzy disjunction over two or more disjuncts.
type OrF struct{ Fs []Formula }

// Or constructs a disjunction.
func Or(fs ...Formula) *OrF { return &OrF{Fs: fs} }

// String implements Formula.
func (o *OrF) String() string { return joinFormulas(o.Fs, " ∨ ") }

func (o *OrF) freeVars(set map[string]bool) {
	for _, f := range o.Fs {
		f.freeVars(set)
	}
}

// ImpliesF is fuzzy implication.
type ImpliesF struct{ A, B Formula }

// Implies constructs an implication.
func Implies(a, b Formula) *ImpliesF { return &ImpliesF{A: a, B: b} }

// String implements Formula.
func (i *ImpliesF) String() string {
	return "(" + i.A.String() + " → " + i.B.String() + ")"
}

func (i *ImpliesF) freeVars(set map[string]bool) {
	i.A.freeVars(set)
	i.B.freeVars(set)
}

// QuantF is a quantified formula over one variable.
type QuantF struct {
	Universal bool // ∀ when true, ∃ when false
	Var       string
	Body      Formula
}

// Forall constructs a universal quantification.
func Forall(v string, body Formula) *QuantF {
	return &QuantF{Universal: true, Var: v, Body: body}
}

// Exists constructs an existential quantification.
func Exists(v string, body Formula) *QuantF {
	return &QuantF{Universal: false, Var: v, Body: body}
}

// String implements Formula.
func (q *QuantF) String() string {
	sym := "∃"
	if q.Universal {
		sym = "∀"
	}
	return fmt.Sprintf("%s%s.%s", sym, q.Var, q.Body.String())
}

func (q *QuantF) freeVars(set map[string]bool) {
	inner := make(map[string]bool)
	q.Body.freeVars(inner)
	delete(inner, q.Var)
	for v := range inner {
		set[v] = true
	}
}

func joinFormulas(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// FreeVars returns the sorted free variable names of a formula.
func FreeVars(f Formula) []string {
	set := make(map[string]bool)
	f.freeVars(set)
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

// Interpretation supplies truth degrees for ground atoms. Predicates may be
// backed by stored facts or by neural groundings (as in LTN).
type Interpretation interface {
	// Truth returns the degree of pred(args...) with fully ground args.
	Truth(pred string, args []string) float64
}

// Evaluator evaluates formulas under a semantics, a domain of constants,
// and quantifier aggregators.
type Evaluator struct {
	Sem       Semantics
	Domain    []string
	ForallAgg Aggregator
	ExistsAgg Aggregator
	// Evals counts ground-atom evaluations, a proxy for symbolic work.
	Evals int64
}

// NewEvaluator returns an evaluator with classical min/max quantifiers.
func NewEvaluator(sem Semantics, domain []string) *Evaluator {
	return &Evaluator{Sem: sem, Domain: domain, ForallAgg: MinAgg{}, ExistsAgg: MaxAgg{}}
}

// Eval computes the truth degree of f under the assignment env (variable →
// constant). Unbound variables panic; quantify or bind them first.
func (ev *Evaluator) Eval(f Formula, env map[string]string, interp Interpretation) float64 {
	switch x := f.(type) {
	case *Atom:
		args := make([]string, len(x.Args))
		for i, t := range x.Args {
			if t.Var {
				c, ok := env[t.Name]
				if !ok {
					panic(fmt.Sprintf("logic: unbound variable %q in %s", t.Name, x))
				}
				args[i] = c
			} else {
				args[i] = t.Name
			}
		}
		ev.Evals++
		return clamp01(interp.Truth(x.Pred, args))
	case *NotF:
		return ev.Sem.Neg(ev.Eval(x.F, env, interp))
	case *AndF:
		if len(x.Fs) == 0 {
			return 1
		}
		acc := ev.Eval(x.Fs[0], env, interp)
		for _, g := range x.Fs[1:] {
			acc = ev.Sem.TNorm(acc, ev.Eval(g, env, interp))
		}
		return acc
	case *OrF:
		if len(x.Fs) == 0 {
			return 0
		}
		acc := ev.Eval(x.Fs[0], env, interp)
		for _, g := range x.Fs[1:] {
			acc = ev.Sem.SNorm(acc, ev.Eval(g, env, interp))
		}
		return acc
	case *ImpliesF:
		return ev.Sem.Implies(ev.Eval(x.A, env, interp), ev.Eval(x.B, env, interp))
	case *QuantF:
		if len(ev.Domain) == 0 {
			if x.Universal {
				return 1
			}
			return 0
		}
		degrees := make([]float64, 0, len(ev.Domain))
		inner := make(map[string]string, len(env)+1)
		for k, v := range env {
			inner[k] = v
		}
		for _, c := range ev.Domain {
			inner[x.Var] = c
			degrees = append(degrees, ev.Eval(x.Body, inner, interp))
		}
		if x.Universal {
			return ev.ForallAgg.Aggregate(degrees)
		}
		return ev.ExistsAgg.Aggregate(degrees)
	default:
		panic(fmt.Sprintf("logic: unknown formula node %T", f))
	}
}

// FactBase is a simple Interpretation backed by stored ground facts.
// Missing atoms default to the given unknown degree.
type FactBase struct {
	facts   map[string]float64
	Default float64
}

// NewFactBase returns an empty fact base with default degree 0.
func NewFactBase() *FactBase {
	return &FactBase{facts: make(map[string]float64)}
}

// key builds the canonical atom key.
func (fb *FactBase) key(pred string, args []string) string {
	return pred + "(" + strings.Join(args, ",") + ")"
}

// Assert stores a ground fact with the given degree.
func (fb *FactBase) Assert(pred string, degree float64, args ...string) {
	fb.facts[fb.key(pred, args)] = clamp01(degree)
}

// Truth implements Interpretation.
func (fb *FactBase) Truth(pred string, args []string) float64 {
	if d, ok := fb.facts[fb.key(pred, args)]; ok {
		return d
	}
	return fb.Default
}

// Len returns the number of stored facts.
func (fb *FactBase) Len() int { return len(fb.facts) }

// Bytes estimates the storage footprint of the fact base.
func (fb *FactBase) Bytes() int64 {
	var n int64
	for k := range fb.facts {
		n += int64(len(k)) + 8
	}
	return n
}
