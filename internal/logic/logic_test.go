package logic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func feq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestLukasiewiczTruthTable(t *testing.T) {
	lk := Lukasiewicz{}
	if !feq(lk.TNorm(1, 1), 1) || !feq(lk.TNorm(1, 0), 0) || !feq(lk.TNorm(0.7, 0.6), 0.3) {
		t.Fatal("Łukasiewicz TNorm wrong")
	}
	if !feq(lk.SNorm(0.5, 0.7), 1) || !feq(lk.SNorm(0.2, 0.3), 0.5) {
		t.Fatal("Łukasiewicz SNorm wrong")
	}
	if !feq(lk.Neg(0.3), 0.7) {
		t.Fatal("Łukasiewicz Neg wrong")
	}
	if !feq(lk.Implies(1, 0), 0) || !feq(lk.Implies(0.4, 0.9), 1) || !feq(lk.Implies(0.9, 0.4), 0.5) {
		t.Fatal("Łukasiewicz Implies wrong")
	}
}

func TestGoedelAndProduct(t *testing.T) {
	gd := Goedel{}
	if !feq(gd.TNorm(0.3, 0.8), 0.3) || !feq(gd.SNorm(0.3, 0.8), 0.8) {
		t.Fatal("Gödel norms wrong")
	}
	if !feq(gd.Implies(0.3, 0.8), 1) || !feq(gd.Implies(0.8, 0.3), 0.3) {
		t.Fatal("Gödel implication wrong")
	}
	if !feq(gd.Neg(0), 1) || !feq(gd.Neg(0.5), 0) {
		t.Fatal("Gödel negation wrong")
	}
	pr := Product{}
	if !feq(pr.TNorm(0.5, 0.4), 0.2) || !feq(pr.SNorm(0.5, 0.4), 0.7) {
		t.Fatal("product norms wrong")
	}
	if !feq(pr.Implies(0.8, 0.4), 0.5) || !feq(pr.Implies(0.2, 0.6), 1) {
		t.Fatal("product implication wrong")
	}
}

func TestPropDeMorganLukasiewicz(t *testing.T) {
	lk := Lukasiewicz{}
	f := func(a, b float64) bool {
		a, b = clamp01(math.Abs(a)-math.Floor(math.Abs(a))), clamp01(math.Abs(b)-math.Floor(math.Abs(b)))
		// ¬(a ∧ b) == ¬a ∨ ¬b
		lhs := lk.Neg(lk.TNorm(a, b))
		rhs := lk.SNorm(lk.Neg(a), lk.Neg(b))
		return math.Abs(lhs-rhs) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropTNormProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}
	for _, sem := range []Semantics{Lukasiewicz{}, Goedel{}, Product{}} {
		sem := sem
		f := func(a, b float64) bool {
			a, b = clamp01(math.Abs(a)-math.Floor(math.Abs(a))), clamp01(math.Abs(b)-math.Floor(math.Abs(b)))
			// Commutativity, identity with 1, annihilator 0, boundedness.
			if math.Abs(sem.TNorm(a, b)-sem.TNorm(b, a)) > 1e-9 {
				return false
			}
			if math.Abs(sem.TNorm(a, 1)-a) > 1e-9 {
				return false
			}
			if sem.TNorm(a, 0) > 1e-9 {
				return false
			}
			v := sem.TNorm(a, b)
			return v >= -1e-9 && v <= math.Min(a, b)+1e-9
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatalf("%s: %v", sem.Name(), err)
		}
	}
}

func TestAggregators(t *testing.T) {
	ds := []float64{0.2, 0.8, 0.5}
	if (MinAgg{}).Aggregate(ds) != 0.2 || (MaxAgg{}).Aggregate(ds) != 0.8 {
		t.Fatal("min/max aggregators wrong")
	}
	pe := PMeanError{P: 2}.Aggregate(ds)
	if pe <= 0.2 || pe >= 0.8 {
		t.Fatalf("pmean_error out of range: %v", pe)
	}
	pm := PMean{P: 2}.Aggregate(ds)
	if pm <= 0.2 || pm >= 0.8 {
		t.Fatalf("pmean out of range: %v", pm)
	}
	// All-true and all-false fixed points.
	if !feq(PMeanError{P: 2}.Aggregate([]float64{1, 1}), 1) {
		t.Fatal("pmean_error of all-1 must be 1")
	}
	if !feq(PMean{P: 2}.Aggregate([]float64{0, 0}), 0) {
		t.Fatal("pmean of all-0 must be 0")
	}
}

func TestBoundsBasics(t *testing.T) {
	if !Unknown().Valid() || Unknown().Width() != 1 {
		t.Fatal("Unknown bounds wrong")
	}
	if !True().IsTrue(0.9) || !False().IsFalse(0.9) {
		t.Fatal("True/False thresholds wrong")
	}
	b := Bounds{0.8, 0.3}
	if !b.Contradictory() {
		t.Fatal("crossed bounds must be contradictory")
	}
	tt := (Bounds{0.2, 0.9}).Tighten(Bounds{0.4, 0.95})
	if !feq(tt.L, 0.4) || !feq(tt.U, 0.9) {
		t.Fatalf("Tighten = %v", tt)
	}
	if Exactly(0.5).Width() != 0 {
		t.Fatal("Exactly must have zero width")
	}
	if Exactly(1.5).U != 1 {
		t.Fatal("Exactly must clamp")
	}
	if s := (Bounds{0.25, 0.75}).String(); s != "[0.250, 0.750]" {
		t.Fatalf("String = %s", s)
	}
}

func TestBoundsConnectives(t *testing.T) {
	a, b := Bounds{0.6, 0.9}, Bounds{0.7, 0.8}
	n := NotBounds(a)
	if !feq(n.L, 0.1) || !feq(n.U, 0.4) {
		t.Fatalf("NotBounds = %v", n)
	}
	c := AndBounds(a, b)
	if !feq(c.L, 0.3) || !feq(c.U, 0.7) {
		t.Fatalf("AndBounds = %v", c)
	}
	d := OrBounds(a, b)
	if !feq(d.L, 1) || !feq(d.U, 1) {
		t.Fatalf("OrBounds = %v", d)
	}
	imp := ImpliesBounds(a, b)
	// lower: min(1, 1-0.9+0.7)=0.8, upper: min(1, 1-0.6+0.8)=1
	if !feq(imp.L, 0.8) || !feq(imp.U, 1) {
		t.Fatalf("ImpliesBounds = %v", imp)
	}
}

func TestInferenceRules(t *testing.T) {
	impl := Bounds{1, 1} // known-true rule
	ante := Bounds{0.9, 1}
	mp := ModusPonens(impl, ante)
	if !feq(mp.L, 0.9) {
		t.Fatalf("ModusPonens = %v", mp)
	}
	cons := Bounds{0, 0.1}
	mt := ModusTollens(impl, cons)
	if !feq(mt.U, 0.1) {
		t.Fatalf("ModusTollens = %v", mt)
	}
	conj := Bounds{0.8, 1}
	other := Bounds{0.9, 1}
	cd := ConjunctionDownward(conj, other)
	if !feq(cd.L, 0.8) {
		t.Fatalf("ConjunctionDownward = %v", cd)
	}
	disj := Bounds{0.9, 1}
	dd := DisjunctionDownward(disj, Bounds{0, 0.2})
	if !feq(dd.L, 0.7) {
		t.Fatalf("DisjunctionDownward = %v", dd)
	}
}

func TestFormulaStringsAndFreeVars(t *testing.T) {
	f := Forall("x", Implies(Pred("carnivore", V("x")), Pred("mammal", V("x"))))
	if f.String() != "∀x.(carnivore(x) → mammal(x))" {
		t.Fatalf("String = %s", f.String())
	}
	if len(FreeVars(f)) != 0 {
		t.Fatalf("closed formula has free vars %v", FreeVars(f))
	}
	open := And(Pred("p", V("x")), Pred("q", V("y"), C("a")))
	fv := FreeVars(open)
	if len(fv) != 2 || fv[0] != "x" || fv[1] != "y" {
		t.Fatalf("FreeVars = %v", fv)
	}
}

func TestEvaluatorGroundAtoms(t *testing.T) {
	fb := NewFactBase()
	fb.Assert("mammal", 1.0, "dog")
	fb.Assert("mammal", 0.2, "lizard")
	ev := NewEvaluator(Lukasiewicz{}, []string{"dog", "lizard"})
	if !feq(ev.Eval(Pred("mammal", C("dog")), nil, fb), 1.0) {
		t.Fatal("ground atom eval wrong")
	}
	if !feq(ev.Eval(Not(Pred("mammal", C("lizard"))), nil, fb), 0.8) {
		t.Fatal("negation eval wrong")
	}
	if ev.Evals != 2 {
		t.Fatalf("Evals = %d", ev.Evals)
	}
}

func TestEvaluatorQuantifiers(t *testing.T) {
	fb := NewFactBase()
	fb.Assert("carnivore", 1, "dog")
	fb.Assert("mammal", 1, "dog")
	fb.Assert("carnivore", 0, "lizard")
	fb.Assert("mammal", 0.2, "lizard")
	ev := NewEvaluator(Lukasiewicz{}, []string{"dog", "lizard"})
	rule := Forall("x", Implies(Pred("carnivore", V("x")), Pred("mammal", V("x"))))
	// dog: 1→1 = 1; lizard: 0→0.2 = 1; min = 1.
	if got := ev.Eval(rule, nil, fb); !feq(got, 1) {
		t.Fatalf("∀ rule degree = %v", got)
	}
	ex := Exists("x", Pred("carnivore", V("x")))
	if got := ev.Eval(ex, nil, fb); !feq(got, 1) {
		t.Fatalf("∃ degree = %v", got)
	}
	// Violated rule: every carnivore is a lizard — dog violates it.
	bad := Forall("x", Implies(Pred("carnivore", V("x")), Pred("mammal", Term{Name: "lizard", Var: false})))
	got := ev.Eval(bad, nil, fb)
	if got > 0.21 {
		t.Fatalf("violated rule degree = %v", got)
	}
}

func TestEvaluatorUnboundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unbound variable")
		}
	}()
	ev := NewEvaluator(Goedel{}, []string{"a"})
	ev.Eval(Pred("p", V("x")), nil, NewFactBase())
}

func TestEvaluatorConnectivesOverDomain(t *testing.T) {
	fb := NewFactBase()
	fb.Assert("p", 0.9, "a")
	fb.Assert("q", 0.8, "a")
	ev := NewEvaluator(Product{}, []string{"a"})
	env := map[string]string{"x": "a"}
	and := ev.Eval(And(Pred("p", V("x")), Pred("q", V("x"))), env, fb)
	if !feq(and, 0.72) {
		t.Fatalf("product conjunction = %v", and)
	}
	or := ev.Eval(Or(Pred("p", V("x")), Pred("q", V("x"))), env, fb)
	if !feq(or, 0.98) {
		t.Fatalf("product disjunction = %v", or)
	}
	if !feq(ev.Eval(And(), env, fb), 1) || !feq(ev.Eval(Or(), env, fb), 0) {
		t.Fatal("empty connective identities wrong")
	}
}

func TestEmptyDomainQuantifiers(t *testing.T) {
	ev := NewEvaluator(Lukasiewicz{}, nil)
	fb := NewFactBase()
	if !feq(ev.Eval(Forall("x", Pred("p", V("x"))), nil, fb), 1) {
		t.Fatal("∀ over empty domain must be 1")
	}
	if !feq(ev.Eval(Exists("x", Pred("p", V("x"))), nil, fb), 0) {
		t.Fatal("∃ over empty domain must be 0")
	}
}

func TestFactBase(t *testing.T) {
	fb := NewFactBase()
	fb.Assert("likes", 0.7, "a", "b")
	if fb.Len() != 1 || fb.Bytes() <= 0 {
		t.Fatal("fact base accounting wrong")
	}
	if !feq(fb.Truth("likes", []string{"a", "b"}), 0.7) {
		t.Fatal("stored fact lookup wrong")
	}
	if !feq(fb.Truth("likes", []string{"b", "a"}), 0) {
		t.Fatal("default degree wrong")
	}
	fb.Default = 0.5
	if !feq(fb.Truth("other", []string{"z"}), 0.5) {
		t.Fatal("custom default wrong")
	}
}
