package logic

import (
	"fmt"
	"math"
)

// Bounds is an LNN truth interval [L, U] ⊆ [0,1]: L is the established lower
// bound on a statement's truth, U the upper bound. Unknown is [0,1]; exactly
// true is [1,1]; contradictions have L > U.
type Bounds struct {
	L, U float64
}

// Unknown is the fully agnostic interval.
func Unknown() Bounds { return Bounds{0, 1} }

// True is the exactly-true interval.
func True() Bounds { return Bounds{1, 1} }

// False is the exactly-false interval.
func False() Bounds { return Bounds{0, 0} }

// Exactly returns the degenerate interval [v, v].
func Exactly(v float64) Bounds { return Bounds{clamp01(v), clamp01(v)} }

// Valid reports whether the interval is consistent (L ≤ U up to epsilon).
func (b Bounds) Valid() bool { return b.L <= b.U+1e-9 }

// Contradictory reports whether the bounds have crossed.
func (b Bounds) Contradictory() bool { return !b.Valid() }

// Width returns U - L, the residual uncertainty.
func (b Bounds) Width() float64 { return b.U - b.L }

// IsTrue reports whether the lower bound clears the given truth threshold.
func (b Bounds) IsTrue(alpha float64) bool { return b.L >= alpha }

// IsFalse reports whether the upper bound is below 1-alpha.
func (b Bounds) IsFalse(alpha float64) bool { return b.U <= 1-alpha }

// String renders the interval.
func (b Bounds) String() string { return fmt.Sprintf("[%.3f, %.3f]", b.L, b.U) }

// Tighten intersects two intervals for the same statement, as LNN does when
// multiple proofs constrain one neuron.
func (b Bounds) Tighten(o Bounds) Bounds {
	return Bounds{math.Max(b.L, o.L), math.Min(b.U, o.U)}
}

// NotBounds negates an interval under Łukasiewicz semantics.
func NotBounds(a Bounds) Bounds { return Bounds{1 - a.U, 1 - a.L} }

// AndBounds conjoins two intervals with the Łukasiewicz t-norm applied
// monotonically to each endpoint.
func AndBounds(a, b Bounds) Bounds {
	lk := Lukasiewicz{}
	return Bounds{lk.TNorm(a.L, b.L), lk.TNorm(a.U, b.U)}
}

// OrBounds disjoins two intervals with the Łukasiewicz s-norm.
func OrBounds(a, b Bounds) Bounds {
	lk := Lukasiewicz{}
	return Bounds{lk.SNorm(a.L, b.L), lk.SNorm(a.U, b.U)}
}

// ImpliesBounds computes bounds on a→b: the implication is antitone in the
// antecedent, so the lower bound pairs a.U with b.L and the upper bound
// pairs a.L with b.U.
func ImpliesBounds(a, b Bounds) Bounds {
	lk := Lukasiewicz{}
	return Bounds{lk.Implies(a.U, b.L), lk.Implies(a.L, b.U)}
}

// ModusPonens performs the LNN downward pass for an implication a→b: given
// bounds on the implication and the antecedent, it infers bounds on the
// consequent. Under Łukasiewicz logic, b ≥ a.L + impl.L - 1.
func ModusPonens(impl, a Bounds) Bounds {
	l := math.Max(0, a.L+impl.L-1)
	return Bounds{clamp01(l), 1}
}

// ModusTollens performs the complementary downward pass: given bounds on
// the implication and the consequent, it infers an upper bound on the
// antecedent. Under Łukasiewicz logic, a ≤ 1 - impl.L + b.U.
func ModusTollens(impl, b Bounds) Bounds {
	u := 1 - impl.L + b.U
	return Bounds{0, clamp01(u)}
}

// ConjunctionDownward infers bounds on one conjunct from bounds on the
// conjunction and the other conjunct: if (a∧b) ≥ L then a ≥ L (Łukasiewicz:
// a ≥ conj.L since a+b-1 ≤ a when b ≤ 1, i.e. a ≥ conj.L + 1 - b.U ... the
// tight form is a ≥ conj.L + 1 - b.U clamped).
func ConjunctionDownward(conj, other Bounds) Bounds {
	l := conj.L + 1 - other.U
	return Bounds{clamp01(l), 1}
}

// DisjunctionDownward infers bounds on one disjunct from bounds on the
// disjunction and the other disjunct: a ≥ disj.L - b.U, a ≤ disj.U.
func DisjunctionDownward(disj, other Bounds) Bounds {
	l := disj.L - other.U
	return Bounds{clamp01(l), clamp01(disj.U)}
}
