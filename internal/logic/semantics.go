// Package logic implements the symbolic-logic substrate of nsbench: fuzzy
// first-order logic with pluggable t-norm semantics, truth-bound arithmetic
// for logical neural networks, formula ASTs, grounding and quantifier
// aggregation.
package logic

import (
	"fmt"
	"math"
)

// Semantics defines a fuzzy interpretation of the propositional connectives
// over truth degrees in [0,1].
type Semantics interface {
	// Name identifies the semantics ("lukasiewicz", "goedel", "product").
	Name() string
	// TNorm is fuzzy conjunction.
	TNorm(a, b float64) float64
	// SNorm is fuzzy disjunction.
	SNorm(a, b float64) float64
	// Neg is fuzzy negation.
	Neg(a float64) float64
	// Implies is fuzzy implication (the residuum in each system).
	Implies(a, b float64) float64
}

// Lukasiewicz is the Łukasiewicz logic used by LNN:
// a∧b = max(0, a+b-1), a∨b = min(1, a+b), a→b = min(1, 1-a+b).
type Lukasiewicz struct{}

// Name implements Semantics.
func (Lukasiewicz) Name() string { return "lukasiewicz" }

// TNorm implements Semantics.
func (Lukasiewicz) TNorm(a, b float64) float64 { return math.Max(0, a+b-1) }

// SNorm implements Semantics.
func (Lukasiewicz) SNorm(a, b float64) float64 { return math.Min(1, a+b) }

// Neg implements Semantics.
func (Lukasiewicz) Neg(a float64) float64 { return 1 - a }

// Implies implements Semantics.
func (Lukasiewicz) Implies(a, b float64) float64 { return math.Min(1, 1-a+b) }

// Goedel is Gödel (min/max) logic.
type Goedel struct{}

// Name implements Semantics.
func (Goedel) Name() string { return "goedel" }

// TNorm implements Semantics.
func (Goedel) TNorm(a, b float64) float64 { return math.Min(a, b) }

// SNorm implements Semantics.
func (Goedel) SNorm(a, b float64) float64 { return math.Max(a, b) }

// Neg implements Semantics.
func (Goedel) Neg(a float64) float64 {
	if a == 0 {
		return 1
	}
	return 0
}

// Implies implements Semantics.
func (Goedel) Implies(a, b float64) float64 {
	if a <= b {
		return 1
	}
	return b
}

// Product is product logic: a∧b = ab, a∨b = a+b-ab.
type Product struct{}

// Name implements Semantics.
func (Product) Name() string { return "product" }

// TNorm implements Semantics.
func (Product) TNorm(a, b float64) float64 { return a * b }

// SNorm implements Semantics.
func (Product) SNorm(a, b float64) float64 { return a + b - a*b }

// Neg implements Semantics.
func (Product) Neg(a float64) float64 { return 1 - a }

// Implies implements Semantics.
func (Product) Implies(a, b float64) float64 {
	if a <= b {
		return 1
	}
	if a == 0 {
		return 1
	}
	return b / a
}

// clamp01 restricts v to [0,1], guarding accumulated rounding.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Aggregator folds the truth degrees of a quantifier's instances into one
// degree. LTN uses generalized means; classical fuzzy logic uses min/max.
type Aggregator interface {
	// Name identifies the aggregator.
	Name() string
	// Aggregate folds the degrees (which must be non-empty).
	Aggregate(degrees []float64) float64
}

// MinAgg interprets ∀ as the minimum (Gödel universal quantifier).
type MinAgg struct{}

// Name implements Aggregator.
func (MinAgg) Name() string { return "min" }

// Aggregate implements Aggregator.
func (MinAgg) Aggregate(ds []float64) float64 {
	m := ds[0]
	for _, d := range ds[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// MaxAgg interprets ∃ as the maximum.
type MaxAgg struct{}

// Name implements Aggregator.
func (MaxAgg) Name() string { return "max" }

// Aggregate implements Aggregator.
func (MaxAgg) Aggregate(ds []float64) float64 {
	m := ds[0]
	for _, d := range ds[1:] {
		if d > m {
			m = d
		}
	}
	return m
}

// PMeanError is LTN's smooth universal quantifier: 1 - (mean((1-d)^p))^(1/p).
// Larger p approaches min.
type PMeanError struct{ P float64 }

// Name implements Aggregator.
func (a PMeanError) Name() string { return fmt.Sprintf("pmean_error(p=%g)", a.P) }

// Aggregate implements Aggregator.
func (a PMeanError) Aggregate(ds []float64) float64 {
	p := a.P
	if p <= 0 {
		p = 2
	}
	var s float64
	for _, d := range ds {
		s += math.Pow(1-clamp01(d), p)
	}
	s /= float64(len(ds))
	return clamp01(1 - math.Pow(s, 1/p))
}

// PMean is LTN's smooth existential quantifier: (mean(d^p))^(1/p).
type PMean struct{ P float64 }

// Name implements Aggregator.
func (a PMean) Name() string { return fmt.Sprintf("pmean(p=%g)", a.P) }

// Aggregate implements Aggregator.
func (a PMean) Aggregate(ds []float64) float64 {
	p := a.P
	if p <= 0 {
		p = 2
	}
	var s float64
	for _, d := range ds {
		s += math.Pow(clamp01(d), p)
	}
	s /= float64(len(ds))
	return clamp01(math.Pow(s, 1/p))
}
