package schedule

import (
	"testing"
	"time"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

// chainTrace builds a linear dependency chain of n events, d each.
func chainTrace(n int, d time.Duration) *trace.Trace {
	tr := trace.New()
	for i := 0; i < n; i++ {
		ev := trace.Event{Name: "op", Dur: d, Outputs: []uint64{uint64(i + 1)}}
		if i > 0 {
			ev.Inputs = []uint64{uint64(i)}
		}
		tr.Append(ev)
	}
	return tr
}

// fanTrace builds n independent events, d each.
func fanTrace(n int, d time.Duration) *trace.Trace {
	tr := trace.New()
	for i := 0; i < n; i++ {
		tr.Append(trace.Event{Name: "op", Dur: d, Outputs: []uint64{uint64(i + 1)}})
	}
	return tr
}

func TestChainHasNoParallelism(t *testing.T) {
	tr := chainTrace(10, time.Millisecond)
	r := List(tr, 8)
	if r.Makespan != 10*time.Millisecond {
		t.Fatalf("chain makespan = %v, want 10ms", r.Makespan)
	}
	if r.Speedup > 1.01 {
		t.Fatalf("chain speedup = %v, want 1", r.Speedup)
	}
	if r.BoundTightPct < 99 {
		t.Fatalf("chain should be at the critical-path bound: %v", r.BoundTightPct)
	}
}

func TestFanScalesLinearly(t *testing.T) {
	tr := fanTrace(16, time.Millisecond)
	r4 := List(tr, 4)
	if r4.Makespan != 4*time.Millisecond {
		t.Fatalf("fan on 4 workers = %v, want 4ms", r4.Makespan)
	}
	if r4.Speedup < 3.99 || r4.Efficiency < 0.99 {
		t.Fatalf("fan speedup/efficiency = %v/%v", r4.Speedup, r4.Efficiency)
	}
	r16 := List(tr, 16)
	if r16.Makespan != time.Millisecond {
		t.Fatalf("fan on 16 workers = %v, want 1ms", r16.Makespan)
	}
}

func TestUnitsClampedToOne(t *testing.T) {
	tr := fanTrace(4, time.Millisecond)
	r := List(tr, 0)
	if r.Units != 1 || r.Makespan != 4*time.Millisecond {
		t.Fatalf("clamped result = %+v", r)
	}
}

func TestEmptyTrace(t *testing.T) {
	r := List(trace.New(), 4)
	if r.Makespan != 0 || r.Serial != 0 {
		t.Fatalf("empty result = %+v", r)
	}
}

func TestDiamondDependency(t *testing.T) {
	// a → {b, c} → d: on 2 workers, makespan = a + max(b,c) + d.
	tr := trace.New()
	tr.Append(trace.Event{Name: "a", Dur: time.Millisecond, Outputs: []uint64{1}})
	tr.Append(trace.Event{Name: "b", Dur: 2 * time.Millisecond, Inputs: []uint64{1}, Outputs: []uint64{2}})
	tr.Append(trace.Event{Name: "c", Dur: 3 * time.Millisecond, Inputs: []uint64{1}, Outputs: []uint64{3}})
	tr.Append(trace.Event{Name: "d", Dur: time.Millisecond, Inputs: []uint64{2, 3}, Outputs: []uint64{4}})
	r := List(tr, 2)
	if r.Makespan != 5*time.Millisecond {
		t.Fatalf("diamond makespan = %v, want 5ms", r.Makespan)
	}
	if r.CriticalPath != 5*time.Millisecond {
		t.Fatalf("diamond critical path = %v", r.CriticalPath)
	}
}

func TestMakespanNeverBelowBoundsAndMonotone(t *testing.T) {
	// A real workload trace: makespan must respect both lower bounds and
	// improve monotonically with more workers.
	e := ops.New()
	g := tensor.NewRNG(1)
	for i := 0; i < 20; i++ {
		a := g.Normal(0, 1, 32, 32)
		b := e.MatMul(a, a)
		_ = e.ReLU(b)
	}
	tr := e.Trace()
	results := Sweep(tr, []int{1, 2, 4, 8})
	prev := time.Duration(0)
	for i, r := range results {
		if r.Makespan < r.CriticalPath {
			t.Fatalf("makespan %v below critical path %v", r.Makespan, r.CriticalPath)
		}
		perfect := time.Duration(int64(r.Serial) / int64(r.Units))
		if r.Makespan < perfect {
			t.Fatalf("makespan %v below work bound %v", r.Makespan, perfect)
		}
		if i > 0 && r.Makespan > prev+prev/10 {
			t.Fatalf("makespan not monotone: %v after %v", r.Makespan, prev)
		}
		prev = r.Makespan
	}
	if results[0].Makespan != results[0].Serial {
		t.Fatal("single worker must serialize")
	}
}

func TestWithCostReCosting(t *testing.T) {
	tr := fanTrace(4, time.Millisecond)
	r := List(tr, 1, WithCost(func(e *trace.Event) time.Duration { return time.Second }))
	if r.Serial != 4*time.Second {
		t.Fatalf("re-costed serial = %v", r.Serial)
	}
}
