// Package schedule implements list scheduling over recorded operator
// dependency graphs. It quantifies the paper's Recommendation 5 — adaptive
// workload scheduling with parallel processing of neural and symbolic
// components — by computing the makespan of a trace on k parallel
// execution units and comparing it against serial execution and the
// critical-path lower bound.
package schedule

import (
	"container/heap"
	"time"

	"github.com/neurosym/nsbench/internal/trace"
)

// Result summarizes one scheduling experiment.
type Result struct {
	Units         int
	Serial        time.Duration // sum of all event durations
	Makespan      time.Duration // list-scheduled finish time on Units workers
	CriticalPath  time.Duration // dependency lower bound
	Speedup       float64       // Serial / Makespan
	Efficiency    float64       // Speedup / Units
	BoundTightPct float64       // CriticalPath / Makespan, how close to optimal
}

// durationOf lets callers re-cost events (e.g. with a device model) before
// scheduling. The default costs use measured host durations.
type durationOf func(*trace.Event) time.Duration

// Option configures the scheduler.
type Option func(*config)

type config struct {
	cost durationOf
}

// WithCost re-costs every event with the supplied function (e.g. a device
// model's EventTime) instead of the measured host duration.
func WithCost(f func(*trace.Event) time.Duration) Option {
	return func(c *config) { c.cost = f }
}

// workerHeap orders workers by their next-free time.
type workerHeap []time.Duration

func (h workerHeap) Len() int            { return len(h) }
func (h workerHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h workerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *workerHeap) Push(x interface{}) { *h = append(*h, x.(time.Duration)) }
func (h *workerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// List schedules the trace's dependency graph on `units` parallel workers
// with a longest-processing-time-first ready queue, respecting every
// recorded data dependency. units < 1 is treated as 1.
func List(tr *trace.Trace, units int, opts ...Option) Result {
	cfg := config{cost: func(e *trace.Event) time.Duration { return e.Dur }}
	for _, o := range opts {
		o(&cfg)
	}
	if units < 1 {
		units = 1
	}
	g := trace.BuildGraph(tr)
	n := g.N
	res := Result{Units: units}
	if n == 0 {
		return res
	}

	cost := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		cost[i] = cfg.cost(g.Event(i))
		res.Serial += cost[i]
	}

	// Priority = longest path to a sink (standard upward rank), computed
	// backwards over the topologically ordered (by construction) events.
	rank := make([]time.Duration, n)
	for v := n - 1; v >= 0; v-- {
		var best time.Duration
		for _, s := range g.Adj[v] {
			if rank[s] > best {
				best = rank[s]
			}
		}
		rank[v] = best + cost[v]
	}

	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.Parents[v])
	}
	// ready holds runnable events ordered by descending rank.
	ready := &eventHeap{rank: rank}
	// earliest[v] is the time all of v's inputs are available.
	earliest := make([]time.Duration, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			heap.Push(ready, v)
		}
	}
	workers := make(workerHeap, units)
	heap.Init(&workers)

	var makespan time.Duration
	type pending struct {
		done time.Duration
		v    int
	}
	var inflight []pending

	scheduled := 0
	for scheduled < n {
		if ready.Len() == 0 {
			// Advance time to the earliest completion to release deps.
			bestIdx := 0
			for i := 1; i < len(inflight); i++ {
				if inflight[i].done < inflight[bestIdx].done {
					bestIdx = i
				}
			}
			done := inflight[bestIdx]
			inflight = append(inflight[:bestIdx], inflight[bestIdx+1:]...)
			for _, s := range g.Adj[done.v] {
				if earliest[s] < done.done {
					earliest[s] = done.done
				}
				indeg[s]--
				if indeg[s] == 0 {
					heap.Push(ready, s)
				}
			}
			continue
		}
		v := heap.Pop(ready).(int)
		// Pick the earliest-free worker; start after inputs are ready.
		free := heap.Pop(&workers).(time.Duration)
		start := free
		if earliest[v] > start {
			start = earliest[v]
		}
		end := start + cost[v]
		heap.Push(&workers, end)
		inflight = append(inflight, pending{done: end, v: v})
		if end > makespan {
			makespan = end
		}
		scheduled++
	}
	res.Makespan = makespan
	// Critical path under the configured costs: the dependency lower bound.
	var cpCost time.Duration
	longest := make([]time.Duration, n)
	for v := 0; v < n; v++ {
		var best time.Duration
		for _, u := range g.Parents[v] {
			if longest[u] > best {
				best = longest[u]
			}
		}
		longest[v] = best + cost[v]
		if longest[v] > cpCost {
			cpCost = longest[v]
		}
	}
	res.CriticalPath = cpCost
	if res.Makespan > 0 {
		res.Speedup = float64(res.Serial) / float64(res.Makespan)
		res.Efficiency = res.Speedup / float64(units)
		res.BoundTightPct = 100 * float64(res.CriticalPath) / float64(res.Makespan)
	}
	return res
}

// eventHeap is a max-heap of event indices by rank.
type eventHeap struct {
	items []int
	rank  []time.Duration
}

func (h *eventHeap) Len() int { return len(h.items) }
func (h *eventHeap) Less(i, j int) bool {
	return h.rank[h.items[i]] > h.rank[h.items[j]]
}
func (h *eventHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *eventHeap) Push(x interface{}) { h.items = append(h.items, x.(int)) }
func (h *eventHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// Sweep schedules the trace across the given worker counts.
func Sweep(tr *trace.Trace, units []int, opts ...Option) []Result {
	out := make([]Result, 0, len(units))
	for _, u := range units {
		out = append(out, List(tr, u, opts...))
	}
	return out
}
