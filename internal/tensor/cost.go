package tensor

// Cost functions: analytic FLOP and byte counts for each kernel class.
// These feed the trace layer (per-event accounting) and the hardware models
// (roofline and utilization estimation). Byte counts are "algorithmic"
// traffic — each operand read once, each output written once — matching
// the operational-intensity convention used in the paper's roofline plot.

const bytesPerElem = 4 // float32

// FlopsMatMul returns the FLOP count of an m×k by k×n GEMM (one multiply
// plus one add per inner-product step).
func FlopsMatMul(m, k, n int) int64 {
	return 2 * int64(m) * int64(k) * int64(n)
}

// BytesMatMul returns the algorithmic memory traffic of an m×k × k×n GEMM.
func BytesMatMul(m, k, n int) int64 {
	return bytesPerElem * (int64(m)*int64(k) + int64(k)*int64(n) + int64(m)*int64(n))
}

// FlopsConv2D returns the FLOP count of a convolution producing an
// n×cout×hout×wout output from cin input channels and a kh×kw kernel.
func FlopsConv2D(n, cin, cout, hout, wout, kh, kw int) int64 {
	return 2 * int64(n) * int64(cout) * int64(hout) * int64(wout) * int64(cin) * int64(kh) * int64(kw)
}

// BytesConv2D returns the algorithmic traffic of a convolution.
func BytesConv2D(n, cin, h, w, cout, hout, wout, kh, kw int) int64 {
	in := int64(n) * int64(cin) * int64(h) * int64(w)
	wt := int64(cout) * int64(cin) * int64(kh) * int64(kw)
	out := int64(n) * int64(cout) * int64(hout) * int64(wout)
	return bytesPerElem * (in + wt + out)
}

// FlopsEltwise returns the FLOP count of an element-wise op over n elements
// with c arithmetic operations per element.
func FlopsEltwise(n int, c int) int64 { return int64(n) * int64(c) }

// BytesEltwiseBinary returns traffic of a binary element-wise op (two reads,
// one write per element).
func BytesEltwiseBinary(n int) int64 { return bytesPerElem * 3 * int64(n) }

// BytesEltwiseUnary returns traffic of a unary element-wise op.
func BytesEltwiseUnary(n int) int64 { return bytesPerElem * 2 * int64(n) }

// FlopsCircularConvDirect returns the FLOP count of a direct O(n²)
// circular convolution.
func FlopsCircularConvDirect(n int) int64 { return 2 * int64(n) * int64(n) }

// FlopsCircularConvFFT returns the FLOP count of an FFT-based circular
// convolution (three FFTs at ~5 n log2 n plus the pointwise product).
func FlopsCircularConvFFT(n int) int64 {
	logn := int64(0)
	for v := n; v > 1; v >>= 1 {
		logn++
	}
	return 3*5*int64(n)*logn + 6*int64(n)
}

// BytesCircularConv returns the traffic of a circular convolution
// (two operand reads, one output write; FFT temporaries excluded by the
// algorithmic-traffic convention).
func BytesCircularConv(n int) int64 { return bytesPerElem * 3 * int64(n) }

// FlopsReduce returns the FLOP count of a full reduction over n elements.
func FlopsReduce(n int) int64 { return int64(n) }

// BytesReduce returns traffic of a reduction (read all, write result).
func BytesReduce(n, outN int) int64 { return bytesPerElem * (int64(n) + int64(outN)) }

// FlopsSoftmax returns the FLOP count of softmax over n elements
// (max, sub+exp, sum, div ≈ 4 passes plus exp cost folded into a constant).
func FlopsSoftmax(n int) int64 { return 8 * int64(n) }

// BytesCopy returns traffic of moving n elements (read + write).
func BytesCopy(n int) int64 { return bytesPerElem * 2 * int64(n) }

// ArithmeticIntensity returns FLOPs per byte, the roofline x-axis.
// Zero-byte events report zero intensity.
func ArithmeticIntensity(flops, bytes int64) float64 {
	if bytes == 0 {
		return 0
	}
	return float64(flops) / float64(bytes)
}
