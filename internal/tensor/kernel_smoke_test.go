package tensor

import (
	"os"
	"testing"
	"time"
)

// TestKernelSpeedupSmoke is the CI guard on the tiled kernels' reason to
// exist: on large shapes the tiled GEMM/conv must actually beat naive.
// Gated behind NSBENCH_KERNEL_SMOKE because it needs a quiet machine and
// ~a second of timed work. The asserted floors (1.5x GEMM, 1.2x conv) sit
// well under the recorded speedups in BENCH_kernels.json (4-5x and ~2x)
// so scheduler noise cannot flake the job, while still catching any
// regression that would invalidate the dispatch table.
func TestKernelSpeedupSmoke(t *testing.T) {
	if os.Getenv("NSBENCH_KERNEL_SMOKE") == "" {
		t.Skip("set NSBENCH_KERNEL_SMOKE=1 to run the kernel speedup smoke")
	}

	minNs := func(fn func(), reps int) int64 {
		fn() // warm up
		best := int64(1<<63 - 1)
		for r := 0; r < reps; r++ {
			start := time.Now()
			fn()
			if d := time.Since(start).Nanoseconds(); d < best {
				best = d
			}
		}
		return best
	}

	g := NewRNG(7)
	a, b := g.Normal(0, 1, 256, 256), g.Normal(0, 1, 256, 256)
	naive := minNs(func() { MatMulKernelOn(Serial, KernelNaive, a, b) }, 5)
	tiled := minNs(func() { MatMulKernelOn(Serial, KernelTiled, a, b) }, 5)
	if speedup := float64(naive) / float64(tiled); speedup < 1.5 {
		t.Errorf("tiled GEMM on 256x256x256: %.2fx over naive (naive %dns, tiled %dns), want >= 1.5x", speedup, naive, tiled)
	}

	in := g.Normal(0, 1, 1, 16, 32, 32)
	w := g.Normal(0, 1, 16, 16, 3, 3)
	bias := g.Normal(0, 1, 16)
	naive = minNs(func() { Conv2DKernelOn(Serial, KernelNaive, in, w, bias, 1, 1) }, 5)
	tiled = minNs(func() { Conv2DKernelOn(Serial, KernelTiled, in, w, bias, 1, 1) }, 5)
	if speedup := float64(naive) / float64(tiled); speedup < 1.2 {
		t.Errorf("tiled conv on 1x16x16x32: %.2fx over naive (naive %dns, tiled %dns), want >= 1.2x", speedup, naive, tiled)
	}
}
