package tensor

// Runner is the execution strategy injected into the chunked kernels. It
// is the tensor-level view of an execution backend (internal/backend
// satisfies it structurally): a parallel-for over a chunked iteration
// space plus a scratch-buffer pool.
//
// Kernels chunk their output space, so each output element is produced by
// exactly one chunk with the same inner arithmetic order as the serial
// loop — results are bit-identical no matter how For schedules chunks.
type Runner interface {
	// For partitions [0, n) into deterministic contiguous chunks of at
	// least grain iterations and calls fn once per chunk, possibly
	// concurrently, returning after all chunks complete. Boundaries must
	// depend only on n, grain, and the runner's width — never on timing.
	For(n, grain int, fn func(lo, hi int))
	// Scratch returns a float64 buffer with at least n usable elements.
	Scratch(n int) []float64
	// Release returns a buffer obtained from Scratch.
	Release(buf []float64)
	// Scratch32 returns a float32 buffer with at least n usable elements
	// (packed GEMM panels). Safe to call from concurrent For chunks.
	Scratch32(n int) []float32
	// Release32 returns a buffer obtained from Scratch32.
	Release32(buf []float32)
}

// serialRunner is the inline, allocation-only Runner: the plain kernel
// entry points (MatMul, Conv2D, ...) delegate to their chunked variants
// through it, keeping a single implementation per kernel.
type serialRunner struct{}

func (serialRunner) For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	fn(0, n)
}

func (serialRunner) Scratch(n int) []float64 { return make([]float64, n) }

func (serialRunner) Release([]float64) {}

func (serialRunner) Scratch32(n int) []float32 { return make([]float32, n) }

func (serialRunner) Release32([]float32) {}

// Serial is the default inline Runner.
var Serial Runner = serialRunner{}

// minChunkFlops is the floor of useful work per chunk: below it, goroutine
// dispatch overhead dominates and kernels stay single-chunk.
const minChunkFlops = 32 * 1024

// grainFor converts a per-iteration flop estimate into a chunk grain:
// the minimum iterations per chunk that keep each chunk above
// minChunkFlops of work.
func grainFor(perItemFlops int64) int {
	if perItemFlops <= 0 {
		perItemFlops = 1
	}
	g := int64(minChunkFlops) / perItemFlops
	if g < 1 {
		return 1
	}
	return int(g)
}
