package tensor

import (
	"math"
	"testing"
)

func almostEq(a, b, eps float32) bool {
	d := a - b
	return d <= eps && d >= -eps
}

func TestNewShapeAndSize(t *testing.T) {
	a := New(2, 3, 4)
	if a.Rank() != 3 || a.Size() != 24 || a.Bytes() != 96 {
		t.Fatalf("unexpected rank/size/bytes: %d %d %d", a.Rank(), a.Size(), a.Bytes())
	}
	if a.Dim(1) != 3 {
		t.Fatalf("Dim(1) = %d, want 3", a.Dim(1))
	}
}

func TestScalarTensor(t *testing.T) {
	s := Scalar(2.5)
	if s.Rank() != 0 || s.Item() != 2.5 {
		t.Fatalf("Scalar: rank=%d item=%v", s.Rank(), s.Item())
	}
}

func TestFromSliceAndAtSet(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if a.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", a.At(1, 2))
	}
	a.Set(9, 0, 1)
	if a.At(0, 1) != 9 {
		t.Fatalf("Set/At roundtrip failed")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestIDsUnique(t *testing.T) {
	a, b := New(2), New(2)
	if a.ID() == b.ID() {
		t.Fatal("tensor IDs must be unique")
	}
	r := a.Reshape(2)
	if r.ID() != a.ID() {
		t.Fatal("Reshape must preserve the value identity")
	}
	if a.Clone().ID() == a.ID() {
		t.Fatal("Clone must mint a fresh ID")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := a.Clone()
	b.Set(5, 0)
	if a.At(0) != 1 {
		t.Fatal("Clone must not alias storage")
	}
}

func TestReshapeAliasesData(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Reshape(4)
	b.Set(7, 2)
	if a.At(1, 0) != 7 {
		t.Fatal("Reshape must alias storage")
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(7)
}

func TestMinMaxSumMeanNorm(t *testing.T) {
	a := FromSlice([]float32{3, -1, 4, 0}, 4)
	if a.Min() != -1 || a.Max() != 4 {
		t.Fatalf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	if a.Sum() != 6 || a.Mean() != 1.5 {
		t.Fatalf("Sum/Mean = %v/%v", a.Sum(), a.Mean())
	}
	want := float32(math.Sqrt(9 + 1 + 16))
	if !almostEq(a.Norm(), want, 1e-5) {
		t.Fatalf("Norm = %v, want %v", a.Norm(), want)
	}
}

func TestSparsity(t *testing.T) {
	a := FromSlice([]float32{0, 0, 1, 0.0001, -2, 0, 0, 0}, 8)
	got := a.Sparsity(1e-3)
	if got != 6.0/8 {
		t.Fatalf("Sparsity = %v, want 0.75", got)
	}
	if a.CountNonZero(1e-3) != 2 {
		t.Fatalf("CountNonZero = %d, want 2", a.CountNonZero(1e-3))
	}
}

func TestAllFinite(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	if !a.AllFinite() {
		t.Fatal("finite tensor reported non-finite")
	}
	a.Set(float32(math.NaN()), 0)
	if a.AllFinite() {
		t.Fatal("NaN not detected")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	cases := []struct {
		name string
		got  *Tensor
		want []float32
	}{
		{"Add", Add(a, b), []float32{5, 7, 9}},
		{"Sub", Sub(a, b), []float32{-3, -3, -3}},
		{"Mul", Mul(a, b), []float32{4, 10, 18}},
		{"Div", Div(b, a), []float32{4, 2.5, 2}},
		{"Minimum", Minimum(a, b), []float32{1, 2, 3}},
		{"Maximum", Maximum(a, b), []float32{4, 5, 6}},
		{"AddScalar", AddScalar(a, 1), []float32{2, 3, 4}},
		{"MulScalar", MulScalar(a, 2), []float32{2, 4, 6}},
		{"Neg", Neg(a), []float32{-1, -2, -3}},
	}
	for _, c := range cases {
		for i, w := range c.want {
			if !almostEq(c.got.Data()[i], w, 1e-6) {
				t.Errorf("%s[%d] = %v, want %v", c.name, i, c.got.Data()[i], w)
			}
		}
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(New(2), New(3))
}

func TestActivations(t *testing.T) {
	a := FromSlice([]float32{-2, 0, 2}, 3)
	r := ReLU(a)
	if r.At(0) != 0 || r.At(1) != 0 || r.At(2) != 2 {
		t.Fatalf("ReLU = %v", r.Data())
	}
	l := LeakyReLU(a, 0.1)
	if !almostEq(l.At(0), -0.2, 1e-6) || l.At(2) != 2 {
		t.Fatalf("LeakyReLU = %v", l.Data())
	}
	s := Sigmoid(Zeros(1))
	if !almostEq(s.At(0), 0.5, 1e-6) {
		t.Fatalf("Sigmoid(0) = %v", s.At(0))
	}
	th := Tanh(Zeros(1))
	if th.At(0) != 0 {
		t.Fatalf("Tanh(0) = %v", th.At(0))
	}
}

func TestSignAbsClamp(t *testing.T) {
	a := FromSlice([]float32{-3, 0, 5}, 3)
	s := Sign(a)
	if s.At(0) != -1 || s.At(1) != 0 || s.At(2) != 1 {
		t.Fatalf("Sign = %v", s.Data())
	}
	ab := Abs(a)
	if ab.At(0) != 3 || ab.At(2) != 5 {
		t.Fatalf("Abs = %v", ab.Data())
	}
	c := Clamp(a, -1, 1)
	if c.At(0) != -1 || c.At(1) != 0 || c.At(2) != 1 {
		t.Fatalf("Clamp = %v", c.Data())
	}
}

func TestWhereGreaterEqual(t *testing.T) {
	cond := FromSlice([]float32{1, 0}, 2)
	a := FromSlice([]float32{10, 20}, 2)
	b := FromSlice([]float32{30, 40}, 2)
	w := Where(cond, a, b)
	if w.At(0) != 10 || w.At(1) != 40 {
		t.Fatalf("Where = %v", w.Data())
	}
	g := Greater(a, b)
	if g.At(0) != 0 || g.At(1) != 0 {
		t.Fatalf("Greater = %v", g.Data())
	}
	e := Equal(a, FromSlice([]float32{10, 21}, 2), 0.5)
	if e.At(0) != 1 || e.At(1) != 0 {
		t.Fatalf("Equal = %v", e.Data())
	}
}

func TestDotAXPYCosine(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	y := b.Clone()
	AXPY(2, a, y)
	if y.At(0) != 6 || y.At(2) != 12 {
		t.Fatalf("AXPY = %v", y.Data())
	}
	if !almostEq(CosineSimilarity(a, a), 1, 1e-6) {
		t.Fatalf("self cosine = %v", CosineSimilarity(a, a))
	}
	if CosineSimilarity(a, Zeros(3)) != 0 {
		t.Fatal("cosine with zero vector should be 0")
	}
}

func TestMatMul(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data()[i], w)
		}
	}
}

func TestMatMulPropagatesNonFinite(t *testing.T) {
	// IEEE 0·Inf is NaN. A zero-skipping GEMM would silently drop the NaN
	// that MatVec produces for the same operands; the kernels must agree.
	inf := float32(math.Inf(1))
	a := FromSlice([]float32{0, 1}, 1, 2)
	b := FromSlice([]float32{inf, 2, 3, 4}, 2, 2)
	mm := MatMul(a, b) // row 0: [0·Inf + 1·3, 0·2 + 1·4]
	if !math.IsNaN(float64(mm.Data()[0])) {
		t.Fatalf("MatMul[0] = %v, want NaN from 0*Inf", mm.Data()[0])
	}
	if mm.Data()[1] != 4 {
		t.Fatalf("MatMul[1] = %v, want 4", mm.Data()[1])
	}
	mv := MatVec(FromSlice([]float32{inf, 3}, 1, 2), FromSlice([]float32{0, 1}, 2))
	if !math.IsNaN(float64(mv.Data()[0])) {
		t.Fatalf("MatVec[0] = %v, want NaN from Inf*0", mv.Data()[0])
	}
}

func TestMatMulIdentity(t *testing.T) {
	g := NewRNG(1)
	a := g.Normal(0, 1, 5, 5)
	eye := New(5, 5)
	for i := 0; i < 5; i++ {
		eye.Set(1, i, i)
	}
	c := MatMul(a, eye)
	for i := range a.Data() {
		if !almostEq(c.Data()[i], a.Data()[i], 1e-5) {
			t.Fatal("A·I != A")
		}
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	x := FromSlice([]float32{1, 1}, 2)
	y := MatVec(a, x)
	if y.At(0) != 3 || y.At(1) != 7 {
		t.Fatalf("MatVec = %v", y.Data())
	}
}

func TestBatchMatMul(t *testing.T) {
	a := FromSlice([]float32{1, 0, 0, 1, 2, 0, 0, 2}, 2, 2, 2)
	b := FromSlice([]float32{1, 2, 3, 4, 1, 2, 3, 4}, 2, 2, 2)
	c := BatchMatMul(a, b)
	want := []float32{1, 2, 3, 4, 2, 4, 6, 8}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("BatchMatMul[%d] = %v, want %v", i, c.Data()[i], w)
		}
	}
}

func TestOuter(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{3, 4, 5}, 3)
	o := Outer(a, b)
	if o.At(1, 2) != 10 || o.At(0, 0) != 3 {
		t.Fatalf("Outer = %v", o.Data())
	}
}

func TestConv2DKnown(t *testing.T) {
	// 1x1x3x3 input, 1x1x2x2 kernel of ones, stride 1, no padding:
	// each output is the sum of a 2x2 window.
	in := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	w := Ones(1, 1, 2, 2)
	out := Conv2D(in, w, nil, 1, 0)
	want := []float32{12, 16, 24, 28}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("Conv2D[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
}

func TestConv2DPaddingAndBias(t *testing.T) {
	in := Ones(1, 1, 2, 2)
	w := Ones(1, 1, 3, 3)
	bias := FromSlice([]float32{10}, 1)
	out := Conv2D(in, w, bias, 1, 1)
	if out.Dim(2) != 2 || out.Dim(3) != 2 {
		t.Fatalf("padded output shape = %v", out.Shape())
	}
	// Center-of-corner window covers all 4 ones.
	if out.At(0, 0, 0, 0) != 14 {
		t.Fatalf("Conv2D with pad+bias = %v", out.At(0, 0, 0, 0))
	}
}

func TestConv2DStride(t *testing.T) {
	in := Ones(1, 1, 4, 4)
	w := Ones(1, 1, 2, 2)
	out := Conv2D(in, w, nil, 2, 0)
	if out.Dim(2) != 2 || out.Dim(3) != 2 {
		t.Fatalf("strided output shape = %v", out.Shape())
	}
	for _, v := range out.Data() {
		if v != 4 {
			t.Fatalf("strided conv value = %v, want 4", v)
		}
	}
}

func TestPooling(t *testing.T) {
	in := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 1, 1, 4, 4)
	mp := MaxPool2D(in, 2, 2)
	if mp.At(0, 0, 0, 0) != 6 || mp.At(0, 0, 1, 1) != 16 {
		t.Fatalf("MaxPool = %v", mp.Data())
	}
	ap := AvgPool2D(in, 2, 2)
	if !almostEq(ap.At(0, 0, 0, 0), 3.5, 1e-6) {
		t.Fatalf("AvgPool = %v", ap.Data())
	}
	gap := GlobalAvgPool2D(in)
	if !almostEq(gap.At(0, 0), 8.5, 1e-6) {
		t.Fatalf("GlobalAvgPool = %v", gap.Data())
	}
}

func TestReduceAxes(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	s0 := SumAxis(a, 0)
	if s0.At(0) != 5 || s0.At(1) != 7 || s0.At(2) != 9 {
		t.Fatalf("SumAxis0 = %v", s0.Data())
	}
	s1 := SumAxis(a, 1)
	if s1.At(0) != 6 || s1.At(1) != 15 {
		t.Fatalf("SumAxis1 = %v", s1.Data())
	}
	m := MeanAxis(a, 1)
	if m.At(0) != 2 || m.At(1) != 5 {
		t.Fatalf("MeanAxis = %v", m.Data())
	}
	mx := MaxAxis(a, 0)
	if mx.At(0) != 4 || mx.At(2) != 6 {
		t.Fatalf("MaxAxis = %v", mx.Data())
	}
	mn := MinAxis(a, 1)
	if mn.At(0) != 1 || mn.At(1) != 4 {
		t.Fatalf("MinAxis = %v", mn.Data())
	}
	p := ProdAxis(a, 1)
	if p.At(0) != 6 || p.At(1) != 120 {
		t.Fatalf("ProdAxis = %v", p.Data())
	}
}

func TestArgMax(t *testing.T) {
	a := FromSlice([]float32{1, 9, 3}, 3)
	if ArgMax(a) != 1 {
		t.Fatalf("ArgMax = %d", ArgMax(a))
	}
	b := FromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	am := ArgMaxAxis(b, 1)
	if am.At(0) != 1 || am.At(1) != 0 {
		t.Fatalf("ArgMaxAxis = %v", am.Data())
	}
}

func TestSoftmaxProperties(t *testing.T) {
	g := NewRNG(7)
	a := g.Normal(0, 3, 4, 10)
	s := Softmax(a)
	for r := 0; r < 4; r++ {
		var sum float32
		for c := 0; c < 10; c++ {
			v := s.At(r, c)
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += v
		}
		if !almostEq(sum, 1, 1e-4) {
			t.Fatalf("softmax row sum = %v", sum)
		}
	}
	ls := LogSoftmax(a)
	for i, v := range ls.Data() {
		if !almostEq(v, float32(math.Log(float64(s.Data()[i]))), 1e-4) {
			t.Fatal("LogSoftmax != log(Softmax)")
		}
	}
}

func TestNormalizeAndL1(t *testing.T) {
	a := FromSlice([]float32{3, 4}, 2)
	n := Normalize(a)
	if !almostEq(n.Norm(), 1, 1e-6) {
		t.Fatalf("Normalize norm = %v", n.Norm())
	}
	l := NormalizeL1(a)
	if !almostEq(l.Sum(), 1, 1e-6) {
		t.Fatalf("NormalizeL1 sum = %v", l.Sum())
	}
	z := Normalize(Zeros(3))
	if z.Norm() != 0 {
		t.Fatal("Normalize of zero must stay zero")
	}
}

func TestTopK(t *testing.T) {
	a := FromSlice([]float32{5, 1, 9, 3}, 4)
	idx := TopK(a, 2)
	if len(idx) != 2 || idx[0] != 2 || idx[1] != 0 {
		t.Fatalf("TopK = %v", idx)
	}
	all := TopK(a, 10)
	if len(all) != 4 {
		t.Fatalf("TopK clamp = %v", all)
	}
}

func TestTransposePermute(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	tr := Transpose(a)
	if tr.Dim(0) != 3 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("Transpose = %v %v", tr.Shape(), tr.Data())
	}
	p := Permute(a, 1, 0)
	for i := range tr.Data() {
		if p.Data()[i] != tr.Data()[i] {
			t.Fatal("Permute(1,0) != Transpose")
		}
	}
	b := NewRNG(3).Normal(0, 1, 2, 3, 4)
	pp := Permute(Permute(b, 2, 0, 1), 1, 2, 0)
	for i := range b.Data() {
		if pp.Data()[i] != b.Data()[i] {
			t.Fatal("Permute roundtrip failed")
		}
	}
}

func TestConcatStackSlice(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 1, 2)
	b := FromSlice([]float32{3, 4}, 1, 2)
	c0 := Concat(0, a, b)
	if c0.Dim(0) != 2 || c0.At(1, 1) != 4 {
		t.Fatalf("Concat axis0 = %v %v", c0.Shape(), c0.Data())
	}
	c1 := Concat(1, a, b)
	if c1.Dim(1) != 4 || c1.At(0, 3) != 4 {
		t.Fatalf("Concat axis1 = %v %v", c1.Shape(), c1.Data())
	}
	st := Stack(a.Flatten(), b.Flatten())
	if st.Dim(0) != 2 || st.At(1, 0) != 3 {
		t.Fatalf("Stack = %v", st.Data())
	}
	sl := Slice(c0, 1, 2)
	if sl.Dim(0) != 1 || sl.At(0, 0) != 3 {
		t.Fatalf("Slice = %v", sl.Data())
	}
	r := Row(c0, 0)
	if r.Rank() != 1 || r.At(1) != 2 {
		t.Fatalf("Row = %v", r.Data())
	}
}

func TestGatherMaskedSelect(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	gth := Gather(a, []int{2, 0, 2})
	if gth.Dim(0) != 3 || gth.At(0, 0) != 5 || gth.At(1, 1) != 2 {
		t.Fatalf("Gather = %v", gth.Data())
	}
	mask := FromSlice([]float32{1, 0, 0, 1, 1, 0}, 3, 2)
	ms := MaskedSelect(a, mask)
	if ms.Size() != 3 || ms.At(0) != 1 || ms.At(1) != 4 || ms.At(2) != 5 {
		t.Fatalf("MaskedSelect = %v", ms.Data())
	}
	empty := MaskedSelect(a, Zeros(3, 2))
	if empty.Size() != 0 {
		t.Fatalf("MaskedSelect empty = %v", empty.Data())
	}
}

func TestPad2DRollOneHot(t *testing.T) {
	in := Ones(1, 1, 2, 2)
	p := Pad2D(in, 1)
	if p.Dim(2) != 4 || p.At(0, 0, 0, 0) != 0 || p.At(0, 0, 1, 1) != 1 {
		t.Fatalf("Pad2D = %v", p.Data())
	}
	a := FromSlice([]float32{1, 2, 3}, 3)
	r := Roll(a, 1)
	if r.At(0) != 3 || r.At(1) != 1 {
		t.Fatalf("Roll = %v", r.Data())
	}
	rn := Roll(a, -1)
	if rn.At(0) != 2 {
		t.Fatalf("Roll(-1) = %v", rn.Data())
	}
	oh := OneHot(2, 4)
	if oh.At(2) != 1 || oh.Sum() != 1 {
		t.Fatalf("OneHot = %v", oh.Data())
	}
}

func TestCircularConvKnown(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	c := CircularConv(a, b)
	// out[0]=1*4+2*6+3*5=31, out[1]=1*5+2*4+3*6=31, out[2]=1*6+2*5+3*4=28
	want := []float32{31, 31, 28}
	for i, w := range want {
		if !almostEq(c.Data()[i], w, 1e-4) {
			t.Fatalf("CircularConv[%d] = %v, want %v", i, c.Data()[i], w)
		}
	}
}

func TestCircularConvFFTMatchesDirect(t *testing.T) {
	g := NewRNG(11)
	n := 256 // power of two, above fftThreshold
	a := g.Normal(0, 1, n)
	b := g.Normal(0, 1, n)
	direct := circularConvDirect(Serial, a, b)
	viaFFT := circularConvFFT(Serial, a, b)
	for i := 0; i < n; i++ {
		if !almostEq(direct.Data()[i], viaFFT.Data()[i], 1e-3) {
			t.Fatalf("FFT path diverges at %d: %v vs %v", i, direct.Data()[i], viaFFT.Data()[i])
		}
	}
}

func TestCircularCorrUnbinds(t *testing.T) {
	g := NewRNG(13)
	n := 1024
	x := g.HRRVector(n)
	y := g.HRRVector(n)
	bound := CircularConv(x, y)
	recovered := CircularCorr(x, bound) // should approximate y
	// Circular correlation is only the approximate inverse of circular
	// convolution; for random HRR vectors the expected recovered cosine is
	// ≈ 1/√2. Require comfortably above chance.
	sim := CosineSimilarity(recovered, y)
	if sim < 0.55 {
		t.Fatalf("HRR unbind similarity = %v, want > 0.55", sim)
	}
	// And it should not look like an unrelated vector.
	z := g.HRRVector(n)
	if s := CosineSimilarity(recovered, z); s > 0.3 || s < -0.3 {
		t.Fatalf("unbind leaked similarity %v to unrelated vector", s)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42).Normal(0, 1, 16)
	b := NewRNG(42).Normal(0, 1, 16)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("same seed must give same draws")
		}
	}
	c := NewRNG(43).Normal(0, 1, 16)
	same := true
	for i := range a.Data() {
		if a.Data()[i] != c.Data()[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical draws")
	}
}

func TestBipolarAndBinary(t *testing.T) {
	g := NewRNG(5)
	b := g.Bipolar(1000)
	for _, v := range b.Data() {
		if v != 1 && v != -1 {
			t.Fatalf("Bipolar drew %v", v)
		}
	}
	bin := g.Binary(0.3, 10000)
	frac := bin.Sum() / 10000
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("Binary(0.3) density = %v", frac)
	}
}

func TestCostFunctions(t *testing.T) {
	if FlopsMatMul(2, 3, 4) != 48 {
		t.Fatalf("FlopsMatMul = %d", FlopsMatMul(2, 3, 4))
	}
	if BytesMatMul(2, 3, 4) != 4*(6+12+8) {
		t.Fatalf("BytesMatMul = %d", BytesMatMul(2, 3, 4))
	}
	if FlopsConv2D(1, 3, 8, 5, 5, 3, 3) != 2*8*25*27 {
		t.Fatalf("FlopsConv2D = %d", FlopsConv2D(1, 3, 8, 5, 5, 3, 3))
	}
	if FlopsCircularConvDirect(10) != 200 {
		t.Fatalf("FlopsCircularConvDirect = %d", FlopsCircularConvDirect(10))
	}
	if FlopsCircularConvFFT(8) != 3*5*8*3+48 {
		t.Fatalf("FlopsCircularConvFFT = %d", FlopsCircularConvFFT(8))
	}
	ai := ArithmeticIntensity(100, 50)
	if ai != 2 {
		t.Fatalf("ArithmeticIntensity = %v", ai)
	}
	if ArithmeticIntensity(5, 0) != 0 {
		t.Fatal("zero-byte intensity must be 0")
	}
}
