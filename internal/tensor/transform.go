package tensor

import "fmt"

// Transpose returns the transpose of a rank-2 tensor, materialized.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose needs rank-2 input, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// Permute reorders the axes of a according to perm (a permutation of
// 0..rank-1) and materializes the result.
func Permute(a *Tensor, perm ...int) *Tensor {
	r := a.Rank()
	if len(perm) != r {
		panic(fmt.Sprintf("tensor: Permute needs %d axes, got %v", r, perm))
	}
	seen := make([]bool, r)
	outShape := make([]int, r)
	for i, p := range perm {
		if p < 0 || p >= r || seen[p] {
			panic(fmt.Sprintf("tensor: Permute invalid permutation %v for rank %d", perm, r))
		}
		seen[p] = true
		outShape[i] = a.shape[p]
	}
	out := New(outShape...)

	inStrides := make([]int, r)
	s := 1
	for i := r - 1; i >= 0; i-- {
		inStrides[i] = s
		s *= a.shape[i]
	}
	// Walk the output in order, computing the source offset from permuted coords.
	idx := make([]int, r)
	for o := range out.data {
		src := 0
		for i := 0; i < r; i++ {
			src += idx[i] * inStrides[perm[i]]
		}
		out.data[o] = a.data[src]
		for i := r - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < outShape[i] {
				break
			}
			idx[i] = 0
		}
	}
	return out
}

// Concat concatenates tensors along the given axis. All inputs must agree on
// every other dimension.
func Concat(axis int, ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Concat of no tensors")
	}
	r := ts[0].Rank()
	if axis < 0 || axis >= r {
		panic(fmt.Sprintf("tensor: Concat axis %d out of range for rank %d", axis, r))
	}
	outShape := append([]int(nil), ts[0].shape...)
	total := ts[0].shape[axis]
	for _, t := range ts[1:] {
		if t.Rank() != r {
			panic("tensor: Concat rank mismatch")
		}
		for i := 0; i < r; i++ {
			if i != axis && t.shape[i] != outShape[i] {
				panic(fmt.Sprintf("tensor: Concat shape mismatch %v vs %v on axis %d", outShape, t.shape, i))
			}
		}
		total += t.shape[axis]
	}
	outShape[axis] = total
	out := New(outShape...)

	outer, inner := 1, 1
	for i := 0; i < axis; i++ {
		outer *= outShape[i]
	}
	for i := axis + 1; i < r; i++ {
		inner *= outShape[i]
	}
	rowLen := total * inner
	off := 0
	for _, t := range ts {
		tAxis := t.shape[axis]
		for o := 0; o < outer; o++ {
			src := t.data[o*tAxis*inner : (o+1)*tAxis*inner]
			dst := out.data[o*rowLen+off : o*rowLen+off+tAxis*inner]
			copy(dst, src)
		}
		off += tAxis * inner
	}
	return out
}

// Stack stacks equal-shape tensors along a new leading axis.
func Stack(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Stack of no tensors")
	}
	shape := append([]int{len(ts)}, ts[0].shape...)
	out := New(shape...)
	n := ts[0].Size()
	for i, t := range ts {
		if !t.SameShape(ts[0]) {
			panic(fmt.Sprintf("tensor: Stack shape mismatch %v vs %v", t.shape, ts[0].shape))
		}
		copy(out.data[i*n:(i+1)*n], t.data)
	}
	return out
}

// Slice extracts rows [lo,hi) along the leading axis, materialized.
func Slice(a *Tensor, lo, hi int) *Tensor {
	if a.Rank() == 0 {
		panic("tensor: Slice of scalar")
	}
	d0 := a.shape[0]
	if lo < 0 || hi > d0 || lo > hi {
		panic(fmt.Sprintf("tensor: Slice [%d,%d) out of range for leading dim %d", lo, hi, d0))
	}
	inner := a.Size() / max(d0, 1)
	outShape := append([]int{hi - lo}, a.shape[1:]...)
	out := New(outShape...)
	copy(out.data, a.data[lo*inner:hi*inner])
	return out
}

// SliceAxis returns a[..., lo:hi, ...] along the given axis, materialized.
// It generalizes Slice to any axis, which batched workloads need to carve
// per-item panels out of a (batch, panels, ...) embedding block.
func SliceAxis(a *Tensor, axis, lo, hi int) *Tensor {
	r := a.Rank()
	if axis < 0 || axis >= r {
		panic(fmt.Sprintf("tensor: SliceAxis axis %d out of range for rank %d", axis, r))
	}
	d := a.shape[axis]
	if lo < 0 || hi > d || lo > hi {
		panic(fmt.Sprintf("tensor: SliceAxis [%d,%d) out of range for dim %d", lo, hi, d))
	}
	outer := 1
	for i := 0; i < axis; i++ {
		outer *= a.shape[i]
	}
	inner := 1
	for i := axis + 1; i < r; i++ {
		inner *= a.shape[i]
	}
	outShape := append([]int(nil), a.shape...)
	outShape[axis] = hi - lo
	out := New(outShape...)
	for o := 0; o < outer; o++ {
		src := (o*d + lo) * inner
		dst := o * (hi - lo) * inner
		copy(out.data[dst:dst+(hi-lo)*inner], a.data[src:src+(hi-lo)*inner])
	}
	return out
}

// Row returns row i of a rank-≥1 tensor as a tensor with the leading axis removed.
func Row(a *Tensor, i int) *Tensor {
	s := Slice(a, i, i+1)
	return s.Reshape(a.shape[1:]...)
}

// Gather selects rows of a (along the leading axis) by index, producing
// len(idx) rows. It models the irregular-access data-transformation
// operators prominent in symbolic workloads.
func Gather(a *Tensor, idx []int) *Tensor {
	if a.Rank() == 0 {
		panic("tensor: Gather of scalar")
	}
	d0 := a.shape[0]
	inner := a.Size() / max(d0, 1)
	outShape := append([]int{len(idx)}, a.shape[1:]...)
	out := New(outShape...)
	for o, i := range idx {
		if i < 0 || i >= d0 {
			panic(fmt.Sprintf("tensor: Gather index %d out of range for leading dim %d", i, d0))
		}
		copy(out.data[o*inner:(o+1)*inner], a.data[i*inner:(i+1)*inner])
	}
	return out
}

// MaskedSelect returns a flat tensor of the elements of a where mask is
// nonzero. mask must have a's shape.
func MaskedSelect(a, mask *Tensor) *Tensor {
	if !a.SameShape(mask) {
		panic(fmt.Sprintf("tensor: MaskedSelect shape mismatch %v vs %v", a.shape, mask.shape))
	}
	var sel []float32
	for i, m := range mask.data {
		if m != 0 {
			sel = append(sel, a.data[i])
		}
	}
	if sel == nil {
		sel = []float32{}
	}
	return FromSlice(sel, len(sel))
}

// Pad2D zero-pads the last two axes of an N×C×H×W tensor by p on every side.
func Pad2D(a *Tensor, p int) *Tensor {
	if a.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Pad2D needs rank-4 input, got %v", a.shape))
	}
	if p == 0 {
		return a.Clone()
	}
	n, c, h, w := a.shape[0], a.shape[1], a.shape[2], a.shape[3]
	out := New(n, c, h+2*p, w+2*p)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				src := a.data[((b*c+ch)*h+y)*w : ((b*c+ch)*h+y+1)*w]
				dstBase := ((b*c+ch)*(h+2*p)+y+p)*(w+2*p) + p
				copy(out.data[dstBase:dstBase+w], src)
			}
		}
	}
	return out
}

// Roll circularly shifts a flat tensor right by k positions (k may be
// negative or exceed the length).
func Roll(a *Tensor, k int) *Tensor {
	n := a.Size()
	out := New(a.shape...)
	if n == 0 {
		return out
	}
	k = ((k % n) + n) % n
	for i := 0; i < n; i++ {
		out.data[(i+k)%n] = a.data[i]
	}
	return out
}

// OneHot returns a length-n vector with a 1 at index i.
func OneHot(i, n int) *Tensor {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("tensor: OneHot index %d out of range [0,%d)", i, n))
	}
	t := New(n)
	t.data[i] = 1
	return t
}
