package tensor

import (
	"fmt"
	"testing"
)

// Naive-vs-tiled kernel benchmarks over the workload suite's real shapes.
// The ns/op ratios here are what the dispatch-table thresholds in
// dispatch.go encode and what CI's kernel smoke job asserts; the full
// roofline-tracked table is regenerated with `nsbench -kernel-bench`
// (see BENCH_kernels.json).

var gemmBenchShapes = []struct {
	name    string
	m, k, n int
}{
	{"256x256x256", 256, 256, 256},
	{"512x512x512", 512, 512, 512},
	{"nvsa-head-16x16x4096", 16, 16, 4096},
	{"nvsa-codebook-1x8x4096", 1, 8, 4096},
}

func BenchmarkGemmKernels(b *testing.B) {
	for _, s := range gemmBenchShapes {
		g := NewRNG(1)
		a, bb := g.Normal(0, 1, s.m, s.k), g.Normal(0, 1, s.k, s.n)
		for _, kern := range []Kernel{KernelNaive, KernelTiled} {
			b.Run(fmt.Sprintf("%s/%s", s.name, kern), func(b *testing.B) {
				b.SetBytes(2 * int64(s.m) * int64(s.k) * int64(s.n))
				for i := 0; i < b.N; i++ {
					MatMulKernelOn(Serial, kern, a, bb)
				}
			})
		}
	}
}

var convBenchShapes = []struct {
	name                          string
	n, cin, cout, hw, stride, pad int
}{
	{"nvsa-conv1-1x1x8x32", 1, 1, 8, 32, 1, 1},
	{"nvsa-conv2-1x8x16x32", 1, 8, 16, 32, 1, 1},
	{"vsait-enc-1x3x16x32", 1, 3, 16, 32, 1, 1},
	{"vsait-mid-1x16x16x32", 1, 16, 16, 32, 1, 1},
}

func BenchmarkConvKernels(b *testing.B) {
	for _, s := range convBenchShapes {
		g := NewRNG(2)
		in := g.Normal(0, 1, s.n, s.cin, s.hw, s.hw)
		w := g.Normal(0, 1, s.cout, s.cin, 3, 3)
		bias := g.Normal(0, 1, s.cout)
		for _, kern := range []Kernel{KernelNaive, KernelTiled} {
			b.Run(fmt.Sprintf("%s/%s", s.name, kern), func(b *testing.B) {
				hout := (s.hw+2*s.pad-3)/s.stride + 1
				b.SetBytes(2 * int64(s.n) * int64(s.cin) * int64(s.cout) * int64(hout) * int64(hout) * 9)
				for i := 0; i < b.N; i++ {
					Conv2DKernelOn(Serial, kern, in, w, bias, s.stride, s.pad)
				}
			})
		}
	}
}
