package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/neurosym/nsbench/internal/backend"
)

// The chunked kernels promise bit-identical results on every Runner. These
// property tests drive each kernel family with random shapes, contents,
// and worker counts and require exact float32 equality between the serial
// path and a parallel backend.

// bitsEqual reports exact element equality (NaN-safe via bit comparison is
// unnecessary here: inputs are finite by construction).
func bitsEqual(t *testing.T, name string, serial, parallel *Tensor) bool {
	t.Helper()
	if !serial.SameShape(parallel) {
		t.Errorf("%s: shape %v vs %v", name, serial.Shape(), parallel.Shape())
		return false
	}
	for i, v := range serial.Data() {
		if parallel.Data()[i] != v {
			t.Errorf("%s: element %d differs: serial %v parallel %v", name, i, v, parallel.Data()[i])
			return false
		}
	}
	return true
}

// randTensor fills a tensor with reproducible values drawn from rng.
func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	out := New(shape...)
	for i := range out.Data() {
		out.Data()[i] = float32(rng.NormFloat64())
	}
	return out
}

// workerPool builds parallel backends of assorted widths once for all
// property iterations.
var equivWorkers = []int{2, 3, 4, 7}

func withBackends(t *testing.T, f func(t *testing.T, be *backend.Parallel)) {
	t.Helper()
	for _, w := range equivWorkers {
		be := backend.NewParallel(w)
		f(t, be)
		be.Close()
		if t.Failed() {
			t.Fatalf("mismatch at %d workers", w)
		}
	}
}

func equivCfg(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(seed))}
}

func TestMatMulBitIdenticalAcrossBackends(t *testing.T) {
	withBackends(t, func(t *testing.T, be *backend.Parallel) {
		prop := func(m8, k8, n8 uint8, seed int64) bool {
			m, k, n := int(m8%40)+1, int(k8%40)+1, int(n8%40)+1
			rng := rand.New(rand.NewSource(seed))
			a, b := randTensor(rng, m, k), randTensor(rng, k, n)
			return bitsEqual(t, "MatMul", MatMulOn(Serial, a, b), MatMulOn(be, a, b))
		}
		if err := quick.Check(prop, equivCfg(1)); err != nil {
			t.Error(err)
		}
	})
}

func TestMatVecBitIdenticalAcrossBackends(t *testing.T) {
	withBackends(t, func(t *testing.T, be *backend.Parallel) {
		prop := func(m8, k8 uint8, seed int64) bool {
			m, k := int(m8%64)+1, int(k8%64)+1
			rng := rand.New(rand.NewSource(seed))
			a, x := randTensor(rng, m, k), randTensor(rng, k)
			return bitsEqual(t, "MatVec", MatVecOn(Serial, a, x), MatVecOn(be, a, x))
		}
		if err := quick.Check(prop, equivCfg(2)); err != nil {
			t.Error(err)
		}
	})
}

func TestBatchMatMulBitIdenticalAcrossBackends(t *testing.T) {
	withBackends(t, func(t *testing.T, be *backend.Parallel) {
		prop := func(b8, m8, k8, n8 uint8, seed int64) bool {
			bs, m, k, n := int(b8%6)+1, int(m8%16)+1, int(k8%16)+1, int(n8%16)+1
			rng := rand.New(rand.NewSource(seed))
			a, b := randTensor(rng, bs, m, k), randTensor(rng, bs, k, n)
			return bitsEqual(t, "BatchMatMul", BatchMatMulOn(Serial, a, b), BatchMatMulOn(be, a, b))
		}
		if err := quick.Check(prop, equivCfg(3)); err != nil {
			t.Error(err)
		}
	})
}

func TestConv2DBitIdenticalAcrossBackends(t *testing.T) {
	withBackends(t, func(t *testing.T, be *backend.Parallel) {
		prop := func(n8, cin8, cout8, hw8 uint8, seed int64) bool {
			n, cin, cout := int(n8%3)+1, int(cin8%4)+1, int(cout8%6)+1
			hw := int(hw8%12) + 3
			rng := rand.New(rand.NewSource(seed))
			in := randTensor(rng, n, cin, hw, hw)
			w := randTensor(rng, cout, cin, 3, 3)
			bias := randTensor(rng, cout)
			return bitsEqual(t, "Conv2D",
				Conv2DOn(Serial, in, w, bias, 1, 1),
				Conv2DOn(be, in, w, bias, 1, 1))
		}
		if err := quick.Check(prop, equivCfg(4)); err != nil {
			t.Error(err)
		}
	})
}

func TestPoolingBitIdenticalAcrossBackends(t *testing.T) {
	withBackends(t, func(t *testing.T, be *backend.Parallel) {
		prop := func(n8, c8, hw8 uint8, seed int64) bool {
			n, c, hw := int(n8%3)+1, int(c8%5)+1, int(hw8%12)+4
			rng := rand.New(rand.NewSource(seed))
			in := randTensor(rng, n, c, hw, hw)
			ok := bitsEqual(t, "MaxPool2D", MaxPool2DOn(Serial, in, 2, 2), MaxPool2DOn(be, in, 2, 2))
			ok = ok && bitsEqual(t, "AvgPool2D", AvgPool2DOn(Serial, in, 2, 2), AvgPool2DOn(be, in, 2, 2))
			return ok && bitsEqual(t, "GlobalAvgPool2D", GlobalAvgPool2DOn(Serial, in), GlobalAvgPool2DOn(be, in))
		}
		if err := quick.Check(prop, equivCfg(5)); err != nil {
			t.Error(err)
		}
	})
}

func TestEltwiseBitIdenticalAcrossBackends(t *testing.T) {
	withBackends(t, func(t *testing.T, be *backend.Parallel) {
		prop := func(n16 uint16, seed int64) bool {
			n := int(n16%50000) + 1
			rng := rand.New(rand.NewSource(seed))
			a, b := randTensor(rng, n), randTensor(rng, n)
			ok := bitsEqual(t, "Add", AddOn(Serial, a, b), AddOn(be, a, b))
			ok = ok && bitsEqual(t, "Mul", MulOn(Serial, a, b), MulOn(be, a, b))
			ok = ok && bitsEqual(t, "Exp", ExpOn(Serial, a), ExpOn(be, a))
			ok = ok && bitsEqual(t, "Sigmoid", SigmoidOn(Serial, a), SigmoidOn(be, a))
			return ok && bitsEqual(t, "ReLU", ReLUOn(Serial, a), ReLUOn(be, a))
		}
		if err := quick.Check(prop, equivCfg(6)); err != nil {
			t.Error(err)
		}
	})
}

func TestReduceBitIdenticalAcrossBackends(t *testing.T) {
	withBackends(t, func(t *testing.T, be *backend.Parallel) {
		prop := func(o8, n8, i8, ax8 uint8, seed int64) bool {
			outer, n, inner := int(o8%12)+1, int(n8%12)+1, int(i8%12)+1
			axis := int(ax8 % 3)
			rng := rand.New(rand.NewSource(seed))
			a := randTensor(rng, outer, n, inner)
			ok := bitsEqual(t, "SumAxis", SumAxisOn(Serial, a, axis), SumAxisOn(be, a, axis))
			ok = ok && bitsEqual(t, "MeanAxis", MeanAxisOn(Serial, a, axis), MeanAxisOn(be, a, axis))
			ok = ok && bitsEqual(t, "MaxAxis", MaxAxisOn(Serial, a, axis), MaxAxisOn(be, a, axis))
			ok = ok && bitsEqual(t, "ArgMaxAxis", ArgMaxAxisOn(Serial, a, axis), ArgMaxAxisOn(be, a, axis))
			return ok && bitsEqual(t, "Softmax", SoftmaxOn(Serial, a), SoftmaxOn(be, a))
		}
		if err := quick.Check(prop, equivCfg(7)); err != nil {
			t.Error(err)
		}
	})
}

func TestCircularConvBitIdenticalAcrossBackends(t *testing.T) {
	withBackends(t, func(t *testing.T, be *backend.Parallel) {
		// Cover the direct path (short, non-power-of-two) and the FFT path
		// (power-of-two above the threshold).
		for _, n := range []int{17, 63, 128, 1024} {
			rng := rand.New(rand.NewSource(int64(n)))
			a, b := randTensor(rng, n), randTensor(rng, n)
			if !bitsEqual(t, "CircularConv", CircularConvOn(Serial, a, b), CircularConvOn(be, a, b)) {
				return
			}
			if !bitsEqual(t, "CircularCorr", CircularCorrOn(Serial, a, b), CircularCorrOn(be, a, b)) {
				return
			}
		}
	})
}
