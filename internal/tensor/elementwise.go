package tensor

import (
	"fmt"
	"math"
)

// grainEltwise is the chunk grain for element-wise maps: a few flops per
// element means chunks must span thousands of elements to be worth a
// dispatch.
const grainEltwise = 8192

// binOpOn applies f element-wise to a and b, which must share a shape,
// chunked over the flat index space of r. Every element is independent, so
// chunked execution is trivially bit-identical to serial.
func binOpOn(r Runner, name string, a, b *Tensor, f func(x, y float32) float32) *Tensor {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", name, a.shape, b.shape))
	}
	out := New(a.shape...)
	ad, bd, od := a.data, b.data, out.data
	r.For(len(od), grainEltwise, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			od[i] = f(ad[i], bd[i])
		}
	})
	return out
}

// binOp is binOpOn on the inline runner.
func binOp(name string, a, b *Tensor, f func(x, y float32) float32) *Tensor {
	return binOpOn(Serial, name, a, b, f)
}

// unOpOn applies f element-wise to a, chunked on r.
func unOpOn(r Runner, a *Tensor, f func(x float32) float32) *Tensor {
	out := New(a.shape...)
	ad, od := a.data, out.data
	r.For(len(od), grainEltwise, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			od[i] = f(ad[i])
		}
	})
	return out
}

// unOp is unOpOn on the inline runner.
func unOp(a *Tensor, f func(x float32) float32) *Tensor { return unOpOn(Serial, a, f) }

func addf(x, y float32) float32 { return x + y }
func subf(x, y float32) float32 { return x - y }
func mulf(x, y float32) float32 { return x * y }
func divf(x, y float32) float32 { return x / y }

// Add returns a + b element-wise.
func Add(a, b *Tensor) *Tensor { return binOp("Add", a, b, addf) }

// AddOn is Add dispatched on r.
func AddOn(r Runner, a, b *Tensor) *Tensor { return binOpOn(r, "Add", a, b, addf) }

// Sub returns a - b element-wise.
func Sub(a, b *Tensor) *Tensor { return binOp("Sub", a, b, subf) }

// SubOn is Sub dispatched on r.
func SubOn(r Runner, a, b *Tensor) *Tensor { return binOpOn(r, "Sub", a, b, subf) }

// Mul returns the Hadamard (element-wise) product a ⊙ b.
func Mul(a, b *Tensor) *Tensor { return binOp("Mul", a, b, mulf) }

// MulOn is Mul dispatched on r.
func MulOn(r Runner, a, b *Tensor) *Tensor { return binOpOn(r, "Mul", a, b, mulf) }

// Div returns a / b element-wise. Division by zero follows IEEE semantics.
func Div(a, b *Tensor) *Tensor { return binOp("Div", a, b, divf) }

// DivOn is Div dispatched on r.
func DivOn(r Runner, a, b *Tensor) *Tensor { return binOpOn(r, "Div", a, b, divf) }

func minf(x, y float32) float32 {
	if x < y {
		return x
	}
	return y
}

func maxf(x, y float32) float32 {
	if x > y {
		return x
	}
	return y
}

// Minimum returns the element-wise minimum of a and b.
func Minimum(a, b *Tensor) *Tensor { return binOp("Minimum", a, b, minf) }

// MinimumOn is Minimum dispatched on r.
func MinimumOn(r Runner, a, b *Tensor) *Tensor { return binOpOn(r, "Minimum", a, b, minf) }

// Maximum returns the element-wise maximum of a and b.
func Maximum(a, b *Tensor) *Tensor { return binOp("Maximum", a, b, maxf) }

// MaximumOn is Maximum dispatched on r.
func MaximumOn(r Runner, a, b *Tensor) *Tensor { return binOpOn(r, "Maximum", a, b, maxf) }

// AddScalar returns a + s element-wise.
func AddScalar(a *Tensor, s float32) *Tensor { return AddScalarOn(Serial, a, s) }

// AddScalarOn is AddScalar dispatched on r.
func AddScalarOn(r Runner, a *Tensor, s float32) *Tensor {
	return unOpOn(r, a, func(x float32) float32 { return x + s })
}

// MulScalar returns a * s element-wise.
func MulScalar(a *Tensor, s float32) *Tensor { return MulScalarOn(Serial, a, s) }

// MulScalarOn is MulScalar dispatched on r.
func MulScalarOn(r Runner, a *Tensor, s float32) *Tensor {
	return unOpOn(r, a, func(x float32) float32 { return x * s })
}

func negf(x float32) float32 { return -x }

// Neg returns -a element-wise.
func Neg(a *Tensor) *Tensor { return unOp(a, negf) }

// NegOn is Neg dispatched on r.
func NegOn(r Runner, a *Tensor) *Tensor { return unOpOn(r, a, negf) }

func absf(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}

// Abs returns |a| element-wise.
func Abs(a *Tensor) *Tensor { return unOp(a, absf) }

// AbsOn is Abs dispatched on r.
func AbsOn(r Runner, a *Tensor) *Tensor { return unOpOn(r, a, absf) }

func signf(x float32) float32 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// Sign returns the sign of each element in {-1, 0, +1}.
func Sign(a *Tensor) *Tensor { return unOp(a, signf) }

// SignOn is Sign dispatched on r.
func SignOn(r Runner, a *Tensor) *Tensor { return unOpOn(r, a, signf) }

func expf(x float32) float32  { return float32(math.Exp(float64(x))) }
func logf(x float32) float32  { return float32(math.Log(float64(x))) }
func sqrtf(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// Exp returns e^a element-wise.
func Exp(a *Tensor) *Tensor { return unOp(a, expf) }

// ExpOn is Exp dispatched on r.
func ExpOn(r Runner, a *Tensor) *Tensor { return unOpOn(r, a, expf) }

// Log returns the natural logarithm element-wise.
func Log(a *Tensor) *Tensor { return unOp(a, logf) }

// LogOn is Log dispatched on r.
func LogOn(r Runner, a *Tensor) *Tensor { return unOpOn(r, a, logf) }

// Sqrt returns the square root element-wise.
func Sqrt(a *Tensor) *Tensor { return unOp(a, sqrtf) }

// SqrtOn is Sqrt dispatched on r.
func SqrtOn(r Runner, a *Tensor) *Tensor { return unOpOn(r, a, sqrtf) }

// Pow returns a^p element-wise.
func Pow(a *Tensor, p float32) *Tensor { return PowOn(Serial, a, p) }

// PowOn is Pow dispatched on r.
func PowOn(r Runner, a *Tensor, p float32) *Tensor {
	return unOpOn(r, a, func(x float32) float32 { return float32(math.Pow(float64(x), float64(p))) })
}

// Clamp limits every element to the range [lo, hi].
func Clamp(a *Tensor, lo, hi float32) *Tensor { return ClampOn(Serial, a, lo, hi) }

// ClampOn is Clamp dispatched on r.
func ClampOn(r Runner, a *Tensor, lo, hi float32) *Tensor {
	return unOpOn(r, a, func(x float32) float32 {
		if x < lo {
			return lo
		}
		if x > hi {
			return hi
		}
		return x
	})
}

func reluf(x float32) float32 {
	if x > 0 {
		return x
	}
	return 0
}

// ReLU returns max(0, a) element-wise.
func ReLU(a *Tensor) *Tensor { return unOp(a, reluf) }

// ReLUOn is ReLU dispatched on r.
func ReLUOn(r Runner, a *Tensor) *Tensor { return unOpOn(r, a, reluf) }

// LeakyReLU returns a where positive, alpha*a where negative.
func LeakyReLU(a *Tensor, alpha float32) *Tensor { return LeakyReLUOn(Serial, a, alpha) }

// LeakyReLUOn is LeakyReLU dispatched on r.
func LeakyReLUOn(r Runner, a *Tensor, alpha float32) *Tensor {
	return unOpOn(r, a, func(x float32) float32 {
		if x > 0 {
			return x
		}
		return alpha * x
	})
}

func sigmoidf(x float32) float32 { return float32(1 / (1 + math.Exp(-float64(x)))) }
func tanhf(x float32) float32    { return float32(math.Tanh(float64(x))) }

// Sigmoid returns 1/(1+e^-a) element-wise.
func Sigmoid(a *Tensor) *Tensor { return unOp(a, sigmoidf) }

// SigmoidOn is Sigmoid dispatched on r.
func SigmoidOn(r Runner, a *Tensor) *Tensor { return unOpOn(r, a, sigmoidf) }

// Tanh returns the hyperbolic tangent element-wise.
func Tanh(a *Tensor) *Tensor { return unOp(a, tanhf) }

// TanhOn is Tanh dispatched on r.
func TanhOn(r Runner, a *Tensor) *Tensor { return unOpOn(r, a, tanhf) }

func greaterf(x, y float32) float32 {
	if x > y {
		return 1
	}
	return 0
}

// Greater returns 1 where a > b and 0 elsewhere.
func Greater(a, b *Tensor) *Tensor { return binOp("Greater", a, b, greaterf) }

// GreaterOn is Greater dispatched on r.
func GreaterOn(r Runner, a, b *Tensor) *Tensor { return binOpOn(r, "Greater", a, b, greaterf) }

// Equal returns 1 where |a-b| <= eps and 0 elsewhere.
func Equal(a, b *Tensor, eps float32) *Tensor { return EqualOn(Serial, a, b, eps) }

// EqualOn is Equal dispatched on r.
func EqualOn(r Runner, a, b *Tensor, eps float32) *Tensor {
	return binOpOn(r, "Equal", a, b, func(x, y float32) float32 {
		d := x - y
		if d <= eps && d >= -eps {
			return 1
		}
		return 0
	})
}

// Where returns cond*a + (1-cond)*b, selecting a where cond is nonzero.
func Where(cond, a, b *Tensor) *Tensor { return WhereOn(Serial, cond, a, b) }

// WhereOn is Where dispatched on r.
func WhereOn(r Runner, cond, a, b *Tensor) *Tensor {
	if !cond.SameShape(a) || !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: Where shape mismatch %v %v %v", cond.shape, a.shape, b.shape))
	}
	out := New(a.shape...)
	r.For(len(out.data), grainEltwise, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if cond.data[i] != 0 {
				out.data[i] = a.data[i]
			} else {
				out.data[i] = b.data[i]
			}
		}
	})
	return out
}

// AXPY computes y += alpha*x in place (BLAS level-1 saxpy). It stays
// serial: in-place updates are cheap streaming passes.
func AXPY(alpha float32, x, y *Tensor) {
	if !x.SameShape(y) {
		panic(fmt.Sprintf("tensor: AXPY shape mismatch %v vs %v", x.shape, y.shape))
	}
	xd, yd := x.data, y.data
	for i := range yd {
		yd[i] += alpha * xd[i]
	}
}

// Dot returns the inner product of two tensors viewed as flat vectors.
// Single-accumulator reductions stay serial: splitting the accumulation
// would reorder float additions and break bit-identity across backends.
func Dot(a, b *Tensor) float32 {
	if a.Size() != b.Size() {
		panic(fmt.Sprintf("tensor: Dot size mismatch %d vs %d", a.Size(), b.Size()))
	}
	var s float64
	for i, v := range a.data {
		s += float64(v) * float64(b.data[i])
	}
	return float32(s)
}

// CosineSimilarity returns the cosine of the angle between a and b as flat
// vectors, or 0 if either has zero norm.
func CosineSimilarity(a, b *Tensor) float32 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}
