package tensor

import (
	"fmt"
	"math"
)

// binOp applies f element-wise to a and b, which must share a shape.
func binOp(name string, a, b *Tensor, f func(x, y float32) float32) *Tensor {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", name, a.shape, b.shape))
	}
	out := New(a.shape...)
	ad, bd, od := a.data, b.data, out.data
	for i := range od {
		od[i] = f(ad[i], bd[i])
	}
	return out
}

// unOp applies f element-wise to a.
func unOp(a *Tensor, f func(x float32) float32) *Tensor {
	out := New(a.shape...)
	ad, od := a.data, out.data
	for i := range od {
		od[i] = f(ad[i])
	}
	return out
}

// Add returns a + b element-wise.
func Add(a, b *Tensor) *Tensor {
	return binOp("Add", a, b, func(x, y float32) float32 { return x + y })
}

// Sub returns a - b element-wise.
func Sub(a, b *Tensor) *Tensor {
	return binOp("Sub", a, b, func(x, y float32) float32 { return x - y })
}

// Mul returns the Hadamard (element-wise) product a ⊙ b.
func Mul(a, b *Tensor) *Tensor {
	return binOp("Mul", a, b, func(x, y float32) float32 { return x * y })
}

// Div returns a / b element-wise. Division by zero follows IEEE semantics.
func Div(a, b *Tensor) *Tensor {
	return binOp("Div", a, b, func(x, y float32) float32 { return x / y })
}

// Minimum returns the element-wise minimum of a and b.
func Minimum(a, b *Tensor) *Tensor {
	return binOp("Minimum", a, b, func(x, y float32) float32 {
		if x < y {
			return x
		}
		return y
	})
}

// Maximum returns the element-wise maximum of a and b.
func Maximum(a, b *Tensor) *Tensor {
	return binOp("Maximum", a, b, func(x, y float32) float32 {
		if x > y {
			return x
		}
		return y
	})
}

// AddScalar returns a + s element-wise.
func AddScalar(a *Tensor, s float32) *Tensor {
	return unOp(a, func(x float32) float32 { return x + s })
}

// MulScalar returns a * s element-wise.
func MulScalar(a *Tensor, s float32) *Tensor {
	return unOp(a, func(x float32) float32 { return x * s })
}

// Neg returns -a element-wise.
func Neg(a *Tensor) *Tensor {
	return unOp(a, func(x float32) float32 { return -x })
}

// Abs returns |a| element-wise.
func Abs(a *Tensor) *Tensor {
	return unOp(a, func(x float32) float32 {
		if x < 0 {
			return -x
		}
		return x
	})
}

// Sign returns the sign of each element in {-1, 0, +1}.
func Sign(a *Tensor) *Tensor {
	return unOp(a, func(x float32) float32 {
		switch {
		case x > 0:
			return 1
		case x < 0:
			return -1
		default:
			return 0
		}
	})
}

// Exp returns e^a element-wise.
func Exp(a *Tensor) *Tensor {
	return unOp(a, func(x float32) float32 { return float32(math.Exp(float64(x))) })
}

// Log returns the natural logarithm element-wise.
func Log(a *Tensor) *Tensor {
	return unOp(a, func(x float32) float32 { return float32(math.Log(float64(x))) })
}

// Sqrt returns the square root element-wise.
func Sqrt(a *Tensor) *Tensor {
	return unOp(a, func(x float32) float32 { return float32(math.Sqrt(float64(x))) })
}

// Pow returns a^p element-wise.
func Pow(a *Tensor, p float32) *Tensor {
	return unOp(a, func(x float32) float32 { return float32(math.Pow(float64(x), float64(p))) })
}

// Clamp limits every element to the range [lo, hi].
func Clamp(a *Tensor, lo, hi float32) *Tensor {
	return unOp(a, func(x float32) float32 {
		if x < lo {
			return lo
		}
		if x > hi {
			return hi
		}
		return x
	})
}

// ReLU returns max(0, a) element-wise.
func ReLU(a *Tensor) *Tensor {
	return unOp(a, func(x float32) float32 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// LeakyReLU returns a where positive, alpha*a where negative.
func LeakyReLU(a *Tensor, alpha float32) *Tensor {
	return unOp(a, func(x float32) float32 {
		if x > 0 {
			return x
		}
		return alpha * x
	})
}

// Sigmoid returns 1/(1+e^-a) element-wise.
func Sigmoid(a *Tensor) *Tensor {
	return unOp(a, func(x float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(x))))
	})
}

// Tanh returns the hyperbolic tangent element-wise.
func Tanh(a *Tensor) *Tensor {
	return unOp(a, func(x float32) float32 { return float32(math.Tanh(float64(x))) })
}

// Greater returns 1 where a > b and 0 elsewhere.
func Greater(a, b *Tensor) *Tensor {
	return binOp("Greater", a, b, func(x, y float32) float32 {
		if x > y {
			return 1
		}
		return 0
	})
}

// Equal returns 1 where |a-b| <= eps and 0 elsewhere.
func Equal(a, b *Tensor, eps float32) *Tensor {
	return binOp("Equal", a, b, func(x, y float32) float32 {
		d := x - y
		if d <= eps && d >= -eps {
			return 1
		}
		return 0
	})
}

// Where returns cond*a + (1-cond)*b, selecting a where cond is nonzero.
func Where(cond, a, b *Tensor) *Tensor {
	if !cond.SameShape(a) || !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: Where shape mismatch %v %v %v", cond.shape, a.shape, b.shape))
	}
	out := New(a.shape...)
	for i := range out.data {
		if cond.data[i] != 0 {
			out.data[i] = a.data[i]
		} else {
			out.data[i] = b.data[i]
		}
	}
	return out
}

// AXPY computes y += alpha*x in place (BLAS level-1 saxpy).
func AXPY(alpha float32, x, y *Tensor) {
	if !x.SameShape(y) {
		panic(fmt.Sprintf("tensor: AXPY shape mismatch %v vs %v", x.shape, y.shape))
	}
	xd, yd := x.data, y.data
	for i := range yd {
		yd[i] += alpha * xd[i]
	}
}

// Dot returns the inner product of two tensors viewed as flat vectors.
func Dot(a, b *Tensor) float32 {
	if a.Size() != b.Size() {
		panic(fmt.Sprintf("tensor: Dot size mismatch %d vs %d", a.Size(), b.Size()))
	}
	var s float64
	for i, v := range a.data {
		s += float64(v) * float64(b.data[i])
	}
	return float32(s)
}

// CosineSimilarity returns the cosine of the angle between a and b as flat
// vectors, or 0 if either has zero norm.
func CosineSimilarity(a, b *Tensor) float32 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}
