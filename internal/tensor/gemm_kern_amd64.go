//go:build amd64

package tensor

// amd64 micro-kernels: the 4×4 and 1×4 GEMM register blocks run as SSE
// assembly (gemm_kern_amd64.s). One XMM register holds four output
// *columns* of one row, so each vector lane is exactly one output
// element's accumulator chain: additions happen per lane in ascending-p
// order with one float32 rounding per multiply-add, precisely the scalar
// contract. MULPS/ADDPS round each lane like MULSS/ADDSS, and the kernels
// deliberately avoid FMA — a fused multiply-add rounds once where the
// scalar kernels round twice, which would break bit-identity with the
// naive loops (Go does not fuse on amd64).
//
// SSE is in the amd64 baseline, so no feature detection is needed.

//go:noescape
func gemmKern4x4Asm(a0, a1, a2, a3, bp *float32, kc int, o0, o1, o2, o3 *float32, acc bool)

//go:noescape
func gemmKern1x4Asm(a, bp *float32, kc int, o *float32, acc bool)

func gemmKern4x4(a0, a1, a2, a3, bp []float32, kc int, o0, o1, o2, o3 []float32, acc bool) {
	_ = bp[kc*gemmNR-1] // the asm streams kc×NR packed elements
	gemmKern4x4Asm(&a0[0], &a1[0], &a2[0], &a3[0], &bp[0], kc, &o0[0], &o1[0], &o2[0], &o3[0], acc)
}

func gemmKern1x4(a, bp []float32, kc int, o []float32, acc bool) {
	_ = bp[kc*gemmNR-1]
	gemmKern1x4Asm(&a[0], &bp[0], kc, &o[0], acc)
}
