package tensor

import "fmt"

// Kernel selects a GEMM/conv kernel implementation. The zero value is
// KernelAuto, which consults the measured dispatch table below; the
// explicit values force one implementation, which is what the bit-identity
// tests and the kernel benchmarks use.
type Kernel int

// Kernel values.
const (
	// KernelAuto picks the implementation per shape from the measured
	// dispatch table. This is the default everywhere.
	KernelAuto Kernel = iota
	// KernelNaive forces the original direct loops.
	KernelNaive
	// KernelTiled forces the register-blocked, cache-tiled variants.
	KernelTiled
)

// Kernel names accepted by ParseKernel and the CLI -kernel flag.
const (
	KernelNameAuto  = "auto"
	KernelNameNaive = "naive"
	KernelNameTiled = "tiled"
)

// String returns the kernel's CLI name.
func (k Kernel) String() string {
	switch k {
	case KernelNaive:
		return KernelNameNaive
	case KernelTiled:
		return KernelNameTiled
	default:
		return KernelNameAuto
	}
}

// ParseKernel maps a CLI/config kernel name to a Kernel. The empty string
// selects KernelAuto, matching the zero value of config structs.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", KernelNameAuto:
		return KernelAuto, nil
	case KernelNameNaive:
		return KernelNaive, nil
	case KernelNameTiled:
		return KernelTiled, nil
	}
	return KernelAuto, fmt.Errorf("tensor: unknown kernel %q (want %q, %q or %q)", s, KernelNameAuto, KernelNameNaive, KernelNameTiled)
}

// The dispatch table: measured naive/tiled crossover points for the auto
// kernel. The thresholds come from the checked-in kernel benchmarks
// (BENCH_kernels.json, regenerated with `nsbench -kernel-bench`; see
// DESIGN.md §2.7 for the measurement table). Dispatch is a pure function
// of the operand shapes — never of timing — so the kernel an op runs on,
// and therefore its results and trace, are reproducible run to run.
const (
	// gemmTiledMinRows is the m floor for the tiled GEMM: below one
	// micro-tile of output rows the packed panel is amortized over too few
	// row passes and the naive row kernel wins (measured: m=1..3 skinny
	// products such as the NVSA codebook encode run ~1.2-2x faster naive).
	gemmTiledMinRows = gemmMR
	// gemmTiledMinCols is the n floor: narrower outputs than one micro-tile
	// column block leave the micro-kernel mostly in its scalar edge path.
	gemmTiledMinCols = gemmNR
	// gemmTiledMinFlops is the total-work floor (2·m·k·n). Under ~64 KFLOP
	// the pack/dispatch overhead dominates the measured crossover.
	gemmTiledMinFlops = 64 * 1024
	// convTiledMinWout is the output-width floor for the tiled conv: the
	// interior fast path register-blocks four output pixels, so rows
	// narrower than one block run entirely in the edge path and the naive
	// per-pixel loop is equally good.
	convTiledMinWout = 4
)

// GemmKernelFor reports the kernel the auto dispatch table selects for an
// m×k · k×n product (benchmark/report introspection).
func GemmKernelFor(m, k, n int) Kernel { return gemmKernel(KernelAuto, m, k, n) }

// ConvKernelFor reports the kernel the auto dispatch table selects for a
// convolution with output width wout.
func ConvKernelFor(wout int) Kernel { return convKernel(KernelAuto, wout) }

// gemmKernel resolves the kernel to run an m×k · k×n product on.
func gemmKernel(kern Kernel, m, k, n int) Kernel {
	if kern != KernelAuto {
		return kern
	}
	if m < gemmTiledMinRows || n < gemmTiledMinCols {
		return KernelNaive
	}
	if 2*int64(m)*int64(k)*int64(n) < gemmTiledMinFlops {
		return KernelNaive
	}
	return KernelTiled
}

// convKernel resolves the kernel to run a conv with the given output plane
// on. The tiled variant needs enough output width for its four-wide
// interior blocks to engage.
func convKernel(kern Kernel, wout int) Kernel {
	if kern != KernelAuto {
		return kern
	}
	if wout < convTiledMinWout {
		return KernelNaive
	}
	return KernelTiled
}
