package tensor

import (
	"fmt"
	"math"
)

// reduceAxis applies a reduction along axis of a, producing a tensor with
// that axis removed. init seeds the accumulator, step folds, finish maps the
// accumulator and reduced length to the output value.
func reduceAxis(a *Tensor, axis int, init float64, step func(acc float64, v float32) float64, finish func(acc float64, n int) float32) *Tensor {
	if axis < 0 || axis >= a.Rank() {
		panic(fmt.Sprintf("tensor: reduce axis %d out of range for shape %v", axis, a.shape))
	}
	outShape := make([]int, 0, a.Rank()-1)
	outShape = append(outShape, a.shape[:axis]...)
	outShape = append(outShape, a.shape[axis+1:]...)
	out := New(outShape...)

	// Decompose indexing as outer × axis × inner.
	outer, inner := 1, 1
	for i := 0; i < axis; i++ {
		outer *= a.shape[i]
	}
	for i := axis + 1; i < a.Rank(); i++ {
		inner *= a.shape[i]
	}
	n := a.shape[axis]
	for o := 0; o < outer; o++ {
		for in := 0; in < inner; in++ {
			acc := init
			base := o*n*inner + in
			for k := 0; k < n; k++ {
				acc = step(acc, a.data[base+k*inner])
			}
			out.data[o*inner+in] = finish(acc, n)
		}
	}
	return out
}

// SumAxis sums along the given axis, removing it.
func SumAxis(a *Tensor, axis int) *Tensor {
	return reduceAxis(a, axis, 0,
		func(acc float64, v float32) float64 { return acc + float64(v) },
		func(acc float64, _ int) float32 { return float32(acc) })
}

// MeanAxis averages along the given axis, removing it.
func MeanAxis(a *Tensor, axis int) *Tensor {
	return reduceAxis(a, axis, 0,
		func(acc float64, v float32) float64 { return acc + float64(v) },
		func(acc float64, n int) float32 { return float32(acc / float64(n)) })
}

// MaxAxis takes the maximum along the given axis, removing it.
func MaxAxis(a *Tensor, axis int) *Tensor {
	return reduceAxis(a, axis, math.Inf(-1),
		func(acc float64, v float32) float64 { return math.Max(acc, float64(v)) },
		func(acc float64, _ int) float32 { return float32(acc) })
}

// MinAxis takes the minimum along the given axis, removing it.
func MinAxis(a *Tensor, axis int) *Tensor {
	return reduceAxis(a, axis, math.Inf(1),
		func(acc float64, v float32) float64 { return math.Min(acc, float64(v)) },
		func(acc float64, _ int) float32 { return float32(acc) })
}

// ProdAxis multiplies along the given axis, removing it.
func ProdAxis(a *Tensor, axis int) *Tensor {
	return reduceAxis(a, axis, 1,
		func(acc float64, v float32) float64 { return acc * float64(v) },
		func(acc float64, _ int) float32 { return float32(acc) })
}

// ArgMax returns the index of the largest element of a flat tensor.
func ArgMax(a *Tensor) int {
	if a.Size() == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := a.data[0], 0
	for i, v := range a.data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// ArgMaxAxis returns, for each slice along axis, the index of its maximum.
// The result has the reduced shape and holds indices as float32.
func ArgMaxAxis(a *Tensor, axis int) *Tensor {
	if axis < 0 || axis >= a.Rank() {
		panic(fmt.Sprintf("tensor: ArgMaxAxis axis %d out of range for shape %v", axis, a.shape))
	}
	outShape := make([]int, 0, a.Rank()-1)
	outShape = append(outShape, a.shape[:axis]...)
	outShape = append(outShape, a.shape[axis+1:]...)
	out := New(outShape...)
	outer, inner := 1, 1
	for i := 0; i < axis; i++ {
		outer *= a.shape[i]
	}
	for i := axis + 1; i < a.Rank(); i++ {
		inner *= a.shape[i]
	}
	n := a.shape[axis]
	for o := 0; o < outer; o++ {
		for in := 0; in < inner; in++ {
			base := o*n*inner + in
			best, bi := a.data[base], 0
			for k := 1; k < n; k++ {
				if v := a.data[base+k*inner]; v > best {
					best, bi = v, k
				}
			}
			out.data[o*inner+in] = float32(bi)
		}
	}
	return out
}

// Softmax returns the softmax over the last axis of a, computed with the
// max-subtraction trick for numerical stability.
func Softmax(a *Tensor) *Tensor {
	if a.Rank() == 0 {
		return Ones()
	}
	n := a.shape[a.Rank()-1]
	rows := a.Size() / n
	out := New(a.shape...)
	for r := 0; r < rows; r++ {
		row := a.data[r*n : (r+1)*n]
		orow := out.data[r*n : (r+1)*n]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - m))
			orow[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range orow {
			orow[i] *= inv
		}
	}
	return out
}

// LogSoftmax returns log(softmax(a)) over the last axis, computed stably.
func LogSoftmax(a *Tensor) *Tensor {
	if a.Rank() == 0 {
		return Zeros()
	}
	n := a.shape[a.Rank()-1]
	rows := a.Size() / n
	out := New(a.shape...)
	for r := 0; r < rows; r++ {
		row := a.data[r*n : (r+1)*n]
		orow := out.data[r*n : (r+1)*n]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - m))
		}
		lse := float32(math.Log(sum)) + m
		for i, v := range row {
			orow[i] = v - lse
		}
	}
	return out
}

// Normalize scales a flat tensor to unit L2 norm; zero tensors are returned unchanged.
func Normalize(a *Tensor) *Tensor {
	n := a.Norm()
	if n == 0 {
		return a.Clone()
	}
	return MulScalar(a, 1/n)
}

// NormalizeL1 scales a to unit L1 mass (useful for probability vectors);
// zero tensors are returned unchanged.
func NormalizeL1(a *Tensor) *Tensor {
	var s float64
	for _, v := range a.data {
		s += math.Abs(float64(v))
	}
	if s == 0 {
		return a.Clone()
	}
	return MulScalar(a, float32(1/s))
}

// TopK returns the indices of the k largest elements of a flat tensor in
// descending order of value. k is clamped to the tensor size.
func TopK(a *Tensor, k int) []int {
	n := a.Size()
	if k > n {
		k = n
	}
	idx := make([]int, 0, k)
	// Simple selection; k is small in every call site.
	used := make([]bool, n)
	for c := 0; c < k; c++ {
		best := float32(math.Inf(-1))
		bi := -1
		for i, v := range a.data {
			if !used[i] && v > best {
				best, bi = v, i
			}
		}
		used[bi] = true
		idx = append(idx, bi)
	}
	return idx
}
