package tensor

import (
	"fmt"
	"math"
)

// reduceAxisOn applies a reduction along axis of a, producing a tensor with
// that axis removed, chunked on r over the output elements. Each output
// keeps its own accumulator folded in serial axis order, so chunking never
// reorders float operations. init seeds the accumulator, step folds, finish
// maps the accumulator and reduced length to the output value.
func reduceAxisOn(r Runner, a *Tensor, axis int, init float64, step func(acc float64, v float32) float64, finish func(acc float64, n int) float32) *Tensor {
	if axis < 0 || axis >= a.Rank() {
		panic(fmt.Sprintf("tensor: reduce axis %d out of range for shape %v", axis, a.shape))
	}
	outShape := make([]int, 0, a.Rank()-1)
	outShape = append(outShape, a.shape[:axis]...)
	outShape = append(outShape, a.shape[axis+1:]...)
	out := New(outShape...)

	// Decompose indexing as outer × axis × inner.
	outer, inner := 1, 1
	for i := 0; i < axis; i++ {
		outer *= a.shape[i]
	}
	for i := axis + 1; i < a.Rank(); i++ {
		inner *= a.shape[i]
	}
	n := a.shape[axis]
	r.For(outer*inner, grainFor(int64(n)), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			o, in := idx/inner, idx%inner
			acc := init
			base := o*n*inner + in
			for k := 0; k < n; k++ {
				acc = step(acc, a.data[base+k*inner])
			}
			out.data[idx] = finish(acc, n)
		}
	})
	return out
}

func sumStep(acc float64, v float32) float64  { return acc + float64(v) }
func maxStep(acc float64, v float32) float64  { return math.Max(acc, float64(v)) }
func minStep(acc float64, v float32) float64  { return math.Min(acc, float64(v)) }
func prodStep(acc float64, v float32) float64 { return acc * float64(v) }
func idFinish(acc float64, _ int) float32     { return float32(acc) }
func meanFinish(acc float64, n int) float32   { return float32(acc / float64(n)) }

// SumAxis sums along the given axis, removing it.
func SumAxis(a *Tensor, axis int) *Tensor { return SumAxisOn(Serial, a, axis) }

// SumAxisOn is SumAxis dispatched on r.
func SumAxisOn(r Runner, a *Tensor, axis int) *Tensor {
	return reduceAxisOn(r, a, axis, 0, sumStep, idFinish)
}

// MeanAxis averages along the given axis, removing it.
func MeanAxis(a *Tensor, axis int) *Tensor { return MeanAxisOn(Serial, a, axis) }

// MeanAxisOn is MeanAxis dispatched on r.
func MeanAxisOn(r Runner, a *Tensor, axis int) *Tensor {
	return reduceAxisOn(r, a, axis, 0, sumStep, meanFinish)
}

// MaxAxis takes the maximum along the given axis, removing it.
func MaxAxis(a *Tensor, axis int) *Tensor { return MaxAxisOn(Serial, a, axis) }

// MaxAxisOn is MaxAxis dispatched on r.
func MaxAxisOn(r Runner, a *Tensor, axis int) *Tensor {
	return reduceAxisOn(r, a, axis, math.Inf(-1), maxStep, idFinish)
}

// MinAxis takes the minimum along the given axis, removing it.
func MinAxis(a *Tensor, axis int) *Tensor { return MinAxisOn(Serial, a, axis) }

// MinAxisOn is MinAxis dispatched on r.
func MinAxisOn(r Runner, a *Tensor, axis int) *Tensor {
	return reduceAxisOn(r, a, axis, math.Inf(1), minStep, idFinish)
}

// ProdAxis multiplies along the given axis, removing it.
func ProdAxis(a *Tensor, axis int) *Tensor { return ProdAxisOn(Serial, a, axis) }

// ProdAxisOn is ProdAxis dispatched on r.
func ProdAxisOn(r Runner, a *Tensor, axis int) *Tensor {
	return reduceAxisOn(r, a, axis, 1, prodStep, idFinish)
}

// ArgMax returns the index of the largest element of a flat tensor.
func ArgMax(a *Tensor) int {
	if a.Size() == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := a.data[0], 0
	for i, v := range a.data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// ArgMaxAxis returns, for each slice along axis, the index of its maximum.
// The result has the reduced shape and holds indices as float32.
func ArgMaxAxis(a *Tensor, axis int) *Tensor { return ArgMaxAxisOn(Serial, a, axis) }

// ArgMaxAxisOn is ArgMaxAxis dispatched on r, chunked over output elements.
func ArgMaxAxisOn(r Runner, a *Tensor, axis int) *Tensor {
	if axis < 0 || axis >= a.Rank() {
		panic(fmt.Sprintf("tensor: ArgMaxAxis axis %d out of range for shape %v", axis, a.shape))
	}
	outShape := make([]int, 0, a.Rank()-1)
	outShape = append(outShape, a.shape[:axis]...)
	outShape = append(outShape, a.shape[axis+1:]...)
	out := New(outShape...)
	outer, inner := 1, 1
	for i := 0; i < axis; i++ {
		outer *= a.shape[i]
	}
	for i := axis + 1; i < a.Rank(); i++ {
		inner *= a.shape[i]
	}
	n := a.shape[axis]
	r.For(outer*inner, grainFor(int64(n)), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			o, in := idx/inner, idx%inner
			base := o*n*inner + in
			best, bi := a.data[base], 0
			for k := 1; k < n; k++ {
				if v := a.data[base+k*inner]; v > best {
					best, bi = v, k
				}
			}
			out.data[idx] = float32(bi)
		}
	})
	return out
}

// Softmax returns the softmax over the last axis of a, computed with the
// max-subtraction trick for numerical stability.
func Softmax(a *Tensor) *Tensor { return SoftmaxOn(Serial, a) }

// SoftmaxOn is Softmax dispatched on r, chunked over rows. Each row's
// max/sum/scale passes stay in serial order within a single chunk.
func SoftmaxOn(r Runner, a *Tensor) *Tensor {
	if a.Rank() == 0 {
		return Ones()
	}
	n := a.shape[a.Rank()-1]
	rows := a.Size() / n
	out := New(a.shape...)
	r.For(rows, grainFor(4*int64(n)), func(lo, hi int) {
		for ri := lo; ri < hi; ri++ {
			row := a.data[ri*n : (ri+1)*n]
			orow := out.data[ri*n : (ri+1)*n]
			m := row[0]
			for _, v := range row[1:] {
				if v > m {
					m = v
				}
			}
			var sum float64
			for i, v := range row {
				e := math.Exp(float64(v - m))
				orow[i] = float32(e)
				sum += e
			}
			inv := float32(1 / sum)
			for i := range orow {
				orow[i] *= inv
			}
		}
	})
	return out
}

// LogSoftmax returns log(softmax(a)) over the last axis, computed stably.
func LogSoftmax(a *Tensor) *Tensor { return LogSoftmaxOn(Serial, a) }

// LogSoftmaxOn is LogSoftmax dispatched on r, chunked over rows.
func LogSoftmaxOn(r Runner, a *Tensor) *Tensor {
	if a.Rank() == 0 {
		return Zeros()
	}
	n := a.shape[a.Rank()-1]
	rows := a.Size() / n
	out := New(a.shape...)
	r.For(rows, grainFor(4*int64(n)), func(lo, hi int) {
		for ri := lo; ri < hi; ri++ {
			row := a.data[ri*n : (ri+1)*n]
			orow := out.data[ri*n : (ri+1)*n]
			m := row[0]
			for _, v := range row[1:] {
				if v > m {
					m = v
				}
			}
			var sum float64
			for _, v := range row {
				sum += math.Exp(float64(v - m))
			}
			lse := float32(math.Log(sum)) + m
			for i, v := range row {
				orow[i] = v - lse
			}
		}
	})
	return out
}

// Normalize scales a flat tensor to unit L2 norm; zero tensors are returned unchanged.
func Normalize(a *Tensor) *Tensor { return NormalizeOn(Serial, a) }

// NormalizeOn is Normalize dispatched on r. The norm itself is a
// single-accumulator reduction and stays serial (see Dot); only the scale
// pass is chunked.
func NormalizeOn(r Runner, a *Tensor) *Tensor {
	n := a.Norm()
	if n == 0 {
		return a.Clone()
	}
	return MulScalarOn(r, a, 1/n)
}

// NormalizeL1 scales a to unit L1 mass (useful for probability vectors);
// zero tensors are returned unchanged.
func NormalizeL1(a *Tensor) *Tensor { return NormalizeL1On(Serial, a) }

// NormalizeL1On is NormalizeL1 dispatched on r; like NormalizeOn, the mass
// accumulation stays serial and only the scale pass is chunked.
func NormalizeL1On(r Runner, a *Tensor) *Tensor {
	var s float64
	for _, v := range a.data {
		s += math.Abs(float64(v))
	}
	if s == 0 {
		return a.Clone()
	}
	return MulScalarOn(r, a, float32(1/s))
}

// TopK returns the indices of the k largest elements of a flat tensor in
// descending order of value. k is clamped to the tensor size.
func TopK(a *Tensor, k int) []int {
	n := a.Size()
	if k > n {
		k = n
	}
	idx := make([]int, 0, k)
	// Simple selection; k is small in every call site.
	used := make([]bool, n)
	for c := 0; c < k; c++ {
		best := float32(math.Inf(-1))
		bi := -1
		for i, v := range a.data {
			if !used[i] && v > best {
				best, bi = v, i
			}
		}
		used[bi] = true
		idx = append(idx, bi)
	}
	return idx
}
