//go:build amd64

#include "textflag.h"

// SSE GEMM micro-kernels. See gemm_kern_amd64.go for the bit-identity
// argument; the short version: each XMM lane is one output element's
// accumulator, MULPS+ADDPS round per lane exactly like the scalar
// MULSS+ADDSS chain, and no FMA is used.

// func gemmKern4x4Asm(a0, a1, a2, a3, bp *float32, kc int, o0, o1, o2, o3 *float32, acc bool)
//
// X0..X3 hold the four output rows (four columns each). The p loop is
// unrolled by two to amortize pointer bumps; the unroll preserves the
// per-lane addition order because both steps add into the same register
// in program order.
TEXT ·gemmKern4x4Asm(SB), NOSPLIT, $0-81
	MOVQ a0+0(FP), SI
	MOVQ a1+8(FP), DI
	MOVQ a2+16(FP), R8
	MOVQ a3+24(FP), R9
	MOVQ bp+32(FP), BX
	MOVQ kc+40(FP), CX
	MOVQ o0+48(FP), R10
	MOVQ o1+56(FP), R11
	MOVQ o2+64(FP), R12
	MOVQ o3+72(FP), R13

	XORPS   X0, X0
	XORPS   X1, X1
	XORPS   X2, X2
	XORPS   X3, X3
	MOVBLZX acc+80(FP), AX
	TESTB   AL, AL
	JZ      unroll

	// k-slab continuation: start from the partial sums already in the
	// output rows.
	MOVUPS (R10), X0
	MOVUPS (R11), X1
	MOVUPS (R12), X2
	MOVUPS (R13), X3

unroll:
	MOVQ CX, DX
	SHRQ $1, DX
	JZ   tail

body2:
	// step p
	MOVUPS (BX), X4
	MOVSS  (SI), X5
	SHUFPS $0x00, X5, X5
	MULPS  X4, X5
	ADDPS  X5, X0
	MOVSS  (DI), X6
	SHUFPS $0x00, X6, X6
	MULPS  X4, X6
	ADDPS  X6, X1
	MOVSS  (R8), X7
	SHUFPS $0x00, X7, X7
	MULPS  X4, X7
	ADDPS  X7, X2
	MOVSS  (R9), X8
	SHUFPS $0x00, X8, X8
	MULPS  X4, X8
	ADDPS  X8, X3

	// step p+1
	MOVUPS 16(BX), X9
	MOVSS  4(SI), X10
	SHUFPS $0x00, X10, X10
	MULPS  X9, X10
	ADDPS  X10, X0
	MOVSS  4(DI), X11
	SHUFPS $0x00, X11, X11
	MULPS  X9, X11
	ADDPS  X11, X1
	MOVSS  4(R8), X12
	SHUFPS $0x00, X12, X12
	MULPS  X9, X12
	ADDPS  X12, X2
	MOVSS  4(R9), X13
	SHUFPS $0x00, X13, X13
	MULPS  X9, X13
	ADDPS  X13, X3

	ADDQ $32, BX
	ADDQ $8, SI
	ADDQ $8, DI
	ADDQ $8, R8
	ADDQ $8, R9
	DECQ DX
	JNZ  body2

tail:
	ANDQ $1, CX
	JZ   done

	MOVUPS (BX), X4
	MOVSS  (SI), X5
	SHUFPS $0x00, X5, X5
	MULPS  X4, X5
	ADDPS  X5, X0
	MOVSS  (DI), X6
	SHUFPS $0x00, X6, X6
	MULPS  X4, X6
	ADDPS  X6, X1
	MOVSS  (R8), X7
	SHUFPS $0x00, X7, X7
	MULPS  X4, X7
	ADDPS  X7, X2
	MOVSS  (R9), X8
	SHUFPS $0x00, X8, X8
	MULPS  X4, X8
	ADDPS  X8, X3

done:
	MOVUPS X0, (R10)
	MOVUPS X1, (R11)
	MOVUPS X2, (R12)
	MOVUPS X3, (R13)
	RET

// func gemmKern1x4Asm(a, bp *float32, kc int, o *float32, acc bool)
//
// One output row, four columns in X0.
TEXT ·gemmKern1x4Asm(SB), NOSPLIT, $0-33
	MOVQ a+0(FP), SI
	MOVQ bp+8(FP), BX
	MOVQ kc+16(FP), CX
	MOVQ o+24(FP), R10

	XORPS   X0, X0
	MOVBLZX acc+32(FP), AX
	TESTB   AL, AL
	JZ      unroll1

	MOVUPS (R10), X0

unroll1:
	MOVQ CX, DX
	SHRQ $1, DX
	JZ   tail1

body1:
	MOVUPS (BX), X4
	MOVSS  (SI), X5
	SHUFPS $0x00, X5, X5
	MULPS  X4, X5
	ADDPS  X5, X0
	MOVUPS 16(BX), X6
	MOVSS  4(SI), X7
	SHUFPS $0x00, X7, X7
	MULPS  X6, X7
	ADDPS  X7, X0
	ADDQ   $32, BX
	ADDQ   $8, SI
	DECQ   DX
	JNZ    body1

tail1:
	ANDQ $1, CX
	JZ   done1

	MOVUPS (BX), X4
	MOVSS  (SI), X5
	SHUFPS $0x00, X5, X5
	MULPS  X4, X5
	ADDPS  X5, X0

done1:
	MOVUPS X0, (R10)
	RET
