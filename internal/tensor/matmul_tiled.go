package tensor

// Register-blocked, cache-tiled GEMM.
//
// The tiled kernel restructures the naive i-k-j row loop into the classic
// panel-packed form: B is packed one NC-column panel at a time into a
// contiguous micro-panel layout (so the inner loop streams it linearly
// regardless of n), and the output is produced by a 4×4 register
// micro-kernel that keeps sixteen partial sums in registers across the
// whole k extent of a panel, loading each A element once per four output
// columns and each packed B element once per four output rows.
//
// Bit-identity with matMulRows is a structural invariant, not an accident:
// every output element accumulates its k contributions in ascending-p
// order, one float32 multiply-add rounding per step, exactly like the
// naive kernel. Tiling only changes which elements are in flight
// simultaneously — never the order of additions within one element. The
// k-dimension is blocked in KC slabs to bound the packed panel's footprint;
// accumulators spill to the output tensor between slabs, which is exact
// (a float32 store/load round-trips losslessly), so slab boundaries do not
// change results either.
const (
	// gemmMR × gemmNR is the register micro-tile: 16 float32 accumulators
	// plus the loop-carried A/B values fit the 16 vector registers of
	// amd64 with modest spill, and 4×4 balances A-row reuse against
	// packed-panel reuse.
	gemmMR = 4
	gemmNR = 4
	// gemmKC bounds the k extent of a packed panel (one slab).
	gemmKC = 512
	// gemmNC bounds the column extent of a packed panel. KC×NC float32 is
	// 512 KiB — sized to sit in a last-level cache slice while it is
	// reused by every output row of the chunk.
	gemmNC = 256
)

// Scratcher is the scratch-buffer half of Runner, all the tiled kernels
// need once they are inside a For chunk (a chunk must never re-enter For).
type Scratcher interface {
	Scratch32(n int) []float32
	Release32(buf []float32)
}

// matMulRowsTiled computes output rows [lo, hi) of an m×k · k×n product,
// bit-identical to matMulRows over the same rows. It is safe to call from
// concurrent For chunks: every chunk packs into its own scratch panel.
func matMulRowsTiled(sp Scratcher, ad, bd, od []float32, k, n, lo, hi int) {
	kc := k
	if kc > gemmKC {
		kc = gemmKC
	}
	nc := n
	if nc > gemmNC {
		nc = gemmNC
	}
	ncr := (nc + gemmNR - 1) / gemmNR * gemmNR
	panel := sp.Scratch32(kc * ncr)
	defer sp.Release32(panel)

	for kb := 0; kb < k; kb += gemmKC {
		ke := kb + gemmKC
		if ke > k {
			ke = k
		}
		kcb := ke - kb
		acc := kb > 0 // later slabs continue the sums already in od
		for jb := 0; jb < n; jb += gemmNC {
			je := jb + gemmNC
			if je > n {
				je = n
			}
			ncb := je - jb
			packB(panel, bd, kb, ke, jb, je, n)

			i := lo
			for ; i+gemmMR <= hi; i += gemmMR {
				a0 := ad[(i+0)*k+kb : (i+0)*k+ke]
				a1 := ad[(i+1)*k+kb : (i+1)*k+ke]
				a2 := ad[(i+2)*k+kb : (i+2)*k+ke]
				a3 := ad[(i+3)*k+kb : (i+3)*k+ke]
				for jj := 0; jj < ncb; jj += gemmNR {
					bp := panel[(jj/gemmNR)*kcb*gemmNR:]
					j := jb + jj
					if ncb-jj >= gemmNR {
						gemmKern4x4(a0, a1, a2, a3, bp, kcb,
							od[(i+0)*n+j:(i+0)*n+j+gemmNR],
							od[(i+1)*n+j:(i+1)*n+j+gemmNR],
							od[(i+2)*n+j:(i+2)*n+j+gemmNR],
							od[(i+3)*n+j:(i+3)*n+j+gemmNR], acc)
					} else {
						nr := ncb - jj
						gemmKernEdge(a0, bp, kcb, nr, od[(i+0)*n+j:], acc)
						gemmKernEdge(a1, bp, kcb, nr, od[(i+1)*n+j:], acc)
						gemmKernEdge(a2, bp, kcb, nr, od[(i+2)*n+j:], acc)
						gemmKernEdge(a3, bp, kcb, nr, od[(i+3)*n+j:], acc)
					}
				}
			}
			for ; i < hi; i++ { // leftover rows below one micro-tile
				arow := ad[i*k+kb : i*k+ke]
				for jj := 0; jj < ncb; jj += gemmNR {
					bp := panel[(jj/gemmNR)*kcb*gemmNR:]
					j := jb + jj
					if ncb-jj >= gemmNR {
						gemmKern1x4(arow, bp, kcb, od[i*n+j:i*n+j+gemmNR], acc)
					} else {
						gemmKernEdge(arow, bp, kcb, ncb-jj, od[i*n+j:], acc)
					}
				}
			}
		}
	}
}

// packB copies B[kb:ke, jb:je] into dst in micro-panel order: consecutive
// NR-column strips, each laid out p-major, so the micro-kernel streams the
// panel with unit stride. Ragged strips are zero-padded to NR; the padded
// columns are never read back.
func packB(dst, bd []float32, kb, ke, jb, je, n int) {
	kc := ke - kb
	nc := je - jb
	for jj := 0; jj < nc; jj += gemmNR {
		mp := dst[(jj/gemmNR)*kc*gemmNR:]
		if nc-jj >= gemmNR {
			for p := 0; p < kc; p++ {
				row := bd[(kb+p)*n+jb+jj:]
				q := mp[p*gemmNR : p*gemmNR+gemmNR]
				q[0], q[1], q[2], q[3] = row[0], row[1], row[2], row[3]
			}
			continue
		}
		nr := nc - jj
		for p := 0; p < kc; p++ {
			row := bd[(kb+p)*n+jb+jj:]
			q := mp[p*gemmNR : p*gemmNR+gemmNR]
			for c := 0; c < gemmNR; c++ {
				if c < nr {
					q[c] = row[c]
				} else {
					q[c] = 0
				}
			}
		}
	}
}

// gemmKern4x4 and gemmKern1x4 — the register micro-kernels — live in
// gemm_kern_amd64.go (SSE assembly) and gemm_kern_noasm.go (portable
// scalar), both implementing the same ascending-p per-element contract.

// gemmKernEdge handles the ragged last columns (nr < NR) of a panel, one
// output element at a time, in the same ascending-p order.
func gemmKernEdge(a, bp []float32, kc, nr int, o []float32, acc bool) {
	for c := 0; c < nr; c++ {
		var s float32
		if acc {
			s = o[c]
		}
		for p := 0; p < kc; p++ {
			s += a[p] * bp[p*gemmNR+c]
		}
		o[c] = s
	}
}
