// Package tensor implements a dense FP32 N-dimensional tensor library.
//
// It is the compute substrate for the nsbench neuro-symbolic workloads,
// standing in for the role PyTorch plays in the original ISPASS 2024
// characterization study. Tensors are always contiguous and row-major.
// Operations that would produce a view (Transpose, Reshape with copy)
// materialize their result so that downstream cost accounting (bytes
// touched, FLOPs) is exact.
//
// Shape mismatches are programmer errors and panic with a descriptive
// message, following the convention of numeric libraries; data-dependent
// failures return errors.
package tensor

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
)

// idCounter assigns a unique ID to every tensor, used by the trace layer
// to reconstruct operator dependency graphs.
var idCounter atomic.Uint64

// Tensor is a dense, contiguous, row-major N-dimensional array of float32.
// The zero value is not useful; construct tensors with New, Zeros, Full,
// FromSlice, or the random constructors.
type Tensor struct {
	shape []int
	data  []float32
	id    uint64
}

// New returns a zero-filled tensor with the given shape.
// New() with no dimensions returns a scalar (rank-0) tensor holding one element.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{
		shape: append([]int(nil), shape...),
		data:  make([]float32, n),
		id:    idCounter.Add(1),
	}
}

// Zeros is an alias for New, provided for readability at call sites.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Scalar returns a rank-0 tensor holding v.
func Scalar(v float32) *Tensor {
	t := New()
	t.data[0] = v
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); callers must not alias it afterwards unless they
// intend shared storage.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data, id: idCounter.Add(1)}
}

// checkShape validates a shape and returns its element count.
func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// ID returns the tensor's unique identity, used for dependency tracking.
func (t *Tensor) ID() uint64 { return t.id }

// Shape returns the tensor's dimensions. The returned slice must not be modified.
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Bytes returns the storage footprint in bytes (4 bytes per element).
func (t *Tensor) Bytes() int64 { return int64(len(t.data)) * 4 }

// Dim returns the length of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Data returns the underlying storage. The slice is live: writes are
// visible to the tensor. Row-major order.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy with a fresh ID.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing t's storage with a new shape of equal
// element count. The result keeps t's ID: a metadata-only alias is the same
// value in the dataflow graph, so dependency chains flow through reshapes.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data, id: t.id}
}

// Flatten returns a rank-1 view of t's storage.
func (t *Tensor) Flatten() *Tensor { return t.Reshape(len(t.data)) }

// offset computes the linear index for coordinates idx.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given coordinates.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given coordinates.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

// Item returns the value of a single-element tensor.
func (t *Tensor) Item() float32 {
	if len(t.data) != 1 {
		panic(fmt.Sprintf("tensor: Item called on tensor with %d elements", len(t.data)))
	}
	return t.data[0]
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// ShapeString renders the shape as e.g. "[2 3 4]".
func (t *Tensor) ShapeString() string {
	parts := make([]string, len(t.shape))
	for i, d := range t.shape {
		parts[i] = fmt.Sprint(d)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// String renders small tensors in full and large tensors as a summary.
func (t *Tensor) String() string {
	if len(t.data) <= 16 {
		return fmt.Sprintf("Tensor%s%v", t.ShapeString(), t.data)
	}
	return fmt.Sprintf("Tensor%s{%d elems, min=%.4g max=%.4g}", t.ShapeString(), len(t.data), t.Min(), t.Max())
}

// Min returns the smallest element. Panics on empty tensors.
func (t *Tensor) Min() float32 {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest element. Panics on empty tensors.
func (t *Tensor) Max() float32 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Sum returns the sum of all elements, accumulated in float64 for accuracy.
func (t *Tensor) Sum() float32 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return float32(s)
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float32 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float32(len(t.data))
}

// Norm returns the L2 norm of the tensor viewed as a flat vector.
func (t *Tensor) Norm() float32 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// Sparsity returns the fraction of elements whose absolute value is at or
// below eps. This matches the paper's definition of (unstructured) sparsity
// ratio used in the Fig. 5 analysis.
func (t *Tensor) Sparsity(eps float32) float64 {
	if len(t.data) == 0 {
		return 0
	}
	zero := 0
	for _, v := range t.data {
		if v <= eps && v >= -eps {
			zero++
		}
	}
	return float64(zero) / float64(len(t.data))
}

// CountNonZero returns the number of elements with |v| > eps.
func (t *Tensor) CountNonZero(eps float32) int {
	nz := 0
	for _, v := range t.data {
		if v > eps || v < -eps {
			nz++
		}
	}
	return nz
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// CopyFrom copies u's data into t. Shapes must match.
func (t *Tensor) CopyFrom(u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %v vs %v", t.shape, u.shape))
	}
	copy(t.data, u.data)
}

// AllFinite reports whether every element is finite (no NaN or Inf).
func (t *Tensor) AllFinite() bool {
	for _, v := range t.data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return false
		}
	}
	return true
}
