package tensor

import "fmt"

// Accumulation contract: every dense FP32 kernel in this package — GEMM,
// GEMV, conv — accumulates in float32, rounding once per multiply-add in a
// fixed serial order over the reduction dimension. That matches the FP32
// tensor kernels the paper characterizes (cuBLAS sgemm/sgemv accumulate in
// registers at operand precision), makes MatMul(m×k · k×1) and MatVec
// agree bit-for-bit on the same math, and is the contract the tiled
// kernels inherit: a tiled variant may reorder which outputs are in
// flight, never the order of additions within one output.

// MatMul returns the matrix product of a (m×k) and b (k×n) as an m×n tensor.
func MatMul(a, b *Tensor) *Tensor { return MatMulOn(Serial, a, b) }

// MatMulOn is MatMul dispatched on r with the auto kernel: the measured
// dispatch table picks the naive or tiled implementation per shape.
func MatMulOn(r Runner, a, b *Tensor) *Tensor { return MatMulKernelOn(r, KernelAuto, a, b) }

// MatMulKernelOn is MatMul dispatched on r with an explicit kernel choice,
// chunked over output rows. Each output element is accumulated in the same
// serial k-order whatever the kernel and runner (the inner loops stream
// b — or a packed panel of it — and the output row, the cache-friendly
// layout for row-major data), so results are bit-identical for every
// (runner, kernel) combination.
func MatMulKernelOn(r Runner, kern Kernel, a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	if gemmKernel(kern, m, k, n) == KernelTiled {
		r.For(m, grainFor(2*int64(k)*int64(n)), func(lo, hi int) {
			matMulRowsTiled(r, ad, bd, od, k, n, lo, hi)
		})
		return out
	}
	r.For(m, grainFor(2*int64(k)*int64(n)), func(lo, hi int) {
		matMulRows(ad, bd, od, k, n, lo, hi)
	})
	return out
}

// matMulRows computes output rows [lo, hi) of an m×k · k×n product. Every
// a-element participates, including zeros: skipping zero rows would drop
// IEEE 0·Inf → NaN propagation relative to MatVec and make measured kernel
// time depend on input sparsity while the recorded FLOP cost does not —
// skewing the neural/symbolic split the characterization reports.
func matMulRows(ad, bd, od []float32, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			brow := bd[p*n : (p+1)*n]
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatVec returns the matrix-vector product of a (m×k) and x (k) as a length-m vector.
func MatVec(a, x *Tensor) *Tensor { return MatVecOn(Serial, a, x) }

// MatVecOn is MatVec dispatched on r, chunked over output elements. It
// accumulates in float32 under the package accumulation contract (see the
// top of this file): MatVec(a, x) is bit-identical to MatMul(a, x viewed
// as a k×1 column), pinned by TestMatVecMatchesMatMulColumn.
func MatVecOn(r Runner, a, x *Tensor) *Tensor {
	if a.Rank() != 2 || x.Rank() != 1 {
		panic(fmt.Sprintf("tensor: MatVec needs (2,1)-rank operands, got %v x %v", a.shape, x.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if k != x.shape[0] {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v x %v", a.shape, x.shape))
	}
	out := New(m)
	ad, xd := a.data, x.data
	r.For(m, grainFor(2*int64(k)), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var s float32
			row := ad[i*k : (i+1)*k]
			for p, v := range row {
				s += v * xd[p]
			}
			out.data[i] = s
		}
	})
	return out
}

// BatchMatMul multiplies two rank-3 tensors batch-wise: (B×m×k)·(B×k×n) → B×m×n.
func BatchMatMul(a, b *Tensor) *Tensor { return BatchMatMulOn(Serial, a, b) }

// BatchMatMulOn is BatchMatMul dispatched on r with the auto kernel.
func BatchMatMulOn(r Runner, a, b *Tensor) *Tensor {
	return BatchMatMulKernelOn(r, KernelAuto, a, b)
}

// BatchMatMulKernelOn is BatchMatMul with an explicit kernel choice,
// chunked over the batch. Per item it runs the same row kernels as MatMul,
// so each item is bit-identical to the corresponding 2-D product.
func BatchMatMulKernelOn(r Runner, kern Kernel, a, b *Tensor) *Tensor {
	if a.Rank() != 3 || b.Rank() != 3 {
		panic(fmt.Sprintf("tensor: BatchMatMul needs rank-3 operands, got %v x %v", a.shape, b.shape))
	}
	if a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: BatchMatMul batch mismatch %v x %v", a.shape, b.shape))
	}
	bsz, m, k := a.shape[0], a.shape[1], a.shape[2]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: BatchMatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	n := b.shape[2]
	out := New(bsz, m, n)
	tiled := gemmKernel(kern, m, k, n) == KernelTiled
	r.For(bsz, grainFor(2*int64(m)*int64(k)*int64(n)), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ad := a.data[i*m*k : (i+1)*m*k]
			bd := b.data[i*k*n : (i+1)*k*n]
			od := out.data[i*m*n : (i+1)*m*n]
			if tiled {
				matMulRowsTiled(r, ad, bd, od, k, n, 0, m)
			} else {
				matMulRows(ad, bd, od, k, n, 0, m)
			}
		}
	})
	return out
}

// Outer returns the outer product of vectors a (m) and b (n) as an m×n matrix.
func Outer(a, b *Tensor) *Tensor { return OuterOn(Serial, a, b) }

// OuterOn is Outer dispatched on r, chunked over output rows.
func OuterOn(r Runner, a, b *Tensor) *Tensor {
	if a.Rank() != 1 || b.Rank() != 1 {
		panic(fmt.Sprintf("tensor: Outer needs rank-1 operands, got %v x %v", a.shape, b.shape))
	}
	m, n := a.shape[0], b.shape[0]
	out := New(m, n)
	r.For(m, grainFor(int64(n)), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			av := a.data[i]
			row := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				row[j] = av * b.data[j]
			}
		}
	})
	return out
}
