package tensor

import (
	"math"
	"testing"
)

// poisonRunner hands out Scratch buffers pre-filled with NaN sentinels and
// never reuses a released buffer. The Runner contract says Scratch contents
// are unspecified, so every consumer must fully overwrite what it reads; a
// future partially-overwriting consumer turns the sentinels into NaN
// outputs and fails these tests loudly instead of silently depending on
// zeroed (or stale pooled) memory.
type poisonRunner struct{ released int }

func (p *poisonRunner) For(n, grain int, fn func(lo, hi int)) { Serial.For(n, grain, fn) }

func (p *poisonRunner) Scratch(n int) []float64 {
	buf := make([]float64, n)
	for i := range buf {
		buf[i] = math.NaN()
	}
	return buf
}

func (p *poisonRunner) Release([]float64) { p.released++ }

func (p *poisonRunner) Scratch32(n int) []float32 {
	buf := make([]float32, n)
	for i := range buf {
		buf[i] = float32(math.NaN())
	}
	return buf
}

func (p *poisonRunner) Release32([]float32) { p.released++ }

// TestCircularConvFFTPoisonedScratch checks the FFT convolution path — the
// main Scratch consumer — against the direct kernel under poisoned scratch.
func TestCircularConvFFTPoisonedScratch(t *testing.T) {
	g := NewRNG(11)
	for _, n := range []int{fftThreshold, 256, 1024} {
		if n&(n-1) != 0 {
			t.Fatalf("test size %d must be a power of two to take the FFT path", n)
		}
		a, b := g.Normal(0, 1, n), g.Normal(0, 1, n)
		r := &poisonRunner{}
		got := CircularConvOn(r, a, b)
		want := circularConvDirect(Serial, a, b)
		if r.released == 0 {
			t.Fatalf("n=%d: FFT path did not draw runner scratch; poison test lost its subject", n)
		}
		for i := range want.Data() {
			gv, wv := got.Data()[i], want.Data()[i]
			if math.IsNaN(float64(gv)) {
				t.Fatalf("n=%d: output[%d] is NaN — a scratch read before write leaked the poison", n, i)
			}
			if diff := math.Abs(float64(gv - wv)); diff > 1e-3 {
				t.Fatalf("n=%d: output[%d] = %v, direct %v (diff %v)", n, i, gv, wv, diff)
			}
		}
	}
}

// TestParallelScratchContentsUnspecified pins the other side of the
// contract: a pooled backend really can return dirty buffers, which is
// what makes the poison test above meaningful.
func TestParallelScratchContentsUnspecified(t *testing.T) {
	r := &poisonRunner{}
	buf := r.Scratch(64)
	for _, v := range buf {
		if !math.IsNaN(v) {
			t.Fatal("poisonRunner must fill scratch with NaN sentinels")
		}
	}
}
