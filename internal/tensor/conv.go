package tensor

import "fmt"

// Conv2D computes a 2-D cross-correlation (the deep-learning "convolution")
// of input (N×Cin×H×W) with weights (Cout×Cin×Kh×Kw), plus optional bias
// (Cout), using the given stride and zero padding. The result is
// N×Cout×Hout×Wout with Hout = (H+2p-Kh)/s + 1.
//
// The kernel uses an im2col-free direct loop; it is adequate for the
// workload sizes used in the characterization study and keeps the byte/FLOP
// accounting transparent.
func Conv2D(input, weight, bias *Tensor, stride, pad int) *Tensor {
	return Conv2DOn(Serial, input, weight, bias, stride, pad)
}

// Conv2DOn is Conv2D dispatched on r with the auto kernel: the measured
// dispatch table picks the naive or tiled implementation per shape.
func Conv2DOn(r Runner, input, weight, bias *Tensor, stride, pad int) *Tensor {
	return Conv2DKernelOn(r, KernelAuto, input, weight, bias, stride, pad)
}

// Conv2DKernelOn is Conv2D with an explicit kernel choice. The naive
// kernel chunks over (batch, output channel) planes; the tiled kernel
// chunks over output rows with an interior fast path (see conv_tiled.go).
// Each output element is accumulated in the same tap order either way, so
// results are bit-identical for every (runner, kernel) combination.
func Conv2DKernelOn(r Runner, kern Kernel, input, weight, bias *Tensor, stride, pad int) *Tensor {
	if input.Rank() != 4 || weight.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Conv2D needs rank-4 input and weight, got %v, %v", input.shape, weight.shape))
	}
	if stride < 1 {
		panic("tensor: Conv2D stride must be >= 1")
	}
	n, cin, h, w := input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	cout, cin2, kh, kw := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	if cin != cin2 {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch input %v vs weight %v", input.shape, weight.shape))
	}
	if bias != nil && (bias.Rank() != 1 || bias.shape[0] != cout) {
		panic(fmt.Sprintf("tensor: Conv2D bias shape %v does not match Cout=%d", bias.shape, cout))
	}
	hout := (h+2*pad-kh)/stride + 1
	wout := (w+2*pad-kw)/stride + 1
	if hout < 1 || wout < 1 {
		panic(fmt.Sprintf("tensor: Conv2D produces empty output for input %v kernel %v stride %d pad %d", input.shape, weight.shape, stride, pad))
	}
	out := New(n, cout, hout, wout)
	in := input.data
	wd := weight.data
	od := out.data
	var bd []float32
	if bias != nil {
		bd = bias.data
	}
	if convKernel(kern, wout) == KernelTiled {
		perRow := 2 * int64(cin) * int64(kh) * int64(kw) * int64(wout)
		r.For(n*cout*hout, grainFor(perRow),
			conv2DRowsTiled(in, wd, bd, od, cin, h, w, cout, hout, wout, kh, kw, stride, pad))
		return out
	}
	perPlane := 2 * int64(cin) * int64(kh) * int64(kw) * int64(hout) * int64(wout)
	r.For(n*cout, grainFor(perPlane), func(lo, hi int) {
		for bc := lo; bc < hi; bc++ {
			b, oc := bc/cout, bc%cout
			var bv float32
			if bias != nil {
				bv = bias.data[oc]
			}
			for oy := 0; oy < hout; oy++ {
				for ox := 0; ox < wout; ox++ {
					var acc float32 = bv
					iy0 := oy*stride - pad
					ix0 := ox*stride - pad
					for ic := 0; ic < cin; ic++ {
						inBase := ((b*cin + ic) * h) * w
						wBase := ((oc*cin + ic) * kh) * kw
						for ky := 0; ky < kh; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= h {
								continue
							}
							rowIn := inBase + iy*w
							rowW := wBase + ky*kw
							for kx := 0; kx < kw; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= w {
									continue
								}
								acc += in[rowIn+ix] * wd[rowW+kx]
							}
						}
					}
					od[((b*cout+oc)*hout+oy)*wout+ox] = acc
				}
			}
		}
	})
	return out
}

// checkPool2D validates pooling window and stride the same way Conv2DOn
// validates stride: a diagnostic panic instead of the raw integer
// divide-by-zero (s=0) or silent nonsense output (k<1, s<0) the
// unvalidated loops would produce.
func checkPool2D(name string, k, s int) {
	if k < 1 {
		panic(fmt.Sprintf("tensor: %s window must be >= 1, got k=%d", name, k))
	}
	if s < 1 {
		panic(fmt.Sprintf("tensor: %s stride must be >= 1, got s=%d", name, s))
	}
}

// MaxPool2D applies 2-D max pooling with a k×k window and stride s to an
// N×C×H×W tensor.
func MaxPool2D(input *Tensor, k, s int) *Tensor { return MaxPool2DOn(Serial, input, k, s) }

// MaxPool2DOn is MaxPool2D dispatched on r, chunked over (batch, channel).
func MaxPool2DOn(r Runner, input *Tensor, k, s int) *Tensor {
	if input.Rank() != 4 {
		panic(fmt.Sprintf("tensor: MaxPool2D needs rank-4 input, got %v", input.shape))
	}
	checkPool2D("MaxPool2D", k, s)
	n, c, h, w := input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	hout := (h-k)/s + 1
	wout := (w-k)/s + 1
	if hout < 1 || wout < 1 {
		panic(fmt.Sprintf("tensor: MaxPool2D produces empty output for input %v k=%d s=%d", input.shape, k, s))
	}
	out := New(n, c, hout, wout)
	in := input.data
	perPlane := int64(k) * int64(k) * int64(hout) * int64(wout)
	r.For(n*c, grainFor(perPlane), func(lo, hi int) {
		for bc := lo; bc < hi; bc++ {
			base := bc * h * w
			for oy := 0; oy < hout; oy++ {
				for ox := 0; ox < wout; ox++ {
					m := in[base+(oy*s)*w+ox*s]
					for ky := 0; ky < k; ky++ {
						row := base + (oy*s+ky)*w
						for kx := 0; kx < k; kx++ {
							if v := in[row+ox*s+kx]; v > m {
								m = v
							}
						}
					}
					out.data[(bc*hout+oy)*wout+ox] = m
				}
			}
		}
	})
	return out
}

// AvgPool2D applies 2-D average pooling with a k×k window and stride s.
func AvgPool2D(input *Tensor, k, s int) *Tensor { return AvgPool2DOn(Serial, input, k, s) }

// AvgPool2DOn is AvgPool2D dispatched on r, chunked over (batch, channel).
func AvgPool2DOn(r Runner, input *Tensor, k, s int) *Tensor {
	if input.Rank() != 4 {
		panic(fmt.Sprintf("tensor: AvgPool2D needs rank-4 input, got %v", input.shape))
	}
	checkPool2D("AvgPool2D", k, s)
	n, c, h, w := input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	hout := (h-k)/s + 1
	wout := (w-k)/s + 1
	if hout < 1 || wout < 1 {
		panic(fmt.Sprintf("tensor: AvgPool2D produces empty output for input %v k=%d s=%d", input.shape, k, s))
	}
	out := New(n, c, hout, wout)
	in := input.data
	inv := 1 / float32(k*k)
	perPlane := int64(k) * int64(k) * int64(hout) * int64(wout)
	r.For(n*c, grainFor(perPlane), func(lo, hi int) {
		for bc := lo; bc < hi; bc++ {
			base := bc * h * w
			for oy := 0; oy < hout; oy++ {
				for ox := 0; ox < wout; ox++ {
					var s64 float64
					for ky := 0; ky < k; ky++ {
						row := base + (oy*s+ky)*w
						for kx := 0; kx < k; kx++ {
							s64 += float64(in[row+ox*s+kx])
						}
					}
					out.data[(bc*hout+oy)*wout+ox] = float32(s64) * inv
				}
			}
		}
	})
	return out
}

// GlobalAvgPool2D reduces an N×C×H×W tensor to N×C by averaging each channel.
func GlobalAvgPool2D(input *Tensor) *Tensor { return GlobalAvgPool2DOn(Serial, input) }

// GlobalAvgPool2DOn is GlobalAvgPool2D dispatched on r, chunked over
// (batch, channel).
func GlobalAvgPool2DOn(r Runner, input *Tensor) *Tensor {
	if input.Rank() != 4 {
		panic(fmt.Sprintf("tensor: GlobalAvgPool2D needs rank-4 input, got %v", input.shape))
	}
	n, c, h, w := input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	out := New(n, c)
	hw := h * w
	r.For(n*c, grainFor(int64(hw)), func(lo, hi int) {
		for bc := lo; bc < hi; bc++ {
			base := bc * hw
			var s float64
			for i := 0; i < hw; i++ {
				s += float64(input.data[base+i])
			}
			out.data[bc] = float32(s / float64(hw))
		}
	})
	return out
}
