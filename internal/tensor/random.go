package tensor

import (
	"math"
	"math/rand"
)

// RNG is a seeded random source for deterministic tensor initialization.
// All nsbench randomness flows through explicitly seeded RNGs so that every
// experiment is reproducible.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Rand returns the underlying *rand.Rand for ad-hoc draws.
func (g *RNG) Rand() *rand.Rand { return g.r }

// Uniform returns a tensor with elements drawn from U[lo, hi).
func (g *RNG) Uniform(lo, hi float32, shape ...int) *Tensor {
	t := New(shape...)
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + span*g.r.Float32()
	}
	return t
}

// Normal returns a tensor with elements drawn from N(mean, std²).
func (g *RNG) Normal(mean, std float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = mean + std*float32(g.r.NormFloat64())
	}
	return t
}

// Xavier returns a tensor initialized with Glorot/Xavier uniform scaling
// for a layer with the given fan-in and fan-out.
func (g *RNG) Xavier(fanIn, fanOut int, shape ...int) *Tensor {
	limit := float32(math.Sqrt(6 / float64(fanIn+fanOut)))
	return g.Uniform(-limit, limit, shape...)
}

// Bipolar returns a tensor of random ±1 entries — the MAP-B hypervector
// distribution used by NVSA-style codebooks.
func (g *RNG) Bipolar(shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		if g.r.Intn(2) == 0 {
			t.data[i] = 1
		} else {
			t.data[i] = -1
		}
	}
	return t
}

// Binary returns a tensor of random {0,1} entries with P(1)=p.
func (g *RNG) Binary(p float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		if g.r.Float64() < p {
			t.data[i] = 1
		}
	}
	return t
}

// UnitVector returns a random vector of length n with unit L2 norm.
func (g *RNG) UnitVector(n int) *Tensor {
	v := g.Normal(0, 1, n)
	return Normalize(v)
}

// HRRVector returns a random holographic vector: i.i.d. N(0, 1/n) entries,
// the standard HRR initialization whose circular-convolution bindings are
// approximately invertible by circular correlation.
func (g *RNG) HRRVector(n int) *Tensor {
	return g.Normal(0, float32(1/math.Sqrt(float64(n))), n)
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Intn returns a uniform integer in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Float64 returns a uniform float64 in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Shuffle randomizes the order of n elements via the provided swap function.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
