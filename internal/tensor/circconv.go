package tensor

import (
	"fmt"
	"math"
	"math/bits"
)

// CircularConv returns the circular convolution of two equal-length vectors:
// out[k] = Σ_i a[i] * b[(k-i) mod n].
//
// Circular convolution is the binding operator of holographic reduced
// representations (HRR) and the core vector-symbolic primitive of NVSA and
// PrAE. For n ≥ fftThreshold the FFT path (O(n log n)) is used; below it
// the direct O(n²) kernel wins.
func CircularConv(a, b *Tensor) *Tensor { return CircularConvOn(Serial, a, b) }

// CircularConvOn is CircularConv dispatched on r. The direct path chunks
// over output indices; the FFT path runs the two forward transforms
// concurrently on runner scratch buffers and chunks the pointwise multiply.
func CircularConvOn(r Runner, a, b *Tensor) *Tensor {
	if a.Rank() != 1 || b.Rank() != 1 || a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: CircularConv needs equal-length vectors, got %v and %v", a.shape, b.shape))
	}
	n := a.shape[0]
	if n >= fftThreshold && n&(n-1) == 0 {
		return circularConvFFT(r, a, b)
	}
	return circularConvDirect(r, a, b)
}

// fftThreshold is the vector length above which the FFT path is preferred
// for power-of-two sizes.
const fftThreshold = 64

func circularConvDirect(r Runner, a, b *Tensor) *Tensor {
	n := a.shape[0]
	out := New(n)
	r.For(n, grainFor(2*int64(n)), func(lo, hi int) {
		for k := lo; k < hi; k++ {
			var s float64
			for i := 0; i < n; i++ {
				j := k - i
				if j < 0 {
					j += n
				}
				s += float64(a.data[i]) * float64(b.data[j])
			}
			out.data[k] = float32(s)
		}
	})
	return out
}

// CircularCorr returns the circular correlation of a and b:
// out[k] = Σ_i a[i] * b[(k+i) mod n]. It is the approximate inverse
// (unbinding) of CircularConv for unit-norm random vectors.
func CircularCorr(a, b *Tensor) *Tensor { return CircularCorrOn(Serial, a, b) }

// CircularCorrOn is CircularCorr dispatched on r, chunked over output
// indices.
func CircularCorrOn(r Runner, a, b *Tensor) *Tensor {
	if a.Rank() != 1 || b.Rank() != 1 || a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: CircularCorr needs equal-length vectors, got %v and %v", a.shape, b.shape))
	}
	n := a.shape[0]
	out := New(n)
	r.For(n, grainFor(2*int64(n)), func(lo, hi int) {
		for k := lo; k < hi; k++ {
			var s float64
			for i := 0; i < n; i++ {
				s += float64(a.data[i]) * float64(b.data[(k+i)%n])
			}
			out.data[k] = float32(s)
		}
	})
	return out
}

func circularConvFFT(r Runner, a, b *Tensor) *Tensor {
	n := a.shape[0]
	buf := r.Scratch(4 * n)
	defer r.Release(buf)
	ar, ai := buf[0:n], buf[n:2*n]
	br, bi := buf[2*n:3*n], buf[3*n:4*n]
	// The two forward transforms touch disjoint buffers, so they can run as
	// two chunks; each transform itself is deterministic regardless.
	r.For(2, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			if c == 0 {
				fillComplex(ar, ai, a.data)
				fftInPlace(ar, ai, false)
			} else {
				fillComplex(br, bi, b.data)
				fftInPlace(br, bi, false)
			}
		}
	})
	// Pointwise complex multiply.
	r.For(n, grainEltwise, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			re := ar[i]*br[i] - ai[i]*bi[i]
			im := ar[i]*bi[i] + ai[i]*br[i]
			ar[i], ai[i] = re, im
		}
	})
	fftInPlace(ar, ai, true)
	out := New(n)
	for i := 0; i < n; i++ {
		out.data[i] = float32(ar[i])
	}
	return out
}

// fillComplex loads a float32 vector into a real/imaginary float64 pair,
// zeroing the imaginary part.
func fillComplex(re, im []float64, x []float32) {
	for i, v := range x {
		re[i] = float64(v)
		im[i] = 0
	}
}

// fft computes the radix-2 Cooley-Tukey FFT (or inverse when inv is true)
// of a power-of-two-length complex sequence without mutating its input. The
// inverse includes the 1/n scaling.
func fft(x complexPair, inv bool) ([]float64, []float64) {
	re := append([]float64(nil), x.re...)
	im := append([]float64(nil), x.im...)
	fftInPlace(re, im, inv)
	return re, im
}

type complexPair struct{ re, im []float64 }

func toComplex(x []float32) complexPair {
	re := make([]float64, len(x))
	for i, v := range x {
		re[i] = float64(v)
	}
	return complexPair{re: re, im: make([]float64, len(x))}
}

// fftInPlace runs the in-place iterative radix-2 Cooley-Tukey FFT (or
// inverse when inv is true) on a power-of-two-length complex sequence held
// as separate real/imaginary slices.
func fftInPlace(re, im []float64, inv bool) {
	n := len(re)
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("tensor: fft length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := bits.LeadingZeros32(uint32(n)) + 1
	for i := 0; i < n; i++ {
		j := int(bits.Reverse32(uint32(i)) >> shift)
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inv {
			ang = -ang
		}
		wr, wi := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			cr, ci := 1.0, 0.0
			half := length / 2
			for k := 0; k < half; k++ {
				i0, i1 := start+k, start+k+half
				tr := re[i1]*cr - im[i1]*ci
				ti := re[i1]*ci + im[i1]*cr
				re[i1], im[i1] = re[i0]-tr, im[i0]-ti
				re[i0], im[i0] = re[i0]+tr, im[i0]+ti
				cr, ci = cr*wr-ci*wi, cr*wi+ci*wr
			}
		}
	}
	if inv {
		s := 1 / float64(n)
		for i := range re {
			re[i] *= s
			im[i] *= s
		}
	}
}

// FFTMagnitude returns the magnitude spectrum of a power-of-two-length
// vector — used by the holographic codebook construction.
func FFTMagnitude(a *Tensor) *Tensor {
	if a.Rank() != 1 {
		panic(fmt.Sprintf("tensor: FFTMagnitude needs a vector, got %v", a.shape))
	}
	re, im := fft(toComplex(a.data), false)
	out := New(a.shape[0])
	for i := range re {
		out.data[i] = float32(math.Hypot(re[i], im[i]))
	}
	return out
}
