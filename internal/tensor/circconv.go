package tensor

import (
	"fmt"
	"math"
	"math/bits"
)

// CircularConv returns the circular convolution of two equal-length vectors:
// out[k] = Σ_i a[i] * b[(k-i) mod n].
//
// Circular convolution is the binding operator of holographic reduced
// representations (HRR) and the core vector-symbolic primitive of NVSA and
// PrAE. For n ≥ fftThreshold the FFT path (O(n log n)) is used; below it
// the direct O(n²) kernel wins.
func CircularConv(a, b *Tensor) *Tensor {
	if a.Rank() != 1 || b.Rank() != 1 || a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: CircularConv needs equal-length vectors, got %v and %v", a.shape, b.shape))
	}
	n := a.shape[0]
	if n >= fftThreshold && n&(n-1) == 0 {
		return circularConvFFT(a, b)
	}
	return circularConvDirect(a, b)
}

// fftThreshold is the vector length above which the FFT path is preferred
// for power-of-two sizes.
const fftThreshold = 64

func circularConvDirect(a, b *Tensor) *Tensor {
	n := a.shape[0]
	out := New(n)
	for k := 0; k < n; k++ {
		var s float64
		for i := 0; i < n; i++ {
			j := k - i
			if j < 0 {
				j += n
			}
			s += float64(a.data[i]) * float64(b.data[j])
		}
		out.data[k] = float32(s)
	}
	return out
}

// CircularCorr returns the circular correlation of a and b:
// out[k] = Σ_i a[i] * b[(k+i) mod n]. It is the approximate inverse
// (unbinding) of CircularConv for unit-norm random vectors.
func CircularCorr(a, b *Tensor) *Tensor {
	if a.Rank() != 1 || b.Rank() != 1 || a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: CircularCorr needs equal-length vectors, got %v and %v", a.shape, b.shape))
	}
	n := a.shape[0]
	out := New(n)
	for k := 0; k < n; k++ {
		var s float64
		for i := 0; i < n; i++ {
			s += float64(a.data[i]) * float64(b.data[(k+i)%n])
		}
		out.data[k] = float32(s)
	}
	return out
}

func circularConvFFT(a, b *Tensor) *Tensor {
	n := a.shape[0]
	ar, ai := fft(toComplex(a.data), false)
	br, bi := fft(toComplex(b.data), false)
	// Pointwise complex multiply.
	for i := 0; i < n; i++ {
		re := ar[i]*br[i] - ai[i]*bi[i]
		im := ar[i]*bi[i] + ai[i]*br[i]
		ar[i], ai[i] = re, im
	}
	rr, _ := fft(complexPair{ar, ai}, true)
	out := New(n)
	for i := 0; i < n; i++ {
		out.data[i] = float32(rr[i])
	}
	return out
}

type complexPair struct{ re, im []float64 }

func toComplex(x []float32) complexPair {
	re := make([]float64, len(x))
	for i, v := range x {
		re[i] = float64(v)
	}
	return complexPair{re: re, im: make([]float64, len(x))}
}

// fft computes the in-place iterative radix-2 Cooley-Tukey FFT (or inverse
// when inv is true) of a power-of-two-length complex sequence. The inverse
// includes the 1/n scaling.
func fft(x complexPair, inv bool) ([]float64, []float64) {
	n := len(x.re)
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("tensor: fft length %d is not a power of two", n))
	}
	re := append([]float64(nil), x.re...)
	im := append([]float64(nil), x.im...)
	// Bit-reversal permutation.
	shift := bits.LeadingZeros32(uint32(n)) + 1
	for i := 0; i < n; i++ {
		j := int(bits.Reverse32(uint32(i)) >> shift)
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inv {
			ang = -ang
		}
		wr, wi := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			cr, ci := 1.0, 0.0
			half := length / 2
			for k := 0; k < half; k++ {
				i0, i1 := start+k, start+k+half
				tr := re[i1]*cr - im[i1]*ci
				ti := re[i1]*ci + im[i1]*cr
				re[i1], im[i1] = re[i0]-tr, im[i0]-ti
				re[i0], im[i0] = re[i0]+tr, im[i0]+ti
				cr, ci = cr*wr-ci*wi, cr*wi+ci*wr
			}
		}
	}
	if inv {
		s := 1 / float64(n)
		for i := range re {
			re[i] *= s
			im[i] *= s
		}
	}
	return re, im
}

// FFTMagnitude returns the magnitude spectrum of a power-of-two-length
// vector — used by the holographic codebook construction.
func FFTMagnitude(a *Tensor) *Tensor {
	if a.Rank() != 1 {
		panic(fmt.Sprintf("tensor: FFTMagnitude needs a vector, got %v", a.shape))
	}
	re, im := fft(toComplex(a.data), false)
	out := New(a.shape[0])
	for i := range re {
		out.data[i] = float32(math.Hypot(re[i], im[i]))
	}
	return out
}
