package tensor

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// smallVec is a bounded random vector for property tests.
type smallVec []float32

func (smallVec) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(32)
	v := make(smallVec, n)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	return reflect.ValueOf(v)
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
}

func TestPropAddCommutative(t *testing.T) {
	f := func(v smallVec) bool {
		a := FromSlice(append([]float32(nil), v...), len(v))
		b := MulScalar(a, 0.5)
		x, y := Add(a, b), Add(b, a)
		for i := range x.Data() {
			if x.Data()[i] != y.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropMulDistributesOverAdd(t *testing.T) {
	f := func(v smallVec) bool {
		a := FromSlice(append([]float32(nil), v...), len(v))
		b := AddScalar(a, 1)
		c := MulScalar(a, -0.25)
		lhs := Mul(a, Add(b, c))
		rhs := Add(Mul(a, b), Mul(a, c))
		for i := range lhs.Data() {
			if !almostEq(lhs.Data()[i], rhs.Data()[i], 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropReluIdempotent(t *testing.T) {
	f := func(v smallVec) bool {
		a := FromSlice(append([]float32(nil), v...), len(v))
		once := ReLU(a)
		twice := ReLU(once)
		for i := range once.Data() {
			if once.Data()[i] != twice.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropTransposeInvolution(t *testing.T) {
	f := func(v smallVec) bool {
		// Build a rectangular matrix from the vector.
		m := len(v)
		a := FromSlice(append([]float32(nil), v...), m, 1)
		tt := Transpose(Transpose(a))
		for i := range a.Data() {
			if tt.Data()[i] != a.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropCircularConvCommutative(t *testing.T) {
	f := func(v smallVec) bool {
		n := len(v)
		a := FromSlice(append([]float32(nil), v...), n)
		b := Roll(a, 1)
		x, y := CircularConv(a, b), CircularConv(b, a)
		for i := range x.Data() {
			if !almostEq(x.Data()[i], y.Data()[i], 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropCircularConvIdentity(t *testing.T) {
	// Convolving with the unit impulse e0 is the identity.
	f := func(v smallVec) bool {
		n := len(v)
		a := FromSlice(append([]float32(nil), v...), n)
		e0 := OneHot(0, n)
		c := CircularConv(a, e0)
		for i := range a.Data() {
			if !almostEq(c.Data()[i], a.Data()[i], 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropRollInverse(t *testing.T) {
	f := func(v smallVec, k int) bool {
		n := len(v)
		a := FromSlice(append([]float32(nil), v...), n)
		r := Roll(Roll(a, k), -k)
		for i := range a.Data() {
			if r.Data()[i] != a.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropSoftmaxSumsToOne(t *testing.T) {
	f := func(v smallVec) bool {
		a := FromSlice(append([]float32(nil), v...), len(v))
		s := Softmax(a)
		return almostEq(s.Sum(), 1, 1e-4)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropSparsityBounds(t *testing.T) {
	f := func(v smallVec) bool {
		a := FromSlice(append([]float32(nil), v...), len(v))
		s := a.Sparsity(1e-6)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropMatMulAssociatesWithIdentity(t *testing.T) {
	f := func(v smallVec) bool {
		n := len(v)
		a := FromSlice(append([]float32(nil), v...), 1, n)
		eye := New(n, n)
		for i := 0; i < n; i++ {
			eye.Set(1, i, i)
		}
		c := MatMul(a, eye)
		for i := range a.Data() {
			if !almostEq(c.Data()[i], a.Data()[i], 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}
