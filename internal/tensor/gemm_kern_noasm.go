//go:build !amd64

package tensor

// Portable scalar micro-kernels, used where no assembly implementation
// exists. Same contract as the SSE versions: each output element
// accumulates its k contributions in ascending-p order, one float32
// rounding per multiply-add.

// gemmKern4x4 is the register micro-kernel: it accumulates a 4×4 output
// block over kc packed steps. With acc it continues the partial sums
// already stored in the output rows (k-slab continuation); otherwise the
// sums start at zero, exactly like the naive kernel's fresh output.
func gemmKern4x4(a0, a1, a2, a3, bp []float32, kc int, o0, o1, o2, o3 []float32, acc bool) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	var c20, c21, c22, c23 float32
	var c30, c31, c32, c33 float32
	if acc {
		c00, c01, c02, c03 = o0[0], o0[1], o0[2], o0[3]
		c10, c11, c12, c13 = o1[0], o1[1], o1[2], o1[3]
		c20, c21, c22, c23 = o2[0], o2[1], o2[2], o2[3]
		c30, c31, c32, c33 = o3[0], o3[1], o3[2], o3[3]
	}
	for p := 0; p < kc; p++ {
		b := bp[p*gemmNR : p*gemmNR+gemmNR]
		b3 := b[3]
		b0, b1, b2 := b[0], b[1], b[2]
		av := a0[p]
		c00 += av * b0
		c01 += av * b1
		c02 += av * b2
		c03 += av * b3
		av = a1[p]
		c10 += av * b0
		c11 += av * b1
		c12 += av * b2
		c13 += av * b3
		av = a2[p]
		c20 += av * b0
		c21 += av * b1
		c22 += av * b2
		c23 += av * b3
		av = a3[p]
		c30 += av * b0
		c31 += av * b1
		c32 += av * b2
		c33 += av * b3
	}
	o0[0], o0[1], o0[2], o0[3] = c00, c01, c02, c03
	o1[0], o1[1], o1[2], o1[3] = c10, c11, c12, c13
	o2[0], o2[1], o2[2], o2[3] = c20, c21, c22, c23
	o3[0], o3[1], o3[2], o3[3] = c30, c31, c32, c33
}

// gemmKern1x4 handles leftover rows below one micro-tile, four columns at
// a time.
func gemmKern1x4(a, bp []float32, kc int, o []float32, acc bool) {
	var c0, c1, c2, c3 float32
	if acc {
		c0, c1, c2, c3 = o[0], o[1], o[2], o[3]
	}
	for p := 0; p < kc; p++ {
		b := bp[p*gemmNR : p*gemmNR+gemmNR]
		b3 := b[3]
		b0, b1, b2 := b[0], b[1], b[2]
		av := a[p]
		c0 += av * b0
		c1 += av * b1
		c2 += av * b2
		c3 += av * b3
	}
	o[0], o[1], o[2], o[3] = c0, c1, c2, c3
}
