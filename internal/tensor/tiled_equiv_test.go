package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/neurosym/nsbench/internal/backend"
)

// The tiled kernels promise results bit-identical to the naive loops for
// every shape and every Runner: tiling reorders which output elements are
// in flight, never the order of additions within one element. These tests
// pin that contract with random shapes plus a deliberate edge-shape table
// (unit dimensions, non-multiples of the register tile, shapes crossing
// the KC/NC cache-block boundaries, padded and strided convs).

func matMulNaive(a, b *Tensor) *Tensor           { return MatMulKernelOn(Serial, KernelNaive, a, b) }
func matMulTiled(r Runner, a, b *Tensor) *Tensor { return MatMulKernelOn(r, KernelTiled, a, b) }

// gemmEdgeShapes are the corner shapes the random generator is unlikely to
// hit: unit dims, one-off-a-tile dims, and dims crossing the packed-panel
// (NC) and k-slab (KC) block boundaries.
var gemmEdgeShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 5},
	{5, 1, 9},
	{9, 13, 1},
	{gemmMR, gemmKC, gemmNR},
	{gemmMR - 1, 3, gemmNR - 1},
	{gemmMR + 1, 5, gemmNR + 1},
	{2*gemmMR + 3, gemmKC + 1, gemmNR + 2},
	{3, gemmKC - 1, gemmNC + 1},
	{7, 2*gemmKC + 5, 2*gemmNC + 3},
	{16, 16, 4096%(2*gemmNC) + 2*gemmNC}, // NVSA-head-like wide n
}

func TestTiledMatMulBitIdenticalToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, s := range gemmEdgeShapes {
		a, b := randTensor(rng, s.m, s.k), randTensor(rng, s.k, s.n)
		want := matMulNaive(a, b)
		if !bitsEqual(t, "MatMul(tiled,serial)", want, matMulTiled(Serial, a, b)) {
			t.Fatalf("shape m=%d k=%d n=%d", s.m, s.k, s.n)
		}
	}
	prop := func(m8, k16, n16 uint16, seed int64) bool {
		m, k, n := int(m8%24)+1, int(k16%600)+1, int(n16%300)+1
		rng := rand.New(rand.NewSource(seed))
		a, b := randTensor(rng, m, k), randTensor(rng, k, n)
		return bitsEqual(t, "MatMul(tiled)", matMulNaive(a, b), matMulTiled(Serial, a, b))
	}
	if err := quick.Check(prop, equivCfg(11)); err != nil {
		t.Error(err)
	}
}

func TestTiledMatMulBitIdenticalOnParallelBackends(t *testing.T) {
	withBackends(t, func(t *testing.T, be *backend.Parallel) {
		rng := rand.New(rand.NewSource(43))
		for _, s := range gemmEdgeShapes {
			a, b := randTensor(rng, s.m, s.k), randTensor(rng, s.k, s.n)
			if !bitsEqual(t, "MatMul(tiled,parallel)", matMulNaive(a, b), matMulTiled(be, a, b)) {
				t.Fatalf("shape m=%d k=%d n=%d", s.m, s.k, s.n)
			}
		}
	})
}

func TestTiledBatchMatMulBitIdenticalToNaive(t *testing.T) {
	withBackends(t, func(t *testing.T, be *backend.Parallel) {
		prop := func(b8, m8, k8, n8 uint8, seed int64) bool {
			bs, m, k, n := int(b8%4)+1, int(m8%20)+1, int(k8%40)+1, int(n8%40)+1
			rng := rand.New(rand.NewSource(seed))
			a, b := randTensor(rng, bs, m, k), randTensor(rng, bs, k, n)
			want := BatchMatMulKernelOn(Serial, KernelNaive, a, b)
			ok := bitsEqual(t, "BatchMatMul(tiled,serial)", want, BatchMatMulKernelOn(Serial, KernelTiled, a, b))
			return ok && bitsEqual(t, "BatchMatMul(tiled,parallel)", want, BatchMatMulKernelOn(be, KernelTiled, a, b))
		}
		if err := quick.Check(prop, equivCfg(12)); err != nil {
			t.Error(err)
		}
	})
}

// convEdgeCases cover padded vs unpadded, strided, kernel-as-big-as-input,
// and width-below-the-interior-block shapes.
var convEdgeCases = []struct{ n, cin, cout, h, w, kh, kw, stride, pad int }{
	{1, 1, 1, 1, 1, 1, 1, 1, 0},
	{1, 1, 1, 3, 3, 3, 3, 1, 0},    // output 1×1, no interior
	{1, 2, 3, 8, 8, 3, 3, 1, 1},    // classic padded same-conv
	{2, 3, 4, 9, 9, 3, 3, 2, 1},    // strided + padded
	{1, 1, 2, 5, 5, 5, 5, 1, 2},    // kernel covers input, heavy padding
	{1, 4, 4, 6, 17, 3, 3, 1, 1},   // wide rows: interior 4-block + remainder
	{1, 2, 2, 7, 7, 1, 1, 1, 0},    // 1×1 conv
	{3, 1, 8, 32, 32, 3, 3, 1, 1},  // NVSA CNN first-layer shape
	{1, 3, 16, 32, 32, 3, 3, 1, 1}, // VSAIT encoder shape
	{1, 2, 2, 10, 10, 3, 3, 3, 2},  // stride > 1 with pad
	{1, 1, 1, 4, 12, 2, 4, 2, 3},   // asymmetric kernel, big pad
}

func TestTiledConv2DBitIdenticalToNaive(t *testing.T) {
	withBackends(t, func(t *testing.T, be *backend.Parallel) {
		rng := rand.New(rand.NewSource(44))
		for _, c := range convEdgeCases {
			in := randTensor(rng, c.n, c.cin, c.h, c.w)
			w := randTensor(rng, c.cout, c.cin, c.kh, c.kw)
			bias := randTensor(rng, c.cout)
			for _, bs := range []*Tensor{nil, bias} {
				want := Conv2DKernelOn(Serial, KernelNaive, in, w, bs, c.stride, c.pad)
				if !bitsEqual(t, "Conv2D(tiled,serial)", want, Conv2DKernelOn(Serial, KernelTiled, in, w, bs, c.stride, c.pad)) {
					t.Fatalf("case %+v bias=%v", c, bs != nil)
				}
				if !bitsEqual(t, "Conv2D(tiled,parallel)", want, Conv2DKernelOn(be, KernelTiled, in, w, bs, c.stride, c.pad)) {
					t.Fatalf("case %+v bias=%v", c, bs != nil)
				}
			}
		}
	})
}

func TestTiledConv2DBitIdenticalRandomShapes(t *testing.T) {
	prop := func(cin8, cout8, h8, w8, s8, p8 uint8, seed int64) bool {
		cin, cout := int(cin8%4)+1, int(cout8%5)+1
		h, w := int(h8%14)+3, int(w8%20)+3
		kh, kw := 3, 3
		stride, pad := int(s8%3)+1, int(p8%3)
		if h+2*pad < kh || w+2*pad < kw {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		in := randTensor(rng, 1, cin, h, w)
		wt := randTensor(rng, cout, cin, kh, kw)
		want := Conv2DKernelOn(Serial, KernelNaive, in, wt, nil, stride, pad)
		return bitsEqual(t, "Conv2D(tiled)", want, Conv2DKernelOn(Serial, KernelTiled, in, wt, nil, stride, pad))
	}
	if err := quick.Check(prop, equivCfg(13)); err != nil {
		t.Error(err)
	}
}

// TestMatVecMatchesMatMulColumn pins the package accumulation contract:
// MatVec accumulates in float32, so MatVec(a, x) is bit-identical to
// MatMul(a, x viewed as a k×1 column) under every kernel.
func TestMatVecMatchesMatMulColumn(t *testing.T) {
	prop := func(m8, k16 uint16, seed int64) bool {
		m, k := int(m8%48)+1, int(k16%700)+1
		rng := rand.New(rand.NewSource(seed))
		a, x := randTensor(rng, m, k), randTensor(rng, k)
		col := New(k, 1)
		copy(col.Data(), x.Data())
		mv := MatVecOn(Serial, a, x)
		for _, kern := range []Kernel{KernelNaive, KernelTiled, KernelAuto} {
			mm := MatMulKernelOn(Serial, kern, a, col)
			for i, v := range mv.Data() {
				if mm.Data()[i] != v {
					t.Errorf("kernel %v: element %d: MatVec %v, MatMul column %v", kern, i, v, mm.Data()[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, equivCfg(14)); err != nil {
		t.Error(err)
	}
}

// TestGemmDispatchTable pins the auto-dispatch decisions: pure shape
// function, skinny/small shapes stay naive, large shapes go tiled.
func TestGemmDispatchTable(t *testing.T) {
	cases := []struct {
		m, k, n int
		want    Kernel
	}{
		{1, 4096, 4096, KernelNaive},          // NVSA codebook encode: m below tile
		{4096, 4096, 1, KernelNaive},          // GEMV-like: n below tile
		{4, 16, 4, KernelNaive},               // under the work floor
		{16, 16, 4096, KernelTiled},           // NVSA linear head
		{256, 256, 256, KernelTiled},          // square GEMM
		{gemmMR, gemmKC, gemmNR, KernelNaive}, // 2·4·512·4 = 16 KFLOP < floor
	}
	for _, c := range cases {
		if got := gemmKernel(KernelAuto, c.m, c.k, c.n); got != c.want {
			t.Errorf("gemmKernel(auto, %d, %d, %d) = %v, want %v", c.m, c.k, c.n, got, c.want)
		}
		// Explicit selections always win over the table.
		if got := gemmKernel(KernelNaive, c.m, c.k, c.n); got != KernelNaive {
			t.Errorf("gemmKernel(naive, ...) = %v", got)
		}
		if got := gemmKernel(KernelTiled, c.m, c.k, c.n); got != KernelTiled {
			t.Errorf("gemmKernel(tiled, ...) = %v", got)
		}
	}
	if got := convKernel(KernelAuto, convTiledMinWout-1); got != KernelNaive {
		t.Errorf("convKernel(auto, narrow) = %v, want naive", got)
	}
	if got := convKernel(KernelAuto, 32); got != KernelTiled {
		t.Errorf("convKernel(auto, 32) = %v, want tiled", got)
	}
}

func TestParseKernel(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Kernel
	}{{"", KernelAuto}, {"auto", KernelAuto}, {"naive", KernelNaive}, {"tiled", KernelTiled}} {
		got, err := ParseKernel(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseKernel(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if got.String() == "" {
			t.Errorf("Kernel(%v).String() empty", got)
		}
	}
	if _, err := ParseKernel("blocked"); err == nil {
		t.Error("ParseKernel(\"blocked\") should fail")
	}
}

// TestPool2DValidation pins the pooling window/stride validation: k<1 and
// s<1 must panic with a diagnostic instead of the raw divide-by-zero (s=0)
// or silently bogus output the unvalidated loops produced.
func TestPool2DValidation(t *testing.T) {
	in := New(1, 1, 4, 4)
	cases := []struct {
		name string
		k, s int
	}{
		{"k=0", 0, 1}, {"k=-1", -1, 1}, {"s=0", 2, 0}, {"s=-2", 2, -2},
	}
	for _, c := range cases {
		for _, pool := range []struct {
			name string
			fn   func()
		}{
			{"MaxPool2D", func() { MaxPool2D(in, c.k, c.s) }},
			{"AvgPool2D", func() { AvgPool2D(in, c.k, c.s) }},
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s %s: expected panic", pool.name, c.name)
					}
				}()
				pool.fn()
			}()
		}
	}
	// Valid parameters still work.
	out := MaxPool2D(in, 2, 2)
	if out.Dim(2) != 2 || out.Dim(3) != 2 {
		t.Fatalf("MaxPool2D valid case produced %v", out.Shape())
	}
}
