package tensor

// Tiled direct convolution.
//
// The tiled variant keeps the naive kernel's per-pixel accumulation order
// (ic, ky, kx ascending, invalid taps skipped) but restructures the work
// per output row:
//
//   - the iteration space is tiled over output rows — one (batch, channel,
//     oy) row per unit — so parallel chunking is fine-grained and each
//     row's input slab is touched by exactly one chunk;
//   - the valid ky band for the row is computed once (per-row clip)
//     instead of testing iy per tap;
//   - the row's interior — the ox span whose receptive field lies fully
//     inside the input — is computed once, and runs a fast path with no
//     per-pixel padding bound checks at all: a four-wide register block
//     accumulates four output pixels per weight load, and a one-wide
//     check-free kernel finishes the span;
//   - only the (at most pad/stride-sized) row edges run the naive checked
//     per-pixel loop.
//
// Every output element still receives its taps in the naive order with one
// float32 rounding per multiply-add, so results are bit-identical.

// conv2DRowsTiled computes output rows [lo, hi) of the flattened
// (batch·cout·hout) row space, bit-identical to the naive plane loop.
func conv2DRowsTiled(in, wd, bias, od []float32, cin, h, w, cout, hout, wout, kh, kw, stride, pad int) func(lo, hi int) {
	// Interior ox span: every kx tap of every pixel in [oxI0, oxI1) is in
	// bounds. ox*stride-pad >= 0 and ox*stride-pad+kw <= w.
	oxI0 := 0
	if pad > 0 {
		oxI0 = (pad + stride - 1) / stride
	}
	oxI1 := (w - kw + pad) / stride
	if w-kw+pad < 0 {
		oxI1 = -1
	}
	oxI1++
	if oxI1 > wout {
		oxI1 = wout
	}
	if oxI0 > oxI1 {
		oxI0 = oxI1
	}
	s2, s3 := 2*stride, 3*stride

	return func(lo, hi int) {
		for row := lo; row < hi; row++ {
			oy := row % hout
			bc := row / hout
			b, oc := bc/cout, bc%cout
			var bv float32
			if bias != nil {
				bv = bias[oc]
			}
			iy0 := oy*stride - pad
			// Valid ky band for this output row: 0 <= iy0+ky < h.
			kyLo, kyHi := 0, kh
			if iy0 < 0 {
				kyLo = -iy0
			}
			if iy0+kyHi > h {
				kyHi = h - iy0
			}
			orow := od[(bc*hout+oy)*wout:]

			// Left edge: per-pixel checked loop (naive body).
			for ox := 0; ox < oxI0; ox++ {
				orow[ox] = convPixelChecked(in, wd, bv, b, oc, cin, h, w, kh, kw, iy0, ox*stride-pad)
			}
			// Interior fast path: four pixels per weight load, then one-wide.
			ox := oxI0
			for ; ox+4 <= oxI1; ox += 4 {
				ix0 := ox*stride - pad
				acc0, acc1, acc2, acc3 := bv, bv, bv, bv
				for ic := 0; ic < cin; ic++ {
					inBase := ((b*cin+ic)*h)*w + ix0
					wBase := (oc*cin + ic) * kh * kw
					for ky := kyLo; ky < kyHi; ky++ {
						rowIn := in[inBase+(iy0+ky)*w:]
						rowW := wd[wBase+ky*kw : wBase+ky*kw+kw]
						for kx, wv := range rowW {
							acc0 += rowIn[kx] * wv
							acc1 += rowIn[kx+stride] * wv
							acc2 += rowIn[kx+s2] * wv
							acc3 += rowIn[kx+s3] * wv
						}
					}
				}
				orow[ox], orow[ox+1], orow[ox+2], orow[ox+3] = acc0, acc1, acc2, acc3
			}
			for ; ox < oxI1; ox++ {
				ix0 := ox*stride - pad
				acc := bv
				for ic := 0; ic < cin; ic++ {
					inBase := ((b*cin+ic)*h)*w + ix0
					wBase := (oc*cin + ic) * kh * kw
					for ky := kyLo; ky < kyHi; ky++ {
						rowIn := in[inBase+(iy0+ky)*w:]
						rowW := wd[wBase+ky*kw : wBase+ky*kw+kw]
						for kx, wv := range rowW {
							acc += rowIn[kx] * wv
						}
					}
				}
				orow[ox] = acc
			}
			// Right edge: per-pixel checked loop.
			for ox = oxI1; ox < wout; ox++ {
				orow[ox] = convPixelChecked(in, wd, bv, b, oc, cin, h, w, kh, kw, iy0, ox*stride-pad)
			}
		}
	}
}

// convPixelChecked is the naive per-pixel tap loop with full padding bound
// checks, used for the row edges. It is a transliteration of the Conv2DOn
// inner body so edge pixels accumulate exactly as the naive kernel does.
func convPixelChecked(in, wd []float32, bv float32, b, oc, cin, h, w, kh, kw, iy0, ix0 int) float32 {
	acc := bv
	for ic := 0; ic < cin; ic++ {
		inBase := ((b*cin + ic) * h) * w
		wBase := ((oc*cin + ic) * kh) * kw
		for ky := 0; ky < kh; ky++ {
			iy := iy0 + ky
			if iy < 0 || iy >= h {
				continue
			}
			rowIn := inBase + iy*w
			rowW := wBase + ky*kw
			for kx := 0; kx < kw; kx++ {
				ix := ix0 + kx
				if ix < 0 || ix >= w {
					continue
				}
				acc += in[rowIn+ix] * wd[rowW+kx]
			}
		}
	}
	return acc
}
