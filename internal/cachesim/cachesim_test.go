package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallHierarchy() *Hierarchy {
	return NewHierarchy(
		NewCache("L1", 4*1024, 4, 64),
		NewCache("L2", 64*1024, 8, 64),
	)
}

func TestCacheHitOnRepeat(t *testing.T) {
	c := NewCache("L1", 1024, 2, 64)
	if c.Access(0) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(0) {
		t.Fatal("repeat access must hit")
	}
	if !c.Access(63) {
		t.Fatal("same-line access must hit")
	}
	if c.Access(64) {
		t.Fatal("next line must miss")
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v", c.HitRate())
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 64B lines, 2 sets (256B total). Lines 0, 2, 4 map to set 0.
	c := NewCache("L1", 256, 2, 64)
	c.Access(0 * 64)
	c.Access(2 * 64)
	c.Access(0 * 64) // refresh line 0
	c.Access(4 * 64) // evicts line 2 (LRU)
	if !c.Access(0 * 64) {
		t.Fatal("line 0 should have been retained")
	}
	if c.Access(2 * 64) {
		t.Fatal("line 2 should have been evicted")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache("L1", 1024, 2, 64)
	c.Access(0)
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Fatal("Reset must clear counters")
	}
	if c.Access(0) {
		t.Fatal("Reset must clear contents")
	}
}

func TestHierarchyPropagation(t *testing.T) {
	h := smallHierarchy()
	h.Access(0) // miss L1, miss L2, DRAM
	if h.DRAMBytes != 64 {
		t.Fatalf("DRAMBytes = %d", h.DRAMBytes)
	}
	h.Access(0) // L1 hit; nothing below
	if h.L2.Accesses != 1 {
		t.Fatalf("L2 accesses = %d", h.L2.Accesses)
	}
	st := h.Stats()
	if st.L1Accesses != 2 || st.L1HitRate != 0.5 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.String() == "" {
		t.Fatal("Stats.String empty")
	}
	h.Reset()
	if h.DRAMBytes != 0 || h.L1.Accesses != 0 {
		t.Fatal("hierarchy Reset incomplete")
	}
}

func TestL2CapturesL1Evictions(t *testing.T) {
	h := smallHierarchy()
	// Working set of 32 KB: far beyond L1 (4 KB), fits L2 (64 KB).
	for pass := 0; pass < 4; pass++ {
		for off := uint64(0); off < 32*1024; off += 64 {
			h.Access(off)
		}
	}
	st := h.Stats()
	if st.L1HitRate > 0.1 {
		t.Fatalf("L1 hit rate should be ~0 for streaming, got %v", st.L1HitRate)
	}
	if st.L2HitRate < 0.7 {
		t.Fatalf("L2 should capture the reuse, hit rate = %v", st.L2HitRate)
	}
}

func TestGEMMStreamSignature(t *testing.T) {
	// GEMM whose B matrix exceeds L1 but fits L2: the classic low-L1 /
	// high-L2 signature from the paper's Table IV.
	h := smallHierarchy()
	GEMMStream(h, 32, 32, 64, 4, 1<<20)
	st := h.Stats()
	if st.L1HitRate > 0.2 {
		t.Fatalf("GEMM L1 hit rate should be low, got %v", st.L1HitRate)
	}
	if st.L2HitRate < 0.6 {
		t.Fatalf("GEMM L2 hit rate should be high, got %v", st.L2HitRate)
	}
}

func TestEltwiseInPlaceHitRate(t *testing.T) {
	// Unary in-place kernels: read misses, write hits → ~50% L1.
	h := smallHierarchy()
	EltwiseStream(h, 1, 1, 256*1024, true, 1<<20)
	st := h.Stats()
	if st.L1HitRate < 0.45 || st.L1HitRate > 0.55 {
		t.Fatalf("in-place eltwise L1 hit rate = %v, want ~0.5", st.L1HitRate)
	}
}

func TestEltwiseStreamingDRAMBound(t *testing.T) {
	// Binary streaming over a working set far beyond L2: nearly all
	// traffic reaches DRAM.
	h := smallHierarchy()
	EltwiseStream(h, 2, 1, 1<<20, false, 1<<21)
	st := h.Stats()
	if st.L1HitRate > 0.1 {
		t.Fatalf("streaming L1 hit rate = %v", st.L1HitRate)
	}
	frac := float64(st.DRAMBytes) / float64(st.L1Accesses*64)
	if frac < 0.9 {
		t.Fatalf("DRAM fraction = %v, want ~1", frac)
	}
}

func TestEltwiseChainProducerConsumerReuse(t *testing.T) {
	// Chained passes over a set that fits L2: later passes hit in L2.
	// Analytically, with P passes each reading the previous output and
	// writing a fresh region, (P-1) of the 2P line touches hit: 0.375 at P=4.
	h := smallHierarchy()
	EltwiseStream(h, 1, 4, 16*1024, false, 1<<20)
	st := h.Stats()
	if st.L2HitRate < 0.35 {
		t.Fatalf("chained eltwise should reuse via L2, hit rate = %v", st.L2HitRate)
	}
	// A single pass over fresh data has no such reuse.
	h2 := smallHierarchy()
	EltwiseStream(h2, 1, 1, 16*1024, false, 1<<20)
	if one := h2.Stats().L2HitRate; one >= st.L2HitRate {
		t.Fatalf("single pass L2 hit %v should be below chained %v", one, st.L2HitRate)
	}
}

func TestGatherStreamIrregular(t *testing.T) {
	h := smallHierarchy()
	// Table far larger than L2: random gathers mostly miss everywhere.
	GatherStream(h, 8<<20, 4096, 1, 1<<20)
	st := h.Stats()
	if st.L1HitRate > 0.5 {
		t.Fatalf("gather L1 hit rate = %v", st.L1HitRate)
	}
	if st.DRAMBytes == 0 {
		t.Fatal("gather should reach DRAM")
	}
}

func TestConvStreamReuse(t *testing.T) {
	h := smallHierarchy()
	// Small input revisited 9 times (3x3 kernel): caches should capture it.
	ConvStream(h, 2*1024, 512, 2*1024, 9, 1<<20)
	st := h.Stats()
	if st.L1HitRate < 0.5 {
		t.Fatalf("conv reuse should hit in L1, rate = %v", st.L1HitRate)
	}
}

func TestStreamBudgetsRespected(t *testing.T) {
	h := smallHierarchy()
	n := GEMMStream(h, 1000, 1000, 1000, 4, 1000)
	if n != 1000 {
		t.Fatalf("GEMMStream emitted %d, budget 1000", n)
	}
	h.Reset()
	n = EltwiseStream(h, 2, 10, 1<<20, false, 500)
	if n != 500 {
		t.Fatalf("EltwiseStream emitted %d", n)
	}
	h.Reset()
	n = GatherStream(h, 1<<20, 1<<20, 1, 200)
	if n != 200 {
		t.Fatalf("GatherStream emitted %d", n)
	}
	h.Reset()
	n = ConvStream(h, 1<<20, 1<<20, 1<<20, 3, 300)
	if n != 300 {
		t.Fatalf("ConvStream emitted %d", n)
	}
}

func TestPropHitRateBounds(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := NewCache("t", 512, 2, 32)
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		hr := c.HitRate()
		return hr >= 0 && hr <= 1
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropLargerCacheNeverWorse(t *testing.T) {
	// Hit-rate monotonicity over repeated scans: a larger cache must not
	// have a lower hit rate on cyclic streaming patterns.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ws := uint64(1+rng.Intn(64)) * 1024
		small := NewCache("s", 2*1024, 4, 64)
		large := NewCache("l", 128*1024, 4, 64)
		for pass := 0; pass < 3; pass++ {
			for off := uint64(0); off < ws; off += 64 {
				small.Access(off)
				large.Access(off)
			}
		}
		return large.HitRate() >= small.HitRate()-1e-12
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
