// Package cachesim implements a set-associative LRU cache hierarchy
// simulator plus synthetic per-kernel address-stream generators.
//
// It stands in for the Nsight cache counters of the original study: each
// operator class (tiled GEMM, streaming element-wise, irregular gather)
// generates a characteristic address stream; running the stream through a
// two-level hierarchy yields the L1/L2 hit rates and DRAM traffic the
// Table-IV analysis reports.
package cachesim

import "fmt"

// Cache is one set-associative level with LRU replacement.
type Cache struct {
	name     string
	lineSize int
	sets     int
	ways     int
	// tags[set][way] holds line tags; lru[set][way] holds recency counters.
	tags [][]uint64
	lru  [][]uint64
	tick uint64

	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache of the given total size (bytes), associativity
// and line size. Size must be a multiple of ways*lineSize.
func NewCache(name string, sizeBytes, ways, lineSize int) *Cache {
	if sizeBytes <= 0 || ways <= 0 || lineSize <= 0 {
		panic("cachesim: non-positive cache geometry")
	}
	sets := sizeBytes / (ways * lineSize)
	if sets == 0 {
		sets = 1
	}
	c := &Cache{
		name:     name,
		lineSize: lineSize,
		sets:     sets,
		ways:     ways,
		tags:     make([][]uint64, sets),
		lru:      make([][]uint64, sets),
	}
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
		c.lru[i] = make([]uint64, ways)
		for w := range c.tags[i] {
			c.tags[i][w] = ^uint64(0) // invalid
		}
	}
	return c
}

// Name returns the level's label.
func (c *Cache) Name() string { return c.name }

// LineSize returns the cache line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

// Access touches the line containing addr. It returns true on hit. On miss
// the line is installed with LRU replacement.
func (c *Cache) Access(addr uint64) bool {
	c.tick++
	c.Accesses++
	line := addr / uint64(c.lineSize)
	set := int(line % uint64(c.sets))
	tag := line / uint64(c.sets)
	ways := c.tags[set]
	for w, t := range ways {
		if t == tag {
			c.lru[set][w] = c.tick
			return true
		}
	}
	c.Misses++
	// Replace the least recently used way.
	victim := 0
	for w := 1; w < c.ways; w++ {
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	ways[victim] = tag
	c.lru[set][victim] = c.tick
	return false
}

// Clone returns a fresh cache with the same geometry and empty contents
// and counters. Concurrent simulations must not share a Cache (Access
// mutates tags, recency and counters on every call); cloning the geometry
// gives each goroutine its own state.
func (c *Cache) Clone() *Cache {
	return NewCache(c.name, c.sets*c.ways*c.lineSize, c.ways, c.lineSize)
}

// HitRate returns hits/accesses, or 0 for an untouched cache.
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return 1 - float64(c.Misses)/float64(c.Accesses)
}

// Reset clears statistics and contents.
func (c *Cache) Reset() {
	for i := range c.tags {
		for w := range c.tags[i] {
			c.tags[i][w] = ^uint64(0)
			c.lru[i][w] = 0
		}
	}
	c.Accesses, c.Misses, c.tick = 0, 0, 0
}

// Hierarchy is an inclusive two-level cache hierarchy in front of DRAM.
type Hierarchy struct {
	L1, L2 *Cache
	// DRAMBytes accumulates the traffic that missed in L2.
	DRAMBytes uint64
}

// NewHierarchy builds a two-level hierarchy.
func NewHierarchy(l1, l2 *Cache) *Hierarchy {
	if l1.lineSize > l2.lineSize {
		panic("cachesim: L1 line larger than L2 line")
	}
	return &Hierarchy{L1: l1, L2: l2}
}

// Access touches addr at L1; misses propagate to L2 and then DRAM.
func (h *Hierarchy) Access(addr uint64) {
	if h.L1.Access(addr) {
		return
	}
	if h.L2.Access(addr) {
		return
	}
	h.DRAMBytes += uint64(h.L2.lineSize)
}

// Clone returns a fresh hierarchy with the same L1/L2 geometry and empty
// contents and counters. A Hierarchy is not safe for concurrent use; sweep
// shards that replay the same access stream in parallel clone one
// prototype hierarchy per goroutine instead of sharing mutable cache
// state.
func (h *Hierarchy) Clone() *Hierarchy {
	return NewHierarchy(h.L1.Clone(), h.L2.Clone())
}

// Stats summarizes a simulated stream.
type Stats struct {
	L1Accesses, L2Accesses uint64
	L1HitRate, L2HitRate   float64
	DRAMBytes              uint64
}

// Stats returns current statistics.
func (h *Hierarchy) Stats() Stats {
	return Stats{
		L1Accesses: h.L1.Accesses,
		L2Accesses: h.L2.Accesses,
		L1HitRate:  h.L1.HitRate(),
		L2HitRate:  h.L2.HitRate(),
		DRAMBytes:  h.DRAMBytes,
	}
}

// Reset clears all levels and counters.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.DRAMBytes = 0
}

// String renders the hierarchy's statistics.
func (s Stats) String() string {
	return fmt.Sprintf("L1 %.1f%% (%d acc), L2 %.1f%% (%d acc), DRAM %d B",
		100*s.L1HitRate, s.L1Accesses, 100*s.L2HitRate, s.L2Accesses, s.DRAMBytes)
}
