package cachesim

import "math/rand"

// Synthetic address-stream generators, one per kernel class.
//
// Accesses are emitted at cache-line granularity, modelling the coalesced
// transactions of a GPU memory system (a warp's 32 adjacent 4-byte lanes
// form one line-sized transaction), so intra-line spatial reuse does not
// inflate hit rates. Distinct operands live in disjoint address regions.
// Every generator honours a maxAccesses budget: streams are sampled
// prefixes, which is sound because hit rates are rates, not totals.

// region returns the base address of operand i.
func region(i int) uint64 { return uint64(i) << 40 }

// GEMMStream emits the access pattern of a register-blocked i-k-j GEMM of
// an m×k by k×n product: each A element is read once; for every i the whole
// of B streams through the hierarchy; C is accumulated in registers and
// written once at the end of each row. This reproduces the signature GEMM
// cache behaviour: very low L1 hit rate (B exceeds L1 and is evicted every
// row) with a high L2 hit rate (B resident in L2), and little DRAM traffic
// relative to the FLOPs executed.
func GEMMStream(h *Hierarchy, m, k, n, elemSize, maxAccesses int) int {
	line := uint64(h.L1.LineSize())
	aBase, bBase, cBase := region(0), region(1), region(2)
	emitted := 0
	aRowBytes := uint64(k * elemSize)
	bRowBytes := uint64(n * elemSize)
	cRowBytes := uint64(n * elemSize)
	for i := 0; i < m; i++ {
		// A row, streamed once.
		for off := uint64(0); off < aRowBytes; off += line {
			h.Access(aBase + uint64(i)*aRowBytes + off)
			if emitted++; emitted >= maxAccesses {
				return emitted
			}
		}
		// All of B, streamed per output row.
		for p := 0; p < k; p++ {
			for off := uint64(0); off < bRowBytes; off += line {
				h.Access(bBase + uint64(p)*bRowBytes + off)
				if emitted++; emitted >= maxAccesses {
					return emitted
				}
			}
		}
		// C row written once (register accumulation).
		for off := uint64(0); off < cRowBytes; off += line {
			h.Access(cBase + uint64(i)*cRowBytes + off)
			if emitted++; emitted >= maxAccesses {
				return emitted
			}
		}
	}
	return emitted
}

// EltwiseStream emits the pattern of a chain of element-wise kernels over a
// shared working set: `passes` successive kernels, each reading `reads`
// operands and writing one output of wsBytes each. Consecutive passes reuse
// the previous pass's output (producer→consumer reuse), which is what gives
// symbolic element-wise pipelines their partial L2 hit rates while DRAM
// bandwidth stays saturated for working sets beyond L2.
//
// The unary read-modify-write special case (reads=1, output aliased with
// the input) models kernels like ReLU, whose write hits the line its read
// just fetched, yielding the characteristic ~50% L1 hit rate.
func EltwiseStream(h *Hierarchy, reads, passes int, wsBytes int64, inPlace bool, maxAccesses int) int {
	line := uint64(h.L1.LineSize())
	emitted := 0
	for pass := 0; pass < passes; pass++ {
		// Operand regions rotate so pass p reads pass p-1's output.
		outRegion := region(pass + 1)
		if inPlace {
			outRegion = region(pass)
		}
		for off := uint64(0); off < uint64(wsBytes); off += line {
			for r := 0; r < reads; r++ {
				src := region(pass - r)
				if pass-r < 0 {
					src = region(16 + r) // fresh inputs for the first passes
				}
				h.Access(src + off)
				if emitted++; emitted >= maxAccesses {
					return emitted
				}
			}
			h.Access(outRegion + off)
			if emitted++; emitted >= maxAccesses {
				return emitted
			}
		}
	}
	return emitted
}

// GatherStream emits `count` random line-granularity reads over a table of
// tableBytes plus a sequential write of the gathered output — the irregular
// pattern of symbolic lookups, codebook probes and sparse indexing.
func GatherStream(h *Hierarchy, tableBytes int64, count int, seed int64, maxAccesses int) int {
	line := uint64(h.L1.LineSize())
	lines := uint64(tableBytes) / line
	if lines == 0 {
		lines = 1
	}
	rng := rand.New(rand.NewSource(seed))
	table, out := region(0), region(1)
	emitted := 0
	for i := 0; i < count; i++ {
		h.Access(table + uint64(rng.Int63n(int64(lines)))*line)
		if emitted++; emitted >= maxAccesses {
			return emitted
		}
		// Output written sequentially, one line per gathered row batch.
		h.Access(out + uint64(i)*line/4)
		if emitted++; emitted >= maxAccesses {
			return emitted
		}
	}
	return emitted
}

// ConvStream emits the pattern of a direct convolution: the input tile is
// revisited by overlapping kernel windows (high reuse, mostly L1-resident
// for small tiles), weights are tiny and resident, and the output streams.
func ConvStream(h *Hierarchy, inBytes, weightBytes, outBytes int64, reuse int, maxAccesses int) int {
	line := uint64(h.L1.LineSize())
	in, wt, out := region(0), region(1), region(2)
	emitted := 0
	// Weights loaded once.
	for off := uint64(0); off < uint64(weightBytes); off += line {
		h.Access(wt + off)
		if emitted++; emitted >= maxAccesses {
			return emitted
		}
	}
	// Input revisited `reuse` times (overlapping windows).
	for r := 0; r < reuse; r++ {
		for off := uint64(0); off < uint64(inBytes); off += line {
			h.Access(in + off)
			if emitted++; emitted >= maxAccesses {
				return emitted
			}
		}
	}
	// Output streamed once.
	for off := uint64(0); off < uint64(outBytes); off += line {
		h.Access(out + off)
		if emitted++; emitted >= maxAccesses {
			return emitted
		}
	}
	return emitted
}
