package cachesim

import (
	"sync"
	"testing"
)

func testHierarchy() *Hierarchy {
	return NewHierarchy(
		NewCache("L1", 32*1024, 4, 64),
		NewCache("L2", 1024*1024, 16, 64),
	)
}

func TestCloneGeometryAndFreshCounters(t *testing.T) {
	h := testHierarchy()
	// Dirty the prototype so the clone's freshness is observable.
	GEMMStream(h, 16, 16, 16, 4, 1<<12)
	if h.L1.Accesses == 0 {
		t.Fatal("prototype saw no accesses")
	}
	c := h.Clone()
	if c.L1.Accesses != 0 || c.L1.Misses != 0 || c.L2.Accesses != 0 || c.DRAMBytes != 0 {
		t.Fatalf("clone counters not fresh: %+v", c.Stats())
	}
	if c.L1.LineSize() != h.L1.LineSize() || c.L2.LineSize() != h.L2.LineSize() {
		t.Fatal("clone changed line sizes")
	}
	if c.L1.sets != h.L1.sets || c.L1.ways != h.L1.ways || c.L2.sets != h.L2.sets || c.L2.ways != h.L2.ways {
		t.Fatalf("clone changed geometry: L1 %d/%d vs %d/%d, L2 %d/%d vs %d/%d",
			c.L1.sets, c.L1.ways, h.L1.sets, h.L1.ways, c.L2.sets, c.L2.ways, h.L2.sets, h.L2.ways)
	}
	// Same stream over the clone reproduces the prototype's stats exactly:
	// geometry is all that determines hit behaviour.
	GEMMStream(c, 16, 16, 16, 4, 1<<12)
	if c.Stats() != h.Stats() {
		t.Fatalf("clone stats %v != prototype stats %v", c.Stats(), h.Stats())
	}
	// And the clone never perturbed the prototype.
	before := h.Stats()
	c2 := h.Clone()
	EltwiseStream(c2, 2, 2, 1<<16, false, 1<<12)
	if h.Stats() != before {
		t.Fatal("accessing a clone mutated the prototype")
	}
}

// TestCloneConcurrentReplay replays one identical access stream over
// per-goroutine clones of a single prototype hierarchy, under -race in
// CI. Every clone must report identical statistics and the race detector
// must stay silent — the property concurrent sweep shards rely on.
func TestCloneConcurrentReplay(t *testing.T) {
	proto := testHierarchy()
	want := proto.Clone()
	replay := func(h *Hierarchy) {
		GEMMStream(h, 24, 24, 24, 4, 1<<13)
		EltwiseStream(h, 2, 2, 1<<15, false, 1<<12)
		GatherStream(h, 1<<18, 512, 1, 1<<12)
	}
	replay(want)

	const goroutines = 8
	stats := make([]Stats, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := proto.Clone()
			replay(h)
			stats[i] = h.Stats()
		}(i)
	}
	wg.Wait()
	for i, st := range stats {
		if st != want.Stats() {
			t.Fatalf("goroutine %d stats %v != reference %v", i, st, want.Stats())
		}
	}
}
