package cachesim

import "testing"

// streamsHierarchy is small enough that the generators exercise both
// capacity misses (B exceeds L1) and residency (weights fit everywhere).
func streamsHierarchy() *Hierarchy {
	return NewHierarchy(
		NewCache("L1", 16*1024, 4, 64),
		NewCache("L2", 256*1024, 16, 64),
	)
}

// TestStreamsDeterministic pins that every generator is a pure function
// of its arguments: the same call on an identically configured hierarchy
// emits the same number of accesses and produces identical statistics.
// GatherStream's randomness comes from an explicit seed, so it is covered
// by the same property.
func TestStreamsDeterministic(t *testing.T) {
	runs := []struct {
		name string
		gen  func(h *Hierarchy) int
	}{
		{"gemm", func(h *Hierarchy) int { return GEMMStream(h, 24, 24, 24, 4, 1<<14) }},
		{"eltwise", func(h *Hierarchy) int { return EltwiseStream(h, 2, 3, 1<<15, false, 1<<14) }},
		{"eltwise-inplace", func(h *Hierarchy) int { return EltwiseStream(h, 1, 2, 1<<14, true, 1<<14) }},
		{"gather", func(h *Hierarchy) int { return GatherStream(h, 1<<18, 1024, 7, 1<<14) }},
		{"conv", func(h *Hierarchy) int { return ConvStream(h, 1<<14, 1<<10, 1<<14, 3, 1<<14) }},
	}
	for _, run := range runs {
		h1, h2 := streamsHierarchy(), streamsHierarchy()
		n1, n2 := run.gen(h1), run.gen(h2)
		if n1 != n2 {
			t.Fatalf("%s: emitted %d then %d accesses", run.name, n1, n2)
		}
		if n1 == 0 {
			t.Fatalf("%s: emitted no accesses", run.name)
		}
		if h1.Stats() != h2.Stats() {
			t.Fatalf("%s: stats diverged: %v vs %v", run.name, h1.Stats(), h2.Stats())
		}
	}
}

// TestStreamsReplayIdempotentAfterReset pins that Reset fully clears the
// hierarchy: replaying the same stream after a Reset reproduces the first
// replay's statistics exactly (no contents or counters leak through).
func TestStreamsReplayIdempotentAfterReset(t *testing.T) {
	h := streamsHierarchy()
	GEMMStream(h, 32, 32, 32, 4, 1<<14)
	GatherStream(h, 1<<19, 512, 3, 1<<13)
	first := h.Stats()

	h.Reset()
	if h.Stats() != (Stats{}) {
		t.Fatalf("Reset left residual stats: %v", h.Stats())
	}
	GEMMStream(h, 32, 32, 32, 4, 1<<14)
	GatherStream(h, 1<<19, 512, 3, 1<<13)
	if h.Stats() != first {
		t.Fatalf("replay after Reset diverged: %v vs %v", h.Stats(), first)
	}
	// Without a Reset the second replay sees warm caches, so the pinned
	// property is specifically about Reset, not about replay in general.
	GEMMStream(h, 32, 32, 32, 4, 1<<14)
	if h.L1.HitRate() <= first.L1HitRate {
		t.Fatalf("warm replay should raise the L1 hit rate: %v <= %v", h.L1.HitRate(), first.L1HitRate)
	}
}

// TestStreamHitRateStability pins the qualitative cache signatures the
// kernel-stats model depends on, and that they are stable across repeated
// Reset/replay cycles.
func TestStreamHitRateStability(t *testing.T) {
	h := streamsHierarchy()
	var prev Stats
	for i := 0; i < 3; i++ {
		h.Reset()
		// B is 24KB (96x64x4): exceeds the 16KB L1 (evicted every row) but
		// is L2-resident, the signature GEMM shape.
		GEMMStream(h, 64, 96, 64, 4, 1<<20)
		st := h.Stats()
		if i > 0 && st != prev {
			t.Fatalf("cycle %d: stats drifted: %v vs %v", i, st, prev)
		}
		prev = st
		if st.L2HitRate < 0.5 {
			t.Fatalf("GEMM L2 hit rate %.2f, want B resident in L2 (> 0.5)", st.L2HitRate)
		}
		if st.L1HitRate > st.L2HitRate {
			t.Fatalf("GEMM L1 hit rate %.2f above L2 %.2f — B should thrash L1", st.L1HitRate, st.L2HitRate)
		}
	}

	// The in-place unary eltwise signature: each line is fetched once and
	// immediately re-hit by the write, giving ~50% L1 hits.
	h.Reset()
	EltwiseStream(h, 1, 1, 1<<20, true, 1<<20)
	if r := h.Stats().L1HitRate; r < 0.45 || r > 0.55 {
		t.Fatalf("in-place unary eltwise L1 hit rate %.2f, want ~0.5", r)
	}

	// Gather over a table far beyond L2 mostly misses everywhere.
	h.Reset()
	GatherStream(h, 1<<26, 4096, 11, 1<<14)
	if r := h.Stats().L2HitRate; r > 0.3 {
		t.Fatalf("gather over a 64MB table L2 hit rate %.2f, want mostly misses", r)
	}
}

// TestStreamsHonourBudget pins the maxAccesses contract: generators stop
// at the budget and report exactly how many accesses they emitted.
func TestStreamsHonourBudget(t *testing.T) {
	const budget = 100
	h := streamsHierarchy()
	if n := GEMMStream(h, 1<<10, 1<<10, 1<<10, 4, budget); n != budget {
		t.Fatalf("GEMMStream emitted %d, budget %d", n, budget)
	}
	if h.L1.Accesses != budget {
		t.Fatalf("hierarchy saw %d accesses, budget %d", h.L1.Accesses, budget)
	}
	h.Reset()
	if n := EltwiseStream(h, 3, 5, 1<<20, false, budget); n != budget {
		t.Fatalf("EltwiseStream emitted %d, budget %d", n, budget)
	}
	h.Reset()
	if n := GatherStream(h, 1<<20, 1<<20, 1, budget); n != budget {
		t.Fatalf("GatherStream emitted %d, budget %d", n, budget)
	}
	h.Reset()
	if n := ConvStream(h, 1<<20, 1<<10, 1<<20, 4, budget); n != budget {
		t.Fatalf("ConvStream emitted %d, budget %d", n, budget)
	}
	// A generous budget is not a target: short streams end early.
	h.Reset()
	if n := GEMMStream(h, 2, 2, 2, 4, 1<<20); n >= 1<<20 || n == 0 {
		t.Fatalf("tiny GEMM emitted %d accesses", n)
	}
}
