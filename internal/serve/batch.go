package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"github.com/neurosym/nsbench/internal/core"
	"github.com/neurosym/nsbench/internal/hwsim"
)

// Request coalescing. With Config.BatchWindow > 0, cache-missing requests
// for the same workload that arrive within the window are grouped into one
// pending batch and executed as a single batched engine pass
// (core.CharacterizeBatch). The batch contract is replica semantics, so
// every item's report is byte-identical to what a solo run would have
// produced — coalescing changes throughput, never results. Items of one
// group may name different analysis devices: the device only matters to
// the per-item analysis, not to execution, so it does not fragment groups.
//
// A group flushes when its window timer fires, when it reaches BatchMax
// items, or when the server drains on Close. Groups count against the
// admission queue's capacity from the moment they are created, which
// guarantees the flush-time queue send can never block while holding the
// server mutex.

// batchGroup is one pending batch: flights for the same workload waiting
// for the coalescing window to close.
type batchGroup struct {
	workload string
	flights  []*flight
	timer    *time.Timer
	flushed  bool
}

// admitLocked places f in the admission queue (coalescing disabled) or in
// a pending batch group. The caller holds s.mu and registers the flight
// in the singleflight table on success. Returns false when the server is
// saturated.
func (s *Server) admitLocked(f *flight) bool {
	if s.cfg.BatchWindow <= 0 {
		// The queue is buffered, making the reservation non-blocking.
		select {
		case s.queue <- []*flight{f}:
			return true
		default:
			return false
		}
	}
	if g, ok := s.pending[f.req.Workload]; ok && !g.flushed {
		g.flights = append(g.flights, f)
		if len(g.flights) >= s.cfg.BatchMax {
			s.flushLocked(g, "full")
		}
		return true
	}
	// A new group needs a queue slot it is guaranteed to get at flush
	// time: pending groups count against queue capacity, so the sum of
	// queued batches and pending groups never exceeds the queue's buffer
	// and the flush send below cannot block.
	if len(s.queue)+len(s.pending) >= cap(s.queue) {
		return false
	}
	g := &batchGroup{workload: f.req.Workload, flights: []*flight{f}}
	g.timer = time.AfterFunc(s.cfg.BatchWindow, func() { s.flushTimer(g) })
	s.pending[f.req.Workload] = g
	return true
}

// flushLocked moves a pending group into the worker queue. The caller
// holds s.mu. The send cannot block: the group has held a queue slot
// reservation since admitLocked created it.
func (s *Server) flushLocked(g *batchGroup, outcome string) {
	g.flushed = true
	if g.timer != nil {
		g.timer.Stop()
	}
	delete(s.pending, g.workload)
	s.st.coalesceFlushes.With(outcome).Inc()
	s.queue <- g.flights
}

// flushTimer is the window-expiry path. A group already flushed (full, or
// drained by Close) is left alone; after shutdown the queue may be closed,
// so the timer never sends.
func (s *Server) flushTimer(g *batchGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g.flushed || s.shutdown {
		return
	}
	s.flushLocked(g, "window")
}

// drainPendingLocked flushes every pending group into the queue ahead of
// queue close. The caller holds s.mu with shutdown already set.
func (s *Server) drainPendingLocked() {
	for _, g := range s.pending {
		if !g.flushed {
			s.flushLocked(g, "drain")
		}
	}
}

// runBatch executes one dequeued batch: abandoned flights are retired
// individually, a singleton falls through to the solo path, and a real
// batch runs one batched characterization whose per-item reports finish
// each flight — and fill the cache — individually.
func (s *Server) runBatch(fs []*flight) {
	dequeued := time.Now()
	live := make([]*flight, 0, len(fs))
	for _, f := range fs {
		if f.loadWaiting() == 0 {
			s.st.abandoned.Inc()
			f.err = errors.New("abandoned: all waiters left the queue")
			f.code = http.StatusServiceUnavailable
			s.finish(f, false)
			continue
		}
		// Queue wait: admission (or group creation) to worker pickup,
		// recorded per flight so each request's timeline shows its own gap.
		if !f.enqueuedAt.IsZero() {
			s.recordServeSpanAt(f.id, "queue.wait", f.enqueuedAt, dequeued)
		}
		live = append(live, f)
	}
	if len(live) == 0 {
		return
	}
	if s.cfg.BatchWindow > 0 {
		// The coalescing window itself, attributed to the batch leader
		// (whose ID also scopes the batched pass's engine events).
		if lead := live[0]; !lead.enqueuedAt.IsZero() {
			s.recordServeSpanAt(lead.id, "batch.window", lead.enqueuedAt, dequeued)
		}
		s.st.batches.Inc()
		s.st.batchItems.Add(uint64(len(live)))
		s.st.occupancy.Observe(float64(len(live)))
	}
	if len(live) == 1 {
		s.runFlight(live[0])
		return
	}
	s.st.inflight.Inc()
	start := time.Now()
	results, err := s.characterizeBatch(live)
	s.st.recordRun(time.Since(start))
	s.st.inflight.Dec()
	if err != nil {
		s.st.failures.Inc()
		for _, f := range live {
			f.err = err
			s.finish(f, false)
		}
		return
	}
	for i, f := range live {
		f.res = results[i]
		s.finish(f, true)
	}
}

// characterizeBatch runs the flights' shared workload once as a batch of
// len(fs) items — one per flight, each analyzed against its own device —
// and returns the marshaled per-item reports in flight order. Recorder
// attribution is scoped under the first flight's request ID (the batch
// leader), mirroring the singleflight convention.
func (s *Server) characterizeBatch(fs []*flight) ([][]byte, error) {
	bw, err := core.BuildBatchWorkload(fs[0].req.Workload)
	if err != nil {
		return nil, err
	}
	defer core.CloseWorkload(bw)
	items := make([]core.ItemOptions, len(fs))
	for i, f := range fs {
		dev, err := hwsim.DeviceByName(f.req.Device)
		if err != nil {
			return nil, err
		}
		items[i] = core.ItemOptions{Device: dev}
	}
	reports, err := core.CharacterizeBatch(bw, len(fs), core.Options{Pool: s.pool, Observer: s.runObserver(fs[0].id)}, items...)
	if err != nil {
		return nil, err
	}
	if len(reports) > 0 {
		// One engine pass served the whole group; its timeline lives under
		// the leader's ID like the recorder events do.
		s.recordRunSpans(fs[0].id, reports[0].Trace)
	}
	out := make([][]byte, len(reports))
	for i, r := range reports {
		b, err := json.Marshal(r)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}
