package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/neurosym/nsbench/internal/dse"
	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/metrics"
	"github.com/neurosym/nsbench/internal/trace"
)

// ExploreRequest selects one design-space sweep: a workload/device pair
// (canonicalized exactly like /v1/characterize) plus the config space to
// sweep and, for cluster fan-out, this replica's shard of the grid.
type ExploreRequest struct {
	Workload string    `json:"workload"`
	Device   string    `json:"device,omitempty"`
	Space    dse.Space `json:"space"`
	// ShardIndex/ShardCount select the grid indices congruent to
	// ShardIndex mod ShardCount. Zero ShardCount means the whole grid.
	ShardIndex int `json:"shard_index"`
	ShardCount int `json:"shard_count"`
}

// traceEntry is one cached (or in-flight) workload characterization trace.
// The trace-once/project-many contract lives here: the first sweep for a
// (workload, device) pair runs the workload once; every later sweep — and
// every concurrent one, via the done channel — projects over the cached
// trace without re-executing anything.
type traceEntry struct {
	done chan struct{} // closed when tr/err are final
	tr   *trace.Trace
	err  error
}

// workloadTrace returns the characterization trace for a canonical
// request, running the workload at most once per key (failures are not
// cached, so a transient error doesn't poison the key).
func (s *Server) workloadTrace(key string, req Request, runID string) (*trace.Trace, error) {
	s.traceMu.Lock()
	if s.traces == nil {
		s.traces = make(map[string]*traceEntry)
	}
	e, ok := s.traces[key]
	if ok {
		s.traceMu.Unlock()
		<-e.done
		return e.tr, e.err
	}
	e = &traceEntry{done: make(chan struct{})}
	s.traces[key] = e
	s.traceMu.Unlock()

	start := time.Now()
	report, err := s.run(req, runID)
	if err != nil {
		e.err = err
		s.traceMu.Lock()
		delete(s.traces, key)
		s.traceMu.Unlock()
	} else {
		e.tr = report.Trace
		s.st.recordRun(time.Since(start))
	}
	close(e.done)
	return e.tr, e.err
}

// exploreMetrics groups the ns_explore_* instruments.
type exploreMetrics struct {
	sweeps       *metrics.Counter   // ns_explore_sweeps_total
	points       *metrics.Counter   // ns_explore_points_total
	shardsInFly  *metrics.Gauge     // ns_explore_shards_inflight
	pointsPerSec *metrics.Gauge     // ns_explore_points_per_sec (last sweep)
	frontSize    *metrics.Histogram // ns_explore_front_size
}

// newExploreMetrics registers the sweep instruments in reg.
func newExploreMetrics(reg *metrics.Registry) exploreMetrics {
	return exploreMetrics{
		sweeps: reg.Counter("ns_explore_sweeps_total", "Design-space sweeps completed."),
		points: reg.Counter("ns_explore_points_total", "Design-space grid points evaluated."),
		shardsInFly: reg.Gauge("ns_explore_shards_inflight",
			"Sweep shards streaming right now."),
		pointsPerSec: reg.Gauge("ns_explore_points_per_sec",
			"Evaluation throughput of the most recently completed sweep."),
		frontSize: reg.Histogram("ns_explore_front_size",
			"Pareto front size per completed sweep.", []float64{1, 2, 4, 8, 16, 32, 64}),
	}
}

// handleExplore streams one design-space sweep as NDJSON: a meta chunk,
// one point chunk per evaluated grid index, and a closing summary chunk
// carrying the shard's Pareto front. The stream is flushed per point, so a
// client sees results incrementally while the sweep runs.
//
// Sweeps ride the trace cache, not the report cache/admission queue: the
// expensive part (characterizing the workload) happens at most once per
// canonical key, and projection afterwards is microseconds per point. A
// small semaphore (Config.ExploreConcurrency) still bounds concurrent
// sweeps — a 10k-point grid is real CPU work — answering 429 +
// Retry-After when saturated, mirroring the admission queue's contract.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodPost) {
		return
	}
	var req ExploreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	canon, key, err := canonicalize(Request{Workload: req.Workload, Device: req.Device})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	dev, err := hwsim.DeviceByName(canon.Device)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	grid, err := dse.Resolve(dev, req.Space)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if grid.Size() > s.cfg.ExploreMaxPoints {
		http.Error(w, fmt.Sprintf("grid has %d points, limit %d; narrow the space",
			grid.Size(), s.cfg.ExploreMaxPoints), http.StatusBadRequest)
		return
	}
	shardCount := req.ShardCount
	if shardCount <= 0 {
		shardCount = 1
	}
	if req.ShardIndex < 0 || req.ShardIndex >= shardCount {
		http.Error(w, fmt.Sprintf("shard_index %d out of range [0, %d)", req.ShardIndex, shardCount),
			http.StatusBadRequest)
		return
	}

	select {
	case s.exploreSem <- struct{}{}:
		defer func() { <-s.exploreSem }()
	default:
		s.st.rejected.Inc()
		w.Header().Set("Retry-After", s.retryAfterHint())
		http.Error(w, "explore concurrency limit reached", http.StatusTooManyRequests)
		return
	}
	s.xm.shardsInFly.Inc()
	defer s.xm.shardsInFly.Dec()

	id := requestID(r)
	tr, err := s.workloadTrace(key, canon, id)
	if err != nil {
		s.st.failures.Inc()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	engine := dse.NewEngine(grid, tr)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeChunk := func(c dse.Chunk) error {
		if err := enc.Encode(c); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	if err := writeChunk(dse.Chunk{Type: "meta", Meta: &dse.ChunkMeta{
		Workload:   canon.Workload,
		Device:     canon.Device,
		GridSize:   grid.Size(),
		ShardIndex: req.ShardIndex,
		ShardCount: shardCount,
	}}); err != nil {
		return
	}

	sweepStart := time.Now()
	sum, err := engine.Sweep(r.Context(), req.ShardIndex, shardCount, func(p dse.PointResult) error {
		s.xm.points.Inc()
		s.st.pointsEvaluated.Inc()
		return writeChunk(dse.Chunk{Type: "point", Point: &p})
	})
	if err != nil {
		// The stream is already committed; all we can do is stop. A client
		// disconnect (context cancellation / write error) is the normal way
		// a streaming request is abandoned, so count it with the timeouts.
		if errors.Is(err, r.Context().Err()) || r.Context().Err() != nil {
			s.st.timeouts.Inc()
		} else {
			s.st.failures.Inc()
		}
		s.recordExploreSpan(id, canon, req.ShardIndex, shardCount, 0, time.Since(sweepStart))
		return
	}
	sum.Workload = canon.Workload
	sum.Device = canon.Device
	s.xm.sweeps.Inc()
	s.st.sweepsRun.Inc()
	s.xm.pointsPerSec.Set(sum.PointsPerSec)
	s.xm.frontSize.Observe(float64(sum.FrontSize))
	s.recordExploreSpan(id, canon, req.ShardIndex, shardCount, sum.Evaluated, time.Since(sweepStart))
	writeChunk(dse.Chunk{Type: "summary", Summary: sum})
}

// recordExploreSpan drops one synthetic "explore.sweep" event into the
// flight recorder under the request's ID, so /debug/trace shows sweeps
// next to the operator events they projected from: the stage carries the
// shard coordinates and the byte count carries the points evaluated.
func (s *Server) recordExploreSpan(id string, canon Request, shardIndex, shardCount, points int, dur time.Duration) {
	if s.recorder == nil {
		return
	}
	rec := s.recorder.Observer(id)
	rec(&trace.Event{
		Name:     "explore.sweep",
		Kernel:   "explore",
		Stage:    fmt.Sprintf("%s shard %d/%d", canon.Workload, shardIndex, shardCount),
		Dur:      dur,
		Bytes:    int64(points),
		Sparsity: -1,
	})
}
