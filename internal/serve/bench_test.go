package serve

import (
	"net/http"
	"testing"
)

// BenchmarkServeCacheHit measures the hot path: canonicalize, cache lookup,
// write cached bytes. No characterization executes after the first request.
func BenchmarkServeCacheHit(b *testing.B) {
	resetCtl(false)
	s := newTestServer(b, Config{})
	h := s.Handler()
	if rec := post(h, `{"workload":"testfast"}`); rec.Code != http.StatusOK {
		b.Fatalf("priming request: %d %s", rec.Code, rec.Body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := post(h, `{"workload":"testfast"}`); rec.Code != http.StatusOK {
			b.Fatalf("request: %d", rec.Code)
		}
	}
	b.StopTimer()
	if s.st.runs.Value() != 1 {
		b.Fatalf("cache-hit benchmark executed %d runs, want 1", s.st.runs.Value())
	}
}

// BenchmarkServeMiss measures the full pipeline — admission queue, flight
// dispatch, characterization, report rendering — with the cache disabled so
// every request is a miss.
func BenchmarkServeMiss(b *testing.B) {
	resetCtl(false)
	s := newTestServer(b, Config{CacheSize: -1})
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := post(h, `{"workload":"testfast"}`); rec.Code != http.StatusOK {
			b.Fatalf("request: %d %s", rec.Code, rec.Body)
		}
	}
}
