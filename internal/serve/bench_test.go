package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/neurosym/nsbench/internal/hwsim"
)

// BenchmarkServeCacheHit measures the hot path: canonicalize, cache lookup,
// write cached bytes. No characterization executes after the first request.
func BenchmarkServeCacheHit(b *testing.B) {
	resetCtl(false)
	s := newTestServer(b, Config{})
	h := s.Handler()
	if rec := post(h, `{"workload":"testfast"}`); rec.Code != http.StatusOK {
		b.Fatalf("priming request: %d %s", rec.Code, rec.Body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := post(h, `{"workload":"testfast"}`); rec.Code != http.StatusOK {
			b.Fatalf("request: %d", rec.Code)
		}
	}
	b.StopTimer()
	if s.st.runs.Value() != 1 {
		b.Fatalf("cache-hit benchmark executed %d runs, want 1", s.st.runs.Value())
	}
}

// BenchmarkServeMiss measures the full pipeline — admission queue, flight
// dispatch, characterization, report rendering — with the cache disabled so
// every request is a miss.
func BenchmarkServeMiss(b *testing.B) {
	resetCtl(false)
	s := newTestServer(b, Config{CacheSize: -1})
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := post(h, `{"workload":"testfast"}`); rec.Code != http.StatusOK {
			b.Fatalf("request: %d %s", rec.Code, rec.Body)
		}
	}
}

// benchServeConcurrent drives b.N cache-missing characterize requests
// through cfg with the given client concurrency, cycling the analysis
// device so concurrent requests carry distinct cache keys (identical keys
// would measure singleflight, not the execution path under test).
func benchServeConcurrent(b *testing.B, cfg Config, clients int) {
	resetCtl(false)
	registerBatchWorkload()
	s := newTestServer(b, cfg)
	h := s.Handler()
	devs := hwsim.AllDevices()
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					return
				}
				dev := devs[i%len(devs)].Name
				rec := post(h, fmt.Sprintf(`{"workload":"testbatch","device":%q}`, dev))
				if rec.Code != http.StatusOK {
					b.Errorf("request: %d %s", rec.Code, rec.Body)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkServeBatch compares cache-miss serving throughput with and
// without request coalescing at client concurrencies 8 and 32. The
// workload is the native-batch testbatch, whose amplified pass makes a
// coalesced batch of n cost about one solo run — the serving win the
// batching tier exists for. Results are recorded in BENCH_baseline.json.
func BenchmarkServeBatch(b *testing.B) {
	for _, clients := range []int{8, 32} {
		b.Run(fmt.Sprintf("unbatched/c%d", clients), func(b *testing.B) {
			benchServeConcurrent(b, Config{CacheSize: -1, QueueDepth: 256}, clients)
		})
		b.Run(fmt.Sprintf("batched/c%d", clients), func(b *testing.B) {
			benchServeConcurrent(b, Config{
				CacheSize:   -1,
				QueueDepth:  256,
				BatchWindow: 2 * time.Millisecond,
				BatchMax:    8,
			}, clients)
		})
	}
}
