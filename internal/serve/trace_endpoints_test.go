package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/neurosym/nsbench/internal/trace"
)

// getWith is get with request headers (e.g. an inbound X-Request-ID).
func getWith(h http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestRequestIDAssignedAndEchoed(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	h := s.Handler()

	rec := get(h, "/healthz")
	if id := rec.Header().Get("X-Request-ID"); id == "" {
		t.Fatal("no X-Request-ID assigned")
	}
	// Distinct requests get distinct generated IDs.
	if a, b := get(h, "/healthz").Header().Get("X-Request-ID"),
		get(h, "/healthz").Header().Get("X-Request-ID"); a == b {
		t.Fatalf("generated IDs collide: %q", a)
	}
	// An inbound ID is honored verbatim.
	rec = getWith(h, "/healthz", map[string]string{"X-Request-ID": "caller-7"})
	if id := rec.Header().Get("X-Request-ID"); id != "caller-7" {
		t.Fatalf("inbound ID not echoed: %q", id)
	}
}

func TestTraceEndpointChromeFormat(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	h := s.Handler()

	rec := get(h, "/v1/trace?workload=testfast")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	stats, err := trace.ValidateChrome(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("/v1/trace chrome output invalid: %v", err)
	}
	if stats.Events == 0 {
		t.Fatal("chrome trace has no events")
	}
}

func TestTraceEndpointJSONFormat(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	h := s.Handler()

	rec := get(h, "/v1/trace?workload=testfast&format=json")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var doc struct {
		Events []struct {
			Name string `json:"name"`
		} `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.Events) == 0 {
		t.Fatal("native trace has no events")
	}
}

func TestTraceEndpointRejectsBadInput(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	h := s.Handler()

	if rec := get(h, "/v1/trace?workload=nope"); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown workload: status = %d", rec.Code)
	}
	if rec := get(h, "/v1/trace"); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing workload: status = %d", rec.Code)
	}
	if rec := get(h, "/v1/trace?workload=testfast&format=xml"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad format: status = %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/trace", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status = %d", rec.Code)
	}
}

func TestDebugTraceReportsRequestScopedEvents(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{RecorderSize: 32})
	h := s.Handler()

	req := httptest.NewRequest(http.MethodPost, "/v1/characterize",
		strings.NewReader(`{"workload":"testfast"}`))
	req.Header.Set("X-Request-ID", "flight-1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("characterize: status = %d: %s", rec.Code, rec.Body.String())
	}

	dump := get(h, "/debug/trace")
	if dump.Code != http.StatusOK {
		t.Fatalf("debug/trace: status = %d", dump.Code)
	}
	var doc struct {
		Capacity int    `json:"capacity"`
		Total    uint64 `json:"total"`
		Dropped  uint64 `json:"dropped"`
		Events   []struct {
			ID    string `json:"id"`
			Name  string `json:"name"`
			Phase string `json:"phase"`
			Time  string `json:"time"`
		} `json:"events"`
	}
	if err := json.Unmarshal(dump.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Capacity != 32 || doc.Total == 0 || len(doc.Events) == 0 {
		t.Fatalf("recorder dump = cap %d total %d events %d", doc.Capacity, doc.Total, len(doc.Events))
	}
	for _, ev := range doc.Events {
		if ev.ID != "flight-1" {
			t.Fatalf("event %q scoped to %q, want flight-1", ev.Name, ev.ID)
		}
		if ev.Time == "" || ev.Phase == "" {
			t.Fatalf("event missing time/phase: %+v", ev)
		}
	}
}

func TestDebugTraceDisabled(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{RecorderSize: -1})
	if rec := get(s.Handler(), "/debug/trace"); rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
}

func TestPprofOptIn(t *testing.T) {
	resetCtl(false)
	off := newTestServer(t, Config{})
	if rec := get(off.Handler(), "/debug/pprof/cmdline"); rec.Code != http.StatusNotFound {
		t.Fatalf("pprof reachable without opt-in: status = %d", rec.Code)
	}
	on := newTestServer(t, Config{Pprof: true})
	if rec := get(on.Handler(), "/debug/pprof/cmdline"); rec.Code != http.StatusOK {
		t.Fatalf("pprof opt-in: status = %d", rec.Code)
	}
}

func TestRequestLogging(t *testing.T) {
	resetCtl(false)
	var buf bytes.Buffer
	s := newTestServer(t, Config{
		Logger: slog.New(slog.NewTextHandler(&buf, nil)),
	})
	getWith(s.Handler(), "/healthz", map[string]string{"X-Request-ID": "log-me"})
	line := buf.String()
	for _, want := range []string{"method=GET", "path=/healthz", "status=200", "id=log-me"} {
		if !strings.Contains(line, want) {
			t.Fatalf("log line missing %q: %s", want, line)
		}
	}
}

func TestRequestTraceEndpoint(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{RecorderSize: 64, NodeName: "replica-test"})
	h := s.Handler()

	req := httptest.NewRequest(http.MethodPost, "/v1/characterize",
		strings.NewReader(`{"workload":"testfast"}`))
	req.Header.Set("X-Request-ID", "stitch-1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("characterize: status = %d: %s", rec.Code, rec.Body.String())
	}

	dump := get(h, "/v1/trace?request_id=stitch-1")
	if dump.Code != http.StatusOK {
		t.Fatalf("request trace: status = %d: %s", dump.Code, dump.Body.String())
	}
	var rt trace.RequestTrace
	if err := json.Unmarshal(dump.Body.Bytes(), &rt); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rt.RequestID != "stitch-1" || rt.Node != "replica-test" {
		t.Fatalf("trace scoped to %q on %q, want stitch-1 on replica-test", rt.RequestID, rt.Node)
	}
	if len(rt.Events) == 0 {
		t.Fatal("no engine events in request trace")
	}
	spans := map[string]bool{}
	for _, sp := range rt.Spans {
		spans[sp.Name] = true
		if sp.StartUnixNs <= 0 || sp.DurNs < 0 {
			t.Fatalf("span %q has bad extent: start %d dur %d", sp.Name, sp.StartUnixNs, sp.DurNs)
		}
	}
	for _, want := range []string{"serve.characterize", "cache.probe(miss)", "queue.wait"} {
		if !spans[want] {
			t.Fatalf("spans = %v, missing %q", spans, want)
		}
	}

	// An ID the recorder never saw yields an empty (but well-formed) trace.
	var empty trace.RequestTrace
	other := get(h, "/v1/trace?request_id=nope")
	if err := json.Unmarshal(other.Body.Bytes(), &empty); err != nil {
		t.Fatal(err)
	}
	if len(empty.Events) != 0 || len(empty.Spans) != 0 {
		t.Fatalf("unknown ID returned %d events, %d spans", len(empty.Events), len(empty.Spans))
	}
}

func TestRequestTraceEndpointDisabled(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{RecorderSize: -1})
	if rec := get(s.Handler(), "/v1/trace?request_id=x"); rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 with recorder disabled", rec.Code)
	}
}
