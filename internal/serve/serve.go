// Package serve turns the one-shot characterization pipeline into a
// long-running HTTP/JSON service. It exposes the workload registry
// (/v1/workloads), characterization (/v1/characterize) and operational
// counters (/v1/stats), and layers three serving concerns over
// core.Characterize:
//
//   - an LRU report cache keyed by the canonicalized request — the
//     backend determinism contract makes reports a pure function of the
//     request, so cache hits are byte-identical to misses;
//   - singleflight deduplication — N concurrent identical requests run
//     one characterization and share its bytes;
//   - a bounded admission queue with backpressure — when the queue is
//     full the server answers 429 + Retry-After instead of piling up
//     goroutines, and queued work whose waiters have all left is dropped
//     before it wastes a worker.
//
// Every characterization borrows an engine from one shared ops.Pool, so a
// server process runs one backend worker pool for its whole lifetime and
// Close tears it down deterministically.
//
// The server is fully observable: every serving counter, per-endpoint
// request/latency histogram, cache/queue/pool gauge, per-operator timing,
// and Go runtime sample lives in one metrics.Registry, scraped at
// /metrics (Prometheus text format). /v1/stats remains the legacy JSON
// view over the same counters. /healthz answers liveness probes
// (process up) and /readyz answers readiness probes (not draining) —
// the split lets a draining replica be ejected from a load balancer or
// the cluster router (internal/cluster) before its listener closes.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/neurosym/nsbench/internal/core"
	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/metrics"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/slo"
	"github.com/neurosym/nsbench/internal/trace"
)

// Config parameterizes a Server. The zero value serves on a serial
// backend with production-ish defaults.
type Config struct {
	// Engine selects the execution backend shared by every
	// characterization run ("serial" default, or "parallel").
	Engine ops.Config
	// CacheSize is the LRU capacity in reports; 0 selects 128, negative
	// disables caching.
	CacheSize int
	// QueueDepth bounds the admission queue; 0 selects 64. A full queue
	// rejects new work with 429.
	QueueDepth int
	// Concurrency is the number of characterization workers; 0 selects 2.
	Concurrency int
	// RequestTimeout caps how long a request waits for its report
	// (queueing included); 0 selects 60s.
	RequestTimeout time.Duration
	// Metrics, when non-nil, is the registry the server publishes into;
	// nil gives the server a private registry. Share one registry when a
	// process embeds several instrumented components behind one /metrics.
	Metrics *metrics.Registry
	// RecorderSize is the flight-recorder capacity in operator events;
	// 0 selects 512, negative disables the recorder (and /debug/trace).
	RecorderSize int
	// Logger, when non-nil, receives one structured line per HTTP request
	// (method, path, status, duration, request ID). Nil disables logging.
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/ when true. Off by
	// default: profiling endpoints are opt-in on shared deployments.
	Pprof bool
	// BatchWindow, when positive, enables request coalescing: cache-missing
	// requests for the same workload arriving within the window execute as
	// one batched engine pass with per-item reports (and cache fills).
	// Zero disables coalescing — the library default; cmd/nsserve enables
	// it with a 2ms window.
	BatchWindow time.Duration
	// BatchMax caps how many requests coalesce into one batch; a full
	// group flushes immediately instead of waiting out the window. 0
	// selects 8. Only meaningful with BatchWindow > 0.
	BatchMax int
	// ExploreMaxPoints caps the grid size a single /v1/explore sweep may
	// request; 0 selects 65536. Larger grids are rejected with 400 — split
	// them across shards (the cluster router does this automatically).
	ExploreMaxPoints int
	// ExploreConcurrency bounds concurrently streaming sweeps; 0 selects 2.
	// At the limit new sweeps answer 429 + Retry-After.
	ExploreConcurrency int
	// NodeName identifies this replica in cross-process trace stitching
	// (the pid label of its slice of a stitched timeline). Empty selects
	// "<hostname>-<pid>". A routing tier typically overrides it with the
	// replica's URL when it assembles the stitched view.
	NodeName string
	// SLO parameterizes the burn-rate windows and budget period of the
	// server's objectives; the zero value selects the slo package
	// defaults (1s sampling, 1h period, 1m/5m windows).
	SLO slo.Config
	// SLOAvailabilityTarget is the non-5xx success-ratio objective over
	// all HTTP responses; 0 selects 0.999.
	SLOAvailabilityTarget float64
	// SLOLatencyTarget is the fraction of /v1/characterize responses that
	// must finish within SLOLatencyThreshold; 0 selects 0.95.
	SLOLatencyTarget float64
	// SLOLatencyThreshold is the latency objective's cutoff; 0 selects
	// 250ms.
	SLOLatencyThreshold time.Duration
}

func (c *Config) defaults() {
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Concurrency == 0 {
		c.Concurrency = 2
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.RecorderSize == 0 {
		c.RecorderSize = trace.DefaultRecorderCapacity
	}
	if c.BatchMax == 0 {
		c.BatchMax = 8
	}
	if c.ExploreMaxPoints == 0 {
		c.ExploreMaxPoints = 1 << 16
	}
	if c.ExploreConcurrency == 0 {
		c.ExploreConcurrency = 2
	}
	if c.NodeName == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "nsserve"
		}
		c.NodeName = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if c.SLOAvailabilityTarget == 0 {
		c.SLOAvailabilityTarget = 0.999
	}
	if c.SLOLatencyTarget == 0 {
		c.SLOLatencyTarget = 0.95
	}
	if c.SLOLatencyThreshold == 0 {
		c.SLOLatencyThreshold = 250 * time.Millisecond
	}
}

// Request selects one characterization: a registered workload and the
// reference device for roofline/projection analysis.
type Request struct {
	Workload string `json:"workload"`
	// Device is the hwsim reference device name; empty selects the
	// paper's RTX 2080 Ti.
	Device string `json:"device,omitempty"`
}

// canonicalize validates req and returns its normalized form plus the
// cache key. Two requests that mean the same characterization always
// canonicalize to the same key (whitespace trimmed, workload name
// case-folded against the registry, device resolved to its model name),
// which is what makes the cache and singleflight effective.
func canonicalize(req Request) (Request, string, error) {
	name := strings.TrimSpace(req.Workload)
	if name == "" {
		return Request{}, "", errors.New("missing workload")
	}
	resolved := ""
	for _, known := range core.WorkloadNames() {
		if strings.EqualFold(known, name) {
			resolved = known
			break
		}
	}
	if resolved == "" {
		return Request{}, "", fmt.Errorf("unknown workload %q (known: %s)", name, strings.Join(core.WorkloadNames(), ", "))
	}
	devName := strings.TrimSpace(req.Device)
	if devName == "" {
		devName = hwsim.RTX2080Ti.Name
	}
	var dev hwsim.Device
	found := false
	for _, d := range hwsim.AllDevices() {
		if strings.EqualFold(d.Name, devName) {
			dev, found = d, true
			break
		}
	}
	if !found {
		return Request{}, "", fmt.Errorf("unknown device %q", devName)
	}
	canon := Request{Workload: resolved, Device: dev.Name}
	return canon, canon.Workload + "\x00" + canon.Device, nil
}

// Canonicalize validates req and returns its normalized form plus the
// cache key the server shards and caches under. It is exported for the
// routing tier (internal/cluster): a router that hashes the same key the
// replicas cache under gives every canonical request one owning replica,
// so per-replica LRUs and singleflight stay maximally effective and
// cluster cache capacity scales linearly with replica count.
func Canonicalize(req Request) (Request, string, error) {
	return canonicalize(req)
}

// flight is one in-progress characterization that any number of identical
// requests wait on.
type flight struct {
	key  string
	req  Request
	id   string        // leader's request ID, scopes flight-recorder entries
	done chan struct{} // closed when res/err are final
	res  []byte
	err  error
	code int // HTTP status to pair with err

	// enqueuedAt is when the leader admitted the flight; the worker that
	// dequeues it records the gap as a queue.wait span so queueing delay
	// is visible on the stitched timeline.
	enqueuedAt time.Time

	// waiting counts the requests currently blocked on done. A worker
	// that dequeues a flight with zero waiters drops it: everyone who
	// wanted the report has already timed out or disconnected.
	waiting atomic.Int64
}

func (f *flight) join()              { f.waiting.Add(1) }
func (f *flight) leave()             { f.waiting.Add(-1) }
func (f *flight) loadWaiting() int64 { return f.waiting.Load() }

// Server is the characterization service. Construct with New, expose via
// Handler, and Close after the HTTP listener has drained.
type Server struct {
	cfg  Config
	pool *ops.Pool

	mu       sync.Mutex
	cache    *lru
	flights  map[string]*flight
	shutdown bool

	// queue carries dequeued batches to the workers: one entry per engine
	// pass, holding every flight the pass serves (a single flight when
	// coalescing is off). pending holds the batch groups still inside
	// their coalescing window, keyed by workload name.
	queue   chan []*flight
	pending map[string]*batchGroup
	wg      sync.WaitGroup // characterization workers

	workloadsOnce sync.Once
	workloadsJSON []byte
	workloadsErr  error

	// Design-space exploration (/v1/explore): the trace cache behind
	// trace-once/project-many, a semaphore bounding concurrent sweeps, and
	// the ns_explore_* instruments.
	traceMu    sync.Mutex
	traces     map[string]*traceEntry
	exploreSem chan struct{}
	xm         exploreMetrics

	reg      *metrics.Registry
	st       stats
	httpReqs *metrics.CounterVec   // nsserve_http_requests_total{endpoint,code}
	httpLat  *metrics.HistogramVec // nsserve_http_request_seconds{endpoint}

	// recorder is the flight recorder fed by every characterization's
	// observer chain; nil when Config.RecorderSize is negative.
	recorder *trace.Recorder
	// slos tracks the server's availability and latency objectives;
	// sloGood/sloTotal are its availability feed (non-5xx / all HTTP
	// responses), counted in instrument. Unregistered counters: the SLO
	// plane exports its own ns_slo_* view of them.
	slos     *slo.Set
	sloGood  metrics.Counter
	sloTotal metrics.Counter
	// opObs streams per-operator timings into the registry. Kept so
	// per-run observers can chain it with recorder attribution.
	opObs  trace.Observer
	logger *slog.Logger

	// Request-ID generation: a per-process nonce plus a counter, so IDs
	// are unique across restarts without coordination.
	reqNonce string
	reqSeq   atomic.Uint64

	// draining flips readiness (/readyz) to 503 ahead of listener
	// shutdown so load balancers and the cluster router eject this
	// replica before its socket closes. Serving continues while draining.
	draining atomic.Bool

	closeOnce sync.Once
}

// New builds a server, spawns its characterization workers, and returns
// it ready to serve. The server owns one shared backend pool; Close
// releases it.
func New(cfg Config) (*Server, error) {
	if err := cfg.Engine.Validate(); err != nil {
		return nil, err
	}
	cfg.defaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		cfg:     cfg,
		pool:    cfg.Engine.NewPool(),
		cache:   newLRU(cfg.CacheSize),
		flights: make(map[string]*flight),
		queue:   make(chan []*flight, cfg.QueueDepth),
		pending: make(map[string]*batchGroup),
		reg:     reg,
		st:      newStats(reg),
		httpReqs: reg.CounterVec("nsserve_http_requests_total",
			"HTTP requests by endpoint and status code.", "endpoint", "code"),
		httpLat: reg.HistogramVec("nsserve_http_request_seconds",
			"HTTP request latency by endpoint.", metrics.LatencyBuckets(), "endpoint"),
		logger:     cfg.Logger,
		reqNonce:   newNonce(),
		traces:     make(map[string]*traceEntry),
		exploreSem: make(chan struct{}, cfg.ExploreConcurrency),
	}
	s.xm = newExploreMetrics(reg)
	if cfg.RecorderSize > 0 {
		s.recorder = trace.NewRecorder(cfg.RecorderSize)
	}
	s.cache.onEvict = func(string) { s.st.evictions.Inc() }
	reg.GaugeFunc("nsserve_queue_depth", "Characterizations waiting in the admission queue.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("nsserve_cache_entries", "Reports currently held by the LRU cache.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.cache.Len())
		})
	metrics.NewGoCollector(reg)
	metrics.RegisterBuildInfo(reg)
	ops.RegisterPoolMetrics(reg, s.pool)
	s.slos = slo.NewSet(cfg.SLO)
	if err := s.slos.Add(slo.Objective{
		Name:        "availability",
		Description: "Non-5xx responses across all endpoints (health/readiness probes excluded).",
		Target:      cfg.SLOAvailabilityTarget,
		Source:      slo.FromCounters(s.sloGood.Value, s.sloTotal.Value),
	}); err != nil {
		return nil, err
	}
	if err := s.slos.Add(slo.Objective{
		Name: "characterize_latency",
		Description: fmt.Sprintf("/v1/characterize responses within %s (histogram-bucket resolution).",
			cfg.SLOLatencyThreshold),
		Target: cfg.SLOLatencyTarget,
		Source: slo.FromHistogram(s.httpLat.With("/v1/characterize"), cfg.SLOLatencyThreshold.Seconds()),
	}); err != nil {
		return nil, err
	}
	s.slos.Register(reg)
	s.slos.Start()
	// Stream per-operator timings from every characterization into the
	// registry: the live form of the paper's operator breakdown.
	s.opObs = ops.NewOpObserver(reg)
	s.pool.SetObserver(s.opObs)
	s.wg.Add(cfg.Concurrency)
	for i := 0; i < cfg.Concurrency; i++ {
		go s.worker()
	}
	return s, nil
}

// Metrics returns the server's registry (e.g. to add process-level
// metrics before exposing the handler).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Handler returns the server's route table. Every endpoint is
// instrumented with a request counter (by status code) and a latency
// histogram, both visible at /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/workloads", s.instrument("/v1/workloads", s.handleWorkloads))
	mux.HandleFunc("/v1/characterize", s.instrument("/v1/characterize", s.handleCharacterize))
	mux.HandleFunc("/v1/cache/fill", s.instrument("/v1/cache/fill", s.handleCacheFill))
	mux.HandleFunc("/v1/explore", s.instrument("/v1/explore", s.handleExplore))
	mux.HandleFunc("/v1/trace", s.instrument("/v1/trace", s.handleTrace))
	mux.HandleFunc("/v1/stats", s.instrument("/v1/stats", s.handleStats))
	mux.HandleFunc("/v1/slo", s.instrument("/v1/slo", s.handleSLO))
	mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("/readyz", s.instrument("/readyz", s.handleReadyz))
	mux.HandleFunc("/debug/trace", s.instrument("/debug/trace", s.handleDebugTrace))
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// newNonce returns a short random hex tag for request-ID generation.
func newNonce() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "static"
	}
	return hex.EncodeToString(b[:])
}

// ctxKeyRequestID carries the request's ID through the handler chain.
type ctxKey int

const ctxKeyRequestID ctxKey = iota

// requestID returns the ID instrument assigned to (or accepted from) r.
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(ctxKeyRequestID).(string)
	return id
}

// instrument wraps h with per-endpoint request/latency metrics, assigns
// every request an ID (honoring an inbound X-Request-ID so IDs correlate
// across services, else generating one), echoes it on the response, and —
// when the server has a logger — emits one structured line per request.
// The latency child is resolved once here; only the (endpoint, code)
// counter pays a labeled lookup per request, after the response is written.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	lat := s.httpLat.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("ns-%s-%d", s.reqNonce, s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID, id))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		dur := time.Since(start)
		lat.ObserveSeconds(dur.Nanoseconds())
		s.httpReqs.With(endpoint, strconv.Itoa(sw.code)).Inc()
		// Availability SLO feed: every served response counts, 5xx counts
		// bad — except the probe endpoints, whose 503 is the readiness
		// contract working as designed (a draining replica answering
		// "not ready" must not burn the error budget it is protecting).
		if endpoint != "/healthz" && endpoint != "/readyz" {
			s.sloTotal.Inc()
			if sw.code < 500 {
				s.sloGood.Inc()
			}
		}
		if s.logger != nil {
			s.logger.Info("request",
				"method", r.Method, "path", r.URL.Path,
				"status", sw.code, "dur", dur, "id", id)
		}
	}
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming endpoints
// (/v1/explore) can push NDJSON chunks through the instrumentation wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// allowMethods gates r to the listed methods. On a mismatch it answers
// 405 with the Allow header RFC 9110 §15.5.6 requires and reports false.
func allowMethods(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m {
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(methods, ", "))
	http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	return false
}

// handleMetrics exposes the registry in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet, http.MethodHead) {
		return
	}
	w.Header().Set("Content-Type", metrics.PromContentType)
	if r.Method == http.MethodHead {
		return
	}
	s.reg.WriteProm(w)
}

// handleHealthz is the liveness probe: a cheap 200 that proves the
// process is up, accepting connections, and routing requests. It
// deliberately checks nothing deeper — a draining or saturated server is
// still *alive*. Routing decisions belong to readiness (/readyz).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet, http.MethodHead) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		fmt.Fprintln(w, "ok")
	}
}

// BeginDrain marks the server not-ready: /readyz starts answering 503 so
// health checkers eject this replica, while every serving endpoint keeps
// answering normally. Call it on SIGTERM *before* shutting the listener
// down, leave a grace period for checkers to observe it, then stop the
// listener and Close. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain (or Close) has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// handleReadyz is the readiness probe: 200 while the server wants new
// traffic, 503 once it is draining or shut down. Load balancers and the
// cluster router route on this; liveness (/healthz) stays 200 throughout
// a drain so orchestrators don't kill a replica that is merely retiring.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet, http.MethodHead) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		if r.Method != http.MethodHead {
			fmt.Fprintln(w, "draining")
		}
		return
	}
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		fmt.Fprintln(w, "ready")
	}
}

// Close drains the admission queue and tears down the characterization
// workers and the shared backend pool. Stop the HTTP listener first
// (http.Server.Shutdown) so no handler can race the queue teardown; any
// work still queued at that point is completed (waiters present) or
// dropped (waiters gone) before Close returns. Close is idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.mu.Lock()
		s.shutdown = true
		// Flush groups still inside their window so their waiters are
		// answered; timers that fire later see flushed groups (or the
		// shutdown flag) and never touch the closed queue.
		s.drainPendingLocked()
		s.mu.Unlock()
		close(s.queue)
		s.wg.Wait()
		s.pool.Close()
		s.slos.Close()
	})
}

// handleWorkloads lists the registered workloads with their taxonomy
// categories. The list is built once: workload construction is heavyweight
// (codebooks, weights), and the registry is fixed at init time.
func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	s.workloadsOnce.Do(func() {
		type entry struct {
			Name     string `json:"name"`
			Category string `json:"category"`
		}
		var list []entry
		for _, name := range core.WorkloadNames() {
			wl, err := core.BuildWorkload(name)
			if err != nil {
				s.workloadsErr = err
				return
			}
			list = append(list, entry{Name: wl.Name(), Category: wl.Category()})
			core.CloseWorkload(wl)
		}
		s.workloadsJSON, s.workloadsErr = json.Marshal(list)
	})
	if s.workloadsErr != nil {
		http.Error(w, s.workloadsErr.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, s.workloadsJSON)
}

// handleStats reports the operational counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	snap := s.st.snapshot()
	s.mu.Lock()
	snap.CacheSize = s.cache.Len()
	snap.QueueDepth = len(s.queue)
	s.mu.Unlock()
	b, err := json.Marshal(snap)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, b)
}

// recordServeSpan records one serving-layer range (kind "serve") from
// start to now on lane 0 under id. No-op with the recorder disabled.
func (s *Server) recordServeSpan(id, name string, start time.Time) {
	s.recordServeSpanAt(id, name, start, time.Now())
}

// recordServeSpanAt is recordServeSpan with an explicit end time, for
// call sites (the batch worker) that measure several ranges against one
// shared instant.
func (s *Server) recordServeSpanAt(id, name string, start, end time.Time) {
	if s.recorder == nil {
		return
	}
	s.recorder.RecordSpan(id, trace.SpanAt(name, "serve", 0, start, end))
}

// handleCharacterize is the serving hot path: canonicalize, cache lookup,
// singleflight join-or-lead, bounded admission, wait with deadline.
// Serving-layer ranges (request extent, cache probe, queue wait) are
// recorded as spans under the request ID so a stitched cross-process
// timeline shows where the request's time went before the engine ran.
func (s *Server) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodPost) {
		return
	}
	reqStart := time.Now()
	id := requestID(r)
	defer func() { s.recordServeSpan(id, "serve.characterize", reqStart) }()
	s.st.requests.Inc()
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	canon, key, err := canonicalize(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	probeStart := time.Now()
	s.mu.Lock()
	if b, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		s.recordServeSpan(id, "cache.probe(hit)", probeStart)
		s.st.cacheHits.Inc()
		w.Header().Set("X-NSServe-Cache", "hit")
		writeJSON(w, b)
		return
	}
	s.st.cacheMiss.Inc()
	s.recordServeSpan(id, "cache.probe(miss)", probeStart)
	if s.shutdown {
		s.mu.Unlock()
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}
	f, joined := s.flights[key]
	if joined {
		s.st.dedupJoins.Inc()
		f.join()
	} else {
		f = &flight{key: key, req: canon, id: id, done: make(chan struct{}), enqueuedAt: time.Now()}
		// Register interest before the flight becomes visible to a
		// worker, or a fast dequeue could mistake it for abandoned.
		f.join()
		// Admission happens under the same lock that guards shutdown, so
		// a send can never race the queue close.
		if !s.admitLocked(f) {
			s.mu.Unlock()
			s.st.rejected.Inc()
			w.Header().Set("Retry-After", s.retryAfterHint())
			http.Error(w, "characterization queue is full", http.StatusTooManyRequests)
			return
		}
		s.flights[key] = f
	}
	s.mu.Unlock()
	defer f.leave()

	ctx := r.Context()
	timer := time.NewTimer(s.cfg.RequestTimeout)
	defer timer.Stop()
	select {
	case <-f.done:
	case <-ctx.Done():
		s.st.timeouts.Inc()
		http.Error(w, "request canceled", statusClientClosed)
		return
	case <-timer.C:
		s.st.timeouts.Inc()
		http.Error(w, "timed out waiting for characterization", http.StatusGatewayTimeout)
		return
	}
	if f.err != nil {
		code := f.code
		if code == 0 {
			code = http.StatusInternalServerError
		}
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", s.retryAfterHint())
		}
		http.Error(w, f.err.Error(), code)
		return
	}
	if joined {
		w.Header().Set("X-NSServe-Cache", "join")
	} else {
		w.Header().Set("X-NSServe-Cache", "miss")
	}
	writeJSON(w, f.res)
}

// statusClientClosed mirrors nginx's 499: the client went away before the
// report was ready. Go's http package never sends it anywhere, but the
// request is already unanswerable, so the code only lands in logs/tests.
const statusClientClosed = 499

// FillRequest is the POST /v1/cache/fill payload: a report some other
// replica already computed, pushed into this replica's cache by the
// router's replication fan-fill. Report is kept as raw bytes end to end —
// the installed cache entry is byte-identical to the origin replica's,
// which is what keeps replicated cache hits deterministic.
type FillRequest struct {
	Request Request         `json:"request"`
	Report  json.RawMessage `json:"report"`
}

// handleCacheFill installs an externally computed report under the
// request's canonical cache key. First write wins: if the key is already
// cached (this replica computed it itself, or an earlier fill landed),
// the fill is dropped rather than overwriting — both sides hold bytes
// derived from the same deterministic characterization, and never
// replacing an entry in place means a concurrent hit can't observe a
// swap. Responds 204 on install, 200 on an ignored duplicate.
func (s *Server) handleCacheFill(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodPost) {
		return
	}
	fillStart := time.Now()
	id := requestID(r)
	defer func() { s.recordServeSpan(id, "serve.cache_fill", fillStart) }()
	var fill FillRequest
	if err := json.NewDecoder(r.Body).Decode(&fill); err != nil {
		http.Error(w, "bad fill body: "+err.Error(), http.StatusBadRequest)
		return
	}
	_, key, err := canonicalize(fill.Request)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(fill.Report) == 0 || !json.Valid(fill.Report) {
		http.Error(w, "fill report is not valid JSON", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	if _, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		w.WriteHeader(http.StatusOK)
		return
	}
	s.cache.Put(key, []byte(fill.Report))
	s.mu.Unlock()
	s.st.cacheFills.Inc()
	w.WriteHeader(http.StatusNoContent)
}

// retryAfterHint estimates, in whole seconds, when a rejected client has
// a real chance of admission: the time for the current queue (plus the
// client's own run) to drain through the worker pool at the observed mean
// service time. With no completed runs yet the mean defaults to one
// second. The hint is clamped to [1, RequestTimeout] — below one second
// the header would round to "retry immediately" and re-trigger the same
// rejection; above the request timeout the retry could never be served in
// time anyway.
func (s *Server) retryAfterHint() string {
	mean := time.Second
	if runs := s.st.runs.Value(); runs > 0 {
		mean = time.Duration(s.st.runNanos.Value() / runs)
	}
	est := time.Duration(float64(mean) * float64(len(s.queue)+1) / float64(s.cfg.Concurrency))
	// With coalescing on, admission additionally waits out a batch window
	// before a fresh group can even start executing.
	if s.cfg.BatchWindow > 0 {
		est += s.cfg.BatchWindow
	}
	secs := int(math.Ceil(est.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if max := int(s.cfg.RequestTimeout.Seconds()); max >= 1 && secs > max {
		secs = max
	}
	return strconv.Itoa(secs)
}

// worker executes queued flights until the queue is closed and drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for fs := range s.queue {
		s.runBatch(fs)
	}
}

// runFlight executes one characterization and publishes the result to
// every waiter, caching it on success.
func (s *Server) runFlight(f *flight) {
	// Cancellation at the queue: if every waiter gave up while the flight
	// sat in the queue, don't burn a worker on a report nobody wants.
	if f.loadWaiting() == 0 {
		s.st.abandoned.Inc()
		f.err = errors.New("abandoned: all waiters left the queue")
		f.code = http.StatusServiceUnavailable
		s.finish(f, false)
		return
	}
	s.st.inflight.Inc()
	start := time.Now()
	res, err := s.characterize(f.req, f.id)
	s.st.recordRun(time.Since(start))
	s.st.inflight.Dec()
	if err != nil {
		s.st.failures.Inc()
		f.err = err
		s.finish(f, false)
		return
	}
	f.res = res
	s.finish(f, true)
}

// finish retires the flight from the singleflight table, optionally
// caches its bytes, and wakes every waiter.
func (s *Server) finish(f *flight, cache bool) {
	s.mu.Lock()
	delete(s.flights, f.key)
	if cache {
		s.cache.Put(f.key, f.res)
	}
	s.mu.Unlock()
	close(f.done)
}

// characterize builds the workload and runs it on an engine borrowed from
// the server's shared backend pool, feeding the run's operator events to
// the metrics observer and (scoped under runID) the flight recorder.
func (s *Server) characterize(req Request, runID string) ([]byte, error) {
	report, err := s.run(req, runID)
	if err != nil {
		return nil, err
	}
	return json.Marshal(report)
}

// run executes one characterization and returns the full report (trace
// included). runID scopes the run's events in the flight recorder; the
// run's stage/fork spans are copied into the recorder under the same ID
// so /v1/trace?request_id= can rebuild the engine timeline later.
func (s *Server) run(req Request, runID string) (*core.Report, error) {
	wl, err := core.BuildWorkload(req.Workload)
	if err != nil {
		return nil, err
	}
	defer core.CloseWorkload(wl)
	dev, err := hwsim.DeviceByName(req.Device)
	if err != nil {
		return nil, err
	}
	report, err := core.Characterize(wl, core.Options{Device: dev, Pool: s.pool, Observer: s.runObserver(runID)})
	if err == nil {
		s.recordRunSpans(runID, report.Trace)
	}
	return report, err
}

// recordRunSpans copies a finished run's timeline spans into the flight
// recorder under id. No-op with the recorder disabled.
func (s *Server) recordRunSpans(id string, t *trace.Trace) {
	if s.recorder == nil || t == nil {
		return
	}
	s.recorder.RecordSpans(id, t.Spans())
}

// runObserver chains the registry's per-operator observer with
// flight-recorder attribution under id. With the recorder disabled it
// returns nil, leaving the pool's default observer in place.
func (s *Server) runObserver(id string) trace.Observer {
	if s.recorder == nil {
		return nil
	}
	rec := s.recorder.Observer(id)
	return func(ev *trace.Event) {
		s.opObs(ev)
		rec(ev)
	}
}

// handleTrace runs one characterization and streams its operator timeline
// in the requested format: Chrome trace-event JSON (format=chrome, the
// default — load it in Perfetto or chrome://tracing) or the native event
// JSON (format=json). Timelines are wall-clock and therefore per-run, so
// this endpoint bypasses the report cache and admission queue: it is a
// debugging surface, not the serving hot path.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	q := r.URL.Query()
	if id := q.Get("request_id"); id != "" {
		s.handleRequestTrace(w, id)
		return
	}
	format := q.Get("format")
	if format == "" {
		format = "chrome"
	}
	if format != "chrome" && format != "json" {
		http.Error(w, fmt.Sprintf("unknown format %q (want chrome or json)", format), http.StatusBadRequest)
		return
	}
	canon, _, err := canonicalize(Request{Workload: q.Get("workload"), Device: q.Get("device")})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	report, err := s.run(canon, requestID(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if format == "chrome" {
		err = report.Trace.WriteChromeTrace(w)
	} else {
		err = report.Trace.WriteJSON(w)
	}
	if err != nil && s.logger != nil {
		s.logger.Error("trace write failed", "id", requestID(r), "err", err)
	}
}

// handleRequestTrace serves the flight recorder's slice of one past
// request as a trace.RequestTrace wire document: the serving-layer and
// engine spans plus operator events recorded under the request ID, each
// stamped with this replica's node name. This is the replica half of
// cross-process stitching — the router fans this query out and merges
// the slices into one timeline.
func (s *Server) handleRequestTrace(w http.ResponseWriter, id string) {
	if s.recorder == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	rt := s.recorder.RequestTrace(id, s.cfg.NodeName)
	b, err := json.Marshal(rt)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, b)
}

// handleSLO reports the server's objectives: error budgets, windowed
// burn rates, and alert state, as computed by the slo sampler.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	b, err := json.Marshal(s.slos.Report())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, b)
}

// debugTraceEntry is one flight-recorder row as served by /debug/trace.
type debugTraceEntry struct {
	ID     string  `json:"id"`
	Time   string  `json:"time"`
	Name   string  `json:"name"`
	Kernel string  `json:"kernel,omitempty"`
	Stage  string  `json:"stage,omitempty"`
	Phase  string  `json:"phase"`
	Worker int     `json:"worker"`
	DurNs  int64   `json:"dur_ns"`
	FLOPs  int64   `json:"flops"`
	Bytes  int64   `json:"bytes"`
	Spars  float64 `json:"sparsity"`
}

// handleDebugTrace dumps the flight recorder: the last N operator events
// the server executed, each tagged with the request ID that caused it.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	if s.recorder == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	snap := s.recorder.Snapshot()
	entries := make([]debugTraceEntry, len(snap))
	for i, rec := range snap {
		entries[i] = debugTraceEntry{
			ID:     rec.ID,
			Time:   rec.Time.Format(time.RFC3339Nano),
			Name:   rec.Ev.Name,
			Kernel: rec.Ev.Kernel,
			Stage:  rec.Ev.Stage,
			Phase:  rec.Ev.Phase.String(),
			Worker: rec.Ev.Worker,
			DurNs:  rec.Ev.Dur.Nanoseconds(),
			FLOPs:  rec.Ev.FLOPs,
			Bytes:  rec.Ev.Bytes,
			Spars:  rec.Ev.Sparsity,
		}
	}
	b, err := json.Marshal(struct {
		Capacity int               `json:"capacity"`
		Total    uint64            `json:"total"`
		Dropped  uint64            `json:"dropped"`
		Events   []debugTraceEntry `json:"events"`
	}{s.recorder.Cap(), s.recorder.Total(), s.recorder.Dropped(), entries})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, b)
}

func writeJSON(w http.ResponseWriter, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}
