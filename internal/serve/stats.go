package serve

import "sync/atomic"

// stats holds the server's atomic counters. Handlers and workers update
// them lock-free; /v1/stats reads a snapshot.
type stats struct {
	requests   atomic.Int64 // characterize requests received
	cacheHits  atomic.Int64 // served straight from the LRU
	cacheMiss  atomic.Int64 // not in cache on arrival
	dedupJoins atomic.Int64 // requests that joined an in-flight run
	rejected   atomic.Int64 // 429s from a full admission queue
	timeouts   atomic.Int64 // waiters that gave up (deadline/cancel)
	abandoned  atomic.Int64 // queued runs dropped: every waiter had left
	failures   atomic.Int64 // characterizations that returned an error
	runs       atomic.Int64 // characterizations actually executed
	runNanos   atomic.Int64 // total wall time spent executing runs
}

// Snapshot is the exported /v1/stats form.
type Snapshot struct {
	Requests   int64 `json:"requests"`
	CacheHits  int64 `json:"cache_hits"`
	CacheMiss  int64 `json:"cache_misses"`
	DedupJoins int64 `json:"dedup_joins"`
	Rejected   int64 `json:"rejected"`
	Timeouts   int64 `json:"timeouts"`
	Abandoned  int64 `json:"abandoned"`
	Failures   int64 `json:"failures"`
	Runs       int64 `json:"runs"`
	RunNanos   int64 `json:"run_nanos_total"`
	// AvgRunNanos is RunNanos/Runs (0 when no run completed yet).
	AvgRunNanos int64 `json:"avg_run_nanos"`
	// CacheSize and QueueDepth are point-in-time gauges.
	CacheSize  int `json:"cache_size"`
	QueueDepth int `json:"queue_depth"`
}

// snapshot reads every counter once. Counters are read individually, so a
// snapshot taken under load is approximate — fine for monitoring.
func (s *stats) snapshot() Snapshot {
	out := Snapshot{
		Requests:   s.requests.Load(),
		CacheHits:  s.cacheHits.Load(),
		CacheMiss:  s.cacheMiss.Load(),
		DedupJoins: s.dedupJoins.Load(),
		Rejected:   s.rejected.Load(),
		Timeouts:   s.timeouts.Load(),
		Abandoned:  s.abandoned.Load(),
		Failures:   s.failures.Load(),
		Runs:       s.runs.Load(),
		RunNanos:   s.runNanos.Load(),
	}
	if out.Runs > 0 {
		out.AvgRunNanos = out.RunNanos / out.Runs
	}
	return out
}
