package serve

import (
	"time"

	"github.com/neurosym/nsbench/internal/metrics"
)

// stats is a thin view over the server's metrics registry: one shared set
// of counters backs both the legacy /v1/stats JSON (this struct renders
// it) and the Prometheus /metrics exposition. Handlers and workers update
// the counters lock-free.
type stats struct {
	requests   *metrics.Counter // characterize requests received
	cacheHits  *metrics.Counter // served straight from the LRU
	cacheMiss  *metrics.Counter // not in cache on arrival
	evictions  *metrics.Counter // reports evicted from a full LRU
	dedupJoins *metrics.Counter // requests that joined an in-flight run
	rejected   *metrics.Counter // 429s from a full admission queue
	timeouts   *metrics.Counter // waiters that gave up (deadline/cancel)
	abandoned  *metrics.Counter // queued runs dropped: every waiter had left
	failures   *metrics.Counter // characterizations that returned an error
	runs       *metrics.Counter // characterizations actually executed
	runNanos   *metrics.Counter // total wall time spent executing runs

	// runSeconds is the latency distribution of the runs counted above —
	// the histogram form /metrics scrapes for quantiles.
	runSeconds *metrics.Histogram
	// inflight gauges the characterizations executing right now.
	inflight *metrics.Gauge

	// Coalescing (Config.BatchWindow > 0): batches counts engine passes
	// dispatched through the coalescer (including singletons — occupancy 1
	// means the window bought nothing), batchItems the requests those
	// passes served, occupancy their size distribution, and
	// coalesceFlushes why each group left its window (window, full, drain).
	batches         *metrics.Counter
	batchItems      *metrics.Counter
	occupancy       *metrics.Histogram
	coalesceFlushes *metrics.CounterVec

	// Design-space exploration (/v1/explore): sweeps completed and grid
	// points evaluated. These mirror the ns_explore_* registry metrics but
	// live under the nsserve_ namespace for the /v1/stats JSON view.
	sweepsRun       *metrics.Counter
	pointsEvaluated *metrics.Counter

	// cacheFills counts reports installed by POST /v1/cache/fill — cache
	// entries this replica holds without ever computing them (the router's
	// replication fan-fill).
	cacheFills *metrics.Counter
}

// newStats registers the serving counters in reg.
func newStats(reg *metrics.Registry) stats {
	return stats{
		requests:   reg.Counter("nsserve_requests_total", "Characterize requests received."),
		cacheHits:  reg.Counter("nsserve_cache_hits_total", "Requests served straight from the report cache."),
		cacheMiss:  reg.Counter("nsserve_cache_misses_total", "Requests that missed the report cache."),
		evictions:  reg.Counter("nsserve_cache_evictions_total", "Reports evicted from the full LRU cache."),
		dedupJoins: reg.Counter("nsserve_dedup_joins_total", "Requests that joined an identical in-flight run."),
		rejected:   reg.Counter("nsserve_rejected_total", "Requests rejected with 429 by the full admission queue."),
		timeouts:   reg.Counter("nsserve_timeouts_total", "Waiters that gave up on a run (deadline or disconnect)."),
		abandoned:  reg.Counter("nsserve_abandoned_total", "Queued runs dropped because every waiter had left."),
		failures:   reg.Counter("nsserve_failures_total", "Characterizations that returned an error."),
		runs:       reg.Counter("nsserve_runs_total", "Characterizations actually executed."),
		runNanos:   reg.Counter("nsserve_run_nanos_total", "Total wall time spent executing characterizations, in nanoseconds."),
		runSeconds: reg.Histogram("nsserve_run_seconds", "Characterization execution latency.", metrics.LatencyBuckets()),
		inflight:   reg.Gauge("nsserve_inflight_runs", "Characterizations executing right now."),
		batches:    reg.Counter("nsserve_batches_total", "Engine passes dispatched through the request coalescer."),
		batchItems: reg.Counter("nsserve_batch_items_total", "Requests served by coalesced engine passes."),
		occupancy: reg.Histogram("nsserve_batch_occupancy", "Requests per coalesced engine pass.",
			[]float64{1, 2, 4, 8, 16, 32}),
		coalesceFlushes: reg.CounterVec("nsserve_coalesce_flushes_total",
			"Batch group flushes by outcome (window expired, group full, drain on close).", "outcome"),
		sweepsRun:       reg.Counter("nsserve_sweeps_total", "Design-space sweeps completed by /v1/explore."),
		pointsEvaluated: reg.Counter("nsserve_sweep_points_total", "Design-space grid points evaluated by /v1/explore."),
		cacheFills:      reg.Counter("nsserve_cache_fills_total", "Reports installed by the router's replication fan-fill."),
	}
}

// recordRun accounts one executed characterization. Nanos is added
// *before* the run counter so the (runs, runNanos) pair keeps the
// invariant snapshot relies on: every run visible in the counter already
// has its duration in the total.
func (s *stats) recordRun(d time.Duration) {
	s.runNanos.Add(uint64(d.Nanoseconds()))
	s.runSeconds.ObserveSeconds(d.Nanoseconds())
	s.runs.Inc()
}

// Snapshot is the exported /v1/stats form.
type Snapshot struct {
	Requests   int64 `json:"requests"`
	CacheHits  int64 `json:"cache_hits"`
	CacheMiss  int64 `json:"cache_misses"`
	DedupJoins int64 `json:"dedup_joins"`
	Rejected   int64 `json:"rejected"`
	Timeouts   int64 `json:"timeouts"`
	Abandoned  int64 `json:"abandoned"`
	Failures   int64 `json:"failures"`
	Runs       int64 `json:"runs"`
	RunNanos   int64 `json:"run_nanos_total"`
	// AvgRunNanos is RunNanos/Runs (0 when no run completed yet).
	AvgRunNanos int64 `json:"avg_run_nanos"`
	// CacheSize and QueueDepth are point-in-time gauges.
	CacheSize  int `json:"cache_size"`
	QueueDepth int `json:"queue_depth"`
	// BatchesRun counts engine passes dispatched through the request
	// coalescer; AvgOccupancy is the mean requests served per such pass
	// (0 with coalescing disabled). Appended after the pre-batching
	// fields so existing consumers see an unchanged prefix.
	BatchesRun   int64   `json:"batches_run"`
	AvgOccupancy float64 `json:"avg_occupancy"`
	// SweepsRun and PointsEvaluated count /v1/explore activity. Appended
	// after the batching fields so existing consumers see an unchanged
	// prefix (the append-only evolution rule TestStatsJSONShape pins).
	SweepsRun       int64 `json:"sweeps_run"`
	PointsEvaluated int64 `json:"points_evaluated"`
	// CacheFills counts reports installed by the router's replication
	// fan-fill (POST /v1/cache/fill). Appended last per the append-only
	// evolution rule.
	CacheFills int64 `json:"cache_fills"`
}

// snapshot reads every counter once. Counters are read individually, so a
// snapshot taken under load is approximate — fine for monitoring — with
// one deliberate ordering: Runs is read *before* RunNanos while writers
// update nanos before runs (recordRun), so the nanos total always covers
// at least the runs counted and AvgRunNanos can only over-approximate
// (by the runs that completed between the two loads), never report an
// impossibly low average from a torn read.
func (s *stats) snapshot() Snapshot {
	runs := int64(s.runs.Value())
	nanos := int64(s.runNanos.Value())
	out := Snapshot{
		Requests:   int64(s.requests.Value()),
		CacheHits:  int64(s.cacheHits.Value()),
		CacheMiss:  int64(s.cacheMiss.Value()),
		DedupJoins: int64(s.dedupJoins.Value()),
		Rejected:   int64(s.rejected.Value()),
		Timeouts:   int64(s.timeouts.Value()),
		Abandoned:  int64(s.abandoned.Value()),
		Failures:   int64(s.failures.Value()),
		Runs:       runs,
		RunNanos:   nanos,
	}
	if out.Runs > 0 {
		out.AvgRunNanos = out.RunNanos / out.Runs
	}
	out.BatchesRun = int64(s.batches.Value())
	if out.BatchesRun > 0 {
		out.AvgOccupancy = float64(s.batchItems.Value()) / float64(out.BatchesRun)
	}
	out.SweepsRun = int64(s.sweepsRun.Value())
	out.PointsEvaluated = int64(s.pointsEvaluated.Value())
	out.CacheFills = int64(s.cacheFills.Value())
	return out
}
