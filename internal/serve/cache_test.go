package serve

import (
	"bytes"
	"fmt"
	"testing"
)

// TestLRUEvictionOrder fills a cache beyond capacity and checks that
// evictions happen strictly in least-recently-used order, counting Get
// as a use.
func TestLRUEvictionOrder(t *testing.T) {
	var evicted []string
	c := newLRU(3)
	c.onEvict = func(key string) { evicted = append(evicted, key) }
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Put("c", []byte("3"))
	c.Get("a")              // order now (MRU→LRU): a c b
	c.Put("d", []byte("4")) // evicts b
	c.Get("c")              // order: c d a
	c.Put("e", []byte("5")) // evicts a
	c.Put("f", []byte("6")) // evicts d

	want := []string{"b", "a", "d"}
	if len(evicted) != len(want) {
		t.Fatalf("evicted %v, want %v", evicted, want)
	}
	for i := range want {
		if evicted[i] != want[i] {
			t.Fatalf("eviction order %v, want %v", evicted, want)
		}
	}
	for _, key := range []string{"c", "e", "f"} {
		if _, ok := c.Get(key); !ok {
			t.Fatalf("%s missing from cache", key)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
}

// TestLRUCapacityOne: the degenerate cache holds exactly the last Put.
func TestLRUCapacityOne(t *testing.T) {
	c := newLRU(1)
	evictions := 0
	c.onEvict = func(string) { evictions++ }
	c.Put("a", []byte("1"))
	if v, ok := c.Get("a"); !ok || !bytes.Equal(v, []byte("1")) {
		t.Fatal("single entry not retrievable")
	}
	c.Put("b", []byte("2"))
	if _, ok := c.Get("a"); ok {
		t.Fatal("capacity-1 cache kept two entries")
	}
	if v, ok := c.Get("b"); !ok || !bytes.Equal(v, []byte("2")) {
		t.Fatal("newest entry lost")
	}
	// Refreshing the resident key must not evict.
	c.Put("b", []byte("2'"))
	if v, _ := c.Get("b"); !bytes.Equal(v, []byte("2'")) {
		t.Fatal("refresh did not update value")
	}
	if evictions != 1 || c.Len() != 1 {
		t.Fatalf("evictions = %d len = %d, want 1 and 1", evictions, c.Len())
	}
}

// TestLRURefreshDoesNotEvict: Put on an existing key updates in place.
func TestLRURefreshDoesNotEvict(t *testing.T) {
	c := newLRU(2)
	c.onEvict = func(key string) { t.Fatalf("unexpected eviction of %s", key) }
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Put("a", []byte("1'"))
	if v, _ := c.Get("a"); !bytes.Equal(v, []byte("1'")) {
		t.Fatal("refresh lost")
	}
}

// TestEvictionIncrementsCounter drives the server end to end with a
// capacity-1 cache and checks the eviction lands in the metrics counter.
func TestEvictionIncrementsCounter(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{CacheSize: 1})
	h := s.Handler()
	if rec := post(h, `{"workload":"testfast"}`); rec.Code != 200 {
		t.Fatalf("first characterize: %d", rec.Code)
	}
	if rec := post(h, `{"workload":"testgate"}`); rec.Code != 200 {
		t.Fatalf("second characterize: %d", rec.Code)
	}
	if got := s.st.evictions.Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := s.cache.Len(); got != 1 {
		t.Fatalf("cache len = %d, want 1", got)
	}
}

func BenchmarkLRUPutEvict(b *testing.B) {
	c := newLRU(64)
	c.onEvict = func(string) {}
	val := []byte("report")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Put(fmt.Sprintf("key-%d", i), val)
	}
}
