package serve

import "container/list"

// lru is a fixed-capacity least-recently-used cache from canonical request
// keys to rendered report bytes. A non-positive capacity disables caching
// (every Get misses, every Put is dropped) — the miss benchmarks use this
// to exercise the full characterization path. lru is not safe for
// concurrent use; the Server guards it with its own mutex.
type lru struct {
	capacity int
	order    *list.List // front = most recently used
	items    map[string]*list.Element
	// onEvict, when set, observes each capacity eviction (metrics). It is
	// called with the evicted key while the cache's owner holds its lock,
	// so it must not re-enter the cache.
	onEvict func(key string)
}

// lruEntry is one cached (key, report bytes) pair.
type lruEntry struct {
	key string
	val []byte
}

func newLRU(capacity int) *lru {
	return &lru{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached bytes for key and marks them most recently used.
func (c *lru) Get(key string) ([]byte, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *lru) Put(key string, val []byte) {
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		tail := c.order.Back()
		c.order.Remove(tail)
		evicted := tail.Value.(*lruEntry).key
		delete(c.items, evicted)
		if c.onEvict != nil {
			c.onEvict(evicted)
		}
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
}

// Len reports the number of cached reports.
func (c *lru) Len() int { return c.order.Len() }
