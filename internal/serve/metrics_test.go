package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/neurosym/nsbench/internal/ops"
)

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	h := s.Handler()
	rec := get(h, "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
	req := httptest.NewRequest(http.MethodHead, "/healthz", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz HEAD: %d", rec.Code)
	}
}

// TestMethodNotAllowedSetsAllow: every endpoint must answer a wrong
// method with 405 and the Allow header RFC 9110 requires.
func TestMethodNotAllowedSetsAllow(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	h := s.Handler()
	cases := []struct {
		path, method, wantAllow string
	}{
		{"/v1/workloads", http.MethodPost, "GET"},
		{"/v1/stats", http.MethodDelete, "GET"},
		{"/v1/characterize", http.MethodGet, "POST"},
		{"/metrics", http.MethodPost, "GET, HEAD"},
		{"/healthz", http.MethodPut, "GET, HEAD"},
	}
	for _, c := range cases {
		req := httptest.NewRequest(c.method, c.path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: code %d, want 405", c.method, c.path, rec.Code)
		}
		if got := rec.Header().Get("Allow"); got != c.wantAllow {
			t.Fatalf("%s %s: Allow = %q, want %q", c.method, c.path, got, c.wantAllow)
		}
	}
}

// TestMetricsEndpoint scrapes /metrics after real traffic and checks the
// exposition carries every acceptance-relevant family: request-latency
// histogram buckets, cache counters, queue/pool gauges, Go runtime stats.
func TestMetricsEndpoint(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{Engine: ops.Config{Backend: ops.BackendParallel, Workers: 2}})
	h := s.Handler()
	if rec := post(h, `{"workload":"testfast"}`); rec.Code != 200 {
		t.Fatalf("characterize: %d", rec.Code)
	}
	if rec := post(h, `{"workload":"testfast"}`); rec.Code != 200 { // cache hit
		t.Fatalf("characterize: %d", rec.Code)
	}

	rec := get(h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		`nsserve_http_request_seconds_bucket{endpoint="/v1/characterize",le="+Inf"} 2`,
		`nsserve_http_requests_total{endpoint="/v1/characterize",code="200"} 2`,
		"nsserve_requests_total 2",
		"nsserve_cache_hits_total 1",
		"nsserve_cache_misses_total 1",
		"nsserve_cache_evictions_total 0",
		"nsserve_cache_entries 1",
		"nsserve_queue_depth 0",
		"nsserve_inflight_runs 0",
		"nsserve_runs_total 1",
		"nsserve_run_seconds_count 1",
		"ns_backend_workers 2",
		"ns_pool_splits_total",
		"ns_op_seconds_count",
		"go_goroutines ",
		"go_gc_cycles_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}

// TestStatsMatchesMetrics cross-checks the legacy JSON view against the
// registry it now fronts.
func TestStatsMatchesMetrics(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	h := s.Handler()
	post(h, `{"workload":"testfast"}`)
	post(h, `{"workload":"testfast"}`)

	rec := get(h, "/v1/stats")
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests != 2 || snap.CacheHits != 1 || snap.Runs != 1 {
		t.Fatalf("snapshot %+v, want 2 requests / 1 hit / 1 run", snap)
	}
	if snap.AvgRunNanos <= 0 || snap.RunNanos < snap.AvgRunNanos {
		t.Fatalf("torn averages: %+v", snap)
	}
	if got := int64(s.st.requests.Value()); got != snap.Requests {
		t.Fatalf("registry requests %d != snapshot %d", got, snap.Requests)
	}
}

// TestStatsJSONShape pins the exact field set and order of /v1/stats so
// the endpoint stays byte-compatible with the pre-metrics servers: every
// pre-batching field keeps its position, and the batching counters only
// append after them.
func TestStatsJSONShape(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	rec := get(s.Handler(), "/v1/stats")
	prefix := `{"requests":0,"cache_hits":0,"cache_misses":0,"dedup_joins":0,"rejected":0,"timeouts":0,"abandoned":0,"failures":0,"runs":0,"run_nanos_total":0,"avg_run_nanos":0,"cache_size":0,"queue_depth":0`
	want := prefix + `,"batches_run":0,"avg_occupancy":0,"sweeps_run":0,"points_evaluated":0,"cache_fills":0}`
	got := strings.TrimSpace(rec.Body.String())
	if !strings.HasPrefix(got, prefix) {
		t.Fatalf("/v1/stats pre-batching prefix changed:\ngot:  %s\nwant prefix: %s", got, prefix)
	}
	if got != want {
		t.Fatalf("/v1/stats shape changed:\ngot:  %s\nwant: %s", got, want)
	}
}
