package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/neurosym/nsbench/internal/core"
	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/tensor"
)

// testCtl coordinates the gated test workloads with the test body. Tests
// in this package run sequentially, so resetting it per test is safe.
var testCtl struct {
	mu      sync.Mutex
	gate    chan struct{} // Run blocks here until closed (nil = no gate)
	entered chan struct{} // Run signals here on entry (buffered)
	runs    atomic.Int64
}

func resetCtl(gated bool) {
	testCtl.mu.Lock()
	defer testCtl.mu.Unlock()
	if gated {
		testCtl.gate = make(chan struct{})
		testCtl.entered = make(chan struct{}, 32)
	} else {
		testCtl.gate = nil
		testCtl.entered = nil
	}
	testCtl.runs.Store(0)
}

func openGate() {
	testCtl.mu.Lock()
	defer testCtl.mu.Unlock()
	if testCtl.gate != nil {
		close(testCtl.gate)
		testCtl.gate = nil
	}
}

// fakeWorkload is a registry workload cheap enough for serving tests. It
// records one real event and touches the backend dispatch path so shared
// worker pools actually spawn (which the leak test depends on).
type fakeWorkload struct {
	name  string
	gated bool
}

func (f *fakeWorkload) Name() string     { return f.name }
func (f *fakeWorkload) Category() string { return "Test" }

func (f *fakeWorkload) Run(e *ops.Engine) error {
	if f.gated {
		testCtl.mu.Lock()
		gate, entered := testCtl.gate, testCtl.entered
		testCtl.mu.Unlock()
		if entered != nil {
			entered <- struct{}{}
		}
		if gate != nil {
			<-gate
		}
	}
	testCtl.runs.Add(1)
	// Force a wide dispatch so a parallel backend spawns its pool.
	e.Backend().For(1<<15, 1, func(lo, hi int) {})
	g := tensor.NewRNG(1)
	e.Add(g.Normal(0, 1, 64), g.Normal(0, 1, 64))
	return nil
}

var registerOnce sync.Once

func registerTestWorkloads() {
	registerOnce.Do(func() {
		core.RegisterWorkload("testfast", func() core.Workload { return &fakeWorkload{name: "testfast"} })
		core.RegisterWorkload("testgate", func() core.Workload { return &fakeWorkload{name: "testgate", gated: true} })
	})
}

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	registerTestWorkloads()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// post issues one characterize request through the handler.
func post(h http.Handler, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/characterize", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCacheHitIsByteIdentical(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	h := s.Handler()

	first := post(h, `{"workload":"testfast"}`)
	if first.Code != http.StatusOK {
		t.Fatalf("first request: %d %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-NSServe-Cache"); got != "miss" {
		t.Fatalf("first request cache header %q, want miss", got)
	}
	second := post(h, `{"workload":"testfast"}`)
	if second.Code != http.StatusOK {
		t.Fatalf("second request: %d %s", second.Code, second.Body)
	}
	if got := second.Header().Get("X-NSServe-Cache"); got != "hit" {
		t.Fatalf("second request cache header %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("cache hit is not byte-identical to the miss")
	}
	if hits := s.st.cacheHits.Value(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	if runs := testCtl.runs.Load(); runs != 1 {
		t.Fatalf("workload ran %d times, want 1", runs)
	}
}

func TestCanonicalRequestsShareCacheEntry(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	h := s.Handler()

	if rec := post(h, `{"workload":"testfast","device":"RTX 2080 Ti"}`); rec.Code != http.StatusOK {
		t.Fatalf("first: %d %s", rec.Code, rec.Body)
	}
	// Different spelling, same canonical request → cache hit, no new run.
	rec := post(h, `{"workload":"TESTFAST","device":"rtx 2080 ti"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("second: %d %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-NSServe-Cache"); got != "hit" {
		t.Fatalf("cache header %q, want hit", got)
	}
	if runs := testCtl.runs.Load(); runs != 1 {
		t.Fatalf("workload ran %d times, want 1", runs)
	}
}

func TestBadRequests(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	h := s.Handler()
	for body, wantCode := range map[string]int{
		`{"workload":"no-such-workload"}`:          http.StatusBadRequest,
		`{"workload":"testfast","device":"TPUv9"}`: http.StatusBadRequest,
		`{`:  http.StatusBadRequest,
		`{}`: http.StatusBadRequest,
	} {
		if rec := post(h, body); rec.Code != wantCode {
			t.Errorf("body %s: status %d, want %d", body, rec.Code, wantCode)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/characterize", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET characterize: %d, want 405", rec.Code)
	}
}

func TestSingleflightDeduplicates(t *testing.T) {
	resetCtl(true)
	s := newTestServer(t, Config{Concurrency: 1})
	h := s.Handler()
	const n = 6

	var wg sync.WaitGroup
	recs := make([]*httptest.ResponseRecorder, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = post(h, `{"workload":"testgate"}`)
		}(i)
	}
	// The leader is executing (gated); the other n-1 must join its flight.
	waitFor(t, "worker entry", func() bool { return len(testCtl.entered) >= 1 })
	waitFor(t, "dedup joins", func() bool { return s.st.dedupJoins.Value() == n-1 })
	openGate()
	wg.Wait()

	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, rec.Code, rec.Body)
		}
		if !bytes.Equal(rec.Body.Bytes(), recs[0].Body.Bytes()) {
			t.Fatalf("request %d returned different bytes than request 0", i)
		}
	}
	if runs := testCtl.runs.Load(); runs != 1 {
		t.Fatalf("%d concurrent identical requests ran the workload %d times, want exactly 1", n, runs)
	}
	if got := s.st.runs.Value(); got != 1 {
		t.Fatalf("server executed %d runs, want 1", got)
	}
}

func TestFullQueueRejectsWith429(t *testing.T) {
	resetCtl(true)
	s := newTestServer(t, Config{Concurrency: 1, QueueDepth: 1})
	h := s.Handler()

	// Distinct devices make distinct canonical keys for the same workload.
	body := func(dev string) string {
		return fmt.Sprintf(`{"workload":"testgate","device":%q}`, dev)
	}
	var wg sync.WaitGroup
	results := make([]*httptest.ResponseRecorder, 2)
	wg.Add(1)
	go func() { defer wg.Done(); results[0] = post(h, body(hwsim.RTX2080Ti.Name)) }()
	waitFor(t, "worker busy", func() bool { return len(testCtl.entered) >= 1 })
	wg.Add(1)
	go func() { defer wg.Done(); results[1] = post(h, body(hwsim.XavierNX.Name)) }()
	waitFor(t, "queue full", func() bool { return len(s.queue) == 1 })

	rejected := post(h, body(hwsim.JetsonTX2.Name))
	if rejected.Code != http.StatusTooManyRequests {
		t.Fatalf("third request: %d, want 429", rejected.Code)
	}
	if rejected.Header().Get("Retry-After") == "" {
		t.Fatal("429 response is missing Retry-After")
	}
	if got := s.st.rejected.Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}

	openGate()
	wg.Wait()
	for i, rec := range results {
		if rec.Code != http.StatusOK {
			t.Fatalf("admitted request %d: %d %s", i, rec.Code, rec.Body)
		}
	}
}

func TestAbandonedQueuedWorkIsDropped(t *testing.T) {
	resetCtl(true)
	s := newTestServer(t, Config{Concurrency: 1, QueueDepth: 2})
	h := s.Handler()

	var wg sync.WaitGroup
	wg.Add(1)
	var first *httptest.ResponseRecorder
	go func() {
		defer wg.Done()
		first = post(h, fmt.Sprintf(`{"workload":"testgate","device":%q}`, hwsim.RTX2080Ti.Name))
	}()
	waitFor(t, "worker busy", func() bool { return len(testCtl.entered) >= 1 })

	// Second request queues behind the gated run, then its client leaves.
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/characterize",
		strings.NewReader(fmt.Sprintf(`{"workload":"testgate","device":%q}`, hwsim.XavierNX.Name))).WithContext(ctx)
	rec := httptest.NewRecorder()
	wg.Add(1)
	go func() { defer wg.Done(); h.ServeHTTP(rec, req) }()
	waitFor(t, "second request queued", func() bool { return len(s.queue) == 1 })
	cancel()
	waitFor(t, "waiter departure", func() bool { return s.st.timeouts.Value() == 1 })

	openGate()
	wg.Wait()
	if first.Code != http.StatusOK {
		t.Fatalf("first request: %d %s", first.Code, first.Body)
	}
	if rec.Code != statusClientClosed {
		t.Fatalf("canceled request: %d, want %d", rec.Code, statusClientClosed)
	}
	waitFor(t, "queued work dropped", func() bool { return s.st.abandoned.Value() == 1 })
	if runs := s.st.runs.Value(); runs != 1 {
		t.Fatalf("server executed %d runs, want 1 (abandoned work must not run)", runs)
	}
}

func TestCloseDrainsInFlightWork(t *testing.T) {
	resetCtl(true)
	registerTestWorkloads()
	s, err := New(Config{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	var wg sync.WaitGroup
	recs := make([]*httptest.ResponseRecorder, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		recs[0] = post(h, fmt.Sprintf(`{"workload":"testgate","device":%q}`, hwsim.RTX2080Ti.Name))
	}()
	waitFor(t, "worker busy", func() bool { return len(testCtl.entered) >= 1 })
	wg.Add(1)
	go func() {
		defer wg.Done()
		recs[1] = post(h, fmt.Sprintf(`{"workload":"testgate","device":%q}`, hwsim.XavierNX.Name))
	}()
	waitFor(t, "second request queued", func() bool { return len(s.queue) == 1 })

	// Release the gate and close concurrently: Close must block until both
	// the running and the queued characterization have been served.
	go func() {
		time.Sleep(20 * time.Millisecond)
		openGate()
	}()
	s.Close()
	wg.Wait()
	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d after drain: %d %s", i, rec.Code, rec.Body)
		}
	}
	if runs := s.st.runs.Value(); runs != 2 {
		t.Fatalf("drained runs = %d, want 2", runs)
	}
	// New (uncached) work after shutdown is refused, not queued. Cached
	// keys keep serving — only fresh characterizations are turned away.
	body := fmt.Sprintf(`{"workload":"testgate","device":%q}`, hwsim.JetsonTX2.Name)
	if rec := post(h, body); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown request: %d, want 503", rec.Code)
	}
}

func TestCloseTearsDownWorkerPool(t *testing.T) {
	resetCtl(false)
	registerTestWorkloads()
	before := runtime.NumGoroutine()
	s, err := New(Config{
		Engine:      ops.Config{Backend: ops.BackendParallel, Workers: 4},
		Concurrency: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Run one characterization so the shared backend pool actually spawns.
	if rec := post(s.Handler(), `{"workload":"testfast"}`); rec.Code != http.StatusOK {
		t.Fatalf("characterize: %d %s", rec.Code, rec.Body)
	}
	s.Close()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after Close: %d, want <= %d (worker pool leaked)", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestWorkloadsAndStatsEndpoints(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	h := s.Handler()

	req := httptest.NewRequest(http.MethodGet, "/v1/workloads", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("workloads: %d %s", rec.Code, rec.Body)
	}
	var list []struct{ Name, Category string }
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("workloads JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range list {
		names[e.Name] = true
	}
	for _, want := range core.SuiteNames() {
		if !names[want] {
			t.Fatalf("workloads listing is missing %s (got %v)", want, names)
		}
	}

	if rec := post(h, `{"workload":"testfast"}`); rec.Code != http.StatusOK {
		t.Fatalf("characterize: %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", rec.Code, rec.Body)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if snap.Requests != 1 || snap.Runs != 1 || snap.CacheSize != 1 {
		t.Fatalf("stats snapshot %+v, want 1 request / 1 run / 1 cached", snap)
	}
	if snap.AvgRunNanos <= 0 {
		t.Fatalf("avg run nanos = %d, want > 0", snap.AvgRunNanos)
	}
}

// TestRealWorkloadReport runs a genuine suite workload end to end through
// the server and sanity-checks the report JSON.
func TestRealWorkloadReport(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	h := s.Handler()
	first := post(h, `{"workload":"LNN"}`)
	if first.Code != http.StatusOK {
		t.Fatalf("LNN characterize: %d %s", first.Code, first.Body)
	}
	var report struct {
		Name          string  `json:"name"`
		TotalNs       int64   `json:"total_ns"`
		SymbolicShare float64 `json:"symbolic_share"`
	}
	if err := json.Unmarshal(first.Body.Bytes(), &report); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if report.Name != "LNN" || report.TotalNs <= 0 {
		t.Fatalf("implausible report: %+v", report)
	}
	if report.SymbolicShare <= 0 || report.SymbolicShare >= 1 {
		t.Fatalf("LNN symbolic share = %v, want in (0, 1)", report.SymbolicShare)
	}
	second := post(h, `{"workload":"lnn"}`)
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("cached real-workload report is not byte-identical")
	}
}

func TestCanonicalizeKeys(t *testing.T) {
	registerTestWorkloads()
	a, keyA, err := canonicalize(Request{Workload: " nvsa "})
	if err != nil {
		t.Fatal(err)
	}
	if a.Workload != "NVSA" || a.Device != hwsim.RTX2080Ti.Name {
		t.Fatalf("canonical form %+v", a)
	}
	_, keyB, err := canonicalize(Request{Workload: "NVSA", Device: "rtx 2080 ti"})
	if err != nil {
		t.Fatal(err)
	}
	if keyA != keyB {
		t.Fatalf("equivalent requests got different keys %q vs %q", keyA, keyB)
	}
	if _, _, err := canonicalize(Request{}); err == nil {
		t.Fatal("empty request must not canonicalize")
	}
}

func TestRetryAfterScalesWithLoad(t *testing.T) {
	resetCtl(true)
	s := newTestServer(t, Config{Concurrency: 1, QueueDepth: 8})

	// Idle, no history: the hint is the 1-second floor.
	if got := s.retryAfterHint(); got != "1" {
		t.Fatalf("idle hint = %s, want 1", got)
	}

	// Three 2-second runs of history and an empty queue: the next run is
	// expected to take ~2s, so the hint follows the observed mean.
	for i := 0; i < 3; i++ {
		s.st.recordRun(2 * time.Second)
	}
	if got := s.retryAfterHint(); got != "2" {
		t.Fatalf("mean-informed hint = %s, want 2", got)
	}

	// Saturate the queue: one gated run occupies the worker, more queue
	// behind it. The drain estimate now covers every queued run, so a
	// saturated server must report a strictly larger hint than an idle one.
	var wg sync.WaitGroup
	devices := []string{hwsim.RTX2080Ti.Name, hwsim.XavierNX.Name, hwsim.JetsonTX2.Name}
	for _, dev := range devices {
		dev := dev
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(s.Handler(), fmt.Sprintf(`{"workload":"testgate","device":%q}`, dev))
		}()
	}
	waitFor(t, "worker busy", func() bool { return len(testCtl.entered) >= 1 })
	waitFor(t, "queue backlog", func() bool { return len(s.queue) == len(devices)-1 })
	saturated := s.retryAfterHint()
	// mean 2s × (2 queued + 1 new) ÷ 1 worker = 6s.
	if saturated != "6" {
		t.Fatalf("saturated hint = %s, want 6", saturated)
	}
	openGate()
	wg.Wait()
}

func TestRetryAfterClampedToTimeout(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{Concurrency: 1, RequestTimeout: 5 * time.Second})
	// One absurdly slow observed run must not produce a hint beyond the
	// request timeout: a client told to come back later than its own
	// deadline would never be served.
	s.st.recordRun(10 * time.Minute)
	if got := s.retryAfterHint(); got != "5" {
		t.Fatalf("hint = %s, want clamp to request timeout (5)", got)
	}
}

// TestDrainReadiness covers the liveness/readiness split: BeginDrain
// flips /readyz to 503 (so health checkers eject the replica) while
// /healthz and the serving path keep answering — the listener is still
// open, only routing should stop.
func TestDrainReadiness(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	h := s.Handler()

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}
	if rec := get("/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("fresh server /readyz = %d, want 200", rec.Code)
	}
	if rec := post(h, `{"workload":"testfast"}`); rec.Code != http.StatusOK {
		t.Fatalf("characterize: %d %s", rec.Code, rec.Body)
	}

	s.BeginDrain()
	if rec := get("/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %d, want 503", rec.Code)
	}
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("draining /healthz = %d, want 200 (liveness must survive a drain)", rec.Code)
	}
	// Draining only flips readiness: cached and fresh work still serve
	// until the listener actually closes.
	if rec := post(h, `{"workload":"testfast"}`); rec.Code != http.StatusOK {
		t.Fatalf("characterize while draining: %d %s", rec.Code, rec.Body)
	}
	if rec := post(h, fmt.Sprintf(`{"workload":"testfast","device":%q}`, hwsim.XavierNX.Name)); rec.Code != http.StatusOK {
		t.Fatalf("fresh characterize while draining: %d %s", rec.Code, rec.Body)
	}

	s.Close()
	if rec := get("/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("closed /readyz = %d, want 503", rec.Code)
	}
}

func TestLRUEvicts(t *testing.T) {
	c := newLRU(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.Put("c", []byte("3")) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a lost")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c lost")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	disabled := newLRU(-1)
	disabled.Put("x", []byte("1"))
	if _, ok := disabled.Get("x"); ok {
		t.Fatal("disabled cache must not store")
	}
}
