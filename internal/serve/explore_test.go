package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/neurosym/nsbench/internal/dse"
)

// postExplore issues one explore request through the handler and parses
// the NDJSON stream.
func postExplore(t *testing.T, h http.Handler, body string) (int, []dse.Chunk) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/explore", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return rec.Code, nil
	}
	var chunks []dse.Chunk
	sc := bufio.NewScanner(rec.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var c dse.Chunk
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		chunks = append(chunks, c)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return rec.Code, chunks
}

// exploreBody is a small 2x2x2 = 8-point sweep over the test workload.
const exploreBody = `{"workload":"testfast","space":{
	"peak_gflops":{"values":[2000,8000]},
	"mem_bw_gbs":{"values":[200,800]},
	"l1_kb":{"values":[32,128]}}}`

func TestExploreStreamShape(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	code, chunks := postExplore(t, s.Handler(), exploreBody)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(chunks) != 10 { // meta + 8 points + summary
		t.Fatalf("got %d chunks, want 10", len(chunks))
	}
	meta := chunks[0]
	if meta.Type != "meta" || meta.Meta == nil {
		t.Fatalf("first chunk is %+v, want meta", meta)
	}
	if meta.Meta.Workload != "testfast" || meta.Meta.GridSize != 8 || meta.Meta.ShardCount != 1 {
		t.Fatalf("meta = %+v", meta.Meta)
	}
	seen := map[int]bool{}
	for _, c := range chunks[1:9] {
		if c.Type != "point" || c.Point == nil {
			t.Fatalf("middle chunk is %+v, want point", c)
		}
		if c.Point.Err != "" {
			t.Fatalf("point %d failed: %s", c.Point.Index, c.Point.Err)
		}
		seen[c.Point.Index] = true
	}
	if len(seen) != 8 {
		t.Fatalf("points cover %d distinct indices, want 8", len(seen))
	}
	last := chunks[9]
	if last.Type != "summary" || last.Summary == nil {
		t.Fatalf("last chunk is %+v, want summary", last)
	}
	sum := last.Summary
	if sum.Workload != "testfast" || sum.Evaluated != 8 || sum.Failed != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.FrontSize == 0 || len(sum.Front) != sum.FrontSize {
		t.Fatalf("front missing: %+v", sum)
	}
}

// TestExploreTraceOnce pins trace-once/project-many end to end: two sweeps
// (and a sharded pair) over the same workload run the workload exactly once.
func TestExploreTraceOnce(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	h := s.Handler()
	for i := 0; i < 2; i++ {
		if code, _ := postExplore(t, h, exploreBody); code != http.StatusOK {
			t.Fatalf("sweep %d: status %d", i, code)
		}
	}
	sharded := `{"workload":"testfast","shard_index":1,"shard_count":2,"space":{
		"peak_gflops":{"values":[2000,8000]}}}`
	postExplore(t, h, sharded)
	if n := testCtl.runs.Load(); n != 1 {
		t.Fatalf("workload ran %d times across 3 sweeps, want 1 (trace cache)", n)
	}
}

func TestExploreShardedSweep(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	h := s.Handler()

	_, full := postExplore(t, h, exploreBody)
	fullSum := full[len(full)-1].Summary

	seen := map[int]bool{}
	var fronts [][]dse.PointResult
	for shard := 0; shard < 2; shard++ {
		body := fmt.Sprintf(`{"workload":"testfast","shard_index":%d,"shard_count":2,"space":{
			"peak_gflops":{"values":[2000,8000]},
			"mem_bw_gbs":{"values":[200,800]},
			"l1_kb":{"values":[32,128]}}}`, shard)
		code, chunks := postExplore(t, h, body)
		if code != http.StatusOK {
			t.Fatalf("shard %d: status %d", shard, code)
		}
		sum := chunks[len(chunks)-1].Summary
		if sum.Evaluated != 4 || sum.ShardIndex != shard || sum.ShardCount != 2 {
			t.Fatalf("shard %d summary = %+v", shard, sum)
		}
		for _, c := range chunks[1 : len(chunks)-1] {
			if c.Point.Index%2 != shard {
				t.Fatalf("shard %d emitted index %d", shard, c.Point.Index)
			}
			seen[c.Point.Index] = true
		}
		fronts = append(fronts, sum.Front)
	}
	if len(seen) != 8 {
		t.Fatalf("shards covered %d indices, want 8", len(seen))
	}
	merged, _ := json.Marshal(dse.MergeFronts(fronts...))
	want, _ := json.Marshal(fullSum.Front)
	if string(merged) != string(want) {
		t.Fatalf("merged shard fronts != full front:\n%s\n%s", merged, want)
	}
}

func TestExploreValidation(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{ExploreMaxPoints: 4})
	h := s.Handler()
	cases := []struct {
		name, body string
		want       int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown workload", `{"workload":"nope"}`, http.StatusBadRequest},
		{"bad space", `{"workload":"testfast","space":{"peak_gflops":{"min":5,"max":1,"steps":3}}}`, http.StatusBadRequest},
		{"grid too large", exploreBody, http.StatusBadRequest},
		{"bad shard", `{"workload":"testfast","shard_index":3,"shard_count":2}`, http.StatusBadRequest},
		{"wrong method", ``, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		var rec *httptest.ResponseRecorder
		if tc.name == "wrong method" {
			req := httptest.NewRequest(http.MethodGet, "/v1/explore", nil)
			rec = httptest.NewRecorder()
			h.ServeHTTP(rec, req)
		} else {
			req := httptest.NewRequest(http.MethodPost, "/v1/explore", strings.NewReader(tc.body))
			rec = httptest.NewRecorder()
			h.ServeHTTP(rec, req)
		}
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
		}
	}
}

func TestExploreStatsAndMetrics(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	h := s.Handler()
	postExplore(t, h, exploreBody)

	snap := s.st.snapshot()
	if snap.SweepsRun != 1 || snap.PointsEvaluated != 8 {
		t.Fatalf("stats sweeps=%d points=%d, want 1/8", snap.SweepsRun, snap.PointsEvaluated)
	}

	rec := get(h, "/metrics")
	body := rec.Body.String()
	for _, m := range []string{
		"ns_explore_sweeps_total 1",
		"ns_explore_points_total 8",
		"ns_explore_shards_inflight 0",
	} {
		if !strings.Contains(body, m) {
			t.Errorf("/metrics missing %q", m)
		}
	}
}

// TestExploreConcurrencyLimit pins the 429 backpressure contract: with the
// semaphore held, a new sweep is rejected with Retry-After.
func TestExploreConcurrencyLimit(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{ExploreConcurrency: 1})
	s.exploreSem <- struct{}{} // saturate
	defer func() { <-s.exploreSem }()
	req := httptest.NewRequest(http.MethodPost, "/v1/explore", strings.NewReader(exploreBody))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestExploreRecorderSpan pins request-ID propagation into the flight
// recorder: a sweep leaves an explore.sweep event under its request ID.
func TestExploreRecorderSpan(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodPost, "/v1/explore", strings.NewReader(exploreBody))
	req.Header.Set("X-Request-ID", "sweep-42")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	found := false
	for _, e := range s.recorder.Snapshot() {
		if e.ID == "sweep-42" && e.Ev.Name == "explore.sweep" {
			found = true
			if e.Ev.Bytes != 8 {
				t.Fatalf("sweep span counted %d points, want 8", e.Ev.Bytes)
			}
		}
	}
	if !found {
		t.Fatal("no explore.sweep event recorded under the request ID")
	}
}
