package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"github.com/neurosym/nsbench/internal/slo"
)

func TestSLOEndpointReportsObjectives(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	h := s.Handler()

	rec := get(h, "/v1/slo")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var rep slo.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, o := range rep.Objectives {
		names[o.Name] = true
		if len(o.Windows) == 0 {
			t.Fatalf("objective %s has no burn windows", o.Name)
		}
	}
	if !names["availability"] || !names["characterize_latency"] {
		t.Fatalf("objectives = %v, want availability and characterize_latency", names)
	}
}

func TestSLOEndpointSeesErrorBurst(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{SLOAvailabilityTarget: 0.99})
	h := s.Handler()

	// Clean traffic first: the availability feed counts every served
	// response (probe endpoints excluded, so use a real one).
	for i := 0; i < 5; i++ {
		get(h, "/v1/workloads")
	}
	// Inject a 5xx burst directly into the availability feed (the
	// instrument hook's "total without good" path).
	for i := 0; i < 5; i++ {
		s.sloTotal.Inc()
	}

	rec := get(h, "/v1/slo")
	var rep slo.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	var avail *slo.ObjectiveReport
	for i := range rep.Objectives {
		if rep.Objectives[i].Name == "availability" {
			avail = &rep.Objectives[i]
		}
	}
	if avail == nil {
		t.Fatal("no availability objective in report")
	}
	if avail.Total == 0 || avail.Good >= avail.Total {
		t.Fatalf("good/total = %d/%d, want an error gap", avail.Good, avail.Total)
	}
	if avail.ErrorRate <= 0 {
		t.Fatalf("error rate = %v, want > 0 after burst", avail.ErrorRate)
	}
	if avail.BudgetConsumed <= 0 {
		t.Fatalf("budget consumed = %v, want > 0 after burst", avail.BudgetConsumed)
	}
	// The burst is a large fraction of a small sample against a 1% budget:
	// every window must be burning.
	for _, w := range avail.Windows {
		if w.BurnRate <= 1 {
			t.Fatalf("window %s burn = %v, want > 1", w.Name, w.BurnRate)
		}
	}
}

// TestProbeEndpointsDoNotBurnErrorBudget: a draining replica's /readyz
// answers 503 by design — the readiness contract must not consume the
// availability budget it exists to protect.
func TestProbeEndpointsDoNotBurnErrorBudget(t *testing.T) {
	resetCtl(false)
	s := newTestServer(t, Config{})
	h := s.Handler()
	s.BeginDrain()
	for i := 0; i < 10; i++ {
		if rec := get(h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("draining readyz = %d, want 503", rec.Code)
		}
		get(h, "/healthz")
	}

	rec := get(h, "/v1/slo")
	var rep slo.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	for _, o := range rep.Objectives {
		if o.Name != "availability" {
			continue
		}
		if o.Good != o.Total {
			t.Fatalf("good/total = %d/%d after probe-only traffic, want equal (probes must not feed the budget)", o.Good, o.Total)
		}
		if o.BudgetConsumed != 0 {
			t.Fatalf("budget consumed = %v by readiness 503s, want 0", o.BudgetConsumed)
		}
		return
	}
	t.Fatal("no availability objective in report")
}

func TestStatsJSONUnchangedBySLOPlane(t *testing.T) {
	// The SLO plane must not disturb the pinned /v1/stats JSON shape:
	// its state lives only under /v1/slo and ns_slo_* metrics.
	resetCtl(false)
	s := newTestServer(t, Config{})
	rec := get(s.Handler(), "/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	for _, forbidden := range []string{"slo", "objectives", "budget_consumed"} {
		if _, ok := m[forbidden]; ok {
			t.Fatalf("/v1/stats grew an SLO key %q", forbidden)
		}
	}
}
