package serve

import (
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/neurosym/nsbench/internal/core"
	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/tensor"
)

// batchTestWorkload is a native BatchWorkload whose work is entirely
// shared across batch items: one solo-shaped pass under replica
// amplification stands for the whole batch, so a coalesced pass of n
// items costs about as much as a solo run. It is the serving analogue of
// the paper's observation that small symbolic kernels cannot fill the
// hardware — batching them is nearly free — and it is what gives
// BenchmarkServeBatch a real batched/unbatched gap to measure.
type batchTestWorkload struct{ dim int }

func (w *batchTestWorkload) Name() string     { return "testbatch" }
func (w *batchTestWorkload) Category() string { return "Test" }

func (w *batchTestWorkload) Run(e *ops.Engine) error { return w.RunBatch(e, 1) }

func (w *batchTestWorkload) RunBatch(e *ops.Engine, n int) error {
	e.SetReplicas(n)
	defer e.SetReplicas(1)
	g := tensor.NewRNG(1)
	a := g.Normal(0, 1, w.dim, w.dim)
	b := g.Normal(0, 1, w.dim, w.dim)
	c := e.MatMul(a, b)
	e.Softmax(c)
	return nil
}

var registerBatchOnce sync.Once

func registerBatchWorkload() {
	registerBatchOnce.Do(func() {
		core.RegisterWorkload("testbatch", func() core.Workload { return &batchTestWorkload{dim: 160} })
	})
}

// postDevice issues one characterize request for workload on device.
func postDevice(h http.Handler, workload, device string) int {
	rec := post(h, fmt.Sprintf(`{"workload":%q,"device":%q}`, workload, device))
	return rec.Code
}

// TestCoalescerFlushOnFull verifies grouping: three concurrent misses for
// the same workload on distinct devices coalesce into one engine pass
// (BatchMax reached — the long window never expires), every item's report
// lands in the cache under its own key, and the stats expose the batch.
func TestCoalescerFlushOnFull(t *testing.T) {
	resetCtl(false)
	registerBatchWorkload()
	s := newTestServer(t, Config{BatchWindow: 500 * time.Millisecond, BatchMax: 3})
	h := s.Handler()
	devs := hwsim.AllDevices()[:3]

	var wg sync.WaitGroup
	codes := make([]int, len(devs))
	for i, d := range devs {
		wg.Add(1)
		go func(i int, dev string) {
			defer wg.Done()
			codes[i] = postDevice(h, "testbatch", dev)
		}(i, d.Name)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d (%s): status %d", i, devs[i].Name, code)
		}
	}
	if got := s.st.batches.Value(); got != 1 {
		t.Fatalf("batches = %d, want 1 (one coalesced pass)", got)
	}
	if got := s.st.batchItems.Value(); got != 3 {
		t.Fatalf("batch items = %d, want 3", got)
	}
	if got := s.st.coalesceFlushes.With("full").Value(); got != 1 {
		t.Fatalf("full flushes = %d, want 1", got)
	}
	snap := s.st.snapshot()
	if snap.BatchesRun != 1 || snap.AvgOccupancy != 3 {
		t.Fatalf("snapshot batches_run=%d avg_occupancy=%v, want 1 / 3", snap.BatchesRun, snap.AvgOccupancy)
	}
	// Every item filled the cache individually.
	for _, d := range devs {
		rec := post(h, fmt.Sprintf(`{"workload":"testbatch","device":%q}`, d.Name))
		if rec.Code != http.StatusOK || rec.Header().Get("X-NSServe-Cache") != "hit" {
			t.Fatalf("device %s after batch: status %d cache %q, want 200 hit",
				d.Name, rec.Code, rec.Header().Get("X-NSServe-Cache"))
		}
	}
}

// TestCoalescerWindowFlush verifies the timer path: a lone miss waits out
// the window, then runs as an occupancy-1 pass.
func TestCoalescerWindowFlush(t *testing.T) {
	resetCtl(false)
	registerBatchWorkload()
	s := newTestServer(t, Config{BatchWindow: 2 * time.Millisecond})
	if code := postDevice(s.Handler(), "testbatch", ""); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got := s.st.coalesceFlushes.With("window").Value(); got != 1 {
		t.Fatalf("window flushes = %d, want 1", got)
	}
	snap := s.st.snapshot()
	if snap.BatchesRun != 1 || snap.AvgOccupancy != 1 {
		t.Fatalf("snapshot batches_run=%d avg_occupancy=%v, want 1 / 1", snap.BatchesRun, snap.AvgOccupancy)
	}
}

// TestCoalescerCloseDrainsPendingGroups verifies Close answers waiters
// whose group is still inside its window instead of leaving them to time
// out against a closed queue.
func TestCoalescerCloseDrainsPendingGroups(t *testing.T) {
	resetCtl(false)
	registerBatchWorkload()
	s := newTestServer(t, Config{BatchWindow: 10 * time.Second})
	h := s.Handler()

	code := make(chan int, 1)
	go func() { code <- postDevice(h, "testbatch", "") }()
	waitFor(t, "pending group", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.pending) == 1
	})
	s.Close()
	select {
	case c := <-code:
		if c != http.StatusOK {
			t.Fatalf("drained request: status %d", c)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request still blocked after Close")
	}
	if got := s.st.coalesceFlushes.With("drain").Value(); got != 1 {
		t.Fatalf("drain flushes = %d, want 1", got)
	}
}

// TestCoalescerMixedWorkloadsGroupSeparately verifies the grouping key:
// requests for different workloads never share a pass.
func TestCoalescerMixedWorkloadsGroupSeparately(t *testing.T) {
	resetCtl(false)
	registerBatchWorkload()
	s := newTestServer(t, Config{BatchWindow: 500 * time.Millisecond, BatchMax: 2})
	h := s.Handler()
	devs := hwsim.AllDevices()

	var wg sync.WaitGroup
	for _, wl := range []string{"testbatch", "testfast"} {
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(wl, dev string) {
				defer wg.Done()
				if code := postDevice(h, wl, dev); code != http.StatusOK {
					t.Errorf("%s on %s: status %d", wl, dev, code)
				}
			}(wl, devs[i].Name)
		}
	}
	wg.Wait()
	if got := s.st.batches.Value(); got != 2 {
		t.Fatalf("batches = %d, want 2 (one per workload)", got)
	}
	if got := s.st.batchItems.Value(); got != 4 {
		t.Fatalf("batch items = %d, want 4", got)
	}
}

// TestCoalescerSoak is the race-detector smoke the CI runs: sustained
// mixed hit/miss traffic over a small cache with a 2ms window, across
// both the native-batch and adapter workloads and every device. It must
// finish with zero failed characterizations and an average occupancy
// above 1 (i.e. real coalescing happened). Gated behind
// NSBENCH_COALESCER_SOAK because it burns a few wall-clock seconds.
func TestCoalescerSoak(t *testing.T) {
	if os.Getenv("NSBENCH_COALESCER_SOAK") == "" {
		t.Skip("set NSBENCH_COALESCER_SOAK=1 to run the coalescer soak")
	}
	resetCtl(false)
	registerBatchWorkload()
	s := newTestServer(t, Config{
		BatchWindow: 2 * time.Millisecond,
		BatchMax:    8,
		CacheSize:   3, // smaller than the key space: sustained misses
		QueueDepth:  256,
		Concurrency: 2,
	})
	h := s.Handler()
	devs := hwsim.AllDevices()
	workloads := []string{"testbatch", "testfast"}

	const clients = 16
	const perClient = 30
	var bad atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				// Clients share the (workload, device) schedule: roughly
				// in-lockstep clients hit what the leader cached moments
				// ago, drifted clients miss — the sustained hit/miss mix.
				wl := workloads[(c+i)%len(workloads)]
				dev := devs[i%len(devs)].Name
				if code := postDevice(h, wl, dev); code != http.StatusOK {
					bad.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d requests failed", n)
	}
	if n := s.st.failures.Value(); n != 0 {
		t.Fatalf("%d characterizations failed", n)
	}
	snap := s.st.snapshot()
	if snap.BatchesRun == 0 || snap.AvgOccupancy <= 1 {
		t.Fatalf("soak saw no real coalescing: batches_run=%d avg_occupancy=%v",
			snap.BatchesRun, snap.AvgOccupancy)
	}
	t.Logf("soak: %d batches, avg occupancy %.2f, %d cache hits, %d misses",
		snap.BatchesRun, snap.AvgOccupancy, snap.CacheHits, snap.CacheMiss)
}
