// Package nn provides neural-network layers on top of the instrumented ops
// engine.
//
// The layers implement inference-time forward passes only: the
// characterization study profiles inference, and a forward pass over
// deterministically seeded weights has the same compute and memory
// behaviour as one over trained weights (see DESIGN.md, substitutions).
package nn

import (
	"fmt"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/tensor"
)

// Layer is a module with an instrumented forward pass.
type Layer interface {
	// Forward applies the layer to x using the engine e.
	Forward(e *ops.Engine, x *tensor.Tensor) *tensor.Tensor
	// Register records the layer's persistent parameters on the engine's
	// trace for the storage-footprint analysis.
	Register(e *ops.Engine)
	// ParamBytes returns the total parameter storage in bytes.
	ParamBytes() int64
}

// Linear is a fully connected layer computing x·Wᵀ + b over a batch.
// Input is (batch × in); output is (batch × out).
type Linear struct {
	Name string
	W    *tensor.Tensor // out × in
	B    *tensor.Tensor // out (may be nil)
	wT   *tensor.Tensor // in × out, cached transpose used by Forward
}

// NewLinear returns a Linear layer with Xavier-initialized weights.
func NewLinear(g *tensor.RNG, name string, in, out int, bias bool) *Linear {
	l := &Linear{
		Name: name,
		W:    g.Xavier(in, out, out, in),
	}
	if bias {
		l.B = g.Uniform(-0.01, 0.01, out)
	}
	l.wT = tensor.Transpose(l.W)
	return l
}

// Forward computes the affine map for a (batch × in) input.
func (l *Linear) Forward(e *ops.Engine, x *tensor.Tensor) *tensor.Tensor {
	return l.ForwardBatch(e, x, 1)
}

// ForwardBatch computes the affine map for an input stacking `items` row
// blocks (the serving-batch layout): the GEMM accounts the shared weight
// traffic once per item, so the recorded cost is exactly items× one
// block's Forward.
func (l *Linear) ForwardBatch(e *ops.Engine, x *tensor.Tensor, items int) *tensor.Tensor {
	if x.Rank() != 2 {
		panic(fmt.Sprintf("nn: Linear %q expects rank-2 input, got %v", l.Name, x.Shape()))
	}
	y := e.MatMulBatch(x, l.wT, items)
	if l.B != nil {
		// Broadcast-add bias row-wise: materialize the broadcast so the
		// traffic is accounted.
		rows := make([]*tensor.Tensor, y.Dim(0))
		for i := range rows {
			rows[i] = l.B
		}
		bb := e.Stack(rows...)
		y = e.Add(y, bb)
	}
	return y
}

// Register records the layer parameters.
func (l *Linear) Register(e *ops.Engine) {
	e.RegisterParam(l.Name+".weight", "weight", l.W)
	if l.B != nil {
		e.RegisterParam(l.Name+".bias", "weight", l.B)
	}
}

// SetWeights replaces the layer parameters (e.g. after external training)
// and refreshes the cached transpose used by Forward. bias may be nil.
func (l *Linear) SetWeights(w, bias *tensor.Tensor) {
	l.W = w
	l.B = bias
	l.wT = tensor.Transpose(w)
}

// ParamBytes returns the parameter storage of the layer.
func (l *Linear) ParamBytes() int64 {
	n := l.W.Bytes()
	if l.B != nil {
		n += l.B.Bytes()
	}
	return n
}

// Conv2d is a 2-D convolution layer over N×C×H×W inputs.
type Conv2d struct {
	Name        string
	W           *tensor.Tensor // cout × cin × kh × kw
	B           *tensor.Tensor // cout (may be nil)
	Stride, Pad int
}

// NewConv2d returns a Conv2d layer with Xavier-initialized kernels.
func NewConv2d(g *tensor.RNG, name string, cin, cout, k, stride, pad int) *Conv2d {
	fan := cin * k * k
	return &Conv2d{
		Name:   name,
		W:      g.Xavier(fan, cout*k*k, cout, cin, k, k),
		B:      g.Uniform(-0.01, 0.01, cout),
		Stride: stride,
		Pad:    pad,
	}
}

// Forward applies the convolution.
func (c *Conv2d) Forward(e *ops.Engine, x *tensor.Tensor) *tensor.Tensor {
	return c.ForwardBatch(e, x, 1)
}

// ForwardBatch applies the convolution to an input stacking `items`
// batch blocks along the leading axis, accounting the shared kernel
// traffic per item.
func (c *Conv2d) ForwardBatch(e *ops.Engine, x *tensor.Tensor, items int) *tensor.Tensor {
	return e.Conv2DBatch(x, c.W, c.B, c.Stride, c.Pad, items)
}

// Register records the layer parameters.
func (c *Conv2d) Register(e *ops.Engine) {
	e.RegisterParam(c.Name+".weight", "weight", c.W)
	if c.B != nil {
		e.RegisterParam(c.Name+".bias", "weight", c.B)
	}
}

// ParamBytes returns the parameter storage of the layer.
func (c *Conv2d) ParamBytes() int64 {
	n := c.W.Bytes()
	if c.B != nil {
		n += c.B.Bytes()
	}
	return n
}

// BatchNorm2d applies per-channel scale and shift using frozen statistics
// (inference mode).
type BatchNorm2d struct {
	Name        string
	Scale, Bias *tensor.Tensor // per-channel
}

// NewBatchNorm2d returns an inference-mode batch norm over c channels.
func NewBatchNorm2d(g *tensor.RNG, name string, c int) *BatchNorm2d {
	return &BatchNorm2d{
		Name:  name,
		Scale: g.Uniform(0.9, 1.1, c),
		Bias:  g.Uniform(-0.05, 0.05, c),
	}
}

// Forward applies y = x*scale[c] + bias[c] per channel.
func (b *BatchNorm2d) Forward(e *ops.Engine, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: BatchNorm2d %q expects rank-4 input, got %v", b.Name, x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	// Materialize the broadcast per-channel parameters once, chunked per
	// (batch, channel) plane on the engine's backend.
	scale := tensor.New(n, c, h, w)
	shift := tensor.New(n, c, h, w)
	hw := h * w
	e.Backend().For(n*c, 1, func(lo, hi int) {
		for bc := lo; bc < hi; bc++ {
			base := bc * hw
			sv, bv := b.Scale.At(bc%c), b.Bias.At(bc%c)
			for i := 0; i < hw; i++ {
				scale.Data()[base+i] = sv
				shift.Data()[base+i] = bv
			}
		}
	})
	y := e.Mul(x, scale)
	return e.Add(y, shift)
}

// Register records the layer parameters.
func (b *BatchNorm2d) Register(e *ops.Engine) {
	e.RegisterParam(b.Name+".scale", "weight", b.Scale)
	e.RegisterParam(b.Name+".bias", "weight", b.Bias)
}

// ParamBytes returns the parameter storage of the layer.
func (b *BatchNorm2d) ParamBytes() int64 { return b.Scale.Bytes() + b.Bias.Bytes() }

// Activation wraps a parameter-free nonlinearity as a Layer.
type Activation struct {
	Name string
	F    func(e *ops.Engine, x *tensor.Tensor) *tensor.Tensor
}

// ReLU returns a ReLU activation layer.
func ReLU() *Activation {
	return &Activation{Name: "relu", F: func(e *ops.Engine, x *tensor.Tensor) *tensor.Tensor { return e.ReLU(x) }}
}

// Sigmoid returns a sigmoid activation layer.
func Sigmoid() *Activation {
	return &Activation{Name: "sigmoid", F: func(e *ops.Engine, x *tensor.Tensor) *tensor.Tensor { return e.Sigmoid(x) }}
}

// Tanh returns a tanh activation layer.
func Tanh() *Activation {
	return &Activation{Name: "tanh", F: func(e *ops.Engine, x *tensor.Tensor) *tensor.Tensor { return e.Tanh(x) }}
}

// Forward applies the activation.
func (a *Activation) Forward(e *ops.Engine, x *tensor.Tensor) *tensor.Tensor { return a.F(e, x) }

// Register is a no-op: activations have no parameters.
func (a *Activation) Register(*ops.Engine) {}

// ParamBytes returns 0.
func (a *Activation) ParamBytes() int64 { return 0 }

// BatchLayer is a layer that accounts a leading serving-batch dimension:
// the input stacks `items` independent blocks, and weight-bearing ops
// record their shared-parameter traffic once per item so the trace stays
// uniformly items× one block's pass. ForwardBatch with items 1 must be
// identical to Forward.
type BatchLayer interface {
	Layer
	ForwardBatch(e *ops.Engine, x *tensor.Tensor, items int) *tensor.Tensor
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential returns a sequential container.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward applies each layer in order.
func (s *Sequential) Forward(e *ops.Engine, x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(e, x)
	}
	return x
}

// ForwardBatch applies each layer in order, threading the serving-batch
// item count through layers that account it; batch-transparent layers
// (activations, norms — whose costs scale with tensor size) run as is.
func (s *Sequential) ForwardBatch(e *ops.Engine, x *tensor.Tensor, items int) *tensor.Tensor {
	for _, l := range s.Layers {
		if bl, ok := l.(BatchLayer); ok {
			x = bl.ForwardBatch(e, x, items)
		} else {
			x = l.Forward(e, x)
		}
	}
	return x
}

// Register records all contained parameters.
func (s *Sequential) Register(e *ops.Engine) {
	for _, l := range s.Layers {
		l.Register(e)
	}
}

// ParamBytes sums the contained layers' parameter storage.
func (s *Sequential) ParamBytes() int64 {
	var n int64
	for _, l := range s.Layers {
		n += l.ParamBytes()
	}
	return n
}

// NewMLP builds a multi-layer perceptron with the given layer widths and
// ReLU activations between hidden layers (none after the last).
func NewMLP(g *tensor.RNG, name string, widths ...int) *Sequential {
	if len(widths) < 2 {
		panic("nn: NewMLP needs at least input and output widths")
	}
	var layers []Layer
	for i := 0; i+1 < len(widths); i++ {
		layers = append(layers, NewLinear(g, fmt.Sprintf("%s.fc%d", name, i), widths[i], widths[i+1], true))
		if i+2 < len(widths) {
			layers = append(layers, ReLU())
		}
	}
	return NewSequential(layers...)
}
