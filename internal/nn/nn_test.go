package nn

import (
	"testing"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

func TestLinearForwardShape(t *testing.T) {
	g := tensor.NewRNG(1)
	l := NewLinear(g, "fc", 8, 4, true)
	e := ops.New()
	x := g.Normal(0, 1, 3, 8)
	y := l.Forward(e, x)
	if y.Dim(0) != 3 || y.Dim(1) != 4 {
		t.Fatalf("Linear output shape = %v", y.Shape())
	}
	// Check against manual compute for the first element.
	var want float64
	for k := 0; k < 8; k++ {
		want += float64(x.At(0, k)) * float64(l.W.At(0, k))
	}
	want += float64(l.B.At(0))
	if d := float64(y.At(0, 0)) - want; d > 1e-4 || d < -1e-4 {
		t.Fatalf("Linear value = %v, want %v", y.At(0, 0), want)
	}
}

func TestLinearNoBias(t *testing.T) {
	g := tensor.NewRNG(2)
	l := NewLinear(g, "fc", 4, 2, false)
	e := ops.New()
	y := l.Forward(e, tensor.Ones(1, 4))
	if y.Size() != 2 {
		t.Fatalf("output size = %d", y.Size())
	}
	if l.B != nil {
		t.Fatal("bias should be nil")
	}
}

func TestLinearRecordsMatMul(t *testing.T) {
	g := tensor.NewRNG(3)
	l := NewLinear(g, "fc", 4, 4, true)
	e := ops.New()
	l.Forward(e, tensor.Ones(2, 4))
	found := false
	for _, ev := range e.Trace().Events {
		if ev.Category == trace.MatMul {
			found = true
		}
	}
	if !found {
		t.Fatal("Linear forward must record a MatMul event")
	}
}

func TestConv2dLayer(t *testing.T) {
	g := tensor.NewRNG(4)
	c := NewConv2d(g, "conv", 3, 8, 3, 1, 1)
	e := ops.New()
	x := g.Normal(0, 1, 2, 3, 8, 8)
	y := c.Forward(e, x)
	if y.Dim(0) != 2 || y.Dim(1) != 8 || y.Dim(2) != 8 {
		t.Fatalf("conv output shape = %v", y.Shape())
	}
	if e.Trace().Events[0].Category != trace.Convolution {
		t.Fatal("conv must record a Convolution event")
	}
}

func TestBatchNormAffine(t *testing.T) {
	g := tensor.NewRNG(5)
	bn := NewBatchNorm2d(g, "bn", 2)
	e := ops.New()
	x := tensor.Ones(1, 2, 2, 2)
	y := bn.Forward(e, x)
	want0 := bn.Scale.At(0) + bn.Bias.At(0)
	if d := y.At(0, 0, 0, 0) - want0; d > 1e-5 || d < -1e-5 {
		t.Fatalf("batchnorm value = %v, want %v", y.At(0, 0, 0, 0), want0)
	}
}

func TestMLPAndSequential(t *testing.T) {
	g := tensor.NewRNG(6)
	mlp := NewMLP(g, "mlp", 8, 16, 4)
	e := ops.New()
	y := mlp.Forward(e, g.Normal(0, 1, 5, 8))
	if y.Dim(0) != 5 || y.Dim(1) != 4 {
		t.Fatalf("MLP output = %v", y.Shape())
	}
	// Two linears and one ReLU.
	var relus, mms int
	for _, ev := range e.Trace().Events {
		if ev.Name == "ReLU" {
			relus++
		}
		if ev.Name == "MatMul" {
			mms++
		}
	}
	if relus != 1 || mms != 2 {
		t.Fatalf("MLP ops: relus=%d matmuls=%d", relus, mms)
	}
	if mlp.ParamBytes() <= 0 {
		t.Fatal("ParamBytes must be positive")
	}
}

func TestRegisterParams(t *testing.T) {
	g := tensor.NewRNG(7)
	mlp := NewMLP(g, "mlp", 4, 4)
	e := ops.New()
	mlp.Register(e)
	if got := e.Trace().ParamBytesByKind()["weight"]; got != mlp.ParamBytes() {
		t.Fatalf("registered %d bytes, want %d", got, mlp.ParamBytes())
	}
}

func TestResidualBlockShapePreserving(t *testing.T) {
	g := tensor.NewRNG(8)
	r := NewResidualBlock(g, "res", 4)
	e := ops.New()
	x := g.Normal(0, 1, 1, 4, 6, 6)
	y := r.Forward(e, x)
	if !y.SameShape(x) {
		t.Fatalf("residual block changed shape: %v", y.Shape())
	}
}

func TestCNNEncoder(t *testing.T) {
	g := tensor.NewRNG(9)
	cnn := NewCNN(g, "enc", CNNConfig{InChannels: 1, InSize: 16, Channels: []int{4, 8}, OutDim: 10})
	e := ops.New()
	x := g.Normal(0, 1, 2, 1, 16, 16)
	y := cnn.Forward(e, x)
	if y.Dim(0) != 2 || y.Dim(1) != 10 {
		t.Fatalf("CNN output = %v", y.Shape())
	}
	var convs int
	for _, ev := range e.Trace().Events {
		if ev.Category == trace.Convolution {
			convs++
		}
	}
	if convs != 2 {
		t.Fatalf("CNN conv events = %d, want 2", convs)
	}
}

func TestCNNResidualVariant(t *testing.T) {
	g := tensor.NewRNG(10)
	cnn := NewCNN(g, "enc", CNNConfig{InChannels: 1, InSize: 8, Channels: []int{4}, Residual: true})
	e := ops.New()
	y := cnn.Forward(e, g.Normal(0, 1, 1, 1, 8, 8))
	if y.Dim(1) != 4 {
		t.Fatalf("raw-feature output = %v", y.Shape())
	}
	cnn.Register(e)
	if cnn.ParamBytes() != func() int64 {
		var n int64
		for _, p := range e.Trace().Params() {
			n += p.Bytes
		}
		return n
	}() {
		t.Fatal("ParamBytes and registered bytes disagree")
	}
}

func TestCNNDeterministicAcrossSeeds(t *testing.T) {
	build := func(seed int64) *tensor.Tensor {
		g := tensor.NewRNG(seed)
		cnn := NewCNN(g, "enc", CNNConfig{InChannels: 1, InSize: 8, Channels: []int{4}, OutDim: 3})
		e := ops.New()
		return cnn.Forward(e, tensor.Ones(1, 1, 8, 8))
	}
	a, b := build(42), build(42)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("same seed must give identical forward pass")
		}
	}
}
