package nn

import (
	"fmt"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/tensor"
)

// ConvBlock is conv → batchnorm → ReLU with optional 2×2 max pooling.
type ConvBlock struct {
	Conv *Conv2d
	BN   *BatchNorm2d
	Pool bool
}

// NewConvBlock constructs a standard conv block.
func NewConvBlock(g *tensor.RNG, name string, cin, cout, k, stride, pad int, pool bool) *ConvBlock {
	return &ConvBlock{
		Conv: NewConv2d(g, name+".conv", cin, cout, k, stride, pad),
		BN:   NewBatchNorm2d(g, name+".bn", cout),
		Pool: pool,
	}
}

// Forward applies the block.
func (b *ConvBlock) Forward(e *ops.Engine, x *tensor.Tensor) *tensor.Tensor {
	return b.ForwardBatch(e, x, 1)
}

// ForwardBatch applies the block over `items` stacked batch blocks.
func (b *ConvBlock) ForwardBatch(e *ops.Engine, x *tensor.Tensor, items int) *tensor.Tensor {
	x = b.Conv.ForwardBatch(e, x, items)
	x = b.BN.Forward(e, x)
	x = e.ReLU(x)
	if b.Pool {
		x = e.MaxPool2D(x, 2, 2)
	}
	return x
}

// Register records the block parameters.
func (b *ConvBlock) Register(e *ops.Engine) {
	b.Conv.Register(e)
	b.BN.Register(e)
}

// ParamBytes returns the block's parameter storage.
func (b *ConvBlock) ParamBytes() int64 { return b.Conv.ParamBytes() + b.BN.ParamBytes() }

// ResidualBlock is the basic two-conv residual unit used by the ResNet-style
// perception backbones of NVSA, PrAE and VSAIT.
type ResidualBlock struct {
	C1, C2 *Conv2d
	B1, B2 *BatchNorm2d
}

// NewResidualBlock constructs a same-shape residual block over c channels.
func NewResidualBlock(g *tensor.RNG, name string, c int) *ResidualBlock {
	return &ResidualBlock{
		C1: NewConv2d(g, name+".conv1", c, c, 3, 1, 1),
		C2: NewConv2d(g, name+".conv2", c, c, 3, 1, 1),
		B1: NewBatchNorm2d(g, name+".bn1", c),
		B2: NewBatchNorm2d(g, name+".bn2", c),
	}
}

// Forward applies conv-bn-relu-conv-bn, adds the skip connection, and applies ReLU.
func (r *ResidualBlock) Forward(e *ops.Engine, x *tensor.Tensor) *tensor.Tensor {
	return r.ForwardBatch(e, x, 1)
}

// ForwardBatch applies the block over `items` stacked batch blocks.
func (r *ResidualBlock) ForwardBatch(e *ops.Engine, x *tensor.Tensor, items int) *tensor.Tensor {
	y := r.C1.ForwardBatch(e, x, items)
	y = r.B1.Forward(e, y)
	y = e.ReLU(y)
	y = r.C2.ForwardBatch(e, y, items)
	y = r.B2.Forward(e, y)
	y = e.Add(y, x)
	return e.ReLU(y)
}

// Register records the block parameters.
func (r *ResidualBlock) Register(e *ops.Engine) {
	r.C1.Register(e)
	r.C2.Register(e)
	r.B1.Register(e)
	r.B2.Register(e)
}

// ParamBytes returns the block's parameter storage.
func (r *ResidualBlock) ParamBytes() int64 {
	return r.C1.ParamBytes() + r.C2.ParamBytes() + r.B1.ParamBytes() + r.B2.ParamBytes()
}

// CNNConfig configures a small configurable CNN encoder.
type CNNConfig struct {
	InChannels int   // input channels
	InSize     int   // input height = width
	Channels   []int // output channels per stage (each stage pools 2×)
	Residual   bool  // insert one residual block per stage
	OutDim     int   // final embedding width (via a Linear head); 0 = raw features
}

// CNN is a small CNN encoder: repeated conv stages with pooling, a global
// average pool and an optional linear head. It is the stand-in for the
// perception backbones of the characterized workloads.
type CNN struct {
	cfg    CNNConfig
	blocks []Layer
	head   *Linear
}

// NewCNN builds the encoder.
func NewCNN(g *tensor.RNG, name string, cfg CNNConfig) *CNN {
	if len(cfg.Channels) == 0 {
		panic("nn: NewCNN needs at least one stage")
	}
	c := &CNN{cfg: cfg}
	cin := cfg.InChannels
	for i, cout := range cfg.Channels {
		c.blocks = append(c.blocks, NewConvBlock(g, fmt.Sprintf("%s.stage%d", name, i), cin, cout, 3, 1, 1, true))
		if cfg.Residual {
			c.blocks = append(c.blocks, NewResidualBlock(g, fmt.Sprintf("%s.res%d", name, i), cout))
		}
		cin = cout
	}
	if cfg.OutDim > 0 {
		c.head = NewLinear(g, name+".head", cin, cfg.OutDim, true)
	}
	return c
}

// Forward encodes an N×C×H×W batch into N×OutDim embeddings (or N×C
// pooled features when OutDim is 0).
func (c *CNN) Forward(e *ops.Engine, x *tensor.Tensor) *tensor.Tensor {
	return c.ForwardBatch(e, x, 1)
}

// ForwardBatch encodes `items` stacked N×C×H×W blocks in one pass,
// accounting shared weight traffic per item.
func (c *CNN) ForwardBatch(e *ops.Engine, x *tensor.Tensor, items int) *tensor.Tensor {
	for _, b := range c.blocks {
		if bl, ok := b.(BatchLayer); ok {
			x = bl.ForwardBatch(e, x, items)
		} else {
			x = b.Forward(e, x)
		}
	}
	x = e.GlobalAvgPool2D(x)
	if c.head != nil {
		x = c.head.ForwardBatch(e, x, items)
	}
	return x
}

// Register records all parameters.
func (c *CNN) Register(e *ops.Engine) {
	for _, b := range c.blocks {
		b.Register(e)
	}
	if c.head != nil {
		c.head.Register(e)
	}
}

// ParamBytes returns total parameter storage.
func (c *CNN) ParamBytes() int64 {
	var n int64
	for _, b := range c.blocks {
		n += b.ParamBytes()
	}
	if c.head != nil {
		n += c.head.ParamBytes()
	}
	return n
}
