// Package raven generates Raven's Progressive Matrices tasks in the style
// of the RAVEN and I-RAVEN datasets used to evaluate NVSA and PrAE.
//
// A task is an m×m matrix of panels with the last panel missing; each row
// follows one generative rule per attribute (constant, progression,
// arithmetic, distribute-three) over the attributes number, position, type,
// size and color. The solver must pick the missing panel from a candidate
// set. Candidates are generated I-RAVEN style, perturbing one attribute at
// a time so that shortcut solutions on the answer set alone fail.
package raven

import (
	"fmt"

	"github.com/neurosym/nsbench/internal/tensor"
)

// Attribute enumerates the panel attributes governed by rules.
type Attribute int

// The RAVEN attributes.
const (
	Number Attribute = iota
	Position
	Type
	Size
	Color
	NumAttributes
)

// Attributes lists all attributes in canonical order.
func Attributes() []Attribute { return []Attribute{Number, Position, Type, Size, Color} }

// String returns the attribute name.
func (a Attribute) String() string {
	switch a {
	case Number:
		return "number"
	case Position:
		return "position"
	case Type:
		return "type"
	case Size:
		return "size"
	case Color:
		return "color"
	default:
		return fmt.Sprintf("Attribute(%d)", int(a))
	}
}

// Value ranges per attribute (inclusive counts of discrete levels).
const (
	TypeLevels  = 5  // triangle, square, pentagon, hexagon, circle
	SizeLevels  = 6  // relative scale levels
	ColorLevels = 10 // intensity levels
	GridSlots   = 9  // 3×3 object grid inside a panel
)

// Levels returns the number of discrete values an attribute can take.
func Levels(a Attribute) int {
	switch a {
	case Number:
		return GridSlots // 1..9 objects
	case Position:
		return GridSlots // slot index space (occupancy handled separately)
	case Type:
		return TypeLevels
	case Size:
		return SizeLevels
	case Color:
		return ColorLevels
	default:
		panic("raven: unknown attribute")
	}
}

// RuleType enumerates the RAVEN rule grammar.
type RuleType int

// The rule types.
const (
	Constant RuleType = iota
	Progression
	Arithmetic
	DistributeThree
	NumRuleTypes
)

// String returns the rule name.
func (r RuleType) String() string {
	switch r {
	case Constant:
		return "constant"
	case Progression:
		return "progression"
	case Arithmetic:
		return "arithmetic"
	case DistributeThree:
		return "distribute_three"
	default:
		return fmt.Sprintf("RuleType(%d)", int(r))
	}
}

// Rule binds a rule type (with an optional delta) to an attribute.
type Rule struct {
	Attr  Attribute
	Type  RuleType
	Delta int // progression step (±1, ±2) or arithmetic sign (±1)
	// triple holds the distribute-three value set.
	triple [3]int
}

// String renders the rule.
func (r Rule) String() string {
	if r.Type == Progression || r.Type == Arithmetic {
		return fmt.Sprintf("%s(%s,%+d)", r.Type, r.Attr, r.Delta)
	}
	return fmt.Sprintf("%s(%s)", r.Type, r.Attr)
}

// Panel is one matrix cell: a set of occupied grid slots holding objects
// with shared type/size/color attributes (the RAVEN "distribute"
// configurations with uniform object attributes).
type Panel struct {
	Slots [GridSlots]bool // occupancy
	Type  int             // 0..TypeLevels-1
	Size  int             // 0..SizeLevels-1
	Color int             // 0..ColorLevels-1
}

// NumberOf returns the object count.
func (p Panel) NumberOf() int {
	n := 0
	for _, s := range p.Slots {
		if s {
			n++
		}
	}
	return n
}

// AttrValue returns the panel's value for a rule-governed attribute.
// Position is encoded as the occupancy bitmask.
func (p Panel) AttrValue(a Attribute) int {
	switch a {
	case Number:
		return p.NumberOf()
	case Position:
		mask := 0
		for i, s := range p.Slots {
			if s {
				mask |= 1 << i
			}
		}
		return mask
	case Type:
		return p.Type
	case Size:
		return p.Size
	case Color:
		return p.Color
	default:
		panic("raven: unknown attribute")
	}
}

// Equal reports whether two panels are identical.
func (p Panel) Equal(q Panel) bool { return p == q }

// Task is one generated RPM instance.
type Task struct {
	M         int     // matrix dimension (2 or 3)
	Context   []Panel // the m*m-1 visible panels, row-major
	Choices   []Panel // candidate answers
	AnswerIdx int     // index of the correct candidate
	Rules     []Rule  // one rule per attribute
}

// Answer returns the correct panel.
func (t Task) Answer() Panel { return t.Choices[t.AnswerIdx] }

// Config controls task generation.
type Config struct {
	M          int // matrix dimension; default 3
	NumChoices int // candidate count; default 8
}

func (c *Config) defaults() {
	if c.M == 0 {
		c.M = 3
	}
	if c.NumChoices == 0 {
		c.NumChoices = 8
	}
}

// Generate produces one task with independently sampled rules per attribute.
func Generate(cfg Config, g *tensor.RNG) Task {
	cfg.defaults()
	m := cfg.M
	rules := []Rule{
		sampleRule(Number, m, g),
		sampleRule(Type, m, g),
		sampleRule(Size, m, g),
		sampleRule(Color, m, g),
	}
	// Build the full m×m matrix row by row.
	grid := make([][]Panel, m)
	for r := 0; r < m; r++ {
		grid[r] = buildRow(rules, r, m, g)
	}
	var ctx []Panel
	for r := 0; r < m; r++ {
		for c := 0; c < m; c++ {
			if r == m-1 && c == m-1 {
				continue
			}
			ctx = append(ctx, grid[r][c])
		}
	}
	answer := grid[m-1][m-1]
	choices, idx := makeChoices(answer, cfg.NumChoices, g)
	return Task{M: m, Context: ctx, Choices: choices, AnswerIdx: idx, Rules: rules}
}

// sampleRule draws a rule applicable to the attribute within value range.
func sampleRule(a Attribute, m int, g *tensor.RNG) Rule {
	for {
		rt := RuleType(g.Intn(int(NumRuleTypes)))
		switch rt {
		case Constant:
			return Rule{Attr: a, Type: Constant}
		case Progression:
			delta := []int{-2, -1, 1, 2}[g.Intn(4)]
			// Ensure v0 + delta*(m-1) stays in range for some start value.
			if span := delta * (m - 1); span < Levels(a) && -span < Levels(a) {
				return Rule{Attr: a, Type: Progression, Delta: delta}
			}
		case Arithmetic:
			if m == 3 && a == Number { // arithmetic is defined on numeric attributes over 3 columns
				sign := []int{-1, 1}[g.Intn(2)]
				return Rule{Attr: a, Type: Arithmetic, Delta: sign}
			}
		case DistributeThree:
			lo := 0
			if a == Number {
				lo = 1 // object counts are 1-based
			}
			if m == 3 && Levels(a)-lo >= 3 {
				r := Rule{Attr: a, Type: DistributeThree}
				perm := g.Perm(Levels(a) - lo)
				for i := 0; i < 3; i++ {
					r.triple[i] = perm[i] + lo
				}
				return r
			}
		}
	}
}

// valueAt computes a rule's attribute value for (row, col) given the row's
// starting values. start has the row's first-column value; second the
// second-column value (needed by arithmetic).
func (r Rule) valueAt(row, col, m int, start, second int) int {
	switch r.Type {
	case Constant:
		return start
	case Progression:
		return start + r.Delta*col
	case Arithmetic:
		switch col {
		case 0:
			return start
		case 1:
			return second
		default:
			if r.Delta > 0 {
				return start + second
			}
			return start - second
		}
	case DistributeThree:
		return r.triple[(row+col)%3]
	default:
		panic("raven: unknown rule type")
	}
}

// buildRow samples row start values consistent with each rule and emits the
// row's panels.
func buildRow(rules []Rule, row, m int, g *tensor.RNG) []Panel {
	type attrPlan struct {
		rule          Rule
		start, second int
	}
	plans := make([]attrPlan, len(rules))
	for i, r := range rules {
		p := attrPlan{rule: r}
		lv := Levels(r.Attr)
		lo := 0
		if r.Attr == Number { // number is 1-based
			lo = 1
		}
	sample:
		for {
			p.start = lo + g.Intn(lv-lo)
			p.second = lo + g.Intn(lv-lo)
			for c := 0; c < m; c++ {
				v := r.valueAt(row, c, m, p.start, p.second)
				if v < lo || v >= lv {
					continue sample
				}
				if r.Attr == Number && (v < 1 || v > GridSlots) {
					continue sample
				}
			}
			break
		}
		plans[i] = p
	}
	panels := make([]Panel, m)
	var constSlots *[GridSlots]bool
	for c := 0; c < m; c++ {
		var pn Panel
		for _, p := range plans {
			v := p.rule.valueAt(row, c, m, p.start, p.second)
			switch p.rule.Attr {
			case Number:
				// Under a constant number rule the object layout itself is
				// held fixed across the row (the RAVEN position-constancy
				// convention); otherwise each panel re-samples placement.
				if p.rule.Type == Constant && constSlots != nil {
					pn.Slots = *constSlots
				} else {
					occupy(&pn, v, g)
					if p.rule.Type == Constant {
						s := pn.Slots
						constSlots = &s
					}
				}
			case Type:
				pn.Type = v
			case Size:
				pn.Size = v
			case Color:
				pn.Color = v
			}
		}
		panels[c] = pn
	}
	return panels
}

// occupy fills n grid slots deterministically-randomly.
func occupy(p *Panel, n int, g *tensor.RNG) {
	perm := g.Perm(GridSlots)
	for i := range p.Slots {
		p.Slots[i] = false
	}
	for i := 0; i < n && i < GridSlots; i++ {
		p.Slots[perm[i]] = true
	}
}

// makeChoices builds an I-RAVEN-style candidate set: the answer plus
// distractors that each perturb one attribute of the answer.
func makeChoices(answer Panel, n int, g *tensor.RNG) ([]Panel, int) {
	choices := make([]Panel, 0, n)
	idx := g.Intn(n)
	for len(choices) < n {
		if len(choices) == idx {
			choices = append(choices, answer)
			continue
		}
		d := answer
		switch Attribute(g.Intn(4)) {
		case Number:
			delta := 1 + g.Intn(2)
			target := d.NumberOf() + delta
			if target > GridSlots {
				target = d.NumberOf() - delta
			}
			if target < 1 {
				target = 1
			}
			occupy(&d, target, g)
		case Type:
			d.Type = (d.Type + 1 + g.Intn(TypeLevels-1)) % TypeLevels
		case Size:
			d.Size = (d.Size + 1 + g.Intn(SizeLevels-1)) % SizeLevels
		default:
			d.Color = (d.Color + 1 + g.Intn(ColorLevels-1)) % ColorLevels
		}
		if d.Equal(answer) {
			continue
		}
		dup := false
		for _, c := range choices {
			if c.Equal(d) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		choices = append(choices, d)
	}
	return choices, idx
}

// Validate checks that a task's context panels satisfy its rules row-wise.
// It returns an error naming the first violated rule, or nil.
func (t Task) Validate() error {
	full := make([]Panel, 0, t.M*t.M)
	full = append(full, t.Context...)
	// Insert the answer at the last position.
	full = append(full, t.Answer())
	for _, r := range t.Rules {
		for row := 0; row < t.M; row++ {
			vals := make([]int, t.M)
			for c := 0; c < t.M; c++ {
				vals[c] = full[row*t.M+c].AttrValue(r.Attr)
			}
			if err := checkRule(r, row, vals); err != nil {
				return fmt.Errorf("raven: row %d violates %s: %w", row, r, err)
			}
		}
	}
	return nil
}

func checkRule(r Rule, row int, vals []int) error {
	switch r.Type {
	case Constant:
		for _, v := range vals[1:] {
			if v != vals[0] {
				return fmt.Errorf("values %v not constant", vals)
			}
		}
	case Progression:
		for c := 1; c < len(vals); c++ {
			if vals[c]-vals[c-1] != r.Delta {
				return fmt.Errorf("values %v not progression %+d", vals, r.Delta)
			}
		}
	case Arithmetic:
		if len(vals) == 3 {
			want := vals[0] + r.Delta*vals[1]
			if vals[2] != want {
				return fmt.Errorf("values %v violate arithmetic", vals)
			}
		}
	case DistributeThree:
		seen := map[int]bool{}
		for _, v := range vals {
			seen[v] = true
		}
		if len(seen) != len(vals) {
			return fmt.Errorf("values %v not distinct in distribute-three", vals)
		}
		for _, v := range vals {
			if v != r.triple[0] && v != r.triple[1] && v != r.triple[2] {
				return fmt.Errorf("value %d outside triple %v", v, r.triple)
			}
		}
	}
	return nil
}
