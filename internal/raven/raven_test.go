package raven

import (
	"testing"

	"github.com/neurosym/nsbench/internal/tensor"
)

func TestGenerateValidates(t *testing.T) {
	g := tensor.NewRNG(1)
	for i := 0; i < 50; i++ {
		task := Generate(Config{M: 3}, g)
		if err := task.Validate(); err != nil {
			t.Fatalf("task %d invalid: %v", i, err)
		}
		if len(task.Context) != 8 {
			t.Fatalf("context size = %d", len(task.Context))
		}
		if len(task.Choices) != 8 {
			t.Fatalf("choices = %d", len(task.Choices))
		}
		if task.AnswerIdx < 0 || task.AnswerIdx >= len(task.Choices) {
			t.Fatalf("answer index = %d", task.AnswerIdx)
		}
	}
}

func TestGenerate2x2(t *testing.T) {
	g := tensor.NewRNG(2)
	for i := 0; i < 30; i++ {
		task := Generate(Config{M: 2, NumChoices: 4}, g)
		if len(task.Context) != 3 || len(task.Choices) != 4 {
			t.Fatalf("2x2 shape wrong: %d context, %d choices", len(task.Context), len(task.Choices))
		}
		if err := task.Validate(); err != nil {
			t.Fatalf("2x2 task invalid: %v", err)
		}
	}
}

func TestDistractorsDiffer(t *testing.T) {
	g := tensor.NewRNG(3)
	task := Generate(Config{}, g)
	ans := task.Answer()
	for i, c := range task.Choices {
		if i == task.AnswerIdx {
			continue
		}
		if c.Equal(ans) {
			t.Fatalf("distractor %d equals the answer", i)
		}
	}
	// All candidates distinct.
	for i := range task.Choices {
		for j := i + 1; j < len(task.Choices); j++ {
			if task.Choices[i].Equal(task.Choices[j]) {
				t.Fatalf("duplicate candidates %d and %d", i, j)
			}
		}
	}
}

func TestAttrValueAndNumber(t *testing.T) {
	var p Panel
	p.Slots[0], p.Slots[4], p.Slots[8] = true, true, true
	p.Type, p.Size, p.Color = 2, 3, 7
	if p.NumberOf() != 3 || p.AttrValue(Number) != 3 {
		t.Fatalf("NumberOf = %d", p.NumberOf())
	}
	if p.AttrValue(Position) != (1 | 1<<4 | 1<<8) {
		t.Fatalf("position mask = %d", p.AttrValue(Position))
	}
	if p.AttrValue(Type) != 2 || p.AttrValue(Size) != 3 || p.AttrValue(Color) != 7 {
		t.Fatal("attribute values wrong")
	}
}

func TestRuleStringsAndLevels(t *testing.T) {
	r := Rule{Attr: Size, Type: Progression, Delta: -1}
	if r.String() != "progression(size,-1)" {
		t.Fatalf("rule string = %s", r.String())
	}
	if Levels(Color) != 10 || Levels(Type) != 5 || Levels(Number) != 9 {
		t.Fatal("levels wrong")
	}
	if len(Attributes()) != 5 {
		t.Fatal("attribute list wrong")
	}
	if Number.String() != "number" || Color.String() != "color" {
		t.Fatal("attribute names wrong")
	}
}

func TestRenderProducesInk(t *testing.T) {
	g := tensor.NewRNG(4)
	task := Generate(Config{}, g)
	img := task.Context[0].Render(32)
	if img.Dim(2) != 32 || img.Dim(3) != 32 {
		t.Fatalf("render shape = %v", img.Shape())
	}
	if img.Sum() <= 0 {
		t.Fatal("rendered panel is blank")
	}
	if img.Max() > 1 || img.Min() < 0 {
		t.Fatalf("render range [%v, %v]", img.Min(), img.Max())
	}
}

func TestRenderDistinguishesPanels(t *testing.T) {
	a := Panel{Type: 0, Size: 5, Color: 9}
	a.Slots[4] = true
	b := Panel{Type: 4, Size: 1, Color: 2}
	b.Slots[4] = true
	ia, ib := a.Render(32), b.Render(32)
	diff := 0
	for i := range ia.Data() {
		if ia.Data()[i] != ib.Data()[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different panels rendered identically")
	}
}

func TestPerceivePMFNoiseless(t *testing.T) {
	var p Panel
	p.Slots[0], p.Slots[1] = true, true
	p.Type, p.Size, p.Color = 1, 2, 3
	pmf := PerceivePMF(p, 0, nil)
	if pmf[Number].At(1) != 1 { // two objects → bin 1
		t.Fatalf("number PMF = %v", pmf[Number].Data())
	}
	if pmf[Type].At(1) != 1 || pmf[Size].At(2) != 1 || pmf[Color].At(3) != 1 {
		t.Fatal("one-hot PMFs wrong")
	}
}

func TestPerceivePMFNoisySumsToOne(t *testing.T) {
	g := tensor.NewRNG(5)
	var p Panel
	p.Slots[3] = true
	p.Color = 9
	for i := 0; i < 20; i++ {
		pmf := PerceivePMF(p, 0.2, g)
		for a, m := range pmf {
			s := m.Sum()
			if s < 0.999 || s > 1.001 {
				t.Fatalf("%v PMF sums to %v", a, s)
			}
			if am := tensor.ArgMax(m); a == Color && am != 9 {
				// With 20% noise the mode must remain the truth.
				t.Fatalf("color mode = %d", am)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{}, tensor.NewRNG(42))
	b := Generate(Config{}, tensor.NewRNG(42))
	if a.AnswerIdx != b.AnswerIdx || len(a.Context) != len(b.Context) {
		t.Fatal("generation not deterministic")
	}
	for i := range a.Context {
		if !a.Context[i].Equal(b.Context[i]) {
			t.Fatal("panels differ across identical seeds")
		}
	}
}

func TestRuleDiversity(t *testing.T) {
	g := tensor.NewRNG(6)
	seen := map[RuleType]bool{}
	for i := 0; i < 100; i++ {
		task := Generate(Config{}, g)
		for _, r := range task.Rules {
			seen[r.Type] = true
		}
	}
	for rt := Constant; rt < NumRuleTypes; rt++ {
		if !seen[rt] {
			t.Fatalf("rule type %v never generated", rt)
		}
	}
}
