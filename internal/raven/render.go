package raven

import (
	"math"

	"github.com/neurosym/nsbench/internal/tensor"
)

// Render rasterizes a panel to a 1×size×size grayscale image tensor in
// [0,1]. Objects are drawn into their 3×3 grid cells as filled glyphs whose
// radius encodes Size, intensity encodes Color, and silhouette encodes Type.
// The renderer exists to give the neural perception frontends a real
// pixel-domain input with panel-dependent content.
func (p Panel) Render(size int) *tensor.Tensor {
	img := tensor.New(1, 1, size, size)
	cell := size / 3
	if cell < 2 {
		cell = 2
	}
	intensity := 0.3 + 0.7*float32(p.Color+1)/float32(ColorLevels)
	radius := float64(cell) / 2 * (0.4 + 0.6*float64(p.Size+1)/float64(SizeLevels))
	for slot := 0; slot < GridSlots; slot++ {
		if !p.Slots[slot] {
			continue
		}
		cy := float64((slot/3)*cell + cell/2)
		cx := float64((slot%3)*cell + cell/2)
		drawGlyph(img, p.Type, cx, cy, radius, intensity, size)
	}
	return img
}

// drawGlyph fills pixels of the glyph for a shape type centered at (cx, cy).
func drawGlyph(img *tensor.Tensor, typ int, cx, cy, r float64, v float32, size int) {
	d := img.Data()
	lo := func(c float64) int {
		i := int(math.Floor(c - r))
		if i < 0 {
			return 0
		}
		return i
	}
	hi := func(c float64) int {
		i := int(math.Ceil(c + r))
		if i >= size {
			return size - 1
		}
		return i
	}
	for y := lo(cy); y <= hi(cy); y++ {
		for x := lo(cx); x <= hi(cx); x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			if insideGlyph(typ, dx, dy, r) {
				d[y*size+x] = v
			}
		}
	}
}

// insideGlyph tests membership in the shape silhouette. Each type gets a
// distinct silhouette so shapes are separable by a perception network.
func insideGlyph(typ int, dx, dy, r float64) bool {
	switch typ % TypeLevels {
	case 0: // triangle (upward)
		return dy <= r/2 && dy >= -r && math.Abs(dx) <= (dy+r)/1.5
	case 1: // square
		return math.Abs(dx) <= r*0.8 && math.Abs(dy) <= r*0.8
	case 2: // pentagon approximated by a clipped disc
		return dx*dx+dy*dy <= r*r && dy <= r*0.6
	case 3: // hexagon: axis-aligned hex metric
		return math.Abs(dx) <= r && math.Abs(dy) <= r*0.85 && math.Abs(dx)+0.5*math.Abs(dy) <= r
	default: // circle
		return dx*dx+dy*dy <= r*r
	}
}

// PositionPatterns is the size of the position-occupancy pattern space:
// every subset of the 3×3 object grid.
const PositionPatterns = 1 << GridSlots

// PerceivePositionPMF returns a probability mass function over all 512
// occupancy patterns of the object grid, centered on the panel's true
// pattern with the given noise floor. PrAE's exhaustive scene inference
// consumes this full position distribution.
func PerceivePositionPMF(p Panel, noise float64) *tensor.Tensor {
	pmf := tensor.New(PositionPatterns)
	floor := float32(noise / float64(PositionPatterns))
	for i := range pmf.Data() {
		pmf.Data()[i] = floor
	}
	pmf.Data()[p.AttrValue(Position)] += float32(1 - noise)
	return pmf
}

// PerceivePMF simulates the neural perception output for a panel: for each
// attribute it returns a probability mass function over the attribute's
// levels, centered on the true value with the given label-noise floor.
// noise = 0 yields one-hot PMFs; larger values spread mass uniformly,
// emulating a perception network's calibrated uncertainty.
func PerceivePMF(p Panel, noise float64, g *tensor.RNG) map[Attribute]*tensor.Tensor {
	out := make(map[Attribute]*tensor.Tensor, 4)
	for _, a := range []Attribute{Number, Type, Size, Color} {
		lv := Levels(a)
		pmf := tensor.New(lv)
		truth := p.AttrValue(a)
		if a == Number {
			truth-- // 1-based count to 0-based bin
			if truth < 0 {
				truth = 0
			}
		}
		for i := 0; i < lv; i++ {
			pmf.Data()[i] = float32(noise / float64(lv))
		}
		pmf.Data()[truth] += float32(1 - noise)
		// Perceptual jitter: occasionally bleed mass to a neighbour level.
		if noise > 0 && g != nil && g.Float64() < noise {
			j := truth + 1
			if j >= lv {
				j = truth - 1
			}
			if j >= 0 {
				leak := pmf.Data()[truth] * 0.3
				pmf.Data()[truth] -= leak
				pmf.Data()[j] += leak
			}
		}
		out[a] = pmf
	}
	return out
}
