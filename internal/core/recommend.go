package core

import (
	"fmt"
	"io"
	"time"

	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/noc"
	"github.com/neurosym/nsbench/internal/quant"
	"github.com/neurosym/nsbench/internal/raven"
	"github.com/neurosym/nsbench/internal/schedule"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

// Recommendations quantifies the paper's cross-layer optimization
// recommendations as executable ablations over one recorded NVSA trace:
//
//	Rec 3 (algorithm): INT8 quantization of the codebook cleanup.
//	Rec 5 (system):    parallel scheduling of the operator graph.
//	Rec 2/6 (arch):    a custom neuro-symbolic accelerator model.
//	Rec 7 (alg+arch):  sparsity-aware execution of probability tensors.
type Recommendations struct {
	// Rec 5: scheduling sweep over the dependency graph.
	Scheduling []schedule.Result
	// Rec 2/6: projected end-to-end latency, RTX 2080 Ti vs NS-Accel.
	GPUTotal    time.Duration
	AccelTotal  time.Duration
	AccelSpeedX float64
	// Rec 3: quantized codebook cleanup.
	Quant quant.Savings
	// Rec 7: sparsity-aware joint expansion at the measured PMF sparsity.
	Sparse quant.Savings
	// Rec 6 (NoC): interconnect communication cost of the operator graph
	// under phase-partitioned placement at increasing link bandwidths.
	NoC []noc.Analysis
}

// RecommendationAblations runs the ablation suite against a fresh NVSA
// trace on the given schedule worker counts.
func RecommendationAblations(units []int, opts Options) (*Recommendations, error) {
	w, err := BuildWorkload("NVSA")
	if err != nil {
		return nil, err
	}
	e, release := opts.engine()
	defer release()
	defer CloseWorkload(w)
	if err := w.Run(e); err != nil {
		return nil, err
	}
	tr := e.Trace()

	rec := &Recommendations{}
	// Rec 5: schedule the graph on the GPU cost model so the makespans are
	// device times, not host times.
	cost := func(ev *trace.Event) time.Duration { return hwsim.RTX2080Ti.EventTime(ev) }
	rec.Scheduling = schedule.Sweep(tr, units, schedule.WithCost(cost))

	// Rec 2/6: device comparison at equal raw throughput.
	rec.GPUTotal = hwsim.RTX2080Ti.ProjectTrace(tr).Total
	rec.AccelTotal = hwsim.NSAccel.ProjectTrace(tr).Total
	if rec.AccelTotal > 0 {
		rec.AccelSpeedX = float64(rec.GPUTotal) / float64(rec.AccelTotal)
	}

	// Rec 3: INT8 codebook cleanup (the dominant symbolic kernel):
	// 2700-combination joint codebook at the default dimensionality.
	rec.Quant = quant.QuantSavings(2700, 4096)

	// Rec 7: sparsity-aware joint expansion at realistic PMF sparsity.
	a := quant.ToSparse(noisyPMF(raven.Levels(raven.Number), 0.01), 0.005)
	b := quant.ToSparse(noisyPMF(raven.Levels(raven.Color), 0.01), 0.005)
	rec.Sparse = quant.JointSavings(a, b)

	// Rec 6 (NoC): phase-partitioned heterogeneous floorplan on a 4×4 mesh
	// at three link bandwidths.
	for _, bw := range []float64{64, 256, 1024} {
		m := noc.Mesh{K: 4, LinkBWGBs: bw, HopNs: 5}
		rec.NoC = append(rec.NoC, noc.Analyze(tr, m, noc.PhasePartition(m)))
	}
	return rec, nil
}

// noisyPMF builds a one-hot PMF with a uniform noise floor.
func noisyPMF(levels int, noise float32) *tensor.Tensor {
	p := tensor.New(levels)
	for i := range p.Data() {
		p.Data()[i] = noise / float32(levels)
	}
	p.Data()[0] += 1 - noise
	return p
}

// RenderRecommendations prints the ablation results.
func RenderRecommendations(w io.Writer, r *Recommendations) {
	fmt.Fprintln(w, "Optimization recommendations — quantified ablations (NVSA trace)")
	fmt.Fprintln(w, "\nRec 5 — adaptive parallel scheduling (RTX 2080 Ti cost model):")
	fmt.Fprintf(w, "%8s %14s %10s %12s %12s\n", "units", "makespan", "speedup", "efficiency", "CP-bound%")
	for _, s := range r.Scheduling {
		fmt.Fprintf(w, "%8d %14v %9.2fx %11.1f%% %11.1f%%\n",
			s.Units, s.Makespan, s.Speedup, 100*s.Efficiency, s.BoundTightPct)
	}
	fmt.Fprintln(w, "\nRec 2/6 — custom neuro-symbolic architecture (equal raw FLOPs & bandwidth):")
	fmt.Fprintf(w, "%-28s %14v\n", "RTX 2080 Ti", r.GPUTotal)
	fmt.Fprintf(w, "%-28s %14v  (%.2fx speedup)\n", hwsim.NSAccel.Name, r.AccelTotal, r.AccelSpeedX)
	fmt.Fprintln(w, "\nRec 3 — INT8 quantization of the joint-codebook cleanup:")
	fmt.Fprintf(w, "  traffic %.2fx smaller (%s → %s per query set)\n",
		r.Quant.BytesReductionX(), fmtBytes(r.Quant.DenseBytes), fmtBytes(r.Quant.OptBytes))
	fmt.Fprintln(w, "\nRec 7 — sparsity-aware probability expansion (measured PMF sparsity):")
	fmt.Fprintf(w, "  %.0fx fewer multiply-adds, %.1fx less traffic per joint\n",
		r.Sparse.OpsReductionX(), r.Sparse.BytesReductionX())
	fmt.Fprintln(w, "\nRec 6 (NoC) — phase-partitioned 4×4 mesh, operator-graph traffic:")
	for _, a := range r.NoC {
		fmt.Fprintf(w, "  %s\n", a)
	}
}
