package core

import (
	"encoding/json"
	"io"

	"github.com/neurosym/nsbench/internal/trace"
)

// reportJSON is the machine-readable summary form of a Report (the raw
// trace is exported separately via trace.WriteJSON).
type reportJSON struct {
	Name              string                        `json:"name"`
	Category          string                        `json:"category"`
	TotalNs           int64                         `json:"total_ns"`
	NeuralNs          int64                         `json:"neural_ns"`
	SymbolicNs        int64                         `json:"symbolic_ns"`
	SymbolicShare     float64                       `json:"symbolic_share"`
	SymbolicFLOPShare float64                       `json:"symbolic_flop_share"`
	MovementShare     float64                       `json:"movement_share"`
	MovementH2DPct    float64                       `json:"movement_h2d_pct"`
	CategoryShare     map[string]map[string]float64 `json:"category_share"`
	Memory            MemoryReport                  `json:"memory"`
	Roofline          []rooflineJSON                `json:"roofline"`
	Dataflow          dataflowJSON                  `json:"dataflow"`
	Stages            []stageJSON                   `json:"stages,omitempty"`
	Projections       []projJSON                    `json:"projections,omitempty"`
}

type rooflineJSON struct {
	Name       string  `json:"name"`
	AI         float64 `json:"arithmetic_intensity"`
	PerfGFLOPs float64 `json:"perf_gflops"`
	Bound      string  `json:"bound"`
	CeilingPct float64 `json:"ceiling_pct"`
}

type dataflowJSON struct {
	Events             int                `json:"events"`
	Edges              int                `json:"edges"`
	Depth              int                `json:"depth"`
	MaxWidth           int                `json:"max_width"`
	SequentialFraction float64            `json:"sequential_fraction"`
	CriticalPathNs     int64              `json:"critical_path_ns"`
	CriticalPathPhase  map[string]float64 `json:"critical_path_phase"`
	NeuralToSymbolic   int                `json:"neural_to_symbolic_edges"`
	SymbolicToNeural   int                `json:"symbolic_to_neural_edges"`
}

type stageJSON struct {
	Stage    string  `json:"stage"`
	DurNs    int64   `json:"dur_ns"`
	Events   int     `json:"events"`
	Sparsity float64 `json:"sparsity"`
}

type projJSON struct {
	Device        string  `json:"device"`
	TotalNs       int64   `json:"total_ns"`
	SymbolicShare float64 `json:"symbolic_share"`
	EnergyJ       float64 `json:"energy_j"`
}

// MarshalJSON renders the summary form — the same schema WriteJSON
// streams, without the raw trace. Map keys are sorted by encoding/json,
// so a given report always marshals to the same bytes; this is what makes
// served characterization reports cacheable byte-for-byte.
func (r *Report) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.summary())
}

// WriteJSON dumps the report summary as indented JSON (without the raw
// trace).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.summary())
}

// summary converts the report to its machine-readable form.
func (r *Report) summary() reportJSON {
	out := reportJSON{
		Name:              r.Name,
		Category:          r.Category,
		TotalNs:           r.Total.Nanoseconds(),
		NeuralNs:          r.NeuralTime.Nanoseconds(),
		SymbolicNs:        r.SymbolicTime.Nanoseconds(),
		SymbolicShare:     r.SymbolicShare,
		SymbolicFLOPShare: r.SymbolicFLOPShare,
		MovementShare:     r.MovementShare,
		MovementH2DPct:    r.MovementH2DPct,
		CategoryShare:     map[string]map[string]float64{},
		Memory:            r.Memory,
	}
	for p, m := range r.CategoryShare {
		cs := map[string]float64{}
		for c, v := range m {
			cs[c.String()] = v
		}
		out.CategoryShare[p.String()] = cs
	}
	for _, p := range r.Roofline {
		out.Roofline = append(out.Roofline, rooflineJSON{
			Name: p.Name, AI: p.AI, PerfGFLOPs: p.PerfGFLOPs,
			Bound: p.Bound.String(), CeilingPct: p.CeilingPct,
		})
	}
	cpPhase := map[string]float64{}
	for p, v := range r.Dataflow.CriticalPathPhase {
		cpPhase[p.String()] = v
	}
	out.Dataflow = dataflowJSON{
		Events:             r.Dataflow.Events,
		Edges:              r.Dataflow.Edges,
		Depth:              r.Dataflow.Depth,
		MaxWidth:           r.Dataflow.MaxWidth,
		SequentialFraction: r.Dataflow.SequentialFraction,
		CriticalPathNs:     r.Dataflow.CriticalPathDur.Nanoseconds(),
		CriticalPathPhase:  cpPhase,
		NeuralToSymbolic:   r.Dataflow.NeuralToSymbolic,
		SymbolicToNeural:   r.Dataflow.SymbolicToNeural,
	}
	for _, s := range r.Stages {
		out.Stages = append(out.Stages, stageJSON{
			Stage: s.Stage, DurNs: s.Dur.Nanoseconds(), Events: s.Events, Sparsity: s.Sparsity,
		})
	}
	for _, p := range r.Projections {
		out.Projections = append(out.Projections, projJSON{
			Device:        p.Device.Name,
			TotalNs:       p.Total.Nanoseconds(),
			SymbolicShare: p.PhaseShare(trace.Symbolic),
			EnergyJ:       p.EnergyJ,
		})
	}
	return out
}
