package core

import (
	"testing"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/trace"
	"github.com/neurosym/nsbench/internal/workloads/nvsa"
)

// characterizeNVSA runs one NVSA characterization with the given engine
// config and returns its trace.
func characterizeNVSA(t *testing.T, eng ops.Config) *trace.Trace {
	t.Helper()
	w := nvsa.New(nvsa.Config{Engine: eng})
	r, err := Characterize(w, Options{Engine: eng})
	if err != nil {
		t.Fatalf("characterize: %v", err)
	}
	return r.Trace
}

// sameTraceModuloTiming checks that two traces describe the same
// computation: same events in the same order with identical analytic
// counters. Wall time (Dur) and tensor IDs (drawn from a process-global
// counter) legitimately differ between runs and are excluded.
func sameTraceModuloTiming(t *testing.T, label string, a, b *trace.Trace) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: event counts differ: %d vs %d", label, a.Len(), b.Len())
	}
	for i := range a.Events {
		x, y := &a.Events[i], &b.Events[i]
		if x.Name != y.Name || x.Kernel != y.Kernel || x.Stage != y.Stage ||
			x.Category != y.Category || x.Phase != y.Phase {
			t.Fatalf("%s: event %d identity differs:\n  %+v\n  %+v", label, i, x, y)
		}
		if x.FLOPs != y.FLOPs || x.Bytes != y.Bytes || x.Alloc != y.Alloc {
			t.Fatalf("%s: event %d (%s) counters differ: flops %d/%d bytes %d/%d alloc %d/%d",
				label, i, x.Name, x.FLOPs, y.FLOPs, x.Bytes, y.Bytes, x.Alloc, y.Alloc)
		}
		if x.Sparsity != y.Sparsity {
			t.Fatalf("%s: event %d (%s) sparsity differs: %v vs %v",
				label, i, x.Name, x.Sparsity, y.Sparsity)
		}
	}
	if len(a.Params()) != len(b.Params()) {
		t.Fatalf("%s: param counts differ: %d vs %d", label, len(a.Params()), len(b.Params()))
	}
	for i, p := range a.Params() {
		if p != b.Params()[i] {
			t.Fatalf("%s: param %d differs: %+v vs %+v", label, i, p, b.Params()[i])
		}
	}
}

// TestParallelCharacterizationDeterministic is the end-to-end determinism
// guarantee: a characterization run on the parallel backend records the
// same trace as the serial backend, and two parallel runs agree with each
// other. Only wall-clock durations may differ.
func TestParallelCharacterizationDeterministic(t *testing.T) {
	serial := characterizeNVSA(t, ops.Config{})
	par := ops.Config{Backend: ops.BackendParallel, Workers: 4}
	p1 := characterizeNVSA(t, par)
	p2 := characterizeNVSA(t, par)

	sameTraceModuloTiming(t, "serial vs parallel", serial, p1)
	sameTraceModuloTiming(t, "parallel vs parallel", p1, p2)
}
