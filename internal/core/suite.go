package core

import (
	"github.com/neurosym/nsbench/internal/workloads/alphago"
	"github.com/neurosym/nsbench/internal/workloads/gnnattn"
	"github.com/neurosym/nsbench/internal/workloads/lnn"
	"github.com/neurosym/nsbench/internal/workloads/ltn"
	"github.com/neurosym/nsbench/internal/workloads/neural"
	"github.com/neurosym/nsbench/internal/workloads/nlm"
	"github.com/neurosym/nsbench/internal/workloads/nsvqa"
	"github.com/neurosym/nsbench/internal/workloads/nvsa"
	"github.com/neurosym/nsbench/internal/workloads/prae"
	"github.com/neurosym/nsbench/internal/workloads/vsait"
	"github.com/neurosym/nsbench/internal/workloads/zeroc"
)

// SuiteNames lists the seven characterized workloads in the paper's order.
func SuiteNames() []string {
	return []string{"LNN", "LTN", "NVSA", "NLM", "VSAIT", "ZeroC", "PrAE"}
}

// init registers the default-configuration builders for the suite plus the
// neural baseline. Default configurations are the calibrated ones whose
// phase splits reproduce Fig. 2a.
func init() {
	RegisterWorkload("LNN", func() Workload { return lnn.New(lnn.Config{}) })
	RegisterWorkload("LTN", func() Workload { return ltn.New(ltn.Config{}) })
	RegisterWorkload("NVSA", func() Workload { return nvsa.New(nvsa.Config{}) })
	RegisterWorkload("NLM", func() Workload { return nlm.New(nlm.Config{}) })
	RegisterWorkload("VSAIT", func() Workload { return vsait.New(vsait.Config{}) })
	RegisterWorkload("ZeroC", func() Workload { return zeroc.New(zeroc.Config{}) })
	RegisterWorkload("PrAE", func() Workload { return prae.New(prae.Config{}) })
	RegisterWorkload("NeuralBaseline", func() Workload { return neural.New(neural.Config{}) })
	// Extra Table-I workloads beyond the characterized seven, so every one
	// of the five integration paradigms is executable (Symbolic[Neuro] and
	// the non-vector Neuro|Symbolic pipeline are otherwise unrepresented).
	RegisterWorkload("AlphaGo", func() Workload { return alphago.New(alphago.Config{}) })
	RegisterWorkload("GNN+attention", func() Workload { return gnnattn.New(gnnattn.Config{}) })
	RegisterWorkload("NSVQA", func() Workload { return nsvqa.New(nsvqa.Config{}) })
}
