package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	names := WorkloadNames()
	want := append(SuiteNames(), "NeuralBaseline", "AlphaGo", "GNN+attention", "NSVQA")
	if len(names) != len(want) {
		t.Fatalf("registered %d workloads, want %d", len(names), len(want))
	}
	for _, n := range want {
		w, err := BuildWorkload(n)
		if err != nil {
			t.Fatalf("BuildWorkload(%s): %v", n, err)
		}
		if n != "NeuralBaseline" && w.Name() != n {
			t.Fatalf("workload %s reports name %s", n, w.Name())
		}
	}
	if _, err := BuildWorkload("GPT"); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RegisterWorkload("LNN", nil)
}

func TestCharacterizeLNN(t *testing.T) {
	w, err := BuildWorkload("LNN")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Characterize(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "LNN" || r.Total <= 0 {
		t.Fatalf("report = %+v", r)
	}
	if r.NeuralTime+r.SymbolicTime != r.Total {
		t.Fatal("phase times must sum to total")
	}
	if r.SymbolicShare <= 0 || r.SymbolicShare >= 1 {
		t.Fatalf("symbolic share = %v", r.SymbolicShare)
	}
	if len(r.CategoryShare[trace.Neural]) == 0 {
		t.Fatal("neural category share empty")
	}
	if len(r.Roofline) < 2 {
		t.Fatalf("roofline points = %d, want at least 2", len(r.Roofline))
	}
	if r.Dataflow.Events == 0 || r.Dataflow.Edges == 0 {
		t.Fatal("dataflow graph empty")
	}
	if len(r.Projections) != 3 {
		t.Fatalf("projections = %d, want 3 edge devices", len(r.Projections))
	}
	if r.Memory.TotalParams == 0 {
		t.Fatal("no parameters recorded")
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	r := Analyze("empty", "x", trace.New(), Options{})
	if r.Total != 0 || len(r.Roofline) != 0 {
		t.Fatalf("empty analysis = %+v", r)
	}
}

func TestFig2cScaling(t *testing.T) {
	rows, err := Fig2c(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].TaskSize != "2x2" || rows[1].TaskSize != "3x3" {
		t.Fatalf("rows = %+v", rows)
	}
	// The paper's core scalability observation: 3x3 is several times more
	// expensive than 2x2 (5.02× in the paper) with a stable symbolic share.
	// The threshold allows for the wall-clock noise of shared CI machines.
	if rows[1].ScaleVs2x2 < 1.2 {
		t.Fatalf("3x3/2x2 scale = %v, want > 1.2", rows[1].ScaleVs2x2)
	}
	if rows[1].SymbolicShare < 0.5 || rows[0].SymbolicShare < 0.5 {
		t.Fatalf("symbolic share should remain dominant: %+v", rows)
	}
}

func TestFig2bOrdering(t *testing.T) {
	rows, err := Fig2b(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byDev := map[string]map[string]Fig2bRow{}
	for _, r := range rows {
		if byDev[r.Workload] == nil {
			byDev[r.Workload] = map[string]Fig2bRow{}
		}
		byDev[r.Workload][r.Device] = r
	}
	for _, wl := range []string{"NVSA", "NLM"} {
		tx2 := byDev[wl][hwsim.JetsonTX2.Name]
		xavier := byDev[wl][hwsim.XavierNX.Name]
		rtx := byDev[wl][hwsim.RTX2080Ti.Name]
		if !(tx2.Total > xavier.Total && xavier.Total > rtx.Total) {
			t.Fatalf("%s device ordering violated: %v %v %v", wl, tx2.Total, xavier.Total, rtx.Total)
		}
		// The paper's ~20× TX2-vs-RTX gap for NVSA; require at least 5×.
		if wl == "NVSA" && rtx.Total*5 > tx2.Total {
			t.Fatalf("NVSA TX2/RTX ratio too small: %v vs %v", tx2.Total, rtx.Total)
		}
	}
}

func TestFig5SparsityShape(t *testing.T) {
	rows, err := Fig5(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no sparsity rows")
	}
	attrs := map[string]bool{}
	stages := map[string]bool{}
	for _, r := range rows {
		attrs[r.Attribute] = true
		stages[r.Stage] = true
		if r.Stage == "pmf_to_vsa" && r.Sparsity < 0.8 {
			t.Fatalf("pmf_to_vsa %s sparsity = %v, want > 0.8 (paper: >95%%)", r.Attribute, r.Sparsity)
		}
	}
	for _, a := range []string{"number", "type", "size", "color"} {
		if !attrs[a] {
			t.Fatalf("attribute %s missing", a)
		}
	}
	if !stages["pmf_to_vsa"] || !stages["prob"] || !stages["execute"] {
		t.Fatalf("stages incomplete: %v", stages)
	}
}

func TestTab4Shape(t *testing.T) {
	rows, err := Tab4(hwsim.RTX2080Ti, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	gemm, vec := rows[0], rows[2]
	if gemm.Events == 0 || vec.Events == 0 {
		t.Fatal("kernel classes missing events")
	}
	// The Table-IV signature: neural GEMM high ALU / low DRAM, symbolic
	// eltwise low ALU / high DRAM.
	if gemm.ALUUtilPct < 30 || vec.ALUUtilPct > 15 {
		t.Fatalf("ALU shape wrong: gemm=%v vec=%v", gemm.ALUUtilPct, vec.ALUUtilPct)
	}
	if vec.DRAMBWUtilPct < 50 {
		t.Fatalf("symbolic DRAM utilization = %v, want high", vec.DRAMBWUtilPct)
	}
}

func TestRenderers(t *testing.T) {
	w, err := BuildWorkload("LNN")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Characterize(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reports := []*Report{r}
	var buf bytes.Buffer
	RenderFig2a(&buf, reports)
	RenderFig3a(&buf, reports)
	RenderFig3b(&buf, reports)
	RenderFig3c(&buf, reports, hwsim.RTX2080Ti)
	RenderFig4(&buf, reports)
	RenderTab1(&buf)
	out := buf.String()
	for _, want := range []string{"Fig. 2a", "Fig. 3a", "Fig. 3b", "Fig. 3c", "Fig. 4", "Tab. I", "LNN"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q", want)
		}
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.00KiB",
		1 << 21: "2.00MiB",
		1 << 31: "2.00GiB",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Fatalf("fmtBytes(%d) = %s, want %s", in, got, want)
		}
	}
}

func TestWorkloadRunIdempotentTraces(t *testing.T) {
	// Two runs of the same builder give two traces with consistent shapes.
	w1, _ := BuildWorkload("NLM")
	w2, _ := BuildWorkload("NLM")
	e1, e2 := ops.New(), ops.New()
	if err := w1.Run(e1); err != nil {
		t.Fatal(err)
	}
	if err := w2.Run(e2); err != nil {
		t.Fatal(err)
	}
	if e1.Trace().Len() != e2.Trace().Len() {
		t.Fatalf("trace lengths differ: %d vs %d", e1.Trace().Len(), e2.Trace().Len())
	}
}

func TestReportWriteJSON(t *testing.T) {
	w, err := BuildWorkload("LTN")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Characterize(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid report JSON: %v", err)
	}
	for _, key := range []string{"name", "symbolic_share", "category_share", "roofline", "dataflow", "memory"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("report JSON missing %q", key)
		}
	}
	if decoded["name"] != "LTN" {
		t.Fatalf("name = %v", decoded["name"])
	}
}

func TestMovementShareComputed(t *testing.T) {
	w, err := BuildWorkload("NVSA")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Characterize(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.MovementShare <= 0 || r.MovementShare >= 1 {
		t.Fatalf("movement share = %v", r.MovementShare)
	}
	// NVSA's explicit transfers are dominated by the big H2D image batch
	// (the paper: >80%% of transfer traffic is host→device).
	if r.MovementH2DPct < 50 {
		t.Fatalf("H2D share of movement = %v, want majority", r.MovementH2DPct)
	}
}
