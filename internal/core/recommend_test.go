package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestRecommendationAblations(t *testing.T) {
	rec, err := RecommendationAblations([]int{1, 4, 16}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Rec 5: scheduling must help and stay within bounds.
	if len(rec.Scheduling) != 3 {
		t.Fatalf("scheduling rows = %d", len(rec.Scheduling))
	}
	s1, s4, s16 := rec.Scheduling[0], rec.Scheduling[1], rec.Scheduling[2]
	if s1.Speedup > 1.001 {
		t.Fatalf("1-unit speedup = %v", s1.Speedup)
	}
	if s4.Speedup < 1.3 {
		t.Fatalf("4-unit speedup = %v, want parallel benefit (Rec 5)", s4.Speedup)
	}
	if s16.Makespan > s4.Makespan {
		t.Fatal("more units must not slow the schedule")
	}
	if s16.Makespan < s16.CriticalPath {
		t.Fatal("makespan below the dependency bound")
	}

	// Rec 2/6: the accelerator must beat the GPU on the same trace.
	if rec.AccelSpeedX < 1.5 {
		t.Fatalf("NS-Accel speedup = %v, want > 1.5 (Rec 2/6)", rec.AccelSpeedX)
	}

	// Rec 3: INT8 must cut traffic ~4x.
	if r := rec.Quant.BytesReductionX(); r < 3.5 || r > 4.5 {
		t.Fatalf("quantization traffic reduction = %v", r)
	}

	// Rec 7: sparsity-aware joints at one-hot-plus-floor PMFs must cut
	// work by well over an order of magnitude.
	if rec.Sparse.OpsReductionX() < 10 {
		t.Fatalf("sparse ops reduction = %v", rec.Sparse.OpsReductionX())
	}

	// Rec 6 (NoC): three bandwidth points, monotonically cheaper.
	if len(rec.NoC) != 3 {
		t.Fatalf("NoC rows = %d", len(rec.NoC))
	}
	if rec.NoC[2].CommTime >= rec.NoC[0].CommTime {
		t.Fatalf("wider NoC links must cut comm time: %v vs %v",
			rec.NoC[2].CommTime, rec.NoC[0].CommTime)
	}
}

func TestRenderRecommendations(t *testing.T) {
	rec, err := RecommendationAblations([]int{1, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderRecommendations(&buf, rec)
	out := buf.String()
	for _, want := range []string{"Rec 5", "Rec 2/6", "Rec 3", "Rec 7", "NS-Accel"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered recommendations missing %q", want)
		}
	}
}
