package core

import (
	"fmt"
	"io"

	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/taxonomy"
	"github.com/neurosym/nsbench/internal/trace"
)

// Text renderers: each prints one figure/table of the study in the same
// row/series structure the paper reports, for cmd/nsbench and EXPERIMENTS.md.

// RenderFig2a prints the end-to-end latency phase split.
func RenderFig2a(w io.Writer, reports []*Report) {
	fmt.Fprintln(w, "Fig. 2a — end-to-end latency: neural vs symbolic share")
	fmt.Fprintf(w, "%-8s %-22s %14s %10s %10s %12s\n", "model", "category", "total", "neural%", "symbolic%", "symFLOPs%")
	for _, r := range reports {
		fmt.Fprintf(w, "%-8s %-22s %14v %9.1f%% %9.1f%% %11.1f%%\n",
			r.Name, r.Category, r.Total,
			100*(1-r.SymbolicShare), 100*r.SymbolicShare, 100*r.SymbolicFLOPShare)
	}
}

// RenderFig2b prints the cross-device projections.
func RenderFig2b(w io.Writer, rows []Fig2bRow) {
	fmt.Fprintln(w, "Fig. 2b — projected latency on edge platforms (shared trace per model)")
	fmt.Fprintf(w, "%-8s %-16s %14s %10s %12s %10s\n", "model", "device", "total", "symbolic%", "speedupTX2", "energy(J)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-16s %14v %9.1f%% %11.2fx %10.2f\n",
			r.Workload, r.Device, r.Total, 100*r.SymbolicShare, r.SpeedupVsTX2, r.EnergyJ)
	}
}

// RenderFig2c prints the RPM task-size scalability rows.
func RenderFig2c(w io.Writer, rows []Fig2cRow) {
	fmt.Fprintln(w, "Fig. 2c — NVSA scalability across RPM task sizes")
	fmt.Fprintf(w, "%-8s %14s %10s %10s\n", "task", "total", "symbolic%", "scale")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %14v %9.1f%% %9.2fx\n", r.TaskSize, r.Total, 100*r.SymbolicShare, r.ScaleVs2x2)
	}
}

// RenderFig3a prints the operator-category runtime breakdown per phase.
func RenderFig3a(w io.Writer, reports []*Report) {
	fmt.Fprintln(w, "Fig. 3a — compute-operator runtime share per phase")
	fmt.Fprintf(w, "%-8s %-9s", "model", "phase")
	for _, c := range trace.Categories() {
		fmt.Fprintf(w, " %14s", c)
	}
	fmt.Fprintln(w)
	for _, r := range reports {
		for _, p := range trace.Phases() {
			sh := r.CategoryShare[p]
			if len(sh) == 0 {
				continue
			}
			fmt.Fprintf(w, "%-8s %-9s", r.Name, p)
			for _, c := range trace.Categories() {
				fmt.Fprintf(w, " %13.1f%%", 100*sh[c])
			}
			fmt.Fprintln(w)
		}
	}
}

// RenderFig3b prints the memory report.
func RenderFig3b(w io.Writer, reports []*Report) {
	fmt.Fprintln(w, "Fig. 3b — memory during computation and storage footprint")
	fmt.Fprintf(w, "%-8s %14s %14s %12s %12s %14s\n",
		"model", "neuralAlloc", "symbolicAlloc", "weights", "codebooks", "symAlloc%")
	for _, r := range reports {
		total := r.Memory.NeuralAlloc + r.Memory.SymbolicAlloc
		symPct := 0.0
		if total > 0 {
			symPct = 100 * float64(r.Memory.SymbolicAlloc) / float64(total)
		}
		fmt.Fprintf(w, "%-8s %14s %14s %12s %12s %13.1f%%\n",
			r.Name, fmtBytes(r.Memory.NeuralAlloc), fmtBytes(r.Memory.SymbolicAlloc),
			fmtBytes(r.Memory.ParamsByKind["weight"]), fmtBytes(r.Memory.ParamsByKind["codebook"]), symPct)
	}
}

// RenderFig3c prints the roofline placements.
func RenderFig3c(w io.Writer, reports []*Report, device hwsim.Device) {
	fmt.Fprintf(w, "Fig. 3c — roofline on %s (ridge at %.1f FLOPs/byte)\n",
		device.Name, device.PeakFP32GFLOPs/device.MemBWGBs)
	fmt.Fprintf(w, "%-22s %12s %14s %14s %10s\n", "component", "AI(F/B)", "perf(GFLOP/s)", "bound", "ceiling%")
	for _, r := range reports {
		for _, p := range r.Roofline {
			fmt.Fprintf(w, "%-22s %12.3f %14.2f %14s %9.1f%%\n",
				p.Name, p.AI, p.PerfGFLOPs, p.Bound, p.CeilingPct)
		}
	}
}

// RenderFig4 prints the dataflow analysis.
func RenderFig4(w io.Writer, reports []*Report) {
	fmt.Fprintln(w, "Fig. 4 — operator graph and dataflow dependencies")
	fmt.Fprintf(w, "%-8s %8s %8s %7s %7s %10s %10s %9s %9s\n",
		"model", "events", "edges", "depth", "width", "seqFrac", "critPath", "n→s", "s→n")
	for _, r := range reports {
		d := r.Dataflow
		fmt.Fprintf(w, "%-8s %8d %8d %7d %7d %9.1f%% %10v %9d %9d\n",
			r.Name, d.Events, d.Edges, d.Depth, d.MaxWidth, 100*d.SequentialFraction,
			d.CriticalPathDur, d.NeuralToSymbolic, d.SymbolicToNeural)
	}
	fmt.Fprintln(w, "critical-path phase share:")
	for _, r := range reports {
		fmt.Fprintf(w, "  %-8s neural %5.1f%%  symbolic %5.1f%%\n",
			r.Name, 100*r.Dataflow.CriticalPathPhase[trace.Neural], 100*r.Dataflow.CriticalPathPhase[trace.Symbolic])
	}
}

// RenderFig5 prints the NVSA stage-sparsity rows.
func RenderFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "Fig. 5 — sparsity of NVSA symbolic stages per rule attribute")
	fmt.Fprintf(w, "%-14s %-10s %10s\n", "stage", "attribute", "sparsity")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-10s %9.1f%%\n", r.Stage, r.Attribute, 100*r.Sparsity)
	}
}

// RenderTab4 prints the hardware-counter table.
func RenderTab4(w io.Writer, rows []hwsim.KernelStats, device hwsim.Device) {
	fmt.Fprintf(w, "Tab. IV — NVSA kernel characteristics on %s\n", device.Name)
	fmt.Fprintf(w, "%-26s", "metric")
	for _, r := range rows {
		fmt.Fprintf(w, " %15s", r.Kernel)
	}
	fmt.Fprintln(w)
	metric := func(label string, get func(hwsim.KernelStats) float64) {
		fmt.Fprintf(w, "%-26s", label)
		for _, r := range rows {
			fmt.Fprintf(w, " %14.1f%%", get(r))
		}
		fmt.Fprintln(w)
	}
	metric("Compute Throughput", func(k hwsim.KernelStats) float64 { return k.ComputeThroughputPct })
	metric("ALU Utilization", func(k hwsim.KernelStats) float64 { return k.ALUUtilPct })
	metric("L1 Cache Throughput", func(k hwsim.KernelStats) float64 { return k.L1ThroughputPct })
	metric("L2 Cache Throughput", func(k hwsim.KernelStats) float64 { return k.L2ThroughputPct })
	metric("L1 Cache Hit Rate", func(k hwsim.KernelStats) float64 { return k.L1HitRatePct })
	metric("L2 Cache Hit Rate", func(k hwsim.KernelStats) float64 { return k.L2HitRatePct })
	metric("DRAM BW Utilization", func(k hwsim.KernelStats) float64 { return k.DRAMBWUtilPct })
}

// RenderTab1 prints the taxonomy survey (Tables I and III).
func RenderTab1(w io.Writer) {
	fmt.Fprintln(w, "Tab. I — neuro-symbolic algorithm taxonomy")
	for _, p := range taxonomy.Paradigms() {
		fmt.Fprintf(w, "%s — %s\n", p, p.Description())
		for _, a := range taxonomy.ByParadigm(p) {
			sel := ""
			if a.Selected {
				sel = "  [characterized]"
			}
			vec := "non-vector"
			if a.Vector {
				vec = "vector"
			}
			fmt.Fprintf(w, "  %-18s ops=%v (%s)%s\n", a.Name, a.Operations, vec, sel)
		}
	}
	fmt.Fprintln(w, "\nTab. III — selected workloads")
	for _, m := range taxonomy.Workloads() {
		fmt.Fprintf(w, "  %-6s %-46s %-22s neural=%s\n", m.Name, m.FullName, m.Paradigm, m.NeuralPart)
	}
}

// fmtBytes renders a byte count in human units.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
