// Package core is the public heart of nsbench: it defines the workload
// abstraction, the registry of the seven characterized neuro-symbolic
// models, and the Characterize entry point that turns one workload run
// into the full set of measurements behind the ISPASS 2024 study's figures
// and tables — latency phase split (Fig. 2), operator-category breakdown
// (Fig. 3a), memory behaviour (Fig. 3b), roofline placement (Fig. 3c),
// dataflow/critical-path structure (Fig. 4), kernel-level hardware
// counters (Tab. IV), and per-stage sparsity (Fig. 5).
package core

import (
	"fmt"
	"sort"
	"time"

	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/roofline"
	"github.com/neurosym/nsbench/internal/trace"
)

// Workload is one neuro-symbolic model instance that can execute a single
// end-to-end inference on an instrumented engine.
type Workload interface {
	// Name returns the workload's short name (e.g. "NVSA").
	Name() string
	// Category returns its Kautz-taxonomy category (Table III).
	Category() string
	// Run executes one end-to-end inference, recording into e's trace.
	Run(e *ops.Engine) error
}

// Report is the complete characterization of one workload run.
type Report struct {
	Name     string
	Category string
	Trace    *trace.Trace

	// Latency (Fig. 2a).
	Total         time.Duration
	NeuralTime    time.Duration
	SymbolicTime  time.Duration
	SymbolicShare float64
	// FLOP share, for the paper's "92.1% of time but 19% of FLOPs" point.
	SymbolicFLOPShare float64

	// Operator breakdown (Fig. 3a): per phase, per category duration share.
	CategoryShare map[trace.Phase]map[trace.Category]float64

	// Memory (Fig. 3b).
	Memory MemoryReport

	// Data movement (Takeaway 6): share of total time in movement events,
	// and the host→device fraction of movement traffic.
	MovementShare  float64
	MovementH2DPct float64

	// Roofline placement (Fig. 3c) on the reference device.
	Roofline []roofline.Point

	// Dataflow (Fig. 4).
	Dataflow DataflowReport

	// Per-stage statistics incl. sparsity (Fig. 5).
	Stages []trace.StageStats

	// Device projections (Fig. 2b).
	Projections []hwsim.Projection
}

// MemoryReport summarizes allocation and storage behaviour.
type MemoryReport struct {
	NeuralAlloc    int64 // bytes allocated during the neural phase
	SymbolicAlloc  int64 // bytes allocated during the symbolic phase
	ParamsByKind   map[string]int64
	TotalParams    int64
	PeakNeuralOp   int64 // largest single-op traffic, neural
	PeakSymbolicOp int64
}

// DataflowReport summarizes the operator dependency graph.
type DataflowReport struct {
	Events             int
	Edges              int
	Depth              int
	MaxWidth           int
	SequentialFraction float64
	CriticalPathLen    int
	CriticalPathDur    time.Duration
	// Share of the critical path spent in each phase: quantifies
	// "symbolic lies on the critical path".
	CriticalPathPhase map[trace.Phase]float64
	NeuralToSymbolic  int // cross-phase dependency edges
	SymbolicToNeural  int
}

// Options configures Characterize.
type Options struct {
	// Device is the roofline/projection reference; zero value means
	// RTX 2080 Ti (the paper's discrete GPU).
	Device hwsim.Device
	// ProjectDevices lists devices for Fig. 2b projections; nil means
	// TX2, Xavier NX, RTX 2080 Ti.
	ProjectDevices []hwsim.Device
	// Engine selects the execution backend the characterization run
	// executes on; the zero value is serial.
	Engine ops.Config
	// Pool, when non-nil, supplies engines from a shared backend worker
	// pool instead of building (and tearing down) a private backend per
	// run. The pool's owner is responsible for closing it; Characterize
	// only borrows engines. Long-lived callers (servers, sweeps) set this
	// so repeated characterizations reuse one worker pool.
	Pool *ops.Pool
	// Observer, when non-nil, sees every operator event live as the run
	// records it (e.g. streaming into a metrics registry). It overrides
	// any observer the Pool installs and must be safe for concurrent use
	// (workloads fork engines).
	Observer trace.Observer
}

func (o *Options) defaults() {
	if o.Device.Name == "" {
		o.Device = hwsim.RTX2080Ti
	}
	if o.ProjectDevices == nil {
		o.ProjectDevices = hwsim.EdgeDevices()
	}
}

// Characterize executes one inference of w on a fresh engine and derives
// the full report.
func Characterize(w Workload, opts Options) (*Report, error) {
	opts.defaults()
	e, release := opts.engine()
	defer release()
	if err := w.Run(e); err != nil {
		return nil, fmt.Errorf("core: running %s: %w", w.Name(), err)
	}
	return Analyze(w.Name(), w.Category(), e.Trace(), opts), nil
}

// engine returns a run engine plus its release function: a borrowed
// engine from the shared Pool (release is a no-op — the pool owner closes
// the backend), or a private engine whose backend the release tears down.
func (o *Options) engine() (*ops.Engine, func()) {
	var e *ops.Engine
	release := func() {}
	if o.Pool != nil {
		e = o.Pool.Engine()
	} else {
		e = o.Engine.New()
		release = e.Close
	}
	if o.Observer != nil {
		e.SetObserver(o.Observer)
	}
	return e, release
}

// CloseWorkload releases any shared engine backend a workload holds for
// its internal runs (accuracy loops build engines from a per-workload
// pool). Workloads without resources are left untouched.
func CloseWorkload(w Workload) {
	if c, ok := w.(interface{ Close() }); ok {
		c.Close()
	}
}

// Analyze derives a report from an existing trace.
func Analyze(name, category string, tr *trace.Trace, opts Options) *Report {
	opts.defaults()
	r := &Report{
		Name:     name,
		Category: category,
		Trace:    tr,
	}
	r.Total = tr.Duration()
	r.NeuralTime = tr.PhaseDuration(trace.Neural)
	r.SymbolicTime = tr.PhaseDuration(trace.Symbolic)
	r.SymbolicShare = tr.PhaseShare(trace.Symbolic)
	r.SymbolicFLOPShare = tr.FLOPShare(trace.Symbolic)

	r.CategoryShare = map[trace.Phase]map[trace.Category]float64{
		trace.Neural:   tr.CategoryShare(trace.Neural),
		trace.Symbolic: tr.CategoryShare(trace.Symbolic),
	}

	stats := tr.StatsByPhase()
	r.Memory = MemoryReport{
		NeuralAlloc:    stats[trace.Neural].Alloc,
		SymbolicAlloc:  stats[trace.Symbolic].Alloc,
		ParamsByKind:   tr.ParamBytesByKind(),
		PeakNeuralOp:   stats[trace.Neural].PeakWork,
		PeakSymbolicOp: stats[trace.Symbolic].PeakWork,
	}
	for _, b := range r.Memory.ParamsByKind {
		r.Memory.TotalParams += b
	}

	// Data-movement attribution.
	var moveDur time.Duration
	var moveBytes, h2dBytes int64
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Category != trace.DataMovement {
			continue
		}
		moveDur += e.Dur
		moveBytes += e.Bytes
		if e.Kernel == "memcpy_h2d" {
			h2dBytes += e.Bytes
		}
	}
	if r.Total > 0 {
		r.MovementShare = float64(moveDur) / float64(r.Total)
	}
	if moveBytes > 0 {
		r.MovementH2DPct = 100 * float64(h2dBytes) / float64(moveBytes)
	}

	// Roofline: place each phase's dominant kernel classes. Operational
	// intensity is measured against DRAM traffic after the cache hierarchy
	// (the paper's convention): the cache simulator filters each class's
	// algorithmic traffic, which is what puts tiled GEMM/conv kernels in
	// the compute-bound region while streaming symbolic kernels stay
	// memory-bound.
	model := roofline.Model{Name: opts.Device.Name, PeakGFLOPs: opts.Device.PeakFP32GFLOPs, MemBWGBs: opts.Device.MemBWGBs}
	classLabel := map[hwsim.KernelClass]string{
		hwsim.ClassGEMM:    "sgemm_nn",
		hwsim.ClassEltwise: "vectorized_elem",
	}
	for _, p := range trace.Phases() {
		for _, class := range []hwsim.KernelClass{hwsim.ClassGEMM, hwsim.ClassEltwise} {
			var evs []trace.Event
			for _, ev := range tr.Events {
				if ev.Phase == p && hwsim.ClassifyKernel(ev.Kernel) == class {
					evs = append(evs, ev)
				}
			}
			if len(evs) == 0 {
				continue
			}
			ks := opts.Device.KernelStats(classLabel[class], evs)
			if ks.FLOPs == 0 || ks.Time <= 0 {
				continue
			}
			dram := ks.DRAMBytes
			if dram <= 0 {
				dram = 1 // fully cache-resident: effectively unbounded AI
			}
			pt := model.Place(fmt.Sprintf("%s/%s/%s", name, p, class), ks.FLOPs, dram, ks.Time.Seconds())
			r.Roofline = append(r.Roofline, pt)
		}
	}

	// Dataflow.
	g := trace.BuildGraph(tr)
	path, dur := g.CriticalPath()
	n2s, s2n := g.CrossPhaseEdges()
	r.Dataflow = DataflowReport{
		Events:             g.N,
		Edges:              g.Edges(),
		Depth:              g.Depth(),
		MaxWidth:           g.MaxWidth(),
		SequentialFraction: g.SequentialFraction(),
		CriticalPathLen:    len(path),
		CriticalPathDur:    dur,
		CriticalPathPhase:  g.PathPhaseShare(path),
		NeuralToSymbolic:   n2s,
		SymbolicToNeural:   s2n,
	}

	r.Stages = tr.ByStage()

	for _, d := range opts.ProjectDevices {
		r.Projections = append(r.Projections, d.ProjectTrace(tr))
	}
	return r
}

// Builder constructs a fresh workload instance (workloads carry per-run
// RNG state, so benchmarks build new instances per configuration).
type Builder func() Workload

// registry maps workload names to builders, in registration order.
var (
	registry      = map[string]Builder{}
	registryOrder []string
)

// RegisterWorkload adds a builder under a name; duplicate names panic.
func RegisterWorkload(name string, b Builder) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: duplicate workload %q", name))
	}
	registry[name] = b
	registryOrder = append(registryOrder, name)
}

// WorkloadNames lists registered workloads in registration order.
func WorkloadNames() []string { return append([]string(nil), registryOrder...) }

// BuildWorkload constructs a registered workload.
func BuildWorkload(name string) (Workload, error) {
	b, ok := registry[name]
	if !ok {
		known := append([]string(nil), registryOrder...)
		sort.Strings(known)
		return nil, fmt.Errorf("core: unknown workload %q (known: %v)", name, known)
	}
	return b(), nil
}
