package core

import (
	"fmt"
	"strings"
	"time"

	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/trace"
	"github.com/neurosym/nsbench/internal/workloads/nlm"
	"github.com/neurosym/nsbench/internal/workloads/nvsa"
)

// Fig2a runs the seven-workload suite and returns one report per workload,
// in the paper's order — the end-to-end latency phase-split experiment.
func Fig2a(opts Options) ([]*Report, error) {
	var out []*Report
	for _, name := range SuiteNames() {
		w, err := BuildWorkload(name)
		if err != nil {
			return nil, err
		}
		r, err := Characterize(w, opts)
		CloseWorkload(w)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Fig2bRow is one (workload, device) projection.
type Fig2bRow struct {
	Workload      string
	Device        string
	Total         time.Duration
	SymbolicShare float64
	SpeedupVsTX2  float64
	EnergyJ       float64
}

// Fig2b projects the NVSA and NLM traces onto the edge platforms — the
// cross-device latency experiment. Projections share one recorded trace per
// workload, mirroring the paper's methodology of running the same model on
// each board.
func Fig2b(opts Options) ([]Fig2bRow, error) {
	var rows []Fig2bRow
	for _, name := range []string{"NVSA", "NLM"} {
		w, err := BuildWorkload(name)
		if err != nil {
			return nil, err
		}
		e, release := opts.engine()
		defer release()
		defer CloseWorkload(w)
		if err := w.Run(e); err != nil {
			return nil, err
		}
		tr := e.Trace()
		var tx2 hwsim.Projection
		projections := make([]hwsim.Projection, 0, 3)
		for _, d := range hwsim.EdgeDevices() {
			p := d.ProjectTrace(tr)
			projections = append(projections, p)
			if d.Name == hwsim.JetsonTX2.Name {
				tx2 = p
			}
		}
		for _, p := range projections {
			rows = append(rows, Fig2bRow{
				Workload:      name,
				Device:        p.Device.Name,
				Total:         p.Total,
				SymbolicShare: p.PhaseShare(trace.Symbolic),
				SpeedupVsTX2:  p.Speedup(tx2),
				EnergyJ:       p.EnergyJ,
			})
		}
	}
	return rows, nil
}

// Fig2cRow is one RPM-task-size scalability point.
type Fig2cRow struct {
	TaskSize      string
	Total         time.Duration
	SymbolicShare float64
	ScaleVs2x2    float64
}

// Fig2c measures NVSA end-to-end latency across RPM task sizes — the
// scalability experiment showing runtime explosion under stable phase
// split. Each configuration runs three times and the minimum is kept, the
// standard noise-robust latency estimator.
func Fig2c(opts Options) ([]Fig2cRow, error) {
	var rows []Fig2cRow
	var base time.Duration
	for _, m := range []int{2, 3} {
		best := Fig2cRow{TaskSize: fmt.Sprintf("%dx%d", m, m)}
		for rep := 0; rep < 3; rep++ {
			w := nvsa.New(nvsa.Config{M: m, Engine: opts.Engine})
			r, err := Characterize(w, opts)
			CloseWorkload(w)
			if err != nil {
				return nil, err
			}
			if best.Total == 0 || r.Total < best.Total {
				best.Total = r.Total
				best.SymbolicShare = r.SymbolicShare
			}
		}
		if m == 2 {
			base = best.Total
		}
		best.ScaleVs2x2 = float64(best.Total) / float64(base)
		rows = append(rows, best)
	}
	return rows, nil
}

// Fig5Row is one (stage, attribute) sparsity measurement.
type Fig5Row struct {
	Stage     string
	Attribute string
	Sparsity  float64
}

// Fig5 measures the sparsity of NVSA's symbolic stages per rule attribute.
func Fig5(opts Options) ([]Fig5Row, error) {
	w, err := BuildWorkload("NVSA")
	if err != nil {
		return nil, err
	}
	r, err := Characterize(w, opts)
	CloseWorkload(w)
	if err != nil {
		return nil, err
	}
	var rows []Fig5Row
	for _, s := range r.Stages {
		stage, attr, found := strings.Cut(s.Stage, ":")
		if !found {
			continue
		}
		if stage != "pmf_to_vsa" && stage != "prob" && stage != "execute" {
			continue
		}
		rows = append(rows, Fig5Row{Stage: stage, Attribute: attr, Sparsity: s.Sparsity})
	}
	return rows, nil
}

// Tab4Kernels lists the kernel classes of Table IV in order.
func Tab4Kernels() []string {
	return []string{"sgemm_nn", "relu_nn", "vectorized_elem", "elementwise"}
}

// Tab4 derives the Table-IV hardware-counter rows from an NVSA trace on
// the reference GPU model. Each row aggregates the representative events of
// its kernel class: the neural sgemm_nn row includes convolutions (lowered
// to implicit GEMM on the measured GPUs) and dense GEMMs of the perception
// frontend; the symbolic rows take the backend's element-wise kernels.
func Tab4(device hwsim.Device, opts Options) ([]hwsim.KernelStats, error) {
	w, err := BuildWorkload("NVSA")
	if err != nil {
		return nil, err
	}
	e, release := opts.engine()
	defer release()
	defer CloseWorkload(w)
	if err := w.Run(e); err != nil {
		return nil, err
	}
	tr := e.Trace()
	pick := func(phase trace.Phase, kernels ...string) []trace.Event {
		var out []trace.Event
		for _, ev := range tr.Events {
			if ev.Phase != phase {
				continue
			}
			for _, k := range kernels {
				if ev.Kernel == k {
					out = append(out, ev)
					break
				}
			}
		}
		return out
	}
	rows := []hwsim.KernelStats{
		device.KernelStats("sgemm_nn", pick(trace.Neural, "conv2d", "sgemm_nn")),
		device.KernelStats("relu_nn", pick(trace.Neural, "relu_nn")),
		// The symbolic streaming-vector kernels: codebook-cleanup GEMVs
		// stream the whole codebook per query and are the archetypal
		// memory-bound vectorized kernel of NVSA's backend.
		device.KernelStats("vectorized_elem", pick(trace.Symbolic, "sgemv", "vectorized_elem")),
		device.KernelStats("elementwise", pick(trace.Symbolic, "elementwise", "softmax", "reduce")),
	}
	return rows, nil
}

// ScalabilityRow is one point of the extended NVSA dimension sweep.
type ScalabilityRow struct {
	Dim           int
	Total         time.Duration
	SymbolicShare float64
}

// ScalabilitySweep extends Fig. 2c with a hypervector-dimension sweep,
// quantifying the symbolic scalability bottleneck (Takeaway 2).
func ScalabilitySweep(dims []int, opts Options) ([]ScalabilityRow, error) {
	var rows []ScalabilityRow
	for _, d := range dims {
		w := nvsa.New(nvsa.Config{Dim: d, Engine: opts.Engine})
		r, err := Characterize(w, opts)
		CloseWorkload(w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScalabilityRow{Dim: d, Total: r.Total, SymbolicShare: r.SymbolicShare})
	}
	return rows, nil
}

// NLMScaleRow is one point of the NLM universe-size sweep.
type NLMScaleRow struct {
	Objects       int
	Total         time.Duration
	SymbolicShare float64
}

// NLMScaleSweep measures NLM latency across universe sizes (the
// generalization-scalability companion to Fig. 2c).
func NLMScaleSweep(sizes []int, opts Options) ([]NLMScaleRow, error) {
	var rows []NLMScaleRow
	for _, n := range sizes {
		w := nlm.New(nlm.Config{Objects: n})
		r, err := Characterize(w, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, NLMScaleRow{Objects: n, Total: r.Total, SymbolicShare: r.SymbolicShare})
	}
	return rows, nil
}
