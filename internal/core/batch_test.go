package core

import (
	"encoding/json"
	"fmt"
	"testing"

	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/trace"
)

// detView is the deterministic subset of a Report: every field that is a
// pure function of the workload's seeded construction, excluding anything
// derived from wall-clock durations (latencies, time shares, projections).
type detView struct {
	Name              string             `json:"name"`
	Category          string             `json:"category"`
	SymbolicFLOPShare float64            `json:"symbolic_flop_share"`
	MovementH2DPct    float64            `json:"movement_h2d_pct"`
	Memory            MemoryReport       `json:"memory"`
	Roofline          []detRoofline      `json:"roofline"`
	Dataflow          detDataflow        `json:"dataflow"`
	Stages            []trace.StageStats `json:"stages"`
}

type detRoofline struct {
	Name string  `json:"name"`
	AI   float64 `json:"arithmetic_intensity"`
}

type detDataflow struct {
	Events           int `json:"events"`
	Edges            int `json:"edges"`
	Depth            int `json:"depth"`
	MaxWidth         int `json:"max_width"`
	NeuralToSymbolic int `json:"neural_to_symbolic_edges"`
	SymbolicToNeural int `json:"symbolic_to_neural_edges"`
}

// detJSON marshals the deterministic view for byte comparison. Stage Dur
// is wall time and is zeroed, and SequentialFraction is omitted because it
// is duration-weighted (critical-path time over total time); everything
// else is kept.
func detJSON(t *testing.T, r *Report) []byte {
	t.Helper()
	v := detView{
		Name:              r.Name,
		Category:          r.Category,
		SymbolicFLOPShare: r.SymbolicFLOPShare,
		MovementH2DPct:    r.MovementH2DPct,
		Memory:            r.Memory,
		Dataflow: detDataflow{
			Events:           r.Dataflow.Events,
			Edges:            r.Dataflow.Edges,
			Depth:            r.Dataflow.Depth,
			MaxWidth:         r.Dataflow.MaxWidth,
			NeuralToSymbolic: r.Dataflow.NeuralToSymbolic,
			SymbolicToNeural: r.Dataflow.SymbolicToNeural,
		},
	}
	for _, p := range r.Roofline {
		v.Roofline = append(v.Roofline, detRoofline{Name: p.Name, AI: p.AI})
	}
	for _, s := range r.Stages {
		s.Dur = 0
		v.Stages = append(v.Stages, s)
	}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal deterministic view: %v", err)
	}
	return b
}

// TestCharacterizeBatchMatchesSequential is the batching correctness
// property: for every registered workload, on both backends, a batch of n
// splits into per-item reports whose deterministic fields are
// byte-identical to n sequential solo characterizations on fresh
// instances, and whose per-item traces match the solo traces event for
// event (modulo wall time and tensor IDs). Native workloads exercise the
// uniform-split path; the rest exercise the loop-per-item adapter.
func TestCharacterizeBatchMatchesSequential(t *testing.T) {
	const n = 2
	backends := []ops.Config{
		{Backend: ops.BackendSerial},
		{Backend: ops.BackendParallel, Workers: 4},
	}
	for _, name := range WorkloadNames() {
		for _, eng := range backends {
			name, eng := name, eng
			t.Run(fmt.Sprintf("%s/%s", name, eng.Backend), func(t *testing.T) {
				t.Parallel()
				var want [][]byte
				var solo []*Report
				for i := 0; i < n; i++ {
					w, err := BuildWorkload(name)
					if err != nil {
						t.Fatalf("build: %v", err)
					}
					r, err := Characterize(w, Options{Engine: eng})
					CloseWorkload(w)
					if err != nil {
						t.Fatalf("sequential run %d: %v", i, err)
					}
					solo = append(solo, r)
					want = append(want, detJSON(t, r))
				}

				bw, err := BuildBatchWorkload(name)
				if err != nil {
					t.Fatalf("build batch: %v", err)
				}
				if _, native := bw.(*loopBatch); !native {
					t.Logf("%s: native batch path", name)
				}
				reports, err := CharacterizeBatch(bw, n, Options{Engine: eng})
				CloseWorkload(bw)
				if err != nil {
					t.Fatalf("batch run: %v", err)
				}
				if len(reports) != n {
					t.Fatalf("got %d reports for batch of %d", len(reports), n)
				}
				for i, r := range reports {
					sameTraceModuloTiming(t, fmt.Sprintf("item %d", i), r.Trace, solo[i].Trace)
					if got := detJSON(t, r); string(got) != string(want[i]) {
						t.Errorf("item %d deterministic report fields diverge from sequential run:\nbatch: %s\nsolo:  %s", i, got, want[i])
					}
				}
			})
		}
	}
}

// TestAdapterPathOnNativeWorkloads forces the loop-per-item adapter onto
// workloads that implement BatchWorkload natively, pinning that both
// batching mechanisms agree with sequential execution.
func TestAdapterPathOnNativeWorkloads(t *testing.T) {
	for _, name := range WorkloadNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := BuildWorkload(name)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if _, ok := w.(BatchWorkload); !ok {
				CloseWorkload(w)
				t.Skip("adapter is the default path; covered by the main property test")
			}
			builder := registry[name]
			adapter := &loopBatch{name: w.Name(), category: w.Category(), build: builder, ownsItems: true}
			CloseWorkload(w)

			solo, err := func() (*Report, error) {
				sw, err := BuildWorkload(name)
				if err != nil {
					return nil, err
				}
				defer CloseWorkload(sw)
				return Characterize(sw, Options{})
			}()
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			reports, err := CharacterizeBatch(adapter, 2, Options{})
			if err != nil {
				t.Fatalf("adapter batch: %v", err)
			}
			want := detJSON(t, solo)
			for i, r := range reports {
				sameTraceModuloTiming(t, fmt.Sprintf("item %d", i), r.Trace, solo.Trace)
				if got := detJSON(t, r); string(got) != string(want) {
					t.Errorf("adapter item %d diverges from sequential run:\nbatch: %s\nsolo:  %s", i, got, want)
				}
			}
		})
	}
}
