// Batched characterization: one engine pass executing N compatible
// requests, split back into per-item reports. This is the core of the
// continuous-batching serving path — the paper's workloads are dominated
// by small low-intensity kernels that leave hardware idle, and batching
// across requests is the standard production move that closes the gap.
package core

import (
	"fmt"

	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/trace"
)

// BatchWorkload is a workload that can execute one batched inference: a
// single engine pass standing for n identical items. The contract is
// replica semantics — every item of the batch is equivalent to a fresh
// instance's single run — and cost uniformity: each recorded event must
// carry exactly n× the analytic cost of one item (materialized batch
// tensors and the engine's replica amplification both guarantee this), so
// the trace splits exactly back into per-item traces.
type BatchWorkload interface {
	Workload
	// RunBatch executes one batched inference of n items. RunBatch(e, 1)
	// must be identical to Run(e).
	RunBatch(e *ops.Engine, n int) error
}

// ItemOptions carries the per-item analysis knobs of one batch member.
// Zero fields fall back to the batch-level Options.
type ItemOptions struct {
	Device         hwsim.Device
	ProjectDevices []hwsim.Device
}

// CharacterizeBatch executes one batched inference of n items and derives
// a per-item report for each. Native BatchWorkloads run one batched
// engine pass whose trace is split uniformly; everything else goes
// through the loop-per-item adapter (BuildBatchWorkload), which runs a
// fresh instance per item on the shared engine inside an "item[i]" span
// and splits the trace at the recorded item boundaries. items, when
// present, must have length n and selects each item's analysis device —
// the serving coalescer batches requests for different devices together,
// since the device only matters to analysis, not execution.
func CharacterizeBatch(w Workload, n int, opts Options, items ...ItemOptions) ([]*Report, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: CharacterizeBatch batch size %d", n)
	}
	if len(items) != 0 && len(items) != n {
		return nil, fmt.Errorf("core: CharacterizeBatch got %d item options for batch size %d", len(items), n)
	}
	opts.defaults()
	e, release := opts.engine()
	defer release()

	var parts []*trace.Trace
	var err error
	switch bw := w.(type) {
	case *loopBatch:
		parts, err = bw.runSplit(e, n)
	case BatchWorkload:
		if err = bw.RunBatch(e, n); err == nil {
			parts, err = trace.SplitBatch(e.Trace(), n)
		}
	default:
		// A plain workload outside the registry: loop it on the shared
		// engine, reusing the caller's instance (items see the instance's
		// state stream, like n successive Characterize calls would).
		a := &loopBatch{name: w.Name(), category: w.Category(), build: func() Workload { return w }}
		parts, err = a.runSplit(e, n)
	}
	if err != nil {
		return nil, fmt.Errorf("core: batch of %d × %s: %w", n, w.Name(), err)
	}

	reports := make([]*Report, n)
	for i, p := range parts {
		iopts := opts
		if len(items) == n {
			if items[i].Device.Name != "" {
				iopts.Device = items[i].Device
			}
			if items[i].ProjectDevices != nil {
				iopts.ProjectDevices = items[i].ProjectDevices
			}
		}
		reports[i] = Analyze(w.Name(), w.Category(), p, iopts)
	}
	return reports, nil
}

// BuildBatchWorkload constructs a registered workload ready for batched
// execution: the workload itself when it implements BatchWorkload
// natively, or the loop-per-item adapter otherwise — so every registered
// workload is batchable.
func BuildBatchWorkload(name string) (BatchWorkload, error) {
	b, ok := registry[name]
	if !ok {
		_, err := BuildWorkload(name) // canonical unknown-workload error
		return nil, err
	}
	w := b()
	if bw, ok := w.(BatchWorkload); ok {
		return bw, nil
	}
	adapter := &loopBatch{name: w.Name(), category: w.Category(), build: b, ownsItems: true}
	CloseWorkload(w)
	return adapter, nil
}

// loopBatch adapts any workload to BatchWorkload by running one instance
// per item sequentially on the shared engine, recording each item's
// event/param/span boundaries for exact trace splitting.
type loopBatch struct {
	name, category string
	build          Builder
	// ownsItems marks instances as adapter-built (closed after each
	// item) rather than caller-owned.
	ownsItems bool
}

func (a *loopBatch) Name() string     { return a.name }
func (a *loopBatch) Category() string { return a.category }

func (a *loopBatch) Run(e *ops.Engine) error {
	w := a.build()
	if a.ownsItems {
		defer CloseWorkload(w)
	}
	return w.Run(e)
}

func (a *loopBatch) RunBatch(e *ops.Engine, n int) error {
	_, err := a.runItems(e, n)
	return err
}

// itemBounds records the trace high-water marks after one item.
type itemBounds struct{ events, params, spans int }

func (a *loopBatch) runItems(e *ops.Engine, n int) ([]itemBounds, error) {
	tr := e.Trace()
	bounds := make([]itemBounds, 0, n)
	for i := 0; i < n; i++ {
		w := a.build()
		// Each item must start from the state its solo run would see on a
		// fresh engine.
		e.ResetRunState()
		e.Begin(fmt.Sprintf("item[%d]", i))
		err := w.Run(e)
		e.End()
		if a.ownsItems {
			CloseWorkload(w)
		}
		if err != nil {
			return nil, fmt.Errorf("item %d: %w", i, err)
		}
		bounds = append(bounds, itemBounds{events: len(tr.Events), params: len(tr.Params()), spans: len(tr.Spans())})
	}
	e.ResetRunState()
	return bounds, nil
}

// runSplit runs the adapter and carves the trace at the item boundaries.
// Unlike the native path's uniform division, adapter items own disjoint
// contiguous trace regions, so the split is an exact partition.
func (a *loopBatch) runSplit(e *ops.Engine, n int) ([]*trace.Trace, error) {
	bounds, err := a.runItems(e, n)
	if err != nil {
		return nil, err
	}
	tr := e.Trace()
	parts := make([]*trace.Trace, n)
	var prev itemBounds
	for i, b := range bounds {
		p := trace.New()
		p.SetEpoch(tr.Epoch())
		for _, ev := range tr.Events[prev.events:b.events] {
			p.Append(ev) // renumbers Seq from 0, like a solo trace
		}
		for _, pa := range tr.Params()[prev.params:b.params] {
			p.RegisterParam(pa)
		}
		for _, sp := range tr.Spans()[prev.spans:b.spans] {
			p.AddSpan(sp)
		}
		parts[i] = p
		prev = b
	}
	return parts, nil
}
