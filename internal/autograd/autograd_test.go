package autograd

import (
	"testing"

	"github.com/neurosym/nsbench/internal/tensor"
)

// numericGrad estimates d out / d param[idx] with central differences.
func numericGrad(param *tensor.Tensor, idx int, f func() float32) float32 {
	const h = 1e-3
	orig := param.Data()[idx]
	param.Data()[idx] = orig + h
	up := f()
	param.Data()[idx] = orig - h
	down := f()
	param.Data()[idx] = orig
	return (up - down) / (2 * h)
}

// checkGrads verifies the analytic gradient of every element of param
// against finite differences of the scalar-producing forward pass.
func checkGrads(t *testing.T, param *Var, forward func() *Var, tol float32) {
	t.Helper()
	out := forward()
	out.Backward()
	// Snapshot: re-running forward() inside the numeric loop clears grads.
	analytic := append([]float32(nil), param.Grad.Data()...)
	for i := range param.Value.Data() {
		want := numericGrad(param.Value, i, func() float32 { return forward().Value.Item() })
		got := analytic[i]
		d := got - want
		if d > tol || d < -tol {
			t.Fatalf("grad[%d] = %v, numeric %v", i, got, want)
		}
	}
}

func TestMatMulGrad(t *testing.T) {
	g := tensor.NewRNG(1)
	a := NewVar(g.Normal(0, 1, 3, 4), true)
	b := NewVar(g.Normal(0, 1, 4, 2), true)
	forward := func() *Var {
		a.ZeroGrad()
		b.ZeroGrad()
		return Mean(MatMul(a, b))
	}
	checkGrads(t, a, forward, 1e-2)
	checkGrads(t, b, forward, 1e-2)
}

func TestElementwiseGrads(t *testing.T) {
	g := tensor.NewRNG(2)
	x := NewVar(g.Normal(0, 1, 10), true)
	cases := map[string]func() *Var{
		"add":     func() *Var { x.ZeroGrad(); return Mean(Add(x, Const(tensor.Ones(10)))) },
		"sub":     func() *Var { x.ZeroGrad(); return Mean(Sub(Const(tensor.Ones(10)), x)) },
		"mul":     func() *Var { x.ZeroGrad(); return Mean(Mul(x, x)) },
		"scalar":  func() *Var { x.ZeroGrad(); return Mean(MulScalar(AddScalar(x, 2), 3)) },
		"sigmoid": func() *Var { x.ZeroGrad(); return Mean(Sigmoid(x)) },
		"tanh":    func() *Var { x.ZeroGrad(); return Mean(Tanh(x)) },
		"square":  func() *Var { x.ZeroGrad(); return Mean(Square(x)) },
		"sum":     func() *Var { x.ZeroGrad(); return MulScalar(Sum(x), 0.1) },
	}
	for name, f := range cases {
		t.Run(name, func(t *testing.T) { checkGrads(t, x, f, 2e-2) })
	}
}

func TestReLUAndClampGrads(t *testing.T) {
	// Values away from the kinks so finite differences are valid.
	x := NewVar(tensor.FromSlice([]float32{-1.5, -0.4, 0.3, 0.7, 1.8}, 5), true)
	relu := func() *Var { x.ZeroGrad(); return Mean(ReLU(x)) }
	checkGrads(t, x, relu, 1e-2)
	clamp := func() *Var { x.ZeroGrad(); return Mean(Clamp01(x)) }
	checkGrads(t, x, clamp, 1e-2)
}

func TestSqrtGrad(t *testing.T) {
	x := NewVar(tensor.FromSlice([]float32{0.5, 1, 2, 4}, 4), true)
	f := func() *Var { x.ZeroGrad(); return Mean(Sqrt(x)) }
	checkGrads(t, x, f, 1e-2)
}

func TestBiasGrad(t *testing.T) {
	g := tensor.NewRNG(3)
	a := NewVar(g.Normal(0, 1, 4, 3), true)
	bias := NewVar(g.Normal(0, 1, 3), true)
	forward := func() *Var {
		a.ZeroGrad()
		bias.ZeroGrad()
		return Mean(AddRowBias(a, bias))
	}
	checkGrads(t, bias, forward, 1e-2)
	checkGrads(t, a, forward, 1e-2)
}

func TestLossGrads(t *testing.T) {
	g := tensor.NewRNG(4)
	x := NewVar(g.Uniform(0.2, 0.8, 6), true)
	target := tensor.FromSlice([]float32{1, 0, 1, 0, 1, 0}, 6)
	mse := func() *Var { x.ZeroGrad(); return MSE(x, target) }
	checkGrads(t, x, mse, 1e-2)
	bce := func() *Var { x.ZeroGrad(); return BCE(x, target) }
	checkGrads(t, x, bce, 5e-2)
}

func TestBackwardNonScalarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVar(tensor.Ones(3), true).Backward()
}

func TestMLPTrainingConverges(t *testing.T) {
	// Fit XOR with a tiny MLP: a full end-to-end autograd check.
	g := tensor.NewRNG(5)
	x := tensor.FromSlice([]float32{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	y := tensor.FromSlice([]float32{0, 1, 1, 0}, 4, 1)
	w1 := NewVar(g.Normal(0, 1, 2, 8), true)
	b1 := NewVar(tensor.Zeros(8), true)
	w2 := NewVar(g.Normal(0, 1, 8, 1), true)
	b2 := NewVar(tensor.Zeros(1), true)
	opt := &SGD{Params: []*Var{w1, b1, w2, b2}, LR: 0.5}

	forward := func() *Var {
		h := Tanh(AddRowBias(MatMul(Const(x), w1), b1))
		return Sigmoid(AddRowBias(MatMul(h, w2), b2))
	}
	var first, last float32
	for epoch := 0; epoch < 1500; epoch++ {
		loss := BCE(forward(), y)
		if epoch == 0 {
			first = loss.Value.Item()
		}
		last = loss.Value.Item()
		loss.Backward()
		opt.Step()
	}
	if last > first/4 {
		t.Fatalf("training failed to converge: first=%v last=%v", first, last)
	}
	pred := forward().Value
	for i := 0; i < 4; i++ {
		want := y.At(i, 0)
		got := pred.At(i, 0)
		if (want == 1 && got < 0.6) || (want == 0 && got > 0.4) {
			t.Fatalf("XOR sample %d predicted %v, want %v", i, got, want)
		}
	}
}

func TestDiamondGraphAccumulates(t *testing.T) {
	// y = x·x + x: gradient 2x + 1 — requires accumulation across paths.
	x := NewVar(tensor.FromSlice([]float32{3}, 1), true)
	y := Sum(Add(Mul(x, x), x))
	y.Backward()
	if g := x.Grad.At(0); g < 6.99 || g > 7.01 {
		t.Fatalf("diamond grad = %v, want 7", g)
	}
}

func TestSGDStepAndZero(t *testing.T) {
	p := NewVar(tensor.FromSlice([]float32{1}, 1), true)
	loss := Sum(Mul(p, p)) // d/dp = 2p = 2
	loss.Backward()
	(&SGD{Params: []*Var{p}, LR: 0.25}).Step()
	if v := p.Value.At(0); v != 0.5 {
		t.Fatalf("after step p = %v, want 0.5", v)
	}
	if p.Grad.At(0) != 0 {
		t.Fatal("Step must clear gradients")
	}
}
