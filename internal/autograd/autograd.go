// Package autograd implements reverse-mode automatic differentiation over
// the tensor substrate: a dynamically built computation graph with
// per-operation backward rules and a topological backward pass.
//
// It addresses the paper's "developing efficient software frameworks"
// direction (Sec. VI): neuro-symbolic systems need differentiable logic —
// fuzzy connectives, quantifier aggregations — composed with neural
// layers under one gradient framework. The fuzzy-logic operations here
// (clamp-based Łukasiewicz connectives, p-mean quantifiers) are exactly the
// pieces LTN-style training differentiates through.
package autograd

import (
	"fmt"
	"math"

	"github.com/neurosym/nsbench/internal/tensor"
)

// Var is a node in the computation graph.
type Var struct {
	Value *tensor.Tensor
	Grad  *tensor.Tensor
	// requiresGrad marks leaves that accumulate gradient (parameters).
	requiresGrad bool
	backward     func()
	parents      []*Var
}

// NewVar wraps a tensor as a graph leaf. requiresGrad marks parameters.
func NewVar(t *tensor.Tensor, requiresGrad bool) *Var {
	return &Var{Value: t, requiresGrad: requiresGrad}
}

// Const wraps a tensor as a non-trainable constant.
func Const(t *tensor.Tensor) *Var { return NewVar(t, false) }

// ensureGrad lazily allocates the gradient buffer.
func (v *Var) ensureGrad() {
	if v.Grad == nil {
		v.Grad = tensor.Zeros(v.Value.Shape()...)
	}
}

// accumulate adds g into v's gradient.
func (v *Var) accumulate(g *tensor.Tensor) {
	v.ensureGrad()
	tensor.AXPY(1, g, v.Grad)
}

// ZeroGrad clears the accumulated gradient.
func (v *Var) ZeroGrad() {
	if v.Grad != nil {
		v.Grad.Fill(0)
	}
}

// Backward runs the reverse pass from a scalar output.
func (v *Var) Backward() {
	if v.Value.Size() != 1 {
		panic(fmt.Sprintf("autograd: Backward needs a scalar output, got %v", v.Value.Shape()))
	}
	// Topological order via DFS.
	var order []*Var
	seen := map[*Var]bool{}
	var visit func(n *Var)
	visit = func(n *Var) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, p := range n.parents {
			visit(p)
		}
		order = append(order, n)
	}
	visit(v)
	v.ensureGrad()
	v.Grad.Fill(1)
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].backward != nil {
			order[i].backward()
		}
	}
}

// node builds an op result with its backward rule.
func node(out *tensor.Tensor, back func(grad *tensor.Tensor), parents ...*Var) *Var {
	v := &Var{Value: out, parents: parents}
	v.backward = func() {
		if v.Grad == nil {
			return
		}
		back(v.Grad)
	}
	return v
}

// MatMul returns a·b with gradients dA = dC·Bᵀ, dB = Aᵀ·dC.
func MatMul(a, b *Var) *Var {
	out := tensor.MatMul(a.Value, b.Value)
	v := node(out, nil, a, b)
	v.backward = func() {
		if v.Grad == nil {
			return
		}
		a.accumulate(tensor.MatMul(v.Grad, tensor.Transpose(b.Value)))
		b.accumulate(tensor.MatMul(tensor.Transpose(a.Value), v.Grad))
	}
	return v
}

// Add returns a + b element-wise.
func Add(a, b *Var) *Var {
	v := node(tensor.Add(a.Value, b.Value), nil, a, b)
	v.backward = func() {
		if v.Grad == nil {
			return
		}
		a.accumulate(v.Grad)
		b.accumulate(v.Grad)
	}
	return v
}

// Sub returns a - b element-wise.
func Sub(a, b *Var) *Var {
	v := node(tensor.Sub(a.Value, b.Value), nil, a, b)
	v.backward = func() {
		if v.Grad == nil {
			return
		}
		a.accumulate(v.Grad)
		b.accumulate(tensor.Neg(v.Grad))
	}
	return v
}

// Mul returns the Hadamard product.
func Mul(a, b *Var) *Var {
	v := node(tensor.Mul(a.Value, b.Value), nil, a, b)
	v.backward = func() {
		if v.Grad == nil {
			return
		}
		a.accumulate(tensor.Mul(v.Grad, b.Value))
		b.accumulate(tensor.Mul(v.Grad, a.Value))
	}
	return v
}

// AddScalar returns a + s.
func AddScalar(a *Var, s float32) *Var {
	v := node(tensor.AddScalar(a.Value, s), nil, a)
	v.backward = func() {
		if v.Grad == nil {
			return
		}
		a.accumulate(v.Grad)
	}
	return v
}

// MulScalar returns a * s.
func MulScalar(a *Var, s float32) *Var {
	v := node(tensor.MulScalar(a.Value, s), nil, a)
	v.backward = func() {
		if v.Grad == nil {
			return
		}
		a.accumulate(tensor.MulScalar(v.Grad, s))
	}
	return v
}

// AddRowBias adds a length-n bias vector to every row of an m×n matrix.
func AddRowBias(a, bias *Var) *Var {
	m, n := a.Value.Dim(0), a.Value.Dim(1)
	if bias.Value.Rank() != 1 || bias.Value.Dim(0) != n {
		panic(fmt.Sprintf("autograd: AddRowBias bias %v vs matrix %v", bias.Value.Shape(), a.Value.Shape()))
	}
	out := tensor.New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Set(a.Value.At(i, j)+bias.Value.At(j), i, j)
		}
	}
	v := node(out, nil, a, bias)
	v.backward = func() {
		if v.Grad == nil {
			return
		}
		a.accumulate(v.Grad)
		bias.accumulate(tensor.SumAxis(v.Grad, 0))
	}
	return v
}

// ReLU returns max(0, a); the gradient is gated by the sign of the input.
func ReLU(a *Var) *Var {
	v := node(tensor.ReLU(a.Value), nil, a)
	v.backward = func() {
		if v.Grad == nil {
			return
		}
		g := tensor.New(a.Value.Shape()...)
		for i, x := range a.Value.Data() {
			if x > 0 {
				g.Data()[i] = v.Grad.Data()[i]
			}
		}
		a.accumulate(g)
	}
	return v
}

// Sigmoid returns σ(a) with gradient σ(a)(1-σ(a)).
func Sigmoid(a *Var) *Var {
	out := tensor.Sigmoid(a.Value)
	v := node(out, nil, a)
	v.backward = func() {
		if v.Grad == nil {
			return
		}
		g := tensor.New(out.Shape()...)
		for i, s := range out.Data() {
			g.Data()[i] = v.Grad.Data()[i] * s * (1 - s)
		}
		a.accumulate(g)
	}
	return v
}

// Tanh returns tanh(a) with gradient 1 - tanh².
func Tanh(a *Var) *Var {
	out := tensor.Tanh(a.Value)
	v := node(out, nil, a)
	v.backward = func() {
		if v.Grad == nil {
			return
		}
		g := tensor.New(out.Shape()...)
		for i, s := range out.Data() {
			g.Data()[i] = v.Grad.Data()[i] * (1 - s*s)
		}
		a.accumulate(g)
	}
	return v
}

// Clamp01 clamps to [0,1] — the Łukasiewicz connective nonlinearity.
// Gradient passes where the input is strictly inside the interval.
func Clamp01(a *Var) *Var {
	out := tensor.Clamp(a.Value, 0, 1)
	v := node(out, nil, a)
	v.backward = func() {
		if v.Grad == nil {
			return
		}
		g := tensor.New(a.Value.Shape()...)
		for i, x := range a.Value.Data() {
			if x > 0 && x < 1 {
				g.Data()[i] = v.Grad.Data()[i]
			}
		}
		a.accumulate(g)
	}
	return v
}

// Mean reduces to the scalar mean of all elements.
func Mean(a *Var) *Var {
	n := a.Value.Size()
	out := tensor.Scalar(a.Value.Mean())
	v := node(out, nil, a)
	v.backward = func() {
		if v.Grad == nil {
			return
		}
		scale := v.Grad.Item() / float32(n)
		g := tensor.Full(scale, a.Value.Shape()...)
		a.accumulate(g)
	}
	return v
}

// Sum reduces to the scalar sum of all elements.
func Sum(a *Var) *Var {
	out := tensor.Scalar(a.Value.Sum())
	v := node(out, nil, a)
	v.backward = func() {
		if v.Grad == nil {
			return
		}
		g := tensor.Full(v.Grad.Item(), a.Value.Shape()...)
		a.accumulate(g)
	}
	return v
}

// Square returns a² element-wise.
func Square(a *Var) *Var { return Mul(a, a) }

// Sqrt returns √a element-wise with gradient 1/(2√a); inputs must be > 0
// for a finite gradient.
func Sqrt(a *Var) *Var {
	out := tensor.Sqrt(a.Value)
	v := node(out, nil, a)
	v.backward = func() {
		if v.Grad == nil {
			return
		}
		g := tensor.New(out.Shape()...)
		for i, s := range out.Data() {
			if s > 0 {
				g.Data()[i] = v.Grad.Data()[i] / (2 * s)
			}
		}
		a.accumulate(g)
	}
	return v
}

// MSE returns the mean squared error between prediction and target
// (target is treated as a constant).
func MSE(pred *Var, target *tensor.Tensor) *Var {
	diff := Sub(pred, Const(target))
	return Mean(Square(diff))
}

// BCE returns the mean binary cross-entropy of probabilities p against 0/1
// targets, computed stably with an epsilon floor.
func BCE(p *Var, target *tensor.Tensor) *Var {
	const eps = 1e-6
	out := tensor.New()
	n := p.Value.Size()
	var loss float64
	for i, q := range p.Value.Data() {
		qq := math.Min(math.Max(float64(q), eps), 1-eps)
		y := float64(target.Data()[i])
		loss += -(y*math.Log(qq) + (1-y)*math.Log(1-qq))
	}
	out.Data()[0] = float32(loss / float64(n))
	v := node(out, nil, p)
	v.backward = func() {
		if v.Grad == nil {
			return
		}
		scale := v.Grad.Item() / float32(n)
		g := tensor.New(p.Value.Shape()...)
		for i, q := range p.Value.Data() {
			qq := float32(math.Min(math.Max(float64(q), eps), 1-eps))
			y := target.Data()[i]
			g.Data()[i] = scale * (qq - y) / (qq * (1 - qq))
		}
		p.accumulate(g)
	}
	return v
}

// SGD is a plain stochastic-gradient-descent optimizer.
type SGD struct {
	Params []*Var
	LR     float32
}

// Step applies one update and clears the gradients.
func (o *SGD) Step() {
	for _, p := range o.Params {
		if p.Grad == nil {
			continue
		}
		tensor.AXPY(-o.LR, p.Grad, p.Value)
		p.ZeroGrad()
	}
}
