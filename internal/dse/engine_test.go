package dse

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/trace"
)

// testTrace is a small synthetic neuro-symbolic trace: GEMM-heavy neural
// phase, gather/scalar symbolic phase, plus transfers. Several events share
// a cost tuple so signature dedup has something to merge.
func testTrace() *trace.Trace {
	tr := &trace.Trace{}
	add := func(kernel string, phase trace.Phase, flops, bytes int64, n int) {
		for i := 0; i < n; i++ {
			tr.Events = append(tr.Events, trace.Event{
				Seq: len(tr.Events), Name: kernel, Kernel: kernel,
				Phase: phase, FLOPs: flops, Bytes: bytes,
			})
		}
	}
	add("memcpy_h2d", trace.Neural, 0, 1<<20, 2)
	add("sgemm_nn", trace.Neural, 1<<27, 1<<22, 6)
	add("relu_nn", trace.Neural, 1<<20, 1<<21, 6)
	add("gather", trace.Symbolic, 0, 1<<22, 8)
	add("vectorized_elem", trace.Symbolic, 1<<24, 1<<23, 4)
	add("transform", trace.Symbolic, 0, 1<<19, 3)
	return tr
}

func testEngine(t *testing.T, space Space) *Engine {
	t.Helper()
	g, err := Resolve(hwsim.RTX2080Ti, space)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(g, testTrace())
}

func TestSignatureCompression(t *testing.T) {
	sig := buildSignature(testTrace())
	// 6 distinct cost tuples from 29 events.
	if len(sig.events) != 6 {
		t.Fatalf("signature has %d rows, want 6", len(sig.events))
	}
	var n int64
	for _, ev := range sig.events {
		n += ev.count
	}
	if n != 29 {
		t.Fatalf("signature multiplicities sum to %d, want 29", n)
	}
	if !sig.events[0].h2d {
		t.Fatalf("first row should be the h2d copy: %+v", sig.events[0])
	}
	wantFlops := int64(6<<27 + 6<<20 + 4<<24)
	if sig.flops != wantFlops {
		t.Fatalf("total flops = %d, want %d", sig.flops, wantFlops)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	space := DefaultSpace()
	e1 := testEngine(t, space)
	e2 := testEngine(t, space)
	for i := 0; i < e1.Grid().Size(); i++ {
		a, b := e1.Evaluate(i), e2.Evaluate(i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("point %d diverged across engines:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestEvaluateScoresAreSane(t *testing.T) {
	e := testEngine(t, Space{})
	res := e.Evaluate(0)
	if res.Err != "" {
		t.Fatalf("base point failed: %s", res.Err)
	}
	if res.LatencyNs <= 0 {
		t.Fatalf("latency %d, want positive", res.LatencyNs)
	}
	if res.NeuralNs <= 0 || res.SymbolicNs <= 0 {
		t.Fatalf("phase times %d/%d, want both positive", res.NeuralNs, res.SymbolicNs)
	}
	if res.SymbolicShare <= 0 || res.SymbolicShare >= 1 {
		t.Fatalf("symbolic share %v, want in (0,1)", res.SymbolicShare)
	}
	if res.Balance <= 0 || res.Balance > 1 {
		t.Fatalf("balance %v, want in (0,1]", res.Balance)
	}
	if res.AttainPct <= 0 || res.AttainPct > 100 {
		t.Fatalf("attainment %v, want in (0,100]", res.AttainPct)
	}
	if res.L1HitPct < 0 || res.L1HitPct > 100 || res.L2HitPct < 0 || res.L2HitPct > 100 {
		t.Fatalf("hit rates %v/%v out of range", res.L1HitPct, res.L2HitPct)
	}
	if res.EnergyJ <= 0 || res.Cost <= 0 {
		t.Fatalf("energy %v / cost %v, want positive", res.EnergyJ, res.Cost)
	}
}

// TestEvaluateMonotonicity pins the directional physics of the model:
// more bandwidth and more compute never slow a point down, and a bigger
// chip always costs more.
func TestEvaluateMonotonicity(t *testing.T) {
	e := testEngine(t, Space{
		PeakGFLOPs: Axis{Values: []float64{2000, 8000}},
		MemBWGBs:   Axis{Values: []float64{100, 600}},
	})
	// Row-major: index = 2*iPeak + iBW.
	get := func(i int) PointResult {
		r := e.Evaluate(i)
		if r.Err != "" {
			t.Fatalf("point %d failed: %s", i, r.Err)
		}
		return r
	}
	slowSmall, fastSmall := get(0), get(1) // 2000 GFLOPs x {100, 600} GB/s
	slowBig, fastBig := get(2), get(3)     // 8000 GFLOPs x {100, 600} GB/s
	if fastSmall.LatencyNs > slowSmall.LatencyNs || fastBig.LatencyNs > slowBig.LatencyNs {
		t.Fatalf("more DRAM bandwidth slowed the point down")
	}
	if slowBig.LatencyNs > slowSmall.LatencyNs || fastBig.LatencyNs > fastSmall.LatencyNs {
		t.Fatalf("more compute slowed the point down")
	}
	if fastBig.Cost <= slowSmall.Cost {
		t.Fatalf("bigger chip (cost %v) should cost more than smaller (%v)", fastBig.Cost, slowSmall.Cost)
	}
}

// TestEvaluateCacheKnobsMatter pins that cache geometry feeds the latency
// model: a tiny L1+L2 must not beat a large one, all else equal.
func TestEvaluateCacheKnobsMatter(t *testing.T) {
	e := testEngine(t, Space{
		L1KB: Axis{Values: []float64{4, 128}},
		L2KB: Axis{Values: []float64{64, 8192}},
	})
	tiny, big := e.Evaluate(0), e.Evaluate(3)
	if tiny.Err != "" || big.Err != "" {
		t.Fatalf("points failed: %q %q", tiny.Err, big.Err)
	}
	if big.LatencyNs > tiny.LatencyNs {
		t.Fatalf("bigger caches (lat %d) slower than tiny ones (lat %d)", big.LatencyNs, tiny.LatencyNs)
	}
	if big.L2HitPct <= tiny.L2HitPct {
		t.Fatalf("bigger L2 hit rate %v should exceed tiny %v", big.L2HitPct, tiny.L2HitPct)
	}
}

func TestEvaluateDegeneratePointCarriesError(t *testing.T) {
	e := testEngine(t, Space{MemBWGBs: Axis{Values: []float64{0, 616}}})
	res := e.Evaluate(0)
	if res.Err == "" {
		t.Fatal("zero-bandwidth point should carry a diagnostic error")
	}
	if res.LatencyNs != 0 {
		t.Fatalf("failed point should carry no scores, got latency %d", res.LatencyNs)
	}
	if ok := e.Evaluate(1); ok.Err != "" {
		t.Fatalf("valid sibling point failed: %s", ok.Err)
	}
}

func TestProfileMemoization(t *testing.T) {
	e := testEngine(t, Space{PeakGFLOPs: Axis{Min: 1000, Max: 16000, Steps: 8}})
	for i := 0; i < e.Grid().Size(); i++ {
		e.Evaluate(i)
	}
	// Every point shares the base cache geometry: exactly one profile.
	if n := len(e.profiles); n != 1 {
		t.Fatalf("%d cache profiles simulated for a compute-only sweep, want 1", n)
	}
}

func TestEngineConcurrentEvaluate(t *testing.T) {
	e := testEngine(t, Space{
		PeakGFLOPs: Axis{Values: []float64{2000, 8000}},
		L1KB:       Axis{Values: []float64{32, 64, 128}},
	})
	want := make([]PointResult, e.Grid().Size())
	for i := range want {
		want[i] = testEngine(t, Space{
			PeakGFLOPs: Axis{Values: []float64{2000, 8000}},
			L1KB:       Axis{Values: []float64{32, 64, 128}},
		}).Evaluate(i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < e.Grid().Size(); i++ {
				if got := e.Evaluate(i); !reflect.DeepEqual(got, want[i]) {
					t.Errorf("concurrent Evaluate(%d) diverged", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestSweepShardingPartition(t *testing.T) {
	space := Space{
		PeakGFLOPs: Axis{Values: []float64{1000, 2000, 4000}},
		MemBWGBs:   Axis{Values: []float64{100, 300, 900}},
		L1KB:       Axis{Values: []float64{32, 128}},
	}
	e := testEngine(t, space)
	size := e.Grid().Size()

	full, err := e.Sweep(context.Background(), 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Evaluated != size || full.Failed != 0 {
		t.Fatalf("full sweep evaluated %d (failed %d), want %d/0", full.Evaluated, full.Failed, size)
	}
	if full.PointsPerSec <= 0 || full.ElapsedNs <= 0 {
		t.Fatalf("throughput not recorded: %+v", full)
	}

	const shards = 3
	seen := make(map[int]bool)
	var fronts [][]PointResult
	for s := 0; s < shards; s++ {
		var pts []PointResult
		sum, err := e.Sweep(context.Background(), s, shards, func(p PointResult) error {
			pts = append(pts, p)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if p.Index%shards != s {
				t.Fatalf("shard %d emitted index %d", s, p.Index)
			}
			if seen[p.Index] {
				t.Fatalf("index %d emitted by two shards", p.Index)
			}
			seen[p.Index] = true
		}
		fronts = append(fronts, sum.Front)
	}
	if len(seen) != size {
		t.Fatalf("shards covered %d indices, want %d", len(seen), size)
	}

	// The merged shard fronts equal the single-node front exactly.
	merged := MergeFronts(fronts...)
	if !reflect.DeepEqual(merged, full.Front) {
		t.Fatalf("merged shard fronts != full front:\n%+v\n%+v", merged, full.Front)
	}
}

func TestSweepShardIndexValidation(t *testing.T) {
	e := testEngine(t, Space{})
	if _, err := e.Sweep(context.Background(), 2, 2, nil); err == nil {
		t.Fatal("shard index == shard count should fail")
	}
	if _, err := e.Sweep(context.Background(), -1, 2, nil); err == nil {
		t.Fatal("negative shard index should fail")
	}
}

func TestSweepCancellation(t *testing.T) {
	e := testEngine(t, DefaultSpace())
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	_, err := e.Sweep(ctx, 0, 1, func(PointResult) error {
		n++
		if n == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n > 6 {
		t.Fatalf("sweep kept evaluating after cancel: %d points", n)
	}
}

func TestSweepEmitErrorAborts(t *testing.T) {
	e := testEngine(t, DefaultSpace())
	boom := errors.New("client went away")
	_, err := e.Sweep(context.Background(), 0, 1, func(PointResult) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want emit error", err)
	}
}

func TestSweepCountsFailedPoints(t *testing.T) {
	e := testEngine(t, Space{MemBWGBs: Axis{Values: []float64{0, 300, 900}}})
	sum, err := e.Sweep(context.Background(), 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Evaluated != 3 || sum.Failed != 1 {
		t.Fatalf("evaluated %d failed %d, want 3/1", sum.Evaluated, sum.Failed)
	}
	for _, p := range sum.Front {
		if p.Err != "" {
			t.Fatalf("failed point leaked into front: %+v", p)
		}
	}
}
