package dse

// The /v1/explore wire format is NDJSON: one Chunk per line, streamed as
// points are scored. A sweep response is
//
//	{"type":"meta", "meta":{...}}        — once, before any point
//	{"type":"point", "point":{...}}      — once per evaluated grid point
//	{"type":"summary", "summary":{...}}  — once, closing the stream
//
// Point chunks are forwarded verbatim by the routing tier (values are
// deterministic, so a retried shard's duplicate points are dropped by
// index); summary chunks are consumed by the router, which merges the
// partial fronts and emits its own closing summary.

// ChunkMeta opens a sweep stream: what is being swept and how it is
// sharded. Shards, set only by the router, is the number of per-replica
// shard streams the sweep was fanned out into.
type ChunkMeta struct {
	Workload   string `json:"workload"`
	Device     string `json:"device"`
	GridSize   int    `json:"grid_size"`
	ShardIndex int    `json:"shard_index"`
	ShardCount int    `json:"shard_count"`
	Shards     int    `json:"shards,omitempty"`
}

// Chunk is one NDJSON line of an explore stream. Exactly one of Meta,
// Point, Summary is set, per Type ("meta", "point", "summary").
type Chunk struct {
	Type    string       `json:"type"`
	Meta    *ChunkMeta   `json:"meta,omitempty"`
	Point   *PointResult `json:"point,omitempty"`
	Summary *Summary     `json:"summary,omitempty"`
}

// Artifact is the BENCH_explore.json schema: the sweep's headline numbers
// plus the trace-once/project-many payoff measured against full
// re-characterization. Written by nsbench -explore (in-process, with the
// re-characterization baseline) and cmd/nsexplore (over HTTP).
type Artifact struct {
	Workload     string        `json:"workload"`
	Device       string        `json:"device"`
	GridSize     int           `json:"grid_size"`
	Evaluated    int           `json:"evaluated"`
	Failed       int           `json:"failed"`
	ElapsedNs    int64         `json:"elapsed_ns"`
	PointsPerSec float64       `json:"points_per_sec"`
	FrontSize    int           `json:"front_size"`
	Front        []PointResult `json:"front"`

	// CharacterizeNs is the measured wall time of one full
	// characterization of the same workload; RecharPointsPerSec the sweep
	// rate it implies if every point re-ran the workload; and
	// ReprojectionSpeedup = PointsPerSec / RecharPointsPerSec — the
	// trace-once/project-many advantage (acceptance floor: 50x). Zero in
	// artifacts written from a plain HTTP sweep, which has no baseline.
	CharacterizeNs      int64   `json:"characterize_ns,omitempty"`
	RecharPointsPerSec  float64 `json:"rechar_points_per_sec,omitempty"`
	ReprojectionSpeedup float64 `json:"reprojection_speedup,omitempty"`
}
