package dse

import (
	"math/rand"
	"reflect"
	"testing"
)

func pt(index int, lat int64, cost float64) PointResult {
	return PointResult{Index: index, LatencyNs: lat, Cost: cost}
}

func TestDominates(t *testing.T) {
	a, b := pt(0, 10, 5), pt(1, 20, 7)
	if !Dominates(&a, &b) {
		t.Fatal("strictly better in both should dominate")
	}
	if Dominates(&b, &a) {
		t.Fatal("dominance is asymmetric")
	}
	c := pt(2, 10, 5)
	if Dominates(&a, &c) || Dominates(&c, &a) {
		t.Fatal("equal points must not dominate each other")
	}
	d := pt(3, 10, 7)
	if !Dominates(&a, &d) {
		t.Fatal("equal latency, better cost should dominate")
	}
	e := pt(4, 5, 50)
	if Dominates(&a, &e) || Dominates(&e, &a) {
		t.Fatal("trade-off points are incomparable")
	}
}

// bruteFront is the O(n^2) reference implementation.
func bruteFront(points []PointResult) []PointResult {
	var front []PointResult
	for i := range points {
		if points[i].Err != "" {
			continue
		}
		dominated := false
		for j := range points {
			if j != i && points[j].Err == "" && Dominates(&points[j], &points[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, points[i])
		}
	}
	if front == nil {
		return []PointResult{}
	}
	return front
}

func TestParetoFrontMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		points := make([]PointResult, n)
		for i := range points {
			// Small value ranges force plenty of exact ties.
			points[i] = pt(i, int64(rng.Intn(8)), float64(rng.Intn(8)))
			if rng.Intn(10) == 0 {
				points[i].Err = "degenerate"
			}
		}
		got := ParetoFront(points)
		want := bruteFront(points)
		// bruteFront preserves input order == index order, matching
		// ParetoFront's index sort.
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: front mismatch\n got %+v\nwant %+v", trial, got, want)
		}
	}
}

func TestParetoFrontProperties(t *testing.T) {
	if f := ParetoFront(nil); f == nil || len(f) != 0 {
		t.Fatalf("empty input: got %#v, want empty non-nil front", f)
	}
	if f := ParetoFront([]PointResult{{Index: 0, Err: "bad"}}); len(f) != 0 {
		t.Fatalf("all-failed input: got %+v, want empty front", f)
	}

	// Equal-(latency, cost) duplicates all survive, in index order.
	dup := []PointResult{pt(3, 10, 5), pt(1, 10, 5), pt(2, 99, 99)}
	f := ParetoFront(dup)
	if len(f) != 2 || f[0].Index != 1 || f[1].Index != 3 {
		t.Fatalf("duplicate survivors wrong: %+v", f)
	}

	// A strictly improving chain keeps only the last point... plus the
	// incomparable cheap one.
	chain := []PointResult{pt(0, 30, 3), pt(1, 20, 2), pt(2, 10, 1), pt(3, 40, 0.5)}
	f = ParetoFront(chain)
	if len(f) != 2 || f[0].Index != 2 || f[1].Index != 3 {
		t.Fatalf("chain front wrong: %+v", f)
	}

	// Input order never matters.
	shuffled := []PointResult{chain[3], chain[1], chain[0], chain[2]}
	if !reflect.DeepEqual(ParetoFront(shuffled), f) {
		t.Fatal("front depends on input order")
	}
}

func TestMergeFrontsEqualsGlobalFront(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(100)
		points := make([]PointResult, n)
		for i := range points {
			points[i] = pt(i, int64(rng.Intn(12)), float64(rng.Intn(12)))
		}
		global := ParetoFront(points)
		for _, shards := range []int{1, 2, 3, 5} {
			parts := make([][]PointResult, shards)
			for i := range points {
				s := i % shards
				parts[s] = append(parts[s], points[i])
			}
			fronts := make([][]PointResult, shards)
			for s := range parts {
				fronts[s] = ParetoFront(parts[s])
			}
			if merged := MergeFronts(fronts...); !reflect.DeepEqual(merged, global) {
				t.Fatalf("trial %d shards %d: merged front != global front", trial, shards)
			}
		}
	}
}
