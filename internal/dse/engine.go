package dse

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/neurosym/nsbench/internal/cachesim"
	"github.com/neurosym/nsbench/internal/hwsim"
	"github.com/neurosym/nsbench/internal/roofline"
	"github.com/neurosym/nsbench/internal/trace"
)

// sigEvent is one deduplicated operator-cost row of the trace signature:
// every trace event with the same (class, phase, h2d, flops, bytes) tuple
// projects to the same time on any device, so the signature stores the
// tuple once with a multiplicity instead of re-walking the raw event log
// per point.
type sigEvent struct {
	class hwsim.KernelClass
	phase trace.Phase
	h2d   bool
	flops int64
	bytes int64
	count int64
}

// signature is the compressed, device-independent form of a trace — all a
// projection needs, precomputed once so point evaluation never touches
// strings or the raw event slice.
type signature struct {
	events []sigEvent
	flops  int64 // totals, for roofline attainment
	bytes  int64

	// Per-class aggregates size the representative cache streams.
	classFlops [5]int64
	classBytes [5]int64
	classCount [5]int64
}

// buildSignature compresses tr. Identical cost rows are merged in first-
// appearance order, keeping the signature deterministic for a
// deterministic trace.
func buildSignature(tr *trace.Trace) signature {
	var sig signature
	type key struct {
		class hwsim.KernelClass
		phase trace.Phase
		h2d   bool
		flops int64
		bytes int64
	}
	index := make(map[key]int)
	for i := range tr.Events {
		e := &tr.Events[i]
		class := hwsim.ClassifyKernel(e.Kernel)
		k := key{
			class: class,
			phase: e.Phase,
			h2d:   e.Kernel == "memcpy_h2d" || e.Kernel == "memcpy_d2h",
			flops: e.FLOPs,
			bytes: e.Bytes,
		}
		if j, ok := index[k]; ok {
			sig.events[j].count++
		} else {
			index[k] = len(sig.events)
			sig.events = append(sig.events, sigEvent{
				class: k.class, phase: k.phase, h2d: k.h2d,
				flops: k.flops, bytes: k.bytes, count: 1,
			})
		}
		sig.flops += e.FLOPs
		sig.bytes += e.Bytes
		sig.classFlops[class] += e.FLOPs
		sig.classBytes[class] += e.Bytes
		sig.classCount[class]++
	}
	return sig
}

// geomKey identifies one cache-hierarchy geometry; hit rates depend on
// nothing else, so profiles are memoized under it — a sweep that varies
// only compute/bandwidth knobs simulates the cache exactly once.
type geomKey struct {
	l1KB, l2KB, ways, lineBytes int
}

// cacheProfile holds the simulated per-class L1/L2 hit rates for one
// geometry.
type cacheProfile struct {
	l1Hit [5]float64
	l2Hit [5]float64
}

// profileBudget caps each representative stream; hit rates converge well
// before this, and sweeps simulate one stream set per *geometry*, not per
// point, so the budget bounds sweep setup cost, not per-point cost.
const profileBudget = 1 << 16

// Engine evaluates grid points against one cached trace. Safe for
// concurrent use: the signature is immutable after construction and the
// geometry-profile memo is lock-guarded (simulation itself runs on cloned
// hierarchies, never shared ones).
type Engine struct {
	grid *Grid
	sig  signature

	mu       sync.Mutex
	profiles map[geomKey]*cacheProfile
}

// NewEngine builds an evaluation engine for grid over tr's signature.
func NewEngine(grid *Grid, tr *trace.Trace) *Engine {
	return &Engine{grid: grid, sig: buildSignature(tr), profiles: make(map[geomKey]*cacheProfile)}
}

// Grid returns the engine's resolved grid.
func (e *Engine) Grid() *Grid { return e.grid }

// profile returns the (memoized) cache profile for a geometry. The
// representative streams mirror hwsim.KernelStats: a register-blocked
// GEMM sized from the class's mean FLOP count, chained element-wise
// passes over the class's working set, random gathers over a table sized
// from the mean traffic.
func (e *Engine) profile(k geomKey) *cacheProfile {
	e.mu.Lock()
	p, ok := e.profiles[k]
	e.mu.Unlock()
	if ok {
		return p
	}
	p = e.simulate(k)
	e.mu.Lock()
	// A racing goroutine may have simulated the same geometry; both
	// results are identical (deterministic streams), so last-write wins.
	e.profiles[k] = p
	e.mu.Unlock()
	return p
}

func (e *Engine) simulate(k geomKey) *cacheProfile {
	p := &cacheProfile{}
	for class := hwsim.ClassGEMM; class <= hwsim.ClassOther; class++ {
		ci := int(class)
		if e.sig.classCount[ci] == 0 {
			continue
		}
		h := cachesim.NewHierarchy(
			cachesim.NewCache("L1", k.l1KB*1024, k.ways, k.lineBytes),
			cachesim.NewCache("L2", k.l2KB*1024, 16, k.lineBytes),
		)
		avgBytes := e.sig.classBytes[ci] / e.sig.classCount[ci]
		line := int64(k.lineBytes)
		switch class {
		case hwsim.ClassGEMM:
			dim := int(math.Cbrt(float64(e.sig.classFlops[ci]) / float64(e.sig.classCount[ci]) / 2))
			if dim < 8 {
				dim = 8
			}
			cachesim.GEMMStream(h, dim, dim, dim, 4, profileBudget)
		case hwsim.ClassEltwise:
			ws := avgBytes / 3
			if ws < line {
				ws = line
			}
			cachesim.EltwiseStream(h, 2, 2, ws, false, profileBudget)
		case hwsim.ClassGather:
			count := int(avgBytes / line)
			if count < 64 {
				count = 64
			}
			cachesim.GatherStream(h, avgBytes*4, count, 1, profileBudget)
		default: // copies and scalar symbolic code: pure streaming
			ws := avgBytes / 2
			if ws < line {
				ws = line
			}
			cachesim.EltwiseStream(h, 1, 1, ws, false, profileBudget)
		}
		st := h.Stats()
		p.l1Hit[ci] = st.L1HitRate
		p.l2Hit[ci] = st.L2HitRate
	}
	return p
}

// PointResult is one scored config point. Every field is a deterministic
// function of (base device, space, trace), so identical points computed on
// different replicas marshal to identical bytes — the property sharded
// sweeps rely on for dedupe and byte-identical front merges.
type PointResult struct {
	// Index is the point's global row-major grid index.
	Index int   `json:"index"`
	Knobs Knobs `json:"knobs"`

	// LatencyNs is the projected end-to-end latency on the derived device.
	LatencyNs  int64 `json:"latency_ns"`
	NeuralNs   int64 `json:"neural_ns"`
	SymbolicNs int64 `json:"symbolic_ns"`
	// SymbolicShare is the projected symbolic fraction; Balance is
	// 1 - |neural - symbolic| share, peaking at 1.0 when the config splits
	// time evenly across the phases (the paper's bottleneck criterion: a
	// good NS platform leaves neither phase dominant).
	SymbolicShare float64 `json:"symbolic_share"`
	Balance       float64 `json:"balance"`
	// AttainPct places the projected throughput against the derived
	// device's own roofline at the workload's aggregate intensity.
	AttainPct float64 `json:"attain_pct"`
	// L1HitPct/L2HitPct are traffic-weighted simulated hit rates for the
	// point's cache geometry.
	L1HitPct float64 `json:"l1_hit_pct"`
	L2HitPct float64 `json:"l2_hit_pct"`
	EnergyJ  float64 `json:"energy_j"`
	// Cost is the silicon area/cost proxy (see areaCost); the Pareto
	// front minimizes (LatencyNs, Cost).
	Cost float64 `json:"cost"`
	// Err marks a degenerate config that failed validation; such points
	// carry no scores and are excluded from fronts.
	Err string `json:"error,omitempty"`
}

// Evaluate scores one grid index. Degenerate configs come back with Err
// set rather than an error return: a sweep records them and moves on.
func (e *Engine) Evaluate(index int) PointResult {
	knobs := e.grid.Knobs(index)
	res := PointResult{Index: index, Knobs: knobs}
	dev, err := knobs.Device(e.grid.base)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	prof := e.profile(geomKey{knobs.L1KB, knobs.L2KB, knobs.Ways, knobs.LineBytes})

	var phase [2]float64 // projected seconds by trace.Phase
	var totalSec float64
	launch := dev.LaunchUs * 1e-6
	for i := range e.sig.events {
		ev := &e.sig.events[i]
		t := (e.eventSeconds(ev, dev, prof) + launch) * float64(ev.count)
		totalSec += t
		phase[ev.phase] += t
	}
	res.LatencyNs = int64(math.Round(totalSec * 1e9))
	res.NeuralNs = int64(math.Round(phase[trace.Neural] * 1e9))
	res.SymbolicNs = int64(math.Round(phase[trace.Symbolic] * 1e9))
	if totalSec > 0 {
		res.SymbolicShare = phase[trace.Symbolic] / totalSec
		res.Balance = 1 - math.Abs(phase[trace.Neural]-phase[trace.Symbolic])/totalSec
		achieved := float64(e.sig.flops) / totalSec / 1e9
		m := roofline.Model{PeakGFLOPs: dev.PeakFP32GFLOPs, MemBWGBs: dev.MemBWGBs}
		ai := 0.0
		if e.sig.bytes > 0 {
			ai = float64(e.sig.flops) / float64(e.sig.bytes)
		}
		if att := m.Attainable(ai); att > 0 {
			res.AttainPct = math.Min(100, 100*achieved/att)
		}
	}
	var wBytes, wL1, wL2 float64
	for c := 0; c < 5; c++ {
		b := float64(e.sig.classBytes[c])
		wBytes += b
		wL1 += b * prof.l1Hit[c]
		wL2 += b * prof.l2Hit[c]
	}
	if wBytes > 0 {
		res.L1HitPct = 100 * wL1 / wBytes
		res.L2HitPct = 100 * wL2 / wBytes
	}
	res.EnergyJ = totalSec * dev.TDPWatts
	res.Cost = areaCost(dev)
	return res
}

// eventSeconds is the cache-aware projected kernel time of one signature
// row on dev: the roofline max of compute time and hierarchical memory
// time. Memory time refines hwsim.Device.EventTime's flat-DRAM model with
// the simulated hit rates of the point's cache geometry — bytes served by
// L1/L2 move at on-chip bandwidth, only the simulated miss traffic pays
// DRAM — which is what makes cache-capacity knobs actually trade against
// bandwidth knobs in the projected latency.
func (e *Engine) eventSeconds(ev *sigEvent, dev hwsim.Device, prof *cacheProfile) float64 {
	var effC, effM float64
	switch ev.class {
	case hwsim.ClassGather:
		effC, effM = dev.EffGEMM, dev.EffGather
	case hwsim.ClassOther:
		effC, effM = dev.EffOther, dev.EffGather
	default: // GEMM, eltwise, copy
		effC, effM = dev.EffGEMM, dev.EffEltwise
	}
	if ev.h2d && dev.H2DGBs > 0 {
		return float64(ev.bytes) / (dev.H2DGBs * 1e9)
	}
	var tCompute float64
	if ev.flops > 0 {
		tCompute = float64(ev.flops) / (dev.PeakFP32GFLOPs * effC * 1e9)
	}
	var tMemory float64
	if ev.bytes > 0 {
		ci := int(ev.class)
		h1 := prof.l1Hit[ci]
		h2 := prof.l2Hit[ci]
		secPerByte := h1/(dev.L1BWGBs*1e9) +
			(1-h1)*h2/(dev.L2BWGBs*1e9) +
			(1-h1)*(1-h2)/(dev.MemBWGBs*effM*1e9)
		tMemory = float64(ev.bytes) * secPerByte
	}
	return math.Max(tCompute, tMemory)
}

// Summary closes a sweep (or a shard of one): counts, throughput, and the
// Pareto front over the evaluated points. ElapsedNs and PointsPerSec are
// wall-clock facts about this run; Front is deterministic and is the part
// cross-replica byte-identity is pinned on.
type Summary struct {
	Workload     string        `json:"workload"`
	Device       string        `json:"device"`
	GridSize     int           `json:"grid_size"`
	ShardIndex   int           `json:"shard_index"`
	ShardCount   int           `json:"shard_count"`
	Evaluated    int           `json:"evaluated"`
	Failed       int           `json:"failed"`
	ElapsedNs    int64         `json:"elapsed_ns"`
	PointsPerSec float64       `json:"points_per_sec"`
	FrontSize    int           `json:"front_size"`
	Front        []PointResult `json:"front"`
	// Errors lists shard-level failures (router aggregation only).
	Errors []string `json:"errors,omitempty"`
}

// Sweep evaluates this shard's slice of the grid — the indices congruent
// to shardIndex mod shardCount — emitting each point as it is scored and
// returning the shard summary with the partial Pareto front. A nil emit
// just collects. Sweep stops early (returning ctx.Err()) when the context
// is cancelled, e.g. a streaming client disconnecting.
func (e *Engine) Sweep(ctx context.Context, shardIndex, shardCount int, emit func(PointResult) error) (*Summary, error) {
	if shardCount <= 0 {
		shardCount = 1
	}
	if shardIndex < 0 || shardIndex >= shardCount {
		return nil, fmt.Errorf("dse: shard index %d out of range [0, %d)", shardIndex, shardCount)
	}
	start := time.Now()
	sum := &Summary{
		GridSize:   e.grid.Size(),
		ShardIndex: shardIndex,
		ShardCount: shardCount,
	}
	var points []PointResult
	for i := shardIndex; i < e.grid.Size(); i += shardCount {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res := e.Evaluate(i)
		sum.Evaluated++
		if res.Err != "" {
			sum.Failed++
		}
		points = append(points, res)
		if emit != nil {
			if err := emit(res); err != nil {
				return nil, err
			}
		}
	}
	sum.Front = ParetoFront(points)
	sum.FrontSize = len(sum.Front)
	elapsed := time.Since(start)
	sum.ElapsedNs = elapsed.Nanoseconds()
	if s := elapsed.Seconds(); s > 0 {
		sum.PointsPerSec = float64(sum.Evaluated) / s
	}
	return sum, nil
}
