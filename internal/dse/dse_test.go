package dse

import (
	"math"
	"strings"
	"testing"

	"github.com/neurosym/nsbench/internal/hwsim"
)

func TestAxisResolve(t *testing.T) {
	near := func(a, b float64) bool { return math.Abs(a-b) < 1e-9*math.Max(1, math.Abs(b)) }
	cases := []struct {
		name string
		axis Axis
		base float64
		want []float64
		err  string
	}{
		{"unset pins base", Axis{}, 42, []float64{42}, ""},
		{"explicit values", Axis{Values: []float64{3, 1, 2}}, 0, []float64{3, 1, 2}, ""},
		{"linear range", Axis{Min: 0, Max: 10, Steps: 5}, 0, []float64{0, 2.5, 5, 7.5, 10}, ""},
		{"log range", Axis{Min: 1, Max: 8, Steps: 4, Log: true}, 0, []float64{1, 2, 4, 8}, ""},
		{"steps=1 degenerates to min", Axis{Min: 7, Max: 9, Steps: 1}, 0, []float64{7}, ""},
		{"values exclude range", Axis{Values: []float64{1}, Steps: 2}, 0, nil, "mutually exclusive"},
		{"range without steps", Axis{Min: 1, Max: 2}, 0, nil, "without steps"},
		{"negative steps", Axis{Min: 1, Max: 2, Steps: -3}, 0, nil, "must be positive"},
		{"max not above min", Axis{Min: 5, Max: 5, Steps: 2}, 0, nil, "max > min"},
		{"log needs positive min", Axis{Min: 0, Max: 8, Steps: 3, Log: true}, 0, nil, "min > 0"},
	}
	for _, tc := range cases {
		got, err := tc.axis.resolve("x", tc.base)
		if tc.err != "" {
			if err == nil || !strings.Contains(err.Error(), tc.err) {
				t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if !near(got[i], tc.want[i]) {
				t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
				break
			}
		}
	}

	// Endpoints of a log range are pinned exactly, not within an ulp.
	vals, err := Axis{Min: 60, Max: 1200, Steps: 4, Log: true}.resolve("bw", 0)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 60 || vals[3] != 1200 {
		t.Fatalf("log endpoints not pinned: %v", vals)
	}
}

func TestResolveGridEnumeration(t *testing.T) {
	base := hwsim.RTX2080Ti
	space := Space{
		PeakGFLOPs: Axis{Values: []float64{1000, 2000, 4000}},
		L1KB:       Axis{Values: []float64{64, 128}},
	}
	g, err := Resolve(base, space)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 6 {
		t.Fatalf("grid size = %d, want 6", g.Size())
	}
	// Row-major: the first axis (peak_gflops) varies slowest.
	wantPeak := []float64{1000, 1000, 2000, 2000, 4000, 4000}
	wantL1 := []int{64, 128, 64, 128, 64, 128}
	for i := 0; i < g.Size(); i++ {
		k := g.Knobs(i)
		if k.PeakGFLOPs != wantPeak[i] || k.L1KB != wantL1[i] {
			t.Fatalf("index %d: knobs %+v, want peak %v l1 %v", i, k, wantPeak[i], wantL1[i])
		}
		// Unswept knobs pin the base device / canonical defaults.
		if k.MemBWGBs != base.MemBWGBs || k.PEs != 1 || k.FreqScale != 1 ||
			k.DataflowEff != 1 || k.L2KB != base.L2KB || k.Ways != 4 || k.LineBytes != base.LineBytes {
			t.Fatalf("index %d: unswept knobs not pinned to base: %+v", i, k)
		}
	}
}

func TestResolveRejectsBadBase(t *testing.T) {
	bad := hwsim.RTX2080Ti
	bad.MemBWGBs = 0
	if _, err := Resolve(bad, Space{}); err == nil || !strings.Contains(err.Error(), "base device") {
		t.Fatalf("Resolve with invalid base: err = %v", err)
	}
}

func TestGridKnobsPanicsOutOfRange(t *testing.T) {
	g, err := Resolve(hwsim.RTX2080Ti, Space{})
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{-1, g.Size()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Knobs(%d) did not panic", idx)
				}
			}()
			g.Knobs(idx)
		}()
	}
}

func TestKnobsDeviceDerivation(t *testing.T) {
	base := hwsim.RTX2080Ti
	k := Knobs{
		PeakGFLOPs: 2000, MemBWGBs: 300, PEs: 2, FreqScale: 1.5, DataflowEff: 1,
		L1KB: 128, L2KB: 4096, Ways: 8, LineBytes: 64,
	}
	d, err := k.Device(base)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.PeakFP32GFLOPs, 2000*2*1.5; got != want {
		t.Errorf("PeakFP32GFLOPs = %v, want %v (peak x PEs x freq)", got, want)
	}
	if d.MemBWGBs != 300 {
		t.Errorf("MemBWGBs = %v, want 300 (separate clock domain)", d.MemBWGBs)
	}
	if got, want := d.L1BWGBs, base.L1BWGBs*2*1.5; got != want {
		t.Errorf("L1BWGBs = %v, want %v", got, want)
	}
	if got, want := d.L2BWGBs, base.L2BWGBs*1.5; got != want {
		t.Errorf("L2BWGBs = %v, want %v (freq only, not PEs)", got, want)
	}
	if got, want := d.LaunchUs, base.LaunchUs/1.5; got != want {
		t.Errorf("LaunchUs = %v, want %v", got, want)
	}
	if d.L1KB != 128 || d.L2KB != 4096 || d.LineBytes != 64 {
		t.Errorf("cache geometry not applied: %+v", d)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("derived device invalid: %v", err)
	}

	// DataflowEff scales efficiencies but clamps at 1.
	k.DataflowEff = 10
	d, err = k.Device(base)
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]float64{
		{d.EffGEMM, base.EffGEMM}, {d.EffEltwise, base.EffEltwise},
		{d.EffGather, base.EffGather}, {d.EffOther, base.EffOther},
	}
	for _, p := range pairs {
		if want := math.Min(1, p[1]*10); p[0] != want {
			t.Errorf("eff with DataflowEff=10: got %v, want min(1, %v*10) = %v", p[0], p[1], want)
		}
	}

	// TDP tracks the area proxy: doubling compute area raises TDP.
	big := Knobs{PeakGFLOPs: 2 * base.PeakFP32GFLOPs, MemBWGBs: base.MemBWGBs,
		PEs: 1, FreqScale: 1, DataflowEff: 1,
		L1KB: base.L1KB, L2KB: base.L2KB, Ways: 4, LineBytes: base.LineBytes}
	bd, err := big.Device(base)
	if err != nil {
		t.Fatal(err)
	}
	if bd.TDPWatts <= base.TDPWatts {
		t.Errorf("TDP %v should exceed base %v for a bigger chip", bd.TDPWatts, base.TDPWatts)
	}
}

func TestKnobsDeviceDegenerateCorners(t *testing.T) {
	base := hwsim.RTX2080Ti
	ok := Knobs{PeakGFLOPs: 1000, MemBWGBs: 100, PEs: 1, FreqScale: 1, DataflowEff: 1,
		L1KB: 64, L2KB: 2048, Ways: 4, LineBytes: 64}
	mutate := []struct {
		name string
		mut  func(k *Knobs)
		want string
	}{
		{"zero PEs", func(k *Knobs) { k.PEs = 0 }, "pes"},
		{"negative freq", func(k *Knobs) { k.FreqScale = -1 }, "freq_scale"},
		{"NaN dataflow", func(k *Knobs) { k.DataflowEff = math.NaN() }, "dataflow_eff"},
		{"zero peak", func(k *Knobs) { k.PeakGFLOPs = 0 }, "PeakFP32GFLOPs"},
		{"negative bw", func(k *Knobs) { k.MemBWGBs = -5 }, "MemBWGBs"},
		{"zero L1", func(k *Knobs) { k.L1KB = 0 }, "L1KB"},
		{"zero ways", func(k *Knobs) { k.Ways = 0 }, "cache_ways"},
		{"zero line", func(k *Knobs) { k.LineBytes = 0 }, "LineBytes"},
	}
	if _, err := ok.Device(base); err != nil {
		t.Fatalf("baseline knobs should derive cleanly: %v", err)
	}
	for _, m := range mutate {
		k := ok
		m.mut(&k)
		_, err := k.Device(base)
		if err == nil || !strings.Contains(err.Error(), m.want) {
			t.Errorf("%s: err = %v, want mention of %q", m.name, err, m.want)
		}
	}
}

func TestDefaultSpaceResolves(t *testing.T) {
	g, err := Resolve(hwsim.RTX2080Ti, DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 256 {
		t.Fatalf("default space size = %d, want 256", g.Size())
	}
	// Every default-space point must derive a valid device: the stock sweep
	// has no degenerate corners.
	for i := 0; i < g.Size(); i++ {
		if _, err := g.Knobs(i).Device(g.Base()); err != nil {
			t.Fatalf("default point %d fails derivation: %v", i, err)
		}
	}
}
