package dse

import (
	"math"
	"sort"
)

// Dominates reports whether a Pareto-dominates b under the sweep's two
// minimized objectives, projected latency and area cost: no worse in
// both, strictly better in at least one. Points with identical
// (latency, cost) do not dominate each other — both survive to the front.
func Dominates(a, b *PointResult) bool {
	if a.LatencyNs > b.LatencyNs || a.Cost > b.Cost {
		return false
	}
	return a.LatencyNs < b.LatencyNs || a.Cost < b.Cost
}

// ParetoFront returns the non-dominated subset of points under
// (LatencyNs, Cost) minimization, sorted by ascending grid index. Failed
// points (Err set) are excluded. The computation is a deterministic
// function of the point set: sort by latency then cost, sweep keeping
// strict cost improvements, keep equal-(latency, cost) duplicates.
//
// O(n log n), so it stays cheap even for very large sweeps.
func ParetoFront(points []PointResult) []PointResult {
	valid := make([]PointResult, 0, len(points))
	for _, p := range points {
		if p.Err == "" {
			valid = append(valid, p)
		}
	}
	if len(valid) == 0 {
		return []PointResult{}
	}
	sort.Slice(valid, func(i, j int) bool {
		if valid[i].LatencyNs != valid[j].LatencyNs {
			return valid[i].LatencyNs < valid[j].LatencyNs
		}
		if valid[i].Cost != valid[j].Cost {
			return valid[i].Cost < valid[j].Cost
		}
		return valid[i].Index < valid[j].Index
	})
	front := make([]PointResult, 0, 8)
	// Within an equal-latency group only the cost minima can survive (a
	// costlier same-latency point is dominated by them); across groups a
	// group's minima survive iff they strictly undercut every lower-latency
	// point's cost (bestCost). Equal-(latency, cost) duplicates all pass
	// both tests and all survive.
	bestCost := math.Inf(1)
	for i := 0; i < len(valid); {
		j := i
		for j < len(valid) && valid[j].LatencyNs == valid[i].LatencyNs {
			j++
		}
		if groupMin := valid[i].Cost; groupMin < bestCost {
			for k := i; k < j && valid[k].Cost == groupMin; k++ {
				front = append(front, valid[k])
			}
			bestCost = groupMin
		}
		i = j
	}
	sort.Slice(front, func(i, j int) bool { return front[i].Index < front[j].Index })
	return front
}

// MergeFronts merges per-shard partial fronts into the global front. The
// merge is exact, not approximate: a globally non-dominated point is
// necessarily non-dominated within its own shard (its shard's points are
// a subset of the global comparisons), so it appears in its partial front
// and survives the re-screen; conversely any globally dominated point in
// the union is eliminated by a dominator — if p's dominator q was itself
// pruned inside q's shard, q's own dominator r dominates p transitively,
// and walking that finite chain ends at a shard-front member. Hence
// merging partial fronts loses nothing and admits nothing: the result
// equals the front of the full point set, byte for byte.
func MergeFronts(fronts ...[]PointResult) []PointResult {
	var union []PointResult
	for _, f := range fronts {
		union = append(union, f...)
	}
	return ParetoFront(union)
}
