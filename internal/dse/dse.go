// Package dse is the design-space-exploration engine: it turns one
// recorded characterization trace into projected scores for an entire
// grid of hypothetical hardware configurations.
//
// This is the step the follow-on papers (NSFlow, arXiv:2504.19323; the
// characterization→architecture study, arXiv:2409.13153) build on top of
// the ISPASS 2024 workload data: the characterization is the *input* to an
// automated architecture search. The engine's load-bearing property is
// trace-once/project-many — a workload is executed and traced exactly
// once, then every config point is evaluated by analytically re-projecting
// the cached trace (microseconds per point) instead of re-running the
// workload (hundreds of milliseconds). That asymmetry is what lets a sweep
// cover hundreds to tens of thousands of configurations interactively and
// saturate a serving cluster with useful work.
//
// A Space declares per-knob axes (explicit values or linear/log ranges)
// over hwsim.Device compute/bandwidth knobs and cachesim hierarchy
// geometry; Resolve expands it against a base device into a deterministic
// row-major Grid. Engine.Evaluate scores one grid index: projected
// latency (cache-aware roofline event model), neural/symbolic phase
// balance (the paper's key bottleneck split), roofline attainment, energy,
// and a silicon area/cost proxy. ParetoFront and MergeFronts reduce point
// clouds to latency×cost Pareto fronts; merging partial (per-shard) fronts
// provably preserves the global front, which is what lets a router fan a
// sweep out across replicas and still return the exact single-node answer.
//
// Everything in this package is deterministic: the same space, base device
// and trace produce bit-identical results on every replica, so sharded
// sweeps can be merged, retried and deduplicated byte-for-byte.
package dse

import (
	"fmt"
	"math"

	"github.com/neurosym/nsbench/internal/hwsim"
)

// Axis parameterizes one knob of the config space. Exactly one form is
// used: explicit Values, or a Min/Max/Steps range (Log selects geometric
// spacing). A zero Axis pins the knob to the base device's value.
type Axis struct {
	// Values lists explicit grid points; takes precedence over the range.
	Values []float64 `json:"values,omitempty"`
	// Min..Max with Steps points (linear, or geometric when Log is set).
	// Steps == 1 degenerates to [Min].
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	Steps int     `json:"steps,omitempty"`
	Log   bool    `json:"log,omitempty"`
}

// resolve expands the axis into concrete grid values, defaulting to the
// base value for an unset axis.
func (a Axis) resolve(name string, base float64) ([]float64, error) {
	if len(a.Values) > 0 {
		if a.Steps != 0 || a.Min != 0 || a.Max != 0 {
			return nil, fmt.Errorf("dse: axis %s: values and min/max/steps are mutually exclusive", name)
		}
		return append([]float64(nil), a.Values...), nil
	}
	if a.Steps == 0 {
		if a.Min != 0 || a.Max != 0 {
			return nil, fmt.Errorf("dse: axis %s: min/max given without steps", name)
		}
		return []float64{base}, nil
	}
	if a.Steps < 0 {
		return nil, fmt.Errorf("dse: axis %s: steps must be positive, got %d", name, a.Steps)
	}
	if a.Steps == 1 {
		return []float64{a.Min}, nil
	}
	if !(a.Max > a.Min) {
		return nil, fmt.Errorf("dse: axis %s: need max > min, got [%v, %v]", name, a.Min, a.Max)
	}
	if a.Log && a.Min <= 0 {
		return nil, fmt.Errorf("dse: axis %s: log spacing needs min > 0, got %v", name, a.Min)
	}
	out := make([]float64, a.Steps)
	for i := range out {
		t := float64(i) / float64(a.Steps-1)
		if a.Log {
			out[i] = a.Min * math.Exp(t*math.Log(a.Max/a.Min))
		} else {
			out[i] = a.Min + t*(a.Max-a.Min)
		}
	}
	// Pin the endpoints exactly: Exp/Log round-trips can wobble the last
	// ulp, and grid values should be reproducible from the spec by eye.
	out[a.Steps-1] = a.Max
	return out, nil
}

// Space is a parameterized hardware config space over a base device. Each
// axis sweeps one knob; unset axes keep the base device's value (so the
// zero Space is the single-point grid containing the base device itself).
//
// Device knobs:
//
//   - peak_gflops — the FP32 compute ceiling, GFLOP/s.
//   - mem_bw_gbs — DRAM bandwidth, GB/s.
//   - pes — processing-element parallelism, as a multiplier over the base
//     device (base 1.0): compute ceiling and aggregate L1 bandwidth scale
//     linearly with PE count.
//   - freq_scale — clock scaling (base 1.0): compute ceiling and on-chip
//     (L1/L2) bandwidths scale up, launch/dispatch overhead scales down;
//     DRAM bandwidth is a separate clock domain and does not move.
//   - dataflow_eff — dataflow/mapping quality multiplier (base 1.0)
//     applied to every efficiency factor, clamped to 1: a value above the
//     base models the paper's Recommendation-2 reconfigurable dataflow,
//     below it a poorly matched mapping.
//
// Cache hierarchy knobs (cachesim geometry):
//
//   - l1_kb, l2_kb — per-level capacities, KB.
//   - cache_ways — L1 associativity (L2 stays at the simulator's 16 ways).
//   - line_bytes — cache line / transaction size.
type Space struct {
	PeakGFLOPs  Axis `json:"peak_gflops,omitempty"`
	MemBWGBs    Axis `json:"mem_bw_gbs,omitempty"`
	PEs         Axis `json:"pes,omitempty"`
	FreqScale   Axis `json:"freq_scale,omitempty"`
	DataflowEff Axis `json:"dataflow_eff,omitempty"`
	L1KB        Axis `json:"l1_kb,omitempty"`
	L2KB        Axis `json:"l2_kb,omitempty"`
	Ways        Axis `json:"cache_ways,omitempty"`
	LineBytes   Axis `json:"line_bytes,omitempty"`
}

// axisCount is the number of knobs a Space sweeps, in canonical order.
const axisCount = 9

// Knobs is one concrete assignment of every swept knob — a single grid
// point, before derivation into an hwsim.Device.
type Knobs struct {
	PeakGFLOPs  float64 `json:"peak_gflops"`
	MemBWGBs    float64 `json:"mem_bw_gbs"`
	PEs         float64 `json:"pes"`
	FreqScale   float64 `json:"freq_scale"`
	DataflowEff float64 `json:"dataflow_eff"`
	L1KB        int     `json:"l1_kb"`
	L2KB        int     `json:"l2_kb"`
	Ways        int     `json:"cache_ways"`
	LineBytes   int     `json:"line_bytes"`
}

// Grid is a resolved config space: the cartesian product of the resolved
// axes in canonical order, enumerated row-major (the first axis varies
// slowest). Grid enumeration is deterministic, which is what gives every
// point a stable global index that sharding, deduplication and Pareto
// tie-breaking all key on.
type Grid struct {
	base hwsim.Device
	axes [axisCount][]float64
	size int
}

// Resolve expands a space against its base device into a Grid.
func Resolve(base hwsim.Device, space Space) (*Grid, error) {
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("dse: base device: %w", err)
	}
	specs := []struct {
		name string
		axis Axis
		base float64
	}{
		{"peak_gflops", space.PeakGFLOPs, base.PeakFP32GFLOPs},
		{"mem_bw_gbs", space.MemBWGBs, base.MemBWGBs},
		{"pes", space.PEs, 1},
		{"freq_scale", space.FreqScale, 1},
		{"dataflow_eff", space.DataflowEff, 1},
		{"l1_kb", space.L1KB, float64(base.L1KB)},
		{"l2_kb", space.L2KB, float64(base.L2KB)},
		{"cache_ways", space.Ways, 4},
		{"line_bytes", space.LineBytes, float64(base.LineBytes)},
	}
	g := &Grid{base: base, size: 1}
	for i, s := range specs {
		vals, err := s.axis.resolve(s.name, s.base)
		if err != nil {
			return nil, err
		}
		g.axes[i] = vals
		g.size *= len(vals)
	}
	return g, nil
}

// Size returns the number of grid points.
func (g *Grid) Size() int { return g.size }

// Base returns the device the space was resolved against.
func (g *Grid) Base() hwsim.Device { return g.base }

// Knobs decodes a row-major grid index into its knob assignment. Index
// must be in [0, Size).
func (g *Grid) Knobs(index int) Knobs {
	if index < 0 || index >= g.size {
		panic(fmt.Sprintf("dse: grid index %d out of range [0, %d)", index, g.size))
	}
	var v [axisCount]float64
	rem := index
	for i := axisCount - 1; i >= 0; i-- {
		n := len(g.axes[i])
		v[i] = g.axes[i][rem%n]
		rem /= n
	}
	return Knobs{
		PeakGFLOPs:  v[0],
		MemBWGBs:    v[1],
		PEs:         v[2],
		FreqScale:   v[3],
		DataflowEff: v[4],
		L1KB:        int(math.Round(v[5])),
		L2KB:        int(math.Round(v[6])),
		Ways:        int(math.Round(v[7])),
		LineBytes:   int(math.Round(v[8])),
	}
}

// Device derives the hypothetical platform a knob assignment describes,
// validating the result. Degenerate grid corners (zero bandwidth, negative
// ceilings, non-positive scalars) return a diagnostic error — the caller
// records them as failed points instead of crashing the sweep.
func (k Knobs) Device(base hwsim.Device) (hwsim.Device, error) {
	bad := func(field string, v float64) (hwsim.Device, error) {
		return hwsim.Device{}, fmt.Errorf("dse: knob %s must be positive and finite, got %v", field, v)
	}
	if k.PEs <= 0 || math.IsNaN(k.PEs) || math.IsInf(k.PEs, 0) {
		return bad("pes", k.PEs)
	}
	if k.FreqScale <= 0 || math.IsNaN(k.FreqScale) || math.IsInf(k.FreqScale, 0) {
		return bad("freq_scale", k.FreqScale)
	}
	if k.DataflowEff <= 0 || math.IsNaN(k.DataflowEff) || math.IsInf(k.DataflowEff, 0) {
		return bad("dataflow_eff", k.DataflowEff)
	}
	d := base
	d.Name = base.Name + " (dse)"
	d.PeakFP32GFLOPs = k.PeakGFLOPs * k.PEs * k.FreqScale
	d.MemBWGBs = k.MemBWGBs
	d.L1BWGBs = base.L1BWGBs * k.PEs * k.FreqScale
	d.L2BWGBs = base.L2BWGBs * k.FreqScale
	d.LaunchUs = base.LaunchUs / k.FreqScale
	d.L1KB, d.L2KB, d.LineBytes = k.L1KB, k.L2KB, k.LineBytes
	eff := func(e float64) float64 { return math.Min(1, e*k.DataflowEff) }
	d.EffGEMM = eff(base.EffGEMM)
	d.EffEltwise = eff(base.EffEltwise)
	d.EffGather = eff(base.EffGather)
	d.EffOther = eff(base.EffOther)
	// TDP scales with the silicon the config pays for, so projected energy
	// tracks the same area proxy the Pareto front trades latency against.
	if baseCost := areaCost(base); baseCost > 0 {
		d.TDPWatts = base.TDPWatts * areaCost(d) / baseCost
	}
	if err := d.Validate(); err != nil {
		return hwsim.Device{}, err
	}
	if k.Ways <= 0 {
		return bad("cache_ways", float64(k.Ways))
	}
	return d, nil
}

// areaCost is the silicon area/cost proxy a config point is scored with:
// compute area scales with the FLOP ceiling, the memory PHY with DRAM
// bandwidth, and SRAM area with cache capacity (L1 is a multi-ported,
// per-PE structure, so it is weighted heavier per KB than L2). The units
// are arbitrary but fixed — only ratios between points matter, and the
// base RTX 2080 Ti lands near 160 for scale.
func areaCost(d hwsim.Device) float64 {
	return d.PeakFP32GFLOPs/100 + d.MemBWGBs/50 + float64(d.L1KB)/64 + float64(d.L2KB)/512
}

// DefaultSpace is the stock sweep nsbench -explore and nsexplore use when
// no spec is given: 4 compute ceilings × 4 DRAM bandwidths × 2 PE counts ×
// 2 L1 sizes × 2 L2 sizes × 2 dataflow efficiencies = 256 points spanning
// roughly Jetson-class to beyond-2080Ti-class machines.
func DefaultSpace() Space {
	return Space{
		PeakGFLOPs:  Axis{Min: 1000, Max: 16000, Steps: 4, Log: true},
		MemBWGBs:    Axis{Min: 60, Max: 1200, Steps: 4, Log: true},
		PEs:         Axis{Values: []float64{1, 2}},
		DataflowEff: Axis{Values: []float64{1, 1.5}},
		L1KB:        Axis{Values: []float64{64, 128}},
		L2KB:        Axis{Values: []float64{2048, 8192}},
	}
}
