// Package hwsim provides analytical hardware models of the platforms used
// in the ISPASS 2024 study — Intel Xeon Silver 4114, Nvidia RTX 2080 Ti,
// Jetson Xavier NX and Jetson TX2 — and projects recorded operator traces
// onto them.
//
// The environment running nsbench has none of those devices, so per the
// substitution rule the projection is a calibrated first-order model: each
// event's kernel time is the roofline-limited maximum of its compute and
// memory time under per-kernel-class efficiency factors, plus a per-kernel
// launch overhead; host↔device events are charged to the interconnect.
// The model reproduces the derived quantities the paper reports (latency
// ratios across devices, bound classification, utilization percentages),
// which is what Figs. 2b/3c and Table IV require.
package hwsim

import (
	"fmt"
	"math"

	"github.com/neurosym/nsbench/internal/roofline"
)

// Device is an analytical platform model.
type Device struct {
	Name           string
	PeakFP32GFLOPs float64 // peak FP32 throughput
	MemBWGBs       float64 // DRAM bandwidth
	L1KB           int     // per-SM / per-core L1 data cache
	L2KB           int     // last-level on-chip cache
	LineBytes      int     // cache line / transaction size
	L1BWGBs        float64 // aggregate L1 bandwidth
	L2BWGBs        float64 // aggregate L2 bandwidth
	LaunchUs       float64 // per-kernel launch/dispatch overhead, µs
	H2DGBs         float64 // host→device interconnect bandwidth (0 = unified memory)
	TDPWatts       float64 // board power for energy estimates

	// Efficiency factors: achievable fraction of the respective peak for
	// each kernel class. Calibrated against the utilization figures the
	// paper reports (Table IV).
	EffGEMM    float64 // compute efficiency of dense GEMM/conv kernels
	EffEltwise float64 // DRAM-bandwidth efficiency of streaming kernels
	EffGather  float64 // effective bandwidth fraction of irregular access
	EffOther   float64 // scalar/control-heavy symbolic code efficiency
}

// The modeled platforms of the study.
var (
	// XeonSilver4114: 10 cores, AVX-512 @ ~2.2 GHz base, 6× DDR4-2400.
	XeonSilver4114 = Device{
		Name: "Xeon Silver 4114", PeakFP32GFLOPs: 704, MemBWGBs: 115,
		L1KB: 32, L2KB: 1024, LineBytes: 64, L1BWGBs: 3000, L2BWGBs: 1500, LaunchUs: 0.1, H2DGBs: 0, TDPWatts: 85,
		EffGEMM: 0.60, EffEltwise: 0.55, EffGather: 0.10, EffOther: 0.05,
	}
	// RTX2080Ti: 68 SMs Turing, 616 GB/s GDDR6, PCIe 3.0 x16 host link.
	RTX2080Ti = Device{
		Name: "RTX 2080 Ti", PeakFP32GFLOPs: 13450, MemBWGBs: 616,
		L1KB: 64, L2KB: 5632, LineBytes: 128, L1BWGBs: 13400, L2BWGBs: 2200, LaunchUs: 5, H2DGBs: 12, TDPWatts: 250,
		EffGEMM: 0.70, EffEltwise: 0.88, EffGather: 0.08, EffOther: 0.02,
	}
	// XavierNX: 384-core Volta @ 1100 MHz, LPDDR4x 51.2 GB/s, 20 W mode.
	XavierNX = Device{
		Name: "Xavier NX", PeakFP32GFLOPs: 845, MemBWGBs: 51.2,
		L1KB: 64, L2KB: 512, LineBytes: 128, L1BWGBs: 1000, L2BWGBs: 500, LaunchUs: 12, H2DGBs: 0, TDPWatts: 20,
		EffGEMM: 0.55, EffEltwise: 0.75, EffGather: 0.06, EffOther: 0.015,
	}
	// JetsonTX2: 256-core Pascal @ 1300 MHz, LPDDR4 59.7 GB/s shared with
	// the CPU (effective GPU share lower), 15 W.
	JetsonTX2 = Device{
		Name: "Jetson TX2", PeakFP32GFLOPs: 665, MemBWGBs: 59.7,
		L1KB: 48, L2KB: 512, LineBytes: 128, L1BWGBs: 750, L2BWGBs: 350, LaunchUs: 18, H2DGBs: 0, TDPWatts: 15,
		EffGEMM: 0.45, EffEltwise: 0.55, EffGather: 0.05, EffOther: 0.01,
	}
	// NSAccel is a hypothetical neuro-symbolic accelerator embodying the
	// paper's Recommendations 2 and 6: reconfigurable processing units that
	// serve both neural GEMM and vector-symbolic kernels, dedicated
	// gather/scatter engines for irregular symbolic access, near-memory
	// execution of logic operations, fused dispatch (negligible launch
	// overhead) and a unified memory (no host↔device copies). Raw compute
	// and bandwidth match the RTX 2080 Ti so projected gains isolate the
	// architectural recommendations rather than added silicon.
	NSAccel = Device{
		Name: "NS-Accel (hypothetical)", PeakFP32GFLOPs: 13450, MemBWGBs: 616,
		L1KB: 128, L2KB: 8192, LineBytes: 128, L1BWGBs: 13400, L2BWGBs: 3000, LaunchUs: 0.2, H2DGBs: 0, TDPWatts: 200,
		EffGEMM: 0.75, EffEltwise: 0.95, EffGather: 0.60, EffOther: 0.50,
	}
)

// Validate checks that the device describes a physically meaningful
// platform: strictly positive compute ceiling, memory bandwidths and cache
// geometry, non-negative overheads, and efficiency factors in (0, 1].
// Design-space sweeps synthesize devices from parameter grids, and a grid
// corner can easily degenerate (zero bandwidth, negative FLOP/s ceiling);
// such configs must fail here with a diagnostic error instead of
// propagating Inf/NaN through every projected latency downstream.
func (d Device) Validate() error {
	pos := func(field string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return fmt.Errorf("hwsim: device %q: %s must be positive and finite, got %v", d.Name, field, v)
		}
		return nil
	}
	nonNeg := func(field string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("hwsim: device %q: %s must be non-negative and finite, got %v", d.Name, field, v)
		}
		return nil
	}
	checks := []error{
		pos("PeakFP32GFLOPs", d.PeakFP32GFLOPs),
		pos("MemBWGBs", d.MemBWGBs),
		pos("L1KB", float64(d.L1KB)),
		pos("L2KB", float64(d.L2KB)),
		pos("LineBytes", float64(d.LineBytes)),
		pos("L1BWGBs", d.L1BWGBs),
		pos("L2BWGBs", d.L2BWGBs),
		nonNeg("LaunchUs", d.LaunchUs),
		nonNeg("H2DGBs", d.H2DGBs),
		nonNeg("TDPWatts", d.TDPWatts),
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	for _, eff := range []struct {
		field string
		v     float64
	}{
		{"EffGEMM", d.EffGEMM}, {"EffEltwise", d.EffEltwise},
		{"EffGather", d.EffGather}, {"EffOther", d.EffOther},
	} {
		if math.IsNaN(eff.v) || eff.v <= 0 || eff.v > 1 {
			return fmt.Errorf("hwsim: device %q: %s must be in (0, 1], got %v", d.Name, eff.field, eff.v)
		}
	}
	return nil
}

// Roofline returns the device's single-ceiling roofline model (peak FP32
// compute, peak DRAM bandwidth) — the Fig. 3c axes the measured kernel
// benchmarks are placed against.
func (d Device) Roofline() roofline.Model {
	return roofline.Model{Name: d.Name, PeakGFLOPs: d.PeakFP32GFLOPs, MemBWGBs: d.MemBWGBs}
}

// EdgeDevices lists the embedded platforms of Fig. 2b.
func EdgeDevices() []Device { return []Device{JetsonTX2, XavierNX, RTX2080Ti} }

// AllDevices lists every modeled platform.
func AllDevices() []Device {
	return []Device{XeonSilver4114, RTX2080Ti, XavierNX, JetsonTX2}
}

// DeviceByName looks a device up by name.
func DeviceByName(name string) (Device, error) {
	for _, d := range AllDevices() {
		if d.Name == name {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("hwsim: unknown device %q", name)
}

// KernelClass groups trace kernels into cost-model classes.
type KernelClass int

// Kernel classes in cost-model terms.
const (
	ClassGEMM    KernelClass = iota // dense GEMM, conv
	ClassEltwise                    // streaming vector/element-wise
	ClassGather                     // irregular access
	ClassCopy                       // bulk copies, host/device transfers
	ClassOther                      // scalar symbolic/control code
)

// String returns the class label.
func (k KernelClass) String() string {
	switch k {
	case ClassGEMM:
		return "gemm"
	case ClassEltwise:
		return "eltwise"
	case ClassGather:
		return "gather"
	case ClassCopy:
		return "copy"
	default:
		return "other"
	}
}

// ClassifyKernel maps a trace kernel label to its cost class.
func ClassifyKernel(kernel string) KernelClass {
	switch kernel {
	case "sgemm_nn", "conv2d", "spmm", "sddmm":
		return ClassGEMM
	// GEMV streams its matrix once with no tile reuse: cost-wise it is a
	// (wide) streaming vector kernel, which is exactly why codebook
	// cleanup queries are memory-bound.
	case "sgemv", "spmv", "vectorized_elem", "elementwise", "relu_nn", "softmax", "reduce", "pool", "circular_conv":
		return ClassEltwise
	case "gather", "coalesce":
		return ClassGather
	case "memcpy", "memcpy_h2d", "memcpy_d2h", "transform":
		return ClassCopy
	default:
		return ClassOther
	}
}
