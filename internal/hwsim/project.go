package hwsim

import (
	"time"

	"github.com/neurosym/nsbench/internal/trace"
)

// EventTime estimates the execution time of one trace event on the device:
// the roofline-limited maximum of compute time and memory time under the
// kernel class's efficiency factors, plus the launch overhead, plus
// interconnect time for host↔device copies.
func (d Device) EventTime(e *trace.Event) time.Duration {
	class := ClassifyKernel(e.Kernel)
	var effC, effM float64
	switch class {
	case ClassGEMM:
		effC, effM = d.EffGEMM, d.EffEltwise
	case ClassEltwise:
		effC, effM = d.EffGEMM, d.EffEltwise
	case ClassGather:
		effC, effM = d.EffGEMM, d.EffGather
	case ClassCopy:
		effC, effM = d.EffGEMM, d.EffEltwise
	default:
		effC, effM = d.EffOther, d.EffGather
	}
	var tCompute, tMemory float64 // seconds
	if e.FLOPs > 0 {
		tCompute = float64(e.FLOPs) / (d.PeakFP32GFLOPs * effC * 1e9)
	}
	if e.Bytes > 0 {
		tMemory = float64(e.Bytes) / (d.MemBWGBs * effM * 1e9)
	}
	t := tCompute
	if tMemory > t {
		t = tMemory
	}
	// Host↔device transfers cross the interconnect instead of DRAM
	// (unified-memory devices have H2DGBs == 0 and keep the DRAM time).
	if (e.Kernel == "memcpy_h2d" || e.Kernel == "memcpy_d2h") && d.H2DGBs > 0 {
		t = float64(e.Bytes) / (d.H2DGBs * 1e9)
	}
	// Symbolic "Others" ops on throughput devices pay control-flow
	// serialization already captured by EffOther; all kernels pay launch.
	t += d.LaunchUs * 1e-6
	return time.Duration(t * float64(time.Second))
}

// Projection summarizes a trace projected onto one device.
type Projection struct {
	Device   Device
	Total    time.Duration
	ByPhase  [2]time.Duration
	EnergyJ  float64
	Launches int
}

// ProjectTrace estimates a whole trace's execution on the device.
func (d Device) ProjectTrace(t *trace.Trace) Projection {
	p := Projection{Device: d}
	for i := range t.Events {
		e := &t.Events[i]
		dt := d.EventTime(e)
		p.Total += dt
		p.ByPhase[e.Phase] += dt
		p.Launches++
	}
	p.EnergyJ = p.Total.Seconds() * d.TDPWatts
	return p
}

// PhaseShare returns the projected fraction of time in phase ph.
func (p Projection) PhaseShare(ph trace.Phase) float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.ByPhase[ph]) / float64(p.Total)
}

// Speedup returns how much faster this projection is than other
// (>1 means this device is faster). A zero-duration receiver — an empty
// trace, or a degenerate synthesized device that projected no time —
// yields 0 rather than +Inf: sweep grids hit such configs routinely, and
// a sentinel 0 keeps ratio columns finite and sortable. A zero-duration
// other likewise yields 0 (there is nothing to be faster than).
func (p Projection) Speedup(other Projection) float64 {
	if p.Total == 0 || other.Total == 0 {
		return 0
	}
	return float64(other.Total) / float64(p.Total)
}
