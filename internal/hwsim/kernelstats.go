package hwsim

import (
	"math"
	"time"

	"github.com/neurosym/nsbench/internal/cachesim"
	"github.com/neurosym/nsbench/internal/trace"
)

// KernelStats is the Table-IV row for one kernel class executed on a
// device: compute, memory and communication characteristics.
type KernelStats struct {
	Kernel string
	Class  KernelClass
	Time   time.Duration

	ComputeThroughputPct float64 // issue-slot utilization of the SM pipes
	ALUUtilPct           float64 // arithmetic-unit utilization
	L1ThroughputPct      float64 // L1 bandwidth utilization
	L2ThroughputPct      float64 // L2 bandwidth utilization
	L1HitRatePct         float64 // from cache simulation
	L2HitRatePct         float64
	DRAMBWUtilPct        float64

	FLOPs, AlgBytes, DRAMBytes int64
	Events                     int

	// Measured-execution counters, from the events' recorded wall-clock
	// durations rather than the analytic device model. MeasuredTime is the
	// summed kernel time on the machine that ran the trace;
	// AchievedGFLOPs = FLOPs/MeasuredTime is the kernel class's achieved
	// throughput; RooflinePct places that throughput against this device
	// model's roofline ceiling at the class's algorithmic intensity
	// (achieved/attainable, capped at 100). Zero when the trace carries no
	// durations (projected traces).
	MeasuredTime   time.Duration
	AchievedGFLOPs float64
	RooflinePct    float64
}

// simBudget caps cache-simulation stream lengths; hit rates converge well
// before this many accesses.
const simBudget = 1 << 21

// gemmTileReuse models shared-memory/register tiling of real GEMM kernels:
// the fraction of algorithmic traffic that actually reaches the L1/LSU path
// is 1/gemmTileReuse.
const gemmTileReuse = 8

// KernelStats derives hardware counters for the events of one kernel label
// running on the device. The cache hierarchy behaviour is simulated with a
// synthetic address stream matching the kernel class; timing uses an
// issue/L1/L2/DRAM multi-ceiling roofline.
func (d Device) KernelStats(kernel string, events []trace.Event) KernelStats {
	ks := KernelStats{Kernel: kernel, Class: ClassifyKernel(kernel), Events: len(events)}
	if len(events) == 0 {
		return ks
	}
	var flops, bytes int64
	var measured time.Duration
	for i := range events {
		flops += events[i].FLOPs
		bytes += events[i].Bytes
		measured += events[i].Dur
	}
	ks.FLOPs, ks.AlgBytes = flops, bytes
	ks.MeasuredTime = measured
	if measured > 0 {
		ks.AchievedGFLOPs = float64(flops) / measured.Seconds() / 1e9
		if att := d.Roofline().Attainable(intensity(flops, bytes)); att > 0 {
			ks.RooflinePct = clampPct(100 * ks.AchievedGFLOPs / att)
		}
	}

	// Simulate the cache behaviour of a representative stream.
	h := cachesim.NewHierarchy(
		cachesim.NewCache("L1", d.L1KB*1024, 4, d.LineBytes),
		cachesim.NewCache("L2", d.L2KB*1024, 16, d.LineBytes),
	)
	avgBytes := bytes / int64(len(events))
	switch ks.Class {
	case ClassGEMM:
		// Infer a cube-ish GEMM size from the mean FLOP count.
		dim := int(math.Cbrt(float64(flops) / float64(len(events)) / 2))
		if dim < 8 {
			dim = 8
		}
		cachesim.GEMMStream(h, dim, dim, dim, 4, simBudget)
	case ClassEltwise:
		reads, inPlace := 2, false
		if kernel == "relu_nn" || kernel == "elementwise" || kernel == "softmax" || kernel == "reduce" || kernel == "pool" {
			// Unary kernels update their tensor in place after the read —
			// the write hits the freshly fetched line.
			reads, inPlace = 1, true
		}
		// Consecutive element-wise kernels touch distinct tensors, so the
		// class's effective working set is its aggregate traffic: two
		// passes model the producer→consumer reuse of chained kernels.
		ws := bytes / int64(reads+1) / 2
		if ws < int64(d.LineBytes) {
			ws = int64(d.LineBytes)
		}
		cachesim.EltwiseStream(h, reads, 2, ws, inPlace, simBudget)
	case ClassGather:
		count := int(avgBytes / int64(d.LineBytes))
		if count < 64 {
			count = 64
		}
		cachesim.GatherStream(h, avgBytes*4, count, 1, simBudget)
	default:
		// Copies and scalar code: pure streaming, one read one write.
		cachesim.EltwiseStream(h, 1, 1, maxI64(avgBytes/2, int64(d.LineBytes)), false, simBudget)
	}
	st := h.Stats()
	ks.L1HitRatePct = 100 * st.L1HitRate
	ks.L2HitRatePct = 100 * st.L2HitRate

	// Scale simulated traffic ratios up to the class's algorithmic totals.
	l1Traffic := float64(bytes)
	if ks.Class == ClassGEMM {
		l1Traffic /= gemmTileReuse // tiling filters traffic before L1
	}
	l2Ratio, dramRatio := 0.0, 0.0
	if st.L1Accesses > 0 {
		l2Ratio = float64(st.L2Accesses) / float64(st.L1Accesses)
		dramRatio = float64(st.DRAMBytes) / (float64(st.L1Accesses) * float64(d.LineBytes))
	}
	l2Traffic := l1Traffic * l2Ratio
	dramTraffic := l1Traffic * dramRatio
	ks.DRAMBytes = int64(dramTraffic)

	// Multi-ceiling timing: instruction issue, L1, L2, DRAM.
	memWords := float64(bytes) / 4
	if ks.Class == ClassGEMM {
		memWords /= gemmTileReuse
	}
	peakIssue := d.PeakFP32GFLOPs * 1e9
	tIssue := (float64(flops) + memWords) / (peakIssue * 0.95)
	tL1 := l1Traffic / (d.L1BWGBs * 1e9)
	tL2 := l2Traffic / (d.L2BWGBs * 1e9)
	tDram := dramTraffic / (d.MemBWGBs * 1e9)
	// Kernel counters describe in-kernel behaviour, as Nsight Compute
	// reports them: launch gaps are excluded (EventTime includes them).
	t := math.Max(math.Max(tIssue, tL1), math.Max(tL2, tDram))
	ks.Time = time.Duration(t * float64(time.Second))
	if t <= 0 {
		return ks
	}

	ks.ComputeThroughputPct = clampPct(100 * (float64(flops) + memWords) / (t * peakIssue))
	ks.ALUUtilPct = clampPct(100 * float64(flops) / (t * peakIssue))
	ks.L1ThroughputPct = clampPct(100 * l1Traffic / (t * d.L1BWGBs * 1e9))
	ks.L2ThroughputPct = clampPct(100 * l2Traffic / (t * d.L2BWGBs * 1e9))
	ks.DRAMBWUtilPct = clampPct(100 * dramTraffic / (t * d.MemBWGBs * 1e9))
	return ks
}

// KernelTable derives Table-IV rows for the given kernel labels from a
// trace, preserving label order. Labels with no events yield zero rows.
func (d Device) KernelTable(t *trace.Trace, kernels []string) []KernelStats {
	byKernel := make(map[string][]trace.Event)
	for _, e := range t.Events {
		byKernel[e.Kernel] = append(byKernel[e.Kernel], e)
	}
	out := make([]KernelStats, 0, len(kernels))
	for _, k := range kernels {
		out = append(out, d.KernelStats(k, byKernel[k]))
	}
	return out
}

func clampPct(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// intensity is arithmetic intensity in FLOPs/byte (0 when traffic is 0).
func intensity(flops, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(flops) / float64(bytes)
}
