package hwsim

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/neurosym/nsbench/internal/trace"
)

func TestDeviceByName(t *testing.T) {
	d, err := DeviceByName("RTX 2080 Ti")
	if err != nil || d.PeakFP32GFLOPs != 13450 {
		t.Fatalf("DeviceByName = %+v, %v", d, err)
	}
	if _, err := DeviceByName("TPU v9"); err == nil {
		t.Fatal("unknown device must error")
	}
	if len(AllDevices()) != 4 || len(EdgeDevices()) != 3 {
		t.Fatal("device lists wrong")
	}
}

func TestClassifyKernel(t *testing.T) {
	cases := map[string]KernelClass{
		"sgemm_nn":        ClassGEMM,
		"conv2d":          ClassGEMM,
		"spmm":            ClassGEMM,
		"sgemv":           ClassEltwise,
		"relu_nn":         ClassEltwise,
		"vectorized_elem": ClassEltwise,
		"circular_conv":   ClassEltwise,
		"gather":          ClassGather,
		"memcpy_h2d":      ClassCopy,
		"logic":           ClassOther,
		"":                ClassOther,
	}
	for k, want := range cases {
		if got := ClassifyKernel(k); got != want {
			t.Fatalf("ClassifyKernel(%q) = %v, want %v", k, got, want)
		}
	}
	if ClassGEMM.String() != "gemm" || ClassOther.String() != "other" {
		t.Fatal("class strings wrong")
	}
}

func TestEventTimeComputeVsMemoryBound(t *testing.T) {
	// A big GEMM: compute-bound everywhere.
	gemm := &trace.Event{Kernel: "sgemm_nn", FLOPs: 2e9, Bytes: 12e6}
	// A symbolic element-wise op: memory-bound.
	elt := &trace.Event{Kernel: "vectorized_elem", FLOPs: 1e6, Bytes: 12e6}

	d := RTX2080Ti
	tg := d.EventTime(gemm)
	te := d.EventTime(elt)
	// GEMM time ≈ flops/(peak*eff) + launch.
	wantG := 2e9/(13450e9*0.70) + 5e-6
	if ratio := tg.Seconds() / wantG; ratio < 0.99 || ratio > 1.01 {
		t.Fatalf("gemm time = %v, want ≈%v s", tg, wantG)
	}
	// Eltwise time ≈ bytes/(bw*eff) + launch.
	wantE := 12e6/(616e9*0.88) + 5e-6
	if ratio := te.Seconds() / wantE; ratio < 0.99 || ratio > 1.01 {
		t.Fatalf("eltwise time = %v, want ≈%v s", te, wantE)
	}
}

func TestEventTimeH2DUsesInterconnect(t *testing.T) {
	ev := &trace.Event{Kernel: "memcpy_h2d", Bytes: 120e6}
	d := RTX2080Ti
	got := d.EventTime(ev).Seconds()
	want := 120e6/(12e9) + 5e-6
	if r := got / want; r < 0.99 || r > 1.01 {
		t.Fatalf("h2d time = %v, want %v", got, want)
	}
	// Unified-memory devices keep the DRAM path.
	tx2 := JetsonTX2.EventTime(ev).Seconds()
	wantTX2 := 120e6/(59.7e9*0.55) + 18e-6
	if r := tx2 / wantTX2; r < 0.99 || r > 1.01 {
		t.Fatalf("tx2 h2d time = %v, want %v", tx2, wantTX2)
	}
}

func mkTrace() *trace.Trace {
	tr := trace.New()
	tr.Append(trace.Event{Kernel: "conv2d", Category: trace.Convolution, Phase: trace.Neural, FLOPs: 5e8, Bytes: 5e6})
	tr.Append(trace.Event{Kernel: "sgemm_nn", Category: trace.MatMul, Phase: trace.Neural, FLOPs: 2e8, Bytes: 3e6})
	for i := 0; i < 20; i++ {
		tr.Append(trace.Event{Kernel: "vectorized_elem", Category: trace.VectorEltwise, Phase: trace.Symbolic, FLOPs: 1e6, Bytes: 24e6})
	}
	tr.Append(trace.Event{Kernel: "logic", Category: trace.Other, Phase: trace.Symbolic, FLOPs: 2e6, Bytes: 1e6})
	return tr
}

func TestProjectTraceOrdering(t *testing.T) {
	tr := mkTrace()
	rtx := RTX2080Ti.ProjectTrace(tr)
	xavier := XavierNX.ProjectTrace(tr)
	tx2 := JetsonTX2.ProjectTrace(tr)
	if !(tx2.Total > xavier.Total && xavier.Total > rtx.Total) {
		t.Fatalf("device ordering violated: tx2=%v xavier=%v rtx=%v", tx2.Total, xavier.Total, rtx.Total)
	}
	// The paper's Fig. 2b shape: TX2 an order of magnitude slower than RTX.
	if s := rtx.Speedup(tx2); s < 5 {
		t.Fatalf("RTX vs TX2 speedup = %v, want > 5", s)
	}
	if rtx.Launches != tr.Len() {
		t.Fatalf("launch count = %d", rtx.Launches)
	}
	if rtx.EnergyJ <= 0 {
		t.Fatal("energy must be positive")
	}
}

func TestProjectionSymbolicDominance(t *testing.T) {
	// This trace is symbolic-heavy in bytes; on every device the symbolic
	// phase should dominate the projection (the Fig. 2a/2b observation).
	tr := mkTrace()
	for _, d := range AllDevices() {
		p := d.ProjectTrace(tr)
		if share := p.PhaseShare(trace.Symbolic); share < 0.5 {
			t.Fatalf("%s: symbolic share = %v, want > 0.5", d.Name, share)
		}
	}
}

func TestProjectionZero(t *testing.T) {
	p := RTX2080Ti.ProjectTrace(trace.New())
	if p.Total != 0 || p.PhaseShare(trace.Neural) != 0 {
		t.Fatal("empty trace projection must be zero")
	}
	if p.Speedup(p) != 0 {
		t.Fatal("zero-total speedup must be 0")
	}
}

func TestKernelStatsTableIVShape(t *testing.T) {
	// Build a synthetic NVSA-like trace: one large GEMM, several ReLU
	// passes, and many large symbolic element-wise ops.
	// GEMM sized so its operands stream past L1 but stay L2-resident
	// (dim ≈ 630, B ≈ 1.6 MB vs 5.5 MB L2), as in the NVSA frontend.
	tr := trace.New()
	tr.Append(trace.Event{Kernel: "sgemm_nn", FLOPs: 5e8, Bytes: 4.8e6})
	for i := 0; i < 6; i++ {
		tr.Append(trace.Event{Kernel: "relu_nn", FLOPs: 2e6, Bytes: 16e6})
	}
	for i := 0; i < 30; i++ {
		tr.Append(trace.Event{Kernel: "vectorized_elem", FLOPs: 4e6, Bytes: 48e6})
		tr.Append(trace.Event{Kernel: "elementwise", FLOPs: 2e6, Bytes: 16e6})
	}
	rows := RTX2080Ti.KernelTable(tr, []string{"sgemm_nn", "relu_nn", "vectorized_elem", "elementwise"})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	gemm, relu, vec, elt := rows[0], rows[1], rows[2], rows[3]

	// Neural kernels: high compute/ALU utilization, low DRAM pressure.
	if gemm.ALUUtilPct < 50 {
		t.Fatalf("gemm ALU util = %v, want high", gemm.ALUUtilPct)
	}
	if gemm.DRAMBWUtilPct > 40 {
		t.Fatalf("gemm DRAM util = %v, want low", gemm.DRAMBWUtilPct)
	}
	// Symbolic kernels: the paper's signature — ALU < 10%, DRAM ~ saturated.
	for _, s := range []KernelStats{vec, elt} {
		if s.ALUUtilPct > 10 {
			t.Fatalf("%s ALU util = %v, want < 10", s.Kernel, s.ALUUtilPct)
		}
		if s.DRAMBWUtilPct < 60 {
			t.Fatalf("%s DRAM util = %v, want high", s.Kernel, s.DRAMBWUtilPct)
		}
		if s.ComputeThroughputPct > 20 {
			t.Fatalf("%s compute throughput = %v, want low", s.Kernel, s.ComputeThroughputPct)
		}
	}
	// GEMM cache signature: L1 hit low, L2 hit high.
	if gemm.L1HitRatePct > 25 {
		t.Fatalf("gemm L1 hit = %v, want low", gemm.L1HitRatePct)
	}
	if gemm.L2HitRatePct < 50 {
		t.Fatalf("gemm L2 hit = %v, want high", gemm.L2HitRatePct)
	}
	// ReLU in-place signature: ~50% L1 hit.
	if relu.L1HitRatePct < 40 || relu.L1HitRatePct > 60 {
		t.Fatalf("relu L1 hit = %v, want ~50", relu.L1HitRatePct)
	}
	// Compute throughput ordering: neural kernels ≫ symbolic kernels.
	if gemm.ComputeThroughputPct < 5*vec.ComputeThroughputPct {
		t.Fatalf("CT ordering violated: gemm %v vs vec %v", gemm.ComputeThroughputPct, vec.ComputeThroughputPct)
	}
}

func TestKernelStatsEmpty(t *testing.T) {
	ks := RTX2080Ti.KernelStats("sgemm_nn", nil)
	if ks.Events != 0 || ks.Time != 0 {
		t.Fatalf("empty kernel stats = %+v", ks)
	}
}

func TestEventTimeIncludesLaunch(t *testing.T) {
	tiny := &trace.Event{Kernel: "elementwise", FLOPs: 10, Bytes: 40}
	d := JetsonTX2
	if got := d.EventTime(tiny); got < 18*time.Microsecond {
		t.Fatalf("tiny kernel must pay launch overhead, got %v", got)
	}
}

func TestKernelStatsMeasuredFields(t *testing.T) {
	// One GEMM event with a recorded wall-clock duration: 2e9 FLOPs in
	// 500ms = 4 achieved GFLOP/s. AI = 2e9/8e6 = 250 flops/byte, far past
	// every device's ridge, so the ceiling is the compute peak.
	tr := trace.New()
	tr.Append(trace.Event{Kernel: "sgemm_nn", FLOPs: 2e9, Bytes: 8e6, Dur: 500 * time.Millisecond})
	ks := XeonSilver4114.KernelStats("sgemm_nn", tr.Events)
	if ks.MeasuredTime != 500*time.Millisecond {
		t.Fatalf("MeasuredTime = %v", ks.MeasuredTime)
	}
	if ks.AchievedGFLOPs < 3.99 || ks.AchievedGFLOPs > 4.01 {
		t.Fatalf("AchievedGFLOPs = %v, want 4", ks.AchievedGFLOPs)
	}
	want := 100 * 4.0 / XeonSilver4114.PeakFP32GFLOPs
	if diff := ks.RooflinePct - want; diff < -0.01 || diff > 0.01 {
		t.Fatalf("RooflinePct = %v, want %v", ks.RooflinePct, want)
	}

	// No durations: measured fields stay zero (projected traces).
	tr2 := trace.New()
	tr2.Append(trace.Event{Kernel: "sgemm_nn", FLOPs: 2e9, Bytes: 8e6})
	ks2 := XeonSilver4114.KernelStats("sgemm_nn", tr2.Events)
	if ks2.MeasuredTime != 0 || ks2.AchievedGFLOPs != 0 || ks2.RooflinePct != 0 {
		t.Fatalf("projected trace measured fields = %v %v %v", ks2.MeasuredTime, ks2.AchievedGFLOPs, ks2.RooflinePct)
	}
}

func TestDeviceRoofline(t *testing.T) {
	m := RTX2080Ti.Roofline()
	if m.PeakGFLOPs != RTX2080Ti.PeakFP32GFLOPs || m.MemBWGBs != RTX2080Ti.MemBWGBs {
		t.Fatalf("roofline model %+v does not match device", m)
	}
	// A memory-bound point: AI below the ridge, ceiling is AI·BW.
	p := m.PlaceMeasured("eltwise", 1e9, 1e9, time.Second)
	if p.Bound != 0 { // roofline.MemoryBound
		t.Fatalf("AI=1 on 2080Ti should be memory-bound, got %v", p.Bound)
	}
	if p.PerfGFLOPs != 1 {
		t.Fatalf("PerfGFLOPs = %v, want 1", p.PerfGFLOPs)
	}
}

func TestDeviceValidate(t *testing.T) {
	for _, d := range AllDevices() {
		if err := d.Validate(); err != nil {
			t.Fatalf("modeled device %s fails validation: %v", d.Name, err)
		}
	}
	if err := NSAccel.Validate(); err != nil {
		t.Fatalf("NSAccel fails validation: %v", err)
	}

	base := RTX2080Ti
	cases := []struct {
		name   string
		mutate func(*Device)
		want   string // substring of the diagnostic
	}{
		{"zero peak", func(d *Device) { d.PeakFP32GFLOPs = 0 }, "PeakFP32GFLOPs"},
		{"negative peak", func(d *Device) { d.PeakFP32GFLOPs = -1 }, "PeakFP32GFLOPs"},
		{"zero bw", func(d *Device) { d.MemBWGBs = 0 }, "MemBWGBs"},
		{"negative bw", func(d *Device) { d.MemBWGBs = -500 }, "MemBWGBs"},
		{"nan bw", func(d *Device) { d.MemBWGBs = math.NaN() }, "MemBWGBs"},
		{"inf peak", func(d *Device) { d.PeakFP32GFLOPs = math.Inf(1) }, "PeakFP32GFLOPs"},
		{"zero l1", func(d *Device) { d.L1KB = 0 }, "L1KB"},
		{"negative l2", func(d *Device) { d.L2KB = -64 }, "L2KB"},
		{"zero line", func(d *Device) { d.LineBytes = 0 }, "LineBytes"},
		{"zero l1bw", func(d *Device) { d.L1BWGBs = 0 }, "L1BWGBs"},
		{"zero l2bw", func(d *Device) { d.L2BWGBs = 0 }, "L2BWGBs"},
		{"negative launch", func(d *Device) { d.LaunchUs = -1 }, "LaunchUs"},
		{"negative h2d", func(d *Device) { d.H2DGBs = -1 }, "H2DGBs"},
		{"negative tdp", func(d *Device) { d.TDPWatts = -1 }, "TDPWatts"},
		{"zero eff", func(d *Device) { d.EffGEMM = 0 }, "EffGEMM"},
		{"eff above one", func(d *Device) { d.EffEltwise = 1.5 }, "EffEltwise"},
		{"negative eff", func(d *Device) { d.EffGather = -0.1 }, "EffGather"},
		{"nan eff", func(d *Device) { d.EffOther = math.NaN() }, "EffOther"},
	}
	for _, tc := range cases {
		d := base
		tc.mutate(&d)
		err := d.Validate()
		if err == nil {
			t.Fatalf("%s: Validate() = nil, want error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: diagnostic %q does not name field %s", tc.name, err, tc.want)
		}
	}
}

func TestSpeedupZeroDurationGuards(t *testing.T) {
	a := Projection{Total: time.Second}
	b := Projection{Total: 2 * time.Second}
	if got := a.Speedup(b); got != 2 {
		t.Fatalf("Speedup = %v, want 2", got)
	}
	zero := Projection{}
	// Neither direction may produce Inf or NaN from a degenerate projection.
	for _, got := range []float64{zero.Speedup(b), b.Speedup(zero), zero.Speedup(zero)} {
		if got != 0 {
			t.Fatalf("zero-duration Speedup = %v, want sentinel 0", got)
		}
	}
}
