package trace

import "time"

// Graph is the operator dependency DAG reconstructed from tensor IDs:
// an edge u→v exists when event v consumed a tensor most recently produced
// by event u. It backs the paper's operation-and-dataflow analysis (Fig. 4).
type Graph struct {
	N       int     // number of events/nodes
	Adj     [][]int // Adj[u] lists successors of u
	Parents [][]int // Parents[v] lists predecessors of v
	events  []Event
}

// BuildGraph reconstructs the dependency DAG of a trace.
func BuildGraph(t *Trace) *Graph {
	n := len(t.Events)
	g := &Graph{
		N:       n,
		Adj:     make([][]int, n),
		Parents: make([][]int, n),
		events:  t.Events,
	}
	producer := make(map[uint64]int) // tensor ID -> event that most recently produced it
	for v := range t.Events {
		e := &t.Events[v]
		seen := make(map[int]bool)
		for _, id := range e.Inputs {
			if u, ok := producer[id]; ok && u != v && !seen[u] {
				seen[u] = true
				g.Adj[u] = append(g.Adj[u], v)
				g.Parents[v] = append(g.Parents[v], u)
			}
		}
		for _, id := range e.Outputs {
			producer[id] = v
		}
	}
	return g
}

// Event returns the event at node i.
func (g *Graph) Event(i int) *Event { return &g.events[i] }

// Edges returns the total edge count.
func (g *Graph) Edges() int {
	n := 0
	for _, a := range g.Adj {
		n += len(a)
	}
	return n
}

// CriticalPath returns the longest-duration dependency chain through the
// DAG as event indices in execution order, along with its total duration.
// Because events are logged in execution order and an edge always points
// from an earlier to a later event, a single forward pass suffices.
func (g *Graph) CriticalPath() ([]int, time.Duration) {
	if g.N == 0 {
		return nil, 0
	}
	best := make([]time.Duration, g.N)
	prev := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		prev[v] = -1
		best[v] = g.events[v].Dur
		for _, u := range g.Parents[v] {
			if cand := best[u] + g.events[v].Dur; cand > best[v] {
				best[v] = cand
				prev[v] = u
			}
		}
	}
	end := 0
	for v := 1; v < g.N; v++ {
		if best[v] > best[end] {
			end = v
		}
	}
	var path []int
	for v := end; v != -1; v = prev[v] {
		path = append(path, v)
	}
	// Reverse into execution order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, best[end]
}

// PathPhaseShare returns the fraction of the given path's duration spent in
// each phase. This quantifies the paper's observation that symbolic
// computation lies on the critical path of end-to-end inference.
func (g *Graph) PathPhaseShare(path []int) map[Phase]float64 {
	var total time.Duration
	per := make(map[Phase]time.Duration)
	for _, v := range path {
		e := &g.events[v]
		total += e.Dur
		per[e.Phase] += e.Dur
	}
	out := make(map[Phase]float64, len(per))
	if total == 0 {
		return out
	}
	for p, d := range per {
		out[p] = float64(d) / float64(total)
	}
	return out
}

// CrossPhaseEdges counts dependency edges that cross from one phase into
// the other, split by direction. A neural→symbolic edge means symbolic
// computation consumes neural results (the NVSA/VSAIT/PrAE pattern); a
// symbolic→neural edge means symbolic knowledge is compiled into the
// neural structure (the LNN/LTN/NLM/ZeroC pattern).
func (g *Graph) CrossPhaseEdges() (neuralToSymbolic, symbolicToNeural int) {
	for u, succ := range g.Adj {
		for _, v := range succ {
			pu, pv := g.events[u].Phase, g.events[v].Phase
			switch {
			case pu == Neural && pv == Symbolic:
				neuralToSymbolic++
			case pu == Symbolic && pv == Neural:
				symbolicToNeural++
			}
		}
	}
	return
}

// MaxWidth estimates available operator-level parallelism: it returns the
// maximum number of events whose dependency depth is equal — i.e. the widest
// antichain layer under the longest-path layering.
func (g *Graph) MaxWidth() int {
	depth := make([]int, g.N)
	counts := make(map[int]int)
	maxW := 0
	for v := 0; v < g.N; v++ {
		d := 0
		for _, u := range g.Parents[v] {
			if depth[u]+1 > d {
				d = depth[u] + 1
			}
		}
		depth[v] = d
		counts[d]++
		if counts[d] > maxW {
			maxW = counts[d]
		}
	}
	return maxW
}

// Depth returns the dependency depth of the graph (longest chain by hops).
func (g *Graph) Depth() int {
	depth := make([]int, g.N)
	maxD := 0
	for v := 0; v < g.N; v++ {
		d := 0
		for _, u := range g.Parents[v] {
			if depth[u]+1 > d {
				d = depth[u] + 1
			}
		}
		depth[v] = d
		if d > maxD {
			maxD = d
		}
	}
	if g.N == 0 {
		return 0
	}
	return maxD + 1
}

// SequentialFraction returns the duration-weighted fraction of the trace
// on the critical path: 1.0 means fully sequential execution, lower values
// indicate exploitable parallelism.
func (g *Graph) SequentialFraction() float64 {
	path, d := g.CriticalPath()
	_ = path
	var total time.Duration
	for i := range g.events {
		total += g.events[i].Dur
	}
	if total == 0 {
		return 0
	}
	return float64(d) / float64(total)
}
