package trace

import (
	"testing"
	"time"
)

func mkEvent(name string, cat Category, ph Phase, dur time.Duration, flops, bytes int64) Event {
	return Event{Name: name, Category: cat, Phase: ph, Dur: dur, FLOPs: flops, Bytes: bytes, Sparsity: -1}
}

func TestCategoryStrings(t *testing.T) {
	want := []string{"Convolution", "MatMul", "Vector/Eltwise", "DataTransform", "DataMovement", "Others"}
	for i, c := range Categories() {
		if c.String() != want[i] {
			t.Fatalf("category %d = %q, want %q", i, c.String(), want[i])
		}
	}
	if Neural.String() != "neural" || Symbolic.String() != "symbolic" {
		t.Fatal("phase strings wrong")
	}
}

func TestAppendAssignsSeq(t *testing.T) {
	tr := New()
	tr.Append(mkEvent("a", MatMul, Neural, time.Millisecond, 10, 10))
	tr.Append(mkEvent("b", Other, Symbolic, time.Millisecond, 10, 10))
	if tr.Events[0].Seq != 0 || tr.Events[1].Seq != 1 {
		t.Fatal("sequence numbers not assigned in order")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestPhaseAggregation(t *testing.T) {
	tr := New()
	tr.Append(mkEvent("n1", MatMul, Neural, 30*time.Millisecond, 300, 30))
	tr.Append(mkEvent("s1", VectorEltwise, Symbolic, 60*time.Millisecond, 60, 600))
	tr.Append(mkEvent("s2", Other, Symbolic, 10*time.Millisecond, 10, 100))
	if tr.Duration() != 100*time.Millisecond {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	if tr.PhaseDuration(Symbolic) != 70*time.Millisecond {
		t.Fatalf("PhaseDuration = %v", tr.PhaseDuration(Symbolic))
	}
	if got := tr.PhaseShare(Symbolic); got != 0.7 {
		t.Fatalf("PhaseShare = %v", got)
	}
	if got := tr.FLOPShare(Neural); got != 300.0/370 {
		t.Fatalf("FLOPShare = %v", got)
	}
	stats := tr.StatsByPhase()
	if stats[Symbolic].Events != 2 || stats[Symbolic].FLOPs != 70 || stats[Symbolic].Bytes != 700 {
		t.Fatalf("StatsByPhase = %+v", stats[Symbolic])
	}
	if stats[Symbolic].PeakWork != 600 {
		t.Fatalf("PeakWork = %d", stats[Symbolic].PeakWork)
	}
}

func TestEmptyTraceShares(t *testing.T) {
	tr := New()
	if tr.PhaseShare(Neural) != 0 || tr.FLOPShare(Symbolic) != 0 {
		t.Fatal("empty trace shares must be 0")
	}
}

func TestCategoryBreakdownAndShare(t *testing.T) {
	tr := New()
	tr.Append(mkEvent("c", Convolution, Neural, 40*time.Millisecond, 0, 0))
	tr.Append(mkEvent("m", MatMul, Neural, 60*time.Millisecond, 0, 0))
	tr.Append(mkEvent("v", VectorEltwise, Symbolic, 5*time.Millisecond, 0, 0))
	br := tr.CategoryBreakdown(Neural)
	if br[Convolution] != 40*time.Millisecond || br[MatMul] != 60*time.Millisecond {
		t.Fatalf("breakdown = %v", br)
	}
	sh := tr.CategoryShare(Neural)
	if sh[Convolution] != 0.4 || sh[MatMul] != 0.6 {
		t.Fatalf("share = %v", sh)
	}
	if len(tr.CategoryShare(Symbolic)) != 1 {
		t.Fatal("symbolic share should contain one category")
	}
}

func TestStages(t *testing.T) {
	tr := New()
	e1 := mkEvent("op1", VectorEltwise, Symbolic, time.Millisecond, 5, 5)
	e1.Stage = "pmf_to_vsa"
	e1.Sparsity = 0.9
	e1.Alloc = 100
	tr.Append(e1)
	e2 := mkEvent("op2", VectorEltwise, Symbolic, time.Millisecond, 5, 5)
	e2.Stage = "pmf_to_vsa"
	e2.Sparsity = 0.5
	e2.Alloc = 300
	tr.Append(e2)
	e3 := mkEvent("op3", Other, Symbolic, time.Millisecond, 1, 1)
	e3.Stage = "rule_detect"
	tr.Append(e3)
	tr.Append(mkEvent("nostage", MatMul, Neural, time.Millisecond, 1, 1))

	stages := tr.ByStage()
	if len(stages) != 2 {
		t.Fatalf("got %d stages", len(stages))
	}
	if stages[0].Stage != "pmf_to_vsa" || stages[0].Events != 2 {
		t.Fatalf("stage[0] = %+v", stages[0])
	}
	// Weighted mean: (0.9*100 + 0.5*300) / 400 = 0.6
	if stages[0].Sparsity < 0.59 || stages[0].Sparsity > 0.61 {
		t.Fatalf("weighted sparsity = %v", stages[0].Sparsity)
	}
}

func TestFilterAndTopOps(t *testing.T) {
	tr := New()
	tr.Append(mkEvent("short", MatMul, Neural, time.Millisecond, 0, 0))
	tr.Append(mkEvent("long", Other, Symbolic, time.Second, 0, 0))
	tr.RegisterParam(Param{Name: "w", Kind: "weight", Bytes: 128})

	f := tr.Filter(func(e *Event) bool { return e.Phase == Symbolic })
	if f.Len() != 1 || f.Events[0].Name != "long" {
		t.Fatalf("Filter = %+v", f.Events)
	}
	if len(f.Params()) != 1 {
		t.Fatal("Filter must carry params")
	}
	top := tr.TopOps(1)
	if len(top) != 1 || top[0].Name != "long" {
		t.Fatalf("TopOps = %+v", top)
	}
	if got := tr.TopOps(99); len(got) != 2 {
		t.Fatalf("TopOps clamp = %d", len(got))
	}
}

func TestParamBytesByKind(t *testing.T) {
	tr := New()
	tr.RegisterParam(Param{Name: "conv1", Kind: "weight", Bytes: 100})
	tr.RegisterParam(Param{Name: "conv2", Kind: "weight", Bytes: 50})
	tr.RegisterParam(Param{Name: "cb", Kind: "codebook", Bytes: 1000})
	m := tr.ParamBytesByKind()
	if m["weight"] != 150 || m["codebook"] != 1000 {
		t.Fatalf("ParamBytesByKind = %v", m)
	}
}

func TestEventArithmeticIntensity(t *testing.T) {
	e := mkEvent("x", MatMul, Neural, 0, 100, 25)
	if e.ArithmeticIntensity() != 4 {
		t.Fatalf("AI = %v", e.ArithmeticIntensity())
	}
	z := mkEvent("z", Other, Neural, 0, 100, 0)
	if z.ArithmeticIntensity() != 0 {
		t.Fatal("zero-byte AI must be 0")
	}
}

func TestGraphDependencies(t *testing.T) {
	tr := New()
	// e0 produces tensor 1; e1 consumes 1, produces 2; e2 consumes 2.
	tr.Append(Event{Name: "a", Dur: 2 * time.Millisecond, Outputs: []uint64{1}})
	tr.Append(Event{Name: "b", Dur: 3 * time.Millisecond, Inputs: []uint64{1}, Outputs: []uint64{2}})
	tr.Append(Event{Name: "c", Dur: 5 * time.Millisecond, Inputs: []uint64{2}, Outputs: []uint64{3}})
	// e3 independent.
	tr.Append(Event{Name: "d", Dur: 4 * time.Millisecond, Outputs: []uint64{4}})

	g := BuildGraph(tr)
	if g.Edges() != 2 {
		t.Fatalf("Edges = %d", g.Edges())
	}
	path, d := g.CriticalPath()
	if d != 10*time.Millisecond {
		t.Fatalf("critical path duration = %v", d)
	}
	if len(path) != 3 || g.Event(path[0]).Name != "a" || g.Event(path[2]).Name != "c" {
		t.Fatalf("critical path = %v", path)
	}
	if g.Depth() != 3 {
		t.Fatalf("Depth = %d", g.Depth())
	}
	if g.MaxWidth() != 2 { // a and d at depth 0
		t.Fatalf("MaxWidth = %d", g.MaxWidth())
	}
	frac := g.SequentialFraction()
	if frac < 0.70 || frac > 0.73 { // 10ms of 14ms
		t.Fatalf("SequentialFraction = %v", frac)
	}
}

func TestGraphLatestProducerWins(t *testing.T) {
	tr := New()
	tr.Append(Event{Name: "p1", Dur: time.Millisecond, Outputs: []uint64{7}})
	tr.Append(Event{Name: "p2", Dur: time.Millisecond, Outputs: []uint64{7}})
	tr.Append(Event{Name: "c", Dur: time.Millisecond, Inputs: []uint64{7}})
	g := BuildGraph(tr)
	if len(g.Parents[2]) != 1 || g.Parents[2][0] != 1 {
		t.Fatalf("consumer should depend on latest producer, parents=%v", g.Parents[2])
	}
}

func TestCrossPhaseEdges(t *testing.T) {
	tr := New()
	tr.Append(Event{Name: "n", Phase: Neural, Dur: time.Millisecond, Outputs: []uint64{1}})
	tr.Append(Event{Name: "s", Phase: Symbolic, Dur: time.Millisecond, Inputs: []uint64{1}, Outputs: []uint64{2}})
	tr.Append(Event{Name: "n2", Phase: Neural, Dur: time.Millisecond, Inputs: []uint64{2}})
	g := BuildGraph(tr)
	n2s, s2n := g.CrossPhaseEdges()
	if n2s != 1 || s2n != 1 {
		t.Fatalf("CrossPhaseEdges = %d, %d", n2s, s2n)
	}
	share := g.PathPhaseShare([]int{0, 1, 2})
	if share[Neural] < 0.6 || share[Neural] > 0.7 {
		t.Fatalf("PathPhaseShare = %v", share)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := BuildGraph(New())
	path, d := g.CriticalPath()
	if path != nil || d != 0 {
		t.Fatal("empty graph critical path should be empty")
	}
	if g.Depth() != 0 || g.SequentialFraction() != 0 {
		t.Fatal("empty graph metrics should be zero")
	}
}
