package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Cross-process trace stitching.
//
// A request that crosses the cluster touches several processes: the
// router proxies (and possibly retries or hedges) it, and one or more
// replicas queue, batch, cache-probe, and execute it. Each process keeps
// its own flight recorder; this file defines (a) the wire form one
// process uses to hand its slice of a request's timeline to another —
// RequestTrace, absolute wall-clock timestamps so independently recorded
// slices share a time axis — and (b) the merge step that renders N such
// slices as one Perfetto-valid Chrome trace with one pid per process and
// one tid per worker lane (WriteStitchedChrome).
//
// Merge rules:
//
//   - Time: every wire timestamp is absolute wall clock (Unix
//     nanoseconds). The stitched export re-anchors all processes to the
//     earliest timestamp across the whole set, so offsets are
//     non-negative and same-host clock skew is the only alignment error.
//   - Identity: processes appear in caller order; process i renders as
//     pid i+1 and its Node string names the pid. Worker lanes map to
//     tids unchanged.
//   - Shape: operator events and non-nesting spans (serving/router
//     ranges, kernel chunks) render as "X" complete events — they may
//     overlap freely on a track. Only engine stage and fork spans, which
//     the span API guarantees properly nested per lane, render as
//     "B"/"E" ranges.

// WireEvent is the portable form of one operator Event: category and
// phase as strings, start as absolute Unix nanoseconds.
type WireEvent struct {
	Seq         int     `json:"seq"`
	Name        string  `json:"name"`
	Kernel      string  `json:"kernel,omitempty"`
	Stage       string  `json:"stage,omitempty"`
	Category    string  `json:"category"`
	Phase       string  `json:"phase"`
	StartUnixNs int64   `json:"start_unix_ns"`
	Worker      int     `json:"worker"`
	DurNs       int64   `json:"dur_ns"`
	FLOPs       int64   `json:"flops"`
	Bytes       int64   `json:"bytes"`
	Sparsity    float64 `json:"sparsity"`
}

// WireSpan is the portable form of one completed Span.
type WireSpan struct {
	Name        string `json:"name"`
	Kind        string `json:"kind,omitempty"`
	Phase       string `json:"phase"`
	Worker      int    `json:"worker"`
	StartUnixNs int64  `json:"start_unix_ns"`
	DurNs       int64  `json:"dur_ns"`
}

// RequestTrace is one process's slice of one request's timeline: the
// operator events and spans its flight recorder still holds under the
// request ID, tagged with the process identity.
type RequestTrace struct {
	RequestID string      `json:"request_id"`
	Node      string      `json:"node"`
	Events    []WireEvent `json:"events"`
	Spans     []WireSpan  `json:"spans"`
}

// Empty reports whether the slice carries no timeline data at all.
func (rt *RequestTrace) Empty() bool { return len(rt.Events) == 0 && len(rt.Spans) == 0 }

// RequestTrace assembles the wire form of everything the recorder holds
// under id, stamped with the given node identity. Events and spans whose
// wall-clock start is zero are skipped: without an absolute timestamp
// they cannot be placed on a cross-process axis.
func (r *Recorder) RequestTrace(id, node string) RequestTrace {
	out := RequestTrace{RequestID: id, Node: node}
	for _, rec := range r.EventsByID(id) {
		e := rec.Ev
		if e.Start.IsZero() {
			continue
		}
		out.Events = append(out.Events, WireEvent{
			Seq:         e.Seq,
			Name:        e.Name,
			Kernel:      e.Kernel,
			Stage:       e.Stage,
			Category:    e.Category.String(),
			Phase:       e.Phase.String(),
			StartUnixNs: e.Start.UnixNano(),
			Worker:      e.Worker,
			DurNs:       e.Dur.Nanoseconds(),
			FLOPs:       e.FLOPs,
			Bytes:       e.Bytes,
			Sparsity:    e.Sparsity,
		})
	}
	for _, rec := range r.SpansByID(id) {
		s := rec.Span
		if s.Start.IsZero() || s.End.IsZero() {
			continue
		}
		out.Spans = append(out.Spans, WireSpan{
			Name:        s.Name,
			Kind:        s.Kind,
			Phase:       s.Phase.String(),
			Worker:      s.Worker,
			StartUnixNs: s.Start.UnixNano(),
			DurNs:       s.Duration().Nanoseconds(),
		})
	}
	return out
}

// nestingKind reports whether spans of this kind are guaranteed properly
// nested per worker lane and may render as "B"/"E" ranges. Engine stages
// and fork regions come from the nested span API; everything else
// (serving-layer ranges, router attempts, kernel chunks) may overlap on a
// lane and renders as "X" complete events instead.
func nestingKind(kind string) bool { return kind == SpanStage || kind == SpanFork }

// WriteStitchedChrome merges the per-process slices of one request into a
// single Chrome trace-event document: one pid per process (named by its
// Node string, in argument order), one tid per worker lane, all
// timestamps re-anchored to the earliest instant across every process.
// The output satisfies ValidateChrome.
func WriteStitchedChrome(w io.Writer, procs []RequestTrace) error {
	if len(procs) == 0 {
		return fmt.Errorf("trace: nothing to stitch (no process traces)")
	}

	// Global epoch: earliest timestamp anywhere.
	var epoch int64
	seen := false
	observe := func(ns int64) {
		if ns == 0 {
			return
		}
		if !seen || ns < epoch {
			epoch, seen = ns, true
		}
	}
	for i := range procs {
		for j := range procs[i].Events {
			observe(procs[i].Events[j].StartUnixNs)
		}
		for j := range procs[i].Spans {
			observe(procs[i].Spans[j].StartUnixNs)
		}
	}
	if !seen {
		return fmt.Errorf("trace: nothing to stitch (no timestamped events or spans)")
	}
	rel := func(ns int64) float64 { return float64(ns-epoch) / 1e3 }

	type rec struct {
		ev  chromeEvent
		pri int
		ord int
	}
	var recs []rec
	add := func(pri int, ev chromeEvent) {
		recs = append(recs, rec{ev: ev, pri: pri, ord: len(recs)})
	}

	type track struct{ pid, tid int }
	tracks := map[track]bool{}

	for pi := range procs {
		p := &procs[pi]
		pid := pi + 1
		for i := range p.Events {
			e := &p.Events[i]
			tr := track{pid, e.Worker}
			tracks[tr] = true
			args := map[string]interface{}{
				"seq":      e.Seq,
				"kernel":   e.Kernel,
				"category": e.Category,
				"phase":    e.Phase,
				"flops":    e.FLOPs,
				"bytes":    e.Bytes,
			}
			if e.Stage != "" {
				args["stage"] = e.Stage
			}
			if e.Sparsity >= 0 {
				args["sparsity"] = e.Sparsity
			}
			dur := float64(e.DurNs) / 1e3
			add(priComplete, chromeEvent{
				Name: e.Name, Cat: e.Category, Ph: "X",
				TsUs: rel(e.StartUnixNs), DUs: &dur,
				PID: pid, TID: tr.tid, Args: args,
			})
		}
		for i := range p.Spans {
			s := &p.Spans[i]
			tr := track{pid, s.Worker}
			tracks[tr] = true
			args := map[string]interface{}{"kind": s.Kind, "phase": s.Phase}
			if nestingKind(s.Kind) {
				add(priBegin, chromeEvent{
					Name: s.Name, Cat: s.Kind, Ph: "B",
					TsUs: rel(s.StartUnixNs), PID: pid, TID: tr.tid, Args: args,
				})
				add(priEnd, chromeEvent{
					Name: s.Name, Cat: s.Kind, Ph: "E",
					TsUs: rel(s.StartUnixNs + s.DurNs), PID: pid, TID: tr.tid,
				})
				continue
			}
			dur := float64(s.DurNs) / 1e3
			add(priComplete, chromeEvent{
				Name: s.Name, Cat: s.Kind, Ph: "X",
				TsUs: rel(s.StartUnixNs), DUs: &dur,
				PID: pid, TID: tr.tid, Args: args,
			})
		}
	}

	// Metadata: name every process (node) and thread (worker lane).
	for tr := range tracks {
		add(priMeta, chromeEvent{
			Name: "process_name", Ph: "M", PID: tr.pid, TID: 0,
			Args: map[string]interface{}{"name": procs[tr.pid-1].Node},
		})
		tname := fmt.Sprintf("worker %d", tr.tid)
		if tr.tid == 0 {
			tname = "main"
		}
		add(priMeta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: tr.pid, TID: tr.tid,
			Args: map[string]interface{}{"name": tname},
		})
	}

	// Same emission discipline as WriteChromeTrace: metadata first, then
	// timestamp order with opens before closes; ord settles the rest.
	sort.SliceStable(recs, func(a, b int) bool {
		ra, rb := &recs[a], &recs[b]
		if (ra.pri == priMeta) != (rb.pri == priMeta) {
			return ra.pri == priMeta
		}
		if ra.ev.TsUs != rb.ev.TsUs {
			return ra.ev.TsUs < rb.ev.TsUs
		}
		if ra.pri != rb.pri {
			return ra.pri < rb.pri
		}
		return ra.ord < rb.ord
	})
	evs := make([]chromeEvent, len(recs))
	for i := range recs {
		evs[i] = recs[i].ev
	}
	return json.NewEncoder(w).Encode(map[string]interface{}{
		"traceEvents":     evs,
		"displayTimeUnit": "ms",
	})
}

// SpanAt builds a closed span from explicit instants — the constructor
// serving layers use to record ranges they measured themselves (queue
// wait, proxy attempts) into a flight recorder.
func SpanAt(name, kind string, worker int, start, end time.Time) Span {
	return Span{Name: name, Kind: kind, Worker: worker, Start: start, End: end}
}
