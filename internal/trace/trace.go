// Package trace is the profiling core of nsbench.
//
// It plays the role the PyTorch Profiler plays in the ISPASS 2024 study:
// every operator invocation in a workload is recorded as an Event carrying
// the operator's name, taxonomy category, execution phase (neural or
// symbolic), measured wall time, analytic FLOP and byte counts, allocation
// volume, output sparsity, and the tensor IDs it consumed and produced.
// Aggregations over a Trace regenerate the paper's figures; the tensor-ID
// dependency graph regenerates its operation-graph analysis (Fig. 4).
package trace

import (
	"fmt"
	"sort"
	"time"
)

// Category is the six-way operator taxonomy of the paper (Sec. IV-B).
type Category int

// The operator categories, in the paper's order.
const (
	Convolution Category = iota
	MatMul
	VectorEltwise
	DataTransform
	DataMovement
	Other
	numCategories
)

// Categories lists all categories in presentation order.
func Categories() []Category {
	return []Category{Convolution, MatMul, VectorEltwise, DataTransform, DataMovement, Other}
}

// String returns the paper's label for the category.
func (c Category) String() string {
	switch c {
	case Convolution:
		return "Convolution"
	case MatMul:
		return "MatMul"
	case VectorEltwise:
		return "Vector/Eltwise"
	case DataTransform:
		return "DataTransform"
	case DataMovement:
		return "DataMovement"
	case Other:
		return "Others"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Phase distinguishes the neural and symbolic components of a workload.
type Phase int

// The two workload phases.
const (
	Neural Phase = iota
	Symbolic
	numPhases
)

// Phases lists both phases in presentation order.
func Phases() []Phase { return []Phase{Neural, Symbolic} }

// String returns the phase label.
func (p Phase) String() string {
	switch p {
	case Neural:
		return "neural"
	case Symbolic:
		return "symbolic"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Event records one operator invocation.
type Event struct {
	Seq      int           // monotonically increasing sequence number
	Name     string        // operator name, e.g. "MatMul", "CircularConv"
	Kernel   string        // kernel class for Table-IV style analysis, e.g. "sgemm_nn"
	Stage    string        // workload-defined stage label, e.g. "pmf_to_vsa"
	Category Category      // taxonomy category
	Phase    Phase         // neural or symbolic
	Start    time.Time     // wall-clock start (monotonic); zero for synthetic events
	Worker   int           // execution lane: 0 = main engine, >0 = fork/pool worker
	Dur      time.Duration // measured wall time
	FLOPs    int64         // analytic floating-point operation count
	Bytes    int64         // analytic memory traffic (algorithmic convention)
	Alloc    int64         // bytes newly allocated for outputs
	Sparsity float64       // output sparsity in [0,1], or -1 when not measured
	Inputs   []uint64      // tensor IDs consumed
	Outputs  []uint64      // tensor IDs produced
}

// Observer is a hook invoked with each event as it is recorded, so a
// characterization run can be observed live (e.g. streamed into a
// metrics registry) instead of only analyzed post-hoc. The event pointer
// is only valid for the duration of the call. Observers run on whatever
// goroutine records the event — forked engines record concurrently — so
// implementations must be safe for concurrent use.
type Observer func(ev *Event)

// ArithmeticIntensity returns the event's FLOPs per byte (0 if no traffic).
func (e *Event) ArithmeticIntensity() float64 {
	if e.Bytes == 0 {
		return 0
	}
	return float64(e.FLOPs) / float64(e.Bytes)
}

// Trace is an ordered log of events plus workload-level registrations.
//
// Alongside the flat event log, a trace carries a timeline skeleton: an
// epoch (the monotonic instant timestamps are measured against) and a set
// of nested spans (stage ranges, fork regions, kernel chunks) that the
// Chrome/Perfetto export renders as "B"/"E" ranges and worker tracks
// around the operator events.
type Trace struct {
	Events []Event
	params []Param

	// epoch is the monotonic reference instant for the timeline export:
	// an event at Start == epoch renders at ts 0. Forked child traces
	// adopt their parent's epoch so merged timelines stay aligned.
	epoch time.Time
	spans []Span
	open  []int // indexes into spans of the currently open (un-Ended) spans
}

// Span is a named wall-clock range on one timeline track: a workload
// stage, a forked worker's region, or one kernel chunk. Spans nest (Depth
// is the nesting level at Begin) and never affect aggregate statistics —
// they are pure timeline annotation, so recording them cannot perturb the
// paper's figures.
type Span struct {
	Name   string
	Kind   string // SpanStage, SpanFork, SpanChunk, or free-form
	Phase  Phase
	Worker int       // execution lane, same convention as Event.Worker
	Depth  int       // nesting depth at Begin (0 = outermost)
	Start  time.Time // wall-clock start (monotonic)
	End    time.Time // zero while the span is still open
}

// Duration returns the span's length (0 while it is still open).
func (s *Span) Duration() time.Duration {
	if s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Well-known span kinds.
const (
	SpanStage = "stage" // a workload-defined stage (Engine.InStage)
	SpanFork  = "fork"  // one forked engine's region (Engine.Fork..Join)
	SpanChunk = "chunk" // one kernel chunk executed by a pool worker
)

// Param is a persistent model parameter (weights, codebooks) registered by
// a workload; it contributes to the storage-footprint analysis (Fig. 3b).
type Param struct {
	Name  string
	Phase Phase
	Kind  string // "weight", "codebook", "knowledge", ...
	Bytes int64
}

// New returns an empty trace whose epoch is the current instant.
func New() *Trace { return &Trace{epoch: time.Now()} }

// Epoch returns the trace's timeline reference instant.
func (t *Trace) Epoch() time.Time { return t.epoch }

// SetEpoch re-anchors the timeline. Forked child traces are anchored to
// their parent's epoch so their events export onto one shared time axis.
func (t *Trace) SetEpoch(epoch time.Time) { t.epoch = epoch }

// Append adds an event, assigning its sequence number.
func (t *Trace) Append(e Event) {
	e.Seq = len(t.Events)
	t.Events = append(t.Events, e)
}

// BeginSpan opens a nested span. A zero Start is stamped with the current
// instant; Depth is assigned from the open-span stack. Close it with End.
func (t *Trace) BeginSpan(s Span) {
	if s.Start.IsZero() {
		s.Start = time.Now()
	}
	s.End = time.Time{}
	s.Depth = len(t.open)
	t.open = append(t.open, len(t.spans))
	t.spans = append(t.spans, s)
}

// Begin opens a nested span with just a name (lane 0, neural phase).
func (t *Trace) Begin(name string) { t.BeginSpan(Span{Name: name}) }

// End closes the most recently opened span at the current instant. It is
// a no-op when no span is open.
func (t *Trace) End() { t.EndAt(time.Now()) }

// EndAt closes the most recently opened span at the given instant.
func (t *Trace) EndAt(end time.Time) {
	if len(t.open) == 0 {
		return
	}
	i := t.open[len(t.open)-1]
	t.open = t.open[:len(t.open)-1]
	t.spans[i].End = end
}

// CloseOpenSpans force-closes every open span at the given instant (zero
// selects now). Join uses it so a forked trace always merges with a
// balanced span stack even if a workload left spans open.
func (t *Trace) CloseOpenSpans(end time.Time) {
	if end.IsZero() {
		end = time.Now()
	}
	for len(t.open) > 0 {
		t.EndAt(end)
	}
}

// AddSpan appends an already-closed span (e.g. a kernel chunk recorded on
// a pool worker) without touching the open-span stack.
func (t *Trace) AddSpan(s Span) { t.spans = append(t.spans, s) }

// Spans returns the recorded spans in Begin/AddSpan order.
func (t *Trace) Spans() []Span { return t.spans }

// RegisterParam records a persistent parameter.
func (t *Trace) RegisterParam(p Param) { t.params = append(t.params, p) }

// Params returns the registered persistent parameters.
func (t *Trace) Params() []Param { return t.params }

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.Events) }

// Duration returns the summed duration of all events.
func (t *Trace) Duration() time.Duration {
	var d time.Duration
	for i := range t.Events {
		d += t.Events[i].Dur
	}
	return d
}

// PhaseDuration returns the summed duration of events in phase p.
func (t *Trace) PhaseDuration(p Phase) time.Duration {
	var d time.Duration
	for i := range t.Events {
		if t.Events[i].Phase == p {
			d += t.Events[i].Dur
		}
	}
	return d
}

// PhaseShare returns the fraction of total duration spent in phase p,
// or 0 for an empty trace.
func (t *Trace) PhaseShare(p Phase) float64 {
	total := t.Duration()
	if total == 0 {
		return 0
	}
	return float64(t.PhaseDuration(p)) / float64(total)
}

// CategoryBreakdown aggregates duration per category for one phase.
func (t *Trace) CategoryBreakdown(p Phase) map[Category]time.Duration {
	m := make(map[Category]time.Duration)
	for i := range t.Events {
		if t.Events[i].Phase == p {
			m[t.Events[i].Category] += t.Events[i].Dur
		}
	}
	return m
}

// CategoryShare returns per-category duration fractions within phase p.
// Fractions sum to 1 (or the map is empty if the phase has no time).
func (t *Trace) CategoryShare(p Phase) map[Category]float64 {
	br := t.CategoryBreakdown(p)
	var total time.Duration
	for _, d := range br {
		total += d
	}
	out := make(map[Category]float64, len(br))
	if total == 0 {
		return out
	}
	for c, d := range br {
		out[c] = float64(d) / float64(total)
	}
	return out
}

// PhaseStats summarizes one phase's totals.
type PhaseStats struct {
	Phase    Phase
	Dur      time.Duration
	FLOPs    int64
	Bytes    int64
	Alloc    int64
	Events   int
	PeakWork int64 // largest single-event working set (input+output bytes estimate)
}

// StatsByPhase returns totals for both phases.
func (t *Trace) StatsByPhase() [2]PhaseStats {
	var out [2]PhaseStats
	out[0].Phase, out[1].Phase = Neural, Symbolic
	for i := range t.Events {
		e := &t.Events[i]
		s := &out[e.Phase]
		s.Dur += e.Dur
		s.FLOPs += e.FLOPs
		s.Bytes += e.Bytes
		s.Alloc += e.Alloc
		s.Events++
		if ws := e.Bytes; ws > s.PeakWork {
			s.PeakWork = ws
		}
	}
	return out
}

// FLOPShare returns the fraction of total FLOPs executed in phase p.
func (t *Trace) FLOPShare(p Phase) float64 {
	var total, ph int64
	for i := range t.Events {
		total += t.Events[i].FLOPs
		if t.Events[i].Phase == p {
			ph += t.Events[i].FLOPs
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ph) / float64(total)
}

// StageStats summarizes the events carrying one stage label.
type StageStats struct {
	Stage    string
	Dur      time.Duration
	FLOPs    int64
	Bytes    int64
	Events   int
	Sparsity float64 // size-weighted mean output sparsity of measured events
}

// ByStage aggregates per-stage statistics in first-seen order.
func (t *Trace) ByStage() []StageStats {
	idx := make(map[string]int)
	var out []StageStats
	weight := make(map[string]float64)
	for i := range t.Events {
		e := &t.Events[i]
		if e.Stage == "" {
			continue
		}
		j, ok := idx[e.Stage]
		if !ok {
			j = len(out)
			idx[e.Stage] = j
			out = append(out, StageStats{Stage: e.Stage})
		}
		s := &out[j]
		s.Dur += e.Dur
		s.FLOPs += e.FLOPs
		s.Bytes += e.Bytes
		s.Events++
		if e.Sparsity >= 0 {
			w := float64(e.Alloc)
			if w <= 0 {
				w = 1
			}
			s.Sparsity = (s.Sparsity*weight[e.Stage] + e.Sparsity*w) / (weight[e.Stage] + w)
			weight[e.Stage] += w
		}
	}
	return out
}

// Merge appends the events of parts into t in argument order, renumbering
// their sequence numbers to continue t's own, and carries over any params
// and spans the parts registered. Only Seq is rewritten: wall-clock
// Start, Worker attribution, and span timestamps are preserved verbatim,
// so a merged timeline still renders each shard on its own track at its
// real time. It is the deterministic combine step for traces recorded on
// sharded per-worker buffers: as long as callers pass shards in a fixed
// order, the merged trace is identical run to run.
func (t *Trace) Merge(parts ...*Trace) {
	for _, p := range parts {
		if p == nil {
			continue
		}
		for i := range p.Events {
			t.Append(p.Events[i])
		}
		t.params = append(t.params, p.params...)
		t.spans = append(t.spans, p.spans...)
	}
}

// Filter returns a new trace holding the events for which keep returns
// true. Params and spans are carried over as copies: the filtered trace
// must not alias the parent's backing arrays, or a later RegisterParam on
// either trace could clobber the other through a shared-array append.
func (t *Trace) Filter(keep func(*Event) bool) *Trace {
	out := New()
	out.epoch = t.epoch
	for i := range t.Events {
		if keep(&t.Events[i]) {
			out.Append(t.Events[i])
		}
	}
	out.params = append([]Param(nil), t.params...)
	out.spans = append([]Span(nil), t.spans...)
	return out
}

// TopOps returns the n longest events, descending by duration. Ties are
// broken by ascending sequence number, so the ranking is deterministic
// across runs and shard orders.
func (t *Trace) TopOps(n int) []Event {
	evs := append([]Event(nil), t.Events...)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Dur != evs[j].Dur {
			return evs[i].Dur > evs[j].Dur
		}
		return evs[i].Seq < evs[j].Seq
	})
	if n > len(evs) {
		n = len(evs)
	}
	return evs[:n]
}

// ParamBytesByKind sums registered parameter bytes per kind label.
func (t *Trace) ParamBytesByKind() map[string]int64 {
	m := make(map[string]int64)
	for _, p := range t.params {
		m[p.Kind] += p.Bytes
	}
	return m
}
