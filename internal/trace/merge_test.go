package trace

import "testing"

func TestMergeRenumbersAndCarriesParams(t *testing.T) {
	dst := New()
	dst.Append(Event{Name: "Warmup", Phase: Neural})

	a := New()
	a.Append(Event{Name: "A0", Phase: Symbolic, FLOPs: 10})
	a.Append(Event{Name: "A1", Phase: Symbolic, FLOPs: 20})
	a.RegisterParam(Param{Name: "codebook", Phase: Symbolic, Kind: "codebook", Bytes: 64})

	b := New()
	b.Append(Event{Name: "B0", Phase: Neural, FLOPs: 30})

	dst.Merge(a, nil, b)

	wantNames := []string{"Warmup", "A0", "A1", "B0"}
	if dst.Len() != len(wantNames) {
		t.Fatalf("merged trace has %d events, want %d", dst.Len(), len(wantNames))
	}
	for i, ev := range dst.Events {
		if ev.Name != wantNames[i] {
			t.Errorf("event %d is %q, want %q", i, ev.Name, wantNames[i])
		}
		if ev.Seq != i {
			t.Errorf("event %d has Seq %d after merge", i, ev.Seq)
		}
	}
	params := dst.Params()
	if len(params) != 1 || params[0].Name != "codebook" {
		t.Fatalf("merged params = %v, want the codebook param carried over", params)
	}
}

func TestMergeEmptyIsNoOp(t *testing.T) {
	dst := New()
	dst.Append(Event{Name: "X"})
	dst.Merge(New(), nil)
	if dst.Len() != 1 || dst.Events[0].Seq != 0 {
		t.Fatalf("merge of empty traces changed dst: %+v", dst.Events)
	}
}
