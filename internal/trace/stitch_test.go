package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// stamp returns a deterministic wall-clock instant offset from a fixed
// base, so stitched-trace tests control the cross-process time axis.
func stamp(offset time.Duration) time.Time {
	return time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC).Add(offset)
}

func TestRequestTraceWireForm(t *testing.T) {
	r := NewRecorder(16)
	ev := mkEvent("op", MatMul, Neural, 2*time.Millisecond, 100, 200)
	ev.Start = stamp(0)
	ev.Worker = 3
	r.Record("req-1", &ev)
	r.RecordSpan("req-1", SpanAt("queue.wait", "serve", 0, stamp(time.Millisecond), stamp(3*time.Millisecond)))
	// Other-request entries must not leak in.
	other := mkEvent("other", Other, Symbolic, time.Millisecond, 1, 1)
	other.Start = stamp(0)
	r.Record("req-2", &other)

	rt := r.RequestTrace("req-1", "replica-a")
	if rt.RequestID != "req-1" || rt.Node != "replica-a" {
		t.Fatalf("identity = %q/%q", rt.RequestID, rt.Node)
	}
	if len(rt.Events) != 1 || len(rt.Spans) != 1 {
		t.Fatalf("events/spans = %d/%d, want 1/1", len(rt.Events), len(rt.Spans))
	}
	e := rt.Events[0]
	if e.Name != "op" || e.Worker != 3 || e.StartUnixNs != stamp(0).UnixNano() ||
		e.DurNs != (2*time.Millisecond).Nanoseconds() || e.Category != "MatMul" || e.Phase != "neural" {
		t.Fatalf("wire event = %+v", e)
	}
	s := rt.Spans[0]
	if s.Name != "queue.wait" || s.Kind != "serve" || s.DurNs != (2*time.Millisecond).Nanoseconds() {
		t.Fatalf("wire span = %+v", s)
	}
	// The wire form must survive a JSON round trip unchanged — it crosses
	// a process boundary.
	b, err := json.Marshal(rt)
	if err != nil {
		t.Fatal(err)
	}
	var back RequestTrace
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Events[0] != e || back.Spans[0] != s {
		t.Fatalf("round trip changed the payload: %+v / %+v", back.Events[0], back.Spans[0])
	}
}

func TestRequestTraceSkipsUnstampedEntries(t *testing.T) {
	r := NewRecorder(8)
	ev := mkEvent("synthetic", MatMul, Neural, time.Millisecond, 1, 1) // zero Start
	r.Record("req", &ev)
	rt := r.RequestTrace("req", "n")
	if !rt.Empty() {
		t.Fatalf("unstamped event leaked into the wire form: %+v", rt)
	}
}

func TestWriteStitchedChromeMultiProcess(t *testing.T) {
	router := NewRecorder(16)
	router.RecordSpan("id", SpanAt("route.characterize", "router", 0, stamp(0), stamp(10*time.Millisecond)))
	router.RecordSpan("id", SpanAt("proxy(http://a) 200", "router", 0, stamp(time.Millisecond), stamp(9*time.Millisecond)))

	replica := NewRecorder(16)
	ev := mkEvent("matmul", MatMul, Neural, 2*time.Millisecond, 100, 100)
	ev.Start = stamp(4 * time.Millisecond)
	replica.Record("id", &ev)
	replica.RecordSpan("id", SpanAt("binding", SpanStage, 0, stamp(3*time.Millisecond), stamp(8*time.Millisecond)))

	var buf bytes.Buffer
	err := WriteStitchedChrome(&buf, []RequestTrace{
		router.RequestTrace("id", "nsrouter"),
		replica.RequestTrace("id", "replica-a"),
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("stitched trace invalid: %v\n%s", err, buf.String())
	}
	// Router spans render as X (2), the replica event as X (1), and the
	// stage span as a matched B/E range.
	if stats.Events != 3 || stats.Ranges != 1 {
		t.Fatalf("events/ranges = %d/%d, want 3/1", stats.Events, stats.Ranges)
	}

	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Ts   float64                `json:"ts"`
			PID  int                    `json:"pid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	pids := map[int]string{}
	minTs := map[int]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			pids[ev.PID] = ev.Args["name"].(string)
		}
		if ev.Ph != "M" {
			if cur, ok := minTs[ev.PID]; !ok || ev.Ts < cur {
				minTs[ev.PID] = ev.Ts
			}
		}
	}
	if len(pids) != 2 || pids[1] != "nsrouter" || pids[2] != "replica-a" {
		t.Fatalf("process names = %v, want pid1=nsrouter pid2=replica-a", pids)
	}
	// The global epoch is the router root span's start, so the router
	// track starts at 0 and the replica's first entry lands 3ms later —
	// the cross-process alignment the stitch exists for.
	if minTs[1] != 0 {
		t.Fatalf("router track starts at %vus, want 0", minTs[1])
	}
	if want := 3000.0; minTs[2] != want {
		t.Fatalf("replica track starts at %vus, want %v", minTs[2], want)
	}
}

func TestWriteStitchedChromeOverlappingNonNestingSpans(t *testing.T) {
	// A hedge race records two overlapping attempts plus a root span that
	// contains both. None of them may render as B/E — improper nesting
	// would fail validation — so the stitch maps them to X events.
	r := NewRecorder(8)
	r.RecordSpan("id", SpanAt("route.characterize", "router", 0, stamp(0), stamp(10*time.Millisecond)))
	r.RecordSpan("id", SpanAt("proxy(a) 200", "router", 0, stamp(time.Millisecond), stamp(9*time.Millisecond)))
	r.RecordSpan("id", SpanAt("proxy(b) canceled", "router", 1, stamp(2*time.Millisecond), stamp(4*time.Millisecond)))
	var buf bytes.Buffer
	if err := WriteStitchedChrome(&buf, []RequestTrace{r.RequestTrace("id", "n")}); err != nil {
		t.Fatal(err)
	}
	stats, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("overlapping spans broke validation: %v", err)
	}
	if stats.Events != 3 || stats.Ranges != 0 {
		t.Fatalf("events/ranges = %d/%d, want 3/0", stats.Events, stats.Ranges)
	}
	if stats.Tracks != 2 {
		t.Fatalf("tracks = %d, want 2 (hedge lane splits off)", stats.Tracks)
	}
}

func TestWriteStitchedChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStitchedChrome(&buf, nil); err == nil {
		t.Fatal("no error for zero processes")
	}
	err := WriteStitchedChrome(&buf, []RequestTrace{{RequestID: "x", Node: "n"}})
	if err == nil || !strings.Contains(err.Error(), "nothing to stitch") {
		t.Fatalf("err = %v, want nothing-to-stitch", err)
	}
}
