package trace

import (
	"testing"
	"time"
)

func TestSpanStackDepthAndClose(t *testing.T) {
	tr := New()
	tr.Begin("outer")
	tr.Begin("inner")
	tr.End()
	tr.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["outer"].Depth != 0 || byName["inner"].Depth != 1 {
		t.Fatalf("depths = outer:%d inner:%d, want 0/1", byName["outer"].Depth, byName["inner"].Depth)
	}
	for _, s := range spans {
		if s.Start.IsZero() || s.End.IsZero() || s.End.Before(s.Start) {
			t.Fatalf("span %q has bad bounds: %+v", s.Name, s)
		}
	}
}

func TestCloseOpenSpans(t *testing.T) {
	tr := New()
	tr.Begin("a")
	tr.Begin("b")
	end := time.Now().Add(time.Second)
	tr.CloseOpenSpans(end)
	for _, s := range tr.Spans() {
		if !s.End.Equal(end) {
			t.Fatalf("span %q end = %v, want %v", s.Name, s.End, end)
		}
	}
	// Closing again is a no-op.
	tr.CloseOpenSpans(time.Time{})
	if n := len(tr.Spans()); n != 2 {
		t.Fatalf("spans = %d after double close, want 2", n)
	}
}

func TestEndOnEmptyStackIsNoOp(t *testing.T) {
	tr := New()
	tr.End() // must not panic
	if n := len(tr.Spans()); n != 0 {
		t.Fatalf("spans = %d, want 0", n)
	}
}

// Merge must preserve wall-clock timestamps and worker lanes verbatim —
// only Seq is rewritten — and the renumbering must depend only on shard
// order, not on when shards were built.
func TestMergePreservesTimelineFields(t *testing.T) {
	parent := New()
	epoch := parent.Epoch()

	shard := func(worker int, startUs int64, names ...string) *Trace {
		tr := New()
		tr.SetEpoch(epoch)
		for i, name := range names {
			ev := mkEvent(name, MatMul, Neural, time.Millisecond, 10, 10)
			ev.Start = epoch.Add(time.Duration(startUs+int64(i)) * time.Microsecond)
			ev.Worker = worker
			tr.Append(ev)
		}
		tr.AddSpan(Span{
			Name: "fork", Kind: SpanFork, Worker: worker,
			Start: epoch.Add(time.Duration(startUs) * time.Microsecond),
			End:   epoch.Add(time.Duration(startUs+100) * time.Microsecond),
		})
		return tr
	}

	parent.Append(mkEvent("root", Other, Neural, time.Millisecond, 1, 1))
	parent.Merge(shard(2, 500, "s2a", "s2b"), shard(1, 200, "s1a"))

	evs := parent.Events
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	// Seq renumbered in merge order.
	wantNames := []string{"root", "s2a", "s2b", "s1a"}
	for i, ev := range evs {
		if ev.Seq != i || ev.Name != wantNames[i] {
			t.Fatalf("event %d = {Seq:%d Name:%q}, want {Seq:%d Name:%q}", i, ev.Seq, ev.Name, i, wantNames[i])
		}
	}
	// Start and Worker carried verbatim.
	if evs[1].Worker != 2 || evs[3].Worker != 1 {
		t.Fatalf("workers = %d/%d, want 2/1", evs[1].Worker, evs[3].Worker)
	}
	if got := evs[1].Start.Sub(epoch); got != 500*time.Microsecond {
		t.Fatalf("s2a start offset = %v, want 500µs", got)
	}
	if got := evs[3].Start.Sub(epoch); got != 200*time.Microsecond {
		t.Fatalf("s1a start offset = %v, want 200µs", got)
	}
	// Spans carried through with bounds intact.
	spans := parent.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Worker != 2 || spans[1].Worker != 1 {
		t.Fatalf("span workers = %d/%d, want 2/1", spans[0].Worker, spans[1].Worker)
	}
	if d := spans[0].Duration(); d != 100*time.Microsecond {
		t.Fatalf("span duration = %v, want 100µs", d)
	}
}

// Filter must deep-copy the params slice: appending a param to the
// filtered trace used to write through into the parent's backing array.
func TestFilterDoesNotAliasParams(t *testing.T) {
	tr := New()
	tr.Append(mkEvent("a", MatMul, Neural, time.Millisecond, 1, 1))
	tr.RegisterParam(Param{Name: "w0", Kind: "weight", Bytes: 10})
	tr.RegisterParam(Param{Name: "w1", Kind: "weight", Bytes: 20})

	sub := tr.Filter(func(ev *Event) bool { return true })
	sub.RegisterParam(Param{Name: "extra", Kind: "weight", Bytes: 30})

	if n := len(tr.Params()); n != 2 {
		t.Fatalf("parent params = %d after writing to filtered trace, want 2", n)
	}
	if n := len(sub.Params()); n != 3 {
		t.Fatalf("filtered params = %d, want 3", n)
	}
	// Mutating the parent must not show up in the child either.
	tr.RegisterParam(Param{Name: "late", Kind: "weight", Bytes: 5})
	if n := len(sub.Params()); n != 3 {
		t.Fatalf("filtered params grew to %d after parent append", n)
	}
}

func TestFilterCarriesEpochAndSpans(t *testing.T) {
	tr := New()
	tr.Begin("stage")
	tr.End()
	tr.Append(mkEvent("a", MatMul, Neural, time.Millisecond, 1, 1))
	sub := tr.Filter(func(ev *Event) bool { return true })
	if !sub.Epoch().Equal(tr.Epoch()) {
		t.Fatal("filtered trace lost the epoch")
	}
	if len(sub.Spans()) != 1 {
		t.Fatalf("filtered spans = %d, want 1", len(sub.Spans()))
	}
}

// Equal durations must tie-break on Seq so TopOps is deterministic.
func TestTopOpsTieBreakIsStable(t *testing.T) {
	tr := New()
	for _, name := range []string{"a", "b", "c"} {
		tr.Append(mkEvent(name, MatMul, Neural, time.Millisecond, 1, 1))
	}
	tr.Append(mkEvent("big", MatMul, Neural, 2*time.Millisecond, 1, 1))
	top := tr.TopOps(4)
	wantOrder := []string{"big", "a", "b", "c"}
	for i, ev := range top {
		if ev.Name != wantOrder[i] {
			t.Fatalf("TopOps order = %v at %d, want %v", ev.Name, i, wantOrder)
		}
	}
}
