package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRecorderKeepsLastN(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		ev := mkEvent(fmt.Sprintf("ev%d", i), MatMul, Neural, time.Millisecond, 1, 1)
		r.Record("req", &ev)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %d entries, want 3", len(snap))
	}
	// Oldest-first: events 2, 3, 4 survive.
	for i, rec := range snap {
		want := fmt.Sprintf("ev%d", i+2)
		if rec.Ev.Name != want {
			t.Fatalf("snapshot[%d] = %q, want %q", i, rec.Ev.Name, want)
		}
		if rec.ID != "req" {
			t.Fatalf("snapshot[%d] id = %q", i, rec.ID)
		}
		if rec.Time.IsZero() {
			t.Fatalf("snapshot[%d] has zero record time", i)
		}
	}
	if r.Total() != 5 || r.Dropped() != 2 || r.Cap() != 3 {
		t.Fatalf("total/dropped/cap = %d/%d/%d, want 5/2/3", r.Total(), r.Dropped(), r.Cap())
	}
}

func TestRecorderPartialFill(t *testing.T) {
	r := NewRecorder(8)
	ev := mkEvent("only", MatMul, Neural, time.Millisecond, 1, 1)
	r.Record("a", &ev)
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Ev.Name != "only" || r.Dropped() != 0 {
		t.Fatalf("snapshot = %+v dropped = %d", snap, r.Dropped())
	}
}

func TestRecorderCopiesEvent(t *testing.T) {
	r := NewRecorder(2)
	ev := mkEvent("orig", MatMul, Neural, time.Millisecond, 1, 1)
	r.Record("a", &ev)
	ev.Name = "mutated"
	if got := r.Snapshot()[0].Ev.Name; got != "orig" {
		t.Fatalf("recorder aliased the event: %q", got)
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	// Non-positive capacities clamp to the documented default rather than
	// producing a useless one-slot (or panicking zero-slot) ring.
	for _, n := range []int{0, -1, -512} {
		r := NewRecorder(n)
		if r.Cap() != DefaultRecorderCapacity {
			t.Fatalf("NewRecorder(%d).Cap() = %d, want DefaultRecorderCapacity (%d)",
				n, r.Cap(), DefaultRecorderCapacity)
		}
		// The clamped ring must actually record.
		ev := mkEvent("ev", MatMul, Neural, time.Millisecond, 1, 1)
		r.Record("req", &ev)
		if got := len(r.Snapshot()); got != 1 {
			t.Fatalf("NewRecorder(%d) snapshot = %d entries, want 1", n, got)
		}
	}
}

func TestRecorderObserverConcurrent(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			obs := r.Observer(fmt.Sprintf("req-%d", g))
			for i := 0; i < 100; i++ {
				ev := mkEvent("op", MatMul, Neural, time.Millisecond, 1, 1)
				obs(&ev)
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("total = %d, want 800", r.Total())
	}
	if len(r.Snapshot()) != 64 {
		t.Fatalf("snapshot = %d, want 64", len(r.Snapshot()))
	}
}
