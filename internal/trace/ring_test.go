package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRecorderKeepsLastN(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		ev := mkEvent(fmt.Sprintf("ev%d", i), MatMul, Neural, time.Millisecond, 1, 1)
		r.Record("req", &ev)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %d entries, want 3", len(snap))
	}
	// Oldest-first: events 2, 3, 4 survive.
	for i, rec := range snap {
		want := fmt.Sprintf("ev%d", i+2)
		if rec.Ev.Name != want {
			t.Fatalf("snapshot[%d] = %q, want %q", i, rec.Ev.Name, want)
		}
		if rec.ID != "req" {
			t.Fatalf("snapshot[%d] id = %q", i, rec.ID)
		}
		if rec.Time.IsZero() {
			t.Fatalf("snapshot[%d] has zero record time", i)
		}
	}
	if r.Total() != 5 || r.Dropped() != 2 || r.Cap() != 3 {
		t.Fatalf("total/dropped/cap = %d/%d/%d, want 5/2/3", r.Total(), r.Dropped(), r.Cap())
	}
}

func TestRecorderPartialFill(t *testing.T) {
	r := NewRecorder(8)
	ev := mkEvent("only", MatMul, Neural, time.Millisecond, 1, 1)
	r.Record("a", &ev)
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Ev.Name != "only" || r.Dropped() != 0 {
		t.Fatalf("snapshot = %+v dropped = %d", snap, r.Dropped())
	}
}

func TestRecorderCopiesEvent(t *testing.T) {
	r := NewRecorder(2)
	ev := mkEvent("orig", MatMul, Neural, time.Millisecond, 1, 1)
	r.Record("a", &ev)
	ev.Name = "mutated"
	if got := r.Snapshot()[0].Ev.Name; got != "orig" {
		t.Fatalf("recorder aliased the event: %q", got)
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	// Non-positive capacities clamp to the documented default rather than
	// producing a useless one-slot (or panicking zero-slot) ring.
	for _, n := range []int{0, -1, -512} {
		r := NewRecorder(n)
		if r.Cap() != DefaultRecorderCapacity {
			t.Fatalf("NewRecorder(%d).Cap() = %d, want DefaultRecorderCapacity (%d)",
				n, r.Cap(), DefaultRecorderCapacity)
		}
		// The clamped ring must actually record.
		ev := mkEvent("ev", MatMul, Neural, time.Millisecond, 1, 1)
		r.Record("req", &ev)
		if got := len(r.Snapshot()); got != 1 {
			t.Fatalf("NewRecorder(%d) snapshot = %d entries, want 1", n, got)
		}
	}
}

func TestRecorderSpanRingEviction(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		start := stamp(time.Duration(i) * time.Millisecond)
		r.RecordSpan("req", SpanAt(fmt.Sprintf("sp%d", i), "serve", 0, start, start.Add(time.Millisecond)))
	}
	snap := r.SnapshotSpans()
	if len(snap) != 3 {
		t.Fatalf("span snapshot = %d entries, want 3", len(snap))
	}
	// Oldest-first after overwrite: spans 2, 3, 4 survive, in order.
	for i, rec := range snap {
		if want := fmt.Sprintf("sp%d", i+2); rec.Span.Name != want {
			t.Fatalf("snapshot[%d] = %q, want %q", i, rec.Span.Name, want)
		}
	}
}

func TestRecorderSpanDropsOpenSpans(t *testing.T) {
	r := NewRecorder(4)
	r.RecordSpan("req", Span{Name: "open", Kind: "serve", Start: stamp(0)}) // zero End
	if got := len(r.SnapshotSpans()); got != 0 {
		t.Fatalf("open span was recorded (%d entries)", got)
	}
}

func TestRecorderByIDIsolation(t *testing.T) {
	r := NewRecorder(32)
	for i := 0; i < 3; i++ {
		ev := mkEvent("a-op", MatMul, Neural, time.Millisecond, 1, 1)
		r.Record("req-a", &ev)
		ev = mkEvent("b-op", Other, Symbolic, time.Millisecond, 1, 1)
		r.Record("req-b", &ev)
		start := stamp(time.Duration(i) * time.Millisecond)
		r.RecordSpan("req-a", SpanAt("a-span", "serve", 0, start, start.Add(time.Millisecond)))
		r.RecordSpan("req-b", SpanAt("b-span", "serve", 0, start, start.Add(time.Millisecond)))
	}
	if evs := r.EventsByID("req-a"); len(evs) != 3 {
		t.Fatalf("EventsByID(req-a) = %d, want 3", len(evs))
	} else {
		for _, e := range evs {
			if e.Ev.Name != "a-op" {
				t.Fatalf("req-a got foreign event %q", e.Ev.Name)
			}
		}
	}
	if sps := r.SpansByID("req-b"); len(sps) != 3 {
		t.Fatalf("SpansByID(req-b) = %d, want 3", len(sps))
	} else {
		for _, s := range sps {
			if s.Span.Name != "b-span" {
				t.Fatalf("req-b got foreign span %q", s.Span.Name)
			}
		}
	}
	if evs := r.EventsByID("req-c"); len(evs) != 0 {
		t.Fatalf("unknown ID returned %d events", len(evs))
	}
}

// TestRecorderSpanConcurrent hammers the span ring from recording and
// snapshotting goroutines at once; run under -race it is the data-race
// check for the dual-ring recorder.
func TestRecorderSpanConcurrent(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	stopReaders := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("req-%d", g)
			for i := 0; i < 200; i++ {
				start := stamp(time.Duration(i) * time.Microsecond)
				r.RecordSpan(id, SpanAt("sp", "serve", g, start, start.Add(time.Microsecond)))
				ev := mkEvent("op", MatMul, Neural, time.Microsecond, 1, 1)
				r.Record(id, &ev)
			}
		}(g)
	}
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
					r.SnapshotSpans()
					r.SpansByID("req-1")
					r.RequestTrace("req-2", "node")
				}
			}
		}()
	}
	wg.Wait()
	close(stopReaders)
	readers.Wait()
	if got := r.SpansTotal(); got != 800 {
		t.Fatalf("spans total = %d, want 800", got)
	}
	if got := len(r.SnapshotSpans()); got != 64 {
		t.Fatalf("span snapshot = %d, want 64 (capacity)", got)
	}
}

func TestRecorderObserverConcurrent(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			obs := r.Observer(fmt.Sprintf("req-%d", g))
			for i := 0; i < 100; i++ {
				ev := mkEvent("op", MatMul, Neural, time.Millisecond, 1, 1)
				obs(&ev)
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("total = %d, want 800", r.Total())
	}
	if len(r.Snapshot()) != 64 {
		t.Fatalf("snapshot = %d, want 64", len(r.Snapshot()))
	}
}
