package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Export formats: machine-readable dumps of a trace for external tooling.

// jsonEvent is the JSON wire form of an Event.
type jsonEvent struct {
	Seq      int     `json:"seq"`
	Name     string  `json:"name"`
	Kernel   string  `json:"kernel,omitempty"`
	Stage    string  `json:"stage,omitempty"`
	Category string  `json:"category"`
	Phase    string  `json:"phase"`
	StartNs  int64   `json:"start_ns"`
	Worker   int     `json:"worker"`
	DurNs    int64   `json:"dur_ns"`
	FLOPs    int64   `json:"flops"`
	Bytes    int64   `json:"bytes"`
	Alloc    int64   `json:"alloc"`
	Sparsity float64 `json:"sparsity"`
}

// jsonSpan is the JSON wire form of a Span.
type jsonSpan struct {
	Name    string `json:"name"`
	Kind    string `json:"kind,omitempty"`
	Phase   string `json:"phase"`
	Worker  int    `json:"worker"`
	Depth   int    `json:"depth"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// jsonTrace is the JSON wire form of a Trace.
type jsonTrace struct {
	Events []jsonEvent `json:"events"`
	Spans  []jsonSpan  `json:"spans,omitempty"`
	Params []Param     `json:"params,omitempty"`
}

// effectiveEpoch returns the instant timeline offsets are measured from:
// the trace's epoch, pulled back to the earliest recorded timestamp when a
// merged part predates it. Exported offsets are therefore never negative.
func (t *Trace) effectiveEpoch() time.Time {
	epoch := t.epoch
	min := func(ts time.Time) {
		if ts.IsZero() {
			return
		}
		if epoch.IsZero() || ts.Before(epoch) {
			epoch = ts
		}
	}
	for i := range t.Events {
		min(t.Events[i].Start)
	}
	for i := range t.spans {
		min(t.spans[i].Start)
	}
	return epoch
}

// hasTimestamps reports whether any event carries a real wall-clock start.
// Hand-built synthetic traces (tests, fixtures) typically do not; their
// timeline export falls back to back-to-back layout per track.
func (t *Trace) hasTimestamps() bool {
	for i := range t.Events {
		if !t.Events[i].Start.IsZero() {
			return true
		}
	}
	return false
}

// WriteJSON dumps the trace as JSON. Event start offsets are relative to
// the trace epoch (nanoseconds); synthetic events without timestamps
// report start_ns 0.
func (t *Trace) WriteJSON(w io.Writer) error {
	out := jsonTrace{Params: t.params}
	epoch := t.effectiveEpoch()
	rel := func(ts time.Time) int64 {
		if ts.IsZero() {
			return 0
		}
		return ts.Sub(epoch).Nanoseconds()
	}
	for i := range t.Events {
		e := &t.Events[i]
		out.Events = append(out.Events, jsonEvent{
			Seq:      e.Seq,
			Name:     e.Name,
			Kernel:   e.Kernel,
			Stage:    e.Stage,
			Category: e.Category.String(),
			Phase:    e.Phase.String(),
			StartNs:  rel(e.Start),
			Worker:   e.Worker,
			DurNs:    e.Dur.Nanoseconds(),
			FLOPs:    e.FLOPs,
			Bytes:    e.Bytes,
			Alloc:    e.Alloc,
			Sparsity: e.Sparsity,
		})
	}
	for i := range t.spans {
		s := &t.spans[i]
		if s.End.IsZero() {
			continue // still open: no defined extent to export
		}
		out.Spans = append(out.Spans, jsonSpan{
			Name:    s.Name,
			Kind:    s.Kind,
			Phase:   s.Phase.String(),
			Worker:  s.Worker,
			Depth:   s.Depth,
			StartNs: rel(s.Start),
			DurNs:   s.Duration().Nanoseconds(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// chromeEvent is one entry of the Chrome trace-event format, loadable in
// Perfetto (ui.perfetto.dev) and chrome://tracing. The exporter emits
// "X" complete events (operators and kernel chunks), "B"/"E" nested
// ranges (stages and fork regions), "M" metadata naming tracks, and "C"
// counter samples.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	TsUs float64                `json:"ts"`
	DUs  *float64               `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// Track layout of the Chrome export: one process per phase, one thread
// per execution lane (0 = the main engine goroutine, >0 = fork/pool
// workers), plus a counter process for the cumulative-FLOPs and
// output-sparsity tracks.
const (
	chromePIDCounters = 0 // "C" counter samples
	chromePIDNeural   = 1 // == int(Neural) + 1
	chromePIDSymbolic = 2 // == int(Symbolic) + 1
)

func chromePID(p Phase) int { return int(p) + 1 }

// sort priority at equal timestamps: metadata first, then range opens
// before the events they enclose, closes last.
const (
	priMeta = iota
	priBegin
	priComplete
	priEnd
)

func durPtr(d time.Duration) *float64 {
	us := float64(d.Nanoseconds()) / 1e3
	return &us
}

// WriteChromeTrace dumps the trace in the Chrome trace-event format as a
// timeline that is accurate to the wall clock: every operator renders at
// its real start time on the track of the lane that executed it, so a
// parallel-backend run shows its kernel chunks visibly overlapping across
// worker tracks while a serial run stays single-track per phase.
//
// Layout: one pid per phase (named via "M" process_name metadata), one
// tid per worker lane (lane 0 is the main engine), "B"/"E" ranges for
// stages and fork regions, "X" complete events for operators and kernel
// chunks, and "C" counter tracks for cumulative FLOPs and measured output
// sparsity. Traces whose events carry no timestamps (hand-built
// fixtures) fall back to back-to-back layout per track.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	type rec struct {
		ev  chromeEvent
		pri int
		ord int
	}
	var recs []rec
	add := func(pri int, ev chromeEvent) {
		recs = append(recs, rec{ev: ev, pri: pri, ord: len(recs)})
	}

	epoch := t.effectiveEpoch()
	real := t.hasTimestamps()
	rel := func(ts time.Time) float64 { return float64(ts.Sub(epoch).Nanoseconds()) / 1e3 }

	// tracks collects every (pid, tid) seen so metadata can name them.
	type track struct{ pid, tid int }
	tracks := map[track]bool{}

	// Operator events. Without real timestamps, lay events back-to-back
	// per track using their durations, preserving the pre-timeline
	// behaviour for synthetic traces.
	cursor := map[track]time.Duration{}
	starts := make([]float64, len(t.Events))
	for i := range t.Events {
		e := &t.Events[i]
		tr := track{chromePID(e.Phase), e.Worker}
		tracks[tr] = true
		var ts float64
		if real && !e.Start.IsZero() {
			ts = rel(e.Start)
		} else {
			ts = float64(cursor[tr].Nanoseconds()) / 1e3
			cursor[tr] += e.Dur
		}
		starts[i] = ts
		args := map[string]interface{}{
			"seq":      e.Seq,
			"kernel":   e.Kernel,
			"category": e.Category.String(),
			"flops":    e.FLOPs,
			"bytes":    e.Bytes,
		}
		if e.Stage != "" {
			args["stage"] = e.Stage
		}
		if e.Sparsity >= 0 {
			args["sparsity"] = e.Sparsity
		}
		add(priComplete, chromeEvent{
			Name: e.Name,
			Cat:  e.Category.String(),
			Ph:   "X",
			TsUs: ts,
			DUs:  durPtr(e.Dur),
			PID:  tr.pid,
			TID:  tr.tid,
			Args: args,
		})
	}

	// Spans: kernel chunks render as "X" complete events (they may
	// interleave freely across lanes), stages and fork regions as
	// properly nested "B"/"E" ranges. Spans exist only on traces with
	// real clocks, so no synthetic fallback is needed.
	for i := range t.spans {
		s := &t.spans[i]
		if s.End.IsZero() || s.Start.IsZero() {
			continue
		}
		tr := track{chromePID(s.Phase), s.Worker}
		tracks[tr] = true
		args := map[string]interface{}{"kind": s.Kind}
		if s.Kind == SpanChunk {
			add(priComplete, chromeEvent{
				Name: s.Name, Cat: s.Kind, Ph: "X",
				TsUs: rel(s.Start), DUs: durPtr(s.Duration()),
				PID: tr.pid, TID: tr.tid, Args: args,
			})
			continue
		}
		add(priBegin, chromeEvent{
			Name: s.Name, Cat: s.Kind, Ph: "B",
			TsUs: rel(s.Start), PID: tr.pid, TID: tr.tid, Args: args,
		})
		add(priEnd, chromeEvent{
			Name: s.Name, Cat: s.Kind, Ph: "E",
			TsUs: rel(s.End), PID: tr.pid, TID: tr.tid,
		})
	}

	// Counter tracks: cumulative FLOPs over the whole run, plus the
	// measured output sparsity of each instrumented operator.
	idx := make([]int, len(t.Events))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return starts[idx[a]] < starts[idx[b]] })
	var cumFLOPs int64
	for _, i := range idx {
		e := &t.Events[i]
		cumFLOPs += e.FLOPs
		add(priComplete, chromeEvent{
			Name: "cumulative FLOPs", Ph: "C", TsUs: starts[i],
			PID: chromePIDCounters, Args: map[string]interface{}{"flops": cumFLOPs},
		})
		if e.Sparsity >= 0 {
			add(priComplete, chromeEvent{
				Name: "output sparsity", Ph: "C", TsUs: starts[i],
				PID: chromePIDCounters, Args: map[string]interface{}{"sparsity": e.Sparsity},
			})
		}
	}
	if len(t.Events) > 0 {
		tracks[track{chromePIDCounters, 0}] = true
	}

	// Metadata: name every process (phase) and thread (worker lane).
	for tr := range tracks {
		var pname string
		switch tr.pid {
		case chromePIDCounters:
			pname = "counters"
		case chromePIDNeural:
			pname = "phase: neural"
		case chromePIDSymbolic:
			pname = "phase: symbolic"
		default:
			pname = fmt.Sprintf("process %d", tr.pid)
		}
		add(priMeta, chromeEvent{
			Name: "process_name", Ph: "M", PID: tr.pid, TID: 0,
			Args: map[string]interface{}{"name": pname},
		})
		tname := fmt.Sprintf("worker %d", tr.tid)
		if tr.tid == 0 {
			tname = "main"
		}
		add(priMeta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: tr.pid, TID: tr.tid,
			Args: map[string]interface{}{"name": tname},
		})
	}

	// Emit in timeline order: metadata first, then by timestamp with
	// opens before closes, so every track's stream is ts-monotone and
	// "B"/"E" pairs nest. Priority settles equal-timestamp ties; ord
	// keeps the sort deterministic.
	sort.SliceStable(recs, func(a, b int) bool {
		ra, rb := &recs[a], &recs[b]
		if (ra.pri == priMeta) != (rb.pri == priMeta) {
			return ra.pri == priMeta
		}
		if ra.ev.TsUs != rb.ev.TsUs {
			return ra.ev.TsUs < rb.ev.TsUs
		}
		if ra.pri != rb.pri {
			return ra.pri < rb.pri
		}
		return ra.ord < rb.ord
	})
	evs := make([]chromeEvent, len(recs))
	for i := range recs {
		evs[i] = recs[i].ev
	}
	return json.NewEncoder(w).Encode(map[string]interface{}{
		"traceEvents":     evs,
		"displayTimeUnit": "ms",
	})
}
