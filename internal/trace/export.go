package trace

import (
	"encoding/json"
	"io"
	"time"
)

// Export formats: machine-readable dumps of a trace for external tooling.

// jsonEvent is the JSON wire form of an Event.
type jsonEvent struct {
	Seq      int     `json:"seq"`
	Name     string  `json:"name"`
	Kernel   string  `json:"kernel,omitempty"`
	Stage    string  `json:"stage,omitempty"`
	Category string  `json:"category"`
	Phase    string  `json:"phase"`
	DurNs    int64   `json:"dur_ns"`
	FLOPs    int64   `json:"flops"`
	Bytes    int64   `json:"bytes"`
	Alloc    int64   `json:"alloc"`
	Sparsity float64 `json:"sparsity"`
}

// jsonTrace is the JSON wire form of a Trace.
type jsonTrace struct {
	Events []jsonEvent `json:"events"`
	Params []Param     `json:"params,omitempty"`
}

// WriteJSON dumps the trace as JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	out := jsonTrace{Params: t.params}
	for i := range t.Events {
		e := &t.Events[i]
		out.Events = append(out.Events, jsonEvent{
			Seq:      e.Seq,
			Name:     e.Name,
			Kernel:   e.Kernel,
			Stage:    e.Stage,
			Category: e.Category.String(),
			Phase:    e.Phase.String(),
			DurNs:    e.Dur.Nanoseconds(),
			FLOPs:    e.FLOPs,
			Bytes:    e.Bytes,
			Alloc:    e.Alloc,
			Sparsity: e.Sparsity,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// chromeEvent is one entry of the Chrome trace-event format ("traceEvents"
// array, "X" complete events), loadable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TsUs float64           `json:"ts"`
	DUs  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace dumps the trace in the Chrome trace-event format, with
// one timeline track per phase. Events are laid out back-to-back per track
// using their measured durations (the recorder does not keep absolute
// timestamps).
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	var evs []chromeEvent
	cursor := map[Phase]time.Duration{}
	for i := range t.Events {
		e := &t.Events[i]
		start := cursor[e.Phase]
		cursor[e.Phase] += e.Dur
		args := map[string]string{
			"kernel":   e.Kernel,
			"category": e.Category.String(),
		}
		if e.Stage != "" {
			args["stage"] = e.Stage
		}
		evs = append(evs, chromeEvent{
			Name: e.Name,
			Cat:  e.Category.String(),
			Ph:   "X",
			TsUs: float64(start.Nanoseconds()) / 1e3,
			DUs:  float64(e.Dur.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  int(e.Phase) + 1,
			Args: args,
		})
	}
	return json.NewEncoder(w).Encode(map[string]interface{}{
		"traceEvents":     evs,
		"displayTimeUnit": "ms",
	})
}
