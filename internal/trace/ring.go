package trace

import (
	"sync"
	"time"
)

// Recorder is a flight recorder: a fixed-capacity ring buffer holding the
// most recent operator events seen by an Observer, tagged with the
// request (or run) that produced them. A long-running service feeds every
// characterization's events through one Recorder so "what was the server
// just executing?" is answerable from a debug endpoint without having
// asked for a trace beforehand.
//
// The recorder is safe for concurrent use from any number of recording
// goroutines; a Record is one short critical section copying a fixed-size
// struct, cheap against the microseconds of the kernel it describes. Old
// entries are overwritten silently — Dropped reports how many.
type Recorder struct {
	mu    sync.Mutex
	buf   []RecordedEvent
	total uint64 // events ever recorded; total - len(buf) were overwritten
}

// RecordedEvent is one flight-recorder entry: the operator event plus the
// request scope and wall-clock instant it was recorded at.
type RecordedEvent struct {
	ID   string    // request/run identifier the event belongs to
	Time time.Time // wall clock at record time
	Ev   Event
}

// DefaultRecorderCapacity is the ring capacity NewRecorder falls back to
// when asked for a non-positive size. A single characterization emits a
// few dozen operator events, so 512 holds the last handful of requests —
// enough context to answer "what was the server just executing?".
const DefaultRecorderCapacity = 512

// NewRecorder returns a flight recorder keeping the last n events. A
// non-positive n selects DefaultRecorderCapacity: a zero- or one-slot
// ring would silently discard the history the recorder exists to keep,
// so callers that don't care about sizing get a useful default instead.
// (Callers that want *no* recorder should not construct one.)
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = DefaultRecorderCapacity
	}
	return &Recorder{buf: make([]RecordedEvent, 0, n)}
}

// Record appends one event under the given scope ID, overwriting the
// oldest entry when the buffer is full. The event is copied; the pointer
// may be reused by the caller immediately (the Observer contract).
func (r *Recorder) Record(id string, ev *Event) {
	entry := RecordedEvent{ID: id, Time: time.Now(), Ev: *ev}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, entry)
	} else {
		r.buf[r.total%uint64(cap(r.buf))] = entry
	}
	r.total++
	r.mu.Unlock()
}

// Observer returns an Observer that records every event under id.
// Install it on an engine (or chain it after a metrics observer) to feed
// the recorder from a characterization run.
func (r *Recorder) Observer(id string) Observer {
	return func(ev *Event) { r.Record(id, ev) }
}

// Snapshot returns the buffered events oldest-first. The slice is a copy;
// the recorder keeps running while the caller serializes it.
func (r *Recorder) Snapshot() []RecordedEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RecordedEvent, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	head := r.total % uint64(cap(r.buf)) // index of the oldest entry
	out = append(out, r.buf[head:]...)
	return append(out, r.buf[:head]...)
}

// Cap returns the recorder's capacity in events.
func (r *Recorder) Cap() int { return cap(r.buf) }

// Total returns how many events have ever been recorded.
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events have been overwritten.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.buf))
}
