package trace

import (
	"sync"
	"time"
)

// Recorder is a flight recorder: a fixed-capacity ring buffer holding the
// most recent operator events seen by an Observer, tagged with the
// request (or run) that produced them. A long-running service feeds every
// characterization's events through one Recorder so "what was the server
// just executing?" is answerable from a debug endpoint without having
// asked for a trace beforehand.
//
// Alongside operator events the recorder keeps a second ring of completed
// spans (RecordSpan) — serving-layer ranges like queue wait or batch
// windows, and engine stage/chunk ranges copied out of a finished run —
// under the same request-ID tagging. Both rings are indexed by request ID
// (EventsByID, SpansByID), which is what lets a routing tier reassemble
// one request's full cross-process timeline after the fact.
//
// The recorder is safe for concurrent use from any number of recording
// goroutines; a Record is one short critical section copying a fixed-size
// struct, cheap against the microseconds of the kernel it describes. Old
// entries are overwritten silently — Dropped reports how many.
type Recorder struct {
	mu         sync.Mutex
	buf        []RecordedEvent
	total      uint64 // events ever recorded; total - len(buf) were overwritten
	spans      []RecordedSpan
	spansTotal uint64
}

// RecordedEvent is one flight-recorder entry: the operator event plus the
// request scope and wall-clock instant it was recorded at.
type RecordedEvent struct {
	ID   string    // request/run identifier the event belongs to
	Time time.Time // wall clock at record time
	Ev   Event
}

// RecordedSpan is one flight-recorder span entry: a completed wall-clock
// range tagged with the request that produced it.
type RecordedSpan struct {
	ID   string // request/run identifier the span belongs to
	Span Span
}

// DefaultRecorderCapacity is the ring capacity NewRecorder falls back to
// when asked for a non-positive size. A single characterization emits a
// few dozen operator events, so 512 holds the last handful of requests —
// enough context to answer "what was the server just executing?".
const DefaultRecorderCapacity = 512

// NewRecorder returns a flight recorder keeping the last n events. A
// non-positive n selects DefaultRecorderCapacity: a zero- or one-slot
// ring would silently discard the history the recorder exists to keep,
// so callers that don't care about sizing get a useful default instead.
// (Callers that want *no* recorder should not construct one.)
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = DefaultRecorderCapacity
	}
	return &Recorder{buf: make([]RecordedEvent, 0, n)}
}

// Record appends one event under the given scope ID, overwriting the
// oldest entry when the buffer is full. The event is copied; the pointer
// may be reused by the caller immediately (the Observer contract).
func (r *Recorder) Record(id string, ev *Event) {
	entry := RecordedEvent{ID: id, Time: time.Now(), Ev: *ev}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, entry)
	} else {
		r.buf[r.total%uint64(cap(r.buf))] = entry
	}
	r.total++
	r.mu.Unlock()
}

// RecordSpan appends one completed span under the given scope ID,
// overwriting the oldest span entry when the span ring is full. Open spans
// (zero End) are dropped: a span without an extent cannot be placed on a
// timeline, and recording it would leak an unclosed range into exports.
func (r *Recorder) RecordSpan(id string, s Span) {
	if s.End.IsZero() {
		return
	}
	entry := RecordedSpan{ID: id, Span: s}
	r.mu.Lock()
	if len(r.spans) < cap(r.buf) {
		r.spans = append(r.spans, entry)
	} else {
		r.spans[r.spansTotal%uint64(cap(r.buf))] = entry
	}
	r.spansTotal++
	r.mu.Unlock()
}

// RecordSpans appends every completed span in ss under id — the bulk form
// used to copy a finished run's stage/fork/chunk ranges into the recorder.
func (r *Recorder) RecordSpans(id string, ss []Span) {
	for _, s := range ss {
		r.RecordSpan(id, s)
	}
}

// Observer returns an Observer that records every event under id.
// Install it on an engine (or chain it after a metrics observer) to feed
// the recorder from a characterization run.
func (r *Recorder) Observer(id string) Observer {
	return func(ev *Event) { r.Record(id, ev) }
}

// Snapshot returns the buffered events oldest-first. The slice is a copy;
// the recorder keeps running while the caller serializes it.
func (r *Recorder) Snapshot() []RecordedEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RecordedEvent, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	head := r.total % uint64(cap(r.buf)) // index of the oldest entry
	out = append(out, r.buf[head:]...)
	return append(out, r.buf[:head]...)
}

// SnapshotSpans returns the buffered spans oldest-first. The slice is a
// copy; the recorder keeps running while the caller serializes it.
func (r *Recorder) SnapshotSpans() []RecordedSpan {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RecordedSpan, 0, len(r.spans))
	if len(r.spans) < cap(r.buf) {
		return append(out, r.spans...)
	}
	head := r.spansTotal % uint64(cap(r.buf))
	out = append(out, r.spans[head:]...)
	return append(out, r.spans[:head]...)
}

// EventsByID returns the buffered events recorded under id, oldest-first.
// Only entries still in the ring are returned: a request whose events were
// overwritten by later traffic yields a shorter (possibly empty) slice.
func (r *Recorder) EventsByID(id string) []RecordedEvent {
	all := r.Snapshot()
	var out []RecordedEvent
	for _, e := range all {
		if e.ID == id {
			out = append(out, e)
		}
	}
	return out
}

// SpansByID returns the buffered spans recorded under id, oldest-first.
func (r *Recorder) SpansByID(id string) []RecordedSpan {
	all := r.SnapshotSpans()
	var out []RecordedSpan
	for _, s := range all {
		if s.ID == id {
			out = append(out, s)
		}
	}
	return out
}

// Cap returns the recorder's capacity in events.
func (r *Recorder) Cap() int { return cap(r.buf) }

// Total returns how many events have ever been recorded.
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events have been overwritten.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.buf))
}

// SpansTotal returns how many spans have ever been recorded.
func (r *Recorder) SpansTotal() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spansTotal
}
