package trace

import (
	"encoding/json"
	"fmt"
)

// ChromeStats summarizes a validated Chrome trace for smoke checks and
// the validate command's report.
type ChromeStats struct {
	Events   int // "X" complete events
	Ranges   int // matched "B"/"E" pairs
	Counters int // "C" samples
	Tracks   int // distinct (pid, tid) pairs carrying events
}

// ValidateChrome checks that data is a well-formed Chrome trace-event
// JSON document as WriteChromeTrace emits it: a traceEvents array whose
// entries carry known phase codes, where every "B" has a matching "E" on
// the same track (properly nested, balanced at the end), timestamps are
// non-negative and non-decreasing per track, and "X" durations are
// non-negative. It is the machine check behind the CI trace-shape smoke
// step and the export tests.
func ValidateChrome(data []byte) (ChromeStats, error) {
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			PID  int      `json:"pid"`
			TID  int      `json:"tid"`
		} `json:"traceEvents"`
	}
	var stats ChromeStats
	if err := json.Unmarshal(data, &doc); err != nil {
		return stats, fmt.Errorf("trace: invalid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return stats, fmt.Errorf("trace: missing traceEvents array")
	}
	type track struct{ pid, tid int }
	lastTs := map[track]float64{}
	stacks := map[track][]string{}
	seen := map[track]bool{}
	for i, ev := range doc.TraceEvents {
		tr := track{ev.PID, ev.TID}
		switch ev.Ph {
		case "M":
			continue // metadata carries no timeline position
		case "X", "B", "E", "C":
		default:
			return stats, fmt.Errorf("trace: event %d: unknown phase code %q", i, ev.Ph)
		}
		if ev.Ts == nil {
			return stats, fmt.Errorf("trace: event %d (%s %q): missing ts", i, ev.Ph, ev.Name)
		}
		if *ev.Ts < 0 {
			return stats, fmt.Errorf("trace: event %d (%s %q): negative ts %v", i, ev.Ph, ev.Name, *ev.Ts)
		}
		if prev, ok := lastTs[tr]; ok && *ev.Ts < prev {
			return stats, fmt.Errorf("trace: event %d (%s %q): ts %v regresses below %v on track pid=%d tid=%d",
				i, ev.Ph, ev.Name, *ev.Ts, prev, tr.pid, tr.tid)
		}
		lastTs[tr] = *ev.Ts
		if !seen[tr] {
			seen[tr] = true
			stats.Tracks++
		}
		switch ev.Ph {
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				return stats, fmt.Errorf("trace: event %d (X %q): missing or negative dur", i, ev.Name)
			}
			stats.Events++
		case "B":
			stacks[tr] = append(stacks[tr], ev.Name)
		case "E":
			st := stacks[tr]
			if len(st) == 0 {
				return stats, fmt.Errorf("trace: event %d (E %q): no open B on track pid=%d tid=%d", i, ev.Name, tr.pid, tr.tid)
			}
			stacks[tr] = st[:len(st)-1]
			stats.Ranges++
		case "C":
			stats.Counters++
		}
	}
	for tr, st := range stacks {
		if len(st) > 0 {
			return stats, fmt.Errorf("trace: track pid=%d tid=%d has %d unclosed B events (innermost %q)",
				tr.pid, tr.tid, len(st), st[len(st)-1])
		}
	}
	return stats, nil
}
