// Command validate checks a Chrome trace-event JSON file (as written by
// nsprof/nsbench -chrome-trace or nsserve's /v1/trace endpoint) for
// structural validity: every "B" matched by an "E", timestamps monotone
// per track, durations non-negative. CI runs it against a fresh
// parallel-backend trace so a malformed export fails the build before a
// human ever opens Perfetto.
//
// Usage:
//
//	go run ./internal/trace/cmd/validate trace.json
//	nsprof -workload NVSA -chrome-trace /dev/stdout | go run ./internal/trace/cmd/validate -
package main

import (
	"fmt"
	"io"
	"os"

	"github.com/neurosym/nsbench/internal/trace"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: validate <trace.json | ->")
		os.Exit(2)
	}
	var (
		data []byte
		err  error
	)
	if os.Args[1] == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
	stats, err := trace.ValidateChrome(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
	fmt.Printf("ok: %d events, %d ranges, %d counter samples, %d tracks\n",
		stats.Events, stats.Ranges, stats.Counters, stats.Tracks)
}
