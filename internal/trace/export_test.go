package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func exportTrace() *Trace {
	tr := New()
	e1 := mkEvent("MatMul", MatMul, Neural, 2*time.Millisecond, 100, 200)
	e1.Kernel = "sgemm_nn"
	tr.Append(e1)
	e2 := mkEvent("CircularConv", VectorEltwise, Symbolic, 3*time.Millisecond, 50, 400)
	e2.Stage = "bind"
	tr.Append(e2)
	tr.RegisterParam(Param{Name: "w", Kind: "weight", Bytes: 64})
	return tr
}

// decodeChrome parses a chrome trace into its raw event list.
type rawChromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	Args map[string]interface{} `json:"args"`
}

func decodeChrome(t *testing.T, data []byte) []rawChromeEvent {
	t.Helper()
	var doc struct {
		TraceEvents []rawChromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid chrome trace: %v", err)
	}
	return doc.TraceEvents
}

func filterPh(evs []rawChromeEvent, ph string) []rawChromeEvent {
	var out []rawChromeEvent
	for _, ev := range evs {
		if ev.Ph == ph {
			out = append(out, ev)
		}
	}
	return out
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := exportTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Events []map[string]interface{} `json:"events"`
		Params []map[string]interface{} `json:"params"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded.Events) != 2 || len(decoded.Params) != 1 {
		t.Fatalf("decoded %d events, %d params", len(decoded.Events), len(decoded.Params))
	}
	ev := decoded.Events[0]
	if ev["name"] != "MatMul" || ev["phase"] != "neural" || ev["kernel"] != "sgemm_nn" {
		t.Fatalf("event 0 = %v", ev)
	}
	if ev["dur_ns"].(float64) != 2e6 {
		t.Fatalf("duration = %v", ev["dur_ns"])
	}
	if _, ok := ev["worker"]; !ok {
		t.Fatalf("event 0 has no worker lane: %v", ev)
	}
	if decoded.Events[1]["stage"] != "bind" {
		t.Fatalf("stage missing: %v", decoded.Events[1])
	}
}

func TestWriteJSONStartOffsets(t *testing.T) {
	tr := New()
	epoch := tr.Epoch()
	e1 := mkEvent("a", Other, Neural, time.Millisecond, 0, 0)
	e1.Start = epoch.Add(5 * time.Microsecond)
	tr.Append(e1)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Events []struct {
			StartNs int64 `json:"start_ns"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Events[0].StartNs != 5000 {
		t.Fatalf("start_ns = %d, want 5000", decoded.Events[0].StartNs)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := exportTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeChrome(t, buf.Bytes())
	xs := filterPh(evs, "X")
	if len(xs) != 2 {
		t.Fatalf("X events = %d, want 2", len(xs))
	}
	for _, ev := range xs {
		if ev.Dur <= 0 {
			t.Fatalf("bad event %+v", ev)
		}
	}
	// The two phases land on distinct processes (one pid per phase).
	if xs[0].PID == xs[1].PID {
		t.Fatal("phases must use distinct pids")
	}
	// Tracks are named via metadata.
	named := map[string]bool{}
	for _, m := range filterPh(evs, "M") {
		if n, ok := m.Args["name"].(string); ok {
			named[n] = true
		}
	}
	for _, want := range []string{"phase: neural", "phase: symbolic", "main"} {
		if !named[want] {
			t.Fatalf("missing %q track metadata; have %v", want, named)
		}
	}
	if !strings.Contains(buf.String(), "displayTimeUnit") {
		t.Fatal("missing displayTimeUnit")
	}
	if _, err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
}

// Synthetic traces (no wall-clock timestamps) keep the back-to-back
// layout per track, so fixtures remain renderable.
func TestChromeTraceSyntheticPacksBackToBack(t *testing.T) {
	tr := New()
	tr.Append(mkEvent("a", Other, Symbolic, time.Millisecond, 0, 0))
	tr.Append(mkEvent("b", Other, Symbolic, time.Millisecond, 0, 0))
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ts []float64
	for _, ev := range decodeChrome(t, buf.Bytes()) {
		if ev.Ph == "X" {
			ts = append(ts, ev.Ts)
		}
	}
	if len(ts) != 2 || ts[0] != 0 || ts[1] != 1000 {
		t.Fatalf("timestamps = %v, want [0 1000]", ts)
	}
}

// Real timestamps survive the export verbatim: events on different
// lanes may overlap in time, which is the whole point of the timeline.
func TestChromeTraceRealTimestamps(t *testing.T) {
	tr := New()
	epoch := tr.Epoch()
	mk := func(name string, worker int, startUs, durUs int64) {
		ev := mkEvent(name, MatMul, Neural, time.Duration(durUs)*time.Microsecond, 0, 0)
		ev.Start = epoch.Add(time.Duration(startUs) * time.Microsecond)
		ev.Worker = worker
		tr.Append(ev)
	}
	mk("w1", 1, 10, 100) // overlaps w2 in [20, 110)
	mk("w2", 2, 20, 100)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	xs := filterPh(decodeChrome(t, buf.Bytes()), "X")
	if len(xs) != 2 {
		t.Fatalf("X events = %d", len(xs))
	}
	if xs[0].Ts != 10 || xs[1].Ts != 20 {
		t.Fatalf("timestamps = %v %v, want 10 20", xs[0].Ts, xs[1].Ts)
	}
	if xs[0].TID == xs[1].TID {
		t.Fatal("workers must land on distinct tids")
	}
	if xs[0].Ts+xs[0].Dur <= xs[1].Ts {
		t.Fatal("events should overlap in time")
	}
	if _, err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

// Stage spans export as nested, balanced B/E ranges; chunk spans as X
// events on their worker's track.
func TestChromeTraceSpans(t *testing.T) {
	tr := New()
	epoch := tr.Epoch()
	at := func(us int64) time.Time { return epoch.Add(time.Duration(us) * time.Microsecond) }

	tr.BeginSpan(Span{Name: "outer", Kind: SpanStage, Phase: Symbolic, Start: at(0)})
	tr.BeginSpan(Span{Name: "inner", Kind: SpanStage, Phase: Symbolic, Start: at(10)})
	ev := mkEvent("op", Other, Symbolic, 5*time.Microsecond, 0, 0)
	ev.Start = at(12)
	tr.Append(ev)
	tr.EndAt(at(20))
	tr.EndAt(at(30))
	tr.AddSpan(Span{Name: "sgemm_nn", Kind: SpanChunk, Phase: Symbolic, Worker: 3, Start: at(2), End: at(8)})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeChrome(t, buf.Bytes())
	bs, es := filterPh(evs, "B"), filterPh(evs, "E")
	if len(bs) != 2 || len(es) != 2 {
		t.Fatalf("B/E = %d/%d, want 2/2", len(bs), len(es))
	}
	if bs[0].Name != "outer" || bs[1].Name != "inner" {
		t.Fatalf("B order = %q %q, want outer inner", bs[0].Name, bs[1].Name)
	}
	var chunk *rawChromeEvent
	for i, x := range filterPh(evs, "X") {
		if x.Name == "sgemm_nn" {
			chunk = &filterPh(evs, "X")[i]
		}
	}
	if chunk == nil || chunk.TID != 3 {
		t.Fatalf("chunk span missing or on wrong track: %+v", chunk)
	}
	stats, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ranges != 2 {
		t.Fatalf("validator counted %d ranges, want 2", stats.Ranges)
	}
}

// Open (un-Ended) spans are skipped: no dangling B without E.
func TestChromeTraceSkipsOpenSpans(t *testing.T) {
	tr := New()
	tr.Begin("never-closed")
	ev := mkEvent("op", Other, Neural, time.Microsecond, 0, 0)
	ev.Start = tr.Epoch().Add(time.Microsecond)
	tr.Append(ev)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeChrome(t, buf.Bytes())
	if n := len(filterPh(evs, "B")); n != 0 {
		t.Fatalf("open span leaked %d B events", n)
	}
	if _, err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestChromeTraceCounters(t *testing.T) {
	tr := New()
	epoch := tr.Epoch()
	e1 := mkEvent("a", MatMul, Neural, time.Microsecond, 100, 0)
	e1.Start = epoch.Add(1 * time.Microsecond)
	tr.Append(e1)
	e2 := mkEvent("b", MatMul, Neural, time.Microsecond, 50, 0)
	e2.Start = epoch.Add(2 * time.Microsecond)
	e2.Sparsity = 0.75
	tr.Append(e2)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var flops []float64
	var sparsity []float64
	for _, c := range filterPh(decodeChrome(t, buf.Bytes()), "C") {
		switch c.Name {
		case "cumulative FLOPs":
			flops = append(flops, c.Args["flops"].(float64))
		case "output sparsity":
			sparsity = append(sparsity, c.Args["sparsity"].(float64))
		}
	}
	if len(flops) != 2 || flops[0] != 100 || flops[1] != 150 {
		t.Fatalf("cumulative FLOPs samples = %v, want [100 150]", flops)
	}
	if len(sparsity) != 1 || sparsity[0] != 0.75 {
		t.Fatalf("sparsity samples = %v, want [0.75]", sparsity)
	}
}

func TestExportEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := New().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateChromeRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not JSON":       `{`,
		"no traceEvents": `{"foo": []}`,
		"unknown ph":     `{"traceEvents":[{"ph":"Q","ts":0,"pid":1,"tid":0}]}`,
		"missing ts":     `{"traceEvents":[{"ph":"X","dur":1,"pid":1,"tid":0}]}`,
		"negative dur":   `{"traceEvents":[{"ph":"X","ts":0,"dur":-1,"pid":1,"tid":0}]}`,
		"unmatched B":    `{"traceEvents":[{"ph":"B","name":"s","ts":0,"pid":1,"tid":0}]}`,
		"unmatched E":    `{"traceEvents":[{"ph":"E","ts":0,"pid":1,"tid":0}]}`,
		"ts regression": `{"traceEvents":[
			{"ph":"X","ts":10,"dur":1,"pid":1,"tid":0},
			{"ph":"X","ts":5,"dur":1,"pid":1,"tid":0}]}`,
	}
	for label, data := range cases {
		if _, err := ValidateChrome([]byte(data)); err == nil {
			t.Errorf("%s: validator accepted malformed trace", label)
		}
	}
	// Regression on one track is fine when the other track advances.
	ok := `{"traceEvents":[
		{"ph":"X","ts":10,"dur":1,"pid":1,"tid":0},
		{"ph":"X","ts":5,"dur":1,"pid":1,"tid":1}]}`
	if _, err := ValidateChrome([]byte(ok)); err != nil {
		t.Errorf("per-track monotonicity misapplied across tracks: %v", err)
	}
}
