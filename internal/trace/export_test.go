package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func exportTrace() *Trace {
	tr := New()
	e1 := mkEvent("MatMul", MatMul, Neural, 2*time.Millisecond, 100, 200)
	e1.Kernel = "sgemm_nn"
	tr.Append(e1)
	e2 := mkEvent("CircularConv", VectorEltwise, Symbolic, 3*time.Millisecond, 50, 400)
	e2.Stage = "bind"
	tr.Append(e2)
	tr.RegisterParam(Param{Name: "w", Kind: "weight", Bytes: 64})
	return tr
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := exportTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Events []map[string]interface{} `json:"events"`
		Params []map[string]interface{} `json:"params"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded.Events) != 2 || len(decoded.Params) != 1 {
		t.Fatalf("decoded %d events, %d params", len(decoded.Events), len(decoded.Params))
	}
	ev := decoded.Events[0]
	if ev["name"] != "MatMul" || ev["phase"] != "neural" || ev["kernel"] != "sgemm_nn" {
		t.Fatalf("event 0 = %v", ev)
	}
	if ev["dur_ns"].(float64) != 2e6 {
		t.Fatalf("duration = %v", ev["dur_ns"])
	}
	if decoded.Events[1]["stage"] != "bind" {
		t.Fatalf("stage missing: %v", decoded.Events[1])
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := exportTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid chrome trace: %v", err)
	}
	if len(decoded.TraceEvents) != 2 {
		t.Fatalf("events = %d", len(decoded.TraceEvents))
	}
	for _, ev := range decoded.TraceEvents {
		if ev.Ph != "X" || ev.Dur <= 0 {
			t.Fatalf("bad event %+v", ev)
		}
	}
	// The two phases land on distinct timeline tracks.
	if decoded.TraceEvents[0].TID == decoded.TraceEvents[1].TID {
		t.Fatal("phases must use distinct tracks")
	}
	if !strings.Contains(buf.String(), "displayTimeUnit") {
		t.Fatal("missing displayTimeUnit")
	}
}

func TestChromeTracePhaseTracksPackBackToBack(t *testing.T) {
	tr := New()
	tr.Append(mkEvent("a", Other, Symbolic, time.Millisecond, 0, 0))
	tr.Append(mkEvent("b", Other, Symbolic, time.Millisecond, 0, 0))
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Ts float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.TraceEvents[0].Ts != 0 || decoded.TraceEvents[1].Ts != 1000 {
		t.Fatalf("timestamps = %+v", decoded.TraceEvents)
	}
}

func TestExportEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := New().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
}
