// Batch trace splitting: turning the trace of one batched engine pass
// back into per-item traces so every request in a coalesced batch gets an
// individual report.
package trace

import (
	"fmt"
	"time"
)

// SplitBatch splits the trace of a natively batched run into n per-item
// traces. A native batch records, by construction, exactly n× the
// analytic cost of one item on every event — materialized batch tensors
// scale the size-linear cost formulas, and replica-amplified regions
// multiply explicitly — so the per-item trace is the same event stream
// with FLOPs, Bytes, Alloc and Dur divided by n. Sparsity, phases,
// stages, dependencies, params and spans are item-invariant and copied
// verbatim. An event whose counters are not divisible by n means the
// workload broke the uniformity contract, and SplitBatch reports it
// rather than silently mis-attributing cost.
func SplitBatch(t *Trace, n int) ([]*Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: SplitBatch batch size %d", n)
	}
	if n == 1 {
		return []*Trace{t}, nil
	}
	k := int64(n)
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.FLOPs%k != 0 || ev.Bytes%k != 0 || ev.Alloc%k != 0 {
			return nil, fmt.Errorf("trace: SplitBatch event %d (%s) not uniform in batch %d (flops=%d bytes=%d alloc=%d)",
				i, ev.Name, n, ev.FLOPs, ev.Bytes, ev.Alloc)
		}
	}
	parts := make([]*Trace, n)
	for i := range parts {
		p := New()
		p.SetEpoch(t.epoch)
		for _, ev := range t.Events {
			ev.FLOPs /= k
			ev.Bytes /= k
			ev.Alloc /= k
			ev.Dur /= time.Duration(n)
			p.Append(ev)
		}
		p.params = append(p.params, t.params...)
		p.spans = append(p.spans, t.spans...)
		parts[i] = p
	}
	return parts, nil
}
