package chaos

import (
	"bufio"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestChaosSoak is the CI soak scenario: it builds cmd/nschaos and runs
// a real multi-second seeded soak — 3 replicas, replication 2, 2 hard
// kills with restarts, 1 extra runtime join, latency and drop fault
// windows — against the paper's LNN/LTN workloads, requiring every
// invariant to hold (zero failed requests, byte-stable deterministic
// report fields across generations, SLO budgets intact, stitched traces
// valid).
//
// Gated behind NSCHAOS_SOAK=1 because it builds a binary and runs for
// NSCHAOS_DURATION (default 45s); CI runs it as a dedicated step and
// uploads the JSONL event log (NSCHAOS_EVENTS) as an artifact.
func TestChaosSoak(t *testing.T) {
	if os.Getenv("NSCHAOS_SOAK") == "" {
		t.Skip("set NSCHAOS_SOAK=1 to run the chaos soak")
	}
	bin := filepath.Join(t.TempDir(), "nschaos")
	build := exec.Command("go", "build", "-o", bin, "./cmd/nschaos")
	build.Dir = "../.." // module root; the test runs in internal/chaos
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cmd/nschaos: %v\n%s", err, out)
	}

	duration := os.Getenv("NSCHAOS_DURATION")
	if duration == "" {
		duration = "45s"
	}
	events := os.Getenv("NSCHAOS_EVENTS")
	if events == "" {
		events = filepath.Join(t.TempDir(), "chaos-events.jsonl")
	}
	cmd := exec.Command(bin,
		"-duration", duration,
		"-replicas", "3",
		"-replication", "2",
		"-kills", "2",
		"-joins", "1",
		"-seed", "7",
		"-clients", "3",
		"-events", events,
	)
	out, err := cmd.CombinedOutput()
	t.Logf("nschaos output:\n%s", out)
	if err != nil {
		t.Fatalf("soak failed: %v", err)
	}
	if !strings.Contains(string(out), "invariants: ok") {
		t.Fatalf("soak exited 0 without an invariants verdict")
	}

	// The event-log artifact must carry the full schedule: both kills,
	// both restarts, the scheduled join, and the fault windows.
	f, err := os.Open(events)
	if err != nil {
		t.Fatalf("event log artifact missing: %v", err)
	}
	defer f.Close()
	kinds := map[string]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Bytes(), err)
		}
		kinds[ev.Kind]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if kinds[EventKill] != 2 || kinds[EventRestart] != 2 {
		t.Fatalf("event log kills/restarts = %d/%d, want 2/2 (%v)", kinds[EventKill], kinds[EventRestart], kinds)
	}
	// 3 initial + 2 restarts + 1 scheduled runtime join.
	if kinds[EventJoin] != 6 {
		t.Fatalf("event log joins = %d, want 6 (%v)", kinds[EventJoin], kinds)
	}
	if kinds[EventFaultOn] == 0 || kinds[EventFaultOff] == 0 {
		t.Fatalf("event log has no fault windows: %v", kinds)
	}
	if kinds[EventViolation] != 0 {
		t.Fatalf("event log records %d violations", kinds[EventViolation])
	}
}
