package chaos

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one entry of a scenario's fault/lifecycle timeline: a replica
// crash, a restart, a runtime join, a fault-window edge, or an end-of-run
// invariant check. The sequence number orders events totally (timestamps
// can collide at millisecond resolution), and AtMs is relative to
// scenario start so two runs of the same seed produce comparable logs.
type Event struct {
	Seq    int    `json:"seq"`
	AtMs   int64  `json:"at_ms"`
	Kind   string `json:"kind"`
	Node   string `json:"node,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Event kinds emitted by the runner.
const (
	EventKill      = "kill"      // replica crashed (listener severed, no leave sent)
	EventRestart   = "restart"   // a new generation started in the victim's slot
	EventJoin      = "join"      // a replica began announcing to the router
	EventFaultOn   = "fault.on"  // a proxy fault window opened (detail names it)
	EventFaultOff  = "fault.off" // a proxy fault window closed
	EventCheck     = "check"     // an end-of-run invariant was evaluated
	EventViolation = "violation" // an invariant failed (detail says how)
	EventMilestone = "milestone" // scenario lifecycle (start, traffic-done, ...)
)

// EventLog is the scenario's append-only event journal. Every Record is
// written through to the sink immediately as one JSON line (so a crashed
// soak run still leaves a usable artifact) and kept in memory for the
// Result.
type EventLog struct {
	mu     sync.Mutex
	start  time.Time
	sink   io.Writer // may be nil
	events []Event
}

// NewEventLog starts a journal; sink may be nil to keep events in memory
// only.
func NewEventLog(sink io.Writer) *EventLog {
	return &EventLog{start: time.Now(), sink: sink}
}

// Record appends one event and flushes it to the sink as a JSONL line.
func (l *EventLog) Record(kind, node, detail string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ev := Event{
		Seq:    len(l.events),
		AtMs:   time.Since(l.start).Milliseconds(),
		Kind:   kind,
		Node:   node,
		Detail: detail,
	}
	l.events = append(l.events, ev)
	if l.sink != nil {
		if b, err := json.Marshal(ev); err == nil {
			l.sink.Write(append(b, '\n'))
		}
	}
}

// Events returns a copy of the journal so far.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}
