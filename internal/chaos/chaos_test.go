package chaos

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/neurosym/nsbench/internal/core"
	"github.com/neurosym/nsbench/internal/ops"
	"github.com/neurosym/nsbench/internal/tensor"
)

// chaosWorkload is a registry workload cheap enough to characterize
// thousands of times in the fast scenario test.
type chaosWorkload struct{ name string }

func (c *chaosWorkload) Name() string     { return c.name }
func (c *chaosWorkload) Category() string { return "Test" }
func (c *chaosWorkload) Run(e *ops.Engine) error {
	g := tensor.NewRNG(13)
	e.Add(g.Normal(0, 1, 64), g.Normal(0, 1, 64))
	return nil
}

var registerOnce sync.Once

func fastWorkloads() []string {
	registerOnce.Do(func() {
		core.RegisterWorkload("chaosfast-a", func() core.Workload { return &chaosWorkload{name: "chaosfast-a"} })
		core.RegisterWorkload("chaosfast-b", func() core.Workload { return &chaosWorkload{name: "chaosfast-b"} })
	})
	return []string{"chaosfast-a", "chaosfast-b"}
}

// eventKinds tallies a scenario's event log by kind.
func eventKinds(events []Event) map[string]int {
	out := map[string]int{}
	for _, ev := range events {
		out[ev.Kind]++
	}
	return out
}

// TestChaosScenarioHoldsInvariants is the always-on end of the harness:
// a short seeded scenario — 2 replicas + 1 runtime join, 1 crash with
// restart, latency and connection-drop fault windows, mixed traffic —
// must complete with every invariant green.
func TestChaosScenarioHoldsInvariants(t *testing.T) {
	var events bytes.Buffer
	res, err := Run(Config{
		Replicas:    2,
		Replication: 2,
		Seed:        42,
		Duration:    1500 * time.Millisecond,
		Clients:     2,
		Kills:       1,
		Joins:       1,
		Workloads:   fastWorkloads(),
		Devices:     []string{"RTX 2080 Ti", "Xavier NX"},
		Events:      &events,
	})
	if err != nil {
		t.Fatalf("scenario did not run: %v", err)
	}
	if verr := res.Err(); verr != nil {
		t.Fatalf("invariants violated: %v\nfailures: %+v", verr, res.Failures)
	}
	if res.Requests == 0 || res.ByKind["characterize"] == 0 {
		t.Fatalf("no traffic flowed: %+v", res)
	}
	// 2 initial + 1 restart + 1 join = 4 generations.
	if res.Generations != 4 {
		t.Fatalf("generations = %d, want 4 (2 initial + restart + join)", res.Generations)
	}
	kinds := eventKinds(res.Events)
	for _, want := range []string{EventKill, EventRestart, EventJoin, EventFaultOn, EventFaultOff, EventCheck} {
		if kinds[want] == 0 {
			t.Errorf("event log has no %q event: %v", want, kinds)
		}
	}
	// 2 initial joins + 1 restart + 1 scheduled join announce themselves.
	if kinds[EventJoin] != 4 {
		t.Errorf("join events = %d, want 4", kinds[EventJoin])
	}

	// The sink received the same timeline as valid JSONL, in order.
	var seq int
	sc := bufio.NewScanner(&events)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Bytes(), err)
		}
		if ev.Seq != seq {
			t.Fatalf("event seq %d out of order (want %d)", ev.Seq, seq)
		}
		seq++
	}
	if seq != len(res.Events) {
		t.Fatalf("sink saw %d events, result has %d", seq, len(res.Events))
	}
}

// TestChaosSeedDeterminesSchedule: two runs of the same seed produce the
// same fault timeline (same event kinds in the same order — timing
// jitter aside, the schedule is a pure function of seed and duration).
func TestChaosSeedDeterminesSchedule(t *testing.T) {
	run := func() []string {
		res, err := Run(Config{
			Replicas:  2,
			Seed:      7,
			Duration:  900 * time.Millisecond,
			Clients:   1,
			Kills:     1,
			Joins:     1,
			Workloads: fastWorkloads(),
			Devices:   []string{"RTX 2080 Ti"},
		})
		if err != nil {
			t.Fatalf("scenario did not run: %v", err)
		}
		var kinds []string
		for _, ev := range res.Events {
			// Traffic-dependent check details vary; the fault schedule is
			// the deterministic spine.
			switch ev.Kind {
			case EventKill, EventRestart, EventJoin, EventFaultOn, EventFaultOff:
				kinds = append(kinds, ev.Kind+":"+ev.Detail)
			}
		}
		return kinds
	}
	a, b := run(), run()
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("same seed, different schedules:\n%v\nvs\n%v", a, b)
	}
}

// TestFaultProxyLatency: an injected delay is observed by the client and
// clears cleanly.
func TestFaultProxyLatency(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer backend.Close()
	p, err := NewFaultProxy(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	p.SetLatency(50 * time.Millisecond)
	start := time.Now()
	resp, err := http.Get(p.URL())
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("latency fault not applied: request took %v", d)
	}
	p.SetLatency(0)
	start = time.Now()
	resp, err = http.Get(p.URL())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("latency fault did not clear: request took %v", d)
	}
}

// TestFaultProxyDrop: with drop-every-1 every connection is severed (a
// transport error, not an HTTP status); clearing restores service.
func TestFaultProxyDrop(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer backend.Close()
	p, err := NewFaultProxy(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	p.SetDropEvery(1)
	client := &http.Client{Timeout: 2 * time.Second}
	if resp, err := client.Get(p.URL()); err == nil {
		resp.Body.Close()
		t.Fatal("dropped connection still answered")
	}
	p.SetDropEvery(0)
	resp, err := client.Get(p.URL())
	if err != nil {
		t.Fatalf("proxy did not recover after clearing the drop fault: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "ok" {
		t.Fatalf("proxied body %q, want ok", b)
	}
}

// TestEventLogJSONL: records stream to the sink immediately as ordered
// JSON lines and stay available in memory.
func TestEventLogJSONL(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.Record(EventKill, "http://x:1", "gen1")
	l.Record(EventRestart, "http://y:2", "gen2")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink has %d lines, want 2", len(lines))
	}
	var first Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Seq != 0 || first.Kind != EventKill || first.Node != "http://x:1" {
		t.Fatalf("first event = %+v", first)
	}
	evs := l.Events()
	if len(evs) != 2 || evs[1].Seq != 1 || evs[1].Kind != EventRestart {
		t.Fatalf("in-memory events = %+v", evs)
	}
}
