// Package chaos is the deterministic fault-injection and soak harness
// for the nsbench serving tier. A scenario stands up a real cluster — an
// nsrouter (internal/cluster) with dynamic membership enabled and N
// nsserve replicas (internal/serve) behind per-replica FaultProxy shims,
// all on real localhost listeners — and then does two things at once:
//
//   - drives sustained mixed traffic (characterize hits and misses,
//     coalescing bursts, design-space sweeps) from seeded generators, and
//   - executes a seeded fault schedule against the replicas: hard kills
//     (listener severed mid-flight, no leave announcement), delayed
//     restarts that re-join the ring at runtime as new generations,
//     extra runtime joins, and latency/connection-drop fault windows.
//
// The harness asserts the serving tier's availability contract under all
// of it: zero failed requests (the router's ejection, failover, and
// replication must absorb every fault), report fingerprints stable
// across replica generations (determinism survives recomputation on new
// processes), the router's SLO error budgets not exhausted, and stitched
// cross-process traces still well-formed. Every fault and check lands in
// an append-only JSONL event log, so a failed soak run leaves a timeline
// to debug from.
//
// cmd/nschaos is the CLI front end; the env-gated TestChaosSoak runs the
// same scenario in CI.
package chaos

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	mrand "math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/neurosym/nsbench/internal/cluster"
	"github.com/neurosym/nsbench/internal/dse"
	"github.com/neurosym/nsbench/internal/membership"
	"github.com/neurosym/nsbench/internal/serve"
	"github.com/neurosym/nsbench/internal/slo"
	"github.com/neurosym/nsbench/internal/trace"
)

// Config parameterizes one scenario run.
type Config struct {
	// Replicas is the initial replica count; 0 selects 3, minimum 2 (a
	// kill must always leave a survivor).
	Replicas int
	// Replication is the router's cache fan-fill factor; 0 selects 2.
	Replication int
	// Seed drives every random choice — traffic mix, key choice, victim
	// selection — so a scenario replays. 0 selects 1.
	Seed int64
	// Duration is the traffic window; 0 selects 10s.
	Duration time.Duration
	// Clients is the number of concurrent traffic generators; 0 selects 2.
	Clients int
	// Kills is the number of crash+restart cycles; 0 selects 2 (set -1
	// for none).
	Kills int
	// Joins is the number of extra replicas joining at runtime beyond the
	// initial set and restarts; 0 selects 1 (set -1 for none).
	Joins int
	// Workloads are the registry names driven; empty selects LNN and LTN.
	Workloads []string
	// Devices are the hwsim device names driven; empty selects the
	// paper's RTX 2080 Ti plus Xavier NX.
	Devices []string
	// Events, when non-nil, receives the scenario timeline as JSONL.
	Events io.Writer
	// Logger, when non-nil, is handed to the router (per-request lines
	// plus ejection/membership events).
	Logger *slog.Logger
}

func (c *Config) defaults() {
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.Replicas < 2 {
		c.Replicas = 2
	}
	if c.Replication == 0 {
		c.Replication = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	if c.Clients == 0 {
		c.Clients = 2
	}
	if c.Kills == 0 {
		c.Kills = 2
	} else if c.Kills < 0 {
		c.Kills = 0
	}
	if c.Joins == 0 {
		c.Joins = 1
	} else if c.Joins < 0 {
		c.Joins = 0
	}
	if len(c.Workloads) == 0 {
		c.Workloads = []string{"LNN", "LTN"}
	}
	if len(c.Devices) == 0 {
		c.Devices = []string{"RTX 2080 Ti", "Xavier NX"}
	}
}

// Failure is one violated expectation during the run.
type Failure struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// Result is a completed scenario's outcome. Err() folds the invariants
// into one verdict.
type Result struct {
	// Requests counts every HTTP request the generators issued.
	Requests int64
	// ByKind breaks traffic down (characterize/batch/explore plus the
	// cache dispositions hit/miss/join reported by the replicas).
	ByKind map[string]int64
	// FailureCount is the total failed requests/streams; Failures holds
	// the first 64 in detail.
	FailureCount int64
	Failures     []Failure
	// KeyMismatches lists canonical keys whose deterministic report
	// fields changed across replica generations (must be empty).
	KeyMismatches []string
	// Generations is how many replica processes ran in total (initial +
	// restarts + runtime joins).
	Generations int
	// SLOBudgets is each router objective's remaining error budget at
	// scenario end (all must be > 0).
	SLOBudgets map[string]float64
	// TracesValidated counts tagged requests whose stitched Chrome trace
	// fetched and validated cleanly (at least one required).
	TracesValidated int
	// Events is the full scenario timeline.
	Events []Event
}

// Err reports the first-class invariant violations, or nil when the
// scenario held.
func (r *Result) Err() error {
	var probs []string
	if r.FailureCount > 0 {
		first := ""
		if len(r.Failures) > 0 {
			first = fmt.Sprintf(" (first: %s: %s)", r.Failures[0].Kind, r.Failures[0].Detail)
		}
		probs = append(probs, fmt.Sprintf("%d failed requests%s", r.FailureCount, first))
	}
	if len(r.KeyMismatches) > 0 {
		probs = append(probs, fmt.Sprintf("deterministic report fields changed across generations for %v", r.KeyMismatches))
	}
	names := make([]string, 0, len(r.SLOBudgets))
	for name := range r.SLOBudgets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if r.SLOBudgets[name] <= 0 {
			probs = append(probs, fmt.Sprintf("SLO %q error budget exhausted", name))
		}
	}
	if r.TracesValidated == 0 {
		probs = append(probs, "no stitched trace could be validated")
	}
	if len(probs) == 0 {
		return nil
	}
	return errors.New("chaos: " + strings.Join(probs, "; "))
}

// replicaGen is one live replica generation: a real serve.Server behind
// a real listener, fronted by a FaultProxy, heartbeating membership to
// the router. Its ring identity is the proxy URL.
type replicaGen struct {
	name   string
	url    string
	proxy  *FaultProxy
	hs     *http.Server
	srv    *serve.Server
	hbStop chan struct{}
	hbDone chan struct{}
}

type runner struct {
	cfg  Config
	base string // router base URL
	rt   *cluster.Router
	rsrv *http.Server
	http *http.Client
	log  *EventLog

	hbInterval time.Duration

	// exploreSlot serializes sweeps: the replicas' default explore
	// concurrency is small, and a shed sweep would be a false failure.
	exploreSlot chan struct{}

	requests     atomic.Int64
	failureCount atomic.Int64

	mu          sync.Mutex
	gens        []*replicaGen // live generations
	genSeq      int
	byKind      map[string]int64
	reports     map[string]string // canonical key -> deterministic fingerprint
	mismatched  map[string]bool
	recentIDs   []string // tagged request IDs, newest last
	failures    []Failure
	teardownOne sync.Once
}

// Run executes one scenario to completion and returns its Result. The
// returned error covers harness-level problems (could not stand the
// cluster up); invariant violations live in Result.Err().
func Run(cfg Config) (*Result, error) {
	cfg.defaults()
	r := &runner{
		cfg:         cfg,
		http:        &http.Client{Timeout: 30 * time.Second},
		log:         NewEventLog(cfg.Events),
		hbInterval:  250 * time.Millisecond,
		exploreSlot: make(chan struct{}, 1),
		byKind:      map[string]int64{},
		reports:     map[string]string{},
		mismatched:  map[string]bool{},
	}

	rt, err := cluster.New(cluster.Config{
		Membership:     membership.Config{Enabled: true, TTL: 1200 * time.Millisecond, SweepInterval: 200 * time.Millisecond},
		Replication:    cfg.Replication,
		RetryBaseDelay: 5 * time.Millisecond,
		RetryMaxDelay:  100 * time.Millisecond,
		Hedge:          true,
		Health:         cluster.HealthConfig{Interval: 20 * time.Millisecond, Timeout: 2 * time.Second, EjectAfter: 2, ReadmitAfter: 2},
		RecorderSize:   8192,
		NodeName:       "nschaos-router",
		Logger:         cfg.Logger,
	})
	if err != nil {
		return nil, err
	}
	r.rt = rt
	rlis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Close()
		return nil, err
	}
	r.rsrv = &http.Server{Handler: rt.Handler()}
	go r.rsrv.Serve(rlis)
	r.base = "http://" + rlis.Addr().String()
	defer r.teardown()

	// Every replica — the initial set included — enters through the
	// runtime join protocol: the router starts with an empty ring.
	r.log.Record(EventMilestone, "", fmt.Sprintf("scenario start: seed=%d replicas=%d replication=%d kills=%d joins=%d duration=%s",
		cfg.Seed, cfg.Replicas, cfg.Replication, cfg.Kills, cfg.Joins, cfg.Duration))
	for i := 0; i < cfg.Replicas; i++ {
		if _, err := r.startGen(i); err != nil {
			return nil, err
		}
	}
	if err := r.awaitLive(cfg.Replicas); err != nil {
		return nil, err
	}
	r.log.Record(EventMilestone, "", fmt.Sprintf("cluster live: %d replicas admitted", cfg.Replicas))

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.client(ctx, i)
		}(i)
	}
	var swg sync.WaitGroup
	swg.Add(1)
	go func() {
		defer swg.Done()
		r.schedule()
	}()
	wg.Wait()
	swg.Wait()
	r.log.Record(EventMilestone, "", "traffic complete")

	res := r.collect()
	r.finalChecks(res)
	res.Events = r.log.Events()
	return res, nil
}

// startGen starts one replica generation in slot and begins announcing
// it to the router.
func (r *runner) startGen(slot int) (*replicaGen, error) {
	r.mu.Lock()
	r.genSeq++
	seq := r.genSeq
	r.mu.Unlock()
	name := fmt.Sprintf("replica-%d-gen%d", slot, seq)
	s, err := serve.New(serve.Config{
		CacheSize:   512,
		BatchWindow: 2 * time.Millisecond,
		NodeName:    name,
	})
	if err != nil {
		return nil, err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(lis)
	proxy, err := NewFaultProxy("http://" + lis.Addr().String())
	if err != nil {
		hs.Close()
		s.Close()
		return nil, err
	}
	g := &replicaGen{
		name:   name,
		url:    proxy.URL(),
		proxy:  proxy,
		hs:     hs,
		srv:    s,
		hbStop: make(chan struct{}),
		hbDone: make(chan struct{}),
	}
	r.mu.Lock()
	r.gens = append(r.gens, g)
	r.mu.Unlock()
	go r.heartbeat(g)
	r.log.Record(EventJoin, g.url, name)
	return g, nil
}

// heartbeat announces g to the router immediately and then on every
// tick, keeping its membership TTL fresh. A crash stops the loop without
// a leave — silent death is the router's problem to detect.
func (r *runner) heartbeat(g *replicaGen) {
	defer close(g.hbDone)
	t := time.NewTicker(r.hbInterval)
	defer t.Stop()
	for {
		r.postJoin(g.url)
		select {
		case <-g.hbStop:
			return
		case <-t.C:
		}
	}
}

func (r *runner) postJoin(nodeURL string) {
	body := fmt.Sprintf(`{"url":%q}`, nodeURL)
	resp, err := r.http.Post(r.base+"/v1/cluster/join", "application/json", strings.NewReader(body))
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// kill crashes g: heartbeats stop silently and every listener is severed
// with in-flight connections — the router must notice via its own
// probes/attempts, never via a goodbye.
func (r *runner) kill(g *replicaGen) {
	r.mu.Lock()
	for i, x := range r.gens {
		if x == g {
			r.gens = append(r.gens[:i], r.gens[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
	close(g.hbStop)
	g.proxy.Close()
	g.hs.Close()
	g.srv.Close()
	<-g.hbDone
}

// pickVictim returns a seeded-random live generation to crash, or nil
// when a kill would leave no survivor.
func (r *runner) pickVictim(rng *mrand.Rand) *replicaGen {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.gens) < 2 {
		return nil
	}
	return r.gens[rng.Intn(len(r.gens))]
}

// pickProxy returns a seeded-random live proxy for a fault window.
func (r *runner) pickProxy(rng *mrand.Rand) *FaultProxy {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.gens) == 0 {
		return nil
	}
	return r.gens[rng.Intn(len(r.gens))].proxy
}

// action is one scheduled fault at a fixed offset into the run.
type action struct {
	at   time.Duration
	name string
	run  func()
}

// schedule plans the fault timeline from the seed and executes it. All
// offsets are fixed fractions of Duration so the same seed and duration
// produce the same schedule.
func (r *runner) schedule() {
	D := r.cfg.Duration
	rng := mrand.New(mrand.NewSource(r.cfg.Seed + 101))
	var plan []action

	// One latency window and one connection-drop window, each against a
	// seeded-choice replica.
	var faulted *FaultProxy
	plan = append(plan,
		action{at: D / 10, name: "latency fault on", run: func() {
			if faulted = r.pickProxy(rng); faulted != nil {
				faulted.SetLatency(10 * time.Millisecond)
				r.log.Record(EventFaultOn, "", "latency 10ms")
			}
		}},
		action{at: 3 * D / 10, name: "latency fault off", run: func() {
			if faulted != nil {
				faulted.SetLatency(0)
				r.log.Record(EventFaultOff, "", "latency")
			}
		}},
	)
	var dropped *FaultProxy
	plan = append(plan,
		action{at: 4 * D / 10, name: "drop fault on", run: func() {
			if dropped = r.pickProxy(rng); dropped != nil {
				dropped.SetDropEvery(5)
				r.log.Record(EventFaultOn, "", "drop every 5th connection")
			}
		}},
		action{at: 11 * D / 20, name: "drop fault off", run: func() {
			if dropped != nil {
				dropped.SetDropEvery(0)
				r.log.Record(EventFaultOff, "", "drop")
			}
		}},
	)

	// Kill+restart cycles spread across the middle of the run; each
	// restart is a new generation (new port, cold cache) that re-joins
	// through the same runtime protocol.
	restartDelay := D / 8
	for i := 0; i < r.cfg.Kills; i++ {
		at := D/5 + time.Duration(i)*(D/2)/time.Duration(maxInt(r.cfg.Kills, 1))
		slot := r.cfg.Replicas + i // informational: generation slot label
		plan = append(plan,
			action{at: at, name: "kill", run: func() {
				if g := r.pickVictim(rng); g != nil {
					r.log.Record(EventKill, g.url, g.name)
					r.kill(g)
				}
			}},
			action{at: at + restartDelay, name: "restart", run: func() {
				if g, err := r.startGen(slot); err == nil {
					r.log.Record(EventRestart, g.url, g.name)
				}
			}},
		)
	}

	// Extra runtime joins in the back half.
	for i := 0; i < r.cfg.Joins; i++ {
		at := 3*D/5 + time.Duration(i)*(D/4)/time.Duration(maxInt(r.cfg.Joins, 1))
		slot := 100 + i
		plan = append(plan, action{at: at, name: "join", run: func() {
			r.startGen(slot)
		}})
	}

	sort.SliceStable(plan, func(i, j int) bool { return plan[i].at < plan[j].at })
	start := time.Now()
	for _, a := range plan {
		if d := a.at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		a.run()
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// client is one traffic generator: a seeded mix of characterize reads,
// coalescing bursts, and design-space sweeps, as fast as the cluster
// answers them.
func (r *runner) client(ctx context.Context, idx int) {
	rng := mrand.New(mrand.NewSource(r.cfg.Seed + int64(idx)*7919))
	for n := 0; ctx.Err() == nil; n++ {
		switch pick := rng.Intn(10); {
		case pick < 7:
			r.doCharacterize(ctx, rng, idx, n)
		case pick < 9:
			r.doBatch(ctx, rng)
		default:
			r.doExplore(ctx, rng)
		}
		time.Sleep(time.Duration(rng.Intn(4)) * time.Millisecond)
	}
}

func (r *runner) pickKey(rng *mrand.Rand) (workload, device string) {
	return r.cfg.Workloads[rng.Intn(len(r.cfg.Workloads))],
		r.cfg.Devices[rng.Intn(len(r.cfg.Devices))]
}

// fail records one violated request expectation.
func (r *runner) fail(kind, detail string) {
	r.failureCount.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.failures) < 64 {
		r.failures = append(r.failures, Failure{Kind: kind, Detail: detail})
	}
}

func (r *runner) bump(kind string) {
	r.mu.Lock()
	r.byKind[kind]++
	r.mu.Unlock()
}

// doCharacterize issues one routed characterization. Every 16th request
// per client carries a deterministic X-Request-ID tag so the stitched
// trace can be pulled and validated at scenario end.
func (r *runner) doCharacterize(ctx context.Context, rng *mrand.Rand, cli, n int) {
	w, d := r.pickKey(rng)
	id := ""
	if n%16 == 0 {
		id = fmt.Sprintf("chaos-%d-c%d-%d", r.cfg.Seed, cli, n)
	}
	r.characterizeOnce(ctx, w, d, id)
}

// characterizeOnce is the shared request path for characterize and batch
// traffic.
func (r *runner) characterizeOnce(ctx context.Context, workload, device, id string) {
	body := fmt.Sprintf(`{"workload":%q,"device":%q}`, workload, device)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+"/v1/characterize", strings.NewReader(body))
	if err != nil {
		r.fail("characterize", err.Error())
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	r.requests.Add(1)
	resp, err := r.http.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			r.fail("characterize", err.Error())
		}
		return
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		if ctx.Err() == nil {
			r.fail("characterize", "reading body: "+err.Error())
		}
		return
	}
	if resp.StatusCode != http.StatusOK {
		r.fail("characterize", fmt.Sprintf("%s|%s: status %d: %.200s", workload, device, resp.StatusCode, b))
		return
	}
	r.bump("characterize")
	switch resp.Header.Get("X-NSServe-Cache") {
	case "hit":
		r.bump("hit")
	case "miss":
		r.bump("miss")
	case "join":
		r.bump("join")
	}
	r.checkReport(workload+"\x00"+device, b)
	if id != "" {
		r.mu.Lock()
		r.recentIDs = append(r.recentIDs, id)
		if len(r.recentIDs) > 32 {
			r.recentIDs = r.recentIDs[len(r.recentIDs)-32:]
		}
		r.mu.Unlock()
	}
}

// doBatch fires a burst of identical requests so cache-missing ones
// coalesce into a batched engine pass on the owning replica.
func (r *runner) doBatch(ctx context.Context, rng *mrand.Rand) {
	w, d := r.pickKey(rng)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.characterizeOnce(ctx, w, d, "")
		}()
	}
	wg.Wait()
	r.bump("batch")
}

// doExplore streams one small sharded design-space sweep through the
// router and requires a complete stream: a summary chunk with no shard
// errors. Sweeps are serialized by a slot so replica explore-concurrency
// limits never shed one (a shed sweep would be a false failure).
func (r *runner) doExplore(ctx context.Context, rng *mrand.Rand) {
	select {
	case r.exploreSlot <- struct{}{}:
	default:
		r.doCharacterize(ctx, rng, 99, 1) // slot busy: fall back, untagged
		return
	}
	defer func() { <-r.exploreSlot }()
	w, d := r.pickKey(rng)
	body := fmt.Sprintf(`{"workload":%q,"device":%q,"space":{"mem_bw_gbs":{"min":100,"max":800,"steps":4,"log":true}}}`, w, d)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+"/v1/explore", strings.NewReader(body))
	if err != nil {
		r.fail("explore", err.Error())
		return
	}
	req.Header.Set("Content-Type", "application/json")
	r.requests.Add(1)
	resp, err := r.http.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			r.fail("explore", err.Error())
		}
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		r.fail("explore", fmt.Sprintf("status %d: %.200s", resp.StatusCode, b))
		return
	}
	var summary *dse.Summary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		var c dse.Chunk
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			r.fail("explore", fmt.Sprintf("bad chunk %.80q: %v", sc.Bytes(), err))
			return
		}
		if c.Type == "summary" {
			summary = c.Summary
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() == nil {
			r.fail("explore", "stream: "+err.Error())
		}
		return
	}
	switch {
	case summary == nil:
		if ctx.Err() == nil {
			r.fail("explore", "stream ended without a summary")
		}
	case len(summary.Errors) > 0:
		r.fail("explore", "shard errors: "+strings.Join(summary.Errors, "; "))
	default:
		r.bump("explore")
	}
}

// detReport is the deterministic subset of the report schema — structure,
// operation counts, and data-dependent statistics; everything except
// measured wall-clock time. Its fingerprint must be identical for a key
// no matter which replica generation computed it.
type detReport struct {
	Name     string          `json:"name"`
	Category string          `json:"category"`
	Memory   json.RawMessage `json:"memory"`
	Roofline []struct {
		Name string  `json:"name"`
		AI   float64 `json:"arithmetic_intensity"`
	} `json:"roofline"`
	Dataflow struct {
		Events           int `json:"events"`
		Edges            int `json:"edges"`
		Depth            int `json:"depth"`
		MaxWidth         int `json:"max_width"`
		NeuralToSymbolic int `json:"neural_to_symbolic_edges"`
		SymbolicToNeural int `json:"symbolic_to_neural_edges"`
	} `json:"dataflow"`
}

// checkReport compares key's deterministic fingerprint against the first
// generation that answered for it.
func (r *runner) checkReport(key string, body []byte) {
	var det detReport
	if err := json.Unmarshal(body, &det); err != nil {
		r.fail("report-parse", err.Error())
		return
	}
	fp, err := json.Marshal(det)
	if err != nil {
		r.fail("report-parse", err.Error())
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.reports[key]; !ok {
		r.reports[key] = string(fp)
	} else if prev != string(fp) && !r.mismatched[key] {
		r.mismatched[key] = true
	}
}

// awaitLive polls the router's members listing until n replicas are in
// the ring (state "live") and the router reports ready.
func (r *runner) awaitLive(n int) error {
	type memberRow struct {
		State string `json:"state"`
	}
	type membersBody struct {
		Members []memberRow `json:"members"`
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		live := 0
		resp, err := r.http.Get(r.base + "/v1/cluster/members")
		if err == nil {
			var mb membersBody
			if json.NewDecoder(resp.Body).Decode(&mb) == nil {
				for _, m := range mb.Members {
					if m.State == "live" {
						live++
					}
				}
			}
			resp.Body.Close()
		}
		if live >= n {
			if resp, err := r.http.Get(r.base + "/readyz"); err == nil {
				code := resp.StatusCode
				resp.Body.Close()
				if code == http.StatusOK {
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: cluster never reached %d live replicas", n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// collect snapshots the traffic-side tallies into a Result.
func (r *runner) collect() *Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	res := &Result{
		Requests:     r.requests.Load(),
		ByKind:       map[string]int64{},
		FailureCount: r.failureCount.Load(),
		Failures:     append([]Failure(nil), r.failures...),
		Generations:  r.genSeq,
		SLOBudgets:   map[string]float64{},
	}
	for k, v := range r.byKind {
		res.ByKind[k] = v
	}
	for key := range r.mismatched {
		res.KeyMismatches = append(res.KeyMismatches, key)
	}
	sort.Strings(res.KeyMismatches)
	return res
}

// finalChecks runs the end-of-run invariants that need the cluster still
// standing: readiness, SLO budgets, and stitched-trace validation.
func (r *runner) finalChecks(res *Result) {
	// The cluster must end the run ready (at least one live replica).
	if resp, err := r.http.Get(r.base + "/readyz"); err != nil {
		r.violation(res, "readyz unreachable: "+err.Error())
	} else {
		code := resp.StatusCode
		resp.Body.Close()
		if code != http.StatusOK {
			r.violation(res, fmt.Sprintf("readyz %d after scenario", code))
		} else {
			r.log.Record(EventCheck, "", "readyz ok")
		}
	}

	// SLO budgets: the faults must not have burned a full error budget.
	if resp, err := r.http.Get(r.base + "/v1/slo"); err != nil {
		r.violation(res, "slo unreachable: "+err.Error())
	} else {
		var rep slo.Report
		err := json.NewDecoder(resp.Body).Decode(&rep)
		resp.Body.Close()
		if err != nil {
			r.violation(res, "slo decode: "+err.Error())
		} else {
			for _, o := range rep.Objectives {
				res.SLOBudgets[o.Name] = o.BudgetRemaining
				r.log.Record(EventCheck, "", fmt.Sprintf("slo %s budget_remaining=%.4f", o.Name, o.BudgetRemaining))
			}
		}
	}

	// Stitched traces: tagged requests must replay as well-formed Chrome
	// traces spanning router and replica processes.
	r.mu.Lock()
	ids := append([]string(nil), r.recentIDs...)
	r.mu.Unlock()
	for i := len(ids) - 1; i >= 0 && res.TracesValidated < 4; i-- {
		resp, err := r.http.Get(r.base + "/v1/trace?format=chrome&request_id=" + ids[i])
		if err != nil {
			continue
		}
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			continue // aged out of a ring recorder; try an older tag
		}
		if _, err := trace.ValidateChrome(b); err != nil {
			r.violation(res, fmt.Sprintf("stitched trace %s invalid: %v", ids[i], err))
			continue
		}
		res.TracesValidated++
	}
	r.log.Record(EventCheck, "", fmt.Sprintf("stitched traces validated: %d", res.TracesValidated))
}

// violation records an invariant failure in both the result and the log.
func (r *runner) violation(res *Result, detail string) {
	res.FailureCount++
	if len(res.Failures) < 64 {
		res.Failures = append(res.Failures, Failure{Kind: "invariant", Detail: detail})
	}
	r.log.Record(EventViolation, "", detail)
}

// teardown stops everything still running; idempotent.
func (r *runner) teardown() {
	r.teardownOne.Do(func() {
		r.mu.Lock()
		gens := append([]*replicaGen(nil), r.gens...)
		r.mu.Unlock()
		for _, g := range gens {
			r.kill(g)
		}
		r.rt.Close()
		r.rsrv.Close()
	})
}
