package chaos

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"time"
)

// FaultProxy is the test-only fault shim: a reverse proxy that fronts one
// replica and can inject latency or sever connections on command. The
// proxy's URL — not the replica's — is what joins the router's ring, so
// every probe, characterize attempt, fill, and explore shard stream
// passes through the fault point, exactly like a degrading NIC or an
// overloaded host would present.
//
// Faults are deliberately the two shapes the router must absorb
// differently: added latency (the request succeeds, slowly — feeds
// latency histograms, hedging, and load-aware routing) and dropped
// connections (a transport error — feeds failure streaks and failover).
type FaultProxy struct {
	lis net.Listener
	srv *http.Server
	rp  *httputil.ReverseProxy

	latencyNs atomic.Int64 // injected per-request delay
	dropEvery atomic.Int64 // sever every Nth connection; 0 = off
	count     atomic.Int64 // requests seen (drop-fault modulus)
}

// NewFaultProxy starts a proxy for target on an ephemeral localhost port.
func NewFaultProxy(target string) (*FaultProxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("chaos: bad proxy target %q: %w", target, err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &FaultProxy{lis: lis, rp: httputil.NewSingleHostReverseProxy(u)}
	// Explore responses are NDJSON streams: flush every write through, or
	// the shard points would sit in the proxy buffer until stream end.
	p.rp.FlushInterval = -1
	// Backend-down 502s are expected mid-kill; keep them off stderr.
	p.rp.ErrorLog = log.New(io.Discard, "", 0)
	p.srv = &http.Server{Handler: p}
	go p.srv.Serve(lis)
	return p, nil
}

// URL is the address the cluster should route through.
func (p *FaultProxy) URL() string { return "http://" + p.lis.Addr().String() }

// SetLatency injects d of delay in front of every proxied request
// (0 clears the fault).
func (p *FaultProxy) SetLatency(d time.Duration) { p.latencyNs.Store(int64(d)) }

// SetDropEvery severs every nth connection without a response — the
// client sees a transport error, as if the host's kernel reset the
// socket. n <= 0 clears the fault.
func (p *FaultProxy) SetDropEvery(n int) {
	if n < 0 {
		n = 0
	}
	p.dropEvery.Store(int64(n))
}

func (p *FaultProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d := time.Duration(p.latencyNs.Load()); d > 0 {
		time.Sleep(d)
	}
	if n := p.dropEvery.Load(); n > 0 && p.count.Add(1)%n == 0 {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		// No hijack support (HTTP/2 etc.): a 502 is still a retryable fault.
		http.Error(w, "chaos: injected fault", http.StatusBadGateway)
		return
	}
	p.rp.ServeHTTP(w, r)
}

// Close severs the proxy abruptly — in-flight connections included —
// which is what a host crash looks like from the router's side.
func (p *FaultProxy) Close() { p.srv.Close() }
