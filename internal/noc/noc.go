// Package noc models an on-chip interconnect: a k×k mesh with XY routing
// carrying the inter-operator tensor traffic of a recorded trace. It backs
// the architecture-level part of the paper's Recommendation 6 — a
// high-bandwidth NoC between heterogeneous neural and symbolic processing
// units — by quantifying how much communication time a given placement and
// link bandwidth cost.
package noc

import (
	"fmt"
	"time"

	"github.com/neurosym/nsbench/internal/trace"
)

// Mesh is a k×k tile grid with XY (dimension-ordered) routing.
type Mesh struct {
	K         int     // mesh side; K² tiles
	LinkBWGBs float64 // per-link bandwidth
	HopNs     float64 // per-hop router latency
}

// Tiles returns the tile count.
func (m Mesh) Tiles() int { return m.K * m.K }

// Hops returns the XY route length between two tiles.
func (m Mesh) Hops(a, b int) int {
	ax, ay := a%m.K, a/m.K
	bx, by := b%m.K, b/m.K
	dx, dy := bx-ax, by-ay
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// route returns the directed link sequence of the XY route from a to b.
// Links are identified by (fromTile, toTile) pairs encoded as from*K²+to.
func (m Mesh) route(a, b int) []int {
	var links []int
	ax, ay := a%m.K, a/m.K
	bx, by := b%m.K, b/m.K
	x, y := ax, ay
	step := func(nx, ny int) {
		from := y*m.K + x
		to := ny*m.K + nx
		links = append(links, from*m.Tiles()+to)
		x, y = nx, ny
	}
	for x != bx {
		if bx > x {
			step(x+1, y)
		} else {
			step(x-1, y)
		}
	}
	for y != by {
		if by > y {
			step(x, y+1)
		} else {
			step(x, y-1)
		}
	}
	return links
}

// Placement assigns each trace event (by index) to a tile.
type Placement func(eventIdx int, ev *trace.Event) int

// RoundRobin spreads events across all tiles in order.
func RoundRobin(m Mesh) Placement {
	return func(i int, _ *trace.Event) int { return i % m.Tiles() }
}

// PhasePartition places neural events on the left half of the mesh and
// symbolic events on the right half — the heterogeneous
// neural-unit/symbolic-unit floorplan of Recommendation 6. Within each
// half, events round-robin.
func PhasePartition(m Mesh) Placement {
	halves := [2][]int{}
	for t := 0; t < m.Tiles(); t++ {
		if t%m.K < m.K/2 {
			halves[0] = append(halves[0], t)
		} else {
			halves[1] = append(halves[1], t)
		}
	}
	counters := [2]int{}
	return func(_ int, ev *trace.Event) int {
		h := 0
		if ev.Phase == trace.Symbolic {
			h = 1
		}
		pool := halves[h]
		if len(pool) == 0 {
			pool = halves[1-h]
		}
		t := pool[counters[h]%len(pool)]
		counters[h]++
		return t
	}
}

// Analysis summarizes the communication cost of one placement.
type Analysis struct {
	Mesh         Mesh
	Edges        int           // dependency edges considered
	CrossEdges   int           // edges whose endpoints sit on different tiles
	TotalBytes   int64         // bytes moved across the mesh
	CommTime     time.Duration // serialized transfer + hop latency
	AvgHops      float64       // mean hops per cross edge
	MaxLinkBytes int64         // hottest link's traffic (congestion proxy)
}

// String renders the analysis.
func (a Analysis) String() string {
	return fmt.Sprintf("%dx%d @ %.0f GB/s: %d/%d cross edges, %s moved, comm %v, avg %.2f hops, hottest link %s",
		a.Mesh.K, a.Mesh.K, a.Mesh.LinkBWGBs, a.CrossEdges, a.Edges,
		fmtBytes(a.TotalBytes), a.CommTime, a.AvgHops, fmtBytes(a.MaxLinkBytes))
}

// Analyze routes every dependency edge of the trace over the mesh under
// the placement and accumulates transfer cost. Transferred volume per edge
// is the producing event's output allocation (the tensor handed over).
func Analyze(tr *trace.Trace, m Mesh, place Placement) Analysis {
	g := trace.BuildGraph(tr)
	tile := make([]int, g.N)
	for i := 0; i < g.N; i++ {
		tile[i] = place(i, g.Event(i))
	}
	out := Analysis{Mesh: m}
	linkBytes := map[int]int64{}
	var hops int
	for u := 0; u < g.N; u++ {
		for _, v := range g.Adj[u] {
			out.Edges++
			if tile[u] == tile[v] {
				continue
			}
			out.CrossEdges++
			bytes := g.Event(u).Alloc
			if bytes == 0 {
				bytes = 64 // control-only dependency: a cache line
			}
			out.TotalBytes += bytes
			h := m.Hops(tile[u], tile[v])
			hops += h
			seconds := float64(bytes)/(m.LinkBWGBs*1e9) + float64(h)*m.HopNs*1e-9
			out.CommTime += time.Duration(seconds * float64(time.Second))
			for _, l := range m.route(tile[u], tile[v]) {
				linkBytes[l] += bytes
			}
		}
	}
	if out.CrossEdges > 0 {
		out.AvgHops = float64(hops) / float64(out.CrossEdges)
	}
	for _, b := range linkBytes {
		if b > out.MaxLinkBytes {
			out.MaxLinkBytes = b
		}
	}
	return out
}

// fmtBytes renders a byte count in human units.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
