package noc

import (
	"strings"
	"testing"
	"time"

	"github.com/neurosym/nsbench/internal/trace"
)

func TestHopsXY(t *testing.T) {
	m := Mesh{K: 4}
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 3, 3},  // same row
		{0, 12, 3}, // same column
		{0, 15, 6}, // opposite corner
		{5, 10, 2}, // (1,1) → (2,2)
		{15, 0, 6}, // symmetric
	}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.want {
			t.Fatalf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRouteLengthMatchesHops(t *testing.T) {
	m := Mesh{K: 5}
	for a := 0; a < m.Tiles(); a += 3 {
		for b := 0; b < m.Tiles(); b += 4 {
			if got := len(m.route(a, b)); got != m.Hops(a, b) {
				t.Fatalf("route(%d,%d) length %d != hops %d", a, b, got, m.Hops(a, b))
			}
		}
	}
}

// pipelineTrace builds a producer→consumer chain with given per-event alloc.
func pipelineTrace(n int, alloc int64) *trace.Trace {
	tr := trace.New()
	for i := 0; i < n; i++ {
		ev := trace.Event{Name: "op", Dur: time.Millisecond, Alloc: alloc, Outputs: []uint64{uint64(i + 1)}}
		if i > 0 {
			ev.Inputs = []uint64{uint64(i)}
		}
		if i%2 == 1 {
			ev.Phase = trace.Symbolic
		}
		tr.Append(ev)
	}
	return tr
}

func TestAnalyzeRoundRobinChain(t *testing.T) {
	tr := pipelineTrace(8, 1<<20)
	m := Mesh{K: 2, LinkBWGBs: 100, HopNs: 5}
	a := Analyze(tr, m, RoundRobin(m))
	if a.Edges != 7 {
		t.Fatalf("edges = %d", a.Edges)
	}
	// Round-robin over 4 tiles: every chain edge crosses tiles.
	if a.CrossEdges != 7 {
		t.Fatalf("cross edges = %d", a.CrossEdges)
	}
	if a.TotalBytes != 7<<20 {
		t.Fatalf("bytes = %d", a.TotalBytes)
	}
	if a.CommTime <= 0 || a.AvgHops <= 0 || a.MaxLinkBytes == 0 {
		t.Fatalf("analysis incomplete: %+v", a)
	}
	if !strings.Contains(a.String(), "cross edges") {
		t.Fatal("String() malformed")
	}
}

func TestBandwidthMonotonicity(t *testing.T) {
	tr := pipelineTrace(16, 4<<20)
	slow := Analyze(tr, Mesh{K: 4, LinkBWGBs: 64, HopNs: 5}, RoundRobin(Mesh{K: 4}))
	fast := Analyze(tr, Mesh{K: 4, LinkBWGBs: 1024, HopNs: 5}, RoundRobin(Mesh{K: 4}))
	if fast.CommTime >= slow.CommTime {
		t.Fatalf("higher bandwidth must reduce comm time: %v vs %v", fast.CommTime, slow.CommTime)
	}
}

func TestPhasePartitionLocality(t *testing.T) {
	// All-neural traffic placed on one half crosses fewer tiles than
	// round-robin placement across the whole mesh.
	tr := trace.New()
	for i := 0; i < 32; i++ {
		ev := trace.Event{Name: "n", Phase: trace.Neural, Dur: time.Millisecond, Alloc: 1 << 16, Outputs: []uint64{uint64(i + 1)}}
		if i > 0 {
			ev.Inputs = []uint64{uint64(i)}
		}
		tr.Append(ev)
	}
	m := Mesh{K: 4, LinkBWGBs: 100, HopNs: 5}
	part := Analyze(tr, m, PhasePartition(m))
	rr := Analyze(tr, m, RoundRobin(m))
	if part.AvgHops >= rr.AvgHops {
		t.Fatalf("partitioned placement should shorten routes: %v vs %v hops", part.AvgHops, rr.AvgHops)
	}
}

func TestControlEdgesCostALine(t *testing.T) {
	tr := pipelineTrace(2, 0) // zero alloc → 64-byte control transfer
	m := Mesh{K: 2, LinkBWGBs: 100, HopNs: 5}
	a := Analyze(tr, m, RoundRobin(m))
	if a.TotalBytes != 64 {
		t.Fatalf("control edge bytes = %d, want 64", a.TotalBytes)
	}
}

func TestSameTilePlacementFree(t *testing.T) {
	tr := pipelineTrace(8, 1<<20)
	m := Mesh{K: 2, LinkBWGBs: 100, HopNs: 5}
	all0 := func(int, *trace.Event) int { return 0 }
	a := Analyze(tr, m, all0)
	if a.CrossEdges != 0 || a.CommTime != 0 {
		t.Fatalf("co-located placement must be free: %+v", a)
	}
}
