package ops

import (
	"github.com/neurosym/nsbench/internal/backend"
	"github.com/neurosym/nsbench/internal/metrics"
	"github.com/neurosym/nsbench/internal/trace"
)

// RegisterPoolMetrics publishes p's execution-backend statistics into
// reg: the dispatch width always, plus the live worker-pool gauges and
// counters when the backend reports them (the parallel backend does).
// Func-backed metrics sample the pool at scrape time, so registration
// itself adds no cost to the kernel hot path.
func RegisterPoolMetrics(reg *metrics.Registry, p *Pool) {
	be := p.Backend()
	reg.GaugeFunc("ns_backend_workers", "Execution backend dispatch width.",
		func() float64 { return float64(be.Workers()) })
	sr, ok := be.(backend.StatsReporter)
	if !ok {
		return
	}
	reg.GaugeFunc("ns_pool_busy_workers", "Pool workers currently executing a kernel chunk.",
		func() float64 { return float64(sr.Stats().BusyWorkers) })
	reg.CounterFunc("ns_pool_splits_total", "Kernel dispatches wide enough to split across the pool.",
		func() uint64 { return sr.Stats().Splits })
	reg.CounterFunc("ns_pool_chunks_dispatched_total", "Kernel chunks handed to pool workers.",
		func() uint64 { return sr.Stats().ChunksDispatched })
	reg.CounterFunc("ns_pool_chunks_inline_total", "Fallback kernel chunks run inline because the pool was saturated or closed.",
		func() uint64 { return sr.Stats().ChunksInline })
}

// NewOpObserver returns a trace.Observer that streams per-operator wall
// time into reg as the ns_op_seconds histogram, labeled with the paper's
// taxonomy category and the neural/symbolic phase — the live form of the
// Fig. 3a operator breakdown. Children are resolved up front, so the
// per-event cost is two array indexes and one histogram observation; the
// observer is safe for concurrent use by forked engines.
func NewOpObserver(reg *metrics.Registry) trace.Observer {
	hv := reg.HistogramVec("ns_op_seconds",
		"Per-operator wall time by taxonomy category and workload phase.",
		metrics.OpBuckets(), "category", "phase")
	cats := trace.Categories()
	phases := trace.Phases()
	table := make([][]*metrics.Histogram, len(cats))
	for _, c := range cats {
		row := make([]*metrics.Histogram, len(phases))
		for _, p := range phases {
			row[int(p)] = hv.With(c.String(), p.String())
		}
		table[int(c)] = row
	}
	return func(ev *trace.Event) {
		c, p := int(ev.Category), int(ev.Phase)
		if c < 0 || c >= len(table) || p < 0 || p >= len(table[c]) {
			// Out-of-taxonomy events still get counted, just through the
			// slower interning path.
			hv.With(ev.Category.String(), ev.Phase.String()).ObserveSeconds(int64(ev.Dur))
			return
		}
		table[c][p].ObserveSeconds(int64(ev.Dur))
	}
}
