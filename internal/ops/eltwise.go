package ops

import (
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

// binary records a two-operand element-wise operator (kernel class
// "vectorized_elem", matching the NVSA symbolic kernel of Table IV).
func (e *Engine) binary(name string, a, b *tensor.Tensor, f func(r tensor.Runner, a, b *tensor.Tensor) *tensor.Tensor) *tensor.Tensor {
	return one(e.record(op{
		name:     name,
		kernel:   "vectorized_elem",
		category: trace.VectorEltwise,
		flops:    tensor.FlopsEltwise(a.Size(), 1),
		bytes:    tensor.BytesEltwiseBinary(a.Size()),
		inputs:   []*tensor.Tensor{a, b},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{f(e.be, a, b)} }))
}

// unary records a one-operand element-wise operator (kernel class
// "elementwise").
func (e *Engine) unary(name string, a *tensor.Tensor, flopsPerElem int, f func(r tensor.Runner, a *tensor.Tensor) *tensor.Tensor) *tensor.Tensor {
	return one(e.record(op{
		name:     name,
		kernel:   "elementwise",
		category: trace.VectorEltwise,
		flops:    tensor.FlopsEltwise(a.Size(), flopsPerElem),
		bytes:    tensor.BytesEltwiseUnary(a.Size()),
		inputs:   []*tensor.Tensor{a},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{f(e.be, a)} }))
}

// Add records an instrumented element-wise addition.
func (e *Engine) Add(a, b *tensor.Tensor) *tensor.Tensor { return e.binary("Add", a, b, tensor.AddOn) }

// Sub records an instrumented element-wise subtraction.
func (e *Engine) Sub(a, b *tensor.Tensor) *tensor.Tensor { return e.binary("Sub", a, b, tensor.SubOn) }

// Mul records an instrumented Hadamard product.
func (e *Engine) Mul(a, b *tensor.Tensor) *tensor.Tensor { return e.binary("Mul", a, b, tensor.MulOn) }

// Div records an instrumented element-wise division.
func (e *Engine) Div(a, b *tensor.Tensor) *tensor.Tensor { return e.binary("Div", a, b, tensor.DivOn) }

// Minimum records an instrumented element-wise minimum.
func (e *Engine) Minimum(a, b *tensor.Tensor) *tensor.Tensor {
	return e.binary("Minimum", a, b, tensor.MinimumOn)
}

// Maximum records an instrumented element-wise maximum.
func (e *Engine) Maximum(a, b *tensor.Tensor) *tensor.Tensor {
	return e.binary("Maximum", a, b, tensor.MaximumOn)
}

// AddScalar records an instrumented scalar addition.
func (e *Engine) AddScalar(a *tensor.Tensor, s float32) *tensor.Tensor {
	return e.unary("AddScalar", a, 1, func(r tensor.Runner, t *tensor.Tensor) *tensor.Tensor { return tensor.AddScalarOn(r, t, s) })
}

// MulScalar records an instrumented scalar multiplication.
func (e *Engine) MulScalar(a *tensor.Tensor, s float32) *tensor.Tensor {
	return e.unary("MulScalar", a, 1, func(r tensor.Runner, t *tensor.Tensor) *tensor.Tensor { return tensor.MulScalarOn(r, t, s) })
}

// Neg records an instrumented negation.
func (e *Engine) Neg(a *tensor.Tensor) *tensor.Tensor { return e.unary("Neg", a, 1, tensor.NegOn) }

// Abs records an instrumented absolute value.
func (e *Engine) Abs(a *tensor.Tensor) *tensor.Tensor { return e.unary("Abs", a, 1, tensor.AbsOn) }

// Sign records an instrumented sign extraction.
func (e *Engine) Sign(a *tensor.Tensor) *tensor.Tensor { return e.unary("Sign", a, 1, tensor.SignOn) }

// Exp records an instrumented exponential.
func (e *Engine) Exp(a *tensor.Tensor) *tensor.Tensor { return e.unary("Exp", a, 4, tensor.ExpOn) }

// Log records an instrumented natural logarithm.
func (e *Engine) Log(a *tensor.Tensor) *tensor.Tensor { return e.unary("Log", a, 4, tensor.LogOn) }

// Sqrt records an instrumented square root.
func (e *Engine) Sqrt(a *tensor.Tensor) *tensor.Tensor { return e.unary("Sqrt", a, 2, tensor.SqrtOn) }

// Pow records an instrumented power.
func (e *Engine) Pow(a *tensor.Tensor, p float32) *tensor.Tensor {
	return e.unary("Pow", a, 8, func(r tensor.Runner, t *tensor.Tensor) *tensor.Tensor { return tensor.PowOn(r, t, p) })
}

// Clamp records an instrumented clamp.
func (e *Engine) Clamp(a *tensor.Tensor, lo, hi float32) *tensor.Tensor {
	return e.unary("Clamp", a, 2, func(r tensor.Runner, t *tensor.Tensor) *tensor.Tensor { return tensor.ClampOn(r, t, lo, hi) })
}

// ReLU records an instrumented rectified linear unit (kernel "relu_nn",
// matching the Table-IV neural kernel).
func (e *Engine) ReLU(a *tensor.Tensor) *tensor.Tensor {
	return one(e.record(op{
		name:     "ReLU",
		kernel:   "relu_nn",
		category: trace.VectorEltwise,
		flops:    tensor.FlopsEltwise(a.Size(), 1),
		bytes:    tensor.BytesEltwiseUnary(a.Size()),
		inputs:   []*tensor.Tensor{a},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.ReLUOn(e.be, a)} }))
}

// LeakyReLU records an instrumented leaky ReLU.
func (e *Engine) LeakyReLU(a *tensor.Tensor, alpha float32) *tensor.Tensor {
	return e.unary("LeakyReLU", a, 2, func(r tensor.Runner, t *tensor.Tensor) *tensor.Tensor { return tensor.LeakyReLUOn(r, t, alpha) })
}

// Sigmoid records an instrumented sigmoid.
func (e *Engine) Sigmoid(a *tensor.Tensor) *tensor.Tensor {
	return e.unary("Sigmoid", a, 5, tensor.SigmoidOn)
}

// Tanh records an instrumented tanh.
func (e *Engine) Tanh(a *tensor.Tensor) *tensor.Tensor { return e.unary("Tanh", a, 5, tensor.TanhOn) }

// Greater records an instrumented element-wise comparison.
func (e *Engine) Greater(a, b *tensor.Tensor) *tensor.Tensor {
	return e.binary("Greater", a, b, tensor.GreaterOn)
}

// Where records an instrumented conditional select.
func (e *Engine) Where(cond, a, b *tensor.Tensor) *tensor.Tensor {
	return one(e.record(op{
		name:     "Where",
		kernel:   "vectorized_elem",
		category: trace.VectorEltwise,
		flops:    tensor.FlopsEltwise(a.Size(), 1),
		bytes:    4 * 4 * int64(a.Size()),
		inputs:   []*tensor.Tensor{cond, a, b},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.WhereOn(e.be, cond, a, b)} }))
}

// Dot records an instrumented inner product and returns it as a scalar tensor.
func (e *Engine) Dot(a, b *tensor.Tensor) *tensor.Tensor {
	return one(e.record(op{
		name:     "Dot",
		kernel:   "vectorized_elem",
		category: trace.VectorEltwise,
		flops:    2 * int64(a.Size()),
		bytes:    tensor.BytesEltwiseBinary(a.Size()),
		inputs:   []*tensor.Tensor{a, b},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.Scalar(tensor.Dot(a, b))} }))
}

// CosineSimilarity records an instrumented cosine similarity as a scalar tensor.
func (e *Engine) CosineSimilarity(a, b *tensor.Tensor) *tensor.Tensor {
	return one(e.record(op{
		name:     "CosineSimilarity",
		kernel:   "vectorized_elem",
		category: trace.VectorEltwise,
		flops:    6 * int64(a.Size()),
		bytes:    tensor.BytesEltwiseBinary(a.Size()),
		inputs:   []*tensor.Tensor{a, b},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.Scalar(tensor.CosineSimilarity(a, b))} }))
}

// Softmax records an instrumented softmax over the last axis.
func (e *Engine) Softmax(a *tensor.Tensor) *tensor.Tensor {
	return one(e.record(op{
		name:     "Softmax",
		kernel:   "softmax",
		category: trace.VectorEltwise,
		flops:    tensor.FlopsSoftmax(a.Size()),
		bytes:    tensor.BytesEltwiseUnary(a.Size()),
		inputs:   []*tensor.Tensor{a},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.SoftmaxOn(e.be, a)} }))
}

// LogSoftmax records an instrumented log-softmax over the last axis.
func (e *Engine) LogSoftmax(a *tensor.Tensor) *tensor.Tensor {
	return one(e.record(op{
		name:     "LogSoftmax",
		kernel:   "softmax",
		category: trace.VectorEltwise,
		flops:    tensor.FlopsSoftmax(a.Size()),
		bytes:    tensor.BytesEltwiseUnary(a.Size()),
		inputs:   []*tensor.Tensor{a},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.LogSoftmaxOn(e.be, a)} }))
}

// Normalize records an instrumented L2 normalization.
func (e *Engine) Normalize(a *tensor.Tensor) *tensor.Tensor {
	return e.unary("Normalize", a, 3, tensor.NormalizeOn)
}

// NormalizeL1 records an instrumented L1 normalization.
func (e *Engine) NormalizeL1(a *tensor.Tensor) *tensor.Tensor {
	return e.unary("NormalizeL1", a, 3, tensor.NormalizeL1On)
}

// SumAxis records an instrumented axis reduction.
func (e *Engine) SumAxis(a *tensor.Tensor, axis int) *tensor.Tensor {
	return e.reduce("SumAxis", a, axis, tensor.SumAxisOn)
}

// MeanAxis records an instrumented mean reduction.
func (e *Engine) MeanAxis(a *tensor.Tensor, axis int) *tensor.Tensor {
	return e.reduce("MeanAxis", a, axis, tensor.MeanAxisOn)
}

// MaxAxis records an instrumented max reduction.
func (e *Engine) MaxAxis(a *tensor.Tensor, axis int) *tensor.Tensor {
	return e.reduce("MaxAxis", a, axis, tensor.MaxAxisOn)
}

// MinAxis records an instrumented min reduction.
func (e *Engine) MinAxis(a *tensor.Tensor, axis int) *tensor.Tensor {
	return e.reduce("MinAxis", a, axis, tensor.MinAxisOn)
}

// ProdAxis records an instrumented product reduction.
func (e *Engine) ProdAxis(a *tensor.Tensor, axis int) *tensor.Tensor {
	return e.reduce("ProdAxis", a, axis, tensor.ProdAxisOn)
}

func (e *Engine) reduce(name string, a *tensor.Tensor, axis int, f func(tensor.Runner, *tensor.Tensor, int) *tensor.Tensor) *tensor.Tensor {
	outN := a.Size() / max(a.Dim(axis), 1)
	return one(e.record(op{
		name:     name,
		kernel:   "reduce",
		category: trace.VectorEltwise,
		flops:    tensor.FlopsReduce(a.Size()),
		bytes:    tensor.BytesReduce(a.Size(), outN),
		inputs:   []*tensor.Tensor{a},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{f(e.be, a, axis)} }))
}

// ArgMaxAxis records an instrumented arg-max reduction.
func (e *Engine) ArgMaxAxis(a *tensor.Tensor, axis int) *tensor.Tensor {
	return e.reduce("ArgMaxAxis", a, axis, tensor.ArgMaxAxisOn)
}
