package ops

import (
	"testing"

	"github.com/neurosym/nsbench/internal/sparse"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

func TestEngineRecordsEvents(t *testing.T) {
	e := New()
	a := tensor.Ones(2, 3)
	b := tensor.Ones(3, 4)
	c := e.MatMul(a, b)
	if c.Dim(0) != 2 || c.Dim(1) != 4 || c.At(0, 0) != 3 {
		t.Fatalf("MatMul result wrong: %v", c.Data())
	}
	tr := e.Trace()
	if tr.Len() != 1 {
		t.Fatalf("trace length = %d", tr.Len())
	}
	ev := tr.Events[0]
	if ev.Name != "MatMul" || ev.Kernel != "sgemm_nn" || ev.Category != trace.MatMul {
		t.Fatalf("event = %+v", ev)
	}
	if ev.FLOPs != tensor.FlopsMatMul(2, 3, 4) {
		t.Fatalf("FLOPs = %d", ev.FLOPs)
	}
	if len(ev.Inputs) != 2 || len(ev.Outputs) != 1 || ev.Outputs[0] != c.ID() {
		t.Fatalf("IDs not tracked: %+v", ev)
	}
	if ev.Alloc != c.Bytes() {
		t.Fatalf("Alloc = %d, want %d", ev.Alloc, c.Bytes())
	}
	if ev.Dur <= 0 {
		t.Fatal("duration not measured")
	}
}

func TestPhaseAndStageScoping(t *testing.T) {
	e := New()
	if e.Phase() != trace.Neural {
		t.Fatal("engine must start in neural phase")
	}
	a := tensor.Ones(4)
	e.InPhase(trace.Symbolic, func() {
		e.InStage("bind", func() {
			e.Add(a, a)
		})
		e.Mul(a, a)
	})
	e.ReLU(a)
	evs := e.Trace().Events
	if evs[0].Phase != trace.Symbolic || evs[0].Stage != "bind" {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Phase != trace.Symbolic || evs[1].Stage != "" {
		t.Fatalf("event 1 = %+v", evs[1])
	}
	if evs[2].Phase != trace.Neural {
		t.Fatalf("event 2 = %+v", evs[2])
	}
}

func TestSparsityMeasurement(t *testing.T) {
	e := New()
	a := tensor.FromSlice([]float32{-1, -2, 3, 4}, 4)
	e.MeasureSparsity(true)
	r := e.ReLU(a)
	if r.Sparsity(0) != 0.5 {
		t.Fatalf("output sparsity = %v", r.Sparsity(0))
	}
	ev := e.Trace().Events[0]
	if ev.Sparsity != 0.5 {
		t.Fatalf("recorded sparsity = %v", ev.Sparsity)
	}
	e.MeasureSparsity(false)
	e.ReLU(a)
	if e.Trace().Events[1].Sparsity != -1 {
		t.Fatal("sparsity should be unmeasured (-1) when disabled")
	}
}

func TestConvEventCosts(t *testing.T) {
	e := New()
	g := tensor.NewRNG(1)
	in := g.Normal(0, 1, 1, 3, 8, 8)
	w := g.Normal(0, 1, 4, 3, 3, 3)
	out := e.Conv2D(in, w, nil, 1, 1)
	if out.Dim(1) != 4 || out.Dim(2) != 8 {
		t.Fatalf("conv output shape = %v", out.Shape())
	}
	ev := e.Trace().Events[0]
	if ev.Category != trace.Convolution || ev.Kernel != "conv2d" {
		t.Fatalf("conv event = %+v", ev)
	}
	if ev.FLOPs != tensor.FlopsConv2D(1, 3, 4, 8, 8, 3, 3) {
		t.Fatalf("conv FLOPs = %d", ev.FLOPs)
	}
}

func TestEltwiseKernelsAndCategories(t *testing.T) {
	e := New()
	a := tensor.Ones(8)
	e.Add(a, a)
	e.ReLU(a)
	e.Exp(a)
	e.Softmax(a)
	evs := e.Trace().Events
	if evs[0].Kernel != "vectorized_elem" || evs[1].Kernel != "relu_nn" || evs[2].Kernel != "elementwise" {
		t.Fatalf("kernels = %s %s %s", evs[0].Kernel, evs[1].Kernel, evs[2].Kernel)
	}
	for _, ev := range evs {
		if ev.Category != trace.VectorEltwise {
			t.Fatalf("category = %v", ev.Category)
		}
	}
}

func TestTransformAndMovement(t *testing.T) {
	e := New()
	a := tensor.Ones(2, 3)
	e.Transpose(a)
	e.Copy(a)
	e.HostToDevice(a)
	e.DeviceToHost(a)
	e.Gather(a, []int{1, 0})
	evs := e.Trace().Events
	if evs[0].Category != trace.DataTransform {
		t.Fatalf("Transpose category = %v", evs[0].Category)
	}
	for i := 1; i <= 3; i++ {
		if evs[i].Category != trace.DataMovement {
			t.Fatalf("movement category = %v", evs[i].Category)
		}
	}
	if evs[2].Kernel != "memcpy_h2d" || evs[3].Kernel != "memcpy_d2h" {
		t.Fatalf("memcpy kernels = %s, %s", evs[2].Kernel, evs[3].Kernel)
	}
	if evs[4].Category != trace.DataTransform || evs[4].Kernel != "gather" {
		t.Fatalf("gather event = %+v", evs[4])
	}
}

func TestReductionsAndArgMax(t *testing.T) {
	e := New()
	a := tensor.FromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	s := e.SumAxis(a, 1)
	if s.At(0) != 8 || s.At(1) != 12 {
		t.Fatalf("SumAxis = %v", s.Data())
	}
	am := e.ArgMaxAxis(a, 1)
	if am.At(0) != 1 || am.At(1) != 0 {
		t.Fatalf("ArgMaxAxis = %v", am.Data())
	}
	for _, ev := range e.Trace().Events {
		if ev.Kernel != "reduce" {
			t.Fatalf("reduce kernel = %s", ev.Kernel)
		}
	}
}

func TestCircularOpsAndLogic(t *testing.T) {
	e := New()
	e.SetPhase(trace.Symbolic)
	g := tensor.NewRNG(2)
	a, b := g.HRRVector(128), g.HRRVector(128)
	bound := e.CircularConv(a, b)
	_ = e.CircularCorr(a, bound)
	out := e.LogicScalar("RuleCheck", 100, 50, []*tensor.Tensor{bound}, func() float32 { return 0.75 })
	if out.Item() != 0.75 {
		t.Fatalf("LogicScalar = %v", out.Item())
	}
	evs := e.Trace().Events
	if evs[0].Name != "CircularConv" || evs[0].Category != trace.VectorEltwise {
		t.Fatalf("circconv event = %+v", evs[0])
	}
	if evs[2].Category != trace.Other || evs[2].Kernel != "logic" {
		t.Fatalf("logic event = %+v", evs[2])
	}
	if evs[2].FLOPs != 100 || evs[2].Bytes != 50 {
		t.Fatalf("logic costs = %d, %d", evs[2].FLOPs, evs[2].Bytes)
	}
}

func TestSparseOps(t *testing.T) {
	e := New()
	m := sparse.NewCOO(3, 3)
	m.Append(0, 0, 2)
	m.Append(1, 2, 1)
	m.Append(1, 2, 1) // duplicate for coalesce
	if merged := e.Coalesce(m); merged != 1 {
		t.Fatalf("Coalesce merged = %d", merged)
	}
	csr := m.ToCSR()
	x := tensor.Ones(3)
	y := e.SpMV(csr, x)
	if y.At(0) != 2 || y.At(1) != 2 {
		t.Fatalf("SpMV = %v", y.Data())
	}
	b := tensor.Ones(3, 2)
	z := e.SpMM(csr, b)
	if z.At(1, 0) != 2 {
		t.Fatalf("SpMM = %v", z.Data())
	}
	evs := e.Trace().Events
	if evs[0].Name != "Coalesce" || evs[0].Category != trace.DataTransform {
		t.Fatalf("coalesce event = %+v", evs[0])
	}
	if evs[1].Category != trace.MatMul || evs[2].Category != trace.MatMul {
		t.Fatal("sparse matmul category wrong")
	}
}

func TestRegisterParams(t *testing.T) {
	e := New()
	w := tensor.Ones(10, 10)
	e.RegisterParam("fc1", "weight", w)
	e.SetPhase(trace.Symbolic)
	e.RegisterParamBytes("codebook", "codebook", 4096)
	m := e.Trace().ParamBytesByKind()
	if m["weight"] != 400 || m["codebook"] != 4096 {
		t.Fatalf("param bytes = %v", m)
	}
	ps := e.Trace().Params()
	if ps[0].Phase != trace.Neural || ps[1].Phase != trace.Symbolic {
		t.Fatal("param phases wrong")
	}
}

func TestGraphFromEngineTrace(t *testing.T) {
	e := New()
	a := tensor.Ones(4, 4)
	b := e.MatMul(a, a)
	c := e.ReLU(b)
	e.SetPhase(trace.Symbolic)
	e.Add(c, c)
	g := trace.BuildGraph(e.Trace())
	if g.Edges() < 2 {
		t.Fatalf("expected chained dependencies, edges = %d", g.Edges())
	}
	path, _ := g.CriticalPath()
	if len(path) != 3 {
		t.Fatalf("critical path length = %d", len(path))
	}
	n2s, _ := g.CrossPhaseEdges()
	if n2s != 1 {
		t.Fatalf("neural→symbolic edges = %d", n2s)
	}
}

func TestReshapeAliasTracked(t *testing.T) {
	e := New()
	a := tensor.Ones(2, 2)
	r := e.Reshape(a, 4)
	if r.Size() != 4 {
		t.Fatal("reshape failed")
	}
	ev := e.Trace().Events[0]
	if ev.Category != trace.DataTransform || len(ev.Outputs) != 1 {
		t.Fatalf("reshape event = %+v", ev)
	}
}
