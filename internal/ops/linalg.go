package ops

import (
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

// MatMul records an instrumented GEMM (kernel class "sgemm_nn").
func (e *Engine) MatMul(a, b *tensor.Tensor) *tensor.Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	return one(e.record(op{
		name:     "MatMul",
		kernel:   "sgemm_nn",
		category: trace.MatMul,
		flops:    tensor.FlopsMatMul(m, k, n),
		bytes:    tensor.BytesMatMul(m, k, n),
		inputs:   []*tensor.Tensor{a, b},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.MatMulKernelOn(e.be, e.kernel, a, b)} }))
}

// MatMulBatch records a GEMM whose left operand stacks `batch` row blocks
// sharing the right operand (the serving-batch layout: one weight matrix,
// n items). It executes the same folded (batch·m)×k × k×n kernel as
// MatMul, but accounts the shared operand's traffic once per item — under
// replica semantics every item reads the weights — so the recorded cost
// is exactly batch× the per-item GEMM and the trace splits uniformly.
// With batch 1 it records exactly what MatMul records.
func (e *Engine) MatMulBatch(a, b *tensor.Tensor, batch int) *tensor.Tensor {
	m, k, n := a.Dim(0)/batch, a.Dim(1), b.Dim(1)
	return one(e.record(op{
		name:     "MatMul",
		kernel:   "sgemm_nn",
		category: trace.MatMul,
		flops:    int64(batch) * tensor.FlopsMatMul(m, k, n),
		bytes:    int64(batch) * tensor.BytesMatMul(m, k, n),
		inputs:   []*tensor.Tensor{a, b},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.MatMulKernelOn(e.be, e.kernel, a, b)} }))
}

// MatVec records an instrumented GEMV.
func (e *Engine) MatVec(a, x *tensor.Tensor) *tensor.Tensor {
	m, k := a.Dim(0), a.Dim(1)
	return one(e.record(op{
		name:     "MatVec",
		kernel:   "sgemv",
		category: trace.MatMul,
		flops:    tensor.FlopsMatMul(m, k, 1),
		bytes:    tensor.BytesMatMul(m, k, 1),
		inputs:   []*tensor.Tensor{a, x},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.MatVecOn(e.be, a, x)} }))
}

// BatchMatMul records an instrumented batched GEMM.
func (e *Engine) BatchMatMul(a, b *tensor.Tensor) *tensor.Tensor {
	bsz, m, k, n := a.Dim(0), a.Dim(1), a.Dim(2), b.Dim(2)
	return one(e.record(op{
		name:     "BatchMatMul",
		kernel:   "sgemm_nn",
		category: trace.MatMul,
		flops:    int64(bsz) * tensor.FlopsMatMul(m, k, n),
		bytes:    int64(bsz) * tensor.BytesMatMul(m, k, n),
		inputs:   []*tensor.Tensor{a, b},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.BatchMatMulKernelOn(e.be, e.kernel, a, b)} }))
}

// Outer records an instrumented outer product.
func (e *Engine) Outer(a, b *tensor.Tensor) *tensor.Tensor {
	m, n := a.Dim(0), b.Dim(0)
	return one(e.record(op{
		name:     "Outer",
		kernel:   "sgemm_nn",
		category: trace.MatMul,
		flops:    int64(m) * int64(n),
		bytes:    4 * (int64(m) + int64(n) + int64(m)*int64(n)),
		inputs:   []*tensor.Tensor{a, b},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.OuterOn(e.be, a, b)} }))
}

// Conv2D records an instrumented 2-D convolution.
func (e *Engine) Conv2D(in, w, bias *tensor.Tensor, stride, pad int) *tensor.Tensor {
	n, cin, h, wd := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	cout, kh, kw := w.Dim(0), w.Dim(2), w.Dim(3)
	hout := (h+2*pad-kh)/stride + 1
	wout := (wd+2*pad-kw)/stride + 1
	return one(e.record(op{
		name:     "Conv2D",
		kernel:   "conv2d",
		category: trace.Convolution,
		flops:    tensor.FlopsConv2D(n, cin, cout, hout, wout, kh, kw),
		bytes:    tensor.BytesConv2D(n, cin, h, wd, cout, hout, wout, kh, kw),
		inputs:   []*tensor.Tensor{in, w, bias},
	}, func() []*tensor.Tensor {
		return []*tensor.Tensor{tensor.Conv2DKernelOn(e.be, e.kernel, in, w, bias, stride, pad)}
	}))
}

// Conv2DBatch records a convolution over `batch` stacked item blocks
// sharing one kernel tensor. Like MatMulBatch, it runs the plain folded
// kernel but accounts the shared weight (and bias) traffic per item, so
// the event is exactly batch× a per-item Conv2D. With batch 1 it records
// exactly what Conv2D records.
func (e *Engine) Conv2DBatch(in, w, bias *tensor.Tensor, stride, pad, batch int) *tensor.Tensor {
	n, cin, h, wd := in.Dim(0)/batch, in.Dim(1), in.Dim(2), in.Dim(3)
	cout, kh, kw := w.Dim(0), w.Dim(2), w.Dim(3)
	hout := (h+2*pad-kh)/stride + 1
	wout := (wd+2*pad-kw)/stride + 1
	return one(e.record(op{
		name:     "Conv2D",
		kernel:   "conv2d",
		category: trace.Convolution,
		flops:    int64(batch) * tensor.FlopsConv2D(n, cin, cout, hout, wout, kh, kw),
		bytes:    int64(batch) * tensor.BytesConv2D(n, cin, h, wd, cout, hout, wout, kh, kw),
		inputs:   []*tensor.Tensor{in, w, bias},
	}, func() []*tensor.Tensor {
		return []*tensor.Tensor{tensor.Conv2DKernelOn(e.be, e.kernel, in, w, bias, stride, pad)}
	}))
}

// MaxPool2D records an instrumented max pooling.
func (e *Engine) MaxPool2D(in *tensor.Tensor, k, s int) *tensor.Tensor {
	return one(e.record(op{
		name:     "MaxPool2D",
		kernel:   "pool",
		category: trace.VectorEltwise,
		flops:    int64(in.Size()),
		bytes:    tensor.BytesEltwiseUnary(in.Size()),
		inputs:   []*tensor.Tensor{in},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.MaxPool2DOn(e.be, in, k, s)} }))
}

// AvgPool2D records an instrumented average pooling.
func (e *Engine) AvgPool2D(in *tensor.Tensor, k, s int) *tensor.Tensor {
	return one(e.record(op{
		name:     "AvgPool2D",
		kernel:   "pool",
		category: trace.VectorEltwise,
		flops:    int64(in.Size()),
		bytes:    tensor.BytesEltwiseUnary(in.Size()),
		inputs:   []*tensor.Tensor{in},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.AvgPool2DOn(e.be, in, k, s)} }))
}

// GlobalAvgPool2D records an instrumented global average pooling.
func (e *Engine) GlobalAvgPool2D(in *tensor.Tensor) *tensor.Tensor {
	return one(e.record(op{
		name:     "GlobalAvgPool2D",
		kernel:   "pool",
		category: trace.VectorEltwise,
		flops:    int64(in.Size()),
		bytes:    tensor.BytesEltwiseUnary(in.Size()),
		inputs:   []*tensor.Tensor{in},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.GlobalAvgPool2DOn(e.be, in)} }))
}
