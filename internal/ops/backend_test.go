package ops

import (
	"testing"

	"github.com/neurosym/nsbench/internal/backend"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

func TestNewDefaultsToSerialBackend(t *testing.T) {
	e := New()
	if got := e.Backend().Name(); got != "serial" {
		t.Fatalf("default backend is %q, want serial", got)
	}
}

func TestWithParallelism(t *testing.T) {
	e := New(WithParallelism(4))
	defer e.Close()
	if e.Backend().Workers() != 4 {
		t.Fatalf("workers = %d, want 4", e.Backend().Workers())
	}
	// One worker is pointless parallelism; the engine keeps serial.
	if got := New(WithParallelism(1)).Backend().Name(); got != "serial" {
		t.Fatalf("WithParallelism(1) backend is %q, want serial", got)
	}
}

func TestWithBackendShares(t *testing.T) {
	be := backend.NewParallel(2)
	defer be.Close()
	e1, e2 := New(WithBackend(be)), New(WithBackend(be))
	if e1.Backend() != e2.Backend() {
		t.Fatal("engines do not share the injected backend")
	}
}

func TestConfigValidate(t *testing.T) {
	for _, name := range []string{"", BackendSerial, BackendParallel} {
		if err := (Config{Backend: name}).Validate(); err != nil {
			t.Errorf("Validate(%q): %v", name, err)
		}
	}
	if err := (Config{Backend: "gpu"}).Validate(); err == nil {
		t.Error("Validate(gpu) accepted an unknown backend")
	}
}

func TestConfigFactorySharesBackend(t *testing.T) {
	newEngine, release := Config{Backend: BackendParallel, Workers: 2}.Factory()
	e1, e2 := newEngine(), newEngine()
	if e1.Backend() != e2.Backend() {
		t.Fatal("factory engines do not share one backend")
	}
	if e1.Backend().Workers() != 2 {
		t.Fatalf("workers = %d, want 2", e1.Backend().Workers())
	}
	release()
	release() // idempotent
	// Engines survive release by degrading to inline dispatch.
	e1.Backend().For(4, 1, func(lo, hi int) {})
}

func TestPoolEngineAndClose(t *testing.T) {
	pool := Config{Backend: BackendParallel, Workers: 2}.NewPool()
	e1, e2 := pool.Engine(), pool.Engine()
	if e1.Backend() != pool.Backend() || e2.Backend() != pool.Backend() {
		t.Fatal("pool engines do not run on the pool's backend")
	}
	if e1.Trace() == e2.Trace() {
		t.Fatal("pool engines must record into private traces")
	}
	pool.Close()
	pool.Close() // idempotent
}

func TestParallelEngineMatchesSerial(t *testing.T) {
	g := tensor.NewRNG(7)
	a, b := g.Normal(0, 1, 64, 64), g.Normal(0, 1, 64, 64)
	serial := New().MatMul(a, b)
	par := New(WithParallelism(4))
	defer par.Close()
	got := par.MatMul(a, b)
	for i, v := range serial.Data() {
		if got.Data()[i] != v {
			t.Fatalf("element %d: serial %v parallel %v", i, v, got.Data()[i])
		}
	}
}

func TestForkJoinDeterministicOrder(t *testing.T) {
	e := New()
	e.SetPhase(trace.Symbolic)
	e.InStage("fork", func() {
		kids := e.Fork(3)
		g := tensor.NewRNG(1)
		for i, k := range kids {
			if k.Phase() != trace.Symbolic {
				t.Fatalf("child %d phase %v, want symbolic", i, k.Phase())
			}
			// Each child records a distinguishable op count.
			for j := 0; j <= i; j++ {
				k.Add(g.Normal(0, 1, 8), g.Normal(0, 1, 8))
			}
		}
		e.Join(kids...)
	})
	tr := e.Trace()
	if tr.Len() != 6 {
		t.Fatalf("merged trace has %d events, want 6", tr.Len())
	}
	for i := range tr.Events {
		ev := &tr.Events[i]
		if ev.Seq != i {
			t.Fatalf("event %d has Seq %d", i, ev.Seq)
		}
		if ev.Stage != "fork" || ev.Phase != trace.Symbolic {
			t.Fatalf("event %d lost fork context: stage=%q phase=%v", i, ev.Stage, ev.Phase)
		}
	}
}

func TestOneToleratesEmptyOutputs(t *testing.T) {
	if got := one(nil); got != nil {
		t.Fatalf("one(nil) = %v, want nil", got)
	}
	if got := one([]*tensor.Tensor{}); got != nil {
		t.Fatalf("one(empty) = %v, want nil", got)
	}
}
