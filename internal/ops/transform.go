package ops

import (
	"github.com/neurosym/nsbench/internal/sparse"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

// Transpose records an instrumented matrix transpose (data transformation).
func (e *Engine) Transpose(a *tensor.Tensor) *tensor.Tensor {
	return one(e.record(op{
		name:     "Transpose",
		kernel:   "transform",
		category: trace.DataTransform,
		bytes:    tensor.BytesCopy(a.Size()),
		inputs:   []*tensor.Tensor{a},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.Transpose(a)} }))
}

// Permute records an instrumented axis permutation.
func (e *Engine) Permute(a *tensor.Tensor, perm ...int) *tensor.Tensor {
	return one(e.record(op{
		name:     "Permute",
		kernel:   "transform",
		category: trace.DataTransform,
		bytes:    tensor.BytesCopy(a.Size()),
		inputs:   []*tensor.Tensor{a},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.Permute(a, perm...)} }))
}

// Reshape records an instrumented reshape. The data is aliased, so only
// metadata traffic occurs; we log a fixed small byte cost.
func (e *Engine) Reshape(a *tensor.Tensor, shape ...int) *tensor.Tensor {
	return one(e.record(op{
		name:     "Reshape",
		kernel:   "transform",
		category: trace.DataTransform,
		bytes:    64,
		inputs:   []*tensor.Tensor{a},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{a.Reshape(shape...)} }))
}

// ReshapeBatch is Reshape for a tensor carrying batch stacked items: the
// fixed per-item metadata cost is recorded batch times, while the output
// allocation is already batch-scaled by construction.
func (e *Engine) ReshapeBatch(a *tensor.Tensor, batch int, shape ...int) *tensor.Tensor {
	return one(e.record(op{
		name:     "Reshape",
		kernel:   "transform",
		category: trace.DataTransform,
		bytes:    64 * int64(batch),
		inputs:   []*tensor.Tensor{a},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{a.Reshape(shape...)} }))
}

// Concat records an instrumented concatenation.
func (e *Engine) Concat(axis int, ts ...*tensor.Tensor) *tensor.Tensor {
	total := 0
	for _, t := range ts {
		total += t.Size()
	}
	return one(e.record(op{
		name:     "Concat",
		kernel:   "transform",
		category: trace.DataTransform,
		bytes:    tensor.BytesCopy(total),
		inputs:   ts,
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.Concat(axis, ts...)} }))
}

// Stack records an instrumented stack along a new leading axis.
func (e *Engine) Stack(ts ...*tensor.Tensor) *tensor.Tensor {
	total := 0
	for _, t := range ts {
		total += t.Size()
	}
	return one(e.record(op{
		name:     "Stack",
		kernel:   "transform",
		category: trace.DataTransform,
		bytes:    tensor.BytesCopy(total),
		inputs:   ts,
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.Stack(ts...)} }))
}

// Slice records an instrumented leading-axis slice.
func (e *Engine) Slice(a *tensor.Tensor, lo, hi int) *tensor.Tensor {
	inner := a.Size() / max(a.Dim(0), 1)
	return one(e.record(op{
		name:     "Slice",
		kernel:   "transform",
		category: trace.DataTransform,
		bytes:    tensor.BytesCopy((hi - lo) * inner),
		inputs:   []*tensor.Tensor{a},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.Slice(a, lo, hi)} }))
}

// Gather records an instrumented irregular row gather. The byte cost uses
// random-access convention: every gathered row is a strided read.
func (e *Engine) Gather(a *tensor.Tensor, idx []int) *tensor.Tensor {
	inner := a.Size() / max(a.Dim(0), 1)
	return one(e.record(op{
		name:     "Gather",
		kernel:   "gather",
		category: trace.DataTransform,
		bytes:    tensor.BytesCopy(len(idx)*inner) + int64(len(idx))*4,
		inputs:   []*tensor.Tensor{a},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.Gather(a, idx)} }))
}

// MaskedSelect records an instrumented masked selection.
func (e *Engine) MaskedSelect(a, mask *tensor.Tensor) *tensor.Tensor {
	return one(e.record(op{
		name:     "MaskedSelect",
		kernel:   "gather",
		category: trace.DataTransform,
		bytes:    tensor.BytesEltwiseBinary(a.Size()),
		inputs:   []*tensor.Tensor{a, mask},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.MaskedSelect(a, mask)} }))
}

// Copy records an explicit tensor duplication (data movement).
func (e *Engine) Copy(a *tensor.Tensor) *tensor.Tensor {
	return one(e.record(op{
		name:     "Copy",
		kernel:   "memcpy",
		category: trace.DataMovement,
		bytes:    tensor.BytesCopy(a.Size()),
		inputs:   []*tensor.Tensor{a},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{a.Clone()} }))
}

// HostToDevice records a simulated host→device transfer of a tensor. On the
// measured platform of the paper this traffic dominates data-movement time;
// here it is an explicit data-movement event sized by the tensor.
func (e *Engine) HostToDevice(a *tensor.Tensor) *tensor.Tensor {
	return one(e.record(op{
		name:     "HostToDevice",
		kernel:   "memcpy_h2d",
		category: trace.DataMovement,
		bytes:    tensor.BytesCopy(a.Size()),
		inputs:   []*tensor.Tensor{a},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{a.Clone()} }))
}

// DeviceToHost records a simulated device→host transfer of a tensor.
func (e *Engine) DeviceToHost(a *tensor.Tensor) *tensor.Tensor {
	return one(e.record(op{
		name:     "DeviceToHost",
		kernel:   "memcpy_d2h",
		category: trace.DataMovement,
		bytes:    tensor.BytesCopy(a.Size()),
		inputs:   []*tensor.Tensor{a},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{a.Clone()} }))
}

// SpMM records an instrumented sparse-dense matrix multiplication.
func (e *Engine) SpMM(a *sparse.CSR, b *tensor.Tensor) *tensor.Tensor {
	return one(e.record(op{
		name:     "SpMM",
		kernel:   "spmm",
		category: trace.MatMul,
		flops:    sparse.FlopsSpMM(a.NNZ(), b.Dim(1)),
		bytes:    sparse.BytesSpMM(a.NNZ(), a.Rows, b.Dim(1)),
		inputs:   []*tensor.Tensor{b},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{a.SpMM(b)} }))
}

// SpMV records an instrumented sparse matrix-vector multiplication.
func (e *Engine) SpMV(a *sparse.CSR, x *tensor.Tensor) *tensor.Tensor {
	return one(e.record(op{
		name:     "SpMV",
		kernel:   "spmv",
		category: trace.MatMul,
		flops:    sparse.FlopsSpMM(a.NNZ(), 1),
		bytes:    sparse.BytesSpMM(a.NNZ(), a.Rows, 1),
		inputs:   []*tensor.Tensor{x},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{a.SpMV(x)} }))
}

// SDDMM records an instrumented sampled dense-dense matrix multiplication.
func (e *Engine) SDDMM(pattern *sparse.CSR, a, b *tensor.Tensor) *sparse.CSR {
	var out *sparse.CSR
	e.record(op{
		name:     "SDDMM",
		kernel:   "sddmm",
		category: trace.MatMul,
		flops:    2 * int64(pattern.NNZ()) * int64(a.Dim(1)),
		bytes:    sparse.BytesSpMM(pattern.NNZ(), pattern.Rows, a.Dim(1)),
		inputs:   []*tensor.Tensor{a, b},
	}, func() []*tensor.Tensor {
		out = pattern.SDDMM(a, b)
		return nil
	})
	return out
}

// SliceAxis records an instrumented materialized slice along any axis.
// It records the same event shape as Slice (the kernel is the same copy),
// with the byte cost of the elements actually moved.
func (e *Engine) SliceAxis(a *tensor.Tensor, axis, lo, hi int) *tensor.Tensor {
	count := a.Size() / max(a.Dim(axis), 1) * (hi - lo)
	return one(e.record(op{
		name:     "Slice",
		kernel:   "transform",
		category: trace.DataTransform,
		bytes:    tensor.BytesCopy(count),
		inputs:   []*tensor.Tensor{a},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.SliceAxis(a, axis, lo, hi)} }))
}

// SpMMBatch records one instrumented batched SpMM: batch sparse matrices
// sharing dimensions, each multiplying its row block of b (see
// sparse.SpMMBatchOn). With batch 1 it records exactly what SpMM records.
func (e *Engine) SpMMBatch(mats []*sparse.CSR, b *tensor.Tensor) *tensor.Tensor {
	var nnz int64
	var bytes int64
	w := b.Dim(1)
	for _, m := range mats {
		nnz += int64(m.NNZ())
		bytes += sparse.BytesSpMM(m.NNZ(), m.Rows, w)
	}
	return one(e.record(op{
		name:     "SpMM",
		kernel:   "spmm",
		category: trace.MatMul,
		flops:    2 * nnz * int64(w),
		bytes:    bytes,
		inputs:   []*tensor.Tensor{b},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{sparse.SpMMBatchOn(e.be, mats, b)} }))
}

// SDDMMBatch records one instrumented batched SDDMM over a shared
// sparsity pattern (see sparse.SDDMMBatchOn). With batch 1 it records
// exactly what SDDMM records.
func (e *Engine) SDDMMBatch(pattern *sparse.CSR, a, b *tensor.Tensor, batch int) []*sparse.CSR {
	var out []*sparse.CSR
	e.record(op{
		name:     "SDDMM",
		kernel:   "sddmm",
		category: trace.MatMul,
		flops:    int64(batch) * 2 * int64(pattern.NNZ()) * int64(a.Dim(1)),
		bytes:    int64(batch) * sparse.BytesSpMM(pattern.NNZ(), pattern.Rows, a.Dim(1)),
		inputs:   []*tensor.Tensor{a, b},
	}, func() []*tensor.Tensor {
		out = sparse.SDDMMBatchOn(e.be, pattern, a, b, batch)
		return nil
	})
	return out
}

// Coalesce records an instrumented sparse coalescing pass — the paper's
// canonical data-transformation operator for sparse data.
func (e *Engine) Coalesce(m *sparse.COO) int {
	var merged int
	n := m.NNZ()
	e.record(op{
		name:     "Coalesce",
		kernel:   "coalesce",
		category: trace.DataTransform,
		bytes:    int64(n) * 12 * 2, // read+write of (row, col, val) triples
		inputs:   nil,
	}, func() []*tensor.Tensor {
		merged = m.Coalesce()
		return nil
	})
	return merged
}
