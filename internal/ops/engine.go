// Package ops provides the instrumented execution engine used by every
// nsbench workload.
//
// Engine wraps the raw tensor kernels with profiling: each call is timed,
// annotated with the paper's operator taxonomy category, the active
// neural/symbolic phase, analytic FLOP/byte costs, allocation volume,
// output sparsity, and tensor-level dependencies, and appended to a
// trace.Trace. The engine is what turns a workload run into the data
// behind every figure and table of the characterization study.
package ops

import (
	"fmt"
	"time"

	"github.com/neurosym/nsbench/internal/backend"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

// Engine executes tensor operations while recording a trace. An Engine is
// not safe for concurrent use; each workload run owns one engine. Use Fork
// and Join when a workload wants to record events from worker goroutines.
type Engine struct {
	tr    *trace.Trace
	be    backend.Backend
	phase trace.Phase
	stage string

	// kernel selects the tensor kernel variant (auto, naive, tiled) the
	// engine's GEMM and convolution ops dispatch to. The zero value is
	// tensor.KernelAuto: the measured per-shape dispatch table decides.
	kernel tensor.Kernel

	// worker is the engine's timeline lane: 0 for the root engine, the
	// 1-based fork index for children. Every event the engine records
	// carries it, which is how forked shards land on their own tracks.
	worker int
	// kt shims the backend during instrumented ops to record kernel
	// chunks as worker-attributed timeline spans.
	kt *kernelTracer

	// measureSparsity controls whether output sparsity is computed for
	// every event (an O(n) pass over each output). Workload stages that
	// feed the sparsity analysis enable it explicitly.
	measureSparsity bool
	sparsityEps     float32

	// replicas amplifies recorded costs: every event's FLOPs, Bytes and
	// Alloc are multiplied by it. Batched workloads set it to the batch
	// size around regions they execute once on behalf of N identical
	// items (shared symbolic passes, fixed-cost reshapes), so the trace
	// stays uniformly N× a solo run and splits exactly. 0 means 1.
	replicas int

	// observer, when set, sees every event as it is recorded (live
	// metrics). It must be concurrency-safe: forked engines share it.
	observer trace.Observer
}

// defaultSparsityEps is the zero-threshold a fresh engine measures
// sparsity with until a workload overrides it.
const defaultSparsityEps float32 = 1e-6

// New returns an engine recording into a fresh trace, starting in the
// neural phase on the serial backend. Options select a different backend:
//
//	ops.New(ops.WithParallelism(4))
//	ops.New(ops.WithBackend(sharedBackend))
func New(opts ...Option) *Engine {
	e := &Engine{tr: trace.New(), be: backend.Serial{}, phase: trace.Neural, sparsityEps: defaultSparsityEps}
	for _, opt := range opts {
		opt(e)
	}
	e.kt = newKernelTracer(e.be, 0)
	return e
}

// Trace returns the engine's trace.
func (e *Engine) Trace() *trace.Trace { return e.tr }

// Backend returns the execution backend the engine dispatches kernels on.
func (e *Engine) Backend() backend.Backend { return e.be }

// Kernel returns the engine's kernel-variant selection.
func (e *Engine) Kernel() tensor.Kernel { return e.kernel }

// Close releases the engine's backend resources (worker goroutines). Only
// call it when the engine owns its backend; engines built from a shared
// Config.Factory backend must leave Close to the owner.
func (e *Engine) Close() { e.be.Close() }

// Fork returns n child engines that share this engine's backend, phase,
// stage, and sparsity settings but record into private traces, so worker
// goroutines can record events without racing on the parent trace. Join the
// children back in a fixed order to keep the merged trace deterministic.
//
// Child i records on timeline lane i+1 and its trace is anchored to the
// parent's epoch, so after Join each child's shard renders on its own
// worker track of one shared time axis, wrapped in a "fork[i]" span
// covering the child's whole region.
func (e *Engine) Fork(n int) []*Engine {
	kids := make([]*Engine, n)
	for i := range kids {
		tr := trace.New()
		tr.SetEpoch(e.tr.Epoch())
		k := &Engine{
			tr:              tr,
			be:              e.be,
			phase:           e.phase,
			stage:           e.stage,
			kernel:          e.kernel,
			worker:          i + 1,
			measureSparsity: e.measureSparsity,
			sparsityEps:     e.sparsityEps,
			replicas:        e.replicas,
			observer:        e.observer,
		}
		k.kt = newKernelTracer(e.be, k.worker)
		tr.BeginSpan(trace.Span{
			Name:   fmt.Sprintf("fork[%d]", i),
			Kind:   trace.SpanFork,
			Phase:  e.phase,
			Worker: k.worker,
		})
		kids[i] = k
	}
	return kids
}

// Join appends the children's events to this engine's trace in argument
// order, renumbering sequence numbers. Passing children in a fixed order
// (e.g. fork index) makes the merged trace independent of goroutine timing.
// Any spans a child left open — including the fork span Fork opened — are
// closed at join time, so the merged timeline always balances.
func (e *Engine) Join(kids ...*Engine) {
	now := time.Now()
	parts := make([]*trace.Trace, len(kids))
	for i, k := range kids {
		if k != nil {
			k.tr.CloseOpenSpans(now)
			parts[i] = k.tr
		}
	}
	e.tr.Merge(parts...)
}

// Worker returns the engine's timeline lane (0 for a root engine, the
// 1-based fork index for children).
func (e *Engine) Worker() int { return e.worker }

// Begin opens a nested timeline span carrying the engine's current phase
// and lane; close it with End. Spans are pure timeline annotation — they
// never contribute to aggregate statistics.
func (e *Engine) Begin(name string) {
	e.tr.BeginSpan(trace.Span{Name: name, Phase: e.phase, Worker: e.worker})
}

// End closes the innermost span opened by Begin/InStage.
func (e *Engine) End() { e.tr.End() }

// SetObserver installs (or, with nil, removes) a live event observer.
// The observer must be safe for concurrent use if the engine is forked.
func (e *Engine) SetObserver(fn trace.Observer) { e.observer = fn }

// SetPhase switches the active phase; subsequent events carry it.
func (e *Engine) SetPhase(p trace.Phase) { e.phase = p }

// Phase returns the active phase.
func (e *Engine) Phase() trace.Phase { return e.phase }

// InPhase runs f with the given phase active, then restores the previous one.
func (e *Engine) InPhase(p trace.Phase, f func()) {
	old := e.phase
	e.phase = p
	defer func() { e.phase = old }()
	f()
}

// SetStage labels subsequent events with a workload-defined stage name
// ("" clears it). Stages drive the per-stage sparsity analysis (Fig. 5).
func (e *Engine) SetStage(s string) { e.stage = s }

// InStage runs f with the given stage label, restoring the previous one.
// The stage also becomes a nested timeline span, so every workload stage
// renders as a named range around its operator events.
func (e *Engine) InStage(s string, f func()) {
	old := e.stage
	e.stage = s
	e.tr.BeginSpan(trace.Span{Name: s, Kind: trace.SpanStage, Phase: e.phase, Worker: e.worker})
	defer func() {
		e.tr.End()
		e.stage = old
	}()
	f()
}

// SetReplicas amplifies every subsequently recorded event's FLOPs, Bytes
// and Alloc by k, declaring that one execution stands for k identical
// items of a batch. k <= 1 restores normal recording. Batched workloads
// use it around shared regions (e.g. a symbolic pass over replicated
// inputs) so a batch-of-N trace is uniformly N× the solo trace.
func (e *Engine) SetReplicas(k int) {
	if k < 1 {
		k = 1
	}
	e.replicas = k
}

// Replicas returns the active replica amplification factor (at least 1).
func (e *Engine) Replicas() int {
	if e.replicas < 1 {
		return 1
	}
	return e.replicas
}

// InReplicas runs f with the replica factor set to k, then restores the
// previous factor. Use it to wrap fixed-cost operators (reshapes, shared
// weight transposes) inside an otherwise materialized batch region, where
// tensor sizes do not scale with the batch.
func (e *Engine) InReplicas(k int, f func()) {
	old := e.replicas
	e.SetReplicas(k)
	defer func() { e.replicas = old }()
	f()
}

// ResetRunState restores the recording defaults a fresh engine starts
// with — neural phase, no stage label, sparsity measurement off at the
// default epsilon, no replica amplification — without touching the trace.
// The loop-per-item batch adapter calls it between items so each item
// begins from the state its solo run would see.
func (e *Engine) ResetRunState() {
	e.phase = trace.Neural
	e.stage = ""
	e.measureSparsity = false
	e.sparsityEps = defaultSparsityEps
	e.replicas = 0
}

// MeasureSparsity toggles per-event output sparsity measurement.
func (e *Engine) MeasureSparsity(on bool) { e.measureSparsity = on }

// SetSparsityEps sets the magnitude below which an element counts as zero
// for sparsity measurement. Probabilistic workloads whose tensors carry a
// uniform noise floor raise this to the floor to measure effective
// sparsity, matching the paper's usage.
func (e *Engine) SetSparsityEps(eps float32) { e.sparsityEps = eps }

// RegisterParam records a persistent parameter (weights, codebook, rules)
// for the storage-footprint analysis.
func (e *Engine) RegisterParam(name, kind string, t *tensor.Tensor) {
	e.tr.RegisterParam(trace.Param{Name: name, Phase: e.phase, Kind: kind, Bytes: t.Bytes()})
}

// RegisterParamBytes records a persistent non-tensor parameter by size.
func (e *Engine) RegisterParamBytes(name, kind string, bytes int64) {
	e.tr.RegisterParam(trace.Param{Name: name, Phase: e.phase, Kind: kind, Bytes: bytes})
}

// op describes one instrumented call.
type op struct {
	name     string
	kernel   string
	category trace.Category
	flops    int64
	bytes    int64
	inputs   []*tensor.Tensor
}

// record times f, derives the event from the op description and the result,
// and appends it to the trace. run must return the produced tensors (may be
// empty for side-effect-only operators).
//
// For the timeline, record stamps the event's wall-clock start and the
// engine's lane, and swaps the backend onto the kernel tracer for the
// duration of run so every split dispatch leaves worker-attributed chunk
// spans in the trace. The swap is engine-local state, safe because an
// engine is single-goroutine by contract; it is idempotent for nested
// records (the tracer simply stays installed).
func (e *Engine) record(o op, run func() []*tensor.Tensor) []*tensor.Tensor {
	kt := e.kt
	prevBE := e.be
	prevKernel, prevPhase := kt.kernel, kt.phase
	kt.label(o.kernel, e.phase)
	e.be = kt

	start := time.Now()
	outs := run()
	dur := time.Since(start)

	e.be = prevBE
	kt.label(prevKernel, prevPhase)
	kt.drain(e.tr)

	ev := trace.Event{
		Name:     o.name,
		Kernel:   o.kernel,
		Stage:    e.stage,
		Category: o.category,
		Phase:    e.phase,
		Start:    start,
		Worker:   e.worker,
		Dur:      dur,
		FLOPs:    o.flops,
		Bytes:    o.bytes,
		Sparsity: -1,
	}
	for _, in := range o.inputs {
		if in != nil {
			ev.Inputs = append(ev.Inputs, in.ID())
		}
	}
	var alloc int64
	for _, out := range outs {
		if out == nil {
			continue
		}
		ev.Outputs = append(ev.Outputs, out.ID())
		alloc += out.Bytes()
	}
	ev.Alloc = alloc
	// Replica amplification: one execution standing for k identical batch
	// items records k× the analytic costs. Duration is left as measured —
	// the batch ran the work once, and that is the point of batching.
	if e.replicas > 1 {
		k := int64(e.replicas)
		ev.FLOPs *= k
		ev.Bytes *= k
		ev.Alloc *= k
	}
	// Sparsity is measured on the primary output when it is a real tensor;
	// scalars carry no sparsity structure and would distort stage averages.
	if e.measureSparsity && len(outs) > 0 && outs[0] != nil && outs[0].Size() > 1 {
		ev.Sparsity = outs[0].Sparsity(e.sparsityEps)
	}
	e.tr.Append(ev)
	if e.observer != nil {
		e.observer(&ev)
	}
	return outs
}

// one unwraps a single-output record call, tolerating operators that
// produced nothing.
func one(outs []*tensor.Tensor) *tensor.Tensor {
	if len(outs) == 0 {
		return nil
	}
	return outs[0]
}
