package ops

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

type chromeEv struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

func exportChrome(t *testing.T, tr *trace.Trace) []chromeEv {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("engine trace fails chrome validation: %v", err)
	}
	var doc struct {
		TraceEvents []chromeEv `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	return doc.TraceEvents
}

// A serial run keeps exactly one op track per phase: every X event lands
// on worker lane 0 and there are no chunk spans to add tracks.
func TestSerialTimelineOneTrackPerPhase(t *testing.T) {
	e := New()
	g := tensor.NewRNG(1)
	a, b := g.Normal(0, 1, 64, 64), g.Normal(0, 1, 64, 64)
	e.MatMul(a, b)
	e.InPhase(trace.Symbolic, func() { e.Add(a, b) })

	if n := len(e.Trace().Spans()); n != 0 {
		t.Fatalf("serial run produced %d chunk spans, want 0", n)
	}
	tracks := map[int]map[int]bool{} // pid -> set of tids with X events
	for _, ev := range exportChrome(t, e.Trace()) {
		if ev.Ph != "X" {
			continue
		}
		if tracks[ev.PID] == nil {
			tracks[ev.PID] = map[int]bool{}
		}
		tracks[ev.PID][ev.TID] = true
	}
	if len(tracks) != 2 {
		t.Fatalf("phases with op events = %d, want 2", len(tracks))
	}
	for pid, tids := range tracks {
		if len(tids) != 1 || !tids[0] {
			t.Fatalf("pid %d has tids %v, want exactly {0}", pid, tids)
		}
	}
}

// A parallel run attributes kernel chunks to worker lanes: the exported
// timeline must show at least two distinct worker tracks, and (given real
// CPUs) chunks on different tracks that overlap in wall-clock time.
func TestParallelTimelineWorkerTracksOverlap(t *testing.T) {
	e := New(WithParallelism(4))
	defer e.Close()
	g := tensor.NewRNG(2)
	a, b := g.Normal(0, 1, 256, 256), g.Normal(0, 1, 256, 256)
	// Several dispatches: the first may run fully inline while the pool
	// goroutines are still starting up (the task channel is unbuffered).
	for i := 0; i < 8; i++ {
		e.MatMul(a, b)
	}

	spans := e.Trace().Spans()
	if len(spans) == 0 {
		t.Fatal("parallel run recorded no chunk spans")
	}
	workers := map[int]bool{}
	for _, s := range spans {
		if s.Kind != trace.SpanChunk {
			t.Fatalf("unexpected span kind %q", s.Kind)
		}
		if s.Name != "sgemm_nn" {
			t.Fatalf("chunk span kernel = %q, want sgemm_nn", s.Name)
		}
		workers[s.Worker] = true
	}
	if len(workers) < 2 {
		t.Fatalf("distinct worker lanes = %d, want >= 2 (spans: %d)", len(workers), len(spans))
	}

	// The chunk spans surface as X events on distinct tids.
	tids := map[int]bool{}
	for _, ev := range exportChrome(t, e.Trace()) {
		if ev.Ph == "X" && ev.Name == "sgemm_nn" && ev.Dur > 0 {
			tids[ev.TID] = true
		}
	}
	if len(tids) < 2 {
		t.Fatalf("chrome trace worker tids = %d, want >= 2", len(tids))
	}

	if runtime.NumCPU() < 2 {
		t.Skip("overlap assertion needs >= 2 CPUs")
	}
	overlap := false
	for i := 0; i < len(spans) && !overlap; i++ {
		for j := i + 1; j < len(spans); j++ {
			si, sj := spans[i], spans[j]
			if si.Worker == sj.Worker {
				continue
			}
			if si.Start.Before(sj.End) && sj.Start.Before(si.End) {
				overlap = true
				break
			}
		}
	}
	if !overlap {
		t.Fatal("no pair of chunk spans on distinct workers overlaps in time")
	}
}

// Fork children record on their own lanes inside fork spans anchored to
// the parent's epoch, so the joined trace is one coherent timeline.
func TestForkJoinTimeline(t *testing.T) {
	e := New()
	g := tensor.NewRNG(3)
	a, b := g.Normal(0, 1, 16, 16), g.Normal(0, 1, 16, 16)

	kids := e.Fork(2)
	for _, k := range kids {
		if !k.Trace().Epoch().Equal(e.Trace().Epoch()) {
			t.Fatal("fork child does not share the parent epoch")
		}
		k.MatMul(a, b)
	}
	e.Join(kids[0], kids[1])

	lanes := map[int]bool{}
	for _, ev := range e.Trace().Events {
		lanes[ev.Worker] = true
	}
	if !lanes[1] || !lanes[2] {
		t.Fatalf("joined events on lanes %v, want 1 and 2", lanes)
	}
	var forks []trace.Span
	for _, s := range e.Trace().Spans() {
		if s.Kind == trace.SpanFork {
			forks = append(forks, s)
		}
	}
	if len(forks) != 2 {
		t.Fatalf("fork spans = %d, want 2", len(forks))
	}
	for _, s := range forks {
		if s.End.IsZero() {
			t.Fatalf("fork span %q left open after Join", s.Name)
		}
	}
	exportChrome(t, e.Trace())
}

// InStage wraps its operator events in a stage span.
func TestInStageRecordsSpan(t *testing.T) {
	e := New()
	g := tensor.NewRNG(4)
	a, b := g.Normal(0, 1, 8, 8), g.Normal(0, 1, 8, 8)
	e.InStage("embed", func() { e.MatMul(a, b) })

	spans := e.Trace().Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	s := spans[0]
	if s.Name != "embed" || s.Kind != trace.SpanStage || s.End.IsZero() {
		t.Fatalf("stage span = %+v", s)
	}
	ev := e.Trace().Events[0]
	if ev.Start.Before(s.Start) || s.End.Before(ev.Start.Add(ev.Dur)) {
		t.Fatal("operator event not contained in its stage span")
	}
}

// Events carry wall-clock starts ordered with the trace's sequence on a
// single-threaded engine, so the timeline matches the event order.
func TestRecordStampsMonotoneStarts(t *testing.T) {
	e := New()
	g := tensor.NewRNG(5)
	a, b := g.Normal(0, 1, 8, 8), g.Normal(0, 1, 8, 8)
	e.MatMul(a, b)
	e.Add(a, b)
	evs := e.Trace().Events
	if evs[0].Start.IsZero() || evs[1].Start.IsZero() {
		t.Fatal("events missing wall-clock starts")
	}
	if evs[1].Start.Before(evs[0].Start) {
		t.Fatal("starts not monotone on a single-threaded engine")
	}
	if evs[0].Worker != 0 || evs[1].Worker != 0 {
		t.Fatalf("root engine events on lanes %d/%d, want 0", evs[0].Worker, evs[1].Worker)
	}
}
