package ops

import (
	"sync"
	"time"

	"github.com/neurosym/nsbench/internal/backend"
	"github.com/neurosym/nsbench/internal/trace"
)

// kernelTracer is the engine's timeline shim around its execution
// backend. During an instrumented op, the engine swaps itself onto the
// tracer, which forwards every kernel dispatch to the real backend and —
// when the backend can attribute chunks to workers — records each
// dispatched chunk as a trace.Span on the worker's timeline track. Those
// chunk spans are what make a parallel-backend Chrome trace visibly
// overlap where a serial one cannot.
//
// Only dispatches that actually split are recorded: a single-chunk For
// (serial backend, or n below the grain) adds no spans and costs nothing
// beyond one interface type assertion, so serial timelines stay exactly
// one op track per phase.
//
// The label (kernel name, phase) is written by the engine goroutine
// between ops; chunk callbacks run concurrently on pool workers, so the
// span list is mutex-guarded. One lock round per recorded chunk is noise
// against the ≥32 KFLOP of work a chunk carries by construction.
type kernelTracer struct {
	be     backend.Backend
	worker int // the owning engine's lane, attributed to caller-run chunks

	kernel string
	phase  trace.Phase

	mu    sync.Mutex
	spans []trace.Span
}

func newKernelTracer(be backend.Backend, worker int) *kernelTracer {
	return &kernelTracer{be: be, worker: worker}
}

// label names the op the next dispatches belong to. Engine goroutine only.
func (k *kernelTracer) label(kernel string, phase trace.Phase) {
	k.kernel, k.phase = kernel, phase
}

// For forwards the dispatch, recording per-chunk spans when the backend
// reports worker attribution and the dispatch splits.
func (k *kernelTracer) For(n, grain int, fn func(lo, hi int)) {
	wf, ok := k.be.(backend.WorkerFor)
	if !ok {
		k.be.For(n, grain, fn)
		return
	}
	kernel, phase, lane := k.kernel, k.phase, k.worker
	wf.ForWorker(n, grain, func(worker, lo, hi int) {
		if lo == 0 && hi == n {
			// The only chunk: the dispatch never split, nothing to attribute.
			fn(lo, hi)
			return
		}
		start := time.Now()
		fn(lo, hi)
		end := time.Now()
		if worker == 0 {
			worker = lane
		}
		k.mu.Lock()
		k.spans = append(k.spans, trace.Span{
			Name:   kernel,
			Kind:   trace.SpanChunk,
			Phase:  phase,
			Worker: worker,
			Start:  start,
			End:    end,
		})
		k.mu.Unlock()
	})
}

// drain moves the accumulated chunk spans into tr. Engine goroutine only,
// called after the dispatching op returned (so no chunk is in flight).
func (k *kernelTracer) drain(tr *trace.Trace) {
	k.mu.Lock()
	spans := k.spans
	k.spans = nil
	k.mu.Unlock()
	for _, s := range spans {
		tr.AddSpan(s)
	}
}

// The remaining Backend methods delegate untouched.

func (k *kernelTracer) Name() string              { return k.be.Name() }
func (k *kernelTracer) Workers() int              { return k.be.Workers() }
func (k *kernelTracer) Scratch(n int) []float64   { return k.be.Scratch(n) }
func (k *kernelTracer) Release(buf []float64)     { k.be.Release(buf) }
func (k *kernelTracer) Scratch32(n int) []float32 { return k.be.Scratch32(n) }
func (k *kernelTracer) Release32(buf []float32)   { k.be.Release32(buf) }
func (k *kernelTracer) Close()                    { k.be.Close() }
