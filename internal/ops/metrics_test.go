package ops

import (
	"bytes"
	"strings"
	"testing"

	"github.com/neurosym/nsbench/internal/metrics"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

func TestEngineObserverSeesEveryEvent(t *testing.T) {
	var seen []string
	e := New(WithObserver(func(ev *trace.Event) { seen = append(seen, ev.Name) }))
	g := tensor.NewRNG(1)
	a, b := g.Normal(0, 1, 8), g.Normal(0, 1, 8)
	e.Add(a, b)
	e.Mul(a, b)
	if len(seen) != 2 || len(e.Trace().Events) != 2 {
		t.Fatalf("observer saw %v, trace has %d events; want both = 2", seen, len(e.Trace().Events))
	}
	for i, ev := range e.Trace().Events {
		if ev.Name != seen[i] {
			t.Fatalf("observer order %v != trace order", seen)
		}
	}
}

func TestForkPropagatesObserver(t *testing.T) {
	var n int
	e := New(WithObserver(func(*trace.Event) { n++ }))
	kids := e.Fork(2)
	g := tensor.NewRNG(1)
	for _, k := range kids {
		k.Add(g.Normal(0, 1, 4), g.Normal(0, 1, 4))
	}
	e.Join(kids[0], kids[1])
	if n != 2 {
		t.Fatalf("observer saw %d forked events, want 2", n)
	}
}

func TestPoolObserverAppliesToNewEngines(t *testing.T) {
	p := Config{}.NewPool()
	defer p.Close()
	var n int
	p.SetObserver(func(*trace.Event) { n++ })
	e := p.Engine()
	g := tensor.NewRNG(1)
	e.Add(g.Normal(0, 1, 4), g.Normal(0, 1, 4))
	if n != 1 {
		t.Fatalf("pool observer saw %d events, want 1", n)
	}
	p.SetObserver(nil)
	if p.Engine(); n != 1 {
		t.Fatal("cleared observer still active")
	}
}

func TestNewOpObserverRecordsByCategoryAndPhase(t *testing.T) {
	reg := metrics.NewRegistry()
	obs := NewOpObserver(reg)
	e := New(WithObserver(obs))
	g := tensor.NewRNG(1)
	a, b := g.Normal(0, 1, 8), g.Normal(0, 1, 8)
	e.Add(a, b) // vector-eltwise, neural
	e.InPhase(trace.Symbolic, func() { e.Mul(a, b) })

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`ns_op_seconds_count{category="Vector/Eltwise",phase="neural"} 1`,
		`ns_op_seconds_count{category="Vector/Eltwise",phase="symbolic"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegisterPoolMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	p := Config{Backend: BackendParallel, Workers: 2}.NewPool()
	defer p.Close()
	RegisterPoolMetrics(reg, p)
	e := p.Engine()
	e.Backend().For(1<<14, 1, func(lo, hi int) {})

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ns_backend_workers 2") {
		t.Fatalf("missing worker gauge:\n%s", out)
	}
	if !strings.Contains(out, "ns_pool_splits_total 1") {
		t.Fatalf("missing split counter:\n%s", out)
	}

	// The serial backend registers only the width gauge.
	reg2 := metrics.NewRegistry()
	sp := Config{}.NewPool()
	defer sp.Close()
	RegisterPoolMetrics(reg2, sp)
	var buf2 bytes.Buffer
	if err := reg2.WriteProm(&buf2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf2.String(), "ns_pool_splits_total") {
		t.Fatal("serial backend must not report pool counters")
	}
	if !strings.Contains(buf2.String(), "ns_backend_workers 1") {
		t.Fatalf("serial backend missing width gauge:\n%s", buf2.String())
	}
}
