package ops

import (
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

// CircularConv records an instrumented circular convolution — the VSA
// binding primitive of NVSA and PrAE.
func (e *Engine) CircularConv(a, b *tensor.Tensor) *tensor.Tensor {
	n := a.Dim(0)
	flops := tensor.FlopsCircularConvDirect(n)
	if n >= 64 && n&(n-1) == 0 {
		flops = tensor.FlopsCircularConvFFT(n)
	}
	return one(e.record(op{
		name:     "CircularConv",
		kernel:   "circular_conv",
		category: trace.VectorEltwise,
		flops:    flops,
		bytes:    tensor.BytesCircularConv(n),
		inputs:   []*tensor.Tensor{a, b},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.CircularConvOn(e.be, a, b)} }))
}

// CircularCorr records an instrumented circular correlation — the VSA
// unbinding primitive.
func (e *Engine) CircularCorr(a, b *tensor.Tensor) *tensor.Tensor {
	n := a.Dim(0)
	return one(e.record(op{
		name:     "CircularCorr",
		kernel:   "circular_conv",
		category: trace.VectorEltwise,
		flops:    tensor.FlopsCircularConvDirect(n),
		bytes:    tensor.BytesCircularConv(n),
		inputs:   []*tensor.Tensor{a, b},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.CircularCorrOn(e.be, a, b)} }))
}

// Roll records an instrumented circular shift — the VSA permutation
// primitive (and the NLM tensor-permutation building block).
func (e *Engine) Roll(a *tensor.Tensor, k int) *tensor.Tensor {
	return one(e.record(op{
		name:     "Roll",
		kernel:   "transform",
		category: trace.DataTransform,
		bytes:    tensor.BytesCopy(a.Size()),
		inputs:   []*tensor.Tensor{a},
	}, func() []*tensor.Tensor { return []*tensor.Tensor{tensor.Roll(a, k)} }))
}

// Logic records a symbolic "Others"-category operator (fuzzy logic
// evaluation, rule application, search step). flops and bytes are supplied
// by the caller's analytic model; inputs/outputs are optional for
// dependency tracking.
func (e *Engine) Logic(name string, flops, bytes int64, inputs []*tensor.Tensor, run func() []*tensor.Tensor) []*tensor.Tensor {
	return e.record(op{
		name:     name,
		kernel:   "logic",
		category: trace.Other,
		flops:    flops,
		bytes:    bytes,
		inputs:   inputs,
	}, run)
}

// LogicScalar records an "Others" operator producing a single scalar value.
func (e *Engine) LogicScalar(name string, flops, bytes int64, inputs []*tensor.Tensor, f func() float32) *tensor.Tensor {
	outs := e.Logic(name, flops, bytes, inputs, func() []*tensor.Tensor {
		return []*tensor.Tensor{tensor.Scalar(f())}
	})
	return outs[0]
}
