package ops

import (
	"fmt"

	"github.com/neurosym/nsbench/internal/backend"
)

// Backend names accepted by Config and the CLI -backend flag.
const (
	BackendSerial   = "serial"
	BackendParallel = "parallel"
)

// Option configures an Engine at construction time.
type Option func(*Engine)

// WithBackend runs the engine's kernels on b. Passing nil keeps the
// default serial backend.
func WithBackend(b backend.Backend) Option {
	return func(e *Engine) {
		if b != nil {
			e.be = b
		}
	}
}

// WithParallelism selects a parallel backend with n workers (n < 1 selects
// GOMAXPROCS). n == 1 keeps the serial backend: one worker cannot beat
// running inline.
func WithParallelism(n int) Option {
	return func(e *Engine) {
		if n == 1 {
			e.be = backend.Serial{}
			return
		}
		e.be = backend.NewParallel(n)
	}
}

// Config names an execution backend in the plain-data form carried by
// workload configs and CLI flags. The zero value selects the serial
// backend.
type Config struct {
	Backend string // "serial" (default) or "parallel"
	Workers int    // parallel worker count; <1 selects GOMAXPROCS
}

// Validate reports whether the backend name is known.
func (c Config) Validate() error {
	switch c.Backend {
	case "", BackendSerial, BackendParallel:
		return nil
	}
	return fmt.Errorf("ops: unknown backend %q (want %q or %q)", c.Backend, BackendSerial, BackendParallel)
}

// New builds an engine on a backend of its own.
func (c Config) New() *Engine { return New(WithBackend(c.build())) }

// Factory returns an engine constructor that shares one backend — and so
// one worker pool and one scratch pool — across every engine it creates.
// Workloads that build a fresh engine per run (accuracy loops, sweeps) use
// this to avoid spawning a pool per iteration.
func (c Config) Factory() func() *Engine {
	b := c.build()
	return func() *Engine { return New(WithBackend(b)) }
}

func (c Config) build() backend.Backend {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	if c.Backend == BackendParallel && c.Workers != 1 {
		return backend.NewParallel(c.Workers)
	}
	return backend.Serial{}
}
