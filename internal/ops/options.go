package ops

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/neurosym/nsbench/internal/backend"
	"github.com/neurosym/nsbench/internal/tensor"
	"github.com/neurosym/nsbench/internal/trace"
)

// Backend names accepted by Config and the CLI -backend flag.
const (
	BackendSerial   = "serial"
	BackendParallel = "parallel"
)

// Option configures an Engine at construction time.
type Option func(*Engine)

// WithBackend runs the engine's kernels on b. Passing nil keeps the
// default serial backend.
func WithBackend(b backend.Backend) Option {
	return func(e *Engine) {
		if b != nil {
			e.be = b
		}
	}
}

// WithParallelism selects a parallel backend with n workers (n < 1 selects
// GOMAXPROCS). n == 1 keeps the serial backend: one worker cannot beat
// running inline.
func WithParallelism(n int) Option {
	return func(e *Engine) {
		if n == 1 {
			e.be = backend.Serial{}
			return
		}
		e.be = backend.NewParallel(n)
	}
}

// WithObserver installs a live event observer on the engine (see
// Engine.SetObserver). Passing nil leaves the engine unobserved.
func WithObserver(fn trace.Observer) Option {
	return func(e *Engine) { e.observer = fn }
}

// WithKernel pins the tensor kernel variant the engine's GEMM and
// convolution ops dispatch to. The default, tensor.KernelAuto, lets the
// measured per-shape dispatch table choose; KernelNaive and KernelTiled
// force one implementation (outputs are bit-identical either way).
func WithKernel(k tensor.Kernel) Option {
	return func(e *Engine) { e.kernel = k }
}

// Config names an execution backend in the plain-data form carried by
// workload configs and CLI flags. The zero value selects the serial
// backend.
type Config struct {
	Backend string // "serial" (default) or "parallel"
	Workers int    // parallel worker count; <1 selects GOMAXPROCS
	Kernel  string // "auto" (default), "naive", or "tiled" kernel variant
}

// Validate reports whether the backend and kernel names are known.
func (c Config) Validate() error {
	switch c.Backend {
	case "", BackendSerial, BackendParallel:
	default:
		return fmt.Errorf("ops: unknown backend %q (want %q or %q)", c.Backend, BackendSerial, BackendParallel)
	}
	if _, err := tensor.ParseKernel(c.Kernel); err != nil {
		return fmt.Errorf("ops: %v", err)
	}
	return nil
}

// New builds an engine on a backend of its own. The caller owns the
// engine's backend and must Close the engine when done.
func (c Config) New() *Engine { return New(WithBackend(c.build()), WithKernel(c.kernel())) }

// NewPool builds the shared-backend pool for c. Every engine the pool
// hands out runs on one backend — and so one worker pool and one scratch
// pool — and the pool's Close is the single teardown point for all of
// them. Workloads and services that build a fresh engine per run
// (accuracy loops, sweeps, servers) use this to avoid spawning a worker
// pool per iteration and to avoid leaking the one they share.
func (c Config) NewPool() *Pool { return &Pool{be: c.build(), kern: c.kernel()} }

// Factory returns an engine constructor that shares one backend across
// every engine it creates, plus the release function that tears that
// backend down. The caller owns the shared backend: exactly one release
// call is required (extra calls are no-ops), after which engines built by
// the constructor must no longer run kernels.
func (c Config) Factory() (newEngine func() *Engine, release func()) {
	p := c.NewPool()
	return p.Engine, p.Close
}

// Pool owns one shared execution backend and builds engines on it. The
// zero value is not usable; construct pools with Config.NewPool. A Pool is
// safe for concurrent use: engines may be created from many goroutines
// (each engine itself stays single-goroutine).
type Pool struct {
	be   backend.Backend
	kern tensor.Kernel
	once sync.Once
	// observer, when set, is installed on every engine the pool hands
	// out, so every run through a shared pool feeds the same live
	// metrics sink.
	observer atomic.Pointer[trace.Observer]
}

// SetObserver installs a live event observer on all engines the pool
// creates from now on (see Engine.SetObserver for the concurrency
// contract). Typically called once at service startup, right after
// NewPool.
func (p *Pool) SetObserver(fn trace.Observer) {
	if fn == nil {
		p.observer.Store(nil)
		return
	}
	p.observer.Store(&fn)
}

// Engine returns a fresh engine recording into a fresh trace on the pool's
// shared backend. Do not Close the returned engine — the backend belongs
// to the pool; dropping the engine is enough.
func (p *Pool) Engine() *Engine {
	e := New(WithBackend(p.be), WithKernel(p.kern))
	if fn := p.observer.Load(); fn != nil {
		e.observer = *fn
	}
	return e
}

// Backend exposes the shared backend (e.g. for Workers() introspection).
func (p *Pool) Backend() backend.Backend { return p.be }

// Close tears down the shared backend's worker goroutines. Close is
// idempotent; engines built from the pool must not run kernels afterwards.
func (p *Pool) Close() { p.once.Do(p.be.Close) }

func (c Config) build() backend.Backend {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	if c.Backend == BackendParallel && c.Workers != 1 {
		return backend.NewParallel(c.Workers)
	}
	return backend.Serial{}
}

// kernel resolves the config's kernel name; Validate has already vetted it
// wherever build ran, so a parse failure here is a programmer error.
func (c Config) kernel() tensor.Kernel {
	k, err := tensor.ParseKernel(c.Kernel)
	if err != nil {
		panic(err)
	}
	return k
}
